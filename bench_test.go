// Package repro's root benchmarks regenerate the experiment measurements of
// EXPERIMENTS.md, one benchmark family per experiment of DESIGN.md's index
// (E13 and E14 live in cmd/s2s-bench only, as they compare mapping
// configurations rather than time a single path). The cmd/s2s-bench binary
// prints the same experiments as verified tables; these testing.B forms
// integrate with `go test -bench` and -benchmem.
package repro

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datasource"
	"repro/internal/extract"
	"repro/internal/faultinject"
	"repro/internal/instance"
	"repro/internal/mapping"
	"repro/internal/reason"
	"repro/internal/s2sql"
	"repro/internal/sparql"
	"repro/internal/transport"
	"repro/internal/workload"
)

const paperQuery = "SELECT product WHERE brand='Seiko' AND case='stainless-steel'"

func buildMW(b *testing.B, spec workload.Spec, opts extract.Options) (*core.Middleware, *workload.World) {
	b.Helper()
	world := workload.MustGenerate(spec)
	mw, err := core.NewWithCatalog(world.Ontology, world.Catalog, opts)
	if err != nil {
		b.Fatal(err)
	}
	if err := world.Apply(mw); err != nil {
		b.Fatal(err)
	}
	return mw, world
}

// BenchmarkE1EndToEnd — Figure 1: one S2SQL query across the four source
// kinds, records per source swept.
func BenchmarkE1EndToEnd(b *testing.B) {
	for _, records := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("records=%d", records), func(b *testing.B) {
			mw, _ := buildMW(b, workload.Spec{
				DBSources: 1, XMLSources: 1, WebSources: 1, TextSources: 1,
				RecordsPerSource: records, Seed: 1,
			}, extract.Options{})
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := mw.Query(ctx, paperQuery)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Errors) > 0 {
					b.Fatalf("errors: %v", res.Errors)
				}
			}
		})
	}
}

// BenchmarkE2OntologyScale — Figure 2: planning cost against growing
// ontologies.
func BenchmarkE2OntologyScale(b *testing.B) {
	for _, classes := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("classes=%d", classes), func(b *testing.B) {
			ont := workload.GrowOntology(classes, 3, 7)
			var deepest, deepestPath string
			depth := -1
			for _, c := range ont.Classes() {
				if d := strings.Count(c.Path(), "."); d > depth {
					depth, deepest, deepestPath = d, c.Name, c.Path()
				}
			}
			q := fmt.Sprintf("SELECT %s WHERE %s.attr0 = 'x'", deepest, deepestPath)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s2sql.ParseAndPlan(q, ont); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3Registration — Figures 3-4: attribute registration and
// extraction-schema lookup.
func BenchmarkE3Registration(b *testing.B) {
	for _, n := range []int{100, 1000} {
		ont := workload.GrowOntology(n, 1, 3)
		attrs := ont.Attributes()
		b.Run(fmt.Sprintf("register/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				reg := datasource.NewRegistry()
				if err := reg.Register(datasource.Definition{ID: "txt", Kind: datasource.KindText, Path: "d"}); err != nil {
					b.Fatal(err)
				}
				repo := mapping.NewRepository(ont, reg)
				for _, a := range attrs {
					if err := repo.Register(mapping.Entry{
						AttributeID: a.ID(), SourceID: "txt",
						Rule: mapping.Rule{Language: mapping.LangRegex, Code: `v=([0-9]+)`},
					}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("schema/n=%d", n), func(b *testing.B) {
			reg := datasource.NewRegistry()
			if err := reg.Register(datasource.Definition{ID: "txt", Kind: datasource.KindText, Path: "d"}); err != nil {
				b.Fatal(err)
			}
			repo := mapping.NewRepository(ont, reg)
			for _, a := range attrs {
				repo.MustRegister(mapping.Entry{
					AttributeID: a.ID(), SourceID: "txt",
					Rule: mapping.Rule{Language: mapping.LangRegex, Code: `v=([0-9]+)`},
				})
			}
			ids := repo.MappedAttributeIDs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := repo.Schema(ids); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4ExtractionSteps — Figure 5: step 4 under sequential and
// concurrent delegation.
func BenchmarkE4ExtractionSteps(b *testing.B) {
	for _, sources := range []int{4, 16} {
		per := sources / 4
		world := workload.MustGenerate(workload.Spec{
			DBSources: per, XMLSources: per, WebSources: per, TextSources: per,
			RecordsPerSource: 50, Seed: 2,
		})
		plan, err := s2sql.ParseAndPlan("SELECT product", world.Ontology)
		if err != nil {
			b.Fatal(err)
		}
		for _, par := range []int{1, 8} {
			b.Run(fmt.Sprintf("sources=%d/par=%d", sources, par), func(b *testing.B) {
				reg := datasource.NewRegistry()
				repo := mapping.NewRepository(world.Ontology, reg)
				for _, d := range world.Definitions {
					if err := reg.Register(d); err != nil {
						b.Fatal(err)
					}
				}
				for _, e := range world.Entries {
					repo.MustRegister(e)
				}
				mgr := extract.NewManager(repo, extract.FromCatalog(world.Catalog), extract.Options{Parallelism: par})
				ctx := context.Background()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rs, err := mgr.Extract(ctx, plan.AttributeIDs())
					if err != nil {
						b.Fatal(err)
					}
					if len(rs.Errors) > 0 {
						b.Fatalf("errors: %v", rs.Errors)
					}
				}
			})
		}
	}
}

// BenchmarkE5RecordScaling — §2.3: n-record sources.
func BenchmarkE5RecordScaling(b *testing.B) {
	for _, records := range []int{1, 10, 100, 1000} {
		b.Run(fmt.Sprintf("records=%d", records), func(b *testing.B) {
			mw, _ := buildMW(b, workload.Spec{DBSources: 1, XMLSources: 1, RecordsPerSource: records, Seed: 3}, extract.Options{})
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := mw.Query(ctx, "SELECT product")
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Matched) != 2*records {
					b.Fatalf("matched = %d", len(res.Matched))
				}
			}
		})
	}
}

// BenchmarkE6QueryHandler — §2.5: S2SQL parse + plan.
func BenchmarkE6QueryHandler(b *testing.B) {
	ont := workload.MustGenerate(workload.Spec{Seed: 1}).Ontology
	for _, preds := range []int{1, 4, 16} {
		var conds []string
		for i := 0; i < preds; i++ {
			conds = append(conds, fmt.Sprintf("brand != 'none%d'", i))
		}
		q := "SELECT product WHERE " + strings.Join(conds, " AND ")
		b.Run(fmt.Sprintf("predicates=%d", preds), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s2sql.ParseAndPlan(q, ont); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7Serialization — §2.6: output formats.
func BenchmarkE7Serialization(b *testing.B) {
	mw, _ := buildMW(b, workload.Spec{DBSources: 1, XMLSources: 1, RecordsPerSource: 1000, Seed: 4}, extract.Options{})
	res, err := mw.Query(context.Background(), "SELECT product")
	if err != nil {
		b.Fatal(err)
	}
	gen := mw.Generator()
	for _, f := range []instance.Format{
		instance.FormatOWL, instance.FormatTurtle, instance.FormatNTriples,
		instance.FormatXML, instance.FormatJSON, instance.FormatText,
	} {
		b.Run(f.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := gen.SerializeString(res, f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8VsBaseline — §1/§5: semantic middleware vs hand-coded
// syntactic ETL on the same world and question.
func BenchmarkE8VsBaseline(b *testing.B) {
	spec := workload.Spec{
		DBSources: 1, XMLSources: 1, WebSources: 1, TextSources: 1,
		RecordsPerSource: 250, Seed: 5,
	}
	b.Run("s2s", func(b *testing.B) {
		mw, _ := buildMW(b, spec, extract.Options{})
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := mw.Query(ctx, paperQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("baseline", func(b *testing.B) {
		world := workload.MustGenerate(spec)
		it := baseline.New(world.Catalog, world.Definitions)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := it.Query(func(p baseline.Product) bool {
				return p.Brand == "Seiko" && p.Case == "stainless-steel"
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE9ExtractorTypes — §2.4: per-source-kind extractor cost for the
// same logical data.
func BenchmarkE9ExtractorTypes(b *testing.B) {
	kinds := []struct {
		name string
		spec workload.Spec
	}{
		{"sql", workload.Spec{DBSources: 1, RecordsPerSource: 500, Seed: 6}},
		{"xpath", workload.Spec{XMLSources: 1, RecordsPerSource: 500, Seed: 6}},
		{"webl", workload.Spec{WebSources: 1, RecordsPerSource: 500, Seed: 6}},
		{"regex", workload.Spec{TextSources: 1, RecordsPerSource: 500, Seed: 6}},
	}
	for _, k := range kinds {
		b.Run(k.name, func(b *testing.B) {
			mw, _ := buildMW(b, k.spec, extract.Options{})
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := mw.Query(ctx, "SELECT product")
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Errors) > 0 {
					b.Fatalf("errors: %v", res.Errors)
				}
			}
		})
	}
}

// BenchmarkE11Cache — rule-result caching ablation.
func BenchmarkE11Cache(b *testing.B) {
	spec := workload.Spec{
		DBSources: 1, XMLSources: 1, WebSources: 1, TextSources: 1,
		RecordsPerSource: 250, Seed: 8,
	}
	for _, ttl := range []time.Duration{0, time.Minute} {
		name := "off"
		if ttl > 0 {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			mw, _ := buildMW(b, spec, extract.Options{CacheTTL: ttl})
			ctx := context.Background()
			if _, err := mw.Query(ctx, paperQuery); err != nil { // warm
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mw.Query(ctx, paperQuery); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE12Reasoning — RDFS materialization and SPARQL over the output.
func BenchmarkE12Reasoning(b *testing.B) {
	mw, _ := buildMW(b, workload.Spec{DBSources: 1, RecordsPerSource: 1000, Seed: 9}, extract.Options{})
	res, err := mw.Query(context.Background(), "SELECT product")
	if err != nil {
		b.Fatal(err)
	}
	graph, err := mw.Generator().ToGraph(res)
	if err != nil {
		b.Fatal(err)
	}
	schema := mw.Ontology().ToGraph()
	b.Run("materialize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := reason.Materialize(schema, graph); err != nil {
				b.Fatal(err)
			}
		}
	})
	materialized, err := reason.Materialize(schema, graph)
	if err != nil {
		b.Fatal(err)
	}
	const q = `PREFIX ont: <http://s2s.uma.pt/watch#> SELECT ?x WHERE { ?x a ont:product . }`
	b.Run("sparql", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := sparql.Select(materialized, q)
			if err != nil {
				b.Fatal(err)
			}
			if len(out.Bindings) != 1000 {
				b.Fatalf("bindings = %d", len(out.Bindings))
			}
		}
	})
}

// BenchmarkE15RepeatedQuery — hot-path amortization: the same query
// repeated against an unchanged world. "cold" disables the rule-result
// cache so every run pays the full fetch/parse/compile cost; "warm"
// enables it and pre-warms, so steady-state cost is what the caching
// layers (rule results, compiled rules, plans, schemas) leave behind.
// BENCH_query_opt.json records this family before and after the
// hot-path optimisation pass.
func BenchmarkE15RepeatedQuery(b *testing.B) {
	spec := workload.Spec{
		DBSources: 1, XMLSources: 1, WebSources: 1, TextSources: 1,
		RecordsPerSource: 25, Seed: 15,
	}
	modes := []struct {
		name string
		opts extract.Options
	}{
		{"cold", extract.Options{}},
		{"warm", extract.Options{CacheTTL: time.Hour}},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			mw, _ := buildMW(b, spec, mode.opts)
			ctx := context.Background()
			if _, err := mw.Query(ctx, paperQuery); err != nil { // warm caches & page servers
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := mw.Query(ctx, paperQuery)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Errors) > 0 {
					b.Fatalf("errors: %v", res.Errors)
				}
			}
		})
	}
}

// BenchmarkE16ConcurrentQuery — N goroutines issuing the identical
// query against one middleware, warm caches. Exercises cache-read
// contention (sharded rule cache) and duplicate-fill suppression
// (singleflight).
func BenchmarkE16ConcurrentQuery(b *testing.B) {
	mw, _ := buildMW(b, workload.Spec{
		DBSources: 1, XMLSources: 1, WebSources: 1, TextSources: 1,
		RecordsPerSource: 25, Seed: 16,
	}, extract.Options{CacheTTL: time.Hour})
	ctx := context.Background()
	if _, err := mw.Query(ctx, paperQuery); err != nil { // warm
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			res, err := mw.Query(ctx, paperQuery)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Errors) > 0 {
				b.Fatalf("errors: %v", res.Errors)
			}
		}
	})
}

// BenchmarkE17SelectiveQuery — query planner v2: one highly selective
// constrained query against mixed sources, cold path (no rule-result
// cache, so every iteration pays the full extraction), with predicate
// pushdown on and off. The web sources map no water_resistance
// attribute, so the planner prunes them outright — their WebL programs
// never run — and the surviving DB/XML/text groups drop failing
// records at the source boundary before instance assembly.
// BENCH_pushdown.json records the measured pair.
func BenchmarkE17SelectiveQuery(b *testing.B) {
	spec := workload.Spec{
		DBSources: 1, XMLSources: 1, WebSources: 2, TextSources: 1,
		RecordsPerSource: 200, Seed: 17,
	}
	const q = "SELECT product WHERE water_resistance >= 200"
	modes := []struct {
		name string
		opts extract.Options
	}{
		{"pushdown", extract.Options{}},
		{"nopushdown", extract.Options{DisablePushdown: true}},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			mw, _ := buildMW(b, spec, mode.opts)
			ctx := context.Background()
			if _, err := mw.Query(ctx, q); err != nil { // warm compiled rules & page servers
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := mw.Query(ctx, q)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Errors) > 0 {
					b.Fatalf("errors: %v", res.Errors)
				}
			}
		})
	}
}

// BenchmarkE18LargeSource — streaming pipeline: one full-scan query
// over growing sources, streaming against materializing, serialized to
// a discarded writer so the measurement isolates pipeline cost. Run
// with -benchmem: the claim under test is the allocation profile —
// the streaming path's peak buffered memory stays flat as rows grow
// 10x (TestStreamingBoundedMemory asserts it; docs/PERFORMANCE.md
// records the measured sweep). BENCH_stream.json records the pair for
// `make bench-stream -compare` gating.
func BenchmarkE18LargeSource(b *testing.B) {
	modes := []struct {
		name string
		opts extract.Options
	}{
		{"streaming", extract.Options{Streaming: true}},
		{"materializing", extract.Options{}},
	}
	for _, records := range []int{100, 1000} {
		for _, mode := range modes {
			b.Run(fmt.Sprintf("%s/records=%d", mode.name, records), func(b *testing.B) {
				mw, _ := buildMW(b, workload.Spec{
					DBSources: 1, XMLSources: 1, TextSources: 1,
					RecordsPerSource: records, Seed: 18,
				}, mode.opts)
				ctx := context.Background()
				if _, err := mw.Query(ctx, "SELECT product"); err != nil { // warm compiled rules
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := mw.QueryTo(ctx, io.Discard, "SELECT product", instance.FormatJSON)
					if err != nil {
						b.Fatal(err)
					}
					if len(res.Errors) > 0 {
						b.Fatalf("errors: %v", res.Errors)
					}
				}
			})
		}
	}
}

// BenchmarkE10Transport — the middleware behind HTTP.
func BenchmarkE10Transport(b *testing.B) {
	mw, _ := buildMW(b, workload.Spec{
		DBSources: 1, XMLSources: 1, WebSources: 1, TextSources: 1,
		RecordsPerSource: 100, Seed: 7,
	}, extract.Options{})
	srv := httptest.NewServer(transport.NewServer(mw))
	defer srv.Close()
	client := transport.NewClient(srv.URL, nil)
	ctx := context.Background()
	b.Run("query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := client.Query(ctx, paperQuery, "json"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			cl := transport.NewClient(srv.URL, nil)
			for pb.Next() {
				if _, err := cl.Query(ctx, paperQuery, "json"); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkE19HedgedDispatch — fault-tolerant cluster: one query
// scatter-gathered across a 3-node in-process cluster whose member n2
// answers 40ms slow on every backend. The hedged/unhedged pair
// measures what hedging buys: unhedged, every query that lands a
// partition on n2 waits out the slow node; hedged, the coordinator
// re-issues those sub-queries to the replica owner after a short
// deadline and takes the first answer. BENCH_hedge.json records the
// pair (`make bench-hedge`); docs/CLUSTER.md cites it.
func BenchmarkE19HedgedDispatch(b *testing.B) {
	const slowBy = 40 * time.Millisecond
	spec := workload.Spec{
		DBSources: 2, XMLSources: 2, WebSources: 2, TextSources: 2,
		RecordsPerSource: 20, Seed: 19,
	}
	for _, mode := range []struct {
		name    string
		disable bool
	}{
		{"hedged", false},
		{"unhedged", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			world := workload.MustGenerate(spec)
			newMW := func(apply bool, slow bool) *core.Middleware {
				backends := extract.FromCatalog(world.Catalog)
				if slow {
					plan := faultinject.Plan{}
					for _, def := range world.Definitions {
						plan[faultinject.Key(def)] = faultinject.Fault{AddLatency: slowBy}
					}
					backends = faultinject.New(19, plan).WrapBackends(backends)
				}
				mw, err := core.New(core.Config{Ontology: world.Ontology, Backends: backends})
				if err != nil {
					b.Fatal(err)
				}
				if apply {
					if err := world.Apply(mw); err != nil {
						b.Fatal(err)
					}
				}
				return mw
			}

			coord, err := cluster.NewNode(transport.NewServer(newMW(true, false)), cluster.Options{
				ID: "n1", DisableHedging: mode.disable, HedgeDelay: 5 * time.Millisecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			coordSrv := httptest.NewServer(coord)
			defer coordSrv.Close()
			coord.SetAddr(coordSrv.URL)
			for _, id := range []string{"n2", "n3"} {
				node, err := cluster.NewNode(transport.NewServer(newMW(false, id == "n2")), cluster.Options{
					ID: id, CoordinatorURL: coordSrv.URL,
				})
				if err != nil {
					b.Fatal(err)
				}
				srv := httptest.NewServer(node)
				defer srv.Close()
				node.SetAddr(srv.URL)
				if err := node.Join(context.Background()); err != nil {
					b.Fatal(err)
				}
			}

			query := func() error {
				resp, err := http.Get(coordSrv.URL + "/cluster/query?q=SELECT+product&format=json")
				if err != nil {
					return err
				}
				defer resp.Body.Close()
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					return err
				}
				if resp.StatusCode != http.StatusOK {
					return fmt.Errorf("status %d", resp.StatusCode)
				}
				return nil
			}
			if err := query(); err != nil { // warm compiled rules and caches
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := query(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE20SemiJoin — planner v3: a constrained keyed query where
// only a small directory source maps the constrained attribute and a
// few large detail sources can contribute only by class-key merge.
// With semi-joins on, the details run in wave two narrowed to the
// directory's key values (a typed IN predicate on their SQL rules);
// off, every detail row is extracted, assembled, and then filtered at
// the instance layer. BENCH_semijoin.json records the pair
// (`make bench-semijoin`); docs/PERFORMANCE.md cites it.
func BenchmarkE20SemiJoin(b *testing.B) {
	spec := workload.SemiJoinSpec{
		DirectoryRecords: 40, DetailSources: 3, DetailRecords: 800, Seed: 20,
	}
	const q = "SELECT product WHERE water_resistance >= 100"
	modes := []struct {
		name string
		opts extract.Options
	}{
		{"semijoin", extract.Options{}},
		{"nosemijoin", extract.Options{DisableSemiJoin: true}},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			world := workload.MustGenerateSemiJoin(spec)
			mw, err := core.NewWithCatalog(world.Ontology, world.Catalog, mode.opts)
			if err != nil {
				b.Fatal(err)
			}
			if err := world.Apply(mw); err != nil {
				b.Fatal(err)
			}
			if err := mw.SetClassKey("watch", "thing.product.model"); err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			if _, err := mw.Query(ctx, q); err != nil { // warm compiled rules
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := mw.Query(ctx, q)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Errors) > 0 {
					b.Fatalf("errors: %v", res.Errors)
				}
			}
		})
	}
}

// firstWriteTimer records when the first non-empty write lands,
// relative to start, and discards the bytes.
type firstWriteTimer struct {
	start time.Time
	first time.Duration
	set   bool
}

func (f *firstWriteTimer) Write(p []byte) (int, error) {
	if !f.set && len(p) > 0 {
		f.first = time.Since(f.start)
		f.set = true
	}
	return len(p), nil
}

// BenchmarkE21FirstInstance — barrier-free streaming: a merge-free
// four-source query where one source (xml_000, canonically last)
// answers 20ms slow. The eager path emits the three fast sources'
// instances as their extraction windows close, so the first instance
// reaches the writer in fast-source time; the barrier path serializes
// nothing until the slow source finishes, so its first byte waits out
// the full 20ms. Total query time is the same either way — the custom
// first_instance_ns metric is the measurement, recorded in
// BENCH_firstinstance.json (`make bench-firstinstance`) and gated by
// `make bench-compare`; docs/PERFORMANCE.md cites it.
func BenchmarkE21FirstInstance(b *testing.B) {
	const slowBy = 20 * time.Millisecond
	spec := workload.Spec{
		DBSources: 1, XMLSources: 1, WebSources: 1, TextSources: 1,
		RecordsPerSource: 24, Seed: 21,
		FlatOntology: true,
	}
	const q = "SELECT product"
	modes := []struct {
		name string
		opts extract.Options
	}{
		{"eager", extract.Options{}},
		{"barrier", extract.Options{DisableEagerStream: true}},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			world := workload.MustGenerate(spec)
			backends := extract.FromCatalog(world.Catalog)
			plan := faultinject.Plan{}
			for _, def := range world.Definitions {
				if def.ID == "xml_000" {
					plan[faultinject.Key(def)] = faultinject.Fault{AddLatency: slowBy}
				}
			}
			backends = faultinject.New(21, plan).WrapBackends(backends)
			mw, err := core.New(core.Config{
				Ontology: world.Ontology, Backends: backends, Extract: mode.opts,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := world.Apply(mw); err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			if _, mergeFree, err := mw.PlanMergeFree(ctx, q); err != nil || !mergeFree {
				b.Fatalf("query must prove merge-free (err=%v)", err)
			}
			if _, _, err := mw.QueryToStream(ctx, io.Discard, q, instance.FormatJSON); err != nil {
				b.Fatal(err) // warm compiled rules
			}
			var firstTotal time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fw := &firstWriteTimer{start: time.Now()}
				res, _, err := mw.QueryToStream(ctx, fw, q, instance.FormatJSON)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Matched) == 0 || !fw.set {
					b.Fatal("no instances reached the writer")
				}
				firstTotal += fw.first
			}
			b.StopTimer()
			b.ReportMetric(float64(firstTotal.Nanoseconds())/float64(b.N), "first_instance_ns")
		})
	}
}

// BenchmarkE22Batch — the multi-query batch path: eight distinct
// single-brand queries against a world whose two web sources answer
// with a 5ms fetch latency (remote partner catalogues — the paper's
// B2B setting). Eight sequential Query calls each stand up their own
// run document layer, so every query re-fetches and re-parses both
// pages; one QueryBatch shares a single document layer and extraction
// scatter across the batch, fetching each page once (the rule-result
// cache is off — CacheTTL 0, the default — so nothing else amortizes
// the repeats). One benchmark op answers all eight queries in both
// modes, so ns/op is directly comparable ns-per-batch;
// BENCH_batch.json records the pair (`make bench-batch`) and
// docs/PERFORMANCE.md cites it.
func BenchmarkE22Batch(b *testing.B) {
	const fetchLatency = 5 * time.Millisecond
	spec := workload.Spec{
		DBSources: 1, XMLSources: 1, WebSources: 2, TextSources: 1,
		RecordsPerSource: 60, Seed: 22,
	}
	brands := []string{"Seiko", "Casio", "Citizen", "Orient", "Pulsar", "Timex", "Swatch", "Fossil"}
	queries := make([]string, len(brands))
	for i, brand := range brands {
		queries[i] = "SELECT product WHERE brand='" + brand + "'"
	}
	newMW := func(b *testing.B) *core.Middleware {
		world := workload.MustGenerate(spec)
		plan := faultinject.Plan{}
		for _, def := range world.Definitions {
			if def.Kind == datasource.KindWeb {
				plan[faultinject.Key(def)] = faultinject.Fault{AddLatency: fetchLatency}
			}
		}
		backends := faultinject.New(22, plan).WrapBackends(extract.FromCatalog(world.Catalog))
		mw, err := core.New(core.Config{Ontology: world.Ontology, Backends: backends})
		if err != nil {
			b.Fatal(err)
		}
		if err := world.Apply(mw); err != nil {
			b.Fatal(err)
		}
		return mw
	}
	b.Run("batch8", func(b *testing.B) {
		mw := newMW(b)
		ctx := context.Background()
		run := func() {
			results, errs := mw.QueryBatch(ctx, queries)
			for i := range queries {
				if errs[i] != nil {
					b.Fatal(errs[i])
				}
				if len(results[i].Matched) == 0 {
					b.Fatalf("query %d matched nothing", i)
				}
			}
		}
		run() // warm compiled rules
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run()
		}
	})
	b.Run("sequential8", func(b *testing.B) {
		mw := newMW(b)
		ctx := context.Background()
		run := func() {
			for i, q := range queries {
				res, err := mw.Query(ctx, q)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Matched) == 0 {
					b.Fatalf("query %d matched nothing", i)
				}
			}
		}
		run() // warm compiled rules
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run()
		}
	})
}
