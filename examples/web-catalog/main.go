// Web catalog example: WebL wrapper extraction against real HTTP servers.
// Two simulated web shops serve HTML product pages from net/http listeners;
// the middleware fetches them through the HTTP-backed fetcher and extracts
// attributes with WebL rules — the unstructured-source path of the paper,
// exercised over an actual network stack.
//
// Run with: go run ./examples/web-catalog
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"

	"repro/internal/core"
	"repro/internal/datasource"
	"repro/internal/extract"
	"repro/internal/instance"
	"repro/internal/mapping"
	"repro/internal/ontology"
	"repro/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "web-catalog:", err)
		os.Exit(1)
	}
}

// serveShop starts an HTTP listener serving one HTML page and returns its
// URL.
func serveShop(path, html string) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		//lint:ignore errcheck a fixture-page write failure means the catalog client hung up
		_, _ = w.Write([]byte(html))
	})
	srv := &http.Server{Handler: mux}
	//lint:ignore errcheck Serve always returns ErrServerClosed once the example shuts the server down
	go func() { _ = srv.Serve(ln) }()
	//lint:ignore errcheck best-effort teardown of an example fixture server
	return "http://" + ln.Addr().String() + path, func() { _ = srv.Close() }, nil
}

func run() error {
	shopA, closeA, err := serveShop("/watches.html", `<html><body>
<h1>Chrono &amp; Co</h1>
<p><b>Seiko Men's Automatic Dive Watch</b></p>
<div class="spec">case: stainless-steel</div>
<div class="spec">price: 129.99</div>
</body></html>`)
	if err != nil {
		return err
	}
	defer closeA()

	shopB, closeB, err := serveShop("/catalog", `<html><body>
<table>
<tr><td class="b">Casio</td><td class="m">F91W</td><td class="c">resin</td><td class="p">15.00</td></tr>
<tr><td class="b">Citizen</td><td class="m">EcoDrive</td><td class="c">titanium</td><td class="p">210.00</td></tr>
<tr><td class="b">Seiko</td><td class="m">Presage</td><td class="c">stainless-steel</td><td class="p">420.00</td></tr>
</table>
</body></html>`)
	if err != nil {
		return err
	}
	defer closeB()

	// The middleware fetches over real HTTP.
	mw, err := core.New(core.Config{
		Ontology: ontology.Paper(),
		Backends: extract.Backends{Pages: &transport.HTTPFetcher{}},
	})
	if err != nil {
		return err
	}
	if err := mw.RegisterSource(datasource.Definition{ID: "shopA", Kind: datasource.KindWeb, URL: shopA}); err != nil {
		return err
	}
	if err := mw.RegisterSource(datasource.Definition{ID: "shopB", Kind: datasource.KindWeb, URL: shopB}); err != nil {
		return err
	}

	// Shop A: the paper's single-record page, with the paper's rule shape.
	singleRule := func(varName, pattern string) mapping.Rule {
		code := fmt.Sprintf(`
var P = GetURL(%q)
var St = Str_Search(Text(P), %q)
var %s = St[0][1]
`, shopA, pattern, varName)
		return mapping.Rule{Language: mapping.LangWebL, Code: code, Column: varName}
	}
	shopAEntries := []mapping.Entry{
		{AttributeID: "thing.product.brand", SourceID: "shopA",
			Rule: singleRule("brand", `<p><b>([0-9a-zA-Z']+)`), Scenario: mapping.SingleRecord},
		{AttributeID: "thing.product.watch.case", SourceID: "shopA",
			Rule: singleRule("c", `case: ([a-z-]+)`), Scenario: mapping.SingleRecord},
		{AttributeID: "thing.product.price", SourceID: "shopA",
			Rule: singleRule("price", `price: ([0-9.]+)`), Scenario: mapping.SingleRecord},
	}

	// Shop B: an n-record table page.
	multiRule := func(varName, pattern string) mapping.Rule {
		code := fmt.Sprintf(`
var P = GetURL(%q)
var %s = Column(Str_Search(Text(P), %q), 1)
`, shopB, varName, pattern)
		return mapping.Rule{Language: mapping.LangWebL, Code: code, Column: varName}
	}
	shopBEntries := []mapping.Entry{
		{AttributeID: "thing.product.brand", SourceID: "shopB", Rule: multiRule("brand", `<td class="b">([^<]+)</td>`)},
		{AttributeID: "thing.product.model", SourceID: "shopB", Rule: multiRule("model", `<td class="m">([^<]+)</td>`)},
		{AttributeID: "thing.product.watch.case", SourceID: "shopB", Rule: multiRule("c", `<td class="c">([^<]+)</td>`)},
		{AttributeID: "thing.product.price", SourceID: "shopB", Rule: multiRule("price", `<td class="p">([^<]+)</td>`)},
	}
	for _, e := range append(shopAEntries, shopBEntries...) {
		if err := mw.RegisterMapping(e); err != nil {
			return err
		}
	}

	ctx := context.Background()
	for _, q := range []string{
		"SELECT product WHERE brand = 'Seiko'",
		"SELECT product WHERE case = 'stainless-steel' AND price < 200",
	} {
		res, err := mw.Query(ctx, q)
		if err != nil {
			return err
		}
		fmt.Printf("S2SQL> %s\n", q)
		out, err := mw.Generator().SerializeString(res, instance.FormatText)
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	return nil
}
