// Federated inventory example: the middleware runs as a network service
// (the B2B deployment of the paper) and partner organizations interact with
// it purely over HTTP — registering sources and mappings through the API
// and querying with S2SQL, receiving OWL they can feed into their own
// semantic toolchains.
//
// Run with: go run ./examples/federated-inventory
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/ontology"
	"repro/internal/transport"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "federated-inventory:", err)
		os.Exit(1)
	}
}

func run() error {
	// The marketplace operator hosts the S2S endpoint over a generated
	// multi-source world (two warehouses already integrated).
	world := workload.MustGenerate(workload.Spec{
		DBSources: 1, XMLSources: 1, RecordsPerSource: 15, Seed: 99,
	})
	mw, err := core.NewWithCatalog(world.Ontology, world.Catalog, extract.Options{})
	if err != nil {
		return err
	}
	if err := world.Apply(mw); err != nil {
		return err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: transport.NewServer(mw)}
	//lint:ignore errcheck Serve always returns ErrServerClosed once the example shuts the server down
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	endpoint := "http://" + ln.Addr().String()
	fmt.Printf("S2S middleware serving at %s\n\n", endpoint)

	ctx := context.Background()
	client := transport.NewClient(endpoint, nil)

	// A partner first downloads the shared ontology — the common
	// understanding of the domain.
	owlDoc, err := client.Ontology(ctx)
	if err != nil {
		return err
	}
	ont, err := ontology.ReadOWL(strings.NewReader(owlDoc))
	if err != nil {
		return err
	}
	fmt.Printf("partner fetched shared ontology %q: %d classes, %d attributes\n",
		ont.Name, len(ont.Classes()), len(ont.Attributes()))

	// The partner publishes its own price list into the marketplace's text
	// store (in a real deployment this is the partner's own server; the
	// catalog stands in for it) and registers it over the API.
	world.Catalog.Text.MustAdd("partner-prices.txt",
		"supplier: PartnerCo\nitem brand=Seiko case=stainless-steel price=99.00\nitem brand=Orient case=gold price=149.00\n")
	if err := client.RegisterSource(ctx, transport.WireSource{
		ID: "partner", Kind: "text", Path: "partner-prices.txt",
	}); err != nil {
		return err
	}
	for attr, pattern := range map[string]string{
		"thing.product.brand":      `brand=([A-Za-z]+)`,
		"thing.product.watch.case": `case=([a-z-]+)`,
		"thing.product.price":      `price=([0-9.]+)`,
	} {
		if err := client.RegisterMapping(ctx, transport.WireMapping{
			Attribute: attr, Source: "partner", Language: "regex", Code: pattern,
		}); err != nil {
			return err
		}
	}
	fmt.Println("partner registered its price list through the API")

	// Everyone queries the single endpoint.
	for _, q := range []string{
		"SELECT product WHERE brand='Seiko' AND case='stainless-steel'",
		"SELECT product WHERE price < 100",
	} {
		resp, err := client.Query(ctx, q, "json")
		if err != nil {
			return err
		}
		fmt.Printf("\nS2SQL> %s\n  matched=%d related=%d errors=%d\n", q, resp.Matched, resp.Related, len(resp.Errors))
	}

	// The default answer format is OWL — semantic data another organization
	// can process with its own tools.
	resp, err := client.Query(ctx, "SELECT product WHERE brand='Seiko' AND case='stainless-steel'", "")
	if err != nil {
		return err
	}
	fmt.Println("\n--- OWL answer (first lines) ---")
	printed := 0
	for _, line := range splitLines(resp.Body) {
		fmt.Println(line)
		printed++
		if printed >= 14 {
			fmt.Println("...")
			break
		}
	}
	return nil
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
