// Quickstart reproduces the paper's running example end to end:
//
//  1. The Figure-2 ontology (thing > product > watch, provider).
//  2. The two data sources of §2.3.1: the watch web page "wpage_81" and the
//     relational database "DB_ID_45".
//  3. The two mapping entries printed in the paper:
//     thing.product.brand      = watch.webl, wpage_81
//     thing.product.watch.case = SELECT ..., DB_ID_45
//  4. The §2.5 query: SELECT product WHERE brand='Seiko' AND
//     case='stainless-steel'.
//  5. OWL instances on stdout (§2.6).
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/datasource"
	"repro/internal/extract"
	"repro/internal/instance"
	"repro/internal/mapping"
	"repro/internal/ontology"
	"repro/internal/reldb"
)

// watchWebL is the paper's extraction rule (§2.3.1 step 2), verbatim except
// for the URL.
const watchWebL = `
var P = GetURL("http://www.eshop.com/products/watches.html");
var pText = Text(P);
var regexpr = "<p><b>" + ` + "`[0-9a-zA-Z']+`" + `;
var St = Str_Search(pText, regexpr);
var spliter = Str_Split(St[0][0],"<>");
var brand = Select(spliter[2],0,6);
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// The data sources: a web page holding one record (the single-record
	// scenario) and a database of watches (the n-record scenario).
	catalog := datasource.NewCatalog()
	catalog.AddPage("http://www.eshop.com/products/watches.html",
		`<html><body><p><b>Seiko Men's Automatic Dive Watch</b></p></body></html>`)

	db := reldb.New()
	db.MustExec("CREATE TABLE atable (id INTEGER PRIMARY KEY, brand TEXT, watch_case TEXT, price REAL)")
	db.MustExec(`INSERT INTO atable (id, brand, watch_case, price) VALUES
		(1, 'Seiko', 'stainless-steel', 129.99),
		(2, 'Seiko', 'gold', 299.50),
		(3, 'Casio', 'resin', 15.00)`)
	catalog.AddDB("watchdb", db)

	// The middleware, bound to the Figure-2 ontology.
	mw, err := core.NewWithCatalog(ontology.Paper(), catalog, extract.Options{})
	if err != nil {
		return err
	}

	// Register data sources (§2.3.2): connection info lives in one place.
	for _, def := range []datasource.Definition{
		{ID: "wpage_81", Kind: datasource.KindWeb, URL: "http://www.eshop.com/products/watches.html"},
		{ID: "DB_ID_45", Kind: datasource.KindDatabase, DSN: "watchdb",
			Props: map[string]string{"driver": "reldb", "login": "integration"}},
	} {
		if err := mw.RegisterSource(def); err != nil {
			return err
		}
	}

	// Register the paper's attribute mappings (§2.3.1 step 3).
	entries := []mapping.Entry{
		// thing.product.brand = watch.webl, wpage_81
		{
			AttributeID: "thing.product.brand",
			SourceID:    "wpage_81",
			Rule:        mapping.Rule{Language: mapping.LangWebL, Code: watchWebL},
			Scenario:    mapping.SingleRecord,
		},
		// thing.product.watch.case = SELECT ..., DB_ID_45
		{
			AttributeID: "thing.product.watch.case",
			SourceID:    "DB_ID_45",
			Rule:        mapping.Rule{Language: mapping.LangSQL, Code: "SELECT watch_case FROM atable ORDER BY id"},
		},
		{
			AttributeID: "thing.product.price",
			SourceID:    "DB_ID_45",
			Rule:        mapping.Rule{Language: mapping.LangSQL, Code: "SELECT price FROM atable ORDER BY id"},
		},
		{
			AttributeID: "thing.product.brand",
			SourceID:    "DB_ID_45",
			Rule:        mapping.Rule{Language: mapping.LangSQL, Code: "SELECT brand FROM atable ORDER BY id"},
		},
	}
	for _, e := range entries {
		if err := mw.RegisterMapping(e); err != nil {
			return err
		}
	}

	// The paper's query (§2.5) — note: no FROM, no formats, no locations.
	const query = "SELECT product WHERE brand='Seiko' AND case='stainless-steel'"
	fmt.Printf("S2SQL> %s\n\n", query)

	res, err := mw.Query(context.Background(), query)
	if err != nil {
		return err
	}
	fmt.Printf("matched %d instance(s); %d related; %d extraction error(s)\n\n",
		len(res.Matched), len(res.Related), len(res.Errors))

	// Primary output: OWL instances (§2.6).
	fmt.Println("--- OWL (RDF/XML) ---")
	if _, err := fmt.Println(must(mw.Generator().SerializeString(res, instance.FormatOWL))); err != nil {
		return err
	}
	fmt.Println("--- plain text view ---")
	fmt.Println(must(mw.Generator().SerializeString(res, instance.FormatText)))
	return nil
}

func must(s string, err error) string {
	if err != nil {
		panic(err)
	}
	return s
}
