// B2B supply chain example: three partner organizations publish the same
// product domain through entirely different systems — a relational ERP
// database, an XML catalog feed, and a plain-text wholesale price list —
// and a fourth joins at runtime. One S2SQL query integrates them all, the
// heterogeneity the paper's introduction motivates.
//
// Run with: go run ./examples/b2b-supplychain
package main

import (
	"context"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/datasource"
	"repro/internal/extract"
	"repro/internal/instance"
	"repro/internal/mapping"
	"repro/internal/ontology"
	"repro/internal/reldb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "b2b-supplychain:", err)
		os.Exit(1)
	}
}

func run() error {
	catalog := datasource.NewCatalog()
	mw, err := core.NewWithCatalog(ontology.Paper(), catalog, extract.Options{})
	if err != nil {
		return err
	}

	if err := organizationAlpha(mw, catalog); err != nil {
		return err
	}
	if err := organizationBeta(mw, catalog); err != nil {
		return err
	}
	if err := organizationGamma(mw, catalog); err != nil {
		return err
	}

	ctx := context.Background()
	queries := []string{
		"SELECT product WHERE case = 'stainless-steel'",
		"SELECT product WHERE price < 100",
		"SELECT provider",
	}
	for _, q := range queries {
		res, err := mw.Query(ctx, q)
		if err != nil {
			return err
		}
		fmt.Printf("S2SQL> %s\n  -> %d matched across %d organizations\n", q, len(res.Matched), 3)
		for _, in := range res.Matched {
			fmt.Printf("     %-12s %-22s %-18s from %s\n", in.Value("thing.product.brand"),
				in.Value("thing.product.model"), in.Value("thing.product.watch.case"), in.Sources[0])
		}
	}

	// A fourth organization joins: registration only, no code changes.
	fmt.Println("\norganization delta joins the marketplace (mappings only) ...")
	if err := organizationDelta(mw, catalog); err != nil {
		return err
	}
	res, err := mw.Query(ctx, "SELECT product WHERE case = 'stainless-steel'")
	if err != nil {
		return err
	}
	fmt.Printf("S2SQL> SELECT product WHERE case = 'stainless-steel'\n  -> now %d matched across 4 organizations\n\n", len(res.Matched))

	out, err := mw.Generator().SerializeString(res, instance.FormatTurtle)
	if err != nil {
		return err
	}
	fmt.Println("--- integrated result as Turtle ---")
	fmt.Println(out)
	return nil
}

// organizationAlpha runs an ERP on a relational database.
func organizationAlpha(mw *core.Middleware, catalog *datasource.Catalog) error {
	db := reldb.New()
	db.MustExec("CREATE TABLE erp_items (sku INTEGER PRIMARY KEY, make TEXT, model_no TEXT, casing TEXT, unit_price REAL)")
	db.MustExec(`INSERT INTO erp_items (sku, make, model_no, casing, unit_price) VALUES
		(100, 'Seiko', 'SKX007', 'stainless-steel', 189.00),
		(101, 'Orient', 'Bambino', 'stainless-steel', 139.00),
		(102, 'Casio', 'F91W', 'resin', 14.50)`)
	catalog.AddDB("alpha-erp", db)
	if err := mw.RegisterSource(datasource.Definition{ID: "alpha", Kind: datasource.KindDatabase, DSN: "alpha-erp"}); err != nil {
		return err
	}
	// Note the schematic heterogeneity: make/model_no/casing vs the
	// ontology's brand/model/case — resolved entirely in the mapping.
	rules := map[string]string{
		"thing.product.brand":      "SELECT make FROM erp_items ORDER BY sku",
		"thing.product.model":      "SELECT model_no FROM erp_items ORDER BY sku",
		"thing.product.watch.case": "SELECT casing FROM erp_items ORDER BY sku",
		"thing.product.price":      "SELECT unit_price FROM erp_items ORDER BY sku",
	}
	for attr, sql := range rules {
		if err := mw.RegisterMapping(mapping.Entry{
			AttributeID: attr, SourceID: "alpha",
			Rule: mapping.Rule{Language: mapping.LangSQL, Code: sql},
		}); err != nil {
			return err
		}
	}
	db.MustExec("CREATE TABLE org (name TEXT)")
	db.MustExec("INSERT INTO org (name) VALUES ('AlphaWatches')")
	return mw.RegisterMapping(mapping.Entry{
		AttributeID: "thing.provider.name", SourceID: "alpha",
		Rule:     mapping.Rule{Language: mapping.LangSQL, Code: "SELECT name FROM org"},
		Scenario: mapping.SingleRecord,
	})
}

// organizationBeta publishes an XML catalog feed.
func organizationBeta(mw *core.Middleware, catalog *datasource.Catalog) error {
	catalog.XML.MustAdd("beta-feed.xml", `<?xml version="1.0"?>
<feed vendor="BetaTrading">
  <item><marke>Seiko</marke><modell>Presage</modell><gehaeuse>stainless-steel</gehaeuse><preis>420.00</preis></item>
  <item><marke>Swatch</marke><modell>Sistem51</modell><gehaeuse>plastic</gehaeuse><preis>150.00</preis></item>
  <vendorinfo><n>BetaTrading</n></vendorinfo>
</feed>`)
	if err := mw.RegisterSource(datasource.Definition{ID: "beta", Kind: datasource.KindXML, Path: "beta-feed.xml"}); err != nil {
		return err
	}
	// Semantic heterogeneity: German element names map onto the shared
	// ontology's concepts.
	rules := map[string]string{
		"thing.product.brand":      "/feed/item/marke",
		"thing.product.model":      "/feed/item/modell",
		"thing.product.watch.case": "/feed/item/gehaeuse",
		"thing.product.price":      "/feed/item/preis",
	}
	for attr, expr := range rules {
		if err := mw.RegisterMapping(mapping.Entry{
			AttributeID: attr, SourceID: "beta",
			Rule: mapping.Rule{Language: mapping.LangXPath, Code: expr},
		}); err != nil {
			return err
		}
	}
	return mw.RegisterMapping(mapping.Entry{
		AttributeID: "thing.provider.name", SourceID: "beta",
		Rule:     mapping.Rule{Language: mapping.LangXPath, Code: "/feed/vendorinfo/n"},
		Scenario: mapping.SingleRecord,
	})
}

// organizationGamma faxes around plain-text price lists.
func organizationGamma(mw *core.Middleware, catalog *datasource.Catalog) error {
	catalog.Text.MustAdd("gamma-prices.txt", `GAMMA WHOLESALE — CONFIDENTIAL
supplier: GammaImports
line W1: brand Citizen | model NY0040 | case stainless-steel | eur 165.00
line W2: brand Casio | model A158 | case chrome | eur 22.90
`)
	if err := mw.RegisterSource(datasource.Definition{ID: "gamma", Kind: datasource.KindText, Path: "gamma-prices.txt"}); err != nil {
		return err
	}
	rules := map[string]string{
		"thing.product.brand":      `brand ([A-Za-z]+) \|`,
		"thing.product.model":      `model ([A-Za-z0-9]+) \|`,
		"thing.product.watch.case": `case ([a-z-]+) \|`,
		"thing.product.price":      `eur ([0-9.]+)`,
	}
	for attr, expr := range rules {
		if err := mw.RegisterMapping(mapping.Entry{
			AttributeID: attr, SourceID: "gamma",
			Rule: mapping.Rule{Language: mapping.LangRegex, Code: expr},
		}); err != nil {
			return err
		}
	}
	return mw.RegisterMapping(mapping.Entry{
		AttributeID: "thing.provider.name", SourceID: "gamma",
		Rule:     mapping.Rule{Language: mapping.LangRegex, Code: `supplier: ([A-Za-z]+)`},
		Scenario: mapping.SingleRecord,
	})
}

// organizationDelta joins late with a web shop.
func organizationDelta(mw *core.Middleware, catalog *datasource.Catalog) error {
	const url = "http://delta.example/shop.html"
	catalog.AddPage(url, `<html><head><title>DeltaTime</title></head><body>
<div class="p"><b>Seiko</b> <i>Turtle</i> <em>stainless-steel</em> <u>310.00</u></div>
<div class="p"><b>Timex</b> <i>Weekender</i> <em>brass</em> <u>45.00</u></div>
</body></html>`)
	if err := mw.RegisterSource(datasource.Definition{ID: "delta", Kind: datasource.KindWeb, URL: url}); err != nil {
		return err
	}
	rule := func(varName, pattern string) string {
		return fmt.Sprintf("var P = GetURL(%q)\nvar ms = Str_Search(Text(P), %q)\nvar %s = Column(ms, 1)\n", url, pattern, varName)
	}
	entries := []mapping.Entry{
		{AttributeID: "thing.product.brand", SourceID: "delta",
			Rule: mapping.Rule{Language: mapping.LangWebL, Code: rule("brand", `<b>([^<]+)</b>`), Column: "brand"}},
		{AttributeID: "thing.product.model", SourceID: "delta",
			Rule: mapping.Rule{Language: mapping.LangWebL, Code: rule("model", `<i>([^<]+)</i>`), Column: "model"}},
		{AttributeID: "thing.product.watch.case", SourceID: "delta",
			Rule: mapping.Rule{Language: mapping.LangWebL, Code: rule("c", `<em>([^<]+)</em>`), Column: "c"}},
		{AttributeID: "thing.product.price", SourceID: "delta",
			Rule: mapping.Rule{Language: mapping.LangWebL, Code: rule("price", `<u>([^<]+)</u>`), Column: "price"}},
	}
	for _, e := range entries {
		if err := mw.RegisterMapping(e); err != nil {
			return err
		}
	}
	return nil
}
