// Partner alignment example: two B2B partners model the same domain with
// different ontologies. The marketplace answers a query under its watch
// ontology, translates the OWL answer into the partner's German-language
// katalog ontology through a declared alignment, materializes the partner's
// subclass axioms, and the partner queries the result with SPARQL in its
// own vocabulary — cross-organization semantics, end to end.
//
// Run with: go run ./examples/partner-alignment
package main

import (
	"context"
	"fmt"
	"os"

	"repro/internal/align"
	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/ontology"
	"repro/internal/rdf"
	"repro/internal/reason"
	"repro/internal/sparql"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "partner-alignment:", err)
		os.Exit(1)
	}
}

func run() error {
	// The marketplace: the paper ontology over a generated world.
	world := workload.MustGenerate(workload.Spec{
		DBSources: 1, XMLSources: 1, RecordsPerSource: 6, Seed: 77,
	})
	mw, err := core.NewWithCatalog(world.Ontology, world.Catalog, extract.Options{})
	if err != nil {
		return err
	}
	if err := world.Apply(mw); err != nil {
		return err
	}
	mw.Generator().Provenance = true

	// The partner's own ontology.
	partner, err := buildPartnerOntology()
	if err != nil {
		return err
	}

	// The declared alignment between the two schemas.
	alignment := align.New(world.Ontology, partner)
	for _, step := range []error{
		alignment.MapClass("product", "produkt"),
		alignment.MapClass("watch", "uhr"),
		alignment.MapClass("provider", "lieferant"),
		alignment.MapAttribute("thing.product.brand", "ding.produkt.marke"),
		alignment.MapAttribute("thing.product.price", "ding.produkt.preis"),
		alignment.MapAttribute("thing.product.watch.case", "ding.produkt.uhr.gehaeuse"),
		alignment.MapAttribute("thing.provider.name", "ding.lieferant.name"),
		alignment.MapRelation("product", "hasProvider", "produkt", "hatLieferant"),
	} {
		if step != nil {
			return step
		}
	}

	// 1. The marketplace answers in its own vocabulary.
	res, err := mw.Query(context.Background(), "SELECT product WHERE price < 300")
	if err != nil {
		return err
	}
	graph, err := mw.Generator().ToGraph(res)
	if err != nil {
		return err
	}
	fmt.Printf("marketplace answer: %d instances, %d triples\n", len(res.Matched), graph.Len())

	// 2. Translate into the partner's vocabulary.
	translated, report, err := alignment.Translate(graph)
	if err != nil {
		return err
	}
	fmt.Printf("translated: %d triples kept, %d dropped (unmapped: %v)\n",
		report.TranslatedTriples, report.DroppedTriples, report.UnmappedAttributes)

	// 3. Materialize the partner's own subclass axioms over the data.
	materialized, err := reason.Materialize(partner.ToGraph(), translated)
	if err != nil {
		return err
	}
	fmt.Printf("after partner-side reasoning: %d triples\n\n", materialized.Len())

	// 4. The partner asks questions in German.
	out, err := sparql.Select(materialized, `PREFIX k: <http://partner.de/katalog#>
SELECT ?uhr ?marke ?preis WHERE {
	?uhr a k:produkt .
	?uhr k:ding_produkt_marke ?marke .
	?uhr k:ding_produkt_preis ?preis .
	FILTER (?preis < 200)
} ORDER BY ?preis`)
	if err != nil {
		return err
	}
	fmt.Println("partner SPARQL> produkte unter 200:")
	for _, b := range out.Bindings {
		fmt.Printf("  %-40s %-10s %s\n", b["uhr"], b["marke"], b["preis"])
	}

	// Provenance survived translation — the partner can audit lineage.
	prov, err := sparql.Select(materialized,
		`SELECT ?x ?src WHERE { ?x <http://s2s.uma.pt/ns#sourcedFrom> ?src . } LIMIT 3`)
	if err != nil {
		return err
	}
	fmt.Println("\nprovenance (first 3):")
	for _, b := range prov.Bindings {
		fmt.Printf("  %s <- %s\n", b["x"], b["src"])
	}
	return nil
}

func buildPartnerOntology() (*ontology.Ontology, error) {
	ont, err := ontology.New("http://partner.de/katalog#", "katalog", "ding")
	if err != nil {
		return nil, err
	}
	for _, c := range []struct{ name, parent string }{
		{"produkt", "ding"}, {"uhr", "produkt"}, {"lieferant", "ding"},
	} {
		if _, err := ont.AddClass(c.name, c.parent); err != nil {
			return nil, err
		}
	}
	for _, a := range []struct {
		class, name string
		dt          rdf.IRI
	}{
		{"produkt", "marke", rdf.XSDString},
		{"produkt", "preis", rdf.XSDDouble},
		{"uhr", "gehaeuse", rdf.XSDString},
		{"lieferant", "name", rdf.XSDString},
	} {
		if _, err := ont.AddAttribute(a.class, a.name, a.dt); err != nil {
			return nil, err
		}
	}
	if _, err := ont.AddRelation("produkt", "hatLieferant", "lieferant"); err != nil {
		return nil, err
	}
	return ont, nil
}
