GO ?= go

.PHONY: check vet fmt build test bin clean

# check is the full gate: static analysis, formatting, build, and the
# test suite under the race detector.
check: vet fmt build test

vet:
	$(GO) vet ./...

# fmt fails (and lists the offenders) if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# bin builds the two executables into ./bin.
bin:
	$(GO) build -o bin/s2s-server ./cmd/s2s-server
	$(GO) build -o bin/s2s-query ./cmd/s2s-query

clean:
	rm -rf bin
