GO ?= go

.PHONY: check vet fmt build test chaos bin clean

# check is the full gate: static analysis, formatting, build, the test
# suite under the race detector, and the seeded chaos suite.
check: vet fmt build test chaos

vet:
	$(GO) vet ./...

# fmt fails (and lists the offenders) if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# chaos runs the seeded fault-injection scenarios (deterministic; see
# docs/ROBUSTNESS.md) on their own, for quick iteration on recovery code.
chaos:
	$(GO) test -race -run Chaos ./internal/integration

# bin builds the two executables into ./bin.
bin:
	$(GO) build -o bin/s2s-server ./cmd/s2s-server
	$(GO) build -o bin/s2s-query ./cmd/s2s-query

clean:
	rm -rf bin
