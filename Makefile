GO ?= go

# Benchmarks: keep runs short by default; override for steadier numbers,
# e.g. `make bench BENCHTIME=1s`.
BENCHTIME ?= 100ms

.PHONY: check vet fmt lint build test chaos chaos-cluster bench bench-compare bench-pushdown bench-stream bench-hedge bench-semijoin bench-firstinstance bench-batch bin clean

# check is the full gate: go vet, formatting, the repo's own static
# analysis suite, build, the test suite under the race detector, and the
# seeded chaos suite.
check: vet fmt lint build test chaos

vet:
	$(GO) vet ./...

# fmt fails (and lists the offenders) if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

build:
	$(GO) build ./...

# test runs everything under the race detector; the cache-coherence and
# concurrency suites (plan/schema/compiled-rule invalidation, singleflight
# dedup, concurrent query+invalidation) rely on -race staying on here.
test:
	$(GO) test -race ./...

# lint runs the repo-specific analyzer suite (stdlibonly, errwrap,
# spanend, ctxfield, determinism, lockbalance, pkgdoc, wgbalance,
# goroleak, errcheck, leakytimer — see docs/STATIC_ANALYSIS.md) over
# every package; non-zero exit on findings.
lint:
	$(GO) run ./cmd/s2s-lint

# chaos runs the seeded fault-injection scenarios (deterministic; see
# docs/ROBUSTNESS.md) on their own, for quick iteration on recovery code.
# The name matches the 3-node cluster suite too (TestChaosCluster*).
chaos:
	$(GO) test -race -run Chaos ./internal/integration

# chaos-cluster runs only the 3-node cluster fault suite (slow node,
# node death, mid-query kill, lost partition, catalog race; see
# docs/CLUSTER.md) under the race detector.
chaos-cluster:
	$(GO) test -race -run ChaosCluster ./internal/integration

# bench runs the root benchmark families (bench_test.go, E1–E22) with
# allocation stats and persists a machine-readable baseline for the perf
# trajectory. The text output still streams to the terminal via stderr.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) . \
		| tee /dev/stderr \
		| $(GO) run ./cmd/s2s-benchjson > BENCH_baseline.json
	@echo "wrote BENCH_baseline.json"

# bench-compare re-runs the benchmark families and diffs them against
# the committed baseline, failing on any >20% ns/op or allocs/op
# regression. Use a longer BENCHTIME (e.g. 1s) for trustworthy numbers
# on noisy machines.
bench-compare:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) . \
		| $(GO) run ./cmd/s2s-benchjson > /tmp/s2s-bench-current.json
	$(GO) run ./cmd/s2s-benchjson -compare BENCH_baseline.json /tmp/s2s-bench-current.json

# bench-pushdown records only the query-planner family (E17
# pushdown/nopushdown pair) into BENCH_pushdown.json — the measurement
# docs/PERFORMANCE.md cites for the planner's speedup.
bench-pushdown:
	$(GO) test -run '^$$' -bench BenchmarkE17 -benchmem -benchtime $(BENCHTIME) . \
		| tee /dev/stderr \
		| $(GO) run ./cmd/s2s-benchjson > BENCH_pushdown.json
	@echo "wrote BENCH_pushdown.json"

# bench-stream records only the streaming-pipeline family (E18
# streaming/materializing pair across the row sweep) into
# BENCH_stream.json — the measurement docs/STREAMING.md and
# docs/PERFORMANCE.md cite for the bounded-memory path. Compare a fresh
# run against it with
#   go run ./cmd/s2s-benchjson -compare BENCH_stream.json <current.json>
# which fails on any >20% ns/op or allocs/op regression.
bench-stream:
	$(GO) test -run '^$$' -bench BenchmarkE18 -benchmem -benchtime $(BENCHTIME) . \
		| tee /dev/stderr \
		| $(GO) run ./cmd/s2s-benchjson > BENCH_stream.json
	@echo "wrote BENCH_stream.json"

# bench-hedge records only the hedged-dispatch family (E19 hedged/
# unhedged pair against a 3-node cluster with one slow node) into
# BENCH_hedge.json — the measurement docs/CLUSTER.md cites for the
# tail-latency win. Compare a fresh run against it with
#   go run ./cmd/s2s-benchjson -compare BENCH_hedge.json <current.json>
bench-hedge:
	$(GO) test -run '^$$' -bench BenchmarkE19 -benchmem -benchtime $(BENCHTIME) . \
		| tee /dev/stderr \
		| $(GO) run ./cmd/s2s-benchjson > BENCH_hedge.json
	@echo "wrote BENCH_hedge.json"

# bench-semijoin records only the planner-v3 family (E20 semijoin/
# nosemijoin pair over a directory-plus-details world) into
# BENCH_semijoin.json — the measurement docs/PERFORMANCE.md cites for
# semi-join narrowing. Compare a fresh run against it with
#   go run ./cmd/s2s-benchjson -compare BENCH_semijoin.json <current.json>
bench-semijoin:
	$(GO) test -run '^$$' -bench BenchmarkE20 -benchmem -benchtime $(BENCHTIME) . \
		| tee /dev/stderr \
		| $(GO) run ./cmd/s2s-benchjson > BENCH_semijoin.json
	@echo "wrote BENCH_semijoin.json"

# bench-firstinstance records only the barrier-free streaming family
# (E21 eager/barrier pair, one slow source on a merge-free query) into
# BENCH_firstinstance.json — the time-to-first-instance measurement
# docs/STREAMING.md and docs/PERFORMANCE.md cite. The custom
# first_instance_ns metric is gated by s2s-benchjson -compare alongside
# ns/op. Compare a fresh run against it with
#   go run ./cmd/s2s-benchjson -compare BENCH_firstinstance.json <current.json>
bench-firstinstance:
	$(GO) test -run '^$$' -bench BenchmarkE21 -benchmem -benchtime $(BENCHTIME) . \
		| tee /dev/stderr \
		| $(GO) run ./cmd/s2s-benchjson > BENCH_firstinstance.json
	@echo "wrote BENCH_firstinstance.json"

# bench-batch records only the multi-query batch family (E22 batch8/
# sequential8 pair against remote web sources) into BENCH_batch.json —
# the per-query amortization measurement docs/PERFORMANCE.md cites for
# POST /query/batch. Compare a fresh run against it with
#   go run ./cmd/s2s-benchjson -compare BENCH_batch.json <current.json>
bench-batch:
	$(GO) test -run '^$$' -bench BenchmarkE22 -benchmem -benchtime $(BENCHTIME) . \
		| tee /dev/stderr \
		| $(GO) run ./cmd/s2s-benchjson > BENCH_batch.json
	@echo "wrote BENCH_batch.json"

# bin builds the two executables into ./bin.
bin:
	$(GO) build -o bin/s2s-server ./cmd/s2s-server
	$(GO) build -o bin/s2s-query ./cmd/s2s-query

clean:
	rm -rf bin
