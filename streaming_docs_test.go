package repro

// streaming_docs_test.go holds the two repo-level guarantees of the
// streaming pipeline: the bounded-memory claim E18 measures (peak
// buffered bytes stay flat while source rows grow 10x), and the
// doc-drift checks that keep docs/STREAMING.md in lockstep with the
// knobs, wire protocol, and observability names the code exports —
// the same regime docs/OBSERVABILITY.md lives under.

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/instance"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/workload"
)

const streamingDocPath = "docs/STREAMING.md"

func buildStreamingMW(t *testing.T, records int) *core.Middleware {
	t.Helper()
	world := workload.MustGenerate(workload.Spec{
		DBSources: 1, XMLSources: 1, TextSources: 1,
		RecordsPerSource: records, Seed: 18,
	})
	mw, err := core.NewWithCatalog(world.Ontology, world.Catalog, extract.Options{Streaming: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := world.Apply(mw); err != nil {
		t.Fatal(err)
	}
	return mw
}

// TestStreamingBoundedMemory is the acceptance check behind E18: when
// source rows grow 10x, the streaming path's peak buffered output
// (ChunkStats.HighWater — the most bytes ever held before a flush)
// must stay flat, within 1.5x. Total bytes must still grow with the
// rows, proving the flat high-water mark is buffering discipline and
// not a smaller answer.
func TestStreamingBoundedMemory(t *testing.T) {
	ctx := context.Background()
	run := func(records int) instance.ChunkStats {
		mw := buildStreamingMW(t, records)
		_, stats, err := mw.QueryToStream(ctx, io.Discard, "SELECT product", instance.FormatJSON)
		if err != nil {
			t.Fatalf("records=%d: %v", records, err)
		}
		return stats
	}
	base := run(100)
	big := run(1000)

	if big.Bytes < base.Bytes*5 {
		t.Fatalf("10x rows produced %d bytes vs %d at 1x; output did not grow, flatness proves nothing",
			big.Bytes, base.Bytes)
	}
	if limit := base.HighWater * 3 / 2; big.HighWater > limit {
		t.Errorf("high-water mark grew with input: %d bytes at 10x rows, %d at 1x (limit 1.5x = %d)",
			big.HighWater, base.HighWater, limit)
	}
	if base.HighWater == 0 || big.Chunks <= base.Chunks {
		t.Errorf("chunk stats implausible: base high-water %d, chunks %d -> %d",
			base.HighWater, base.Chunks, big.Chunks)
	}
}

// TestStreamingDocCoversKnobs keeps docs/STREAMING.md in lockstep with
// the configuration surface: both extract.Options knobs by name, the
// default batch window, and the chunk flush threshold.
func TestStreamingDocCoversKnobs(t *testing.T) {
	doc := readStreamingDoc(t)
	for _, want := range []string{
		"`extract.Options.Streaming`",
		"`extract.Options.StreamBatchRecords`",
		fmt.Sprintf("%d records", extract.DefaultStreamBatchRecords),
		fmt.Sprintf("%d KiB", instance.DefaultChunkSize/1024),
		"-stream",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("%s does not mention %s", streamingDocPath, want)
		}
	}
}

// TestStreamingDocCoversWireProtocol pins the documented HTTP surface
// to the exported header and trailer names: a rename in the transport
// without a doc update fails here, and so does documenting a header
// the server no longer sends.
func TestStreamingDocCoversWireProtocol(t *testing.T) {
	doc := readStreamingDoc(t)
	for _, want := range []string{
		"/query/stream",
		transport.StreamMatchedHeader,
		transport.StreamRelatedHeader,
		transport.StreamCompleteTrailer,
		transport.StreamErrorsTrailer,
		transport.StreamErrorTrailer,
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("%s does not mention %s", streamingDocPath, want)
		}
	}
}

// TestStreamingDocCoversStagesAndSignals checks the documented pipeline
// stages and observability hooks: the four stages of the stream, the
// per-source batch counter, and the per-batch span event.
func TestStreamingDocCoversStagesAndSignals(t *testing.T) {
	doc := readStreamingDoc(t)
	for _, want := range []string{
		"extract", "assemble", "serialize", "flush",
		obs.MetricStreamBatches,
		"`stream_batch`",
		"backpressure",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("%s does not mention %s", streamingDocPath, want)
		}
	}
}

// TestStreamingDocCoversBarrierFree pins the barrier-free section: the
// mode header and its values, the eager knob, the proof counter, and
// the batch endpoint's wire names must all be documented — and the
// documented fallback matrix must match instance.EagerFormat.
func TestStreamingDocCoversBarrierFree(t *testing.T) {
	doc := readStreamingDoc(t)
	for _, want := range []string{
		transport.StreamModeHeader,
		transport.StreamModeEager,
		transport.StreamModeBarrier,
		"`extract.Options.DisableEagerStream`",
		obs.MetricPlannerMergeFree,
		"/query/batch",
		transport.BatchContentType,
		"BenchmarkE21FirstInstance",
		"first_instance_ns",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("%s does not mention %s", streamingDocPath, want)
		}
	}
	for _, row := range []string{
		"| JSON | eager | barrier |",
		"| XML | eager | barrier |",
	} {
		if !strings.Contains(doc, row) {
			t.Errorf("%s fallback matrix missing row %q", streamingDocPath, row)
		}
	}
	if instance.EagerFormat(instance.FormatOWL) || instance.EagerFormat(instance.FormatText) ||
		!instance.EagerFormat(instance.FormatJSON) || !instance.EagerFormat(instance.FormatXML) {
		t.Error("instance.EagerFormat diverged from the documented fallback matrix")
	}
}

func readStreamingDoc(t *testing.T) string {
	t.Helper()
	raw, err := os.ReadFile(streamingDocPath)
	if err != nil {
		t.Fatalf("read %s: %v", streamingDocPath, err)
	}
	return string(raw)
}
