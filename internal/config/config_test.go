package config

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/workload"
)

func builtWorld(t *testing.T) (*core.Middleware, *workload.World) {
	t.Helper()
	world := workload.MustGenerate(workload.Spec{
		DBSources: 1, XMLSources: 1, WebSources: 1, TextSources: 1,
		RecordsPerSource: 8, Seed: 51,
	})
	mw, err := core.NewWithCatalog(world.Ontology, world.Catalog, extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := world.Apply(mw); err != nil {
		t.Fatal(err)
	}
	if err := mw.SetClassKey("product", "thing.product.model"); err != nil {
		t.Fatal(err)
	}
	return mw, world
}

func TestRoundTripThroughFile(t *testing.T) {
	mw, world := builtWorld(t)
	cfg, err := FromMiddleware(mw)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "s2s.json")
	if err := SaveFile(path, cfg); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild against the same backends and compare query behaviour.
	rebuilt, err := loaded.BuildMiddleware(core.Config{Backends: extract.FromCatalog(world.Catalog)})
	if err != nil {
		t.Fatal(err)
	}
	const q = "SELECT product WHERE brand='Seiko'"
	a, err := mw.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rebuilt.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Matched) != len(b.Matched) {
		t.Fatalf("original %d matched, rebuilt %d", len(a.Matched), len(b.Matched))
	}
	if got := rebuilt.Mappings().ClassKey("product"); got != "thing.product.model" {
		t.Errorf("class key lost: %q", got)
	}
	if rebuilt.Sources().Len() != mw.Sources().Len() {
		t.Errorf("sources: %d vs %d", rebuilt.Sources().Len(), mw.Sources().Len())
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":          `not json`,
		"missing ontology": `{"sources": []}`,
		"unknown field":    `{"ontology": "x", "bogus": 1}`,
	}
	for name, doc := range cases {
		if _, err := Read(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestBuildMiddlewareErrors(t *testing.T) {
	mw, _ := builtWorld(t)
	good, err := FromMiddleware(mw)
	if err != nil {
		t.Fatal(err)
	}
	t.Run("bad ontology", func(t *testing.T) {
		bad := *good
		bad.OntologyOWL = "<not-owl/>"
		if _, err := bad.BuildMiddleware(core.Config{}); err == nil {
			t.Error("accepted")
		}
	})
	t.Run("bad source kind", func(t *testing.T) {
		cfg := *good
		cfg.Sources = append(cfg.Sources[:0:0], cfg.Sources...)
		cfg.Sources[0].Kind = "tape-drive"
		if _, err := cfg.BuildMiddleware(core.Config{}); err == nil {
			t.Error("accepted")
		}
	})
	t.Run("bad mapping", func(t *testing.T) {
		cfg := *good
		cfg.Mappings = append(cfg.Mappings[:0:0], cfg.Mappings...)
		cfg.Mappings[0].Attribute = "thing.nosuch"
		if _, err := cfg.BuildMiddleware(core.Config{}); err == nil {
			t.Error("accepted")
		}
	})
	t.Run("bad class key", func(t *testing.T) {
		cfg := *good
		cfg.ClassKeys = map[string]string{"nosuch": "thing.product.brand"}
		if _, err := cfg.BuildMiddleware(core.Config{}); err == nil {
			t.Error("accepted")
		}
	})
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file loaded")
	}
}
