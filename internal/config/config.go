// Package config persists a complete S2S middleware configuration — the
// shared ontology, the registered data sources, the attribute mappings, and
// the class keys — as one JSON document. The paper observes that mappings
// "should not need substantial maintenance after being created"; this
// package is where they live between runs.
package config

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/ontology"
	"repro/internal/transport"
)

// Config is the serializable middleware configuration.
type Config struct {
	// OntologyOWL is the shared ontology as an inline OWL (RDF/XML)
	// document.
	OntologyOWL string `json:"ontology"`
	// Sources are the registered data source definitions.
	Sources []transport.WireSource `json:"sources"`
	// Mappings are the attribute mapping entries.
	Mappings []transport.WireMapping `json:"mappings"`
	// ClassKeys maps class names to their cross-source identity attribute.
	ClassKeys map[string]string `json:"classKeys,omitempty"`
}

// FromMiddleware captures a middleware's configuration.
func FromMiddleware(mw *core.Middleware) (*Config, error) {
	var owlDoc strings.Builder
	if err := mw.Ontology().WriteOWL(&owlDoc); err != nil {
		return nil, fmt.Errorf("config: serializing ontology: %w", err)
	}
	cfg := &Config{OntologyOWL: owlDoc.String()}
	for _, def := range mw.Sources().All() {
		cfg.Sources = append(cfg.Sources, transport.FromDefinition(def))
	}
	for _, e := range mw.Mappings().AllEntries() {
		cfg.Mappings = append(cfg.Mappings, transport.FromEntry(e))
	}
	if keys := mw.Mappings().ClassKeys(); len(keys) > 0 {
		cfg.ClassKeys = keys
	}
	return cfg, nil
}

// BuildMiddleware constructs a middleware from a configuration. The caller
// supplies the content backends (the configuration records where sources
// live, not their data).
func (cfg *Config) BuildMiddleware(backends core.Config) (*core.Middleware, error) {
	ont, err := ontology.ReadOWL(strings.NewReader(cfg.OntologyOWL))
	if err != nil {
		return nil, fmt.Errorf("config: parsing ontology: %w", err)
	}
	backends.Ontology = ont
	mw, err := core.New(backends)
	if err != nil {
		return nil, err
	}
	for _, ws := range cfg.Sources {
		def, err := ws.ToDefinition()
		if err != nil {
			return nil, err
		}
		if err := mw.RegisterSource(def); err != nil {
			return nil, err
		}
	}
	for _, wm := range cfg.Mappings {
		entry, err := wm.ToEntry()
		if err != nil {
			return nil, err
		}
		if err := mw.RegisterMapping(entry); err != nil {
			return nil, err
		}
	}
	// Apply class keys in stable order for deterministic error reporting.
	classes := make([]string, 0, len(cfg.ClassKeys))
	for c := range cfg.ClassKeys {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		if err := mw.SetClassKey(c, cfg.ClassKeys[c]); err != nil {
			return nil, err
		}
	}
	return mw, nil
}

// Write serializes the configuration as indented JSON.
func (cfg *Config) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cfg)
}

// Read parses a configuration document.
func Read(r io.Reader) (*Config, error) {
	var cfg Config
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("config: decoding: %w", err)
	}
	if strings.TrimSpace(cfg.OntologyOWL) == "" {
		return nil, fmt.Errorf("config: missing ontology document")
	}
	return &cfg, nil
}

// SaveFile writes the configuration to a file.
func SaveFile(path string, cfg *Config) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("config: creating %s: %w", path, err)
	}
	if err := cfg.Write(f); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}

// LoadFile reads a configuration from a file.
func LoadFile(path string) (*Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("config: opening %s: %w", path, err)
	}
	defer f.Close()
	return Read(f)
}
