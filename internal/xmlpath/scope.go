package xmlpath

import "strings"

// RecordScopeKey returns a canonical key for the record scope of a
// compiled path: the element-path prefix whose nodes enumerate the
// source's records, with the final value-producing step (the element
// whose text is read, or the text() step's element) stripped. Two
// multi-record rules whose paths report equal keys walk the same record
// nodes, so their value lists correlate positionally record by record —
// the precondition for pushing a WHERE constraint from one attribute
// onto the others (internal/planner).
//
// The second result is false when no sound scope can be derived, and the
// planner must decline pushdown: union paths (alternatives enumerate
// independently), descendant ("//") axes (depth can differ per record),
// and predicate-filtered steps (a predicate on one rule but not its
// siblings skews positions) are all rejected conservatively.
func (p *Path) RecordScopeKey() (string, bool) {
	if len(p.union) > 0 {
		return "", false
	}
	for _, st := range p.steps {
		if st.descendant || len(st.preds) > 0 {
			return "", false
		}
	}
	scope := p.steps
	// Element-valued paths and text() paths read one value per node of
	// the final step, so the record nodes are the step before it. An
	// attribute step reads from the final element step itself.
	if p.finalAttr == "" {
		if len(scope) == 0 {
			return "", false
		}
		scope = scope[:len(scope)-1]
	}
	var b strings.Builder
	for _, st := range scope {
		b.WriteByte('/')
		b.WriteString(st.name)
	}
	return b.String(), true
}
