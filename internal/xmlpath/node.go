// Package xmlpath implements the XPath subset the S2S middleware uses to
// extract attribute values from XML data sources (paper §2.3.1 step 2:
// "For XML data sources, XPath and XQuery can be used").
//
// The supported grammar covers location paths with child ("/") and
// descendant ("//") axes, name tests and the "*" wildcard, attribute access
// ("@name"), the text() node test, and predicates: positional ("[2]"),
// attribute and child-value comparisons ("[@id='3']", "[brand='Seiko']",
// "!=" variants), and existence tests ("[@id]", "[brand]").
package xmlpath

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Node is an element in a parsed XML document tree.
type Node struct {
	// Name is the element's local name; the synthetic document root has an
	// empty name.
	Name string
	// Attrs holds the element's attributes by local name.
	Attrs map[string]string
	// Children are the child elements in document order.
	Children []*Node
	// Parent is nil for the document root.
	Parent *Node

	text strings.Builder
}

// Text returns the concatenated character data directly inside the element
// (not including descendants), trimmed of surrounding whitespace.
func (n *Node) Text() string { return strings.TrimSpace(n.text.String()) }

// DeepText returns the concatenated text of the element and all of its
// descendants in document order, trimmed.
func (n *Node) DeepText() string {
	var b strings.Builder
	var walk func(*Node)
	walk = func(cur *Node) {
		b.WriteString(cur.text.String())
		for _, c := range cur.Children {
			walk(c)
		}
	}
	walk(n)
	return strings.TrimSpace(b.String())
}

// Attr returns the attribute value and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	v, ok := n.Attrs[name]
	return v, ok
}

// Child returns the first child element with the given name, or nil.
func (n *Node) Child(name string) *Node {
	for _, c := range n.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Parse reads an XML document into a node tree. The returned node is a
// synthetic document root whose single child is the document element, so
// absolute paths like /catalog/watch address the document element by name.
func Parse(r io.Reader) (*Node, error) {
	dec := xml.NewDecoder(r)
	root := &Node{Attrs: map[string]string{}}
	cur := root
	sawElement := false
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmlpath: parsing document: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			sawElement = true
			n := &Node{Name: t.Name.Local, Attrs: make(map[string]string, len(t.Attr)), Parent: cur}
			for _, a := range t.Attr {
				n.Attrs[a.Name.Local] = a.Value
			}
			cur.Children = append(cur.Children, n)
			cur = n
		case xml.EndElement:
			if cur.Parent == nil {
				return nil, fmt.Errorf("xmlpath: unbalanced end element %s", t.Name.Local)
			}
			cur = cur.Parent
		case xml.CharData:
			cur.text.Write(t)
		}
	}
	if !sawElement {
		return nil, fmt.Errorf("xmlpath: document has no elements")
	}
	if cur != root {
		return nil, fmt.Errorf("xmlpath: document ended inside element %s", cur.Name)
	}
	return root, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Node, error) { return Parse(strings.NewReader(s)) }
