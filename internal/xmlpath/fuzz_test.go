package xmlpath

import "testing"

// FuzzCompile checks the path compiler never panics and compiled paths
// evaluate safely against a fixed document.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		"/catalog/watch/brand",
		"//watch[@id='2']/model",
		"//watch[brand!='Casio'][2]/case",
		"//@currency",
		"/catalog/*/price/text()",
		"catalog/watch",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	doc, err := ParseString(`<catalog><watch id="1"><brand>Seiko</brand></watch></catalog>`)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, expr string) {
		p, err := Compile(expr)
		if err != nil {
			return
		}
		_ = p.SelectStrings(doc)
		_ = p.SelectNodes(doc)
	})
}

// FuzzParse checks the XML tree builder never panics.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`<a><b c="d">text</b></a>`,
		`<?xml version="1.0"?><x/>`,
		`<a>&amp;&lt;</a>`,
		`<a><b></a>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		root, err := ParseString(doc)
		if err != nil {
			return
		}
		_ = root.DeepText()
	})
}
