package xmlpath

import (
	"fmt"
	"strconv"
	"strings"
)

// Path is a compiled location path, possibly a union of several paths
// joined with "|" (results concatenate in union order, deduplicated).
type Path struct {
	expr  string
	steps []step
	// final describes the value produced by the last step: element nodes,
	// an attribute value, or text().
	finalAttr string // "@attr" final step
	finalText bool   // "text()" final step
	// union holds the remaining alternatives of an "a | b" expression.
	union []*Path
}

// step is one location step: an axis, a name test, and predicates.
type step struct {
	descendant bool // true for the // axis
	name       string
	preds      []predicate
}

// predKind discriminates predicate forms.
type predKind int

const (
	predPosition predKind = iota + 1
	predAttrEq
	predAttrNe
	predAttrExists
	predChildEq
	predChildNe
	predChildExists
)

type predicate struct {
	kind  predKind
	pos   int
	name  string
	value string
}

// MustCompile is Compile but panics on error; for statically-known paths.
func MustCompile(expr string) *Path {
	p, err := Compile(expr)
	if err != nil {
		panic(err)
	}
	return p
}

// Compile parses a location path expression.
func Compile(expr string) (*Path, error) {
	trimmed := strings.TrimSpace(expr)
	if trimmed == "" {
		return nil, fmt.Errorf("xmlpath: empty path")
	}
	// Union: split on '|' outside predicates.
	if parts := splitUnion(trimmed); len(parts) > 1 {
		first, err := Compile(parts[0])
		if err != nil {
			return nil, err
		}
		for _, alt := range parts[1:] {
			compiled, err := Compile(alt)
			if err != nil {
				return nil, err
			}
			first.union = append(first.union, compiled)
		}
		first.expr = trimmed
		return first, nil
	}
	p := &Path{expr: trimmed}
	rest := trimmed
	// A leading "//" makes the first step a descendant step; a leading "/"
	// is an absolute child step. Relative paths behave like absolute ones
	// because evaluation starts at the synthetic document root.
	for rest != "" {
		descendant := false
		switch {
		case strings.HasPrefix(rest, "//"):
			descendant = true
			rest = rest[2:]
		case strings.HasPrefix(rest, "/"):
			rest = rest[1:]
		}
		if rest == "" {
			return nil, fmt.Errorf("xmlpath: path %q ends with a slash", expr)
		}
		token, remainder, err := splitStep(rest)
		if err != nil {
			return nil, fmt.Errorf("xmlpath: path %q: %w", expr, err)
		}
		rest = remainder

		switch {
		case strings.HasPrefix(token, "@"):
			if rest != "" {
				return nil, fmt.Errorf("xmlpath: path %q: attribute step must be last", expr)
			}
			name := token[1:]
			if name == "" {
				return nil, fmt.Errorf("xmlpath: path %q: empty attribute name", expr)
			}
			if descendant {
				// //@attr selects the attribute on any descendant.
				p.steps = append(p.steps, step{descendant: true, name: "*"})
			}
			p.finalAttr = name
		case token == "text()":
			if rest != "" {
				return nil, fmt.Errorf("xmlpath: path %q: text() must be last", expr)
			}
			p.finalText = true
		default:
			st, err := parseStep(token)
			if err != nil {
				return nil, fmt.Errorf("xmlpath: path %q: %w", expr, err)
			}
			st.descendant = descendant
			p.steps = append(p.steps, st)
		}
	}
	if len(p.steps) == 0 && p.finalAttr == "" && !p.finalText {
		return nil, fmt.Errorf("xmlpath: path %q selects nothing", expr)
	}
	return p, nil
}

// splitUnion splits a path expression on top-level '|' characters.
func splitUnion(expr string) []string {
	var parts []string
	depth := 0
	start := 0
	for i := 0; i < len(expr); i++ {
		switch expr[i] {
		case '[':
			depth++
		case ']':
			depth--
		case '|':
			if depth == 0 {
				parts = append(parts, strings.TrimSpace(expr[start:i]))
				start = i + 1
			}
		}
	}
	parts = append(parts, strings.TrimSpace(expr[start:]))
	return parts
}

// splitStep cuts the next step token (respecting brackets) off rest.
func splitStep(rest string) (token, remainder string, err error) {
	depth := 0
	for i := 0; i < len(rest); i++ {
		switch rest[i] {
		case '[':
			depth++
		case ']':
			depth--
			if depth < 0 {
				return "", "", fmt.Errorf("unbalanced ']' in step")
			}
		case '/':
			if depth == 0 {
				return rest[:i], rest[i:], nil
			}
		}
	}
	if depth != 0 {
		return "", "", fmt.Errorf("unbalanced '[' in step")
	}
	return rest, "", nil
}

// parseStep parses "name[pred1][pred2]".
func parseStep(token string) (step, error) {
	st := step{}
	nameEnd := strings.IndexByte(token, '[')
	if nameEnd < 0 {
		st.name = token
	} else {
		st.name = token[:nameEnd]
		preds := token[nameEnd:]
		for preds != "" {
			if preds[0] != '[' {
				return step{}, fmt.Errorf("malformed predicate in %q", token)
			}
			end := strings.IndexByte(preds, ']')
			if end < 0 {
				return step{}, fmt.Errorf("unterminated predicate in %q", token)
			}
			pred, err := parsePredicate(preds[1:end])
			if err != nil {
				return step{}, err
			}
			st.preds = append(st.preds, pred)
			preds = preds[end+1:]
		}
	}
	if st.name == "" {
		return step{}, fmt.Errorf("step %q has no name test", token)
	}
	if st.name != "*" && !validXMLName(st.name) {
		return step{}, fmt.Errorf("invalid name test %q", st.name)
	}
	return st, nil
}

func parsePredicate(body string) (predicate, error) {
	body = strings.TrimSpace(body)
	if body == "" {
		return predicate{}, fmt.Errorf("empty predicate")
	}
	if n, err := strconv.Atoi(body); err == nil {
		if n < 1 {
			return predicate{}, fmt.Errorf("positional predicate [%d] must be >= 1", n)
		}
		return predicate{kind: predPosition, pos: n}, nil
	}
	neg := false
	op := strings.Index(body, "!=")
	if op >= 0 {
		neg = true
	} else {
		op = strings.IndexByte(body, '=')
	}
	var name, value string
	hasValue := op >= 0
	if hasValue {
		name = strings.TrimSpace(body[:op])
		raw := strings.TrimSpace(body[op+1:])
		if neg {
			raw = strings.TrimSpace(body[op+2:])
		}
		if len(raw) < 2 || (raw[0] != '\'' && raw[0] != '"') || raw[len(raw)-1] != raw[0] {
			return predicate{}, fmt.Errorf("predicate value %q must be quoted", raw)
		}
		value = raw[1 : len(raw)-1]
	} else {
		name = body
	}

	isAttr := strings.HasPrefix(name, "@")
	if isAttr {
		name = name[1:]
	}
	if !validXMLName(name) {
		return predicate{}, fmt.Errorf("invalid predicate name %q", name)
	}
	switch {
	case isAttr && hasValue && neg:
		return predicate{kind: predAttrNe, name: name, value: value}, nil
	case isAttr && hasValue:
		return predicate{kind: predAttrEq, name: name, value: value}, nil
	case isAttr:
		return predicate{kind: predAttrExists, name: name}, nil
	case hasValue && neg:
		return predicate{kind: predChildNe, name: name, value: value}, nil
	case hasValue:
		return predicate{kind: predChildEq, name: name, value: value}, nil
	default:
		return predicate{kind: predChildExists, name: name}, nil
	}
}

func validXMLName(s string) bool {
	for i, r := range s {
		letter := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_'
		if i == 0 && !letter {
			return false
		}
		if !letter && !(r >= '0' && r <= '9') && r != '-' && r != '.' && r != ':' {
			return false
		}
	}
	return s != ""
}

// String returns the source expression.
func (p *Path) String() string { return p.expr }

// SelectNodes evaluates the path's element steps from root and returns the
// matching nodes in document order. Final @attr / text() parts are ignored;
// use SelectStrings for values.
func (p *Path) SelectNodes(root *Node) []*Node {
	cur := []*Node{root}
	for _, st := range p.steps {
		var next []*Node
		for _, n := range cur {
			if st.descendant {
				collectDescendants(n, st, &next)
			} else {
				var siblings []*Node
				for _, c := range n.Children {
					if st.name == "*" || c.Name == st.name {
						siblings = append(siblings, c)
					}
				}
				next = append(next, applyPredicates(siblings, st.preds)...)
			}
		}
		cur = dedupeNodes(next)
	}
	return cur
}

// collectDescendants gathers descendant-or-self matches of st under n. The
// name test applies to every descendant element; predicates filter each
// matching sibling group independently, per XPath semantics for //.
func collectDescendants(n *Node, st step, out *[]*Node) {
	var siblings []*Node
	for _, c := range n.Children {
		if st.name == "*" || c.Name == st.name {
			siblings = append(siblings, c)
		}
	}
	*out = append(*out, applyPredicates(siblings, st.preds)...)
	for _, c := range n.Children {
		collectDescendants(c, st, out)
	}
}

func applyPredicates(nodes []*Node, preds []predicate) []*Node {
	cur := nodes
	for _, pred := range preds {
		var kept []*Node
		for i, n := range cur {
			if matchPredicate(n, i, pred) {
				kept = append(kept, n)
			}
		}
		cur = kept
	}
	return cur
}

func matchPredicate(n *Node, position int, pred predicate) bool {
	switch pred.kind {
	case predPosition:
		return position+1 == pred.pos
	case predAttrEq:
		v, ok := n.Attr(pred.name)
		return ok && v == pred.value
	case predAttrNe:
		v, ok := n.Attr(pred.name)
		return ok && v != pred.value
	case predAttrExists:
		_, ok := n.Attr(pred.name)
		return ok
	case predChildEq:
		for _, c := range n.Children {
			if c.Name == pred.name && c.Text() == pred.value {
				return true
			}
		}
		return false
	case predChildNe:
		for _, c := range n.Children {
			if c.Name == pred.name && c.Text() != pred.value {
				return true
			}
		}
		return false
	case predChildExists:
		return n.Child(pred.name) != nil
	default:
		return false
	}
}

// SelectStrings evaluates the full path and returns string values:
// attribute values for @attr paths, direct text for text() paths, and deep
// text content for element paths. Union alternatives contribute in order.
func (p *Path) SelectStrings(root *Node) []string {
	nodes := p.SelectNodes(root)
	var out []string
	for _, n := range nodes {
		switch {
		case p.finalAttr != "":
			if v, ok := n.Attr(p.finalAttr); ok {
				out = append(out, v)
			}
		case p.finalText:
			out = append(out, n.Text())
		default:
			out = append(out, n.DeepText())
		}
	}
	for _, alt := range p.union {
		out = append(out, alt.SelectStrings(root)...)
	}
	return out
}

// SelectAllNodes returns the node results of the path and every union
// alternative, deduplicated, in union order.
func (p *Path) SelectAllNodes(root *Node) []*Node {
	out := p.SelectNodes(root)
	for _, alt := range p.union {
		out = append(out, alt.SelectNodes(root)...)
	}
	return dedupeNodes(out)
}

func dedupeNodes(nodes []*Node) []*Node {
	seen := make(map[*Node]bool, len(nodes))
	out := nodes[:0]
	for _, n := range nodes {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}
