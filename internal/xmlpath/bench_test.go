package xmlpath

import (
	"fmt"
	"strings"
	"testing"
)

func benchDoc(b *testing.B, records int) *Node {
	b.Helper()
	var sb strings.Builder
	sb.WriteString("<catalog>")
	for i := 0; i < records; i++ {
		fmt.Fprintf(&sb, `<watch id="%d"><brand>b%d</brand><price>%d</price></watch>`, i, i%10, i)
	}
	sb.WriteString("</catalog>")
	root, err := ParseString(sb.String())
	if err != nil {
		b.Fatal(err)
	}
	return root
}

func BenchmarkSelectChild(b *testing.B) {
	root := benchDoc(b, 1000)
	p := MustCompile("/catalog/watch/brand")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := p.SelectStrings(root); len(got) != 1000 {
			b.Fatal("wrong count")
		}
	}
}

func BenchmarkSelectDescendantPredicate(b *testing.B) {
	root := benchDoc(b, 1000)
	p := MustCompile("//watch[brand='b3']/price")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := p.SelectStrings(root); len(got) != 100 {
			b.Fatal("wrong count")
		}
	}
}

func BenchmarkParseDocument(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<catalog>")
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&sb, `<watch id="%d"><brand>b%d</brand></watch>`, i, i%10)
	}
	sb.WriteString("</catalog>")
	doc := sb.String()
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseString(doc); err != nil {
			b.Fatal(err)
		}
	}
}
