package xmlpath

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

const catalog = `<?xml version="1.0"?>
<catalog source="timehouse">
  <watch id="1" featured="yes">
    <brand>Seiko</brand>
    <model>Dive Auto</model>
    <case>stainless-steel</case>
    <price currency="EUR">129.99</price>
  </watch>
  <watch id="2">
    <brand>Seiko</brand>
    <model>Dress</model>
    <case>gold</case>
    <price currency="USD">299.50</price>
  </watch>
  <watch id="3">
    <brand>Casio</brand>
    <model>F91W</model>
    <case>resin</case>
    <price currency="EUR">15.00</price>
  </watch>
  <provider>
    <name>TimeHouse</name>
    <address><country>JP</country></address>
  </provider>
</catalog>`

func mustParse(t *testing.T, doc string) *Node {
	t.Helper()
	n, err := ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestParseBuildsTree(t *testing.T) {
	root := mustParse(t, catalog)
	if len(root.Children) != 1 || root.Children[0].Name != "catalog" {
		t.Fatalf("document element = %+v", root.Children)
	}
	cat := root.Children[0]
	if v, ok := cat.Attr("source"); !ok || v != "timehouse" {
		t.Errorf("source attr = %q, %v", v, ok)
	}
	if got := len(cat.Children); got != 4 {
		t.Errorf("catalog children = %d, want 4", got)
	}
	w := cat.Child("watch")
	if w == nil || w.Child("brand").Text() != "Seiko" {
		t.Errorf("first watch brand lookup failed: %+v", w)
	}
}

func TestParseErrors(t *testing.T) {
	for _, doc := range []string{"", "just text", "<a><b></a>", "<a>"} {
		if _, err := ParseString(doc); err == nil {
			t.Errorf("ParseString(%q) succeeded", doc)
		}
	}
}

func TestSelectStrings(t *testing.T) {
	root := mustParse(t, catalog)
	tests := []struct {
		path string
		want []string
	}{
		{"/catalog/watch/brand", []string{"Seiko", "Seiko", "Casio"}},
		{"//brand", []string{"Seiko", "Seiko", "Casio"}},
		{"/catalog/watch/@id", []string{"1", "2", "3"}},
		{"//watch[@id='2']/model", []string{"Dress"}},
		{"//watch[@id!='2']/model", []string{"Dive Auto", "F91W"}},
		{"//watch[brand='Casio']/price", []string{"15.00"}},
		{"//watch[brand!='Casio']/case", []string{"stainless-steel", "gold"}},
		{"//watch[@featured]/brand", []string{"Seiko"}},
		{"/catalog/watch[2]/brand", []string{"Seiko"}},
		{"/catalog/watch[3]/brand", []string{"Casio"}},
		{"//price[@currency='EUR']", []string{"129.99", "15.00"}},
		{"//provider/name", []string{"TimeHouse"}},
		{"//address//country", []string{"JP"}},
		{"/catalog/provider", []string{"TimeHouse JP"}}, // deep text
		{"//watch/price/text()", []string{"129.99", "299.50", "15.00"}},
		{"/catalog/*/brand", []string{"Seiko", "Seiko", "Casio"}},
		{"//watch[case='gold']/brand", []string{"Seiko"}},
		{"//nosuch", nil},
		{"//watch[@id='99']/brand", nil},
		{"//watch[4]/brand", nil},
	}
	for _, tt := range tests {
		p, err := Compile(tt.path)
		if err != nil {
			t.Errorf("Compile(%q): %v", tt.path, err)
			continue
		}
		got := p.SelectStrings(root)
		if len(got) != len(tt.want) {
			t.Errorf("SelectStrings(%q) = %q, want %q", tt.path, got, tt.want)
			continue
		}
		for i := range got {
			want := tt.want[i]
			if tt.path == "/catalog/provider" {
				// Deep text: whitespace between elements collapses unevenly;
				// compare loosely.
				if !strings.Contains(got[i], "TimeHouse") || !strings.Contains(got[i], "JP") {
					t.Errorf("SelectStrings(%q)[%d] = %q", tt.path, i, got[i])
				}
				continue
			}
			if got[i] != want {
				t.Errorf("SelectStrings(%q)[%d] = %q, want %q", tt.path, i, got[i], want)
			}
		}
	}
}

func TestSelectNodesPredicateChaining(t *testing.T) {
	root := mustParse(t, catalog)
	p := MustCompile("//watch[brand='Seiko'][2]")
	nodes := p.SelectNodes(root)
	if len(nodes) != 1 {
		t.Fatalf("nodes = %d, want 1", len(nodes))
	}
	if id, _ := nodes[0].Attr("id"); id != "2" {
		t.Errorf("second Seiko watch id = %q, want 2", id)
	}
}

func TestRelativePathBehavesLikeAbsolute(t *testing.T) {
	root := mustParse(t, catalog)
	abs := MustCompile("/catalog/watch/brand").SelectStrings(root)
	rel := MustCompile("catalog/watch/brand").SelectStrings(root)
	if len(abs) != len(rel) {
		t.Fatalf("abs %v != rel %v", abs, rel)
	}
}

func TestSelectFromSubtree(t *testing.T) {
	root := mustParse(t, catalog)
	watches := MustCompile("//watch").SelectNodes(root)
	if len(watches) != 3 {
		t.Fatalf("watches = %d", len(watches))
	}
	// Relative evaluation from a record node: the n-record extraction
	// scenario (paper §2.3) iterates records and extracts per-record values.
	brand := MustCompile("brand")
	for i, w := range watches {
		vals := brand.SelectStrings(w)
		if len(vals) != 1 {
			t.Fatalf("watch %d brand = %v", i, vals)
		}
	}
}

func TestUnionPaths(t *testing.T) {
	root := mustParse(t, catalog)
	got := MustCompile("//brand | //provider/name").SelectStrings(root)
	want := []string{"Seiko", "Seiko", "Casio", "TimeHouse"}
	if len(got) != len(want) {
		t.Fatalf("union strings = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("union[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	// Overlapping alternatives deduplicate at the node level.
	nodes := MustCompile("//watch | //watch[@id='1']").SelectAllNodes(root)
	if len(nodes) != 3 {
		t.Fatalf("union nodes = %d, want 3 (deduplicated)", len(nodes))
	}
	// '|' inside a predicate is not a union separator.
	if _, err := Compile("//watch[@id='a|b']"); err != nil {
		t.Errorf("pipe inside predicate rejected: %v", err)
	}
	// A failing alternative fails the whole compile.
	if _, err := Compile("//brand | //["); err == nil {
		t.Error("bad union alternative accepted")
	}
	if _, err := Compile("//brand | "); err == nil {
		t.Error("empty union alternative accepted")
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"/",
		"//",
		"/catalog/",
		"/catalog/@id/brand",          // attribute mid-path
		"/catalog/text()/brand",       // text() mid-path
		"/catalog/watch[0]",           // position < 1
		"/catalog/watch[brand=Seiko]", // unquoted value
		"/catalog/watch[brand='x'",    // unbalanced bracket
		"/catalog/watch]x[",           // unbalanced close
		"/catalog/wat ch",             // invalid name
		"/@",                          // empty attribute
		"/catalog/watch[]",            // empty predicate
		"/catalog/9pins",              // invalid name start
	}
	for _, expr := range bad {
		if _, err := Compile(expr); err == nil {
			t.Errorf("Compile(%q) succeeded", expr)
		}
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile did not panic")
		}
	}()
	MustCompile("//")
}

func TestDescendantAttribute(t *testing.T) {
	root := mustParse(t, catalog)
	got := MustCompile("//@currency").SelectStrings(root)
	if len(got) != 3 {
		t.Fatalf("//@currency = %v", got)
	}
}

// Property: every value written into a generated document is found by the
// corresponding paths, in document order.
func TestExtractionCompleteProperty(t *testing.T) {
	f := func(brands []uint8) bool {
		if len(brands) > 40 {
			brands = brands[:40]
		}
		var b strings.Builder
		b.WriteString("<catalog>")
		for i, v := range brands {
			fmt.Fprintf(&b, "<watch id=\"%d\"><brand>b%d</brand></watch>", i, v)
		}
		b.WriteString("</catalog>")
		root, err := ParseString(b.String())
		if err != nil {
			return false
		}
		got := MustCompile("/catalog/watch/brand").SelectStrings(root)
		if len(got) != len(brands) {
			return false
		}
		for i, v := range brands {
			if got[i] != fmt.Sprintf("b%d", v) {
				return false
			}
		}
		ids := MustCompile("//watch/@id").SelectStrings(root)
		return len(ids) == len(brands)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
