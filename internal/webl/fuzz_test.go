package webl

import "testing"

// FuzzCompileAndRun checks the WebL pipeline never panics: anything that
// compiles runs to completion or a clean error under a small step budget.
func FuzzCompileAndRun(f *testing.F) {
	seeds := []string{
		`var a = 1 + 2 * 3`,
		`var s = Str_Split("a<b>c", "<>")`,
		"var St = Str_Search(\"<p><b>Seiko\", \"<p><b>\" + `[a-z]+`)",
		`fun f(x) { return x * 2 } var y = f(21)`,
		`var i = 0
while i < 10 { i = i + 1 }`,
		`if true { var a = 1 } else { var b = 2 }`,
		`var xs = [1, "two", [3]]
var x = xs[2][0]`,
		`return Select("Seiko", 0, 6)`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Compile(src)
		if err != nil {
			return
		}
		// No fetcher: GetURL errors cleanly; the budget stops loops.
		_, _ = prog.Run(&Env{MaxSteps: 50_000})
	})
}
