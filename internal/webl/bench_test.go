package webl

import (
	"fmt"
	"strings"
	"testing"
)

// BenchmarkPaperRule measures the paper's verbatim extraction rule.
func BenchmarkPaperRule(b *testing.B) {
	prog := MustCompile(paperRule)
	env := &Env{Fetcher: paperFetcher()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		globals, err := prog.Run(env)
		if err != nil {
			b.Fatal(err)
		}
		if strings.TrimSpace(globals["brand"].(string)) != "Seiko" {
			b.Fatal("wrong answer")
		}
	}
}

// BenchmarkListExtraction measures the n-record Column idiom over a large
// page.
func BenchmarkListExtraction(b *testing.B) {
	var page strings.Builder
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&page, `<b class="brand">Brand%d</b>`, i)
	}
	fetcher := MapFetcher{"http://shop/big": page.String()}
	prog := MustCompile(`
var P = GetURL("http://shop/big")
var brands = Column(Str_Search(Text(P), "<b class=\"brand\">([^<]+)</b>"), 1)
`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		globals, err := prog.Run(&Env{Fetcher: fetcher})
		if err != nil {
			b.Fatal(err)
		}
		if len(globals["brands"].([]Value)) != 1000 {
			b.Fatal("wrong count")
		}
	}
}

// BenchmarkInterpreterLoop measures raw statement throughput.
func BenchmarkInterpreterLoop(b *testing.B) {
	prog := MustCompile(`
var total = 0
var i = 0
while i < 10000 {
	total = total + i
	i = i + 1
}
`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		globals, err := prog.Run(&Env{})
		if err != nil {
			b.Fatal(err)
		}
		if globals["total"] != float64(49995000) {
			b.Fatal("wrong total")
		}
	}
}

// BenchmarkCompile measures rule compilation (done per extraction).
func BenchmarkCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Compile(paperRule); err != nil {
			b.Fatal(err)
		}
	}
}
