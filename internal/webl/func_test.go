package webl

import (
	"strings"
	"testing"
)

func TestUserFunctionBasic(t *testing.T) {
	globals := run(t, `
fun double(x) {
	return x * 2
}
var a = double(21)
var b = double(double(1))
`, nil)
	if globals["a"] != float64(42) || globals["b"] != float64(4) {
		t.Errorf("a=%v b=%v", globals["a"], globals["b"])
	}
}

func TestUserFunctionLocalsDoNotLeak(t *testing.T) {
	globals := run(t, `
fun helper(x) {
	var local = x + 1
	return local
}
var out = helper(5)
`, nil)
	if globals["out"] != float64(6) {
		t.Errorf("out = %v", globals["out"])
	}
	if _, leaked := globals["local"]; leaked {
		t.Error("function local leaked into globals")
	}
	if _, leaked := globals["x"]; leaked {
		t.Error("parameter leaked into globals")
	}
}

func TestUserFunctionReadsGlobals(t *testing.T) {
	globals := run(t, `
var prefix = "id-"
fun tag(n) {
	return prefix + n
}
var out = tag(7)
`, nil)
	if globals["out"] != "id-7" {
		t.Errorf("out = %v", globals["out"])
	}
}

func TestUserFunctionAssignsGlobal(t *testing.T) {
	globals := run(t, `
var total = 0
fun bump(n) {
	total = total + n
	return total
}
bump(3)
bump(4)
`, nil)
	if globals["total"] != float64(7) {
		t.Errorf("total = %v", globals["total"])
	}
}

func TestUserFunctionParamShadowsGlobal(t *testing.T) {
	globals := run(t, `
var x = "global"
fun f(x) {
	x = x + "!"
	return x
}
var out = f("param")
`, nil)
	if globals["out"] != "param!" {
		t.Errorf("out = %v", globals["out"])
	}
	if globals["x"] != "global" {
		t.Errorf("global x mutated: %v", globals["x"])
	}
}

func TestUserFunctionRecursion(t *testing.T) {
	globals := run(t, `
fun fact(n) {
	if n <= 1 {
		return 1
	}
	return n * fact(n - 1)
}
var out = fact(10)
`, nil)
	if globals["out"] != float64(3628800) {
		t.Errorf("out = %v", globals["out"])
	}
}

func TestUserFunctionInExtractionRule(t *testing.T) {
	fetcher := MapFetcher{"http://shop/x": `<b>Seiko</b><b>Casio</b>`}
	globals := run(t, `
fun extractAll(url, pattern) {
	var page = GetURL(url)
	return Column(Str_Search(Text(page), pattern), 1)
}
var brands = extractAll("http://shop/x", "<b>([^<]+)</b>")
`, &Env{Fetcher: fetcher})
	brands := globals["brands"].([]Value)
	if len(brands) != 2 || brands[0] != "Seiko" {
		t.Errorf("brands = %v", brands)
	}
}

func TestUserFunctionNoReturnIsNil(t *testing.T) {
	globals := run(t, `
fun noop(x) {
	var y = x
}
var out = noop(1)
`, nil)
	if globals["out"] != nil {
		t.Errorf("out = %v", globals["out"])
	}
}

func TestUserFunctionErrors(t *testing.T) {
	compileErrors := []string{
		`fun f(a, a) { return a }`,           // duplicate parameter
		`fun f(a) { return a } fun f(b) { }`, // redefinition
		`fun Len(a) { return 1 }`,            // shadows builtin
		`fun f(a { return a }`,               // malformed params
		`fun f(a) return a`,                  // missing block
		`fun (a) { return a }`,               // missing name
	}
	for _, src := range compileErrors {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) succeeded", src)
		}
	}

	runtimeErrors := map[string]string{
		"wrong arity": `
fun f(a, b) { return a }
var x = f(1)
`,
		"unbounded recursion": `
fun loop(n) { return loop(n + 1) }
var x = loop(0)
`,
	}
	for name, src := range runtimeErrors {
		prog, err := Compile(src)
		if err != nil {
			t.Errorf("%s: unexpected compile error %v", name, err)
			continue
		}
		if _, err := prog.Run(&Env{}); err == nil {
			t.Errorf("%s: no runtime error", name)
		}
	}
}

func TestRecursionDepthMessage(t *testing.T) {
	prog := MustCompile(`
fun loop(n) { return loop(n + 1) }
var x = loop(0)
`)
	_, err := prog.Run(&Env{})
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Fatalf("err = %v", err)
	}
}

func TestTopLevelReturnStillSetsResult(t *testing.T) {
	globals := run(t, `
fun f(x) { return x + 1 }
return f(41)
`, nil)
	if globals["result"] != float64(42) {
		t.Errorf("result = %v", globals["result"])
	}
}
