package webl

import (
	"strings"
	"testing"
	"testing/quick"
)

// paperRule is the extraction rule printed in the paper (§2.3.1 step 2),
// reproduced verbatim apart from the URL pointing at the test fixture.
const paperRule = "var P = GetURL(\"http://www.eshop.com/products/watches.html\");\n" +
	"var pText = Text(P);\n" +
	"var regexpr = \"<p><b>\" + `[0-9a-zA-Z']+`;\n" +
	"var St = Str_Search(pText, regexpr);\n" +
	"var spliter = Str_Split(St[0][0],\"<>\");\n" +
	"var brand = Select(spliter[2],0,6);\n"

// paperPage is the HTML the paper shows for the example data source.
const paperPage = `<html><body><p> <b>Seiko Men's Automatic Dive Watch</b> </p></body></html>`

func paperFetcher() Fetcher {
	// The markup in the paper's rule expects <p><b> with no gap; serve both
	// forms so the regex finds the tight one.
	return MapFetcher{
		"http://www.eshop.com/products/watches.html": `<html><body><p><b>Seiko Men's Automatic Dive Watch</b></p></body></html>`,
	}
}

func run(t *testing.T, src string, env *Env) map[string]Value {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	globals, err := prog.Run(env)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return globals
}

func TestPaperRuleExtractsSeiko(t *testing.T) {
	globals := run(t, paperRule, &Env{Fetcher: paperFetcher()})
	brand, ok := globals["brand"].(string)
	if !ok {
		t.Fatalf("brand = %v (%T)", globals["brand"], globals["brand"])
	}
	if strings.TrimSpace(brand) != "Seiko" {
		t.Fatalf("brand = %q, want Seiko", brand)
	}
}

func TestArithmeticAndVariables(t *testing.T) {
	globals := run(t, `
var a = 2 + 3 * 4
var b = (2 + 3) * 4
var c = 10 / 4
var d = 10 % 3
var e = -a + 1
a = a + 1
`, nil)
	checks := map[string]float64{"a": 15, "b": 20, "c": 2.5, "d": 1, "e": -13}
	for name, want := range checks {
		if got := globals[name]; got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
}

func TestStringOps(t *testing.T) {
	globals := run(t, `
var s = "Hello" + ", " + "world"
var n = "n=" + 42
var up = Str_Upper(s)
var rep = Str_Replace(s, "world", "B2B")
var has = Str_Contains(s, "world")
var idx = Str_Index(s, "world")
var ln = Len(s)
var trimmed = Str_Trim("  x  ")
var lower = Str_Lower("ABC")
`, nil)
	if globals["s"] != "Hello, world" || globals["n"] != "n=42" {
		t.Errorf("concat: %v %v", globals["s"], globals["n"])
	}
	if globals["up"] != "HELLO, WORLD" || globals["rep"] != "Hello, B2B" {
		t.Errorf("upper/replace: %v %v", globals["up"], globals["rep"])
	}
	if globals["has"] != true || globals["idx"] != float64(7) || globals["ln"] != float64(12) {
		t.Errorf("contains/index/len: %v %v %v", globals["has"], globals["idx"], globals["ln"])
	}
	if globals["trimmed"] != "x" || globals["lower"] != "abc" {
		t.Errorf("trim/lower: %v %v", globals["trimmed"], globals["lower"])
	}
}

func TestListsAndIndexing(t *testing.T) {
	globals := run(t, `
var xs = ["a", "b", "c"]
var first = xs[0]
xs[1] = "B"
var more = Append(xs, "d")
var n = Len(more)
var joined = xs + ["z"]
var str = xs[2][0]
`, nil)
	if globals["first"] != "a" {
		t.Errorf("first = %v", globals["first"])
	}
	xs := globals["xs"].([]Value)
	if xs[1] != "B" {
		t.Errorf("xs[1] = %v", xs[1])
	}
	if globals["n"] != float64(4) {
		t.Errorf("n = %v", globals["n"])
	}
	if joined := globals["joined"].([]Value); len(joined) != 4 || joined[3] != "z" {
		t.Errorf("joined = %v", joined)
	}
	if globals["str"] != "c" {
		t.Errorf("string index = %v", globals["str"])
	}
}

func TestControlFlow(t *testing.T) {
	globals := run(t, `
var total = 0
var i = 0
while i < 10 {
	if i % 2 == 0 {
		total = total + i
	} else if i == 5 {
		total = total + 100
	} else {
		total = total - 1
	}
	i = i + 1
}
`, nil)
	// evens 0+2+4+6+8 = 20, i==5 adds 100, odds 1,3,7,9 subtract 4.
	if globals["total"] != float64(116) {
		t.Errorf("total = %v, want 116", globals["total"])
	}
}

func TestReturnSetsResult(t *testing.T) {
	globals := run(t, `
var xs = Fields("alpha beta gamma")
return xs[1]
var never = 1
`, nil)
	if globals["result"] != "beta" {
		t.Errorf("result = %v", globals["result"])
	}
	if _, ok := globals["never"]; ok {
		t.Error("statements after return executed")
	}
}

func TestComparisonAndLogic(t *testing.T) {
	globals := run(t, `
var a = 1 < 2 and "x" == "x"
var b = 1 > 2 or not false
var c = "abc" < "abd"
var d = [1, 2] == [1, 2]
var e = [1, 2] != [1, 3]
var f = 3 <= 3 && 4 >= 5
var g = true || false
`, nil)
	for name, want := range map[string]bool{"a": true, "b": true, "c": true, "d": true, "e": true, "f": false, "g": true} {
		if globals[name] != want {
			t.Errorf("%s = %v, want %v", name, globals[name], want)
		}
	}
}

func TestVisibleTextAndToNumber(t *testing.T) {
	fetcher := MapFetcher{"http://shop/p1": `<html><body><p>Price: <b>129.99</b> EUR</p><script>junk()</script></body></html>`}
	globals := run(t, `
var P = GetURL("http://shop/p1")
var text = VisibleText(P)
var m = Str_Search(text, "[0-9]+\\.[0-9]+")
var price = ToNumber(m[0][0])
var s = ToString(price)
`, &Env{Fetcher: fetcher})
	if globals["price"] != 129.99 {
		t.Errorf("price = %v", globals["price"])
	}
	if globals["s"] != "129.99" {
		t.Errorf("s = %v", globals["s"])
	}
	if text := globals["text"].(string); strings.Contains(text, "junk") {
		t.Errorf("script leaked: %q", text)
	}
}

func TestCaptureGroups(t *testing.T) {
	globals := run(t, "var m = Str_Search(\"id=42 id=77\", `id=([0-9]+)`)\nvar first = m[0][1]\nvar second = m[1][1]\nvar count = Len(m)\n", nil)
	if globals["first"] != "42" || globals["second"] != "77" || globals["count"] != float64(2) {
		t.Errorf("captures = %v %v %v", globals["first"], globals["second"], globals["count"])
	}
}

func TestLinesBuiltin(t *testing.T) {
	globals := run(t, "var ls = Lines(\"a\\r\\nb\\nc\")\nvar n = Len(ls)\nvar second = ls[1]\n", nil)
	if globals["n"] != float64(3) || globals["second"] != "b" {
		t.Errorf("lines = %v", globals["ls"])
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := map[string]string{
		"undefined variable":    `var a = b`,
		"assign undeclared":     `a = 1`,
		"index out of range":    `var a = [1][5]`,
		"index non-list":        `var a = 5[0]`,
		"bad index type":        `var a = [1]["x"]`,
		"division by zero":      `var a = 1 / 0`,
		"modulo by zero":        `var a = 1 % 0`,
		"unary minus on string": `var a = -"x"`,
		"numeric op on string":  `var a = "x" - 1`,
		"order across types":    `var a = "x" < 1`,
		"unknown function":      `var a = NoSuch(1)`,
		"bad regexp":            "var a = Str_Search(\"x\", \"[\")",
		"no fetcher":            `var a = GetURL("http://x")`,
		"missing page":          `var a = Text(42)`,
		"bad arg count":         `var a = Len()`,
		"empty separator":       `var a = Str_Split("x", "")`,
		"tonumber garbage":      `var a = ToNumber("zz")`,
		"index assign non-list": `var s = "abc" s[0] = "x"`,
	}
	for name, src := range cases {
		prog, err := Compile(src)
		if err != nil {
			t.Errorf("%s: compile error %v (want runtime error)", name, err)
			continue
		}
		if _, err := prog.Run(&Env{}); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		`var = 1`,
		`var a 1`,
		`if { }`,
		`while true`,
		`var a = (1`,
		`var a = [1, `,
		`var a = "unterminated`,
		"var a = `unterminated",
		`var a = 1 $ 2`,
		`var a = "bad \q escape"`,
		`1 = 2`,
		`var a = Foo(1,`,
		`if true { var a = 1`,
		`var a = "multi
line"`,
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) succeeded", src)
		}
	}
}

func TestInfiniteLoopBudget(t *testing.T) {
	prog := MustCompile(`while true { }`)
	_, err := prog.Run(&Env{MaxSteps: 1000})
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("err = %v, want budget exhaustion", err)
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile did not panic")
		}
	}()
	MustCompile(`var = `)
}

func TestCommentsAndSemicolons(t *testing.T) {
	globals := run(t, `
// leading comment
var a = 1; var b = 2 # trailing comment
var c = a + b
`, nil)
	if globals["c"] != float64(3) {
		t.Errorf("c = %v", globals["c"])
	}
}

func TestProgramSource(t *testing.T) {
	src := `var a = 1`
	if got := MustCompile(src).Source(); got != src {
		t.Errorf("Source() = %q", got)
	}
}

// Property: Select never panics and always returns a substring.
func TestSelectClampProperty(t *testing.T) {
	f := func(s string, start, end int8) bool {
		prog := MustCompile(`var out = Select(s, a, b)`)
		// Pre-seed globals via a tiny program wrapper instead: compile with
		// literals to avoid injection of arbitrary strings into source.
		_ = prog
		in := &interp{env: &Env{}, globals: map[string]Value{}, budget: 100}
		v, err := biSelect(in, []Value{s, float64(start), float64(end)})
		if err != nil {
			return false
		}
		sub := v.(string)
		return strings.Contains(s, sub) || sub == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPaperPageVisibleForm(t *testing.T) {
	// The looser page from the paper (with spaces around <b>) still yields
	// the brand via a whitespace-tolerant rule — the kind of maintenance
	// edit §2.3 anticipates for web sources.
	fetcher := MapFetcher{"http://www.eshop.com/products/watches.html": paperPage}
	rule := "var P = GetURL(\"http://www.eshop.com/products/watches.html\")\n" +
		"var St = Str_Search(Text(P), `<b>[0-9a-zA-Z' ]+</b>`)\n" +
		"var inner = Str_Split(St[0][0], \"<>\")\n" +
		"var brand = Select(inner[1], 0, 5)\n"
	globals := run(t, rule, &Env{Fetcher: fetcher})
	if globals["brand"] != "Seiko" {
		t.Fatalf("brand = %v", globals["brand"])
	}
}
