package webl

import (
	"errors"
	"strings"
	"testing"
)

// TestComparisonErrorUnwrapsThroughLineWrap pins the error-chain
// contract the errwrap analyzer enforces: the line-number wrap the
// evaluator adds around a comparison failure must use %w, so callers can
// still reach the typed CompareError underneath with errors.As (and walk
// the chain with errors.Unwrap) to classify the failure as a permanent
// rule bug rather than a transient source fault.
func TestComparisonErrorUnwrapsThroughLineWrap(t *testing.T) {
	prog, err := Compile(`var x = "a" < 1;`)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	_, err = prog.Run(&Env{})
	if err == nil {
		t.Fatal("ordering a string against a number must fail")
	}
	if !strings.Contains(err.Error(), "line 1") {
		t.Errorf("wrap lost the line number: %v", err)
	}

	var ce *CompareError
	if !errors.As(err, &ce) {
		t.Fatalf("errors.As cannot reach *CompareError through %v", err)
	}
	if ce.Left != "string" || ce.Right != "number" {
		t.Errorf("CompareError = %s vs %s, want string vs number", ce.Left, ce.Right)
	}

	inner := errors.Unwrap(err)
	for inner != nil {
		if _, ok := inner.(*CompareError); ok {
			return
		}
		inner = errors.Unwrap(inner)
	}
	t.Error("errors.Unwrap chain never yields the *CompareError")
}
