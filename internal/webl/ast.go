package webl

// stmt is a WebL statement.
type stmt interface{ stmtNode() }

// varDecl is `var name = expr`.
type varDecl struct {
	name string
	init expr
	line int
}

// assign is `target = expr`; target is an identifier or index expression.
type assign struct {
	target expr
	value  expr
	line   int
}

// ifStmt is `if cond { ... } [else { ... }]` (else may nest another if).
type ifStmt struct {
	cond      expr
	then, alt []stmt
	line      int
}

// whileStmt is `while cond { ... }`.
type whileStmt struct {
	cond expr
	body []stmt
	line int
}

// returnStmt ends the program; its value is bound to "result".
type returnStmt struct {
	value expr
	line  int
}

// exprStmt evaluates an expression for its side effects.
type exprStmt struct {
	e    expr
	line int
}

// funcDecl is `fun name(params) { body }`; only valid at top level.
type funcDecl struct {
	name   string
	params []string
	body   []stmt
	line   int
}

func (*funcDecl) stmtNode() {}

func (*varDecl) stmtNode()    {}
func (*assign) stmtNode()     {}
func (*ifStmt) stmtNode()     {}
func (*whileStmt) stmtNode()  {}
func (*returnStmt) stmtNode() {}
func (*exprStmt) stmtNode()   {}

// expr is a WebL expression.
type expr interface{ exprNode() }

type stringLit struct{ val string }

type numberLit struct{ val float64 }

type boolLit struct{ val bool }

type nilLit struct{}

type ident struct {
	name string
	line int
}

type listLit struct{ elems []expr }

// indexExpr is base[index].
type indexExpr struct {
	base  expr
	index expr
	line  int
}

// callExpr is fn(args...); fn is always an identifier naming a builtin.
type callExpr struct {
	fn   string
	args []expr
	line int
}

// binaryExpr applies op: + - * / % == != < > <= >= and or.
type binaryExpr struct {
	op          string
	left, right expr
	line        int
}

// unaryExpr applies op: - not !
type unaryExpr struct {
	op      string
	operand expr
	line    int
}

func (*stringLit) exprNode()  {}
func (*numberLit) exprNode()  {}
func (*boolLit) exprNode()    {}
func (*nilLit) exprNode()     {}
func (*ident) exprNode()      {}
func (*listLit) exprNode()    {}
func (*indexExpr) exprNode()  {}
func (*callExpr) exprNode()   {}
func (*binaryExpr) exprNode() {}
func (*unaryExpr) exprNode()  {}
