package webl

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/htmldoc"
)

// call dispatches a function call: user-defined functions first, then the
// builtin library.
func (in *interp) call(x *callExpr) (Value, error) {
	args := make([]Value, len(x.args))
	for i, a := range x.args {
		v, err := in.eval(a)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	if user, ok := in.funcs[x.fn]; ok {
		return in.callUser(user, args, x.line)
	}
	fn, ok := builtins[x.fn]
	if !ok {
		return nil, fmt.Errorf("webl: line %d: unknown function %q", x.line, x.fn)
	}
	out, err := fn(in, args)
	if err != nil {
		return nil, fmt.Errorf("webl: line %d: %s: %w", x.line, x.fn, err)
	}
	return out, nil
}

type builtinFunc func(in *interp, args []Value) (Value, error)

// builtins is the WebL standard library. GetURL, Text, Str_Search,
// Str_Split, and Select are the functions the paper's rule uses; the rest
// round out realistic extraction rules.
var builtins = map[string]builtinFunc{
	"GetURL":       biGetURL,
	"Text":         biText,
	"VisibleText":  biVisibleText,
	"Str_Search":   biStrSearch,
	"Str_Split":    biStrSplit,
	"Select":       biSelect,
	"Str_Trim":     biStrTrim,
	"Str_Lower":    func(in *interp, a []Value) (Value, error) { return strMap(a, strings.ToLower) },
	"Str_Upper":    func(in *interp, a []Value) (Value, error) { return strMap(a, strings.ToUpper) },
	"Str_Replace":  biStrReplace,
	"Str_Contains": biStrContains,
	"Str_Index":    biStrIndex,
	"Len":          biLen,
	"Append":       biAppend,
	"Column":       biColumn,
	"ToNumber":     biToNumber,
	"ToString":     biToString,
	"Lines":        biLines,
	"Fields":       biFields,
}

func wantArgs(args []Value, n int) error {
	if len(args) != n {
		return fmt.Errorf("needs %d argument(s), got %d", n, len(args))
	}
	return nil
}

func argString(args []Value, i int) (string, error) {
	s, ok := args[i].(string)
	if !ok {
		return "", fmt.Errorf("argument %d must be a string, got %s", i+1, typeName(args[i]))
	}
	return s, nil
}

func argNumber(args []Value, i int) (float64, error) {
	n, ok := args[i].(float64)
	if !ok {
		return 0, fmt.Errorf("argument %d must be a number, got %s", i+1, typeName(args[i]))
	}
	return n, nil
}

// biGetURL fetches a page through the environment's fetcher.
func biGetURL(in *interp, args []Value) (Value, error) {
	if err := wantArgs(args, 1); err != nil {
		return nil, err
	}
	url, err := argString(args, 0)
	if err != nil {
		return nil, err
	}
	if in.env.Fetcher == nil {
		return nil, fmt.Errorf("no fetcher configured for %q", url)
	}
	content, err := in.env.Fetcher.Fetch(url)
	if err != nil {
		return nil, err
	}
	return &Page{URL: url, Content: content}, nil
}

// biText returns a page's raw source. The paper's rule searches markup
// ("<p><b>" ...), so Text preserves tags; VisibleText strips them.
func biText(in *interp, args []Value) (Value, error) {
	if err := wantArgs(args, 1); err != nil {
		return nil, err
	}
	switch p := args[0].(type) {
	case *Page:
		return p.Content, nil
	case string:
		return p, nil
	default:
		return nil, fmt.Errorf("argument must be a page or string, got %s", typeName(args[0]))
	}
}

// biVisibleText renders the browser-visible text of a page.
func biVisibleText(in *interp, args []Value) (Value, error) {
	raw, err := biText(in, args)
	if err != nil {
		return nil, err
	}
	return htmldoc.Parse(raw.(string)).VisibleText(), nil
}

// biStrSearch runs a regular expression over text and returns the list of
// matches; each match is a list whose element 0 is the full match text and
// elements 1..n are capture groups (so St[0][0] is the first match).
func biStrSearch(in *interp, args []Value) (Value, error) {
	if err := wantArgs(args, 2); err != nil {
		return nil, err
	}
	text, err := argString(args, 0)
	if err != nil {
		return nil, err
	}
	pattern, err := argString(args, 1)
	if err != nil {
		return nil, err
	}
	re, err := compileRegexp(pattern)
	if err != nil {
		return nil, fmt.Errorf("invalid regular expression %q: %w", pattern, err)
	}
	var out []Value
	for _, m := range re.FindAllStringSubmatch(text, -1) {
		groups := make([]Value, len(m))
		for i, g := range m {
			groups[i] = g
		}
		out = append(out, Value(groups))
	}
	return out, nil
}

// biStrSplit splits text on any character of the separator set, dropping
// empty fields. Splitting "<p><b>Seiko" on "<>" yields [p b Seiko], the
// indexing the paper's rule relies on.
func biStrSplit(in *interp, args []Value) (Value, error) {
	if err := wantArgs(args, 2); err != nil {
		return nil, err
	}
	text, err := argString(args, 0)
	if err != nil {
		return nil, err
	}
	seps, err := argString(args, 1)
	if err != nil {
		return nil, err
	}
	if seps == "" {
		return nil, fmt.Errorf("separator set is empty")
	}
	fields := strings.FieldsFunc(text, func(r rune) bool {
		return strings.ContainsRune(seps, r)
	})
	out := make([]Value, len(fields))
	for i, f := range fields {
		out[i] = f
	}
	return out, nil
}

// biSelect returns the substring [start, end) with both bounds clamped to
// the string, counting bytes; Select("Seiko", 0, 6) is "Seiko".
func biSelect(in *interp, args []Value) (Value, error) {
	if err := wantArgs(args, 3); err != nil {
		return nil, err
	}
	s, err := argString(args, 0)
	if err != nil {
		return nil, err
	}
	startF, err := argNumber(args, 1)
	if err != nil {
		return nil, err
	}
	endF, err := argNumber(args, 2)
	if err != nil {
		return nil, err
	}
	start, end := int(startF), int(endF)
	if start < 0 {
		start = 0
	}
	if end > len(s) {
		end = len(s)
	}
	if start > end {
		return "", nil
	}
	return s[start:end], nil
}

func biStrTrim(in *interp, args []Value) (Value, error) {
	return strMap(args, strings.TrimSpace)
}

func strMap(args []Value, f func(string) string) (Value, error) {
	if err := wantArgs(args, 1); err != nil {
		return nil, err
	}
	s, err := argString(args, 0)
	if err != nil {
		return nil, err
	}
	return f(s), nil
}

func biStrReplace(in *interp, args []Value) (Value, error) {
	if err := wantArgs(args, 3); err != nil {
		return nil, err
	}
	s, err := argString(args, 0)
	if err != nil {
		return nil, err
	}
	old, err := argString(args, 1)
	if err != nil {
		return nil, err
	}
	repl, err := argString(args, 2)
	if err != nil {
		return nil, err
	}
	return strings.ReplaceAll(s, old, repl), nil
}

func biStrContains(in *interp, args []Value) (Value, error) {
	if err := wantArgs(args, 2); err != nil {
		return nil, err
	}
	s, err := argString(args, 0)
	if err != nil {
		return nil, err
	}
	sub, err := argString(args, 1)
	if err != nil {
		return nil, err
	}
	return strings.Contains(s, sub), nil
}

func biStrIndex(in *interp, args []Value) (Value, error) {
	if err := wantArgs(args, 2); err != nil {
		return nil, err
	}
	s, err := argString(args, 0)
	if err != nil {
		return nil, err
	}
	sub, err := argString(args, 1)
	if err != nil {
		return nil, err
	}
	return float64(strings.Index(s, sub)), nil
}

func biLen(in *interp, args []Value) (Value, error) {
	if err := wantArgs(args, 1); err != nil {
		return nil, err
	}
	switch t := args[0].(type) {
	case string:
		return float64(len(t)), nil
	case []Value:
		return float64(len(t)), nil
	default:
		return nil, fmt.Errorf("argument must be a string or list, got %s", typeName(args[0]))
	}
}

func biAppend(in *interp, args []Value) (Value, error) {
	if err := wantArgs(args, 2); err != nil {
		return nil, err
	}
	list, ok := args[0].([]Value)
	if !ok {
		return nil, fmt.Errorf("argument 1 must be a list, got %s", typeName(args[0]))
	}
	return append(append([]Value{}, list...), args[1]), nil
}

// biColumn projects one column out of a list of lists: Column(matches, 1)
// returns the first capture group of every Str_Search match. It is the
// linear-time idiom for building attribute value lists from n-record pages
// (Append copies its list, so an Append loop is quadratic).
func biColumn(in *interp, args []Value) (Value, error) {
	if err := wantArgs(args, 2); err != nil {
		return nil, err
	}
	rows, ok := args[0].([]Value)
	if !ok {
		return nil, fmt.Errorf("argument 1 must be a list, got %s", typeName(args[0]))
	}
	idxF, err := argNumber(args, 1)
	if err != nil {
		return nil, err
	}
	idx := int(idxF)
	out := make([]Value, 0, len(rows))
	for i, r := range rows {
		row, ok := r.([]Value)
		if !ok {
			return nil, fmt.Errorf("element %d is not a list", i)
		}
		if idx < 0 || idx >= len(row) {
			return nil, fmt.Errorf("column %d out of range for element %d (length %d)", idx, i, len(row))
		}
		out = append(out, row[idx])
	}
	return out, nil
}

func biToNumber(in *interp, args []Value) (Value, error) {
	if err := wantArgs(args, 1); err != nil {
		return nil, err
	}
	switch t := args[0].(type) {
	case float64:
		return t, nil
	case string:
		f, err := strconv.ParseFloat(strings.TrimSpace(t), 64)
		if err != nil {
			return nil, fmt.Errorf("%q is not a number", t)
		}
		return f, nil
	default:
		return nil, fmt.Errorf("cannot convert %s to a number", typeName(args[0]))
	}
}

func biToString(in *interp, args []Value) (Value, error) {
	if err := wantArgs(args, 1); err != nil {
		return nil, err
	}
	return toString(args[0]), nil
}

func biLines(in *interp, args []Value) (Value, error) {
	if err := wantArgs(args, 1); err != nil {
		return nil, err
	}
	s, err := argString(args, 0)
	if err != nil {
		return nil, err
	}
	var out []Value
	for _, l := range strings.Split(s, "\n") {
		out = append(out, strings.TrimRight(l, "\r"))
	}
	return out, nil
}

func biFields(in *interp, args []Value) (Value, error) {
	if err := wantArgs(args, 1); err != nil {
		return nil, err
	}
	s, err := argString(args, 0)
	if err != nil {
		return nil, err
	}
	var out []Value
	for _, f := range strings.Fields(s) {
		out = append(out, f)
	}
	return out, nil
}
