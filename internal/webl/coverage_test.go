package webl

import (
	"strings"
	"testing"
)

func TestFetcherFuncAdapter(t *testing.T) {
	f := FetcherFunc(func(url string) (string, error) { return "body:" + url, nil })
	got, err := f.Fetch("http://x")
	if err != nil || got != "body:http://x" {
		t.Fatalf("Fetch = %q, %v", got, err)
	}
}

func TestTruthiness(t *testing.T) {
	globals := run(t, `
var aNil = nil or false
var aEmptyStr = "" or false
var aStr = "x" and true
var aZero = 0 or false
var aNum = 3 and true
var aEmptyList = [] or false
var aList = [1] and true
`, nil)
	for name, want := range map[string]bool{
		"aNil": false, "aEmptyStr": false, "aStr": true,
		"aZero": false, "aNum": true, "aEmptyList": false, "aList": true,
	} {
		if globals[name] != want {
			t.Errorf("%s = %v, want %v", name, globals[name], want)
		}
	}
	// Pages are truthy.
	fetcher := MapFetcher{"http://x": "c"}
	globals = run(t, `var p = GetURL("http://x") and true`, &Env{Fetcher: fetcher})
	if globals["p"] != true {
		t.Errorf("page truthiness = %v", globals["p"])
	}
}

func TestToStringForms(t *testing.T) {
	fetcher := MapFetcher{"http://x": "c"}
	globals := run(t, `
var fromNil = "" + nil
var fromBool = "" + true
var fromList = "" + [1, "a"]
var fromFloat = "" + 2.5
var fromBig = "" + 1000000
var fromPage = "" + GetURL("http://x")
`, &Env{Fetcher: fetcher})
	checks := map[string]string{
		"fromNil":   "",
		"fromBool":  "true",
		"fromList":  "[1, a]",
		"fromFloat": "2.5",
		"fromBig":   "1000000",
		"fromPage":  "http://x",
	}
	for name, want := range checks {
		if globals[name] != want {
			t.Errorf("%s = %q, want %q", name, globals[name], want)
		}
	}
}

func TestBuiltinArgumentTypeErrors(t *testing.T) {
	// Every builtin rejects wrong argument types with a clean error naming
	// the function.
	cases := map[string]string{
		"Str_Replace":  `var a = Str_Replace(1, "b", "c")`,
		"Str_Contains": `var a = Str_Contains("x", 2)`,
		"Str_Index":    `var a = Str_Index(nil, "x")`,
		"Str_Trim":     `var a = Str_Trim(5)`,
		"Append":       `var a = Append("not a list", 1)`,
		"Column":       `var a = Column("not a list", 0)`,
		"ColumnRow":    `var a = Column(["not a row"], 0)`,
		"ColumnRange":  `var a = Column([[1]], 5)`,
		"ToNumber":     `var a = ToNumber([1])`,
		"GetURL":       `var a = GetURL(42)`,
		"Text":         `var a = Text(nil)`,
		"Lines":        `var a = Lines(7)`,
		"Fields":       `var a = Fields(7)`,
		"Select":       `var a = Select("x", "zero", 1)`,
	}
	for name, src := range cases {
		prog, err := Compile(src)
		if err != nil {
			t.Errorf("%s: compile error %v", name, err)
			continue
		}
		if _, err := prog.Run(&Env{Fetcher: MapFetcher{}}); err == nil {
			t.Errorf("%s: no runtime error for %q", name, src)
		}
	}
}

func TestTypeNameInErrors(t *testing.T) {
	prog := MustCompile(`var a = [1] - 2`)
	_, err := prog.Run(&Env{})
	if err == nil || !strings.Contains(err.Error(), "list") {
		t.Fatalf("err = %v, want type name 'list'", err)
	}
	prog = MustCompile(`var p = GetURL("http://x") var a = p - 1`)
	_, err = prog.Run(&Env{Fetcher: MapFetcher{"http://x": "c"}})
	if err == nil || !strings.Contains(err.Error(), "page") {
		t.Fatalf("err = %v, want type name 'page'", err)
	}
}

func TestSeededGlobals(t *testing.T) {
	prog := MustCompile(`return v + "!"`)
	globals, err := prog.Run(&Env{Globals: map[string]Value{"v": "seed"}})
	if err != nil {
		t.Fatal(err)
	}
	if globals["result"] != "seed!" {
		t.Errorf("result = %v", globals["result"])
	}
}
