package webl

import (
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
)

// Value is any WebL runtime value: string, float64, bool, nil, []Value, or
// *Page.
type Value any

// Page is a fetched web page.
type Page struct {
	// URL the page was fetched from.
	URL string
	// Content is the raw page source.
	Content string
}

// Fetcher resolves URLs to page content. The extractor supplies a fetcher
// backed by the registered web data sources; tests use in-memory maps.
type Fetcher interface {
	Fetch(url string) (string, error)
}

// FetcherFunc adapts a function to the Fetcher interface.
type FetcherFunc func(url string) (string, error)

// Fetch implements Fetcher.
func (f FetcherFunc) Fetch(url string) (string, error) { return f(url) }

// MapFetcher serves pages from a URL→content map.
type MapFetcher map[string]string

// Fetch implements Fetcher.
func (m MapFetcher) Fetch(url string) (string, error) {
	content, ok := m[url]
	if !ok {
		return "", fmt.Errorf("webl: no page at %q", url)
	}
	return content, nil
}

// Env configures one program execution.
type Env struct {
	// Fetcher backs GetURL. A nil Fetcher makes GetURL fail.
	Fetcher Fetcher
	// MaxSteps bounds statement executions to catch runaway loops;
	// 0 means DefaultMaxSteps.
	MaxSteps int
	// Globals seeds variables before execution — how the middleware passes
	// the raw value into a transform expression.
	Globals map[string]Value
}

// DefaultMaxSteps is the default execution budget.
const DefaultMaxSteps = 1_000_000

// Run executes the program and returns its global variables. Extraction
// callers read the variable named after the attribute being extracted, or
// "result" (which a return statement sets).
func (p *Program) Run(env *Env) (map[string]Value, error) {
	if env == nil {
		env = &Env{}
	}
	in := &interp{
		env:     env,
		globals: make(map[string]Value),
		funcs:   p.funcs,
		budget:  env.MaxSteps,
	}
	if in.budget <= 0 {
		in.budget = DefaultMaxSteps
	}
	for name, v := range env.Globals {
		in.globals[name] = v
	}
	for _, s := range p.stmts {
		done, err := in.exec(s)
		if err != nil {
			return nil, err
		}
		if done {
			in.globals["result"] = in.retValue
			break
		}
	}
	return in.globals, nil
}

// maxCallDepth bounds user-function recursion.
const maxCallDepth = 256

type interp struct {
	env     *Env
	globals map[string]Value
	funcs   map[string]*funcDecl
	budget  int

	// frames is the user-function call stack; the top frame holds the
	// current function's parameters and local variables.
	frames []map[string]Value
	// retValue carries the value of the last executed return statement.
	retValue Value
}

// scope returns the map new variables are declared in.
func (in *interp) scope() map[string]Value {
	if len(in.frames) > 0 {
		return in.frames[len(in.frames)-1]
	}
	return in.globals
}

// lookupVar resolves a variable: current frame first, then globals.
func (in *interp) lookupVar(name string) (Value, bool) {
	if len(in.frames) > 0 {
		if v, ok := in.frames[len(in.frames)-1][name]; ok {
			return v, true
		}
	}
	v, ok := in.globals[name]
	return v, ok
}

// callUser invokes a user-defined function.
func (in *interp) callUser(fn *funcDecl, args []Value, line int) (Value, error) {
	if len(args) != len(fn.params) {
		return nil, fmt.Errorf("webl: line %d: %s needs %d argument(s), got %d",
			line, fn.name, len(fn.params), len(args))
	}
	if len(in.frames) >= maxCallDepth {
		return nil, fmt.Errorf("webl: line %d: call depth exceeds %d (runaway recursion?)", line, maxCallDepth)
	}
	frame := make(map[string]Value, len(fn.params))
	for i, p := range fn.params {
		frame[p] = args[i]
	}
	in.frames = append(in.frames, frame)
	defer func() { in.frames = in.frames[:len(in.frames)-1] }()
	for _, s := range fn.body {
		done, err := in.exec(s)
		if err != nil {
			return nil, err
		}
		if done {
			return in.retValue, nil
		}
	}
	return nil, nil
}

func (in *interp) step(line int) error {
	in.budget--
	if in.budget < 0 {
		return fmt.Errorf("webl: line %d: execution budget exhausted (possible infinite loop)", line)
	}
	return nil
}

// exec runs one statement; done reports that a return was executed.
func (in *interp) exec(s stmt) (done bool, err error) {
	switch st := s.(type) {
	case *varDecl:
		if err := in.step(st.line); err != nil {
			return false, err
		}
		v, err := in.eval(st.init)
		if err != nil {
			return false, err
		}
		in.scope()[st.name] = v
		return false, nil
	case *assign:
		if err := in.step(st.line); err != nil {
			return false, err
		}
		v, err := in.eval(st.value)
		if err != nil {
			return false, err
		}
		return false, in.assignTo(st.target, v, st.line)
	case *ifStmt:
		if err := in.step(st.line); err != nil {
			return false, err
		}
		cond, err := in.eval(st.cond)
		if err != nil {
			return false, err
		}
		body := st.then
		if !truthy(cond) {
			body = st.alt
		}
		for _, inner := range body {
			done, err := in.exec(inner)
			if done || err != nil {
				return done, err
			}
		}
		return false, nil
	case *whileStmt:
		for {
			if err := in.step(st.line); err != nil {
				return false, err
			}
			cond, err := in.eval(st.cond)
			if err != nil {
				return false, err
			}
			if !truthy(cond) {
				return false, nil
			}
			for _, inner := range st.body {
				done, err := in.exec(inner)
				if done || err != nil {
					return done, err
				}
			}
		}
	case *returnStmt:
		if err := in.step(st.line); err != nil {
			return false, err
		}
		v, err := in.eval(st.value)
		if err != nil {
			return false, err
		}
		in.retValue = v
		return true, nil
	case *exprStmt:
		if err := in.step(st.line); err != nil {
			return false, err
		}
		_, err := in.eval(st.e)
		return false, err
	default:
		return false, fmt.Errorf("webl: unknown statement %T", s)
	}
}

func (in *interp) assignTo(target expr, v Value, line int) error {
	switch t := target.(type) {
	case *ident:
		if len(in.frames) > 0 {
			frame := in.frames[len(in.frames)-1]
			if _, local := frame[t.name]; local {
				frame[t.name] = v
				return nil
			}
		}
		if _, declared := in.globals[t.name]; !declared {
			return fmt.Errorf("webl: line %d: assignment to undeclared variable %q (use var)", line, t.name)
		}
		in.globals[t.name] = v
		return nil
	case *indexExpr:
		base, err := in.eval(t.base)
		if err != nil {
			return err
		}
		list, ok := base.([]Value)
		if !ok {
			return fmt.Errorf("webl: line %d: cannot index-assign into %s", line, typeName(base))
		}
		idxV, err := in.eval(t.index)
		if err != nil {
			return err
		}
		i, err := asIndex(idxV, len(list), line)
		if err != nil {
			return err
		}
		list[i] = v
		return nil
	default:
		return fmt.Errorf("webl: line %d: invalid assignment target", line)
	}
}

func (in *interp) eval(e expr) (Value, error) {
	switch x := e.(type) {
	case *stringLit:
		return x.val, nil
	case *numberLit:
		return x.val, nil
	case *boolLit:
		return x.val, nil
	case *nilLit:
		return nil, nil
	case *ident:
		v, ok := in.lookupVar(x.name)
		if !ok {
			return nil, fmt.Errorf("webl: line %d: undefined variable %q", x.line, x.name)
		}
		return v, nil
	case *listLit:
		out := make([]Value, len(x.elems))
		for i, el := range x.elems {
			v, err := in.eval(el)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	case *indexExpr:
		return in.evalIndex(x)
	case *callExpr:
		return in.call(x)
	case *binaryExpr:
		return in.evalBinary(x)
	case *unaryExpr:
		operand, err := in.eval(x.operand)
		if err != nil {
			return nil, err
		}
		switch x.op {
		case "-":
			n, ok := operand.(float64)
			if !ok {
				return nil, fmt.Errorf("webl: line %d: unary '-' needs a number, got %s", x.line, typeName(operand))
			}
			return -n, nil
		case "not":
			return !truthy(operand), nil
		default:
			return nil, fmt.Errorf("webl: line %d: unknown unary operator %q", x.line, x.op)
		}
	default:
		return nil, fmt.Errorf("webl: unknown expression %T", e)
	}
}

func (in *interp) evalIndex(x *indexExpr) (Value, error) {
	base, err := in.eval(x.base)
	if err != nil {
		return nil, err
	}
	idxV, err := in.eval(x.index)
	if err != nil {
		return nil, err
	}
	switch b := base.(type) {
	case []Value:
		i, err := asIndex(idxV, len(b), x.line)
		if err != nil {
			return nil, err
		}
		return b[i], nil
	case string:
		i, err := asIndex(idxV, len(b), x.line)
		if err != nil {
			return nil, err
		}
		return string(b[i]), nil
	default:
		return nil, fmt.Errorf("webl: line %d: cannot index %s", x.line, typeName(base))
	}
}

func (in *interp) evalBinary(x *binaryExpr) (Value, error) {
	// Short-circuit logic.
	if x.op == "and" || x.op == "or" {
		left, err := in.eval(x.left)
		if err != nil {
			return nil, err
		}
		if x.op == "and" && !truthy(left) {
			return false, nil
		}
		if x.op == "or" && truthy(left) {
			return true, nil
		}
		right, err := in.eval(x.right)
		if err != nil {
			return nil, err
		}
		return truthy(right), nil
	}

	left, err := in.eval(x.left)
	if err != nil {
		return nil, err
	}
	right, err := in.eval(x.right)
	if err != nil {
		return nil, err
	}

	switch x.op {
	case "+":
		// String concatenation when either side is a string (the paper's
		// rules build regexes this way); numeric addition otherwise.
		if ls, ok := left.(string); ok {
			return ls + toString(right), nil
		}
		if rs, ok := right.(string); ok {
			return toString(left) + rs, nil
		}
		if ll, ok := left.([]Value); ok {
			if rl, ok := right.([]Value); ok {
				return append(append([]Value{}, ll...), rl...), nil
			}
		}
		return numericOp(x, left, right)
	case "-", "*", "/", "%":
		return numericOp(x, left, right)
	case "==":
		return equalValues(left, right), nil
	case "!=":
		return !equalValues(left, right), nil
	case "<", ">", "<=", ">=":
		c, err := compareValues(left, right)
		if err != nil {
			return nil, fmt.Errorf("webl: line %d: %w", x.line, err)
		}
		switch x.op {
		case "<":
			return c < 0, nil
		case ">":
			return c > 0, nil
		case "<=":
			return c <= 0, nil
		default:
			return c >= 0, nil
		}
	default:
		return nil, fmt.Errorf("webl: line %d: unknown operator %q", x.line, x.op)
	}
}

func numericOp(x *binaryExpr, left, right Value) (Value, error) {
	ln, lok := left.(float64)
	rn, rok := right.(float64)
	if !lok || !rok {
		return nil, fmt.Errorf("webl: line %d: operator %q needs numbers, got %s and %s",
			x.line, x.op, typeName(left), typeName(right))
	}
	switch x.op {
	case "+":
		return ln + rn, nil
	case "-":
		return ln - rn, nil
	case "*":
		return ln * rn, nil
	case "/":
		if rn == 0 {
			return nil, fmt.Errorf("webl: line %d: division by zero", x.line)
		}
		return ln / rn, nil
	case "%":
		if rn == 0 {
			return nil, fmt.Errorf("webl: line %d: modulo by zero", x.line)
		}
		return math.Mod(ln, rn), nil
	default:
		return nil, fmt.Errorf("webl: line %d: unknown numeric operator %q", x.line, x.op)
	}
}

func truthy(v Value) bool {
	switch t := v.(type) {
	case nil:
		return false
	case bool:
		return t
	case string:
		return t != ""
	case float64:
		return t != 0
	case []Value:
		return len(t) > 0
	default:
		return true
	}
}

func equalValues(a, b Value) bool {
	if la, ok := a.([]Value); ok {
		lb, ok := b.([]Value)
		if !ok || len(la) != len(lb) {
			return false
		}
		for i := range la {
			if !equalValues(la[i], lb[i]) {
				return false
			}
		}
		return true
	}
	return a == b
}

// CompareError reports an attempt to order two values whose dynamic
// types have no defined ordering. It is a typed error so extraction
// callers can recognize rule-level type mistakes through the line-number
// wrap with errors.As and classify them as permanent (a bad rule stays
// bad on retry).
type CompareError struct {
	Left, Right string // value type names
}

func (e *CompareError) Error() string {
	return fmt.Sprintf("cannot order %s and %s", e.Left, e.Right)
}

func compareValues(a, b Value) (int, error) {
	if as, ok := a.(string); ok {
		if bs, ok := b.(string); ok {
			return strings.Compare(as, bs), nil
		}
	}
	if an, ok := a.(float64); ok {
		if bn, ok := b.(float64); ok {
			switch {
			case an < bn:
				return -1, nil
			case an > bn:
				return 1, nil
			default:
				return 0, nil
			}
		}
	}
	return 0, &CompareError{Left: typeName(a), Right: typeName(b)}
}

func typeName(v Value) string {
	switch v.(type) {
	case nil:
		return "nil"
	case string:
		return "string"
	case float64:
		return "number"
	case bool:
		return "boolean"
	case []Value:
		return "list"
	case *Page:
		return "page"
	default:
		return fmt.Sprintf("%T", v)
	}
}

func toString(v Value) string {
	switch t := v.(type) {
	case nil:
		return ""
	case string:
		return t
	case float64:
		if t == math.Trunc(t) && math.Abs(t) < 1e15 {
			return strconv.FormatInt(int64(t), 10)
		}
		return strconv.FormatFloat(t, 'g', -1, 64)
	case bool:
		return strconv.FormatBool(t)
	case []Value:
		parts := make([]string, len(t))
		for i, e := range t {
			parts[i] = toString(e)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case *Page:
		return t.URL
	default:
		return fmt.Sprintf("%v", v)
	}
}

func asIndex(v Value, length int, line int) (int, error) {
	n, ok := v.(float64)
	if !ok || n != math.Trunc(n) {
		return 0, fmt.Errorf("webl: line %d: index must be an integer, got %s", line, typeName(v))
	}
	i := int(n)
	if i < 0 || i >= length {
		return 0, fmt.Errorf("webl: line %d: index %d out of range (length %d)", line, i, length)
	}
	return i, nil
}

// regexpCache memoizes compiled regular expressions across rule executions;
// the extractor manager runs rules concurrently, so access is locked.
var regexpCache = struct {
	sync.Mutex
	m map[string]*regexp.Regexp
}{m: map[string]*regexp.Regexp{}}

func compileRegexp(pattern string) (*regexp.Regexp, error) {
	regexpCache.Lock()
	re, ok := regexpCache.m[pattern]
	regexpCache.Unlock()
	if ok {
		return re, nil
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, err
	}
	regexpCache.Lock()
	if len(regexpCache.m) < 4096 {
		regexpCache.m[pattern] = re
	}
	regexpCache.Unlock()
	return re, nil
}
