package webl

import (
	"fmt"
	"strconv"
)

// Program is a compiled WebL extraction rule.
type Program struct {
	stmts  []stmt
	funcs  map[string]*funcDecl
	source string
}

// Compile parses WebL source into a runnable program.
func Compile(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &weblParser{toks: toks}
	prog := &Program{funcs: map[string]*funcDecl{}, source: src}
	for !p.at(tokEOF, "") {
		if p.at(tokKeyword, "fun") {
			fn, err := p.funcDeclaration()
			if err != nil {
				return nil, err
			}
			if _, dup := prog.funcs[fn.name]; dup {
				return nil, fmt.Errorf("webl: line %d: function %q redefined", fn.line, fn.name)
			}
			if _, isBuiltin := builtins[fn.name]; isBuiltin {
				return nil, fmt.Errorf("webl: line %d: function %q shadows a builtin", fn.line, fn.name)
			}
			prog.funcs[fn.name] = fn
			continue
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		prog.stmts = append(prog.stmts, s)
	}
	return prog, nil
}

// MustCompile is Compile but panics on error; for static rules.
func MustCompile(src string) *Program {
	p, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Source returns the program's source text.
func (p *Program) Source() string { return p.source }

type weblParser struct {
	toks []token
	pos  int
}

func (p *weblParser) peek() token { return p.toks[p.pos] }

func (p *weblParser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *weblParser) at(kind tokenKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *weblParser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

func (p *weblParser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return token{}, p.errf("expected %s, got %s", want, p.peek())
}

func (p *weblParser) errf(format string, args ...any) error {
	return fmt.Errorf("webl: line %d: %s", p.peek().line, fmt.Sprintf(format, args...))
}

func (p *weblParser) statement() (stmt, error) {
	line := p.peek().line
	switch {
	case p.accept(tokKeyword, "var"):
		nameTok, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "="); err != nil {
			return nil, err
		}
		init, err := p.expression()
		if err != nil {
			return nil, err
		}
		p.accept(tokPunct, ";")
		return &varDecl{name: nameTok.text, init: init, line: line}, nil

	case p.accept(tokKeyword, "if"):
		return p.ifStatement(line)

	case p.accept(tokKeyword, "while"):
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &whileStmt{cond: cond, body: body, line: line}, nil

	case p.accept(tokKeyword, "return"):
		value, err := p.expression()
		if err != nil {
			return nil, err
		}
		p.accept(tokPunct, ";")
		return &returnStmt{value: value, line: line}, nil

	default:
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		if p.accept(tokPunct, "=") {
			switch e.(type) {
			case *ident, *indexExpr:
			default:
				return nil, p.errf("invalid assignment target")
			}
			value, err := p.expression()
			if err != nil {
				return nil, err
			}
			p.accept(tokPunct, ";")
			return &assign{target: e, value: value, line: line}, nil
		}
		p.accept(tokPunct, ";")
		return &exprStmt{e: e, line: line}, nil
	}
}

func (p *weblParser) funcDeclaration() (*funcDecl, error) {
	line := p.peek().line
	p.next() // fun
	nameTok, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	fn := &funcDecl{name: nameTok.text, line: line}
	seen := map[string]bool{}
	if !p.at(tokPunct, ")") {
		for {
			param, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			if seen[param.text] {
				return nil, p.errf("duplicate parameter %q", param.text)
			}
			seen[param.text] = true
			fn.params = append(fn.params, param.text)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.body = body
	return fn, nil
}

func (p *weblParser) ifStatement(line int) (stmt, error) {
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	node := &ifStmt{cond: cond, then: then, line: line}
	if p.accept(tokKeyword, "else") {
		if p.accept(tokKeyword, "if") {
			nested, err := p.ifStatement(p.peek().line)
			if err != nil {
				return nil, err
			}
			node.alt = []stmt{nested}
		} else {
			alt, err := p.block()
			if err != nil {
				return nil, err
			}
			node.alt = alt
		}
	}
	return node, nil
}

func (p *weblParser) block() ([]stmt, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	var stmts []stmt
	for !p.at(tokPunct, "}") {
		if p.at(tokEOF, "") {
			return nil, p.errf("unterminated block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.next() // }
	return stmts, nil
}

// Precedence levels: or < and < comparison < additive < multiplicative <
// unary < postfix.
func (p *weblParser) expression() (expr, error) { return p.orExpr() }

func (p *weblParser) orExpr() (expr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for {
		line := p.peek().line
		if !p.accept(tokKeyword, "or") && !p.accept(tokPunct, "||") {
			return left, nil
		}
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op: "or", left: left, right: right, line: line}
	}
}

func (p *weblParser) andExpr() (expr, error) {
	left, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for {
		line := p.peek().line
		if !p.accept(tokKeyword, "and") && !p.accept(tokPunct, "&&") {
			return left, nil
		}
		right, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op: "and", left: left, right: right, line: line}
	}
}

func (p *weblParser) cmpExpr() (expr, error) {
	left, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"==", "!=", "<=", ">=", "<", ">"} {
		line := p.peek().line
		if p.accept(tokPunct, op) {
			right, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return &binaryExpr{op: op, left: left, right: right, line: line}, nil
		}
	}
	return left, nil
}

func (p *weblParser) addExpr() (expr, error) {
	left, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		line := p.peek().line
		var op string
		switch {
		case p.accept(tokPunct, "+"):
			op = "+"
		case p.accept(tokPunct, "-"):
			op = "-"
		default:
			return left, nil
		}
		right, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op: op, left: left, right: right, line: line}
	}
}

func (p *weblParser) mulExpr() (expr, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		line := p.peek().line
		var op string
		switch {
		case p.accept(tokPunct, "*"):
			op = "*"
		case p.accept(tokPunct, "/"):
			op = "/"
		case p.accept(tokPunct, "%"):
			op = "%"
		default:
			return left, nil
		}
		right, err := p.unary()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op: op, left: left, right: right, line: line}
	}
}

func (p *weblParser) unary() (expr, error) {
	line := p.peek().line
	switch {
	case p.accept(tokPunct, "-"):
		operand, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{op: "-", operand: operand, line: line}, nil
	case p.accept(tokKeyword, "not"), p.accept(tokPunct, "!"):
		operand, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{op: "not", operand: operand, line: line}, nil
	default:
		return p.postfix()
	}
}

func (p *weblParser) postfix() (expr, error) {
	base, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		line := p.peek().line
		switch {
		case p.accept(tokPunct, "["):
			idx, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			base = &indexExpr{base: base, index: idx, line: line}
		case p.at(tokPunct, "("):
			id, ok := base.(*ident)
			if !ok {
				return nil, p.errf("only named builtins can be called")
			}
			p.next() // (
			var args []expr
			if !p.at(tokPunct, ")") {
				for {
					a, err := p.expression()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.accept(tokPunct, ",") {
						break
					}
				}
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			base = &callExpr{fn: id.name, args: args, line: line}
		default:
			return base, nil
		}
	}
}

func (p *weblParser) primary() (expr, error) {
	switch {
	case p.at(tokString, ""):
		return &stringLit{val: p.next().text}, nil
	case p.at(tokNumber, ""):
		tok := p.next()
		f, err := strconv.ParseFloat(tok.text, 64)
		if err != nil {
			return nil, p.errf("invalid number %q", tok.text)
		}
		return &numberLit{val: f}, nil
	case p.accept(tokKeyword, "true"):
		return &boolLit{val: true}, nil
	case p.accept(tokKeyword, "false"):
		return &boolLit{val: false}, nil
	case p.accept(tokKeyword, "nil"):
		return &nilLit{}, nil
	case p.at(tokIdent, ""):
		tok := p.next()
		return &ident{name: tok.text, line: tok.line}, nil
	case p.accept(tokPunct, "("):
		inner, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return inner, nil
	case p.accept(tokPunct, "["):
		var elems []expr
		if !p.at(tokPunct, "]") {
			for {
				e, err := p.expression()
				if err != nil {
					return nil, err
				}
				elems = append(elems, e)
				if !p.accept(tokPunct, ",") {
					break
				}
			}
		}
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return nil, err
		}
		return &listLit{elems: elems}, nil
	default:
		return nil, p.errf("expected an expression, got %s", p.peek())
	}
}
