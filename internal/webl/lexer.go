// Package webl implements an interpreter for the web extraction language the
// paper uses to write unstructured-source extraction rules (§2.3.1 step 2,
// citing Kistler & Marais' WebL). The paper's own rule runs unmodified:
//
//	var P = GetURL("http://www.eshop.com/products/watches.html");
//	var pText = Text(P);
//	var regexpr = "<p><b>" + `[0-9a-zA-Z']+`;
//	var St = Str_Search(pText, regexpr);
//	var spliter = Str_Split(St[0][0], "<>");
//	var brand = Select(spliter[2], 0, 6);
//
// The language is small and imperative: var declarations, assignment,
// if/else, while, lists, string/number/boolean values, and a library of
// page-fetching and string-processing builtins. After a program runs, the
// extractor reads the variable named after the attribute being extracted
// (or "result"); list values carry the n-record scenario.
package webl

import (
	"fmt"
	"strings"
)

// tokenKind classifies WebL tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokString
	tokNumber
	tokPunct
)

type token struct {
	kind tokenKind
	text string
	line int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of program"
	}
	return fmt.Sprintf("%q", t.text)
}

var weblKeywords = map[string]bool{
	"var": true, "if": true, "else": true, "while": true, "return": true,
	"true": true, "false": true, "nil": true, "and": true, "or": true, "not": true,
	"fun": true,
}

// lex tokenizes WebL source. Comments run from // or # to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/', c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '"':
			start := i
			i++
			var b strings.Builder
			closed := false
			for i < len(src) {
				switch src[i] {
				case '"':
					i++
					closed = true
				case '\\':
					if i+1 >= len(src) {
						return nil, fmt.Errorf("webl: line %d: dangling escape", line)
					}
					switch src[i+1] {
					case 'n':
						b.WriteByte('\n')
					case 't':
						b.WriteByte('\t')
					case 'r':
						b.WriteByte('\r')
					case '"':
						b.WriteByte('"')
					case '\\':
						b.WriteByte('\\')
					default:
						return nil, fmt.Errorf("webl: line %d: unknown escape \\%c", line, src[i+1])
					}
					i += 2
					continue
				case '\n':
					return nil, fmt.Errorf("webl: line %d: newline in string literal", line)
				default:
					b.WriteByte(src[i])
					i++
					continue
				}
				break
			}
			if !closed {
				return nil, fmt.Errorf("webl: line %d: unterminated string starting at offset %d", line, start)
			}
			toks = append(toks, token{kind: tokString, text: b.String(), line: line})
		case c == '`':
			// Raw string: no escapes, may span lines. The paper uses these
			// for regular expressions.
			i++
			end := strings.IndexByte(src[i:], '`')
			if end < 0 {
				return nil, fmt.Errorf("webl: line %d: unterminated raw string", line)
			}
			text := src[i : i+end]
			line += strings.Count(text, "\n")
			toks = append(toks, token{kind: tokString, text: text, line: line})
			i += end + 1
		case c >= '0' && c <= '9':
			start := i
			sawDot := false
			for i < len(src) {
				d := src[i]
				if d >= '0' && d <= '9' {
					i++
				} else if d == '.' && !sawDot {
					sawDot = true
					i++
				} else {
					break
				}
			}
			toks = append(toks, token{kind: tokNumber, text: src[start:i], line: line})
		case isWeblIdentStart(c):
			start := i
			for i < len(src) && isWeblIdentPart(src[i]) {
				i++
			}
			text := src[start:i]
			kind := tokIdent
			if weblKeywords[text] {
				kind = tokKeyword
			}
			toks = append(toks, token{kind: kind, text: text, line: line})
		default:
			var text string
			switch {
			case strings.HasPrefix(src[i:], "=="), strings.HasPrefix(src[i:], "!="),
				strings.HasPrefix(src[i:], "<="), strings.HasPrefix(src[i:], ">="),
				strings.HasPrefix(src[i:], "&&"), strings.HasPrefix(src[i:], "||"):
				text = src[i : i+2]
				i += 2
			case strings.ContainsRune("()[]{},;=<>+-*/%!", rune(c)):
				text = string(c)
				i++
			default:
				return nil, fmt.Errorf("webl: line %d: unexpected character %q", line, c)
			}
			toks = append(toks, token{kind: tokPunct, text: text, line: line})
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line})
	return toks, nil
}

func isWeblIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isWeblIdentPart(c byte) bool {
	return isWeblIdentStart(c) || c >= '0' && c <= '9'
}
