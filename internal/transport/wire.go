// Package transport exposes the S2S middleware as a B2B network endpoint
// and provides the matching Go client, plus an HTTP-backed page fetcher so
// web data sources can be genuinely remote. This is the deployment shape
// the paper's B2B setting implies: partner organizations query one S2S
// endpoint over the network instead of integrating pairwise.
package transport

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/datasource"
	"repro/internal/extract"
	"repro/internal/mapping"
	"repro/internal/obs"
	"repro/internal/webl"
)

// WireSource is the JSON form of a data source definition.
type WireSource struct {
	ID    string            `json:"id"`
	Kind  string            `json:"kind"`
	URL   string            `json:"url,omitempty"`
	Path  string            `json:"path,omitempty"`
	DSN   string            `json:"dsn,omitempty"`
	Props map[string]string `json:"props,omitempty"`
}

// ToDefinition converts the wire form.
func (w WireSource) ToDefinition() (datasource.Definition, error) {
	def := datasource.Definition{ID: w.ID, URL: w.URL, Path: w.Path, DSN: w.DSN, Props: w.Props}
	switch strings.ToLower(w.Kind) {
	case "web":
		def.Kind = datasource.KindWeb
	case "xml":
		def.Kind = datasource.KindXML
	case "database", "db":
		def.Kind = datasource.KindDatabase
	case "text":
		def.Kind = datasource.KindText
	default:
		return def, fmt.Errorf("transport: unknown source kind %q", w.Kind)
	}
	return def, def.Validate()
}

// FromDefinition converts to the wire form.
func FromDefinition(def datasource.Definition) WireSource {
	return WireSource{
		ID: def.ID, Kind: def.Kind.String(),
		URL: def.URL, Path: def.Path, DSN: def.DSN, Props: def.Props,
	}
}

// WireMapping is the JSON form of a mapping entry.
type WireMapping struct {
	Attribute string `json:"attribute"`
	Source    string `json:"source"`
	Language  string `json:"language,omitempty"`
	Code      string `json:"code"`
	Column    string `json:"column,omitempty"`
	Transform string `json:"transform,omitempty"`
	Scenario  string `json:"scenario,omitempty"`
}

// ToEntry converts the wire form.
func (w WireMapping) ToEntry() (mapping.Entry, error) {
	e := mapping.Entry{
		AttributeID: w.Attribute,
		SourceID:    w.Source,
		Rule:        mapping.Rule{Code: w.Code, Column: w.Column, Transform: w.Transform},
	}
	if w.Language != "" {
		lang, err := mapping.ParseLanguage(w.Language)
		if err != nil {
			return e, err
		}
		e.Rule.Language = lang
	}
	switch strings.ToLower(w.Scenario) {
	case "":
	case "single", "single-record":
		e.Scenario = mapping.SingleRecord
	case "multi", "multi-record":
		e.Scenario = mapping.MultiRecord
	default:
		return e, fmt.Errorf("transport: unknown scenario %q", w.Scenario)
	}
	return e, nil
}

// FromEntry converts to the wire form. Unset language and scenario (the
// repository defaults them at registration) serialize as empty strings.
func FromEntry(e mapping.Entry) WireMapping {
	wm := WireMapping{
		Attribute: e.AttributeID,
		Source:    e.SourceID,
		Code:      e.Rule.Code,
		Column:    e.Rule.Column,
		Transform: e.Rule.Transform,
	}
	if e.Rule.Language != 0 {
		wm.Language = e.Rule.Language.String()
	}
	if e.Scenario != 0 {
		wm.Scenario = e.Scenario.String()
	}
	return wm
}

// Trace propagation headers of the remote-source protocol. A caller that
// is itself traced sends both; the server joins the caller's trace
// instead of minting a new one, and echoes the trace ID on the response,
// so a federated query reads as one connected span tree.
const (
	// TraceIDHeader carries the trace identifier shared by every span of
	// one federated query.
	TraceIDHeader = "X-S2s-Trace-Id"
	// SpanIDHeader carries the caller's active span ID — the parent of
	// the server-side subtree.
	SpanIDHeader = "X-S2s-Span-Id"
)

// QueryRequest is the body of POST /query.
type QueryRequest struct {
	Query  string `json:"query"`
	Format string `json:"format,omitempty"`
	// Trace asks the server to return its span tree for this query in
	// QueryResponse.Trace (GET form: ?trace=1).
	Trace bool `json:"trace,omitempty"`
}

// QueryResponse is the envelope of a query answer.
type QueryResponse struct {
	Query   string   `json:"query"`
	Format  string   `json:"format"`
	Matched int      `json:"matched"`
	Related int      `json:"related"`
	Errors  []string `json:"errors,omitempty"`
	// Degraded lists fragments served stale from the rule cache after
	// their live source failed, with staleness ages.
	Degraded []string `json:"degraded,omitempty"`
	Missing  []string `json:"missing,omitempty"`
	// Body is the serialized result in the requested format.
	Body string `json:"body"`
	// Trace is the server-side span tree, present when the request set
	// Trace. A traced caller grafts it under its own span (Span.Adopt) to
	// see the federated query as one tree.
	Trace *obs.Span `json:"trace,omitempty"`
}

// SPARQLRequest is the body of POST /sparql: assemble instances with an
// S2SQL query (the ontology root class when empty), optionally materialize
// RDFS entailments, then evaluate the SPARQL query over the result graph.
type SPARQLRequest struct {
	S2SQL  string `json:"s2sql,omitempty"`
	SPARQL string `json:"sparql"`
	Reason bool   `json:"reason,omitempty"`
}

// SPARQLResponse carries the solutions; terms are in N-Triples syntax.
type SPARQLResponse struct {
	Vars     []string            `json:"vars"`
	Bindings []map[string]string `json:"bindings"`
}

// HTTPFetcher is a webl.Fetcher that fetches pages over real HTTP,
// connecting the WebL GetURL builtin to remote web data sources.
type HTTPFetcher struct {
	// Client is the HTTP client; nil uses a client with DefaultFetchTimeout.
	Client *http.Client
	// MaxBytes caps the fetched body; 0 means DefaultMaxFetchBytes.
	MaxBytes int64
}

// Defaults for HTTPFetcher.
const (
	DefaultFetchTimeout  = 10 * time.Second
	DefaultMaxFetchBytes = 8 << 20
)

// Fetch implements webl.Fetcher.
func (f *HTTPFetcher) Fetch(url string) (string, error) {
	return f.FetchContext(context.Background(), url)
}

// FetchContext implements extract.ContextFetcher: the fetch is bound to
// ctx and, when ctx carries an active span, the trace/span ID headers
// are forwarded so remote web sources join the query's trace.
func (f *HTTPFetcher) FetchContext(ctx context.Context, url string) (string, error) {
	client := f.Client
	if client == nil {
		client = &http.Client{Timeout: DefaultFetchTimeout}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return "", fmt.Errorf("transport: fetching %s: %w", url, err)
	}
	if span := obs.SpanFromContext(ctx); span != nil {
		req.Header.Set(TraceIDHeader, span.TraceID)
		req.Header.Set(SpanIDHeader, span.ID)
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", fmt.Errorf("transport: fetching %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("transport: fetching %s: status %s", url, resp.Status)
	}
	maxBytes := f.MaxBytes
	if maxBytes <= 0 {
		maxBytes = DefaultMaxFetchBytes
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBytes))
	if err != nil {
		return "", fmt.Errorf("transport: reading %s: %w", url, err)
	}
	return string(body), nil
}

var (
	_ webl.Fetcher           = (*HTTPFetcher)(nil)
	_ extract.ContextFetcher = (*HTTPFetcher)(nil)
)
