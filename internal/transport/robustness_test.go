package transport

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/obs"
	"repro/internal/workload"
)

// TestClientRetriesGetOn503 exercises the idempotent-GET retry loop:
// the server sheds twice with 503 + Retry-After, then answers.
func TestClientRetriesGetOn503(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"overloaded"}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `[]`)
	}))
	defer srv.Close()

	client := NewClient(srv.URL, nil)
	if _, err := client.Sources(context.Background()); err != nil {
		t.Fatalf("GET should have recovered after retries: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3 (1 + 2 retries)", got)
	}
}

// TestClientDoesNotRetryPost ensures mutations are never replayed.
func TestClientDoesNotRetryPost(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"overloaded"}`)
	}))
	defer srv.Close()

	client := NewClient(srv.URL, nil)
	if _, err := client.Query(context.Background(), "SELECT product", "json"); err == nil {
		t.Fatal("POST against a 503 server should fail")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d POST calls, want 1 (mutations must not be replayed)", got)
	}
}

func TestClientRetriesDisabled(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	client := NewClient(srv.URL, nil)
	client.SetRetries(0)
	if _, err := client.Sources(context.Background()); err == nil {
		t.Fatal("expected failure with retries disabled")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d calls, want 1", got)
	}
}

// TestServerShedsAboveConcurrencyCap saturates a capped server with one
// slow in-flight query and verifies the next request is shed with 503 +
// Retry-After and counted under s2s_query_total{outcome="shed"}.
func TestServerShedsAboveConcurrencyCap(t *testing.T) {
	world := workload.MustGenerate(workload.Spec{
		DBSources: 1, XMLSources: 1, WebSources: 1, TextSources: 1,
		RecordsPerSource: 10, Seed: 21,
	})
	// SimulatedLatency keeps the in-flight query slow enough to hold the
	// single slot while the second request arrives.
	mw, err := core.NewWithCatalog(world.Ontology, world.Catalog, extract.Options{
		SimulatedLatency: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := world.Apply(mw); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(mw, WithMaxConcurrentQueries(1)))
	defer srv.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(srv.URL + "/query?q=SELECT+product&format=json")
		if err == nil {
			resp.Body.Close()
		}
	}()
	time.Sleep(50 * time.Millisecond) // let the slow query occupy the slot

	resp, err := http.Get(srv.URL + "/query?q=SELECT+product&format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (shed)", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || !strings.Contains(e.Error, "capacity") {
		t.Errorf("shed body = %+v (%v)", e, err)
	}
	wg.Wait()

	got := mw.Metrics().Counter(obs.MetricQueryTotal, obs.Labels{"outcome": obs.OutcomeShed}).Value()
	if got != 1 {
		t.Errorf("shed counter = %v, want 1", got)
	}
}

// TestShedRetryAfterJitterSpreadsRetries holds a capped server's only
// query slot and sheds a burst of requests: the advertised Retry-After
// values must spread across [base, base+jitter] rather than
// resynchronizing every victim onto the same retry instant, and the
// client's retry delay must follow each advertised value.
func TestShedRetryAfterJitterSpreadsRetries(t *testing.T) {
	world := workload.MustGenerate(workload.Spec{
		DBSources: 1, RecordsPerSource: 5, Seed: 22,
	})
	mw, err := core.NewWithCatalog(world.Ontology, world.Catalog, extract.Options{
		SimulatedLatency: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := world.Apply(mw); err != nil {
		t.Fatal(err)
	}
	ts := NewServer(mw, WithMaxConcurrentQueries(1))
	// Deterministic jitter seam: the shed burst draws 0,1,2,0,1,2,...
	var draws atomic.Int32
	ts.shedRandMu.Lock()
	ts.shedRandIntn = func(n int) int { return int(draws.Add(1)-1) % n }
	ts.shedRandMu.Unlock()
	srv := httptest.NewServer(ts)
	defer srv.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(srv.URL + "/query?q=SELECT+product&format=json")
		if err == nil {
			resp.Body.Close()
		}
	}()
	time.Sleep(50 * time.Millisecond) // let the slow query occupy the slot

	base := int(ts.shedRetryAfter / time.Second)
	seen := map[int]int{}
	client := NewClient(srv.URL, nil)
	for i := 0; i < 6; i++ {
		resp, err := http.Get(srv.URL + "/query?q=SELECT+product&format=json")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			resp.Body.Close()
			t.Fatalf("status = %d, want 503 (shed)", resp.StatusCode)
		}
		secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil {
			t.Fatalf("Retry-After = %q: %v", resp.Header.Get("Retry-After"), err)
		}
		if secs < base || secs > base+ts.shedJitterSecs {
			t.Errorf("Retry-After = %d, want in [%d, %d]", secs, base, base+ts.shedJitterSecs)
		}
		seen[secs]++
		// The client schedules its retry off the advertised value, so
		// jittered headers directly spread the retries out.
		if got := client.retryDelay(resp, 0); got != time.Duration(secs)*time.Second {
			t.Errorf("client retry delay = %v, want %ds (the advertised Retry-After)", got, secs)
		}
		resp.Body.Close()
	}
	if len(seen) < 2 {
		t.Errorf("shed burst advertised a single Retry-After value %v; jitter must spread retries", seen)
	}
	wg.Wait()
}

// TestHealthReportsDegradedState drives /healthz through its states:
// "ok" with the breaker and shed gauges at rest, then "degraded" once
// a source's circuit breaker opens.
func TestHealthReportsDegradedState(t *testing.T) {
	world := workload.MustGenerate(workload.Spec{
		WebSources: 1, RecordsPerSource: 5, Seed: 23,
	})
	backends := extract.FromCatalog(world.Catalog)
	var dead atomic.Bool
	inner := backends.Pages
	backends.Pages = fetcherFunc(func(url string) (string, error) {
		if dead.Load() {
			return "", fmt.Errorf("partner offline")
		}
		return inner.Fetch(url)
	})
	mw, err := core.New(core.Config{
		Ontology: world.Ontology,
		Backends: backends,
		Extract: extract.Options{
			Retries: 0,
			Breaker: extract.BreakerOptions{Threshold: 1, Cooldown: time.Minute},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := world.Apply(mw); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(mw, WithMaxConcurrentQueries(4)))
	defer srv.Close()

	getHealth := func() HealthStatus {
		t.Helper()
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz status = %d", resp.StatusCode)
		}
		var h HealthStatus
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h
	}

	h := getHealth()
	if h.Status != "ok" || h.BreakersOpen != 0 {
		t.Fatalf("initial health = %+v, want ok with no open breakers", h)
	}
	if h.ShedCapacity != 4 || h.ShedInFlight != 0 {
		t.Errorf("shed gauges = %d/%d, want 0/4", h.ShedInFlight, h.ShedCapacity)
	}

	// Kill the partner and run a query to trip its breaker.
	dead.Store(true)
	resp, err := http.Get(srv.URL + "/query?q=SELECT+product&format=json")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	h = getHealth()
	if h.Status != "degraded" || h.BreakersOpen == 0 {
		t.Fatalf("post-trip health = %+v, want degraded with an open breaker", h)
	}
}

// TestQueryResponseCarriesDegraded runs a query against a world whose web
// source dies after warming the rule cache, and checks the degradations
// reach the wire envelope.
func TestQueryResponseCarriesDegraded(t *testing.T) {
	world := workload.MustGenerate(workload.Spec{
		WebSources: 1, RecordsPerSource: 5, Seed: 3,
	})
	backends := extract.FromCatalog(world.Catalog)
	inner := backends.Pages
	var dead atomic.Bool
	backends.Pages = fetcherFunc(func(url string) (string, error) {
		if dead.Load() {
			return "", fmt.Errorf("partner offline")
		}
		return inner.Fetch(url)
	})
	mw, err := core.New(core.Config{
		Ontology: world.Ontology,
		Backends: backends,
		Extract:  extract.Options{CacheTTL: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := world.Apply(mw); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(mw))
	defer srv.Close()
	client := NewClient(srv.URL, nil)
	ctx := context.Background()

	if _, err := client.Query(ctx, "SELECT product", "json"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // expire the cache
	dead.Store(true)

	resp, err := client.Query(ctx, "SELECT product", "json")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Degraded) == 0 {
		t.Fatalf("response carries no degradations: %+v", resp)
	}
	if !strings.Contains(resp.Degraded[0], "stale") {
		t.Errorf("degradation text = %q", resp.Degraded[0])
	}
	if resp.Matched == 0 {
		t.Error("stale serve should still answer the query")
	}
}

type fetcherFunc func(url string) (string, error)

func (f fetcherFunc) Fetch(url string) (string, error) { return f(url) }
