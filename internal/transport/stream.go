package transport

// stream.go is the streaming pipeline's wire surface: the
// /query/stream endpoint serializes a query answer straight onto the
// connection in chunked transfer encoding as the chunk buffer fills,
// and the matching client decodes the body incrementally into the
// caller's writer. Because the status line and headers are long gone
// when a mid-stream failure hits, completion is signaled in HTTP
// trailers: a response whose trailers lack X-S2s-Stream-Complete is a
// truncated stream, and the client says so instead of handing the
// caller a silently short body. See docs/STREAMING.md.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/instance"
	"repro/internal/obs"
)

// Streaming response headers and trailers of GET /query/stream.
const (
	// StreamMatchedHeader carries the matched-instance count; it is sent
	// before the body (generation completes before serialization starts,
	// so the counts are known up front).
	StreamMatchedHeader = "X-S2s-Matched"
	// StreamRelatedHeader carries the related-instance count.
	StreamRelatedHeader = "X-S2s-Related"
	// StreamCompleteTrailer is "true" when the whole body was written.
	// Its absence from the trailers means the stream was cut mid-body.
	StreamCompleteTrailer = "X-S2s-Stream-Complete"
	// StreamErrorsTrailer carries the number of per-source extraction
	// errors the answer absorbed (the error detail rides inside the body
	// for formats that carry it, e.g. the JSON errors array).
	StreamErrorsTrailer = "X-S2s-Stream-Errors"
	// StreamErrorTrailer carries the message of a mid-stream
	// serialization failure; when present the body is truncated.
	StreamErrorTrailer = "X-S2s-Stream-Error"
	// StreamModeHeader reports which emission path produced the body:
	// StreamModeEager when the planner proved the query merge-free and
	// the body streamed barrier-free (instance counts then arrive as
	// trailers, since the body starts before generation finishes), or
	// StreamModeBarrier otherwise (counts in the pre-body headers, as
	// before). The bytes are identical either way.
	StreamModeHeader = "X-S2s-Stream-Mode"
)

// StreamModeHeader values.
const (
	StreamModeEager   = "eager"
	StreamModeBarrier = "barrier"
)

// StreamResult summarizes one streamed query exchange on the client.
type StreamResult struct {
	// Matched and Related are the instance counts — from the pre-body
	// headers in barrier mode, from the trailers in eager mode.
	Matched int
	Related int
	// SourceErrors is the extraction-error count from the trailers.
	SourceErrors int
	// Bytes is how many body bytes were copied to the caller's writer.
	Bytes int64
	// Mode is the server's StreamModeHeader value ("barrier" when the
	// server predates the header).
	Mode string
}

// contentTypeFor maps a serialization format to its media type; the
// /query/stream body is the raw serialized document, not a JSON
// envelope.
func contentTypeFor(f instance.Format) string {
	switch f {
	case instance.FormatOWL:
		return "application/rdf+xml"
	case instance.FormatTurtle:
		return "text/turtle; charset=utf-8"
	case instance.FormatNTriples:
		return "application/n-triples"
	case instance.FormatXML:
		return "application/xml"
	case instance.FormatJSON:
		return "application/json"
	default:
		return "text/plain; charset=utf-8"
	}
}

// flushWriter forwards every write to the response and flushes it,
// so each chunk-buffer flush becomes one chunked-transfer frame on the
// wire instead of sitting in the server's response buffer.
type flushWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

func (fw *flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	if fw.f != nil {
		fw.f.Flush()
	}
	return n, err
}

// countingWriter tracks whether any body byte reached the response, so
// an error raised before the first write can still use a regular error
// status (the response is uncommitted until then).
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// handleQueryStream answers GET /query/stream?q=...&format=...: the
// streaming pipeline runs the query, the matched/related counts go out
// as headers, and the serialized document follows as a chunked body
// with completion signaled in trailers.
func (s *Server) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("transport: %s not allowed", r.Method))
		return
	}
	if !s.acquireQuerySlot(w) {
		return
	}
	defer s.releaseQuerySlot()

	query := r.URL.Query().Get("q")
	if strings.TrimSpace(query) == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("transport: empty query"))
		return
	}
	format := instance.FormatOWL
	if fs := r.URL.Query().Get("format"); fs != "" {
		f, err := instance.ParseFormat(fs)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		format = f
	}

	ctx := obs.ContextWithMetrics(r.Context(), s.mw.Metrics())
	if tid := r.Header.Get(TraceIDHeader); tid != "" {
		ctx = obs.ContextWithRemote(ctx, obs.Remote{TraceID: tid, ParentID: r.Header.Get(SpanIDHeader)})
	}
	ctx, root := s.mw.Tracer().StartTrace(ctx, "http_query_stream")
	w.Header().Set(TraceIDHeader, root.TraceID)

	// Plan first (through the plan cache — the query run below replans
	// for free) to learn the merge-free verdict: it decides, before the
	// response commits, whether the body can stream barrier-free.
	_, mergeFree, err := s.mw.PlanMergeFree(ctx, query)
	if err != nil {
		root.SetAttr("outcome", "error")
		root.End()
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if s.mw.EagerStream(mergeFree, format) {
		s.streamEager(ctx, root, w, query, format)
		return
	}

	// Barrier mode: extraction and generation stream internally but
	// complete before serialization starts, so the instance counts go
	// out as headers and a failure here is still pre-body.
	res, err := s.mw.QueryStreamed(ctx, query)
	if err != nil {
		root.SetAttr("outcome", "error")
		root.End()
		httpError(w, http.StatusBadRequest, err)
		return
	}

	w.Header().Set("Content-Type", contentTypeFor(format))
	w.Header().Set(StreamModeHeader, StreamModeBarrier)
	w.Header().Set(StreamMatchedHeader, strconv.Itoa(len(res.Matched)))
	w.Header().Set(StreamRelatedHeader, strconv.Itoa(len(res.Related)))
	// Announce the trailers before the first body byte; their values are
	// set after the body, which is the point: they report how it ended.
	w.Header().Set("Trailer", StreamCompleteTrailer+", "+StreamErrorsTrailer+", "+StreamErrorTrailer)

	fw := &flushWriter{w: w}
	if f, ok := w.(http.Flusher); ok {
		fw.f = f
		// Commit the header block and the chunked framing before
		// serialization. A zero-instance result can serialize to zero
		// bytes (NTriples has no envelope); an uncommitted zero-byte
		// response would go out with Content-Length: 0, and net/http
		// silently drops announced trailers from such a response — the
		// client would then read a completed stream as truncated.
		fw.f.Flush()
	}
	_, err = s.mw.Generator().SerializeChunkedContext(ctx, fw, res, format, 0)
	if err != nil {
		// Mid-stream failure: part of the body is on the wire. Terminate
		// the chunked response with the error in a trailer instead of
		// leaving a silently truncated document.
		w.Header().Set(StreamErrorTrailer, err.Error())
		root.SetAttr("outcome", "error")
		root.End()
		return
	}
	w.Header().Set(StreamCompleteTrailer, "true")
	w.Header().Set(StreamErrorsTrailer, strconv.Itoa(len(res.Errors)))
	root.SetAttr("outcome", "ok")
	root.End()
}

// streamEager serves /query/stream barrier-free: the body starts as the
// first extraction window closes, so the instance counts are not known
// until the body ends — they ride in the trailers alongside the
// completion signal. QueryToStream re-checks the verdict internally and
// falls back to the barrier if the catalog mutated since the header
// decision; the bytes are identical either way, and the counts are
// written from the returned result regardless.
func (s *Server) streamEager(ctx context.Context, root *obs.Span, w http.ResponseWriter, query string, format instance.Format) {
	w.Header().Set("Content-Type", contentTypeFor(format))
	w.Header().Set(StreamModeHeader, StreamModeEager)
	w.Header().Set("Trailer", strings.Join([]string{
		StreamCompleteTrailer, StreamErrorsTrailer, StreamErrorTrailer,
		StreamMatchedHeader, StreamRelatedHeader,
	}, ", "))

	fw := &flushWriter{w: w}
	if f, ok := w.(http.Flusher); ok {
		fw.f = f
	}
	cw := &countingWriter{w: fw}
	res, _, err := s.mw.QueryToStream(ctx, cw, query, format)
	if err != nil {
		root.SetAttr("outcome", "error")
		root.End()
		if cw.n == 0 {
			// Pre-body failure (extraction refused): the response is
			// still uncommitted, so undo the streaming headers and fail
			// with a regular status.
			w.Header().Del("Trailer")
			w.Header().Del(StreamModeHeader)
			w.Header().Del("Content-Type")
			httpError(w, http.StatusBadRequest, err)
			return
		}
		w.Header().Set(StreamErrorTrailer, err.Error())
		return
	}
	w.Header().Set(StreamCompleteTrailer, "true")
	w.Header().Set(StreamErrorsTrailer, strconv.Itoa(len(res.Errors)))
	w.Header().Set(StreamMatchedHeader, strconv.Itoa(len(res.Matched)))
	w.Header().Set(StreamRelatedHeader, strconv.Itoa(len(res.Related)))
	root.SetAttr("outcome", "ok")
	root.End()
}

// QueryStream runs an S2SQL query against the endpoint's streaming
// route, copying the serialized body to w as it arrives. After the
// body, the response trailers are checked: a missing completion
// trailer (server died mid-stream, connection cut) or an explicit
// error trailer turns into an error, so a truncated document is never
// mistaken for an answer. The bytes already copied to w stay there —
// the caller decides whether partial output is salvageable.
func (c *Client) QueryStream(ctx context.Context, query, format string, w io.Writer) (*StreamResult, error) {
	v := url.Values{"q": {query}}
	if format != "" {
		v.Set("format", format)
	}
	path := "/query/stream?" + v.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, fmt.Errorf("transport: building request: %w", err)
	}
	if span := obs.SpanFromContext(ctx); span != nil {
		req.Header.Set(TraceIDHeader, span.TraceID)
		req.Header.Set(SpanIDHeader, span.ID)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("transport: calling GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeResponse(resp, http.MethodGet, "/query/stream", nil)
	}

	out := &StreamResult{Mode: resp.Header.Get(StreamModeHeader)}
	if out.Mode == "" {
		out.Mode = StreamModeBarrier
	}
	out.Matched, _ = strconv.Atoi(resp.Header.Get(StreamMatchedHeader))
	out.Related, _ = strconv.Atoi(resp.Header.Get(StreamRelatedHeader))

	// Copy the body through as it arrives; trailers are populated only
	// once the body reaches EOF.
	out.Bytes, err = io.Copy(w, resp.Body)
	if err != nil {
		return out, fmt.Errorf("transport: streaming body: %w", err)
	}
	if msg := resp.Trailer.Get(StreamErrorTrailer); msg != "" {
		return out, fmt.Errorf("transport: stream failed mid-body after %d bytes: %s", out.Bytes, msg)
	}
	if resp.Trailer.Get(StreamCompleteTrailer) != "true" {
		return out, fmt.Errorf("transport: stream truncated after %d bytes: no completion trailer", out.Bytes)
	}
	out.SourceErrors, _ = strconv.Atoi(resp.Trailer.Get(StreamErrorsTrailer))
	if out.Mode == StreamModeEager {
		// Barrier-free bodies start before generation finishes, so the
		// counts arrive with the trailers.
		out.Matched, _ = strconv.Atoi(resp.Trailer.Get(StreamMatchedHeader))
		out.Related, _ = strconv.Atoi(resp.Trailer.Get(StreamRelatedHeader))
	}
	return out, nil
}
