package transport

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/obs"
)

// Client talks to a remote S2S middleware endpoint.
type Client struct {
	base string
	http *http.Client
}

// NewClient builds a client for the endpoint base URL, e.g.
// "http://localhost:8080". A nil httpClient uses a client with
// DefaultClientTimeout.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: DefaultClientTimeout}
	}
	return &Client{base: strings.TrimRight(base, "/"), http: httpClient}
}

// DefaultClientTimeout bounds client calls.
const DefaultClientTimeout = 30 * time.Second

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var reader io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("transport: encoding request: %w", err)
		}
		reader = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, reader)
	if err != nil {
		return fmt.Errorf("transport: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Forward the caller's trace identity so the remote middleware joins
	// this trace instead of starting its own.
	if span := obs.SpanFromContext(ctx); span != nil {
		req.Header.Set(TraceIDHeader, span.TraceID)
		req.Header.Set(SpanIDHeader, span.ID)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("transport: calling %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err == nil && e.Error != "" {
			return fmt.Errorf("transport: %s %s: %s (status %d)", method, path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("transport: %s %s: status %s", method, path, resp.Status)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("transport: decoding response: %w", err)
		}
	}
	return nil
}

// Query runs an S2SQL query remotely.
func (c *Client) Query(ctx context.Context, query, format string) (*QueryResponse, error) {
	var out QueryResponse
	if err := c.do(ctx, http.MethodPost, "/query", QueryRequest{Query: query, Format: format}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// QueryTraced runs an S2SQL query remotely and asks the server for its
// span tree. When ctx carries an active local span, the returned server
// subtree is grafted under it, so the federated query reads as one
// connected trace (the server joined the local trace ID via the
// forwarded headers).
func (c *Client) QueryTraced(ctx context.Context, query, format string) (*QueryResponse, error) {
	var out QueryResponse
	if err := c.do(ctx, http.MethodPost, "/query", QueryRequest{Query: query, Format: format, Trace: true}, &out); err != nil {
		return nil, err
	}
	obs.SpanFromContext(ctx).Adopt(out.Trace)
	return &out, nil
}

// QueryGet runs a query via the GET form.
func (c *Client) QueryGet(ctx context.Context, query, format string) (*QueryResponse, error) {
	v := url.Values{"q": {query}}
	if format != "" {
		v.Set("format", format)
	}
	var out QueryResponse
	if err := c.do(ctx, http.MethodGet, "/query?"+v.Encode(), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RegisterSource registers a data source remotely.
func (c *Client) RegisterSource(ctx context.Context, ws WireSource) error {
	return c.do(ctx, http.MethodPost, "/sources", ws, nil)
}

// RegisterMapping registers a mapping entry remotely.
func (c *Client) RegisterMapping(ctx context.Context, wm WireMapping) error {
	return c.do(ctx, http.MethodPost, "/mappings", wm, nil)
}

// Sources lists the remote source definitions.
func (c *Client) Sources(ctx context.Context) ([]WireSource, error) {
	var out []WireSource
	if err := c.do(ctx, http.MethodGet, "/sources", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Mappings lists the remote mapping entries.
func (c *Client) Mappings(ctx context.Context) ([]WireMapping, error) {
	var out []WireMapping
	if err := c.do(ctx, http.MethodGet, "/mappings", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Ontology fetches the remote ontology as an OWL document.
func (c *Client) Ontology(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/ontology", nil)
	if err != nil {
		return "", fmt.Errorf("transport: building request: %w", err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", fmt.Errorf("transport: fetching ontology: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("transport: fetching ontology: status %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("transport: reading ontology: %w", err)
	}
	return string(body), nil
}

// SPARQL runs a semantic-processing request against the endpoint.
func (c *Client) SPARQL(ctx context.Context, req SPARQLRequest) (*SPARQLResponse, error) {
	var out SPARQLResponse
	if err := c.do(ctx, http.MethodPost, "/sparql", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health probes the endpoint.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}
