package transport

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// Client talks to a remote S2S middleware endpoint. Idempotent GET
// requests are retried on transport errors and retriable statuses (429,
// 502, 503, 504), honoring the server's Retry-After when present —
// pairing with the server's load shedding so a briefly saturated
// endpoint sheds instead of failing its callers.
type Client struct {
	base string
	http *http.Client

	retries   int
	retryBase time.Duration
}

// NewClient builds a client for the endpoint base URL, e.g.
// "http://localhost:8080". A nil httpClient uses a client with
// DefaultClientTimeout. GETs retry up to DefaultGetRetries times;
// SetRetries changes that.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: DefaultClientTimeout}
	}
	return &Client{
		base:      strings.TrimRight(base, "/"),
		http:      httpClient,
		retries:   DefaultGetRetries,
		retryBase: DefaultRetryBase,
	}
}

// Defaults for the client's retry behavior.
const (
	// DefaultClientTimeout bounds client calls.
	DefaultClientTimeout = 30 * time.Second
	// DefaultGetRetries is how many times an idempotent GET is retried
	// after a transport error or retriable status.
	DefaultGetRetries = 2
	// DefaultRetryBase is the first retry delay (doubled per attempt),
	// used when the server sends no Retry-After.
	DefaultRetryBase = 100 * time.Millisecond
)

// SetRetries configures how many times idempotent GETs are retried
// (0 disables retrying).
func (c *Client) SetRetries(n int) { c.retries = n }

// retriableStatus reports statuses worth retrying an idempotent request
// for: rate limiting and transient upstream failures.
func retriableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// retryDelay picks the wait before retry attempt (0-based): the server's
// Retry-After if it sent one, else the doubling base delay.
func (c *Client) retryDelay(resp *http.Response, attempt int) time.Duration {
	if resp != nil {
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(strings.TrimSpace(ra)); err == nil && secs >= 0 {
				return time.Duration(secs) * time.Second
			}
		}
	}
	return c.retryBase << attempt
}

// sleepCtx waits d or until ctx is done; it reports whether the full
// wait elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var data []byte
	if body != nil {
		var err error
		data, err = json.Marshal(body)
		if err != nil {
			return fmt.Errorf("transport: encoding request: %w", err)
		}
	}
	// Only idempotent GETs are retried: replaying a POST could register a
	// source twice or double-run a mutation.
	attempts := 1
	if method == http.MethodGet {
		attempts += c.retries
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		var reader io.Reader
		if body != nil {
			reader = bytes.NewReader(data)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, reader)
		if err != nil {
			return fmt.Errorf("transport: building request: %w", err)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		// Forward the caller's trace identity so the remote middleware joins
		// this trace instead of starting its own.
		if span := obs.SpanFromContext(ctx); span != nil {
			req.Header.Set(TraceIDHeader, span.TraceID)
			req.Header.Set(SpanIDHeader, span.ID)
		}
		resp, err := c.http.Do(req)
		if err != nil {
			lastErr = fmt.Errorf("transport: calling %s %s: %w", method, path, err)
			if attempt < attempts-1 && ctx.Err() == nil && sleepCtx(ctx, c.retryDelay(nil, attempt)) {
				continue
			}
			return lastErr
		}
		if retriableStatus(resp.StatusCode) && attempt < attempts-1 {
			delay := c.retryDelay(resp, attempt)
			//lint:ignore errcheck best-effort drain so the connection can be reused; the status is the error being handled
			io.Copy(io.Discard, resp.Body)
			//lint:ignore errcheck close of a drained body before retry; the status is the error being handled
			resp.Body.Close()
			lastErr = fmt.Errorf("transport: %s %s: status %s", method, path, resp.Status)
			if sleepCtx(ctx, delay) {
				continue
			}
			return lastErr
		}
		err = decodeResponse(resp, method, path, out)
		//lint:ignore errcheck decodeResponse already consumed the body; its error takes precedence
		resp.Body.Close()
		return err
	}
	return lastErr
}

// decodeResponse turns one HTTP exchange into the call's result.
func decodeResponse(resp *http.Response, method, path string, out any) error {
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err == nil && e.Error != "" {
			return fmt.Errorf("transport: %s %s: %s (status %d)", method, path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("transport: %s %s: status %s", method, path, resp.Status)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("transport: decoding response: %w", err)
		}
	}
	return nil
}

// Query runs an S2SQL query remotely.
func (c *Client) Query(ctx context.Context, query, format string) (*QueryResponse, error) {
	var out QueryResponse
	if err := c.do(ctx, http.MethodPost, "/query", QueryRequest{Query: query, Format: format}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// QueryTraced runs an S2SQL query remotely and asks the server for its
// span tree. When ctx carries an active local span, the returned server
// subtree is grafted under it, so the federated query reads as one
// connected trace (the server joined the local trace ID via the
// forwarded headers).
func (c *Client) QueryTraced(ctx context.Context, query, format string) (*QueryResponse, error) {
	var out QueryResponse
	if err := c.do(ctx, http.MethodPost, "/query", QueryRequest{Query: query, Format: format, Trace: true}, &out); err != nil {
		return nil, err
	}
	obs.SpanFromContext(ctx).Adopt(out.Trace)
	return &out, nil
}

// QueryGet runs a query via the GET form.
func (c *Client) QueryGet(ctx context.Context, query, format string) (*QueryResponse, error) {
	v := url.Values{"q": {query}}
	if format != "" {
		v.Set("format", format)
	}
	var out QueryResponse
	if err := c.do(ctx, http.MethodGet, "/query?"+v.Encode(), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RegisterSource registers a data source remotely.
func (c *Client) RegisterSource(ctx context.Context, ws WireSource) error {
	return c.do(ctx, http.MethodPost, "/sources", ws, nil)
}

// RegisterMapping registers a mapping entry remotely.
func (c *Client) RegisterMapping(ctx context.Context, wm WireMapping) error {
	return c.do(ctx, http.MethodPost, "/mappings", wm, nil)
}

// Sources lists the remote source definitions.
func (c *Client) Sources(ctx context.Context) ([]WireSource, error) {
	var out []WireSource
	if err := c.do(ctx, http.MethodGet, "/sources", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Mappings lists the remote mapping entries.
func (c *Client) Mappings(ctx context.Context) ([]WireMapping, error) {
	var out []WireMapping
	if err := c.do(ctx, http.MethodGet, "/mappings", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Ontology fetches the remote ontology as an OWL document.
func (c *Client) Ontology(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/ontology", nil)
	if err != nil {
		return "", fmt.Errorf("transport: building request: %w", err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", fmt.Errorf("transport: fetching ontology: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("transport: fetching ontology: status %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("transport: reading ontology: %w", err)
	}
	return string(body), nil
}

// SPARQL runs a semantic-processing request against the endpoint.
func (c *Client) SPARQL(ctx context.Context, req SPARQLRequest) (*SPARQLResponse, error) {
	var out SPARQLResponse
	if err := c.do(ctx, http.MethodPost, "/sparql", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health probes the endpoint.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}
