package transport

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datasource"
	"repro/internal/extract"
	"repro/internal/instance"
	"repro/internal/mapping"
	"repro/internal/ontology"
	"repro/internal/workload"
)

func testServer(t *testing.T) (*httptest.Server, *core.Middleware, *workload.World) {
	t.Helper()
	world := workload.MustGenerate(workload.Spec{
		DBSources: 1, XMLSources: 1, WebSources: 1, TextSources: 1,
		RecordsPerSource: 10, Seed: 21,
	})
	mw, err := core.NewWithCatalog(world.Ontology, world.Catalog, extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := world.Apply(mw); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(mw))
	t.Cleanup(srv.Close)
	return srv, mw, world
}

func TestQueryOverHTTP(t *testing.T) {
	srv, _, world := testServer(t)
	client := NewClient(srv.URL, nil)
	ctx := context.Background()

	if err := client.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}
	resp, err := client.Query(ctx, "SELECT product WHERE brand='Seiko'", "json")
	if err != nil {
		t.Fatal(err)
	}
	want := world.CountMatching(func(r workload.Record) bool { return r.Brand == "Seiko" })
	if resp.Matched != want {
		t.Errorf("matched = %d, want %d", resp.Matched, want)
	}
	if !strings.Contains(resp.Body, "Seiko") {
		t.Errorf("body missing data: %.200s", resp.Body)
	}
	// GET form agrees.
	got, err := client.QueryGet(ctx, "SELECT product WHERE brand='Seiko'", "json")
	if err != nil {
		t.Fatal(err)
	}
	if got.Matched != resp.Matched {
		t.Errorf("GET/POST disagree: %d vs %d", got.Matched, resp.Matched)
	}
	// Default format is OWL.
	owlResp, err := client.Query(ctx, "SELECT provider", "")
	if err != nil {
		t.Fatal(err)
	}
	if owlResp.Format != "owl" || !strings.Contains(owlResp.Body, "<rdf:RDF") {
		t.Errorf("default format = %s", owlResp.Format)
	}
}

func TestQueryErrorsOverHTTP(t *testing.T) {
	srv, _, _ := testServer(t)
	client := NewClient(srv.URL, nil)
	ctx := context.Background()
	if _, err := client.Query(ctx, "", "json"); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := client.Query(ctx, "SELECT nosuch", "json"); err == nil {
		t.Error("unknown class accepted")
	}
	if _, err := client.Query(ctx, "SELECT product", "yaml"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestRemoteRegistration(t *testing.T) {
	world := workload.MustGenerate(workload.Spec{XMLSources: 1, RecordsPerSource: 2, Seed: 22})
	mw, err := core.NewWithCatalog(world.Ontology, world.Catalog, extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(mw))
	defer srv.Close()
	client := NewClient(srv.URL, nil)
	ctx := context.Background()

	// Register the world's sources and mappings through the API.
	for _, def := range world.Definitions {
		if err := client.RegisterSource(ctx, FromDefinition(def)); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range world.Entries {
		if err := client.RegisterMapping(ctx, FromEntry(e)); err != nil {
			t.Fatal(err)
		}
	}
	sources, err := client.Sources(ctx)
	if err != nil || len(sources) != 1 {
		t.Fatalf("sources = %v, %v", sources, err)
	}
	mappings, err := client.Mappings(ctx)
	if err != nil || len(mappings) != 6 {
		t.Fatalf("mappings = %d, %v", len(mappings), err)
	}
	resp, err := client.Query(ctx, "SELECT product", "text")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Matched != 2 {
		t.Errorf("matched = %d", resp.Matched)
	}
	// Duplicate registration conflicts.
	if err := client.RegisterSource(ctx, FromDefinition(world.Definitions[0])); err == nil {
		t.Error("duplicate source accepted")
	}
}

func TestOntologyEndpoint(t *testing.T) {
	srv, _, _ := testServer(t)
	client := NewClient(srv.URL, nil)
	doc, err := client.Ontology(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ont, err := ontology.ReadOWL(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("remote ontology unparseable: %v", err)
	}
	if _, ok := ont.Attribute("thing.product.brand"); !ok {
		t.Error("remote ontology lost attributes")
	}
}

func TestStatsEndpoint(t *testing.T) {
	srv, _, _ := testServer(t)
	client := NewClient(srv.URL, nil)
	ctx := context.Background()
	if _, err := client.Query(ctx, "SELECT product", "json"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %s", resp.Status)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, _, world := testServer(t)
	want := world.CountMatching(func(r workload.Record) bool { return r.Brand == "Casio" })
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := NewClient(srv.URL, nil)
			resp, err := client.Query(context.Background(), "SELECT product WHERE brand='Casio'", "json")
			if err != nil {
				errs <- err
				return
			}
			if resp.Matched != want {
				errs <- &matchError{got: resp.Matched, want: want}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

type matchError struct{ got, want int }

func (e *matchError) Error() string {
	return "matched mismatch"
}

func TestSourceHealthEndpoint(t *testing.T) {
	world := workload.MustGenerate(workload.Spec{XMLSources: 1, RecordsPerSource: 2, Seed: 23})
	mw, err := core.New(core.Config{
		Ontology: world.Ontology,
		Backends: extract.FromCatalog(world.Catalog),
		Extract:  extract.Options{Breaker: extract.BreakerOptions{Threshold: 1, Cooldown: time.Hour}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := world.Apply(mw); err != nil {
		t.Fatal(err)
	}
	// A dead source that opens its circuit after one query.
	if err := mw.RegisterSource(datasource.Definition{ID: "dead", Kind: datasource.KindWeb, URL: "http://dead.example/x"}); err != nil {
		t.Fatal(err)
	}
	if err := mw.RegisterMapping(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "dead",
		Rule: mapping.Rule{Code: `var brand = Text(GetURL("http://dead.example/x"))`},
	}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(mw))
	defer srv.Close()
	client := NewClient(srv.URL, nil)
	if _, err := client.Query(context.Background(), "SELECT product", "json"); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/health/sources")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if len(health) != 1 || health[0]["source"] != "dead" || health[0]["open"] != true {
		t.Fatalf("health = %v", health)
	}
}

func TestSPARQLEndpoint(t *testing.T) {
	srv, _, world := testServer(t)
	client := NewClient(srv.URL, nil)
	ctx := context.Background()

	// Without reasoning: instances carry only their concrete type.
	const productTypes = `PREFIX ont: <http://s2s.uma.pt/watch#> SELECT ?x WHERE { ?x a ont:product . }`
	raw, err := client.SPARQL(ctx, SPARQLRequest{SPARQL: productTypes})
	if err != nil {
		t.Fatal(err)
	}
	if len(raw.Bindings) != 0 {
		t.Fatalf("raw bindings = %d, want 0 (watches typed ont:watch only)", len(raw.Bindings))
	}

	// With reasoning: every watch is entailed to be a product.
	inferred, err := client.SPARQL(ctx, SPARQLRequest{SPARQL: productTypes, Reason: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(inferred.Bindings) != len(world.Records) {
		t.Fatalf("inferred bindings = %d, want %d", len(inferred.Bindings), len(world.Records))
	}

	// Scoped by an S2SQL pre-query plus a FILTER.
	scoped, err := client.SPARQL(ctx, SPARQLRequest{
		S2SQL: "SELECT product WHERE brand='Seiko'",
		SPARQL: `PREFIX ont: <http://s2s.uma.pt/watch#> SELECT ?x ?b WHERE {
			?x ont:thing_product_brand ?b . FILTER (?b = "Seiko") }`,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := world.CountMatching(func(r workload.Record) bool { return r.Brand == "Seiko" })
	if len(scoped.Bindings) != want {
		t.Fatalf("scoped bindings = %d, want %d", len(scoped.Bindings), want)
	}

	// Errors surface.
	if _, err := client.SPARQL(ctx, SPARQLRequest{SPARQL: ""}); err == nil {
		t.Error("empty sparql accepted")
	}
	if _, err := client.SPARQL(ctx, SPARQLRequest{SPARQL: "not sparql"}); err == nil {
		t.Error("bad sparql accepted")
	}
	if _, err := client.SPARQL(ctx, SPARQLRequest{S2SQL: "SELECT nosuch", SPARQL: productTypes}); err == nil {
		t.Error("bad s2sql accepted")
	}
}

func TestHTTPFetcherAgainstRemoteSource(t *testing.T) {
	// A remote web shop served over real HTTP.
	shop := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/watches.html" {
			http.NotFound(w, r)
			return
		}
		_, _ = w.Write([]byte(`<html><body><p><b>Seiko Men's Automatic Dive Watch</b></p></body></html>`))
	}))
	defer shop.Close()

	ont := ontology.Paper()
	mw, err := core.New(core.Config{
		Ontology: ont,
		Backends: extract.Backends{Pages: &HTTPFetcher{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	url := shop.URL + "/watches.html"
	if err := mw.RegisterSource(datasource.Definition{ID: "remote_shop", Kind: datasource.KindWeb, URL: url}); err != nil {
		t.Fatal(err)
	}
	rule := `
var P = GetURL("` + url + `")
var St = Str_Search(Text(P), "<p><b>" + "[0-9a-zA-Z']+")
var spliter = Str_Split(St[0][0], "<>")
var brand = Select(spliter[2], 0, 6)
`
	if err := mw.RegisterMapping(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "remote_shop",
		Rule: mapping.Rule{Code: rule}, Scenario: mapping.SingleRecord,
	}); err != nil {
		t.Fatal(err)
	}
	res, err := mw.Query(context.Background(), "SELECT product WHERE brand='Seiko'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) > 0 {
		t.Fatalf("errors: %v", res.Errors)
	}
	if len(res.Matched) != 1 {
		t.Fatalf("matched = %d", len(res.Matched))
	}
}

func TestHTTPFetcherErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusForbidden)
	}))
	defer srv.Close()
	f := &HTTPFetcher{}
	if _, err := f.Fetch(srv.URL); err == nil {
		t.Error("non-200 fetched")
	}
	if _, err := f.Fetch("http://127.0.0.1:1/nothing"); err == nil {
		t.Error("unreachable host fetched")
	}
}

func TestWireConversions(t *testing.T) {
	def := datasource.Definition{ID: "d", Kind: datasource.KindDatabase, DSN: "x"}
	back, err := FromDefinition(def).ToDefinition()
	if err != nil || back.ID != def.ID || back.Kind != def.Kind || back.DSN != def.DSN {
		t.Errorf("definition round trip: %+v, %v", back, err)
	}
	if _, err := (WireSource{ID: "a", Kind: "sqlite"}).ToDefinition(); err == nil {
		t.Error("unknown kind converted")
	}
	e := mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "s",
		Rule:     mapping.Rule{Language: mapping.LangXPath, Code: "//b", Column: "c"},
		Scenario: mapping.SingleRecord,
	}
	back2, err := FromEntry(e).ToEntry()
	if err != nil || back2 != e {
		t.Errorf("entry round trip: %+v, %v", back2, err)
	}
	if _, err := (WireMapping{Scenario: "sometimes"}).ToEntry(); err == nil {
		t.Error("unknown scenario converted")
	}
	if _, err := (WireMapping{Language: "prolog"}).ToEntry(); err == nil {
		t.Error("unknown language converted")
	}
	_ = instance.FormatOWL // keep import for clarity of format names used above
}
