package transport

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/instance"
	"repro/internal/obs"
	"repro/internal/reason"
	"repro/internal/sparql"
)

// Server exposes a middleware over HTTP.
//
// Routes:
//
//	GET  /healthz        liveness probe
//	POST /query          QueryRequest → QueryResponse
//	GET  /query          ?q=...&format=... → QueryResponse
//	GET  /query/stream   ?q=...&format=... → raw serialized body, chunked,
//	                     completion signaled in trailers (see stream.go);
//	                     merge-free queries stream barrier-free (X-S2s-Stream-Mode)
//	POST /query/batch    BatchRequest → N results multiplexed over one
//	                     chunked body (see batch.go)
//	GET  /ontology       the ontology as an OWL (RDF/XML) document
//	GET  /sources        registered source definitions (JSON)
//	POST /sources        register a WireSource
//	GET  /mappings       registered mapping entries (JSON)
//	POST /mappings       register a WireMapping
//	GET  /stats          middleware statistics (JSON)
//	GET  /metrics        Prometheus text-format counters and histograms
//	GET  /trace/last     recent completed query span trees (JSON, ?n=)
//	POST /sparql         SPARQLRequest → SPARQLResponse (optionally reasoned)
//	GET  /health/sources per-source circuit breaker state (JSON)
//
// The query endpoint participates in distributed tracing: it joins a
// caller trace announced via the TraceIDHeader/SpanIDHeader request
// headers, echoes TraceIDHeader on the response, and returns its span
// tree in QueryResponse.Trace when the request asks for it.
type Server struct {
	mw  *core.Middleware
	mux *http.ServeMux

	// querySem, when non-nil, caps concurrent /query work; requests over
	// the cap are shed with 503 + Retry-After instead of queuing without
	// bound (a saturated integration endpoint that answers some callers
	// fast beats one that answers every caller too late).
	querySem       chan struct{}
	shedRetryAfter time.Duration
	// shedJitterSecs widens the advertised Retry-After by a random 0..N
	// extra seconds. A shed burst hits many clients in the same instant;
	// a fixed Retry-After would resynchronize them into a retry stampede
	// exactly that many seconds later, so each shed response draws its
	// own delay. shedRandIntn is the jitter seam (tests inject a
	// deterministic sequence); guarded by shedRandMu.
	shedJitterSecs int
	shedRandMu     sync.Mutex
	shedRandIntn   func(n int) int
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithMaxConcurrentQueries caps concurrent /query requests at n;
// requests beyond the cap get 503 with a Retry-After header. n <= 0
// leaves shedding off.
func WithMaxConcurrentQueries(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.querySem = make(chan struct{}, n)
		}
	}
}

// DefaultShedJitterSeconds is the default width of the random extension
// added to a shed response's Retry-After (0..N extra whole seconds).
const DefaultShedJitterSeconds = 2

// NewServer wraps a middleware in an HTTP handler.
func NewServer(mw *core.Middleware, opts ...ServerOption) *Server {
	s := &Server{mw: mw, mux: http.NewServeMux(), shedRetryAfter: time.Second,
		shedJitterSecs: DefaultShedJitterSeconds}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	s.shedRandIntn = rng.Intn
	for _, opt := range opts {
		opt(s)
	}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/query/stream", s.handleQueryStream)
	s.mux.HandleFunc("/query/batch", s.handleQueryBatch)
	s.mux.HandleFunc("/ontology", s.handleOntology)
	s.mux.HandleFunc("/sources", s.handleSources)
	s.mux.HandleFunc("/mappings", s.handleMappings)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/trace/last", s.handleTraceLast)
	s.mux.HandleFunc("/sparql", s.handleSPARQL)
	s.mux.HandleFunc("/health/sources", s.handleSourceHealth)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Middleware returns the middleware this server fronts (the cluster
// layer wraps a Server and drives the same middleware).
func (s *Server) Middleware() *core.Middleware { return s.mw }

// HealthStatus is the /healthz body: enough state for a cluster failure
// detector (or an external monitor) to tell "up" from "healthy". Status
// is "ok" when the server is fully serviceable and "degraded" when it
// is alive but impaired — source breakers open, or the concurrent-query
// semaphore at capacity (new queries would shed).
type HealthStatus struct {
	Status       string `json:"status"`
	Sources      int    `json:"sources"`
	BreakersOpen int    `json:"breakersOpen"`
	// ShedCapacity is the concurrent-query cap (0 = unlimited) and
	// ShedInFlight the slots currently held.
	ShedCapacity int `json:"shedCapacity"`
	ShedInFlight int `json:"shedInFlight"`
}

// Health snapshots the server's health. Safe to call concurrently.
func (s *Server) Health() HealthStatus {
	h := HealthStatus{Status: "ok"}
	for _, sh := range s.mw.SourceHealth() {
		h.Sources++
		if sh.Open {
			h.BreakersOpen++
		}
	}
	if s.querySem != nil {
		h.ShedCapacity = cap(s.querySem)
		h.ShedInFlight = len(s.querySem)
	}
	if h.BreakersOpen > 0 || (h.ShedCapacity > 0 && h.ShedInFlight >= h.ShedCapacity) {
		h.Status = "degraded"
	}
	return h
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, s.Health())
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	writeJSON(w, map[string]string{"error": err.Error()})
}

// writeJSON encodes v onto the response. Handlers funnel their replies
// through here so the deliberate discard below is the only one.
func writeJSON(w http.ResponseWriter, v any) {
	//lint:ignore errcheck a response-encode failure means the client hung up; the dead connection is the only place to report it
	_ = json.NewEncoder(w).Encode(v)
}

// acquireQuerySlot claims a concurrent-query slot, shedding the request
// with 503 + Retry-After when the server is at capacity. It reports
// whether the handler may proceed; a true return must be paired with
// releaseQuerySlot.
func (s *Server) acquireQuerySlot(w http.ResponseWriter) bool {
	if s.querySem == nil {
		return true
	}
	select {
	case s.querySem <- struct{}{}:
		return true
	default:
		s.mw.Metrics().Counter(obs.MetricQueryTotal, obs.Labels{"outcome": obs.OutcomeShed}).Inc()
		w.Header().Set("Retry-After", strconv.Itoa(s.shedRetryAfterSecs()))
		httpError(w, http.StatusServiceUnavailable,
			fmt.Errorf("transport: server at concurrent-query capacity, retry later"))
		return false
	}
}

// shedRetryAfterSecs draws the Retry-After value for one shed response:
// the base delay plus 0..shedJitterSecs extra whole seconds, so
// concurrent shed victims retry at spread-out times instead of in one
// synchronized wave.
func (s *Server) shedRetryAfterSecs() int {
	secs := int(s.shedRetryAfter / time.Second)
	if s.shedJitterSecs > 0 {
		s.shedRandMu.Lock()
		secs += s.shedRandIntn(s.shedJitterSecs + 1)
		s.shedRandMu.Unlock()
	}
	return secs
}

func (s *Server) releaseQuerySlot() {
	if s.querySem != nil {
		<-s.querySem
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !s.acquireQuerySlot(w) {
		return
	}
	defer s.releaseQuerySlot()
	var req QueryRequest
	switch r.Method {
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("transport: decoding request: %w", err))
			return
		}
	case http.MethodGet:
		req.Query = r.URL.Query().Get("q")
		req.Format = r.URL.Query().Get("format")
		switch r.URL.Query().Get("trace") {
		case "1", "true", "yes":
			req.Trace = true
		}
	default:
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("transport: %s not allowed", r.Method))
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("transport: empty query"))
		return
	}
	format := instance.FormatOWL
	if req.Format != "" {
		f, err := instance.ParseFormat(req.Format)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		format = f
	}

	// Join the caller's trace, if announced, and open the server-side
	// root span; the middleware's "query" span nests under it.
	ctx := obs.ContextWithMetrics(r.Context(), s.mw.Metrics())
	if tid := r.Header.Get(TraceIDHeader); tid != "" {
		ctx = obs.ContextWithRemote(ctx, obs.Remote{TraceID: tid, ParentID: r.Header.Get(SpanIDHeader)})
	}
	ctx, root := s.mw.Tracer().StartTrace(ctx, "http_query")
	w.Header().Set(TraceIDHeader, root.TraceID)

	res, err := s.mw.Query(ctx, req.Query)
	if err != nil {
		root.SetAttr("outcome", "error")
		root.End()
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var buf bytes.Buffer
	err = s.mw.Generator().SerializeContext(ctx, &buf, res, format)
	root.SetAttr("outcome", "ok")
	root.End()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	resp := QueryResponse{
		Query:   res.Plan.Query.String(),
		Format:  format.String(),
		Matched: len(res.Matched),
		Related: len(res.Related),
		Missing: res.Missing,
		Body:    buf.String(),
	}
	if req.Trace {
		resp.Trace = root
	}
	for _, e := range res.Errors {
		resp.Errors = append(resp.Errors, e.Error())
	}
	for _, d := range res.Degraded {
		resp.Degraded = append(resp.Degraded, d.String())
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, resp)
}

// handleMetrics exposes the middleware's metrics registry in the
// Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("transport: %s not allowed", r.Method))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	//lint:ignore errcheck a scrape-write failure means the scraper hung up; nothing to do but serve the next scrape
	_ = s.mw.Metrics().WritePrometheus(w)
}

// handleTraceLast returns the most recent completed query span trees as
// a JSON array, newest first (?n= bounds the count, default 1).
func (s *Server) handleTraceLast(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("transport: %s not allowed", r.Method))
		return
	}
	n := 1
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("transport: bad n %q", v))
			return
		}
		n = parsed
	}
	traces := s.mw.Tracer().Last(n)
	if traces == nil {
		traces = []*obs.Span{}
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, traces)
}

func (s *Server) handleOntology(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("transport: %s not allowed", r.Method))
		return
	}
	w.Header().Set("Content-Type", "application/rdf+xml")
	if err := s.mw.Ontology().WriteOWL(w); err != nil {
		httpError(w, http.StatusInternalServerError, err)
	}
}

func (s *Server) handleSources(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		defs := s.mw.Sources().All()
		out := make([]WireSource, len(defs))
		for i, d := range defs {
			out[i] = FromDefinition(d)
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, out)
	case http.MethodPost:
		var ws WireSource
		if err := json.NewDecoder(r.Body).Decode(&ws); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("transport: decoding source: %w", err))
			return
		}
		def, err := ws.ToDefinition()
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if err := s.mw.RegisterSource(def); err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		w.WriteHeader(http.StatusCreated)
	default:
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("transport: %s not allowed", r.Method))
	}
}

func (s *Server) handleMappings(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		entries := s.mw.Mappings().AllEntries()
		out := make([]WireMapping, len(entries))
		for i, e := range entries {
			out[i] = FromEntry(e)
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, out)
	case http.MethodPost:
		var wm WireMapping
		if err := json.NewDecoder(r.Body).Decode(&wm); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("transport: decoding mapping: %w", err))
			return
		}
		entry, err := wm.ToEntry()
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if err := s.mw.RegisterMapping(entry); err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		w.WriteHeader(http.StatusCreated)
	default:
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("transport: %s not allowed", r.Method))
	}
}

// handleSPARQL answers a semantic-processing request: it runs an S2SQL
// query to assemble ontology instances, optionally materializes the
// ontology's RDFS entailments over the result graph, and evaluates a SPARQL
// query against it — the downstream knowledge-processing path the paper's
// conclusion motivates, offered directly by the endpoint.
func (s *Server) handleSPARQL(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("transport: %s not allowed", r.Method))
		return
	}
	var req SPARQLRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("transport: decoding request: %w", err))
		return
	}
	if strings.TrimSpace(req.SPARQL) == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("transport: empty sparql query"))
		return
	}
	s2sqlQuery := req.S2SQL
	if strings.TrimSpace(s2sqlQuery) == "" {
		s2sqlQuery = "SELECT " + s.mw.Ontology().Root().Name
	}
	res, err := s.mw.Query(r.Context(), s2sqlQuery)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	graph, err := s.mw.Generator().ToGraph(res)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	if req.Reason {
		graph, err = reason.Materialize(s.mw.Ontology().ToGraph(), graph)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
	}
	out, err := sparql.Select(graph, req.SPARQL)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	resp := SPARQLResponse{Vars: out.Vars}
	for _, b := range out.Bindings {
		row := map[string]string{}
		for v, term := range b {
			row[v] = term.String()
		}
		resp.Bindings = append(resp.Bindings, row)
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, resp)
}

// handleSourceHealth reports per-source circuit breaker state, so a B2B
// operator can see which partners are failing without reading logs.
func (s *Server) handleSourceHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("transport: %s not allowed", r.Method))
		return
	}
	health := s.mw.SourceHealth()
	out := make([]map[string]any, 0, len(health))
	for _, h := range health {
		entry := map[string]any{
			"source":              h.SourceID,
			"consecutiveFailures": h.ConsecutiveFailures,
			"open":                h.Open,
			"probing":             h.Probing,
		}
		if h.Open {
			entry["retryAt"] = h.RetryAt.UTC().Format("2006-01-02T15:04:05Z07:00")
		}
		out = append(out, entry)
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("transport: %s not allowed", r.Method))
		return
	}
	stats := s.mw.Stats()
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, map[string]any{
		"queries":        stats.Queries,
		"instances":      stats.Instances,
		"sourceErrors":   stats.SourceErrors,
		"planTimeMs":     stats.PlanTime.Milliseconds(),
		"extractTimeMs":  stats.ExtractTime.Milliseconds(),
		"generateTimeMs": stats.GenerateTime.Milliseconds(),
	})
}
