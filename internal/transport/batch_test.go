package transport

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/instance"
	"repro/internal/workload"
)

// flatTestServer serves a world built on the relation-free paper
// ontology, so its queries prove merge-free and /query/stream answers
// them barrier-free.
func flatTestServer(t *testing.T, opts extract.Options) (*httptest.Server, *core.Middleware) {
	t.Helper()
	world := workload.MustGenerate(workload.Spec{
		DBSources: 1, XMLSources: 1, WebSources: 1, TextSources: 1,
		RecordsPerSource: 10, Seed: 21,
		FlatOntology: true,
	})
	mw, err := core.NewWithCatalog(world.Ontology, world.Catalog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := world.Apply(mw); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(mw))
	t.Cleanup(srv.Close)
	return srv, mw
}

// TestQueryBatchEndToEnd drives POST /query/batch over a real
// connection: every per-query body must be byte-identical to the
// single-query serialization of the same middleware, with the counts in
// the per-query trailer frames.
func TestQueryBatchEndToEnd(t *testing.T) {
	srv, mw, _ := testServer(t)
	client := NewClient(srv.URL, nil)
	ctx := context.Background()

	queries := []string{
		"SELECT product",
		"SELECT product WHERE brand='Seiko'",
		"SELECT provider",
	}
	for _, format := range []string{"json", "xml", "ntriples"} {
		results, err := client.QueryBatch(ctx, queries, format)
		if err != nil {
			t.Fatalf("QueryBatch(%s): %v", format, err)
		}
		if len(results) != len(queries) {
			t.Fatalf("%s: results = %d, want %d", format, len(results), len(queries))
		}
		f, err := instance.ParseFormat(format)
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range queries {
			if results[i].Err != nil {
				t.Fatalf("%s %q: %v", format, q, results[i].Err)
			}
			want, err := mw.QueryString(ctx, q, f)
			if err != nil {
				t.Fatal(err)
			}
			if string(results[i].Body) != want {
				t.Errorf("%s %q: batch body diverges from single-query serialization", format, q)
			}
			res, err := mw.Query(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			if results[i].Matched != len(res.Matched) || results[i].Related != len(res.Related) {
				t.Errorf("%s %q: counts = %d/%d, want %d/%d",
					format, q, results[i].Matched, results[i].Related, len(res.Matched), len(res.Related))
			}
		}
	}
}

// TestQueryBatchPartialFailure puts a malformed query between two good
// ones: the bad query must fail alone, with its parse error in its
// trailer frame and no body, while its siblings answer normally.
func TestQueryBatchPartialFailure(t *testing.T) {
	srv, _, _ := testServer(t)
	client := NewClient(srv.URL, nil)

	queries := []string{"SELECT product", "SELEC nonsense", "SELECT provider"}
	results, err := client.QueryBatch(context.Background(), queries, "json")
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("good queries failed: %v / %v", results[0].Err, results[2].Err)
	}
	if results[0].Matched == 0 || len(results[0].Body) == 0 {
		t.Error("first query returned no instances")
	}
	if results[1].Err == nil {
		t.Fatal("malformed query did not fail")
	}
	if len(results[1].Body) != 0 {
		t.Errorf("failed query has %d body bytes, want 0", len(results[1].Body))
	}
}

// TestQueryBatchRejectsBadRequests covers the whole-exchange failures:
// empty batch, oversized batch, wrong method, bad format.
func TestQueryBatchRejectsBadRequests(t *testing.T) {
	srv, _, _ := testServer(t)
	client := NewClient(srv.URL, nil)
	ctx := context.Background()

	if _, err := client.QueryBatch(ctx, nil, "json"); err == nil || !strings.Contains(err.Error(), "empty batch") {
		t.Errorf("empty batch: err = %v", err)
	}
	big := make([]string, MaxBatchQueries+1)
	for i := range big {
		big[i] = "SELECT product"
	}
	if _, err := client.QueryBatch(ctx, big, "json"); err == nil || !strings.Contains(err.Error(), "exceeds the limit") {
		t.Errorf("oversized batch: err = %v", err)
	}
	if _, err := client.QueryBatch(ctx, []string{"SELECT product"}, "no-such-format"); err == nil {
		t.Error("bad format accepted")
	}
	resp, err := http.Get(srv.URL + "/query/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query/batch = %d, want 405", resp.StatusCode)
	}
}
