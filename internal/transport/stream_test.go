package transport

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/faultinject"
	"repro/internal/instance"
	"repro/internal/workload"
)

// TestQueryStreamEndToEnd drives GET /query/stream over a real HTTP
// connection: the streamed body must be byte-identical to the
// middleware's local serialization, the instance counts must arrive in
// pre-body headers, and the completion trailer must be present.
func TestQueryStreamEndToEnd(t *testing.T) {
	srv, mw, _ := testServer(t)
	client := NewClient(srv.URL, nil)
	ctx := context.Background()

	for _, format := range []string{"json", "ntriples", "text"} {
		f, err := instance.ParseFormat(format)
		if err != nil {
			t.Fatal(err)
		}
		want, err := mw.QueryString(ctx, "SELECT product", f)
		if err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		res, err := client.QueryStream(ctx, "SELECT product", format, &got)
		if err != nil {
			t.Fatalf("QueryStream(%s): %v", format, err)
		}
		if got.String() != want {
			t.Errorf("%s: streamed body diverges from local serialization", format)
		}
		if res.Bytes != int64(got.Len()) {
			t.Errorf("%s: res.Bytes = %d, want %d", format, res.Bytes, got.Len())
		}
		if res.Matched == 0 {
			t.Errorf("%s: matched header reported 0 instances", format)
		}
	}
}

// TestQueryStreamEagerMode serves a flat-ontology world whose queries
// prove merge-free: JSON and XML stream barrier-free (mode header
// "eager", counts in trailers) while the counts-first and whole-graph
// formats keep the barrier — and every body stays byte-identical to the
// local serialization.
func TestQueryStreamEagerMode(t *testing.T) {
	srv, mw := flatTestServer(t, extract.Options{Streaming: true, StreamBatchRecords: 4})
	client := NewClient(srv.URL, nil)
	ctx := context.Background()

	wantRes, err := mw.Query(ctx, "SELECT product")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ format, wantMode string }{
		{"json", StreamModeEager},
		{"xml", StreamModeEager},
		{"text", StreamModeBarrier},
		{"owl", StreamModeBarrier},
		{"ntriples", StreamModeBarrier},
	} {
		f, err := instance.ParseFormat(tc.format)
		if err != nil {
			t.Fatal(err)
		}
		want, err := mw.QueryString(ctx, "SELECT product", f)
		if err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		res, err := client.QueryStream(ctx, "SELECT product", tc.format, &got)
		if err != nil {
			t.Fatalf("QueryStream(%s): %v", tc.format, err)
		}
		if res.Mode != tc.wantMode {
			t.Errorf("%s: mode = %q, want %q", tc.format, res.Mode, tc.wantMode)
		}
		if got.String() != want {
			t.Errorf("%s: streamed body diverges from local serialization", tc.format)
		}
		if res.Matched != len(wantRes.Matched) {
			t.Errorf("%s: matched = %d, want %d", tc.format, res.Matched, len(wantRes.Matched))
		}
	}
}

// TestQueryStreamEagerDisabled pins the rollback knob: with
// DisableEagerStream set, a merge-free JSON stream falls back to the
// barrier (and says so in the mode header).
func TestQueryStreamEagerDisabled(t *testing.T) {
	srv, _ := flatTestServer(t, extract.Options{Streaming: true, DisableEagerStream: true})
	client := NewClient(srv.URL, nil)
	var got bytes.Buffer
	res, err := client.QueryStream(context.Background(), "SELECT product", "json", &got)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != StreamModeBarrier {
		t.Errorf("mode = %q, want %q with eager disabled", res.Mode, StreamModeBarrier)
	}
}

// TestQueryStreamRelationQueryStaysBarrier: on the full paper ontology
// (relations present) the proof declines, so even JSON keeps the
// barrier.
func TestQueryStreamRelationQueryStaysBarrier(t *testing.T) {
	srv, _, _ := testServer(t)
	client := NewClient(srv.URL, nil)
	var got bytes.Buffer
	res, err := client.QueryStream(context.Background(), "SELECT product", "json", &got)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != StreamModeBarrier {
		t.Errorf("mode = %q, want %q for a relation-bearing ontology", res.Mode, StreamModeBarrier)
	}
}

// TestQueryStreamEmptyBodyTrailers is the zero-instance regression: an
// NTriples result with no instances serializes to zero body bytes, and
// an uncommitted zero-byte response would be sent with Content-Length: 0
// — net/http then drops the announced trailers and the client misreads
// a complete stream as truncated. The server commits the chunked
// framing before serializing, so the completion and error-count
// trailers survive an empty body.
func TestQueryStreamEmptyBodyTrailers(t *testing.T) {
	spec := workload.Spec{XMLSources: 1, WebSources: 1, RecordsPerSource: 8, Seed: 71}
	target := chaosTarget(t, spec, "web_000")
	srv := streamChaosServer(t, spec,
		faultinject.Plan{target: {Permanent: true}},
		extract.Options{Retries: 2, RetryBackoff: -1})

	client := NewClient(srv.URL, nil)
	var got bytes.Buffer
	res, err := client.QueryStream(context.Background(), "SELECT product WHERE brand = 'NoSuchBrand'", "ntriples", &got)
	if err != nil {
		t.Fatalf("zero-instance stream must still complete: %v", err)
	}
	if got.Len() != 0 {
		t.Errorf("body = %d bytes, want 0 (no instances, no NTriples envelope)", got.Len())
	}
	if res.Matched != 0 {
		t.Errorf("matched = %d, want 0", res.Matched)
	}
	if res.SourceErrors == 0 {
		t.Error("killed source's errors missing from the trailer count despite the empty body")
	}
}

// TestQueryStreamBadQuery checks that pre-body failures still travel as
// ordinary HTTP errors, not trailers.
func TestQueryStreamBadQuery(t *testing.T) {
	srv, _, _ := testServer(t)
	client := NewClient(srv.URL, nil)
	var sink bytes.Buffer
	_, err := client.QueryStream(context.Background(), "SELECT no_such_class", "json", &sink)
	if err == nil {
		t.Fatal("unknown class should fail")
	}
	if sink.Len() != 0 {
		t.Errorf("failed query wrote %d body bytes, want 0", sink.Len())
	}
}

// TestQueryStreamTruncationDetected simulates a server dying mid-body:
// the body ends cleanly at the HTTP layer but the completion trailer
// never arrives, and the client must report truncation instead of
// returning the short document as an answer.
func TestQueryStreamTruncationDetected(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Trailer", StreamCompleteTrailer+", "+StreamErrorsTrailer+", "+StreamErrorTrailer)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"query": "SELECT product", "matched": [`)
		// Dies here: no more body, no trailers.
	}))
	defer srv.Close()

	client := NewClient(srv.URL, nil)
	var got bytes.Buffer
	_, err := client.QueryStream(context.Background(), "SELECT product", "json", &got)
	if err == nil {
		t.Fatal("truncated stream must surface an error")
	}
	if !strings.Contains(err.Error(), "stream truncated") {
		t.Errorf("error = %v, want a stream-truncated error", err)
	}
	if got.Len() == 0 {
		t.Error("partial body should still have been copied to the writer")
	}
}

// TestQueryStreamConnectionReset kills the server connection after the
// pre-body headers but before the first body chunk — a hard reset, not
// a trailer-signalled truncation. The client's body copy fails
// mid-read, and that must surface as a streaming error, never as an
// empty successful stream.
func TestQueryStreamConnectionReset(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Trailer", StreamCompleteTrailer+", "+StreamErrorsTrailer+", "+StreamErrorTrailer)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(StreamMatchedHeader, "5")
		w.WriteHeader(http.StatusOK)
		w.(http.Flusher).Flush() // status + headers reach the client
		// Die before the first chunk: hijack the connection and slam it
		// shut, so the client sees a reset instead of clean trailers.
		conn, _, err := w.(http.Hijacker).Hijack()
		if err != nil {
			t.Errorf("hijack: %v", err)
			return
		}
		conn.Close()
	}))
	defer srv.Close()

	client := NewClient(srv.URL, nil)
	var got bytes.Buffer
	res, err := client.QueryStream(context.Background(), "SELECT product", "json", &got)
	if err == nil {
		t.Fatal("connection reset before the first chunk must surface an error")
	}
	if !strings.Contains(err.Error(), "streaming body") {
		t.Errorf("error = %v, want a streaming-body copy error", err)
	}
	if res == nil || res.Matched != 5 {
		t.Errorf("result = %+v, want the pre-body headers decoded (matched=5)", res)
	}
	if got.Len() != 0 {
		t.Errorf("writer got %d bytes, want 0 (server died before the first chunk)", got.Len())
	}
}

// TestQueryStreamMidStreamErrorTrailer simulates a serialization
// failure after part of the body went out: the server terminates the
// chunked response with the error in a trailer, and the client
// surfaces that message.
func TestQueryStreamMidStreamErrorTrailer(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Trailer", StreamCompleteTrailer+", "+StreamErrorsTrailer+", "+StreamErrorTrailer)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"query": "SELECT product", "matched": [`)
		w.Header().Set(StreamErrorTrailer, "owl: predicate has no registered prefix")
	}))
	defer srv.Close()

	client := NewClient(srv.URL, nil)
	var got bytes.Buffer
	_, err := client.QueryStream(context.Background(), "SELECT product", "json", &got)
	if err == nil {
		t.Fatal("mid-stream error trailer must surface an error")
	}
	if !strings.Contains(err.Error(), "stream failed mid-body") ||
		!strings.Contains(err.Error(), "no registered prefix") {
		t.Errorf("error = %v, want the mid-body failure with the server's message", err)
	}
}

// streamChaosServer builds a middleware whose backends run through a
// fault injector, served over HTTP.
func streamChaosServer(t *testing.T, spec workload.Spec, plan faultinject.Plan, opts extract.Options) *httptest.Server {
	t.Helper()
	world := workload.MustGenerate(spec)
	inj := faultinject.New(1337, plan)
	mw, err := core.New(core.Config{
		Ontology: world.Ontology,
		Backends: inj.WrapBackends(extract.FromCatalog(world.Catalog)),
		Extract:  opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := world.Apply(mw); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(mw))
	t.Cleanup(srv.Close)
	return srv
}

// chaosTarget resolves a generated source ID to its injector target.
func chaosTarget(t *testing.T, spec workload.Spec, sourceID string) string {
	t.Helper()
	probe := workload.MustGenerate(spec)
	for _, def := range probe.Definitions {
		if def.ID == sourceID {
			return faultinject.Key(def)
		}
	}
	t.Fatalf("no definition for source %s", sourceID)
	return ""
}

// TestQueryStreamChaosFailThenRecover injects a fail-twice-then-recover
// fault under a retry budget that absorbs it: the stream must complete
// with zero source errors — mid-extraction transients never truncate
// the response.
func TestQueryStreamChaosFailThenRecover(t *testing.T) {
	spec := workload.Spec{XMLSources: 1, WebSources: 1, RecordsPerSource: 8, Seed: 71}
	target := chaosTarget(t, spec, "web_000")
	srv := streamChaosServer(t, spec,
		faultinject.Plan{target: {FailFirst: 2}},
		extract.Options{Retries: 3, RetryBackoff: -1})

	client := NewClient(srv.URL, nil)
	var got bytes.Buffer
	res, err := client.QueryStream(context.Background(), "SELECT product", "json", &got)
	if err != nil {
		t.Fatalf("retries should have absorbed the transient fault: %v", err)
	}
	if res.SourceErrors != 0 {
		t.Errorf("SourceErrors = %d, want 0 after recovery", res.SourceErrors)
	}
	if res.Matched == 0 {
		t.Error("recovered stream matched no instances")
	}
}

// TestQueryStreamChaosSourceErrorInTrailer kills one source outright:
// the stream still completes (the healthy replica answers) and the
// extraction failure is reported as data — an error count in the
// trailer, detail in the body — never as a truncated response.
func TestQueryStreamChaosSourceErrorInTrailer(t *testing.T) {
	spec := workload.Spec{XMLSources: 1, WebSources: 1, RecordsPerSource: 8, Seed: 71}
	target := chaosTarget(t, spec, "web_000")
	srv := streamChaosServer(t, spec,
		faultinject.Plan{target: {Permanent: true}},
		extract.Options{Retries: 2, RetryBackoff: -1})

	client := NewClient(srv.URL, nil)
	var got bytes.Buffer
	res, err := client.QueryStream(context.Background(), "SELECT product", "json", &got)
	if err != nil {
		t.Fatalf("a dead replica must not fail the stream: %v", err)
	}
	if res.SourceErrors == 0 {
		t.Error("killed source's errors missing from the trailer count")
	}
	if !strings.Contains(got.String(), `"errors"`) {
		t.Error("JSON body should carry the error detail")
	}
	if res.Matched == 0 {
		t.Error("healthy source matched no instances")
	}
}
