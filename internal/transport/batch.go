package transport

// batch.go is the multi-query surface: POST /query/batch answers N
// S2SQL queries in one exchange, sharing one per-run document layer,
// one plan-cache pass, and one extraction scatter on the server
// (core.Middleware.QueryBatchTo), and streams the N serialized results
// back as one chunked response multiplexed in the instance.MuxWriter
// line framing — per-query bodies in chunk frames, per-query counts and
// errors in trailer frames, whole-response completion in an HTTP
// trailer. Each query's body bytes are identical to what the
// single-query endpoints produce.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/instance"
	"repro/internal/obs"
)

// BatchContentType is the media type of the multiplexed batch response
// body.
const BatchContentType = "application/vnd.s2s-batch"

// MaxBatchQueries bounds one batch request; a larger batch is refused
// rather than letting a single exchange monopolize the server.
const MaxBatchQueries = 64

// BatchRequest is the POST /query/batch body.
type BatchRequest struct {
	// Queries are the S2SQL queries, answered in order.
	Queries []string `json:"queries"`
	// Format names the serialization format for every result (one of
	// instance.ParseFormat's names; empty means OWL, as elsewhere).
	Format string `json:"format,omitempty"`
}

// Per-query trailer-frame keys of the batch wire format.
const (
	batchKeyMatched = "matched"
	batchKeyRelated = "related"
	batchKeyErrors  = "errors"
	batchKeyError   = "error"
)

// handleQueryBatch answers POST /query/batch. The response is always
// 200 once the batch is accepted: per-query failures ride in their
// trailer frames (a batch is N independent queries — one malformed
// query must not poison its siblings' results).
func (s *Server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("transport: %s not allowed", r.Method))
		return
	}
	if !s.acquireQuerySlot(w) {
		return
	}
	defer s.releaseQuerySlot()

	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("transport: decoding request: %w", err))
		return
	}
	if len(req.Queries) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("transport: empty batch"))
		return
	}
	if len(req.Queries) > MaxBatchQueries {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("transport: batch of %d queries exceeds the limit of %d", len(req.Queries), MaxBatchQueries))
		return
	}
	format := instance.FormatOWL
	if req.Format != "" {
		f, err := instance.ParseFormat(req.Format)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		format = f
	}

	ctx := obs.ContextWithMetrics(r.Context(), s.mw.Metrics())
	if tid := r.Header.Get(TraceIDHeader); tid != "" {
		ctx = obs.ContextWithRemote(ctx, obs.Remote{TraceID: tid, ParentID: r.Header.Get(SpanIDHeader)})
	}
	ctx, root := s.mw.Tracer().StartTrace(ctx, "http_query_batch")
	root.SetAttr("queries", strconv.Itoa(len(req.Queries)))
	w.Header().Set(TraceIDHeader, root.TraceID)
	w.Header().Set("Content-Type", BatchContentType)
	w.Header().Set("Trailer", StreamCompleteTrailer)

	fw := &flushWriter{w: w}
	if f, ok := w.(http.Flusher); ok {
		fw.f = f
	}
	mux := instance.NewMuxWriter(fw)
	if err := mux.Header(len(req.Queries)); err != nil {
		root.SetAttr("outcome", "error")
		root.End()
		return
	}

	_, errs := s.mw.QueryBatchTo(ctx, req.Queries, func(i int, res *instance.Result) error {
		if err := mux.Begin(i); err != nil {
			return err
		}
		if _, err := s.mw.Generator().SerializeChunkedContext(ctx, mux.Stream(i), res, format, 0); err != nil {
			return err
		}
		return mux.Trailer(i, map[string]string{
			batchKeyMatched: strconv.Itoa(len(res.Matched)),
			batchKeyRelated: strconv.Itoa(len(res.Related)),
			batchKeyErrors:  strconv.Itoa(len(res.Errors)),
		})
	})

	outcome := "ok"
	for i, err := range errs {
		if err == nil {
			continue
		}
		outcome = "partial"
		if terr := mux.Trailer(i, map[string]string{batchKeyError: err.Error()}); terr != nil {
			// The connection itself failed: nothing more can be framed,
			// and the missing completion trailer tells the client.
			root.SetAttr("outcome", "error")
			root.End()
			return
		}
	}
	w.Header().Set(StreamCompleteTrailer, "true")
	root.SetAttr("outcome", outcome)
	root.End()
}

// BatchResult is one query's slice of a batch response on the client.
type BatchResult struct {
	// Body is the query's serialized result document; empty when the
	// query failed before serialization.
	Body []byte
	// Matched, Related, and SourceErrors are the query's result counts.
	Matched      int
	Related      int
	SourceErrors int
	// Err is the query's server-side failure, nil on success.
	Err error
}

// QueryBatch submits N queries as one POST /query/batch exchange and
// demultiplexes the response into per-query results, aligned with
// queries. The returned error covers the exchange itself (transport
// failure, refused batch, truncated response); per-query failures are
// in each BatchResult.Err.
func (c *Client) QueryBatch(ctx context.Context, queries []string, format string) ([]BatchResult, error) {
	data, err := json.Marshal(BatchRequest{Queries: queries, Format: format})
	if err != nil {
		return nil, fmt.Errorf("transport: encoding request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/query/batch", bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("transport: building request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if span := obs.SpanFromContext(ctx); span != nil {
		req.Header.Set(TraceIDHeader, span.TraceID)
		req.Header.Set(SpanIDHeader, span.ID)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("transport: calling POST /query/batch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeResponse(resp, http.MethodPost, "/query/batch", nil)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, BatchContentType) {
		return nil, fmt.Errorf("transport: unexpected batch content type %q", ct)
	}

	parts, err := instance.DemuxBatch(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("transport: demultiplexing batch response: %w", err)
	}
	if resp.Trailer.Get(StreamCompleteTrailer) != "true" {
		return nil, fmt.Errorf("transport: batch response truncated: no completion trailer")
	}
	if len(parts) != len(queries) {
		return nil, fmt.Errorf("transport: batch response frames %d queries, want %d", len(parts), len(queries))
	}
	out := make([]BatchResult, len(parts))
	for i, p := range parts {
		out[i] = BatchResult{Body: p.Body}
		if msg, ok := p.Trailer[batchKeyError]; ok {
			out[i].Err = errors.New(msg)
			continue
		}
		out[i].Matched, _ = strconv.Atoi(p.Trailer[batchKeyMatched])
		out[i].Related, _ = strconv.Atoi(p.Trailer[batchKeyRelated])
		out[i].SourceErrors, _ = strconv.Atoi(p.Trailer[batchKeyErrors])
	}
	return out, nil
}
