package ontology

import (
	"strings"

	"repro/internal/rdf"
)

// Class is a node in the ontology hierarchy. Fields other than Name are
// managed by the owning Ontology.
type Class struct {
	// Name is the class name, unique within the ontology.
	Name string
	// Label is an optional human-readable label.
	Label string
	// Parent is the superclass; nil only for the root.
	Parent *Class
	// Children are the direct subclasses.
	Children []*Class
	// Attributes are the datatype attributes declared directly on this
	// class (not inherited).
	Attributes []*Attribute
	// Relations are the object relations declared directly on this class.
	Relations []*Relation

	ontology *Ontology

	// path is the precomputed dotted path, set at AddClass time — the
	// parent never changes afterwards. It stays empty on hand-built Class
	// literals, where Path falls back to recomputing (and must not cache:
	// a lazy write would race with concurrent readers).
	path string
}

// Path returns the dotted path from the root to this class, e.g.
// "thing.product.watch" (paper Figure 4).
func (c *Class) Path() string {
	if c.path != "" {
		return c.path
	}
	if c.Parent == nil {
		return c.Name
	}
	return c.Parent.Path() + "." + c.Name
}

// Ancestors returns the chain from this class's parent up to the root.
func (c *Class) Ancestors() []*Class {
	var out []*Class
	for p := c.Parent; p != nil; p = p.Parent {
		out = append(out, p)
	}
	return out
}

// Descendants returns every class below this one, depth-first.
func (c *Class) Descendants() []*Class {
	var out []*Class
	for _, child := range c.Children {
		out = append(out, child)
		out = append(out, child.Descendants()...)
	}
	return out
}

// IsA reports whether c is other or a descendant of other.
func (c *Class) IsA(other *Class) bool {
	for cur := c; cur != nil; cur = cur.Parent {
		if cur == other {
			return true
		}
	}
	return false
}

// Scope returns the classes whose attributes are visible from a query on
// this class: the class itself, its ancestors (inherited attributes), its
// descendants (a query on "product" may constrain "case", which only
// watches carry — paper §2.5), and classes directly related from any of
// those.
func (c *Class) Scope() []*Class {
	var out []*Class
	seen := make(map[*Class]bool)
	add := func(cls *Class) {
		if !seen[cls] {
			seen[cls] = true
			out = append(out, cls)
		}
	}
	add(c)
	for _, a := range c.Ancestors() {
		add(a)
	}
	for _, d := range c.Descendants() {
		add(d)
	}
	// One hop across relations from everything gathered so far.
	base := make([]*Class, len(out))
	copy(base, out)
	for _, cls := range base {
		for _, r := range cls.Relations {
			add(r.To)
		}
	}
	return out
}

// AllAttributes returns the attributes declared on this class and all of
// its ancestors, in declaration order from root downward.
func (c *Class) AllAttributes() []*Attribute {
	chain := c.Ancestors()
	var out []*Attribute
	for i := len(chain) - 1; i >= 0; i-- {
		out = append(out, chain[i].Attributes...)
	}
	return append(out, c.Attributes...)
}

// Attribute is a datatype property of a class, e.g. the brand of a product.
type Attribute struct {
	// Name is the simple attribute name; it may repeat across classes.
	Name string
	// Class is the class the attribute is declared on.
	Class *Class
	// Datatype is the XSD datatype of the attribute's values.
	Datatype rdf.IRI
	// Required marks attributes the instance generator treats as mandatory
	// when validating assembled instances.
	Required bool

	// id is the precomputed dotted identifier, set at AddAttribute time
	// (see Class.path for why it is not lazily cached).
	id string
}

// ID returns the attribute's unique dotted identifier, e.g.
// "thing.product.brand" — the class path plus the attribute name (paper
// §2.3.1 step 1, Figure 4). The ID both disambiguates repeated names and
// records the hierarchy used to instantiate the ontology.
func (a *Attribute) ID() string {
	if a.id != "" {
		return a.id
	}
	return a.Class.Path() + "." + a.Name
}

// String returns the attribute ID.
func (a *Attribute) String() string { return a.ID() }

// Relation is an object property linking two classes, e.g. every product
// has a provider (paper Figure 2).
type Relation struct {
	// Name is the relation name, unique among the relations of From.
	Name string
	// From is the source class.
	From *Class
	// To is the target class.
	To *Class
}

// String returns a compact from—name→to description.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString(r.From.Name)
	b.WriteByte('.')
	b.WriteString(r.Name)
	b.WriteString("->")
	b.WriteString(r.To.Name)
	return b.String()
}
