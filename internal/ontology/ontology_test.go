package ontology

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
)

func TestPaperOntologyShape(t *testing.T) {
	o := Paper()
	if err := o.Validate(); err != nil {
		t.Fatalf("paper ontology invalid: %v", err)
	}
	if o.Root().Name != "thing" {
		t.Errorf("root = %q, want thing", o.Root().Name)
	}
	watch, ok := o.Class("watch")
	if !ok {
		t.Fatal("watch class missing")
	}
	if got := watch.Path(); got != "thing.product.watch" {
		t.Errorf("watch path = %q, want thing.product.watch", got)
	}
	// Paper Figure 4 / §2.3.1: the mapping examples use these exact IDs.
	for _, id := range []string{"thing.product.brand", "thing.product.watch.case", "thing.provider.name"} {
		if _, ok := o.Attribute(id); !ok {
			t.Errorf("attribute %q missing", id)
		}
	}
}

func TestClassHierarchyNavigation(t *testing.T) {
	o := Paper()
	product, _ := o.Class("product")
	watch, _ := o.Class("watch")
	thing, _ := o.Class("thing")
	provider, _ := o.Class("provider")

	if !watch.IsA(product) || !watch.IsA(thing) || !watch.IsA(watch) {
		t.Error("IsA chain broken for watch")
	}
	if product.IsA(watch) {
		t.Error("product reported as a watch")
	}
	anc := watch.Ancestors()
	if len(anc) != 2 || anc[0] != product || anc[1] != thing {
		t.Errorf("watch ancestors = %v", anc)
	}
	desc := thing.Descendants()
	if len(desc) != 3 {
		t.Errorf("thing descendants = %d, want 3", len(desc))
	}
	if got := len(provider.Descendants()); got != 0 {
		t.Errorf("provider descendants = %d, want 0", got)
	}
}

func TestAllAttributesIncludesInherited(t *testing.T) {
	o := Paper()
	watch, _ := o.Class("watch")
	all := watch.AllAttributes()
	var ids []string
	for _, a := range all {
		ids = append(ids, a.ID())
	}
	joined := strings.Join(ids, " ")
	for _, want := range []string{"thing.product.brand", "thing.product.watch.case"} {
		if !strings.Contains(joined, want) {
			t.Errorf("AllAttributes missing %s: %v", want, ids)
		}
	}
	// Inherited attributes come before declared ones.
	if !strings.Contains(joined, "brand") || strings.Index(joined, "brand") > strings.Index(joined, "case") {
		t.Errorf("inherited attribute order wrong: %v", ids)
	}
}

func TestScopeCoversQueryVisibleClasses(t *testing.T) {
	o := Paper()
	product, _ := o.Class("product")
	scope := product.Scope()
	names := make(map[string]bool)
	for _, c := range scope {
		names[c.Name] = true
	}
	// Paper §2.5: a query on product sees product, its subclass watch, its
	// superclass thing, and the related provider.
	for _, want := range []string{"product", "watch", "thing", "provider"} {
		if !names[want] {
			t.Errorf("scope of product missing %s: %v", want, names)
		}
	}
}

func TestResolveAttributeName(t *testing.T) {
	o := Paper()
	tests := []struct {
		class, attr string
		wantID      string
		wantErr     bool
	}{
		{"product", "brand", "thing.product.brand", false},
		{"product", "case", "thing.product.watch.case", false}, // subclass attribute, paper §2.5
		{"watch", "brand", "thing.product.brand", false},       // inherited
		{"product", "name", "thing.provider.name", false},      // via relation
		{"product", "serial", "", true},                        // undefined
		{"nosuch", "brand", "", true},                          // unknown class
	}
	for _, tt := range tests {
		a, err := o.ResolveAttributeName(tt.class, tt.attr)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ResolveAttributeName(%s, %s) succeeded, want error", tt.class, tt.attr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ResolveAttributeName(%s, %s): %v", tt.class, tt.attr, err)
			continue
		}
		if a.ID() != tt.wantID {
			t.Errorf("ResolveAttributeName(%s, %s) = %s, want %s", tt.class, tt.attr, a.ID(), tt.wantID)
		}
	}
}

func TestResolveAttributeNameAmbiguous(t *testing.T) {
	o := MustNew("http://e/#", "amb", "thing")
	if _, err := o.AddClass("a", "thing"); err != nil {
		t.Fatal(err)
	}
	if _, err := o.AddClass("b", "thing"); err != nil {
		t.Fatal(err)
	}
	if _, err := o.AddAttribute("a", "name", rdf.XSDString); err != nil {
		t.Fatal(err)
	}
	if _, err := o.AddAttribute("b", "name", rdf.XSDString); err != nil {
		t.Fatal(err)
	}
	_, err := o.ResolveAttributeName("thing", "name")
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("expected ambiguity error, got %v", err)
	}
	// From within one branch the name resolves.
	if a, err := o.ResolveAttributeName("a", "name"); err != nil || a.ID() != "thing.a.name" {
		t.Fatalf("ResolveAttributeName(a, name) = %v, %v", a, err)
	}
}

func TestAddClassErrors(t *testing.T) {
	o := Paper()
	if _, err := o.AddClass("watch", "thing"); err == nil {
		t.Error("duplicate class accepted")
	}
	if _, err := o.AddClass("Watch", "thing"); err == nil {
		t.Error("case-colliding class accepted")
	}
	if _, err := o.AddClass("gadget", "nosuch"); err == nil {
		t.Error("unknown parent accepted")
	}
	if _, err := o.AddClass("bad name", "thing"); err == nil {
		t.Error("invalid name accepted")
	}
	if _, err := o.AddClass("", "thing"); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := o.AddClass("9lives", "thing"); err == nil {
		t.Error("name starting with digit accepted")
	}
}

func TestAddAttributeErrors(t *testing.T) {
	o := Paper()
	if _, err := o.AddAttribute("product", "brand", rdf.XSDString); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if _, err := o.AddAttribute("nosuch", "x", rdf.XSDString); err == nil {
		t.Error("attribute on unknown class accepted")
	}
	// Same name on a different class is fine (paper: names may repeat).
	if _, err := o.AddAttribute("provider", "brand", rdf.XSDString); err != nil {
		t.Errorf("repeated name across classes rejected: %v", err)
	}
	// Default datatype is xsd:string.
	a, err := o.AddAttribute("provider", "motto", "")
	if err != nil || a.Datatype != rdf.XSDString {
		t.Errorf("default datatype = %v, %v", a, err)
	}
}

func TestAddRelationErrors(t *testing.T) {
	o := Paper()
	if _, err := o.AddRelation("product", "hasProvider", "provider"); err == nil {
		t.Error("duplicate relation accepted")
	}
	if _, err := o.AddRelation("nosuch", "r", "provider"); err == nil {
		t.Error("relation from unknown class accepted")
	}
	if _, err := o.AddRelation("product", "r", "nosuch"); err == nil {
		t.Error("relation to unknown class accepted")
	}
}

func TestClassLookupCaseInsensitive(t *testing.T) {
	o := Paper()
	for _, name := range []string{"Product", "PRODUCT", "product"} {
		if _, ok := o.Class(name); !ok {
			t.Errorf("Class(%q) not found", name)
		}
	}
	if _, ok := o.Attribute("Thing.Product.BRAND"); !ok {
		t.Error("attribute lookup not case-insensitive")
	}
}

func TestOWLRoundTrip(t *testing.T) {
	o := Paper()
	var buf strings.Builder
	if err := o.WriteOWL(&buf); err != nil {
		t.Fatalf("WriteOWL: %v", err)
	}
	back, err := ReadOWL(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ReadOWL: %v\ndocument:\n%s", err, buf.String())
	}
	if !back.ToGraph().Equal(o.ToGraph()) {
		t.Fatalf("OWL round trip altered the ontology.\noriginal:\n%s\nreparsed:\n%s",
			rdf.NTriplesString(o.ToGraph()), rdf.NTriplesString(back.ToGraph()))
	}
	// Attribute IDs survive.
	for _, a := range o.Attributes() {
		if _, ok := back.Attribute(a.ID()); !ok {
			t.Errorf("attribute %s lost in round trip", a.ID())
		}
	}
}

func TestFromGraphErrors(t *testing.T) {
	t.Run("no classes", func(t *testing.T) {
		if _, err := FromGraph(rdf.NewGraph()); err == nil {
			t.Error("empty graph accepted")
		}
	})
	t.Run("two roots", func(t *testing.T) {
		g := rdf.NewGraph()
		g.MustAdd(rdf.T(rdf.IRI("http://e#a"), rdf.RDFType, rdf.IRI(rdf.OWLNS+"Class")))
		g.MustAdd(rdf.T(rdf.IRI("http://e#b"), rdf.RDFType, rdf.IRI(rdf.OWLNS+"Class")))
		if _, err := FromGraph(g); err == nil {
			t.Error("forest accepted")
		}
	})
	t.Run("subclass cycle", func(t *testing.T) {
		g := rdf.NewGraph()
		a, b, c := rdf.IRI("http://e#a"), rdf.IRI("http://e#b"), rdf.IRI("http://e#c")
		owlClass := rdf.IRI(rdf.OWLNS + "Class")
		for _, iri := range []rdf.IRI{a, b, c} {
			g.MustAdd(rdf.T(iri, rdf.RDFType, owlClass))
		}
		g.MustAdd(rdf.T(b, rdf.RDFSSubClassOf, c))
		g.MustAdd(rdf.T(c, rdf.RDFSSubClassOf, b))
		if _, err := FromGraph(g); err == nil {
			t.Error("cyclic hierarchy accepted")
		}
	})
	t.Run("attribute without domain", func(t *testing.T) {
		g := rdf.NewGraph()
		g.MustAdd(rdf.T(rdf.IRI("http://e#a"), rdf.RDFType, rdf.IRI(rdf.OWLNS+"Class")))
		g.MustAdd(rdf.T(rdf.IRI("http://e#p"), rdf.RDFType, rdf.IRI(rdf.OWLNS+"DatatypeProperty")))
		if _, err := FromGraph(g); err == nil {
			t.Error("attribute without domain accepted")
		}
	})
}

// Property: attribute IDs are unique and parseable back to their class for
// arbitrarily shaped ontologies.
func TestAttributeIDUniqueness(t *testing.T) {
	f := func(shape []uint8) bool {
		o := MustNew("http://e/#", "gen", "thing")
		classNames := []string{"thing"}
		for i, b := range shape {
			if len(classNames) > 12 {
				break
			}
			parent := classNames[int(b)%len(classNames)]
			name := fmt.Sprintf("c%d", i)
			if _, err := o.AddClass(name, parent); err != nil {
				return false
			}
			classNames = append(classNames, name)
			// Reuse the same attribute name on every class: IDs must still
			// be unique because paths differ.
			if _, err := o.AddAttribute(name, "name", rdf.XSDString); err != nil {
				return false
			}
		}
		seen := make(map[string]bool)
		for _, a := range o.Attributes() {
			if seen[a.ID()] {
				return false
			}
			seen[a.ID()] = true
			if !strings.HasSuffix(a.ID(), "."+a.Name) {
				return false
			}
			if !strings.HasPrefix(a.ID(), a.Class.Path()) {
				return false
			}
		}
		return o.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: OWL export/import is lossless for generated ontologies.
func TestOWLRoundTripProperty(t *testing.T) {
	f := func(shape []uint8) bool {
		o := MustNew("http://e/gen#", "gen", "thing")
		classNames := []string{"thing"}
		for i, b := range shape {
			if len(classNames) > 10 {
				break
			}
			parent := classNames[int(b)%len(classNames)]
			name := fmt.Sprintf("c%d", i)
			if _, err := o.AddClass(name, parent); err != nil {
				return false
			}
			classNames = append(classNames, name)
			if _, err := o.AddAttribute(name, fmt.Sprintf("a%d", int(b)%3), rdf.XSDInteger); err != nil {
				return false
			}
		}
		var buf strings.Builder
		if err := o.WriteOWL(&buf); err != nil {
			return false
		}
		back, err := ReadOWL(strings.NewReader(buf.String()))
		if err != nil {
			return false
		}
		return back.ToGraph().Equal(o.ToGraph())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRelationString(t *testing.T) {
	o := Paper()
	product, _ := o.Class("product")
	if got := product.Relations[0].String(); got != "product.hasProvider->provider" {
		t.Errorf("Relation.String() = %q", got)
	}
}

func TestAttributeIRIDistinct(t *testing.T) {
	o := Paper()
	// brand exists on product; add brand on provider and check IRIs differ.
	if _, err := o.AddAttribute("provider", "brand", rdf.XSDString); err != nil {
		t.Fatal(err)
	}
	a1, _ := o.Attribute("thing.product.brand")
	a2, _ := o.Attribute("thing.provider.brand")
	if o.AttributeIRI(a1) == o.AttributeIRI(a2) {
		t.Errorf("attribute IRIs collide: %s", o.AttributeIRI(a1))
	}
}
