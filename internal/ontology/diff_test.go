package ontology

import (
	"strings"
	"testing"

	"repro/internal/rdf"
)

func TestCompareIdentical(t *testing.T) {
	d := Compare(Paper(), Paper())
	if !d.Empty() {
		t.Fatalf("diff of identical ontologies: %s", d)
	}
	if d.String() != "no schema changes" {
		t.Errorf("String() = %q", d.String())
	}
}

func TestCompareAdditionsAndRemovals(t *testing.T) {
	old := Paper()
	next := Paper()
	mustClass(next, "strap", "thing")
	mustAttr(next, "strap", "material", rdf.XSDString)
	mustAttr(next, "provider", "vat_id", rdf.XSDString)
	mustRel(next, "watch", "hasStrap", "strap")

	d := Compare(old, next)
	if len(d.AddedClasses) != 1 || d.AddedClasses[0] != "thing.strap" {
		t.Errorf("added classes = %v", d.AddedClasses)
	}
	joined := strings.Join(d.AddedAttributes, " ")
	if !strings.Contains(joined, "thing.strap.material") || !strings.Contains(joined, "thing.provider.vat_id") {
		t.Errorf("added attributes = %v", d.AddedAttributes)
	}
	if len(d.AddedRelations) != 1 || !strings.Contains(d.AddedRelations[0], "hasstrap") {
		t.Errorf("added relations = %v", d.AddedRelations)
	}
	// Reverse direction: the same changes appear as removals.
	rd := Compare(next, old)
	if len(rd.RemovedClasses) != 1 || len(rd.RemovedAttributes) != 2 || len(rd.RemovedRelations) != 1 {
		t.Errorf("reverse diff = %+v", rd)
	}
}

func TestCompareMovedClassChangesAttributeIDs(t *testing.T) {
	old := Paper()
	// In the new version, watch hangs directly under thing.
	next := MustNew(PaperBase, "watch-catalog", "thing")
	mustClass(next, "product", "thing")
	mustClass(next, "watch", "thing") // moved
	mustAttr(next, "product", "brand", rdf.XSDString)
	mustAttr(next, "watch", "case", rdf.XSDString)

	d := Compare(old, next)
	if len(d.MovedClasses) != 1 || !strings.Contains(d.MovedClasses[0], "thing.product.watch -> thing.watch") {
		t.Errorf("moved = %v", d.MovedClasses)
	}
	// The watch attributes' IDs changed: old ID removed, new ID added.
	if !contains(d.RemovedAttributes, "thing.product.watch.case") {
		t.Errorf("removed attrs = %v", d.RemovedAttributes)
	}
	if !contains(d.AddedAttributes, "thing.watch.case") {
		t.Errorf("added attrs = %v", d.AddedAttributes)
	}
}

func TestCompareRetypedAttribute(t *testing.T) {
	old := Paper()
	next := Paper()
	a, _ := next.Attribute("thing.product.price")
	a.Datatype = rdf.XSDInteger

	d := Compare(old, next)
	if len(d.RetypedAttributes) != 1 || !strings.Contains(d.RetypedAttributes[0], "decimal -> integer") {
		t.Errorf("retyped = %v", d.RetypedAttributes)
	}
	if !strings.Contains(d.String(), "~attr") {
		t.Errorf("String() = %q", d.String())
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
