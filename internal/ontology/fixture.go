package ontology

import "repro/internal/rdf"

// PaperBase is the namespace of the paper's example domain.
const PaperBase rdf.IRI = "http://s2s.uma.pt/watch#"

// Paper builds the ontology of the paper's running example (Figure 2): a
// product hierarchy rooted at thing, with watch as a product subclass and a
// provider class every product relates to. The attribute set covers every
// attribute the paper's examples reference — thing.product.brand (Figures 3
// and 4, §2.3.1 step 3) and thing.product.watch.case (§2.3.1 step 3, §2.5) —
// plus the usual catalog fields.
func Paper() *Ontology {
	o := MustNew(PaperBase, "watch-catalog", "thing")
	mustClass(o, "product", "thing")
	mustClass(o, "watch", "product")
	mustClass(o, "provider", "thing")

	mustAttr(o, "product", "brand", rdf.XSDString)
	mustAttr(o, "product", "model", rdf.XSDString)
	mustAttr(o, "product", "price", rdf.XSDDecimal)

	mustAttr(o, "watch", "case", rdf.XSDString)
	mustAttr(o, "watch", "movement", rdf.XSDString)
	mustAttr(o, "watch", "water_resistance", rdf.XSDInteger)

	mustAttr(o, "provider", "name", rdf.XSDString)
	mustAttr(o, "provider", "country", rdf.XSDString)
	mustAttr(o, "provider", "rating", rdf.XSDDecimal)

	mustRel(o, "product", "hasProvider", "provider")
	return o
}

// PaperFlat builds the same class and attribute catalog as Paper but
// declares no relations. Its queries carry no linkable classes, so —
// absent class keys — the planner can prove them merge-free
// (docs/STREAMING.md, "Barrier-free emission"); the streaming fixtures
// and first-instance benchmarks use it as the canonical flat world.
func PaperFlat() *Ontology {
	o := MustNew(PaperBase, "watch-catalog", "thing")
	mustClass(o, "product", "thing")
	mustClass(o, "watch", "product")
	mustClass(o, "provider", "thing")

	mustAttr(o, "product", "brand", rdf.XSDString)
	mustAttr(o, "product", "model", rdf.XSDString)
	mustAttr(o, "product", "price", rdf.XSDDecimal)

	mustAttr(o, "watch", "case", rdf.XSDString)
	mustAttr(o, "watch", "movement", rdf.XSDString)
	mustAttr(o, "watch", "water_resistance", rdf.XSDInteger)

	mustAttr(o, "provider", "name", rdf.XSDString)
	mustAttr(o, "provider", "country", rdf.XSDString)
	mustAttr(o, "provider", "rating", rdf.XSDDecimal)
	return o
}

func mustClass(o *Ontology, name, parent string) *Class {
	c, err := o.AddClass(name, parent)
	if err != nil {
		panic(err)
	}
	return c
}

func mustAttr(o *Ontology, class, name string, dt rdf.IRI) *Attribute {
	a, err := o.AddAttribute(class, name, dt)
	if err != nil {
		panic(err)
	}
	return a
}

func mustRel(o *Ontology, from, name, to string) *Relation {
	r, err := o.AddRelation(from, name, to)
	if err != nil {
		panic(err)
	}
	return r
}
