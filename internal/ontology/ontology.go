// Package ontology implements the S2S middleware's ontology schema layer
// (paper §2.2, Figure 2).
//
// An Ontology conceptualizes a B2B domain as a tree of classes with
// datatype attributes and inter-class relations. It plays three roles in
// the middleware: it defines the structure and semantics of the data, it is
// the frame the Mapping Module intersects with data sources, and it defines
// the query specification process (S2SQL queries name ontology classes and
// attributes, never data sources).
//
// Every attribute carries a unique dotted identifier derived from the class
// hierarchy, e.g. "thing.product.brand" (paper Figure 4): attribute names
// may repeat across classes, the path never does, and the path preserves
// the hierarchy needed to instantiate the ontology with extracted data.
package ontology

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rdf"
)

// Ontology is a domain schema: a class hierarchy rooted at a single class,
// datatype attributes, and object relations. Construct with New; the zero
// value is not usable. Ontology is not safe for concurrent mutation; the
// middleware builds it once at registration time and reads it concurrently
// afterwards.
type Ontology struct {
	// Base is the namespace IRI under which classes, attributes, and
	// instances are minted, e.g. "http://example.org/watch#".
	Base rdf.IRI
	// Name is a human-readable ontology name.
	Name string

	root    *Class
	classes map[string]*Class // lower-cased class name → class
	attrs   map[string]*Attribute
}

// New creates an ontology whose hierarchy is rooted at a class named root
// (conventionally "thing", mirroring owl:Thing).
func New(base rdf.IRI, name, root string) (*Ontology, error) {
	if err := validName(root); err != nil {
		return nil, fmt.Errorf("ontology: root class: %w", err)
	}
	o := &Ontology{
		Base:    base,
		Name:    name,
		classes: make(map[string]*Class),
		attrs:   make(map[string]*Attribute),
	}
	o.root = &Class{Name: root, ontology: o, path: root}
	o.classes[strings.ToLower(root)] = o.root
	return o, nil
}

// MustNew is New but panics on error; for statically-known schemas.
func MustNew(base rdf.IRI, name, root string) *Ontology {
	o, err := New(base, name, root)
	if err != nil {
		panic(err)
	}
	return o
}

// Root returns the root class.
func (o *Ontology) Root() *Class { return o.root }

// Class looks up a class by name, case-insensitively (S2SQL is
// case-insensitive about class names, like SQL).
func (o *Ontology) Class(name string) (*Class, bool) {
	c, ok := o.classes[strings.ToLower(name)]
	return c, ok
}

// Classes returns every class in path order.
func (o *Ontology) Classes() []*Class {
	out := make([]*Class, 0, len(o.classes))
	for _, c := range o.classes {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path() < out[j].Path() })
	return out
}

// AddClass adds a class under the named parent and returns it.
func (o *Ontology) AddClass(name, parent string) (*Class, error) {
	if err := validName(name); err != nil {
		return nil, fmt.Errorf("ontology: class %q: %w", name, err)
	}
	if _, exists := o.classes[strings.ToLower(name)]; exists {
		return nil, fmt.Errorf("ontology: class %q already defined", name)
	}
	p, ok := o.Class(parent)
	if !ok {
		return nil, fmt.Errorf("ontology: parent class %q of %q not defined", parent, name)
	}
	c := &Class{Name: name, Parent: p, ontology: o, path: p.Path() + "." + name}
	p.Children = append(p.Children, c)
	o.classes[strings.ToLower(name)] = c
	return c, nil
}

// AddAttribute declares a datatype attribute on the named class and returns
// it. The attribute's unique ID is its class path plus the attribute name
// (paper §2.3.1 step 1).
func (o *Ontology) AddAttribute(class, name string, datatype rdf.IRI) (*Attribute, error) {
	if err := validName(name); err != nil {
		return nil, fmt.Errorf("ontology: attribute %q: %w", name, err)
	}
	c, ok := o.Class(class)
	if !ok {
		return nil, fmt.Errorf("ontology: class %q of attribute %q not defined", class, name)
	}
	for _, a := range c.Attributes {
		if strings.EqualFold(a.Name, name) {
			return nil, fmt.Errorf("ontology: attribute %q already defined on class %q", name, class)
		}
	}
	if datatype == "" {
		datatype = rdf.XSDString
	}
	a := &Attribute{Name: name, Class: c, Datatype: datatype, id: c.Path() + "." + name}
	c.Attributes = append(c.Attributes, a)
	o.attrs[strings.ToLower(a.ID())] = a
	return a, nil
}

// AddRelation declares an object relation from one class to another, e.g.
// product —hasProvider→ provider (paper Figure 2: "all products have a
// Provider").
func (o *Ontology) AddRelation(from, name, to string) (*Relation, error) {
	if err := validName(name); err != nil {
		return nil, fmt.Errorf("ontology: relation %q: %w", name, err)
	}
	f, ok := o.Class(from)
	if !ok {
		return nil, fmt.Errorf("ontology: source class %q of relation %q not defined", from, name)
	}
	t, ok := o.Class(to)
	if !ok {
		return nil, fmt.Errorf("ontology: target class %q of relation %q not defined", to, name)
	}
	for _, r := range f.Relations {
		if strings.EqualFold(r.Name, name) {
			return nil, fmt.Errorf("ontology: relation %q already defined on class %q", name, from)
		}
	}
	r := &Relation{Name: name, From: f, To: t}
	f.Relations = append(f.Relations, r)
	return r, nil
}

// Attribute resolves an attribute by its unique dotted ID, e.g.
// "thing.product.brand", case-insensitively.
func (o *Ontology) Attribute(id string) (*Attribute, bool) {
	a, ok := o.attrs[strings.ToLower(id)]
	return a, ok
}

// Attributes returns every attribute in ID order.
func (o *Ontology) Attributes() []*Attribute {
	out := make([]*Attribute, 0, len(o.attrs))
	for _, a := range o.attrs {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// ResolveAttributeName finds the attribute with the given simple name that
// is visible from the named class: declared on the class itself, inherited
// from an ancestor, declared on a descendant (a query for "product" may
// constrain the watch-only attribute "case", paper §2.5), or reachable on a
// directly related class. It returns an error if the name is undefined or
// ambiguous in that scope.
func (o *Ontology) ResolveAttributeName(class, name string) (*Attribute, error) {
	c, ok := o.Class(class)
	if !ok {
		return nil, fmt.Errorf("ontology: class %q not defined", class)
	}
	var matches []*Attribute
	seen := make(map[*Class]bool)
	consider := func(cls *Class) {
		if seen[cls] {
			return
		}
		seen[cls] = true
		for _, a := range cls.Attributes {
			if strings.EqualFold(a.Name, name) {
				matches = append(matches, a)
			}
		}
	}
	for _, cls := range c.Scope() {
		consider(cls)
	}
	switch len(matches) {
	case 0:
		return nil, fmt.Errorf("ontology: attribute %q is not visible from class %q", name, class)
	case 1:
		return matches[0], nil
	default:
		ids := make([]string, len(matches))
		for i, a := range matches {
			ids[i] = a.ID()
		}
		sort.Strings(ids)
		return nil, fmt.Errorf("ontology: attribute name %q is ambiguous from class %q: %s",
			name, class, strings.Join(ids, ", "))
	}
}

// ClassIRI returns the IRI minted for a class in this ontology.
func (o *Ontology) ClassIRI(c *Class) rdf.IRI { return o.Base + rdf.IRI(c.Name) }

// AttributeIRI returns the IRI minted for an attribute. The full dotted path
// keeps IRIs unique when attribute names repeat across classes.
func (o *Ontology) AttributeIRI(a *Attribute) rdf.IRI {
	return o.Base + rdf.IRI(strings.ReplaceAll(a.ID(), ".", "_"))
}

// RelationIRI returns the IRI minted for a relation.
func (o *Ontology) RelationIRI(r *Relation) rdf.IRI {
	return o.Base + rdf.IRI(r.From.Name+"_"+r.Name)
}

// Validate checks structural invariants: a single root, acyclic hierarchy,
// unique attribute IDs, and relations pointing at defined classes. A freshly
// built ontology always validates; Validate exists for ontologies
// reconstructed from OWL documents.
func (o *Ontology) Validate() error {
	if o.root == nil {
		return fmt.Errorf("ontology: no root class")
	}
	reachable := make(map[*Class]bool)
	var walk func(c *Class) error
	walk = func(c *Class) error {
		if reachable[c] {
			return fmt.Errorf("ontology: class %q reached twice; hierarchy is not a tree", c.Name)
		}
		reachable[c] = true
		for _, child := range c.Children {
			if child.Parent != c {
				return fmt.Errorf("ontology: class %q has inconsistent parent link", child.Name)
			}
			if err := walk(child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(o.root); err != nil {
		return err
	}
	for name, c := range o.classes {
		if !reachable[c] {
			return fmt.Errorf("ontology: class %q not reachable from root", name)
		}
		for _, r := range c.Relations {
			if _, ok := o.Class(r.To.Name); !ok {
				return fmt.Errorf("ontology: relation %q of %q targets undefined class %q", r.Name, c.Name, r.To.Name)
			}
		}
	}
	ids := make(map[string]bool, len(o.attrs))
	for _, a := range o.Attributes() {
		id := strings.ToLower(a.ID())
		if ids[id] {
			return fmt.Errorf("ontology: duplicate attribute ID %q", a.ID())
		}
		ids[id] = true
	}
	return nil
}

func validName(name string) error {
	if name == "" {
		return fmt.Errorf("name is empty")
	}
	for i, r := range name {
		letter := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_'
		digit := r >= '0' && r <= '9'
		if i == 0 && !letter {
			return fmt.Errorf("name %q must start with a letter or underscore", name)
		}
		if !letter && !digit && r != '-' {
			return fmt.Errorf("name %q contains invalid character %q", name, r)
		}
	}
	return nil
}
