package ontology

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/owl"
	"repro/internal/rdf"
)

// S2SNS is the namespace for the middleware's own annotation properties.
const S2SNS = "http://s2s.uma.pt/ns#"

// Annotation properties recorded alongside the standard OWL axioms so an
// exported ontology round-trips exactly.
const (
	annPath     rdf.IRI = S2SNS + "path"
	annName     rdf.IRI = S2SNS + "name"
	annRequired rdf.IRI = S2SNS + "required"
)

// ToGraph exports the ontology as OWL axioms in an RDF graph: classes as
// owl:Class with rdfs:subClassOf, attributes as owl:DatatypeProperty with
// rdfs:domain and rdfs:range, and relations as owl:ObjectProperty.
func (o *Ontology) ToGraph() *rdf.Graph {
	g := rdf.NewGraph()
	ont := rdf.IRI(strings.TrimRight(string(o.Base), "#/"))
	g.MustAdd(rdf.T(ont, rdf.RDFType, owl.Ontology))
	if o.Name != "" {
		g.MustAdd(rdf.T(ont, rdf.RDFSLabel, rdf.String(o.Name)))
	}
	for _, c := range o.Classes() {
		iri := o.ClassIRI(c)
		g.MustAdd(rdf.T(iri, rdf.RDFType, owl.Class))
		g.MustAdd(rdf.T(iri, annName, rdf.String(c.Name)))
		if c.Label != "" {
			g.MustAdd(rdf.T(iri, rdf.RDFSLabel, rdf.String(c.Label)))
		}
		if c.Parent != nil {
			g.MustAdd(rdf.T(iri, rdf.RDFSSubClassOf, o.ClassIRI(c.Parent)))
		}
		for _, a := range c.Attributes {
			ai := o.AttributeIRI(a)
			g.MustAdd(rdf.T(ai, rdf.RDFType, owl.DatatypeProperty))
			g.MustAdd(rdf.T(ai, rdf.RDFSDomain, iri))
			g.MustAdd(rdf.T(ai, rdf.RDFSRange, a.Datatype))
			g.MustAdd(rdf.T(ai, annName, rdf.String(a.Name)))
			g.MustAdd(rdf.T(ai, annPath, rdf.String(a.ID())))
			if a.Required {
				g.MustAdd(rdf.T(ai, annRequired, rdf.Bool(true)))
			}
		}
		for _, r := range c.Relations {
			ri := o.RelationIRI(r)
			g.MustAdd(rdf.T(ri, rdf.RDFType, owl.ObjectProperty))
			g.MustAdd(rdf.T(ri, rdf.RDFSDomain, iri))
			g.MustAdd(rdf.T(ri, rdf.RDFSRange, o.ClassIRI(r.To)))
			g.MustAdd(rdf.T(ri, annName, rdf.String(r.Name)))
		}
	}
	return g
}

// WriteOWL serializes the ontology as an OWL document in RDF/XML.
func (o *Ontology) WriteOWL(w io.Writer) error {
	prefixes := rdf.DefaultPrefixes()
	prefixes["s2s"] = S2SNS
	prefixes["ont"] = string(o.Base)
	return owl.WriteRDFXML(w, o.ToGraph(), prefixes)
}

// FromGraph reconstructs an ontology from the OWL axioms produced by
// ToGraph (or equivalent hand-written OWL using rdfs:subClassOf,
// rdfs:domain, and rdfs:range).
func FromGraph(g *rdf.Graph) (*Ontology, error) {
	// Locate the ontology header, if present, for base and name.
	var base rdf.IRI
	var name string
	if onts := g.Subjects(rdf.RDFType, owl.Ontology); len(onts) == 1 {
		if iri, ok := onts[0].(rdf.IRI); ok {
			base = iri + "#"
			if strings.ContainsAny(string(iri), "#") {
				base = iri
			}
			if l, ok := g.FirstObject(onts[0], rdf.RDFSLabel).(rdf.Literal); ok {
				name = l.Value
			}
		}
	}

	classTerms := g.Subjects(rdf.RDFType, owl.Class)
	if len(classTerms) == 0 {
		return nil, fmt.Errorf("ontology: graph declares no owl:Class")
	}
	classIRIs := make([]rdf.IRI, 0, len(classTerms))
	for _, t := range classTerms {
		iri, ok := t.(rdf.IRI)
		if !ok {
			return nil, fmt.Errorf("ontology: class %s is not an IRI", t)
		}
		classIRIs = append(classIRIs, iri)
	}

	classNames := make(map[rdf.IRI]string, len(classIRIs))
	for _, iri := range classIRIs {
		if n, ok := g.FirstObject(iri, annName).(rdf.Literal); ok {
			classNames[iri] = n.Value
		} else {
			classNames[iri] = iri.Local()
		}
	}

	parents := make(map[rdf.IRI]rdf.IRI)
	var roots []rdf.IRI
	for _, iri := range classIRIs {
		if p, ok := g.FirstObject(iri, rdf.RDFSSubClassOf).(rdf.IRI); ok {
			parents[iri] = p
		} else {
			roots = append(roots, iri)
		}
	}
	if len(roots) != 1 {
		return nil, fmt.Errorf("ontology: expected exactly one root class, found %d", len(roots))
	}
	root := roots[0]
	if base == "" {
		base = rdf.IRI(root.Namespace())
	}

	o, err := New(base, name, classNames[root])
	if err != nil {
		return nil, err
	}
	if l, ok := g.FirstObject(root, rdf.RDFSLabel).(rdf.Literal); ok {
		o.root.Label = l.Value
	}

	// Add classes in dependency order (parents first).
	byIRI := map[rdf.IRI]*Class{root: o.root}
	remaining := make([]rdf.IRI, 0, len(classIRIs))
	for _, iri := range classIRIs {
		if iri != root {
			remaining = append(remaining, iri)
		}
	}
	sort.Slice(remaining, func(i, j int) bool { return remaining[i] < remaining[j] })
	for len(remaining) > 0 {
		progress := false
		var next []rdf.IRI
		for _, iri := range remaining {
			parent, ok := byIRI[parents[iri]]
			if !ok {
				next = append(next, iri)
				continue
			}
			c, err := o.AddClass(classNames[iri], parent.Name)
			if err != nil {
				return nil, err
			}
			if l, ok := g.FirstObject(iri, rdf.RDFSLabel).(rdf.Literal); ok {
				c.Label = l.Value
			}
			byIRI[iri] = c
			progress = true
		}
		if !progress {
			return nil, fmt.Errorf("ontology: class hierarchy contains a cycle or dangling rdfs:subClassOf")
		}
		remaining = next
	}

	// Datatype attributes.
	for _, t := range g.Subjects(rdf.RDFType, owl.DatatypeProperty) {
		iri, ok := t.(rdf.IRI)
		if !ok {
			continue
		}
		domain, ok := g.FirstObject(iri, rdf.RDFSDomain).(rdf.IRI)
		if !ok {
			return nil, fmt.Errorf("ontology: attribute %s has no rdfs:domain", iri)
		}
		cls, ok := byIRI[domain]
		if !ok {
			return nil, fmt.Errorf("ontology: attribute %s has domain %s, which is not a declared class", iri, domain)
		}
		attrName := iri.Local()
		if n, ok := g.FirstObject(iri, annName).(rdf.Literal); ok {
			attrName = n.Value
		}
		datatype, _ := g.FirstObject(iri, rdf.RDFSRange).(rdf.IRI)
		a, err := o.AddAttribute(cls.Name, attrName, datatype)
		if err != nil {
			return nil, err
		}
		if req, ok := g.FirstObject(iri, annRequired).(rdf.Literal); ok && req.Value == "true" {
			a.Required = true
		}
	}

	// Object relations.
	for _, t := range g.Subjects(rdf.RDFType, owl.ObjectProperty) {
		iri, ok := t.(rdf.IRI)
		if !ok {
			continue
		}
		domain, okD := g.FirstObject(iri, rdf.RDFSDomain).(rdf.IRI)
		rng, okR := g.FirstObject(iri, rdf.RDFSRange).(rdf.IRI)
		if !okD || !okR {
			return nil, fmt.Errorf("ontology: relation %s lacks rdfs:domain or rdfs:range", iri)
		}
		from, okF := byIRI[domain]
		to, okT := byIRI[rng]
		if !okF || !okT {
			return nil, fmt.Errorf("ontology: relation %s links undeclared classes", iri)
		}
		relName := iri.Local()
		if n, ok := g.FirstObject(iri, annName).(rdf.Literal); ok {
			relName = n.Value
		}
		if _, err := o.AddRelation(from.Name, relName, to.Name); err != nil {
			return nil, err
		}
	}

	if err := o.Validate(); err != nil {
		return nil, err
	}
	return o, nil
}

// ReadOWL parses an RDF/XML OWL document into an Ontology.
func ReadOWL(r io.Reader) (*Ontology, error) {
	g, err := owl.ParseRDFXML(r)
	if err != nil {
		return nil, err
	}
	return FromGraph(g)
}
