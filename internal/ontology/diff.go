package ontology

import (
	"fmt"
	"sort"
	"strings"
)

// Diff describes the schema changes between two ontology versions. The
// paper argues mappings "should not need substantial maintenance after
// being created"; when the shared ontology itself evolves, Diff is the
// basis for deciding which mappings survive (see mapping.Repository's
// impact analysis).
type Diff struct {
	// AddedClasses and RemovedClasses list class paths present in only one
	// version.
	AddedClasses   []string
	RemovedClasses []string
	// MovedClasses lists classes whose path changed (same name, different
	// parent chain) as "old -> new".
	MovedClasses []string
	// AddedAttributes and RemovedAttributes list attribute IDs present in
	// only one version. A moved class's attributes appear as removed+added
	// because their IDs (paths) changed.
	AddedAttributes   []string
	RemovedAttributes []string
	// RetypedAttributes lists attributes whose datatype changed, as
	// "id: old -> new".
	RetypedAttributes []string
	// AddedRelations and RemovedRelations list relation signatures.
	AddedRelations   []string
	RemovedRelations []string
}

// Empty reports whether the two versions are schema-identical.
func (d *Diff) Empty() bool {
	return len(d.AddedClasses) == 0 && len(d.RemovedClasses) == 0 &&
		len(d.MovedClasses) == 0 &&
		len(d.AddedAttributes) == 0 && len(d.RemovedAttributes) == 0 &&
		len(d.RetypedAttributes) == 0 &&
		len(d.AddedRelations) == 0 && len(d.RemovedRelations) == 0
}

// String renders a compact change report.
func (d *Diff) String() string {
	if d.Empty() {
		return "no schema changes"
	}
	var b strings.Builder
	section := func(label string, items []string) {
		for _, it := range items {
			fmt.Fprintf(&b, "%s %s\n", label, it)
		}
	}
	section("+class", d.AddedClasses)
	section("-class", d.RemovedClasses)
	section("~class", d.MovedClasses)
	section("+attr ", d.AddedAttributes)
	section("-attr ", d.RemovedAttributes)
	section("~attr ", d.RetypedAttributes)
	section("+rel  ", d.AddedRelations)
	section("-rel  ", d.RemovedRelations)
	return strings.TrimRight(b.String(), "\n")
}

// Compare computes the schema diff from an old ontology version to a new
// one. Classes are matched by name (case-insensitive), attributes by dotted
// ID, relations by "from.name->to" signature.
func Compare(old, new *Ontology) *Diff {
	d := &Diff{}

	oldClasses := map[string]*Class{}
	for _, c := range old.Classes() {
		oldClasses[strings.ToLower(c.Name)] = c
	}
	newClasses := map[string]*Class{}
	for _, c := range new.Classes() {
		newClasses[strings.ToLower(c.Name)] = c
	}
	for name, oc := range oldClasses {
		nc, ok := newClasses[name]
		if !ok {
			d.RemovedClasses = append(d.RemovedClasses, oc.Path())
			continue
		}
		if oc.Path() != nc.Path() {
			d.MovedClasses = append(d.MovedClasses, oc.Path()+" -> "+nc.Path())
		}
	}
	for name, nc := range newClasses {
		if _, ok := oldClasses[name]; !ok {
			d.AddedClasses = append(d.AddedClasses, nc.Path())
		}
	}

	oldAttrs := map[string]*Attribute{}
	for _, a := range old.Attributes() {
		oldAttrs[strings.ToLower(a.ID())] = a
	}
	newAttrs := map[string]*Attribute{}
	for _, a := range new.Attributes() {
		newAttrs[strings.ToLower(a.ID())] = a
	}
	for id, oa := range oldAttrs {
		na, ok := newAttrs[id]
		if !ok {
			d.RemovedAttributes = append(d.RemovedAttributes, oa.ID())
			continue
		}
		if oa.Datatype != na.Datatype {
			d.RetypedAttributes = append(d.RetypedAttributes,
				fmt.Sprintf("%s: %s -> %s", oa.ID(), oa.Datatype.Local(), na.Datatype.Local()))
		}
	}
	for id, na := range newAttrs {
		if _, ok := oldAttrs[id]; !ok {
			d.AddedAttributes = append(d.AddedAttributes, na.ID())
		}
	}

	relSigs := func(o *Ontology) map[string]bool {
		out := map[string]bool{}
		for _, c := range o.Classes() {
			for _, r := range c.Relations {
				out[strings.ToLower(r.String())] = true
			}
		}
		return out
	}
	oldRels, newRels := relSigs(old), relSigs(new)
	for sig := range oldRels {
		if !newRels[sig] {
			d.RemovedRelations = append(d.RemovedRelations, sig)
		}
	}
	for sig := range newRels {
		if !oldRels[sig] {
			d.AddedRelations = append(d.AddedRelations, sig)
		}
	}

	for _, s := range [][]string{
		d.AddedClasses, d.RemovedClasses, d.MovedClasses,
		d.AddedAttributes, d.RemovedAttributes, d.RetypedAttributes,
		d.AddedRelations, d.RemovedRelations,
	} {
		sort.Strings(s)
	}
	return d
}
