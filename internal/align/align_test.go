package align

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/ontology"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/workload"
)

// germanOntology is a partner's equivalent schema with different names.
func germanOntology(t *testing.T) *ontology.Ontology {
	t.Helper()
	ont := ontology.MustNew("http://partner.de/katalog#", "katalog", "ding")
	for _, c := range []struct{ name, parent string }{
		{"produkt", "ding"}, {"uhr", "produkt"}, {"lieferant", "ding"},
	} {
		if _, err := ont.AddClass(c.name, c.parent); err != nil {
			t.Fatal(err)
		}
	}
	for _, a := range []struct {
		class, name string
		dt          rdf.IRI
	}{
		{"produkt", "marke", rdf.XSDString},
		{"produkt", "preis", rdf.XSDDouble}, // decimal ↔ double: compatible
		{"uhr", "gehaeuse", rdf.XSDString},
		{"lieferant", "name", rdf.XSDString},
	} {
		if _, err := ont.AddAttribute(a.class, a.name, a.dt); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ont.AddRelation("produkt", "hatLieferant", "lieferant"); err != nil {
		t.Fatal(err)
	}
	return ont
}

func paperToGerman(t *testing.T, dst *ontology.Ontology) *Alignment {
	t.Helper()
	src := ontology.Paper()
	a := New(src, dst)
	steps := []error{
		a.MapClass("product", "produkt"),
		a.MapClass("watch", "uhr"),
		a.MapClass("provider", "lieferant"),
		a.MapAttribute("thing.product.brand", "ding.produkt.marke"),
		a.MapAttribute("thing.product.price", "ding.produkt.preis"),
		a.MapAttribute("thing.product.watch.case", "ding.produkt.uhr.gehaeuse"),
		a.MapAttribute("thing.provider.name", "ding.lieferant.name"),
		a.MapRelation("product", "hasProvider", "produkt", "hatLieferant"),
	}
	for _, err := range steps {
		if err != nil {
			t.Fatal(err)
		}
	}
	return a
}

func TestTranslateMiddlewareOutput(t *testing.T) {
	world := workload.MustGenerate(workload.Spec{DBSources: 1, RecordsPerSource: 10, Seed: 71})
	mw, err := core.NewWithCatalog(world.Ontology, world.Catalog, extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := world.Apply(mw); err != nil {
		t.Fatal(err)
	}
	res, err := mw.Query(context.Background(), "SELECT product")
	if err != nil {
		t.Fatal(err)
	}
	graph, err := mw.Generator().ToGraph(res)
	if err != nil {
		t.Fatal(err)
	}

	german := germanOntology(t)
	alignment := paperToGerman(t, german)
	translated, rep, err := alignment.Translate(graph)
	if err != nil {
		t.Fatal(err)
	}
	// model and water_resistance have no correspondence: dropped, reported.
	if len(rep.UnmappedAttributes) == 0 {
		t.Error("expected unmapped attributes in report")
	}
	joined := strings.Join(rep.UnmappedAttributes, " ")
	if !strings.Contains(joined, "model") {
		t.Errorf("unmapped attributes = %v", rep.UnmappedAttributes)
	}
	if rep.DroppedTriples == 0 || rep.TranslatedTriples == 0 {
		t.Errorf("report = %+v", rep)
	}

	// The partner queries the translated graph in its own vocabulary.
	out, err := sparql.Select(translated, `PREFIX k: <http://partner.de/katalog#>
		SELECT ?x ?m WHERE { ?x a k:uhr . ?x k:ding_produkt_marke ?m . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Bindings) != 10 {
		t.Fatalf("partner query bindings = %d, want 10", len(out.Bindings))
	}
	// Relations were rewritten too.
	rel, err := sparql.Select(translated, `PREFIX k: <http://partner.de/katalog#>
		SELECT ?x ?p WHERE { ?x k:produkt_hatLieferant ?p . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Bindings) != 10 {
		t.Fatalf("relation bindings = %d", len(rel.Bindings))
	}
	// Price datatype re-typed to the target's xsd:double.
	prices, err := sparql.Select(translated, `PREFIX k: <http://partner.de/katalog#>
		SELECT ?v WHERE { ?x k:ding_produkt_preis ?v . } LIMIT 1`)
	if err != nil || len(prices.Bindings) != 1 {
		t.Fatalf("prices = %v, %v", prices, err)
	}
	if lit, ok := prices.Bindings[0]["v"].(rdf.Literal); !ok || lit.Datatype != rdf.XSDDouble {
		t.Errorf("price literal = %v", prices.Bindings[0]["v"])
	}
	// Foreign typing passes through.
	individuals, _ := sparql.Select(translated, `SELECT ?x WHERE { ?x a <http://www.w3.org/2002/07/owl#NamedIndividual> . }`)
	if len(individuals.Bindings) == 0 {
		t.Error("owl:NamedIndividual typing lost")
	}
}

func TestMapValidation(t *testing.T) {
	german := germanOntology(t)
	a := New(ontology.Paper(), german)
	if err := a.MapClass("nosuch", "produkt"); err == nil {
		t.Error("unknown source class accepted")
	}
	if err := a.MapClass("product", "nosuch"); err == nil {
		t.Error("unknown target class accepted")
	}
	if err := a.MapAttribute("thing.nosuch", "ding.produkt.marke"); err == nil {
		t.Error("unknown source attribute accepted")
	}
	if err := a.MapAttribute("thing.product.brand", "ding.nosuch"); err == nil {
		t.Error("unknown target attribute accepted")
	}
	// Incompatible datatypes: string brand vs double preis.
	if err := a.MapAttribute("thing.product.brand", "ding.produkt.preis"); err == nil {
		t.Error("incompatible datatypes accepted")
	}
	// Numeric-to-numeric is fine.
	if err := a.MapAttribute("thing.product.watch.water_resistance", "ding.produkt.preis"); err != nil {
		t.Errorf("integer->double rejected: %v", err)
	}
	if err := a.MapRelation("product", "nosuch", "produkt", "hatLieferant"); err == nil {
		t.Error("unknown source relation accepted")
	}
	if err := a.MapRelation("product", "hasProvider", "produkt", "nosuch"); err == nil {
		t.Error("unknown target relation accepted")
	}
}

func TestTranslateEmptyAlignmentDropsEverything(t *testing.T) {
	src := ontology.Paper()
	g := rdf.NewGraph()
	w := rdf.IRI(string(ontology.PaperBase) + "watch_1")
	g.MustAdd(rdf.T(w, rdf.RDFType, rdf.IRI(string(ontology.PaperBase)+"watch")))
	g.MustAdd(rdf.T(w, rdf.IRI(string(ontology.PaperBase)+"thing_product_brand"), rdf.String("Seiko")))

	a := New(src, germanOntology(t))
	out, rep, err := a.Translate(g)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 || rep.DroppedTriples != 2 {
		t.Fatalf("out = %d triples, report %+v", out.Len(), rep)
	}
	if len(rep.UnmappedClasses) != 1 || len(rep.UnmappedAttributes) != 1 {
		t.Errorf("report = %+v", rep)
	}
}
