// Package align translates instance graphs between ontologies. Two B2B
// partners rarely share one schema; the paper's premise ("a common shared
// structured format represented with an ontology") extends naturally to
// declared correspondences between each partner's ontology — the approach
// of the ontology-mediation systems in the paper's related work. An
// Alignment maps classes, attributes, and relations of a source ontology
// onto a target ontology, and Translate rewrites an answer graph emitted
// under the source ontology into the target's vocabulary, reporting
// anything it had to drop.
package align

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ontology"
	"repro/internal/rdf"
)

// Alignment is a set of validated correspondences from a source ontology to
// a target ontology.
type Alignment struct {
	src, dst *ontology.Ontology

	classes   map[rdf.IRI]rdf.IRI // src class IRI → dst class IRI
	attrs     map[rdf.IRI]mapped  // src attribute IRI → dst
	relations map[rdf.IRI]rdf.IRI // src relation IRI → dst relation IRI
}

type mapped struct {
	iri      rdf.IRI
	datatype rdf.IRI
}

// New creates an empty alignment between two ontologies.
func New(src, dst *ontology.Ontology) *Alignment {
	return &Alignment{
		src: src, dst: dst,
		classes:   map[rdf.IRI]rdf.IRI{},
		attrs:     map[rdf.IRI]mapped{},
		relations: map[rdf.IRI]rdf.IRI{},
	}
}

// MapClass declares that the source class corresponds to the target class.
func (a *Alignment) MapClass(srcClass, dstClass string) error {
	sc, ok := a.src.Class(srcClass)
	if !ok {
		return fmt.Errorf("align: source class %q not defined", srcClass)
	}
	dc, ok := a.dst.Class(dstClass)
	if !ok {
		return fmt.Errorf("align: target class %q not defined", dstClass)
	}
	a.classes[a.src.ClassIRI(sc)] = a.dst.ClassIRI(dc)
	return nil
}

// MapAttribute declares that the source attribute (dotted ID) corresponds
// to the target attribute. Datatypes must be compatible: equal, or both
// numeric.
func (a *Alignment) MapAttribute(srcID, dstID string) error {
	sa, ok := a.src.Attribute(srcID)
	if !ok {
		return fmt.Errorf("align: source attribute %q not defined", srcID)
	}
	da, ok := a.dst.Attribute(dstID)
	if !ok {
		return fmt.Errorf("align: target attribute %q not defined", dstID)
	}
	if !compatibleDatatypes(sa.Datatype, da.Datatype) {
		return fmt.Errorf("align: attribute %q (%s) is not compatible with %q (%s)",
			srcID, sa.Datatype.Local(), dstID, da.Datatype.Local())
	}
	a.attrs[a.src.AttributeIRI(sa)] = mapped{iri: a.dst.AttributeIRI(da), datatype: da.Datatype}
	return nil
}

// MapRelation declares that the source relation (declared on srcFrom)
// corresponds to the target relation (declared on dstFrom).
func (a *Alignment) MapRelation(srcFrom, srcName, dstFrom, dstName string) error {
	sr, err := findRelation(a.src, srcFrom, srcName)
	if err != nil {
		return err
	}
	dr, err := findRelation(a.dst, dstFrom, dstName)
	if err != nil {
		return err
	}
	a.relations[a.src.RelationIRI(sr)] = a.dst.RelationIRI(dr)
	return nil
}

func findRelation(ont *ontology.Ontology, class, name string) (*ontology.Relation, error) {
	c, ok := ont.Class(class)
	if !ok {
		return nil, fmt.Errorf("align: class %q not defined in ontology %q", class, ont.Name)
	}
	for _, r := range c.Relations {
		if strings.EqualFold(r.Name, name) {
			return r, nil
		}
	}
	return nil, fmt.Errorf("align: relation %q not declared on class %q", name, class)
}

func compatibleDatatypes(a, b rdf.IRI) bool {
	if a == b {
		return true
	}
	numeric := func(dt rdf.IRI) bool {
		return dt == rdf.XSDInteger || dt == rdf.XSDDecimal || dt == rdf.XSDDouble
	}
	return numeric(a) && numeric(b)
}

// Report records what a translation did and dropped.
type Report struct {
	// TranslatedTriples counts rewritten statements.
	TranslatedTriples int
	// DroppedTriples counts statements with no correspondence.
	DroppedTriples int
	// UnmappedClasses, UnmappedAttributes, UnmappedRelations list the
	// source terms encountered without a correspondence, sorted.
	UnmappedClasses    []string
	UnmappedAttributes []string
	UnmappedRelations  []string
}

// Translate rewrites an instance graph from the source ontology's
// vocabulary into the target's. Instance IRIs are preserved (they identify
// individuals, not schema); rdf:type objects, attribute predicates, and
// relation predicates are rewritten; statements using unmapped source terms
// are dropped and reported. Non-ontology triples (e.g. owl:NamedIndividual
// typing) pass through unchanged.
func (a *Alignment) Translate(g *rdf.Graph) (*rdf.Graph, *Report, error) {
	out := rdf.NewGraph()
	rep := &Report{}
	unmappedC := map[string]bool{}
	unmappedA := map[string]bool{}
	unmappedR := map[string]bool{}

	srcNS := string(a.src.Base)
	for _, t := range g.All() {
		pred, ok := t.Predicate.(rdf.IRI)
		if !ok {
			rep.DroppedTriples++
			continue
		}
		switch {
		case pred == rdf.RDFType:
			obj, ok := t.Object.(rdf.IRI)
			if !ok {
				rep.DroppedTriples++
				continue
			}
			if !strings.HasPrefix(string(obj), srcNS) {
				// Foreign typing (owl:NamedIndividual etc.) passes through.
				out.MustAdd(t)
				rep.TranslatedTriples++
				continue
			}
			if dst, mappedOK := a.classes[obj]; mappedOK {
				out.MustAdd(rdf.T(t.Subject, rdf.RDFType, dst))
				rep.TranslatedTriples++
			} else {
				unmappedC[obj.Local()] = true
				rep.DroppedTriples++
			}
		case !strings.HasPrefix(string(pred), srcNS):
			out.MustAdd(t)
			rep.TranslatedTriples++
		default:
			if dst, mappedOK := a.attrs[pred]; mappedOK {
				obj := t.Object
				if lit, isLit := obj.(rdf.Literal); isLit {
					// Re-type the literal to the target datatype.
					nl := rdf.Literal{Value: lit.Value, Lang: lit.Lang}
					if nl.Lang == "" && dst.datatype != "" && dst.datatype != rdf.XSDString {
						nl.Datatype = dst.datatype
					}
					obj = nl
				}
				out.MustAdd(rdf.T(t.Subject, dst.iri, obj))
				rep.TranslatedTriples++
				continue
			}
			if dst, mappedOK := a.relations[pred]; mappedOK {
				out.MustAdd(rdf.T(t.Subject, dst, t.Object))
				rep.TranslatedTriples++
				continue
			}
			unmappedA[pred.Local()] = true
			rep.DroppedTriples++
		}
	}
	rep.UnmappedClasses = sortedKeys(unmappedC)
	rep.UnmappedAttributes = sortedKeys(unmappedA)
	rep.UnmappedRelations = sortedKeys(unmappedR)
	return out, rep, nil
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
