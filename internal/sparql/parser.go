package sparql

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/rdf"
)

// Parse parses a SPARQL query in the supported subset.
func Parse(input string) (*Query, error) {
	p := &sparqlParser{input: input, prefixes: rdf.DefaultPrefixes()}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse but panics on error; for static queries.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

type sparqlParser struct {
	input    string
	pos      int
	prefixes rdf.PrefixMap
}

func (p *sparqlParser) errf(format string, args ...any) error {
	return fmt.Errorf("sparql: at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *sparqlParser) skipWS() {
	for p.pos < len(p.input) {
		c := p.input[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			p.pos++
			continue
		}
		if c == '#' {
			for p.pos < len(p.input) && p.input[p.pos] != '\n' {
				p.pos++
			}
			continue
		}
		return
	}
}

// peekKeyword reports whether the next token is the given keyword
// (case-insensitive).
func (p *sparqlParser) peekKeyword(kw string) bool {
	p.skipWS()
	if len(p.input)-p.pos < len(kw) {
		return false
	}
	if !strings.EqualFold(p.input[p.pos:p.pos+len(kw)], kw) {
		return false
	}
	end := p.pos + len(kw)
	if end < len(p.input) && isNameByte(p.input[end]) {
		return false
	}
	return true
}

func (p *sparqlParser) acceptKeyword(kw string) bool {
	if p.peekKeyword(kw) {
		p.skipWS()
		p.pos += len(kw)
		return true
	}
	return false
}

func (p *sparqlParser) consume(c byte) bool {
	p.skipWS()
	if p.pos < len(p.input) && p.input[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

func isNameByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

func (p *sparqlParser) query() (*Query, error) {
	q := &Query{Limit: -1, prefixes: p.prefixes}

	for p.acceptKeyword("PREFIX") {
		p.skipWS()
		start := p.pos
		for p.pos < len(p.input) && p.input[p.pos] != ':' {
			p.pos++
		}
		if p.pos >= len(p.input) {
			return nil, p.errf("malformed PREFIX")
		}
		label := strings.TrimSpace(p.input[start:p.pos])
		p.pos++ // ':'
		iri, err := p.iriRef()
		if err != nil {
			return nil, err
		}
		p.prefixes[label] = string(iri)
	}

	if !p.acceptKeyword("SELECT") {
		return nil, p.errf("expected SELECT")
	}
	q.Distinct = p.acceptKeyword("DISTINCT")

	p.skipWS()
	if p.consume('*') {
		// all variables
	} else {
		for {
			p.skipWS()
			if p.pos >= len(p.input) || p.input[p.pos] != '?' {
				break
			}
			v, err := p.variable()
			if err != nil {
				return nil, err
			}
			q.Vars = append(q.Vars, v)
		}
		if len(q.Vars) == 0 {
			return nil, p.errf("SELECT needs variables or *")
		}
	}

	if !p.acceptKeyword("WHERE") {
		return nil, p.errf("expected WHERE")
	}
	if !p.consume('{') {
		return nil, p.errf("expected '{'")
	}
	for {
		p.skipWS()
		if p.pos >= len(p.input) {
			return nil, p.errf("unterminated WHERE block")
		}
		if p.consume('}') {
			break
		}
		if p.acceptKeyword("FILTER") {
			f, err := p.filter()
			if err != nil {
				return nil, err
			}
			q.Filters = append(q.Filters, f)
			continue
		}
		pat, err := p.pattern()
		if err != nil {
			return nil, err
		}
		q.Patterns = append(q.Patterns, pat)
	}

	if p.acceptKeyword("ORDER") {
		if !p.acceptKeyword("BY") {
			return nil, p.errf("expected BY after ORDER")
		}
		desc := p.acceptKeyword("DESC")
		asc := !desc && p.acceptKeyword("ASC")
		if desc || asc {
			if !p.consume('(') {
				return nil, p.errf("expected '(' after DESC/ASC")
			}
		}
		v, err := p.variable()
		if err != nil {
			return nil, err
		}
		if desc || asc {
			if !p.consume(')') {
				return nil, p.errf("expected ')'")
			}
		}
		q.OrderBy = v
		q.OrderDesc = desc
	}
	// LIMIT and OFFSET may appear in either order.
	for {
		switch {
		case p.acceptKeyword("LIMIT"):
			n, err := p.integer()
			if err != nil {
				return nil, err
			}
			q.Limit = n
			continue
		case p.acceptKeyword("OFFSET"):
			n, err := p.integer()
			if err != nil {
				return nil, err
			}
			q.Offset = n
			continue
		}
		break
	}
	p.skipWS()
	if p.pos != len(p.input) {
		return nil, p.errf("unexpected trailing content %q", p.input[p.pos:min(p.pos+16, len(p.input))])
	}
	if len(q.Patterns) == 0 {
		return nil, p.errf("WHERE block has no triple patterns")
	}
	return q, nil
}

func (p *sparqlParser) pattern() (Pattern, error) {
	s, err := p.patternTerm(false)
	if err != nil {
		return Pattern{}, err
	}
	pt, err := p.predicateTerm()
	if err != nil {
		return Pattern{}, err
	}
	o, err := p.patternTerm(true)
	if err != nil {
		return Pattern{}, err
	}
	if !p.consume('.') {
		return Pattern{}, p.errf("triple pattern must end with '.'")
	}
	return Pattern{S: s, P: pt, O: o}, nil
}

func (p *sparqlParser) predicateTerm() (PatternTerm, error) {
	p.skipWS()
	// 'a' keyword.
	if p.pos < len(p.input) && p.input[p.pos] == 'a' {
		if p.pos+1 >= len(p.input) || !isNameByte(p.input[p.pos+1]) {
			p.pos++
			return PatternTerm{Term: rdf.RDFType}, nil
		}
	}
	return p.patternTerm(false)
}

func (p *sparqlParser) patternTerm(allowLiteral bool) (PatternTerm, error) {
	p.skipWS()
	if p.pos >= len(p.input) {
		return PatternTerm{}, p.errf("unexpected end of query")
	}
	c := p.input[p.pos]
	switch {
	case c == '?':
		v, err := p.variable()
		if err != nil {
			return PatternTerm{}, err
		}
		return PatternTerm{Var: v}, nil
	case c == '<':
		iri, err := p.iriRef()
		if err != nil {
			return PatternTerm{}, err
		}
		return PatternTerm{Term: iri}, nil
	case c == '"':
		if !allowLiteral {
			return PatternTerm{}, p.errf("literal not allowed here")
		}
		lit, err := p.literal()
		if err != nil {
			return PatternTerm{}, err
		}
		return PatternTerm{Term: lit}, nil
	case c == '_' && p.pos+1 < len(p.input) && p.input[p.pos+1] == ':':
		p.pos += 2
		start := p.pos
		for p.pos < len(p.input) && isNameByte(p.input[p.pos]) {
			p.pos++
		}
		return PatternTerm{Term: rdf.BlankNode(p.input[start:p.pos])}, nil
	case allowLiteral && (c >= '0' && c <= '9' || c == '-' || c == '+'):
		return p.numberTerm()
	case allowLiteral && (p.peekKeyword("true") || p.peekKeyword("false")):
		word := "false"
		if p.peekKeyword("true") {
			word = "true"
		}
		p.pos += len(word)
		return PatternTerm{Term: rdf.Literal{Value: word, Datatype: rdf.XSDBoolean}}, nil
	default:
		iri, err := p.prefixedName()
		if err != nil {
			return PatternTerm{}, err
		}
		return PatternTerm{Term: iri}, nil
	}
}

func (p *sparqlParser) variable() (string, error) {
	p.skipWS()
	if p.pos >= len(p.input) || p.input[p.pos] != '?' {
		return "", p.errf("expected a variable")
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.input) && isNameByte(p.input[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("empty variable name")
	}
	return p.input[start:p.pos], nil
}

func (p *sparqlParser) iriRef() (rdf.IRI, error) {
	p.skipWS()
	if p.pos >= len(p.input) || p.input[p.pos] != '<' {
		return "", p.errf("expected '<'")
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.input) && p.input[p.pos] != '>' {
		p.pos++
	}
	if p.pos >= len(p.input) {
		return "", p.errf("unterminated IRI")
	}
	iri := rdf.IRI(p.input[start:p.pos])
	p.pos++
	return iri, nil
}

func (p *sparqlParser) prefixedName() (rdf.IRI, error) {
	p.skipWS()
	start := p.pos
	for p.pos < len(p.input) && p.input[p.pos] != ':' && isNameByte(p.input[p.pos]) {
		p.pos++
	}
	if p.pos >= len(p.input) || p.input[p.pos] != ':' {
		p.pos = start
		return "", p.errf("expected an IRI, variable, or prefixed name")
	}
	label := p.input[start:p.pos]
	p.pos++
	localStart := p.pos
	for p.pos < len(p.input) && (isNameByte(p.input[p.pos]) || p.input[p.pos] == '-' || p.input[p.pos] == '.') {
		p.pos++
	}
	local := p.input[localStart:p.pos]
	for strings.HasSuffix(local, ".") {
		local = local[:len(local)-1]
		p.pos--
	}
	ns, ok := p.prefixes[label]
	if !ok {
		return "", p.errf("undeclared prefix %q", label)
	}
	return rdf.IRI(ns + local), nil
}

func (p *sparqlParser) literal() (rdf.Literal, error) {
	// p.input[p.pos] == '"'
	p.pos++
	var b strings.Builder
	for {
		if p.pos >= len(p.input) {
			return rdf.Literal{}, p.errf("unterminated literal")
		}
		c := p.input[p.pos]
		if c == '"' {
			p.pos++
			break
		}
		if c == '\\' && p.pos+1 < len(p.input) {
			switch p.input[p.pos+1] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				return rdf.Literal{}, p.errf("unknown escape")
			}
			p.pos += 2
			continue
		}
		b.WriteByte(c)
		p.pos++
	}
	lit := rdf.Literal{Value: b.String()}
	if p.pos < len(p.input) && p.input[p.pos] == '@' {
		p.pos++
		start := p.pos
		for p.pos < len(p.input) && (isNameByte(p.input[p.pos]) || p.input[p.pos] == '-') {
			p.pos++
		}
		lit.Lang = p.input[start:p.pos]
	} else if strings.HasPrefix(p.input[p.pos:], "^^") {
		p.pos += 2
		var dt rdf.IRI
		var err error
		if p.pos < len(p.input) && p.input[p.pos] == '<' {
			dt, err = p.iriRef()
		} else {
			dt, err = p.prefixedName()
		}
		if err != nil {
			return rdf.Literal{}, err
		}
		lit.Datatype = dt
	}
	return lit, nil
}

func (p *sparqlParser) numberTerm() (PatternTerm, error) {
	start := p.pos
	if p.input[p.pos] == '+' || p.input[p.pos] == '-' {
		p.pos++
	}
	sawDot := false
	for p.pos < len(p.input) {
		c := p.input[p.pos]
		if c >= '0' && c <= '9' {
			p.pos++
		} else if c == '.' && !sawDot && p.pos+1 < len(p.input) && p.input[p.pos+1] >= '0' && p.input[p.pos+1] <= '9' {
			sawDot = true
			p.pos++
		} else {
			break
		}
	}
	text := p.input[start:p.pos]
	dt := rdf.XSDInteger
	if sawDot {
		dt = rdf.XSDDecimal
	}
	return PatternTerm{Term: rdf.Literal{Value: text, Datatype: dt}}, nil
}

func (p *sparqlParser) integer() (int, error) {
	p.skipWS()
	start := p.pos
	for p.pos < len(p.input) && p.input[p.pos] >= '0' && p.input[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start {
		return 0, p.errf("expected a number")
	}
	return strconv.Atoi(p.input[start:p.pos])
}

func (p *sparqlParser) filter() (Filter, error) {
	p.skipWS()
	// FILTER regex(?v, "pattern")
	if p.acceptKeyword("regex") {
		if !p.consume('(') {
			return Filter{}, p.errf("expected '(' after regex")
		}
		v, err := p.variable()
		if err != nil {
			return Filter{}, err
		}
		if !p.consume(',') {
			return Filter{}, p.errf("expected ','")
		}
		p.skipWS()
		if p.pos >= len(p.input) || p.input[p.pos] != '"' {
			return Filter{}, p.errf("expected a quoted pattern")
		}
		lit, err := p.literal()
		if err != nil {
			return Filter{}, err
		}
		if !p.consume(')') {
			return Filter{}, p.errf("expected ')'")
		}
		re, err := regexp.Compile(lit.Value)
		if err != nil {
			return Filter{}, fmt.Errorf("sparql: invalid regex %q: %w", lit.Value, err)
		}
		return Filter{Kind: FilterRegex, Var: v, Pattern: re}, nil
	}

	// FILTER (?v op constant)
	if !p.consume('(') {
		return Filter{}, p.errf("expected '(' after FILTER")
	}
	v, err := p.variable()
	if err != nil {
		return Filter{}, err
	}
	p.skipWS()
	var op string
	for _, candidate := range []string{"!=", "<=", ">=", "=", "<", ">"} {
		if strings.HasPrefix(p.input[p.pos:], candidate) {
			op = candidate
			p.pos += len(candidate)
			break
		}
	}
	if op == "" {
		return Filter{}, p.errf("expected a comparison operator")
	}
	term, err := p.patternTerm(true)
	if err != nil {
		return Filter{}, err
	}
	if term.Var != "" {
		return Filter{}, p.errf("FILTER comparisons must be against constants")
	}
	if !p.consume(')') {
		return Filter{}, p.errf("expected ')'")
	}
	return Filter{Kind: FilterCompare, Var: v, Op: op, Value: term.Term}, nil
}
