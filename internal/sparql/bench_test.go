package sparql

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/rdf"
)

func benchGraph(b *testing.B, n int) *rdf.Graph {
	b.Helper()
	var sb strings.Builder
	sb.WriteString("@prefix ex: <http://e/> .\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "ex:w%d a ex:Watch ; ex:brand \"b%d\" ; ex:price %d .\n", i, i%10, i)
	}
	g, err := rdf.ParseTurtle(strings.NewReader(sb.String()))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkBGPJoin measures a two-pattern join with a filter.
func BenchmarkBGPJoin(b *testing.B) {
	g := benchGraph(b, 2000)
	q := MustParse(`PREFIX ex: <http://e/> SELECT ?w ?p WHERE {
		?w a ex:Watch . ?w ex:price ?p . FILTER (?p < 100) }`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := q.Eval(g)
		if err != nil || len(res.Bindings) != 100 {
			b.Fatalf("%v %d", err, len(res.Bindings))
		}
	}
}
