package sparql

import (
	"strings"
	"testing"

	"repro/internal/rdf"
)

// FuzzParse checks the SPARQL parser never panics and accepted queries
// evaluate safely against a fixed graph.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`SELECT ?s WHERE { ?s ?p ?o . }`,
		`PREFIX ex: <http://e/> SELECT DISTINCT ?a ?b WHERE { ?a ex:p ?b . FILTER (?b > 3) } ORDER BY DESC(?b) LIMIT 2`,
		`SELECT * WHERE { ?x a <http://e/C> . FILTER regex(?x, "a+") }`,
		`SELECT ?v WHERE { <http://e/s> <http://e/p> ?v . } OFFSET 1 LIMIT 1`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	g, err := rdf.ParseTurtle(strings.NewReader(
		"@prefix ex: <http://e/> .\nex:s ex:p 4 .\nex:s a ex:C .\n"))
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return
		}
		if _, err := q.Eval(g); err != nil {
			// Evaluation errors are fine; panics are not.
			return
		}
	})
}
