// Package sparql implements a SPARQL subset over rdf.Graph. The paper's
// conclusion argues that emitting OWL "allows data to be shared and
// processed by automated tools"; this engine is that downstream processing
// path — a consumer queries the ontology instances the middleware produced
// without any knowledge of the original sources.
//
// Supported grammar:
//
//	PREFIX label: <iri>            (repeatable)
//	SELECT [DISTINCT] ?v ... | *
//	WHERE {
//	    subject predicate object . (basic graph patterns; 'a' = rdf:type)
//	    FILTER (?v op constant)    (op: = != < > <= >=)
//	    FILTER regex(?v, "re")
//	}
//	[ORDER BY ?v [DESC]] [LIMIT n] [OFFSET n]
//
// Terms may be IRIs (<...> or prefixed), literals ("..." with optional
// @lang / ^^datatype, numbers, booleans), or variables (?name).
package sparql

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/rdf"
)

// Query is a parsed SPARQL query.
type Query struct {
	// Vars are the projected variable names (without '?'); empty means *.
	Vars []string
	// Distinct deduplicates solutions.
	Distinct bool
	// Patterns are the basic graph patterns in order.
	Patterns []Pattern
	// Filters apply to complete bindings.
	Filters []Filter
	// OrderBy is the ordering variable; empty for none.
	OrderBy   string
	OrderDesc bool
	// Limit caps solutions; -1 means unlimited.
	Limit int
	// Offset skips leading solutions.
	Offset int

	prefixes rdf.PrefixMap
}

// Pattern is one triple pattern; each position holds either a concrete
// rdf.Term or a variable name.
type Pattern struct {
	S, P, O PatternTerm
}

// PatternTerm is a term or variable in a pattern.
type PatternTerm struct {
	// Var is the variable name when non-empty; otherwise Term is concrete.
	Var  string
	Term rdf.Term
}

func (pt PatternTerm) String() string {
	if pt.Var != "" {
		return "?" + pt.Var
	}
	return pt.Term.String()
}

// FilterKind discriminates filter forms.
type FilterKind int

// Filter kinds.
const (
	FilterCompare FilterKind = iota + 1
	FilterRegex
)

// Filter is one FILTER clause.
type Filter struct {
	Kind FilterKind
	Var  string
	// Op is the comparison operator for FilterCompare.
	Op string
	// Value is the comparison constant for FilterCompare.
	Value rdf.Term
	// Pattern is the compiled expression for FilterRegex.
	Pattern *regexp.Regexp
}

// Binding is one solution: variable name → bound term.
type Binding map[string]rdf.Term

// Result is the outcome of a query.
type Result struct {
	// Vars are the projected variables in order.
	Vars []string
	// Bindings are the solutions.
	Bindings []Binding
}

// Select parses and evaluates a query against a graph.
func Select(g *rdf.Graph, query string) (*Result, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return q.Eval(g)
}

// Eval evaluates the query against a graph.
func (q *Query) Eval(g *rdf.Graph) (*Result, error) {
	bindings := []Binding{{}}
	for _, pat := range q.Patterns {
		var next []Binding
		for _, b := range bindings {
			next = append(next, matchPattern(g, pat, b)...)
		}
		bindings = next
		if len(bindings) == 0 {
			break
		}
	}

	// Filters.
	var kept []Binding
	for _, b := range bindings {
		ok, err := q.passesFilters(b)
		if err != nil {
			return nil, err
		}
		if ok {
			kept = append(kept, b)
		}
	}

	// Projection variables.
	vars := q.Vars
	if len(vars) == 0 {
		seen := map[string]bool{}
		for _, pat := range q.Patterns {
			for _, pt := range []PatternTerm{pat.S, pat.P, pat.O} {
				if pt.Var != "" && !seen[pt.Var] {
					seen[pt.Var] = true
					vars = append(vars, pt.Var)
				}
			}
		}
	}

	// Project.
	res := &Result{Vars: vars}
	for _, b := range kept {
		proj := Binding{}
		for _, v := range vars {
			if t, ok := b[v]; ok {
				proj[v] = t
			}
		}
		res.Bindings = append(res.Bindings, proj)
	}

	// Order (deterministic even without ORDER BY).
	sortKey := func(b Binding) string {
		var sb strings.Builder
		for _, v := range vars {
			if t, ok := b[v]; ok {
				sb.WriteString(t.Key())
			}
			sb.WriteByte('\x00')
		}
		return sb.String()
	}
	if q.OrderBy != "" {
		sort.SliceStable(res.Bindings, func(i, j int) bool {
			a, b := res.Bindings[i][q.OrderBy], res.Bindings[j][q.OrderBy]
			c := compareTerms(a, b)
			if q.OrderDesc {
				return c > 0
			}
			return c < 0
		})
	} else {
		sort.SliceStable(res.Bindings, func(i, j int) bool {
			return sortKey(res.Bindings[i]) < sortKey(res.Bindings[j])
		})
	}

	// Distinct.
	if q.Distinct {
		seen := map[string]bool{}
		deduped := res.Bindings[:0]
		for _, b := range res.Bindings {
			k := sortKey(b)
			if !seen[k] {
				seen[k] = true
				deduped = append(deduped, b)
			}
		}
		res.Bindings = deduped
	}

	// Offset / limit.
	if q.Offset > 0 {
		if q.Offset >= len(res.Bindings) {
			res.Bindings = nil
		} else {
			res.Bindings = res.Bindings[q.Offset:]
		}
	}
	if q.Limit >= 0 && len(res.Bindings) > q.Limit {
		res.Bindings = res.Bindings[:q.Limit]
	}
	return res, nil
}

// matchPattern extends one binding with all graph matches of a pattern.
func matchPattern(g *rdf.Graph, pat Pattern, b Binding) []Binding {
	resolve := func(pt PatternTerm) rdf.Term {
		if pt.Var == "" {
			return pt.Term
		}
		if t, ok := b[pt.Var]; ok {
			return t
		}
		return nil
	}
	s, p, o := resolve(pat.S), resolve(pat.P), resolve(pat.O)
	var out []Binding
	for _, t := range g.Match(s, p, o) {
		nb := make(Binding, len(b)+3)
		for k, v := range b {
			nb[k] = v
		}
		ok := true
		bind := func(pt PatternTerm, term rdf.Term) {
			if pt.Var == "" {
				return
			}
			if existing, bound := nb[pt.Var]; bound {
				if existing.Key() != term.Key() {
					ok = false
				}
				return
			}
			nb[pt.Var] = term
		}
		bind(pat.S, t.Subject)
		bind(pat.P, t.Predicate)
		bind(pat.O, t.Object)
		if ok {
			out = append(out, nb)
		}
	}
	return out
}

func (q *Query) passesFilters(b Binding) (bool, error) {
	for _, f := range q.Filters {
		t, bound := b[f.Var]
		if !bound {
			return false, nil
		}
		switch f.Kind {
		case FilterRegex:
			lit, ok := t.(rdf.Literal)
			if !ok {
				return false, nil
			}
			if !f.Pattern.MatchString(lit.Value) {
				return false, nil
			}
		case FilterCompare:
			c := compareTerms(t, f.Value)
			var pass bool
			switch f.Op {
			case "=":
				pass = c == 0
			case "!=":
				pass = c != 0
			case "<":
				pass = c < 0
			case ">":
				pass = c > 0
			case "<=":
				pass = c <= 0
			case ">=":
				pass = c >= 0
			default:
				return false, fmt.Errorf("sparql: unknown operator %q", f.Op)
			}
			if !pass {
				return false, nil
			}
		}
	}
	return true, nil
}

// compareTerms orders terms: numeric literals numerically, other literals
// lexically, everything else by key. Unbound (nil) sorts first.
func compareTerms(a, b rdf.Term) int {
	if a == nil && b == nil {
		return 0
	}
	if a == nil {
		return -1
	}
	if b == nil {
		return 1
	}
	la, aok := a.(rdf.Literal)
	lb, bok := b.(rdf.Literal)
	if aok && bok {
		if na, err1 := strconv.ParseFloat(strings.TrimSpace(la.Value), 64); err1 == nil {
			if nb, err2 := strconv.ParseFloat(strings.TrimSpace(lb.Value), 64); err2 == nil {
				switch {
				case na < nb:
					return -1
				case na > nb:
					return 1
				default:
					return 0
				}
			}
		}
		return strings.Compare(la.Value, lb.Value)
	}
	return strings.Compare(a.Key(), b.Key())
}
