package sparql

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/rdf"
	"repro/internal/workload"
)

func sampleGraph(t *testing.T) *rdf.Graph {
	t.Helper()
	doc := `
@prefix ont: <http://s2s.uma.pt/watch#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ont:watch_1 a ont:watch ;
    ont:thing_product_brand "Seiko" ;
    ont:thing_product_price "129.99"^^xsd:decimal ;
    ont:product_hasProvider ont:provider_1 .
ont:watch_2 a ont:watch ;
    ont:thing_product_brand "Casio" ;
    ont:thing_product_price "15.00"^^xsd:decimal ;
    ont:product_hasProvider ont:provider_1 .
ont:watch_3 a ont:watch ;
    ont:thing_product_brand "Seiko" ;
    ont:thing_product_price "299.50"^^xsd:decimal ;
    ont:product_hasProvider ont:provider_2 .
ont:provider_1 a ont:provider ;
    ont:thing_provider_name "WatchCo" .
ont:provider_2 a ont:provider ;
    ont:thing_provider_name "TimeHouse" .
`
	g, err := rdf.ParseTurtle(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

const prefix = `PREFIX ont: <http://s2s.uma.pt/watch#> `

func TestBasicPattern(t *testing.T) {
	g := sampleGraph(t)
	res, err := Select(g, prefix+`SELECT ?w WHERE { ?w a ont:watch . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) != 3 {
		t.Fatalf("bindings = %v", res.Bindings)
	}
	if res.Vars[0] != "w" {
		t.Errorf("vars = %v", res.Vars)
	}
}

func TestJoinAcrossPatterns(t *testing.T) {
	g := sampleGraph(t)
	res, err := Select(g, prefix+`SELECT ?brand ?name WHERE {
		?w ont:thing_product_brand ?brand .
		?w ont:product_hasProvider ?p .
		?p ont:thing_provider_name ?name .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) != 3 {
		t.Fatalf("bindings = %v", res.Bindings)
	}
	pairs := map[string]string{}
	for _, b := range res.Bindings {
		brand := b["brand"].(rdf.Literal).Value
		name := b["name"].(rdf.Literal).Value
		pairs[brand+"@"+name] = name
	}
	for _, want := range []string{"Seiko@WatchCo", "Casio@WatchCo", "Seiko@TimeHouse"} {
		if _, ok := pairs[want]; !ok {
			t.Errorf("missing pair %s: %v", want, pairs)
		}
	}
}

func TestFilterCompareNumeric(t *testing.T) {
	g := sampleGraph(t)
	res, err := Select(g, prefix+`SELECT ?w ?price WHERE {
		?w ont:thing_product_price ?price .
		FILTER (?price < 200)
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) != 2 {
		t.Fatalf("bindings = %v", res.Bindings)
	}
}

func TestFilterCompareString(t *testing.T) {
	g := sampleGraph(t)
	res, err := Select(g, prefix+`SELECT ?w WHERE {
		?w ont:thing_product_brand ?b .
		FILTER (?b = "Seiko")
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) != 2 {
		t.Fatalf("bindings = %v", res.Bindings)
	}
}

func TestFilterRegex(t *testing.T) {
	g := sampleGraph(t)
	res, err := Select(g, prefix+`SELECT ?b WHERE {
		?w ont:thing_product_brand ?b .
		FILTER regex(?b, "^C")
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) != 1 || res.Bindings[0]["b"].(rdf.Literal).Value != "Casio" {
		t.Fatalf("bindings = %v", res.Bindings)
	}
}

func TestDistinctOrderLimitOffset(t *testing.T) {
	g := sampleGraph(t)
	res, err := Select(g, prefix+`SELECT DISTINCT ?b WHERE { ?w ont:thing_product_brand ?b . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) != 2 {
		t.Fatalf("distinct brands = %v", res.Bindings)
	}
	res, err = Select(g, prefix+`SELECT ?w ?p WHERE { ?w ont:thing_product_price ?p . } ORDER BY DESC(?p) LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) != 1 || res.Bindings[0]["p"].(rdf.Literal).Value != "299.50" {
		t.Fatalf("top price = %v", res.Bindings)
	}
	res, err = Select(g, prefix+`SELECT ?w ?p WHERE { ?w ont:thing_product_price ?p . } ORDER BY ?p OFFSET 1 LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bindings[0]["p"].(rdf.Literal).Value != "129.99" {
		t.Fatalf("second price = %v", res.Bindings)
	}
}

func TestSelectStar(t *testing.T) {
	g := sampleGraph(t)
	res, err := Select(g, prefix+`SELECT * WHERE { ?w ont:thing_product_brand ?b . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vars) != 2 || len(res.Bindings) != 3 {
		t.Fatalf("star select = %v / %v", res.Vars, res.Bindings)
	}
}

func TestConcreteSubject(t *testing.T) {
	g := sampleGraph(t)
	res, err := Select(g, prefix+`SELECT ?b WHERE { ont:watch_1 ont:thing_product_brand ?b . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) != 1 || res.Bindings[0]["b"].(rdf.Literal).Value != "Seiko" {
		t.Fatalf("bindings = %v", res.Bindings)
	}
}

func TestSharedVariableJoinConsistency(t *testing.T) {
	g := rdf.NewGraph()
	a, b, knows := rdf.IRI("http://e/a"), rdf.IRI("http://e/b"), rdf.IRI("http://e/knows")
	g.MustAdd(rdf.T(a, knows, b))
	g.MustAdd(rdf.T(b, knows, a))
	g.MustAdd(rdf.T(a, knows, a))
	// Self-loop pattern: only a-knows-a satisfies ?x knows ?x.
	res, err := Select(g, `SELECT ?x WHERE { ?x <http://e/knows> ?x . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) != 1 || res.Bindings[0]["x"].Key() != a.Key() {
		t.Fatalf("bindings = %v", res.Bindings)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT WHERE { ?a ?b ?c . }`,
		`SELECT ?a { ?a ?b ?c . }`,
		`SELECT ?a WHERE { ?a ?b ?c }`,                         // missing dot
		`SELECT ?a WHERE { ?a ?b ?c . `,                        // unterminated block
		`SELECT ?a WHERE { }`,                                  // no patterns
		`SELECT ?a WHERE { ?a ?b "lit . }`,                     // unterminated literal
		`SELECT ?a WHERE { "lit" ?b ?c . }`,                    // literal subject
		`SELECT ?a WHERE { ?a unknown:x ?c . }`,                // undeclared prefix
		`SELECT ?a WHERE { ?a ?b ?c . } LIMIT x`,               // bad limit
		`SELECT ?a WHERE { ?a ?b ?c . } trailing`,              // trailing junk
		`SELECT ?a WHERE { ?a ?b ?c . FILTER (?a ~ 3) }`,       // bad op
		`SELECT ?a WHERE { ?a ?b ?c . FILTER regex(?a, "[") }`, // bad regex
		`SELECT ?a WHERE { ?a ?b ?c . FILTER (?a = ?b) }`,      // var-var compare
		`SELECT ?a WHERE { ?a ?b ?c . } ORDER BY DESC ?a`,      // missing parens
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded", q)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic")
		}
	}()
	MustParse("not sparql")
}

// TestOverMiddlewareOutput is the paper's "semantic knowledge processing"
// claim: the middleware's OWL answer is queryable with SPARQL.
func TestOverMiddlewareOutput(t *testing.T) {
	world := workload.MustGenerate(workload.Spec{
		DBSources: 1, XMLSources: 1, RecordsPerSource: 25, Seed: 31,
	})
	mw, err := core.NewWithCatalog(world.Ontology, world.Catalog, extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := world.Apply(mw); err != nil {
		t.Fatal(err)
	}
	res, err := mw.Query(context.Background(), "SELECT product")
	if err != nil {
		t.Fatal(err)
	}
	graph, err := mw.Generator().ToGraph(res)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Select(graph, prefix+`SELECT ?w ?brand WHERE {
		?w ont:thing_product_brand ?brand .
		FILTER (?brand = "Seiko")
	}`)
	if err != nil {
		t.Fatal(err)
	}
	want := world.CountMatching(func(r workload.Record) bool { return r.Brand == "Seiko" })
	if len(out.Bindings) != want {
		t.Fatalf("sparql found %d Seiko watches, ground truth %d", len(out.Bindings), want)
	}
}

// Property: pattern matching agrees with a naive scan for generated graphs.
func TestPatternMatchesScanProperty(t *testing.T) {
	f := func(edges []struct{ S, O uint8 }) bool {
		g := rdf.NewGraph()
		p := rdf.IRI("http://e/p")
		for _, e := range edges {
			g.MustAdd(rdf.T(rdf.IRI(fmt.Sprintf("http://e/n%d", e.S%8)), p, rdf.IRI(fmt.Sprintf("http://e/n%d", e.O%8))))
		}
		res, err := Select(g, `SELECT ?s ?o WHERE { ?s <http://e/p> ?o . }`)
		if err != nil {
			return false
		}
		return len(res.Bindings) == g.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
