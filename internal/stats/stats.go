// Package stats maintains the per-source extraction statistics behind
// query planner v3's cost-based source ordering (docs/PERFORMANCE.md,
// "Cost-based ordering & semi-joins"). For every data source the
// registry tracks observed cardinality (raw values per extraction),
// match selectivity per query shape (values surviving the planner's
// record filters), and a latency sketch with quantiles — each as an
// exponentially weighted moving estimate, so the numbers track drift in
// the partner source rather than its whole history.
//
// The registry is deliberately clock-free: callers measure latency and
// pass it in, and nothing here reads time.Now or draws randomness. That
// keeps the package inside the determinism analyzer's scope (identical
// observation sequences produce identical estimates and identical
// source orders), which is what makes cost-ordered extraction
// reproducible under the chaos suites.
//
// Lifetime: the extractor manager owns one registry for its own
// lifetime. Unlike the rule-result and rewrite caches, statistics
// survive Manager.InvalidateCache — a catalog edit changes what a rule
// extracts, not how big or slow its source is — and are dropped only by
// an explicit Reset.
package stats

import (
	"sort"
	"sync"
	"time"
)

// Alpha is the EWMA smoothing factor: each observation contributes
// Alpha of the new estimate, so the effective memory is roughly
// 1/Alpha ≈ 8 recent extractions per source.
const Alpha = 0.125

// Cold-start defaults, returned before the first observation. They are
// intentionally neutral: every cold source scores identically, so the
// cost ordering degrades to the deterministic catalog order until real
// observations arrive.
const (
	// DefaultCardinality is the assumed raw value count per extraction.
	DefaultCardinality = 100.0
	// DefaultSelectivity assumes no pruning (every value kept).
	DefaultSelectivity = 1.0
	// DefaultLatency is the assumed per-source extraction latency.
	DefaultLatency = 50 * time.Millisecond
)

// shapeBound caps the per-source selectivity table. Query shapes are
// few (distinct class + condition signatures); past the bound the table
// is flushed wholesale, like the other bounded caches in this repo.
const shapeBound = 64

// latencyBuckets is the sketch resolution: bucket i covers latencies in
// [2^i, 2^(i+1)) microseconds, so 40 buckets span sub-microsecond rule
// hits through ~18-minute timeouts.
const latencyBuckets = 40

// Sample is one observed extraction of one source for one query shape.
type Sample struct {
	// Values is the raw value count the source's rules produced.
	Values int
	// Kept is the value count that survived the planner's record-scoped
	// filters (Kept == Values when no filter applied).
	Kept int
	// Latency is the source's wall-clock extraction duration, measured
	// by the caller — the registry never reads the clock itself.
	Latency time.Duration
}

// Estimate is the registry's current belief about one source under one
// query shape.
type Estimate struct {
	// Cardinality is the EWMA of raw values per extraction.
	Cardinality float64
	// Selectivity is the EWMA of Kept/Values for the query shape, in
	// [0, 1]; lower means the source's records are pruned harder.
	Selectivity float64
	// Latency is the EWMA of extraction duration.
	Latency time.Duration
	// Samples counts observations folded into the source's estimates.
	Samples uint64
}

// Cost is the scalar the planner orders by: expected latency (seconds)
// times the expected number of useful values (cardinality ×
// selectivity, floored so a perfectly-pruning source still pays its
// latency). Lower cost runs earlier — cheapest × most-pruning first.
func (e Estimate) Cost() float64 {
	useful := e.Cardinality * e.Selectivity
	if useful < 1 {
		useful = 1
	}
	return e.Latency.Seconds() * useful
}

// sourceStats is one source's mutable state.
type sourceStats struct {
	cardinality float64
	latency     float64 // seconds
	selectivity map[string]float64
	samples     uint64
	sketch      [latencyBuckets]float64
	sketchTotal float64
}

// Registry holds per-source statistics. Safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	sources map[string]*sourceStats
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{sources: make(map[string]*sourceStats)}
}

// ewma folds x into the running estimate v.
func ewma(v, x float64) float64 { return v + Alpha*(x-v) }

// Observe folds one extraction sample into sourceID's estimates. shape
// identifies the query shape for selectivity tracking; "" tracks an
// unshaped run (selectivity is still recorded, under the empty shape).
func (r *Registry) Observe(sourceID, shape string, s Sample) {
	if s.Values < 0 || s.Kept < 0 || s.Kept > s.Values {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.sources[sourceID]
	if !ok {
		st = &sourceStats{
			cardinality: DefaultCardinality,
			latency:     DefaultLatency.Seconds(),
			selectivity: make(map[string]float64, 4),
		}
		r.sources[sourceID] = st
	}
	st.cardinality = ewma(st.cardinality, float64(s.Values))
	st.latency = ewma(st.latency, s.Latency.Seconds())
	sel := DefaultSelectivity
	if s.Values > 0 {
		sel = float64(s.Kept) / float64(s.Values)
	}
	if prev, ok := st.selectivity[shape]; ok {
		st.selectivity[shape] = ewma(prev, sel)
	} else {
		if len(st.selectivity) >= shapeBound {
			st.selectivity = make(map[string]float64, 4)
		}
		st.selectivity[shape] = ewma(DefaultSelectivity, sel)
	}
	st.samples++

	// Latency sketch: existing mass decays by (1-Alpha), the new sample
	// lands with weight Alpha — the bucket masses stay an exponentially
	// weighted histogram of recent latencies.
	b := latencyBucket(s.Latency)
	for i := range st.sketch {
		st.sketch[i] *= 1 - Alpha
	}
	st.sketch[b] += Alpha
	st.sketchTotal = st.sketchTotal*(1-Alpha) + Alpha
}

// latencyBucket maps a duration to its sketch bucket.
func latencyBucket(d time.Duration) int {
	us := d.Microseconds()
	b := 0
	for us > 1 && b < latencyBuckets-1 {
		us >>= 1
		b++
	}
	return b
}

// Estimate returns the current belief about sourceID under shape.
// Sources (or shapes) never observed get the cold-start defaults; a
// known source with an unknown shape gets its real cardinality and
// latency with the default selectivity.
func (r *Registry) Estimate(sourceID, shape string) Estimate {
	r.mu.RLock()
	defer r.mu.RUnlock()
	st, ok := r.sources[sourceID]
	if !ok {
		return Estimate{
			Cardinality: DefaultCardinality,
			Selectivity: DefaultSelectivity,
			Latency:     DefaultLatency,
		}
	}
	sel, ok := st.selectivity[shape]
	if !ok {
		sel = DefaultSelectivity
	}
	return Estimate{
		Cardinality: st.cardinality,
		Selectivity: sel,
		Latency:     time.Duration(st.latency * float64(time.Second)),
		Samples:     st.samples,
	}
}

// LatencyQuantile returns the q-quantile (0 < q ≤ 1) of sourceID's
// recent extraction latency from the decayed sketch, or DefaultLatency
// before any observation. The value is the upper bound of the bucket
// holding the quantile, so it is conservative by at most 2x.
func (r *Registry) LatencyQuantile(sourceID string, q float64) time.Duration {
	r.mu.RLock()
	defer r.mu.RUnlock()
	st, ok := r.sources[sourceID]
	if !ok || st.sketchTotal <= 0 {
		return DefaultLatency
	}
	target := q * st.sketchTotal
	cum := 0.0
	for i, mass := range st.sketch {
		cum += mass
		if cum >= target {
			return time.Duration(int64(1)<<uint(i+1)) * time.Microsecond
		}
	}
	return time.Duration(int64(1)<<latencyBuckets) * time.Microsecond
}

// Order returns sourceIDs sorted by ascending Cost under shape. The
// sort is stable, so sources with equal cost (all-cold registries in
// particular) keep their incoming — catalog — order, and the result is
// a fresh slice (the input is never mutated).
func (r *Registry) Order(sourceIDs []string, shape string) []string {
	out := append([]string(nil), sourceIDs...)
	costs := make([]float64, len(out))
	for i, id := range out {
		costs[i] = r.Estimate(id, shape).Cost()
	}
	idx := make([]int, len(out))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return costs[idx[a]] < costs[idx[b]] })
	ordered := make([]string, len(out))
	for k, i := range idx {
		ordered[k] = out[i]
	}
	return ordered
}

// Samples reports how many observations sourceID has absorbed (0 for
// unknown sources).
func (r *Registry) Samples(sourceID string) uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	st, ok := r.sources[sourceID]
	if !ok {
		return 0
	}
	return st.samples
}

// Len reports how many sources hold statistics.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.sources)
}

// Reset drops every statistic, returning the registry to cold start.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sources = make(map[string]*sourceStats)
}
