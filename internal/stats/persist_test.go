package stats

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// populate feeds a deterministic observation mix into r.
func populate(r *Registry) {
	for i := 0; i < 20; i++ {
		r.Observe("db_000", "product|brand", Sample{
			Values: 100 + i, Kept: 10 + i, Latency: time.Duration(i+1) * time.Millisecond,
		})
		r.Observe("web_000", "", Sample{
			Values: 5, Kept: 5, Latency: 80 * time.Millisecond,
		})
	}
	r.Observe("xml_000", "provider", Sample{Values: 0, Kept: 0, Latency: time.Microsecond})
}

// TestSaveLoadRoundTrip pins the persistence contract: a restored
// registry is observationally identical to the saved one — same
// estimates, same quantiles, same sample counts, same source order —
// and a second save produces the same bytes.
func TestSaveLoadRoundTrip(t *testing.T) {
	orig := New()
	populate(orig)

	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := New()
	if err := restored.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	if restored.Len() != orig.Len() {
		t.Fatalf("Len = %d, want %d", restored.Len(), orig.Len())
	}
	for _, id := range []string{"db_000", "web_000", "xml_000", "never_seen"} {
		for _, shape := range []string{"product|brand", "provider", "", "other"} {
			if got, want := restored.Estimate(id, shape), orig.Estimate(id, shape); got != want {
				t.Errorf("Estimate(%q, %q) = %+v, want %+v", id, shape, got, want)
			}
		}
		for _, q := range []float64{0.5, 0.9, 0.99} {
			if got, want := restored.LatencyQuantile(id, q), orig.LatencyQuantile(id, q); got != want {
				t.Errorf("LatencyQuantile(%q, %v) = %v, want %v", id, q, got, want)
			}
		}
		if got, want := restored.Samples(id), orig.Samples(id); got != want {
			t.Errorf("Samples(%q) = %d, want %d", id, got, want)
		}
	}
	ids := []string{"web_000", "db_000", "xml_000"}
	if got, want := restored.Order(ids, "product|brand"), orig.Order(ids, "product|brand"); !equal(got, want) {
		t.Errorf("Order = %v, want %v", got, want)
	}

	var again bytes.Buffer
	if err := restored.Save(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), buf.Bytes()) {
		t.Error("second save diverges from first: snapshot is not deterministic")
	}
}

// TestLoadRejectsBadSnapshots covers the refusal paths: junk bytes and
// a wrong version must error and leave the registry untouched.
func TestLoadRejectsBadSnapshots(t *testing.T) {
	r := New()
	populate(r)
	before := r.Estimate("db_000", "product|brand")

	if err := r.Load(strings.NewReader("not json")); err == nil {
		t.Error("junk snapshot loaded without error")
	}
	if err := r.Load(strings.NewReader(`{"version": 99, "sources": {}}`)); err == nil {
		t.Error("future snapshot version loaded without error")
	}
	if got := r.Estimate("db_000", "product|brand"); got != before {
		t.Errorf("failed load mutated the registry: %+v != %+v", got, before)
	}
}

// TestLoadReplacesState pins replace-not-merge semantics: sources in
// the registry but absent from the snapshot are dropped by Load.
func TestLoadReplacesState(t *testing.T) {
	saved := New()
	saved.Observe("db_000", "", Sample{Values: 10, Kept: 10, Latency: time.Millisecond})
	var buf bytes.Buffer
	if err := saved.Save(&buf); err != nil {
		t.Fatal(err)
	}

	r := New()
	r.Observe("stale_000", "", Sample{Values: 1, Kept: 1, Latency: time.Second})
	if err := r.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if r.Samples("stale_000") != 0 {
		t.Error("Load merged instead of replacing: stale source survived")
	}
	if r.Samples("db_000") != 1 {
		t.Errorf("Samples(db_000) = %d, want 1", r.Samples("db_000"))
	}
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
