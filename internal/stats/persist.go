package stats

// persist.go snapshots the registry to JSON and restores it, so the
// cost model survives a server restart (docs/PERFORMANCE.md, "Stats
// persistence"). The snapshot is a plain serialization of the EWMA
// state — no clocks, no recomputation — so a save/load round trip is
// exact: the restored registry produces the same estimates, quantiles,
// and source orders as the one that was saved.

import (
	"encoding/json"
	"fmt"
	"io"
)

// snapshotVersion stamps the snapshot layout; Load refuses snapshots
// written by an incompatible future layout instead of misreading them.
const snapshotVersion = 1

// snapshot is the on-disk form of a Registry.
type snapshot struct {
	Version int                       `json:"version"`
	Sources map[string]sourceSnapshot `json:"sources"`
}

// sourceSnapshot mirrors sourceStats field for field. Latency rides in
// seconds (the internal unit) and the sketch as the raw bucket masses.
type sourceSnapshot struct {
	Cardinality float64            `json:"cardinality"`
	Latency     float64            `json:"latency_s"`
	Selectivity map[string]float64 `json:"selectivity"`
	Samples     uint64             `json:"samples"`
	Sketch      []float64          `json:"sketch"`
	SketchTotal float64            `json:"sketch_total"`
}

// Save writes the registry's full state to w as JSON. The encoding is
// deterministic (map keys sort), so identical registries produce
// identical bytes.
func (r *Registry) Save(w io.Writer) error {
	r.mu.RLock()
	snap := snapshot{Version: snapshotVersion, Sources: make(map[string]sourceSnapshot, len(r.sources))}
	for id, st := range r.sources {
		sel := make(map[string]float64, len(st.selectivity))
		for shape, v := range st.selectivity {
			sel[shape] = v
		}
		snap.Sources[id] = sourceSnapshot{
			Cardinality: st.cardinality,
			Latency:     st.latency,
			Selectivity: sel,
			Samples:     st.samples,
			Sketch:      append([]float64(nil), st.sketch[:]...),
			SketchTotal: st.sketchTotal,
		}
	}
	r.mu.RUnlock()

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("stats: encoding snapshot: %w", err)
	}
	return nil
}

// Load replaces the registry's state with the snapshot read from r. A
// partial or corrupt snapshot leaves the registry untouched. A sketch
// longer than the current bucket count is truncated and a shorter one
// zero-padded, so snapshots survive a resolution change.
func (r *Registry) Load(rd io.Reader) error {
	var snap snapshot
	if err := json.NewDecoder(rd).Decode(&snap); err != nil {
		return fmt.Errorf("stats: decoding snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("stats: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	sources := make(map[string]*sourceStats, len(snap.Sources))
	for id, ss := range snap.Sources {
		st := &sourceStats{
			cardinality: ss.Cardinality,
			latency:     ss.Latency,
			selectivity: make(map[string]float64, len(ss.Selectivity)),
			samples:     ss.Samples,
			sketchTotal: ss.SketchTotal,
		}
		for shape, v := range ss.Selectivity {
			st.selectivity[shape] = v
		}
		copy(st.sketch[:], ss.Sketch)
		sources[id] = st
	}
	r.mu.Lock()
	r.sources = sources
	r.mu.Unlock()
	return nil
}
