package stats

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

func almost(t *testing.T, got, want, eps float64, what string) {
	t.Helper()
	if math.Abs(got-want) > eps {
		t.Fatalf("%s = %v, want %v (±%v)", what, got, want, eps)
	}
}

func TestColdStartDefaults(t *testing.T) {
	r := New()
	e := r.Estimate("never-seen", "shape")
	if e.Cardinality != DefaultCardinality {
		t.Fatalf("cold cardinality = %v, want %v", e.Cardinality, DefaultCardinality)
	}
	if e.Selectivity != DefaultSelectivity {
		t.Fatalf("cold selectivity = %v, want %v", e.Selectivity, DefaultSelectivity)
	}
	if e.Latency != DefaultLatency {
		t.Fatalf("cold latency = %v, want %v", e.Latency, DefaultLatency)
	}
	if e.Samples != 0 {
		t.Fatalf("cold samples = %d, want 0", e.Samples)
	}
	if q := r.LatencyQuantile("never-seen", 0.9); q != DefaultLatency {
		t.Fatalf("cold quantile = %v, want %v", q, DefaultLatency)
	}
}

// TestDecayMath checks the EWMA recurrence exactly: after observing x
// repeatedly, every estimate converges geometrically toward x with
// factor (1-Alpha) per step, starting from the cold default.
func TestDecayMath(t *testing.T) {
	r := New()
	const card, kept = 10, 5
	lat := 2 * time.Millisecond

	wantCard := DefaultCardinality
	wantSel := DefaultSelectivity
	wantLat := DefaultLatency.Seconds()
	for i := 0; i < 20; i++ {
		r.Observe("db", "q1", Sample{Values: card, Kept: kept, Latency: lat})
		wantCard = wantCard + Alpha*(card-wantCard)
		wantSel = wantSel + Alpha*(0.5-wantSel)
		wantLat = wantLat + Alpha*(lat.Seconds()-wantLat)
	}
	e := r.Estimate("db", "q1")
	almost(t, e.Cardinality, wantCard, 1e-9, "cardinality")
	almost(t, e.Selectivity, wantSel, 1e-9, "selectivity")
	almost(t, e.Latency.Seconds(), wantLat, 1e-9, "latency")
	if e.Samples != 20 {
		t.Fatalf("samples = %d, want 20", e.Samples)
	}

	// Drift tracking: a source that changes behavior converges to the
	// new regime; the old history decays away instead of anchoring the
	// mean forever.
	for i := 0; i < 60; i++ {
		r.Observe("db", "q1", Sample{Values: 1000, Kept: 1000, Latency: lat})
	}
	e = r.Estimate("db", "q1")
	if e.Cardinality < 990 {
		t.Fatalf("after drift, cardinality = %v, want ≈1000", e.Cardinality)
	}
	if e.Selectivity < 0.99 {
		t.Fatalf("after drift, selectivity = %v, want ≈1", e.Selectivity)
	}
}

func TestSelectivityPerShape(t *testing.T) {
	r := New()
	for i := 0; i < 40; i++ {
		r.Observe("db", "selective", Sample{Values: 100, Kept: 1, Latency: time.Millisecond})
		r.Observe("db", "broad", Sample{Values: 100, Kept: 100, Latency: time.Millisecond})
	}
	if sel := r.Estimate("db", "selective").Selectivity; sel > 0.05 {
		t.Fatalf("selective shape selectivity = %v, want ≈0.01", sel)
	}
	if sel := r.Estimate("db", "broad").Selectivity; sel < 0.95 {
		t.Fatalf("broad shape selectivity = %v, want ≈1", sel)
	}
	// An unknown shape on a known source: real cardinality, default
	// selectivity.
	e := r.Estimate("db", "unseen-shape")
	if e.Selectivity != DefaultSelectivity {
		t.Fatalf("unseen shape selectivity = %v, want default", e.Selectivity)
	}
	if math.Abs(e.Cardinality-100) > 5 {
		t.Fatalf("unseen shape cardinality = %v, want ≈100", e.Cardinality)
	}
}

func TestInvalidSamplesIgnored(t *testing.T) {
	r := New()
	r.Observe("db", "q", Sample{Values: -1, Kept: 0})
	r.Observe("db", "q", Sample{Values: 5, Kept: 9}) // kept > values
	if r.Len() != 0 {
		t.Fatalf("invalid samples created state: len = %d", r.Len())
	}
}

func TestLatencyQuantile(t *testing.T) {
	r := New()
	for i := 0; i < 50; i++ {
		r.Observe("src", "", Sample{Values: 1, Kept: 1, Latency: 100 * time.Microsecond})
	}
	// Bucketed upper bound: 100µs lands in [64µs,128µs), quantile
	// reports 128µs.
	if q := r.LatencyQuantile("src", 0.5); q != 128*time.Microsecond {
		t.Fatalf("p50 = %v, want 128µs", q)
	}
	// One slow outlier must not move the p50, but dominates p99 after
	// it recurs (the sketch decays, so recent slowness surfaces).
	for i := 0; i < 50; i++ {
		r.Observe("src", "", Sample{Values: 1, Kept: 1, Latency: 80 * time.Millisecond})
	}
	if q := r.LatencyQuantile("src", 0.9); q < 50*time.Millisecond {
		t.Fatalf("p90 after slow regime = %v, want ≥ 50ms", q)
	}
}

// TestOrderDeterministic pins the ordering contract: cold registries
// preserve the incoming order; observed costs order
// cheapest-most-selective first; equal inputs yield equal outputs.
func TestOrderDeterministic(t *testing.T) {
	r := New()
	ids := []string{"a", "b", "c", "d"}
	cold := r.Order(ids, "q")
	if fmt.Sprint(cold) != fmt.Sprint(ids) {
		t.Fatalf("cold order = %v, want catalog order %v", cold, ids)
	}

	// b: cheap and selective. d: cheap, unselective. a: slow and
	// unselective. c: cold (scores the neutral default cost).
	for i := 0; i < 30; i++ {
		r.Observe("b", "q", Sample{Values: 100, Kept: 1, Latency: time.Millisecond})
		r.Observe("d", "q", Sample{Values: 100, Kept: 100, Latency: time.Millisecond})
		r.Observe("a", "q", Sample{Values: 100, Kept: 100, Latency: 500 * time.Millisecond})
	}
	got := r.Order(ids, "q")
	want := []string{"b", "d", "c", "a"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	// Input slice is never mutated.
	if fmt.Sprint(ids) != fmt.Sprint([]string{"a", "b", "c", "d"}) {
		t.Fatalf("Order mutated its input: %v", ids)
	}
	again := r.Order(ids, "q")
	if fmt.Sprint(again) != fmt.Sprint(got) {
		t.Fatalf("order not deterministic: %v then %v", got, again)
	}
}

// TestConcurrentObserve exercises the registry under the race detector:
// concurrent observers, estimators, orderers, and a reset.
func TestConcurrentObserve(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("src-%d", g%4)
			for i := 0; i < 200; i++ {
				r.Observe(id, "q", Sample{Values: 10, Kept: 5, Latency: time.Millisecond})
				_ = r.Estimate(id, "q")
				_ = r.Order([]string{"src-0", "src-1", "src-2", "src-3"}, "q")
				_ = r.LatencyQuantile(id, 0.9)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.Reset()
	}()
	wg.Wait()
	// No assertion on values (a reset raced the observers); the test's
	// job is the race detector plus basic liveness.
	if r.Len() > 4 {
		t.Fatalf("len = %d, want ≤ 4", r.Len())
	}
}

func TestReset(t *testing.T) {
	r := New()
	r.Observe("db", "q", Sample{Values: 10, Kept: 10, Latency: time.Millisecond})
	if r.Len() != 1 || r.Samples("db") != 1 {
		t.Fatalf("pre-reset state: len=%d samples=%d", r.Len(), r.Samples("db"))
	}
	r.Reset()
	if r.Len() != 0 || r.Samples("db") != 0 {
		t.Fatalf("post-reset state: len=%d samples=%d", r.Len(), r.Samples("db"))
	}
	if e := r.Estimate("db", "q"); e.Cardinality != DefaultCardinality {
		t.Fatalf("post-reset estimate not cold: %+v", e)
	}
}
