// Package textsrc implements the middleware's unstructured plain-text data
// source substrate (paper §2.1: "unstructured (e.g. Web pages and plain
// text files)"). Documents are stored by ID and queried with regular
// expression extraction rules.
package textsrc

import (
	"fmt"
	"regexp"
	"sort"
	"sync"
)

// Store holds plain-text documents by ID. Store is safe for concurrent use.
type Store struct {
	mu    sync.RWMutex
	files map[string]string
}

// New returns an empty store.
func New() *Store {
	return &Store{files: make(map[string]string)}
}

// Add stores a document, replacing any previous content under the same ID.
func (s *Store) Add(id, content string) error {
	if id == "" {
		return fmt.Errorf("textsrc: document ID is empty")
	}
	s.mu.Lock()
	s.files[id] = content
	s.mu.Unlock()
	return nil
}

// MustAdd is Add but panics on error; for static fixtures.
func (s *Store) MustAdd(id, content string) {
	if err := s.Add(id, content); err != nil {
		panic(err)
	}
}

// Get returns a document's content.
func (s *Store) Get(id string) (string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	content, ok := s.files[id]
	if !ok {
		return "", fmt.Errorf("textsrc: no document %q", id)
	}
	return content, nil
}

// IDs returns all document IDs in sorted order.
func (s *Store) IDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.files))
	for id := range s.files {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Extract runs a regular expression rule over the named document and
// returns one value per match: the first capture group when the pattern has
// groups, the whole match otherwise.
func (s *Store) Extract(id, pattern string) ([]string, error) {
	content, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	return ExtractString(content, pattern)
}

// ExtractString is Extract over literal content.
func ExtractString(content, pattern string) ([]string, error) {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, fmt.Errorf("textsrc: invalid extraction rule %q: %w", pattern, err)
	}
	return ExtractCompiled(content, re), nil
}

// ExtractCompiled is Extract with a pre-compiled pattern, for callers
// that cache compiled rules and run them repeatedly.
func ExtractCompiled(content string, re *regexp.Regexp) []string {
	matches := re.FindAllStringSubmatch(content, -1)
	out := make([]string, 0, len(matches))
	for _, m := range matches {
		if len(m) > 1 {
			out = append(out, m[1])
		} else {
			out = append(out, m[0])
		}
	}
	return out
}
