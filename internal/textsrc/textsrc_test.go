package textsrc

import (
	"testing"
	"testing/quick"
)

const priceList = `WatchCo wholesale price list (2006)
SKU W-001 brand=Seiko case=stainless-steel price=129.99
SKU W-002 brand=Casio case=resin price=15.00
SKU W-003 brand=Citizen case=titanium price=210.50
`

func TestExtractWholeMatch(t *testing.T) {
	s := New()
	s.MustAdd("prices.txt", priceList)
	got, err := s.Extract("prices.txt", `W-[0-9]+`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"W-001", "W-002", "W-003"}
	if len(got) != len(want) {
		t.Fatalf("Extract = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("match %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestExtractCaptureGroup(t *testing.T) {
	s := New()
	s.MustAdd("prices.txt", priceList)
	got, err := s.Extract("prices.txt", `brand=([A-Za-z]+)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "Seiko" || got[2] != "Citizen" {
		t.Fatalf("Extract = %v", got)
	}
	prices, err := s.Extract("prices.txt", `price=([0-9.]+)`)
	if err != nil || len(prices) != 3 || prices[1] != "15.00" {
		t.Fatalf("prices = %v, %v", prices, err)
	}
}

func TestErrors(t *testing.T) {
	s := New()
	if err := s.Add("", "x"); err == nil {
		t.Error("empty ID accepted")
	}
	if _, err := s.Get("missing"); err == nil {
		t.Error("missing document returned")
	}
	if _, err := s.Extract("missing", "x"); err == nil {
		t.Error("extract from missing document succeeded")
	}
	s.MustAdd("d", "content")
	if _, err := s.Extract("d", "["); err == nil {
		t.Error("invalid pattern accepted")
	}
}

func TestGetAndIDs(t *testing.T) {
	s := New()
	s.MustAdd("b", "2")
	s.MustAdd("a", "1")
	if ids := s.IDs(); len(ids) != 2 || ids[0] != "a" {
		t.Errorf("IDs = %v", ids)
	}
	if content, err := s.Get("a"); err != nil || content != "1" {
		t.Errorf("Get = %q, %v", content, err)
	}
}

func TestExtractStringNoMatches(t *testing.T) {
	got, err := ExtractString("nothing here", `zz[0-9]+`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got = %v", got)
	}
}

// Property: each value planted with a key=value scheme is recovered exactly.
func TestExtractRecoversPlantedValues(t *testing.T) {
	f := func(vals []uint16) bool {
		content := ""
		for _, v := range vals {
			content += "item value=" + itoa(int(v)) + " end\n"
		}
		got, err := ExtractString(content, `value=([0-9]+)`)
		if err != nil || len(got) != len(vals) {
			return false
		}
		for i, v := range vals {
			if got[i] != itoa(int(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
