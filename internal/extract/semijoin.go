package extract

// semijoin.go is the extractor side of planner v3: cost-based source
// ordering and cross-source semi-join narrowing.
//
// Ordering: before fan-out, plans are sorted cheapest-most-selective
// first by the per-source statistics registry (internal/stats). The
// result set is canonically sorted afterwards, so ordering changes only
// wall-clock behavior, never bytes.
//
// Semi-join: the planner annotates groups that pushdown had to decline
// solely because a class key makes their records mergeable across
// sources (mapping.SemiJoin). Those records can influence the answer
// only by merging with an instance that shares their key value — so
// extraction runs in two waves: wave one extracts every non-narrowable
// plan and collects the set of key values they produced (the seed);
// wave two runs the narrowable plans restricted to that seed, natively
// (a typed IN predicate appended to the SQL) or via a key record
// filter. A record whose key no other source produced merges with
// nothing; were it kept, its instance would still lack one of the
// planner's EligibleConds attributes — as would any merge of narrowed
// records, because the extractor only narrows when all narrowed groups
// share a common unsatisfied condition — and the residual instance
// filter would reject it. Narrowing is therefore never load-bearing:
// the instance layer re-applies every condition, and any gate failure
// simply runs the plan unnarrowed in wave one.

import (
	"sort"
	"strings"
	"time"

	"repro/internal/mapping"
	"repro/internal/obs"
	"repro/internal/planner"
	"repro/internal/s2sql"
	"repro/internal/stats"
)

// SourceStats exposes the per-source statistics registry that feeds
// cost-based ordering. It survives InvalidateCache (observed source
// behavior stays valid when mappings change); call its Reset to clear.
func (m *Manager) SourceStats() *stats.Registry { return m.srcStats }

// OrderSources returns the given source IDs in the registry's current
// cost order for the query plan: cheapest-most-selective first, with
// cold sources keeping their relative order. The cluster coordinator
// uses it to order each node's scatter list, so ordering hints survive
// partitioned dispatch.
func (m *Manager) OrderSources(qplan *s2sql.Plan, sourceIDs []string) []string {
	shape := ""
	if qplan != nil {
		shape = querySig(qplan)
	}
	return m.srcStats.Order(sourceIDs, shape)
}

// orderPlans returns plans in the stats registry's cost order for the
// query shape. It never mutates its input (the slice may be shared with
// the rewrite cache); a fresh slice is returned whenever reordering is
// possible.
func (m *Manager) orderPlans(plans []mapping.SourcePlan, shape string) []mapping.SourcePlan {
	if len(plans) < 2 {
		return plans
	}
	ids := make([]string, len(plans))
	byID := make(map[string]int, len(plans))
	for i := range plans {
		ids[i] = plans[i].Source.ID
		byID[ids[i]] = i
	}
	out := make([]mapping.SourcePlan, 0, len(plans))
	for _, id := range m.srcStats.Order(ids, shape) {
		out = append(out, plans[byID[id]])
	}
	return out
}

// observeSource feeds one source run into the stats registry. Failed
// runs are skipped (a timeout's zero values would teach the registry
// the source is tiny), as are narrowed runs (their cardinality is an
// artifact of this run's seed, not the source's behavior).
func (m *Manager) observeSource(plan mapping.SourcePlan, errs []SourceError, run sourceRun, dur time.Duration, shape string) {
	if len(errs) > 0 || plan.Ephemeral {
		return
	}
	m.srcStats.Observe(plan.Source.ID, shape, stats.Sample{
		Values:  run.rawValues,
		Kept:    run.keptValues,
		Latency: dur,
	})
}

// splitWaves partitions plans into the immediate wave and the deferred
// (narrowable) wave, returning the lowercased key attribute IDs whose
// values wave one must collect. Everything runs in wave one when
// narrowing is off, the run is a cluster sub-request (the coordinator's
// per-node source lists break the "wave one sees every other source"
// seed-completeness argument), or the narrowed groups share no common
// unsatisfied condition (two narrowed records could then merge into an
// instance the residual filter accepts). A narrowable plan also runs in
// wave one when it carries a non-narrowed group that maps one of the
// run's key attributes: that group's key values must be in the seed (a
// narrowed record elsewhere could merge with its keyed instances), and
// deferring the plan would leave them out. Non-narrowed groups that map
// no key attribute ride along in wave two untouched — their instances
// carry no class-key value, so they merge with nothing and their
// fragments are identical in either wave.
func (m *Manager) splitWaves(plans []mapping.SourcePlan, restricted bool, metrics *obs.Registry) (wave1, wave2 []mapping.SourcePlan, keyAttrs map[string]bool) {
	if restricted || m.opts.DisableSemiJoin {
		return plans, nil, nil
	}
	narrowable := make([]bool, len(plans))
	keySet := map[string]bool{}
	for i := range plans {
		if plans[i].Narrowable() {
			narrowable[i] = true
			for _, sj := range plans[i].SemiJoins {
				keySet[strings.ToLower(sj.KeyAttribute)] = true
			}
		}
	}
	if len(keySet) == 0 {
		return plans, nil, nil
	}
	any := false
	for i := range plans {
		if !narrowable[i] {
			continue
		}
		covered := make([]bool, len(plans[i].Entries))
		for _, sj := range plans[i].SemiJoins {
			for _, ei := range sj.Entries {
				if ei >= 0 && ei < len(covered) {
					covered[ei] = true
				}
			}
		}
		safe := true
		for ei, e := range plans[i].Entries {
			if !covered[ei] && keySet[strings.ToLower(e.AttributeID)] {
				safe = false
				break
			}
		}
		if !safe {
			narrowable[i] = false
			metrics.Counter(obs.MetricPlannerSemiJoin, obs.Labels{"outcome": obs.OutcomeSemiJoinMixed}).Inc()
			continue
		}
		any = true
	}
	if !any {
		return plans, nil, nil
	}
	// Intersect EligibleConds across every narrowed group: the common
	// condition is the one a merge of narrowed records still lacks.
	var common map[int]bool
	for i := range plans {
		if !narrowable[i] {
			continue
		}
		for _, sj := range plans[i].SemiJoins {
			s := make(map[int]bool, len(sj.EligibleConds))
			for _, j := range sj.EligibleConds {
				s[j] = true
			}
			if common == nil {
				common = s
				continue
			}
			for j := range common {
				if !s[j] {
					delete(common, j)
				}
			}
		}
	}
	if len(common) == 0 {
		metrics.Counter(obs.MetricPlannerSemiJoin, obs.Labels{"outcome": obs.OutcomeSemiJoinNoCommon}).Inc()
		return plans, nil, nil
	}
	keyAttrs = make(map[string]bool)
	for i := range plans {
		if narrowable[i] {
			wave2 = append(wave2, plans[i])
			for _, sj := range plans[i].SemiJoins {
				keyAttrs[strings.ToLower(sj.KeyAttribute)] = true
			}
		} else {
			wave1 = append(wave1, plans[i])
		}
	}
	return wave1, wave2, keyAttrs
}

// addSeed merges the key-attribute values of frags into seed, keyed by
// lowercased attribute ID. The empty string is excluded: an instance
// with no key value never merges, so it can never justify keeping a
// narrowed record.
func addSeed(seed map[string]map[string]bool, keyAttrs map[string]bool, frags []Fragment) {
	for _, f := range frags {
		ka := strings.ToLower(f.AttributeID)
		if !keyAttrs[ka] {
			continue
		}
		set := seed[ka]
		if set == nil {
			set = make(map[string]bool)
			seed[ka] = set
		}
		for _, v := range f.Values {
			if v != "" {
				set[v] = true
			}
		}
	}
}

// narrowPlan builds the per-run narrowed copy of one wave-two plan:
// database groups get a typed IN predicate on the key column (original
// code preserved as fallback), other groups get a key record filter.
// The copy is marked Ephemeral so its run-specific rules bypass the
// rule-result cache. Gate failures degrade per group — an oversized
// seed runs that group unnarrowed, an unsafe SQL value falls back to
// the record filter — and never affect correctness.
func (m *Manager) narrowPlan(p mapping.SourcePlan, seed map[string]map[string]bool, metrics *obs.Registry) mapping.SourcePlan {
	maxVals := m.opts.SemiJoinMaxValues
	if maxVals <= 0 {
		maxVals = DefaultSemiJoinMaxValues
	}
	outcome := func(o string) {
		metrics.Counter(obs.MetricPlannerSemiJoin, obs.Labels{"outcome": o}).Inc()
	}
	out := p
	out.Ephemeral = true
	var filters []mapping.RecordFilter
	copied := false
	for _, sj := range p.SemiJoins {
		keys := seed[strings.ToLower(sj.KeyAttribute)]
		if len(keys) == 0 {
			// No other source produced a single key value: every record of
			// this group merges with nothing and is invisible to the answer.
			filters = append(filters, mapping.RecordFilter{
				Entries: sj.Entries, KeyEntry: sj.KeyEntry, KeyIn: map[string]bool{},
			})
			outcome(obs.OutcomeSemiJoinEmpty)
			continue
		}
		if len(keys) > maxVals {
			outcome(obs.OutcomeSemiJoinCapped)
			continue
		}
		if sj.SQL {
			sorted := make([]string, 0, len(keys))
			for k := range keys {
				sorted = append(sorted, k)
			}
			sort.Strings(sorted)
			narrowed := make(map[int]string, len(sj.Entries))
			ok := true
			for _, ei := range sj.Entries {
				code, good := planner.NarrowSQL(p.Entries[ei].Rule.Code, sj.KeyColumn, sorted)
				if !good {
					ok = false
					break
				}
				narrowed[ei] = code
			}
			// All or nothing: a partially narrowed group would misalign the
			// members' row sets.
			if ok {
				if !copied {
					out.Entries = append([]mapping.Entry(nil), p.Entries...)
					copied = true
				}
				for ei, code := range narrowed {
					if out.Entries[ei].Rule.Fallback == "" {
						out.Entries[ei].Rule.Fallback = out.Entries[ei].Rule.Code
					}
					out.Entries[ei].Rule.Code = code
				}
				outcome(obs.OutcomeSemiJoinSQL)
				continue
			}
		}
		filters = append(filters, mapping.RecordFilter{
			Entries: sj.Entries, KeyEntry: sj.KeyEntry, KeyIn: keys,
		})
		outcome(obs.OutcomeSemiJoinFilter)
	}
	if len(filters) > 0 {
		out.Filters = append(append([]mapping.RecordFilter(nil), p.Filters...), filters...)
	}
	return out
}
