package extract

import (
	"context"
	"strings"
	"testing"

	"repro/internal/datasource"
	"repro/internal/mapping"
	"repro/internal/reldb"
)

// TestTransformNormalizesUnits is the paper's semantic-heterogeneity case
// (§1: sources use "different ... units for concepts"): one source prices
// in euro cents, another in euros, and transforms normalize both to the
// ontology's euros at extraction time.
func TestTransformNormalizesUnits(t *testing.T) {
	w := newWorld(t)

	// A second database that stores prices in cents.
	centsDB := reldb.New()
	centsDB.MustExec("CREATE TABLE items (id INTEGER PRIMARY KEY, cents INTEGER)")
	centsDB.MustExec("INSERT INTO items (id, cents) VALUES (1, 12999), (2, 1500)")
	w.catalog.AddDB("cents-erp", centsDB)
	must(t, w.repo.Sources().Register(datasource.Definition{
		ID: "cents_db", Kind: datasource.KindDatabase, DSN: "cents-erp",
	}))

	// Euros source (the default world DB already stores euros).
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.price", SourceID: "DB_ID_45",
		Rule: mapping.Rule{Code: "SELECT price FROM watches ORDER BY id"},
	})
	// Cents source: normalized by the transform.
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.price", SourceID: "cents_db",
		Rule: mapping.Rule{
			Code:      "SELECT cents FROM items ORDER BY id",
			Transform: "ToString(ToNumber(v) / 100)",
		},
	})

	rs, err := w.manager(Options{}).Extract(context.Background(), []string{"thing.product.price"})
	if err != nil || len(rs.Errors) > 0 {
		t.Fatalf("%v %v", err, rs.Errors)
	}
	bySource := map[string][]string{}
	for _, f := range rs.Fragments {
		bySource[f.SourceID] = append([]string{}, f.Values...)
	}
	if got := bySource["cents_db"]; len(got) != 2 || got[0] != "129.99" || got[1] != "15" {
		t.Fatalf("normalized cents = %v", got)
	}
	if got := bySource["DB_ID_45"]; len(got) != 2 {
		t.Fatalf("euro values = %v", got)
	}
}

func TestTransformStringNormalization(t *testing.T) {
	w := newWorld(t)
	// Vocabulary normalization: the XML feed uses upper-case brand codes.
	w.catalog.XML.MustAdd("codes.xml", "<c><w><b>SEIKO</b></w><w><b>CASIO</b></w></c>")
	must(t, w.repo.Sources().Register(datasource.Definition{
		ID: "codes", Kind: datasource.KindXML, Path: "codes.xml",
	}))
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "codes",
		Rule: mapping.Rule{
			Code:      "//b",
			Transform: `Str_Upper(Select(v, 0, 1)) + Str_Lower(Select(v, 1, Len(v)))`,
		},
	})
	rs, err := w.manager(Options{}).Extract(context.Background(), []string{"thing.product.brand"})
	if err != nil || len(rs.Errors) > 0 {
		t.Fatalf("%v %v", err, rs.Errors)
	}
	got := rs.Fragments[0].Values
	if len(got) != 2 || got[0] != "Seiko" || got[1] != "Casio" {
		t.Fatalf("normalized brands = %v", got)
	}
}

func TestTransformErrors(t *testing.T) {
	w := newWorld(t)
	// Bad transform syntax is rejected at registration.
	err := w.repo.Register(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "xml_7",
		Rule: mapping.Rule{Code: "//brand", Transform: "ToNumber(v"},
	})
	if err == nil || !strings.Contains(err.Error(), "transform") {
		t.Fatalf("bad transform accepted: %v", err)
	}
	// A transform that fails at runtime surfaces as a source error.
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "xml_7",
		Rule: mapping.Rule{Code: "//brand", Transform: "ToNumber(v)"},
	})
	rs, err := w.manager(Options{}).Extract(context.Background(), []string{"thing.product.brand"})
	if err != nil {
		t.Fatal(err)
	}
	// xml_7 holds "Citizen" — not a number.
	if len(rs.Errors) != 1 || !strings.Contains(rs.Errors[0].Error(), "transform") {
		t.Fatalf("errors = %v", rs.Errors)
	}
}

func TestTransformThroughQueryConditions(t *testing.T) {
	// Normalized values must satisfy numeric query conditions end to end.
	w := newWorld(t)
	centsDB := reldb.New()
	centsDB.MustExec("CREATE TABLE items (id INTEGER PRIMARY KEY, b TEXT, cents INTEGER)")
	centsDB.MustExec("INSERT INTO items (id, b, cents) VALUES (1, 'Seiko', 9900), (2, 'Casio', 25000)")
	w.catalog.AddDB("cents2", centsDB)
	must(t, w.repo.Sources().Register(datasource.Definition{
		ID: "cents2", Kind: datasource.KindDatabase, DSN: "cents2",
	}))
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "cents2",
		Rule: mapping.Rule{Code: "SELECT b FROM items ORDER BY id"},
	})
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.price", SourceID: "cents2",
		Rule: mapping.Rule{
			Code:      "SELECT cents FROM items ORDER BY id",
			Transform: "ToString(ToNumber(v) / 100)",
		},
	})
	rs, err := w.manager(Options{}).Extract(context.Background(), []string{
		"thing.product.brand", "thing.product.price",
	})
	if err != nil || len(rs.Errors) > 0 {
		t.Fatalf("%v %v", err, rs.Errors)
	}
	// 9900 cents → 99 euros; 25000 → 250.
	for _, f := range rs.Fragments {
		if f.AttributeID == "thing.product.price" {
			if f.Values[0] != "99" || f.Values[1] != "250" {
				t.Fatalf("prices = %v", f.Values)
			}
		}
	}
}
