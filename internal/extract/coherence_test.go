package extract

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/datasource"
	"repro/internal/mapping"
	"repro/internal/ontology"
	"repro/internal/xmlstore"
)

// countingXML is a DocExtractor that counts backend round trips and can
// delay each one, so concurrent extractions have time to pile up on the
// singleflight leader. It deliberately does not implement the xmlGetter
// fast path: every logical extraction must reach Extract.
type countingXML struct {
	calls atomic.Int64
	delay time.Duration
	docs  *xmlstore.Store
}

func (c *countingXML) Extract(path, expr string) ([]string, error) {
	c.calls.Add(1)
	if c.delay > 0 {
		time.Sleep(c.delay)
	}
	return c.docs.Extract(path, expr)
}

func countingWorld(t *testing.T, delay time.Duration) (*Manager, *countingXML) {
	t.Helper()
	ont := ontology.Paper()
	reg := datasource.NewRegistry()
	catalog := datasource.NewCatalog()
	catalog.XML.MustAdd("catalog.xml", "<catalog><watch><brand>Seiko</brand></watch></catalog>")
	must(t, reg.Register(datasource.Definition{ID: "xml_sf", Kind: datasource.KindXML, Path: "catalog.xml"}))
	repo := mapping.NewRepository(ont, reg)
	repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "xml_sf",
		Rule: mapping.Rule{Code: "/catalog/watch/brand"},
	})
	backend := &countingXML{delay: delay, docs: catalog.XML}
	m := NewManager(repo, Backends{XML: backend}, Options{CacheTTL: time.Minute})
	return m, backend
}

// TestSingleflightDedupesConcurrentFills is the dedup regression test:
// N concurrent extractions of one cold rule must cost exactly one
// backend call — one goroutine leads the cache fill, the rest share its
// result through the singleflight group, and stragglers hit the cache.
func TestSingleflightDedupesConcurrentFills(t *testing.T) {
	m, backend := countingWorld(t, 100*time.Millisecond)
	const workers = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			rs, err := m.Extract(context.Background(), []string{"thing.product.brand"})
			if err != nil {
				t.Error(err)
				return
			}
			if len(rs.Fragments) != 1 || rs.Fragments[0].Values[0] != "Seiko" {
				t.Errorf("fragments = %+v", rs.Fragments)
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := backend.calls.Load(); got != 1 {
		t.Errorf("backend calls = %d, want 1 (singleflight did not collapse the fills)", got)
	}
	// A warm follow-up stays answered from the cache.
	if _, err := m.Extract(context.Background(), []string{"thing.product.brand"}); err != nil {
		t.Fatal(err)
	}
	if got := backend.calls.Load(); got != 1 {
		t.Errorf("backend calls after warm query = %d, want 1", got)
	}
}

// TestInvalidateCacheDropsEverything pins what InvalidateCache must
// flush: compiled rules and cached results both go to zero, and the
// next extraction pays a fresh backend round trip.
func TestInvalidateCacheDropsEverything(t *testing.T) {
	m, backend := countingWorld(t, 0)
	if _, err := m.Extract(context.Background(), []string{"thing.product.brand"}); err != nil {
		t.Fatal(err)
	}
	if m.CompiledRuleCount() == 0 {
		t.Error("no compiled rules after extraction")
	}
	if m.CachedRuleResults() == 0 {
		t.Error("no cached results after extraction")
	}
	if got := backend.calls.Load(); got != 1 {
		t.Fatalf("backend calls = %d, want 1", got)
	}

	m.InvalidateCache()
	if got := m.CompiledRuleCount(); got != 0 {
		t.Errorf("compiled rules after invalidation = %d", got)
	}
	if got := m.CachedRuleResults(); got != 0 {
		t.Errorf("cached results after invalidation = %d", got)
	}
	if _, err := m.Extract(context.Background(), []string{"thing.product.brand"}); err != nil {
		t.Fatal(err)
	}
	if got := backend.calls.Load(); got != 2 {
		t.Errorf("backend calls after invalidation = %d, want 2 (stale cache served?)", got)
	}
}
