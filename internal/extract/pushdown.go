package extract

// This file is the extractor side of query planner v2 (internal/planner):
// the per-query-shape rewrite cache and the record-scoped filter hook
// that extractSource applies to a source's fragments before they enter
// the result set.

import (
	"strconv"
	"strings"

	"repro/internal/mapping"
	"repro/internal/planner"
	"repro/internal/s2sql"
)

// rewriteEntry is one cached planner rewrite.
type rewriteEntry struct {
	plans []mapping.SourcePlan
	stats planner.Stats
}

// rewriteCacheBound caps the rewrite cache; past it the cache is flushed
// wholesale, like the other bounded caches in this package. Query shapes
// are few (distinct class + condition signatures), so the bound exists
// only as a runaway backstop.
const rewriteCacheBound = 256

// plannedRewrite returns the planner's rewrite of plans for qplan,
// cached per query shape. Caching matters twice over: the rewrite
// itself is saved, and the rewritten entries keep stable addresses
// across queries, which the result cache's address-keyed memo
// (cacheKeyFor) relies on. InvalidateCache flushes the cache, so a
// remapped rule can never serve a stale pushed-down plan.
func (m *Manager) plannedRewrite(qplan *s2sql.Plan, attributeIDs []string, plans []mapping.SourcePlan) ([]mapping.SourcePlan, planner.Stats) {
	key := strings.Join(attributeIDs, "\x00") + "\x01" + querySig(qplan)
	m.rewriteMu.RLock()
	e, ok := m.rewrites[key]
	m.rewriteMu.RUnlock()
	if ok {
		return e.plans, e.stats
	}
	res := planner.Rewrite(m.repo.Ontology(), m.repo.ClassKeys(), qplan, plans)
	m.rewriteMu.Lock()
	if m.rewrites == nil || len(m.rewrites) >= rewriteCacheBound {
		m.rewrites = make(map[string]rewriteEntry, 16)
	}
	m.rewrites[key] = rewriteEntry{plans: res.Plans, stats: res.Stats}
	m.rewriteMu.Unlock()
	return res.Plans, res.Stats
}

// querySig is the condition-relevant shape of a query plan: the queried
// class plus each condition's attribute, operator, and literal. Plans
// with equal signatures (and equal attribute lists) rewrite identically.
func querySig(p *s2sql.Plan) string {
	var b strings.Builder
	b.WriteString(p.Class.Name)
	for _, c := range p.Conditions {
		b.WriteByte('\x00')
		b.WriteString(c.Attribute.ID())
		b.WriteByte('\x00')
		b.WriteString(string(c.Op))
		b.WriteByte('\x00')
		b.WriteString(strconv.Itoa(int(c.Value.Kind)))
		b.WriteByte('\x00')
		b.WriteString(c.Value.Text)
	}
	return b.String()
}

// applyRecordFilter drops record positions that fail the filter's
// conditions from the filter group's fragments. fragAt maps entry index
// to position in frags (-1 when the entry produced no fragment — its
// rule failed — in which case the surviving members still correlate
// positionally and are filtered as the partial group).
//
// The evaluation mirrors the instance layer exactly — same value order,
// same existential match, same error semantics via s2sql.EvalCondition —
// and any record whose evaluation would error is kept, so the instance
// generator reports the identical error. Dropping is all-or-nothing per
// record position across every member fragment, preserving the
// positional zip the instance generator performs.
func applyRecordFilter(frags []Fragment, fragAt []int, f mapping.RecordFilter) {
	var idx []int
	for _, ei := range f.Entries {
		if ei >= 0 && ei < len(fragAt) && fragAt[ei] >= 0 {
			idx = append(idx, fragAt[ei])
		}
	}
	if len(idx) == 0 {
		return
	}
	records := 0
	for _, fi := range idx {
		if n := len(frags[fi].Values); n > records {
			records = n
		}
	}
	if records == 0 {
		return
	}
	// Fragments relevant per condition, in fragment (= entry) order, the
	// order the instance layer sees values in.
	condFrags := make([][]int, len(f.Conditions))
	for j, c := range f.Conditions {
		key := strings.ToLower(c.Attribute.ID())
		for _, fi := range idx {
			if strings.ToLower(frags[fi].AttributeID) == key {
				condFrags[j] = append(condFrags[j], fi)
			}
		}
	}
	keep := make([]bool, records)
	kept := 0
	for r := 0; r < records; r++ {
		if keepRecord(frags, condFrags, f.Conditions, r) {
			keep[r] = true
			kept++
		}
	}
	if f.KeyIn != nil {
		// Semi-join narrowing (planner v3, see semijoin.go): a record whose
		// key value no first-wave source produced merges with nothing, and
		// its standalone instance provably fails the residual filter. A
		// position with no key value (failed key rule, short fragment) never
		// merges either. Exact string match, mirroring the merge key; this
		// check cannot error, so no error-keeping applies.
		kfi := -1
		if f.KeyEntry >= 0 && f.KeyEntry < len(fragAt) {
			kfi = fragAt[f.KeyEntry]
		}
		for r := 0; r < records; r++ {
			if !keep[r] {
				continue
			}
			v := ""
			if kfi >= 0 && r < len(frags[kfi].Values) {
				v = frags[kfi].Values[r]
			}
			if v == "" || !f.KeyIn[v] {
				keep[r] = false
				kept--
			}
		}
	}
	if kept == records {
		return
	}
	for _, fi := range idx {
		vals := frags[fi].Values
		// Never filter in place: Values may alias the rule-result cache's
		// stored slice.
		out := make([]string, 0, kept)
		for r, v := range vals {
			if keep[r] {
				out = append(out, v)
			}
		}
		frags[fi].Values = out
	}
}

// keepRecord evaluates one record position against the conditions in
// order, mirroring satisfiesAll/satisfies in internal/instance.
func keepRecord(frags []Fragment, condFrags [][]int, conds []s2sql.PlannedCondition, r int) bool {
	for j, c := range conds {
		matched := false
		for _, fi := range condFrags[j] {
			vals := frags[fi].Values
			if r >= len(vals) {
				continue
			}
			ok, err := s2sql.EvalCondition(vals[r], c)
			if err != nil {
				// The instance layer must reproduce and report this error;
				// keep the record so it can.
				return true
			}
			if ok {
				matched = true
				break
			}
		}
		if !matched {
			return false
		}
	}
	return true
}
