package extract

import (
	"regexp"
	"sync"

	"repro/internal/htmldoc"
	"repro/internal/mapping"
	"repro/internal/reldb"
	"repro/internal/selector"
	"repro/internal/sqllang"
	"repro/internal/webl"
	"repro/internal/xmlpath"
)

// compiledRule holds a rule's pre-compiled artifacts so the hot path
// never re-parses rule text. Exactly one language slot is populated.
//
// Error semantics preserve the uncompiled path byte for byte: WebL,
// selector, and transform compilation always happened in the manager
// (errors are Permanent), so their failures are recorded here and
// surfaced the same way; SQL, XPath, and regex compilation happened
// inside the backend, so a failed compile leaves the slot nil and the
// extractor falls back to the backend's own Extract call, reproducing
// the backend's error text and retry classification.
type compiledRule struct {
	sql   *sqllang.Select
	xpath *xmlpath.Path
	regex *regexp.Regexp

	webl    *webl.Program
	weblErr error

	selector    *selector.Selector
	selectorErr error

	transform    *webl.Program
	transformErr error
}

// compiledKey identifies a rule by everything compilation depends on.
// Source identity is deliberately absent: the same rule text mapped to
// two sources compiles once.
func compiledKey(rule mapping.Rule) string {
	return rule.Language.String() + "\x00" + rule.Code + "\x00" + rule.Transform
}

// compileArtifacts compiles every artifact the rule needs. Pure: same
// rule in, same artifacts out, no I/O.
func compileArtifacts(rule mapping.Rule) *compiledRule {
	cr := &compiledRule{}
	switch rule.Language {
	case mapping.LangSQL:
		if stmt, err := sqllang.Parse(rule.Code); err == nil {
			if sel, ok := stmt.(*sqllang.Select); ok {
				cr.sql = sel
			}
		}
	case mapping.LangXPath:
		if p, err := xmlpath.Compile(rule.Code); err == nil {
			cr.xpath = p
		}
	case mapping.LangRegex:
		if re, err := regexp.Compile(rule.Code); err == nil {
			cr.regex = re
		}
	case mapping.LangWebL:
		cr.webl, cr.weblErr = webl.Compile(rule.Code)
	case mapping.LangSelector:
		cr.selector, cr.selectorErr = selector.Compile(rule.Code)
	}
	cr.transform, cr.transformErr = rule.TransformProgram()
	return cr
}

// compiledCache memoizes compileArtifacts per rule. Compiled programs
// are immutable and every executor takes per-run state (webl.Program
// builds a fresh interpreter per Run), so one artifact serves all
// goroutines. A racing double compile is tolerated — the first stored
// entry wins — because compilation is pure and rare.
type compiledCache struct {
	mu sync.RWMutex
	m  map[string]*compiledRule
}

func (c *compiledCache) get(rule mapping.Rule) *compiledRule {
	key := compiledKey(rule)
	c.mu.RLock()
	cr := c.m[key]
	c.mu.RUnlock()
	if cr != nil {
		return cr
	}
	cr = compileArtifacts(rule)
	c.mu.Lock()
	if existing := c.m[key]; existing != nil {
		cr = existing
	} else {
		if c.m == nil {
			c.m = make(map[string]*compiledRule)
		}
		c.m[key] = cr
	}
	c.mu.Unlock()
	return cr
}

func (c *compiledCache) clear() {
	c.mu.Lock()
	c.m = nil
	c.mu.Unlock()
}

func (c *compiledCache) len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// xmlGetter is the optional backend upgrade the shared-document fast
// path needs for XML sources: access to the parsed document itself
// (*xmlstore.Store implements it). Wrappers that only implement
// DocExtractor (fault injection, remote proxies) keep the legacy
// per-rule Extract path.
type xmlGetter interface {
	Get(id string) (*xmlpath.Node, error)
}

// textGetter is the optional backend upgrade for text sources: raw
// document content (*textsrc.Store implements it).
type textGetter interface {
	Get(id string) (string, error)
}

// runDocs is the per-Extract-run shared document layer: each source
// document is fetched/parsed/resolved at most once per run and shared
// across that run's rules, no matter how many rules read it or how many
// retries they make. Only successes are memoized — failures pass
// through so retry behavior and fault-injection call counts are exactly
// those of the unshared path. Cross-run, concurrent fetches of the same
// page deduplicate through the manager's docFlight singleflight group;
// completed fetches leave no residue there, so document freshness stays
// per run.
type runDocs struct {
	m *Manager

	mu    sync.Mutex
	pages map[string]string        // URL → page content
	html  map[string]*htmldoc.Node // URL → parsed DOM
	xml   map[string]*xmlpath.Node // path → parsed document root
	text  map[string]string        // path → document content
	dbs   map[string]*reldb.DB     // DSN → resolved handle
}

func (m *Manager) newRunDocs() *runDocs {
	return &runDocs{
		m:     m,
		pages: make(map[string]string),
		html:  make(map[string]*htmldoc.Node),
		xml:   make(map[string]*xmlpath.Node),
		text:  make(map[string]string),
		dbs:   make(map[string]*reldb.DB),
	}
}

// page fetches a URL through f, once per run per URL. The fetcher is a
// parameter rather than a field so context-bound fetchers stay scoped
// to the rule that made them.
func (d *runDocs) page(f webl.Fetcher, url string) (string, error) {
	d.mu.Lock()
	if v, ok := d.pages[url]; ok {
		d.mu.Unlock()
		return v, nil
	}
	d.mu.Unlock()
	v, err, _ := d.m.docFlight.Do("page\x00"+url, func() (any, error) {
		return f.Fetch(url)
	})
	if err != nil {
		return "", err
	}
	s := v.(string)
	d.mu.Lock()
	d.pages[url] = s
	d.mu.Unlock()
	return s, nil
}

// htmlRoot returns the parsed DOM of a page, fetching and parsing at
// most once per run.
func (d *runDocs) htmlRoot(f webl.Fetcher, url string) (*htmldoc.Node, error) {
	d.mu.Lock()
	if n, ok := d.html[url]; ok {
		d.mu.Unlock()
		return n, nil
	}
	d.mu.Unlock()
	src, err := d.page(f, url)
	if err != nil {
		return nil, err
	}
	v, _, _ := d.m.docFlight.Do("html\x00"+url, func() (any, error) {
		return htmldoc.Parse(src), nil
	})
	n := v.(*htmldoc.Node)
	d.mu.Lock()
	d.html[url] = n
	d.mu.Unlock()
	return n, nil
}

// xmlRoot resolves a parsed XML document once per run.
func (d *runDocs) xmlRoot(g xmlGetter, path string) (*xmlpath.Node, error) {
	d.mu.Lock()
	if n, ok := d.xml[path]; ok {
		d.mu.Unlock()
		return n, nil
	}
	d.mu.Unlock()
	n, err := g.Get(path)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.xml[path] = n
	d.mu.Unlock()
	return n, nil
}

// textContent resolves a text document once per run.
func (d *runDocs) textContent(g textGetter, path string) (string, error) {
	d.mu.Lock()
	if s, ok := d.text[path]; ok {
		d.mu.Unlock()
		return s, nil
	}
	d.mu.Unlock()
	s, err := g.Get(path)
	if err != nil {
		return "", err
	}
	d.mu.Lock()
	d.text[path] = s
	d.mu.Unlock()
	return s, nil
}

// db resolves a database handle once per run.
func (d *runDocs) db(resolve func(dsn string) (*reldb.DB, error), dsn string) (*reldb.DB, error) {
	d.mu.Lock()
	if h, ok := d.dbs[dsn]; ok {
		d.mu.Unlock()
		return h, nil
	}
	d.mu.Unlock()
	h, err := resolve(dsn)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.dbs[dsn] = h
	d.mu.Unlock()
	return h, nil
}

// memoFetcher routes WebL GetURL calls through the run's shared page
// memo so programs against one page fetch it once per run.
type memoFetcher struct {
	docs *runDocs
	next webl.Fetcher
}

func (f memoFetcher) Fetch(url string) (string, error) { return f.docs.page(f.next, url) }
