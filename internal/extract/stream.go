package extract

// stream.go is the streaming variant of the four-step extraction
// process: instead of materializing one ResultSet, sources yield
// record-scoped fragment batches through a channel as they complete, so
// downstream stages (instance assembly, serialization) can start before
// the slowest source finishes and release fragment windows as they are
// consumed. The materializing Extract/ExtractQuery path is unchanged;
// answers are byte-identical between the two (see docs/STREAMING.md for
// the ordering argument and the knobs).

import (
	"context"
	"errors"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/mapping"
	"repro/internal/obs"
	"repro/internal/s2sql"
)

// DefaultStreamBatchRecords is the record-window size of a streaming
// fragment batch when Options.StreamBatchRecords is 0.
const DefaultStreamBatchRecords = 64

// Batch is one record window of one source's extracted fragments.
type Batch struct {
	// SourceID is the contributing data source.
	SourceID string
	// Seq numbers the source's batches from 0. Per-source diagnostics
	// that would repeat identically in every window (unmapped-attribute
	// errors) are emitted by consumers only for Seq 0.
	Seq int
	// Records is how many of the source's records this window covers.
	Records int
	// Fragments carry the window's values, sorted by attribute ID.
	// Every fragment of the source appears in every window — the
	// instance generator's lineage partition depends on the full
	// attribute sequence — with Values sliced to the window's records
	// (capacity-capped aliases of the extracted values, not copies); a
	// fragment whose records are exhausted carries an empty Values.
	Fragments []Fragment
	// Last marks the source's final window. Every source that ran emits
	// at least one batch: a source with no extractable records still
	// sends a single empty Last batch so consumers observe it complete
	// (and can surface its Seq-0 diagnostics).
	Last bool
}

// StreamTail carries everything that is only known once every source
// has finished.
type StreamTail struct {
	// Errors lists per-source failures, ordered by source then attribute.
	Errors []SourceError
	// Degraded lists serve-stale events, ordered by attribute then source.
	Degraded []Degradation
	// Missing lists requested attributes that have no mapping.
	Missing []string
	// Stats summarizes the run.
	Stats Stats
}

// Stream is a streaming extraction run in progress.
type Stream struct {
	// Batches delivers fragment batches as sources complete. The channel
	// is unbuffered: a slow consumer exerts backpressure on extraction
	// instead of letting fragments pile up. Batches of one source arrive
	// in Seq order; batches of different sources interleave in
	// completion order (consumers needing determinism key their
	// accumulation by SourceID and order at the end — the instance
	// generator does).
	Batches <-chan Batch

	// Sources lists the IDs of every planned source in sorted order —
	// the canonical emission order. The barrier-free consumer
	// (instance.GenerateStreamEager) emits the lowest unemitted source's
	// windows directly and buffers later sources against this list; the
	// barrier consumer ignores it.
	Sources []string

	done chan struct{}
	tail StreamTail
}

// Tail returns the run's errors, degradations, missing attributes, and
// stats. It blocks until the producer finishes, which requires Batches
// to have been drained (the channel is unbuffered) — call it only after
// the Batches channel closed.
func (s *Stream) Tail() *StreamTail {
	<-s.done
	return &s.tail
}

// ExtractQueryStream is ExtractQuery in streaming form: the same
// schema/planner phases run up front (errors there fail fast), then the
// per-source fan-out emits record-scoped fragment batches on the
// returned Stream instead of materializing a ResultSet. The extract
// span records one "stream_batch" event per emitted batch and the
// s2s_stream_batches_total counter counts them per source.
func (m *Manager) ExtractQueryStream(ctx context.Context, qplan *s2sql.Plan) (*Stream, error) {
	if qplan == nil {
		return nil, errors.New("extract: nil query plan")
	}
	return m.extractStream(ctx, qplan.AttributeIDs(), qplan)
}

// ExtractStream is Extract in streaming form (no query plan, so no
// planner rewrite).
func (m *Manager) ExtractStream(ctx context.Context, attributeIDs []string) (*Stream, error) {
	return m.extractStream(ctx, attributeIDs, nil)
}

func (m *Manager) extractStream(ctx context.Context, attributeIDs []string, qplan *s2sql.Plan) (*Stream, error) {
	ctx, espan, edone := obs.StartStage(ctx, "extract")
	metrics := obs.MetricsFromContext(ctx)

	// The deadline budget bounds the whole run, exactly as in extract();
	// it is released when the producer goroutine finishes.
	cancel := context.CancelFunc(func() {})
	if m.opts.QueryBudget > 0 {
		ctx, cancel = context.WithTimeout(ctx, m.opts.QueryBudget)
	}

	start := time.Now()
	plans, missing, err := m.planSchema(ctx, espan, metrics, attributeIDs, qplan)
	if err != nil {
		cancel()
		edone()
		return nil, err
	}

	st := &Stream{done: make(chan struct{})}
	ch := make(chan Batch)
	st.Batches = ch
	st.tail.Missing = missing
	st.tail.Stats.SchemaDuration = time.Since(start)
	st.Sources = make([]string, len(plans))
	for i := range plans {
		st.Sources[i] = plans[i].Source.ID
	}
	sort.Strings(st.Sources)

	batchRecords := m.opts.StreamBatchRecords
	if batchRecords <= 0 {
		batchRecords = DefaultStreamBatchRecords
	}
	docs := m.newRunDocs()
	rm := newRunMetrics(metrics)

	// Cost-based ordering and the semi-join wave split (planner v3)
	// apply to the streaming path identically; see semijoin.go. Batches
	// of wave-two sources simply arrive after wave one completes, which
	// the consumer's by-source accumulation already tolerates.
	shape := ""
	if qplan != nil {
		shape = querySig(qplan)
	}
	plans = m.orderPlans(plans, shape)
	wave1, wave2, keyAttrs := m.splitWaves(plans, false, metrics)

	go func() {
		defer close(st.done)
		defer edone()
		defer cancel()

		extractStart := time.Now()
		var (
			mu      sync.Mutex
			sem     = make(chan struct{}, m.opts.Parallelism)
			covered = make(map[string]bool)
			values  int
			seed    = make(map[string]map[string]bool, len(keyAttrs))
		)
		runWave := func(wavePlans []mapping.SourcePlan, collectSeed bool) {
			var wg sync.WaitGroup
			for _, plan := range wavePlans {
				wg.Add(1)
				go func(plan mapping.SourcePlan) {
					defer wg.Done()
					select {
					case sem <- struct{}{}:
						defer func() { <-sem }()
					case <-ctx.Done():
						metrics.Counter(obs.MetricSourceExtractTotal,
							obs.Labels{"source": plan.Source.ID, "outcome": "canceled"}).Inc()
						mu.Lock()
						st.tail.Errors = append(st.tail.Errors, SourceError{SourceID: plan.Source.ID, Err: ctx.Err()})
						mu.Unlock()
						return
					}
					sctx := obs.ContextWithSpan(ctx, espan.StartChild("source:"+plan.Source.ID))
					srcStart := time.Now()
					frags, errs, run := m.extractSource(sctx, plan, docs, rm)
					m.observeSource(plan, errs, run, time.Since(srcStart), shape)
					mu.Lock()
					st.tail.Errors = append(st.tail.Errors, errs...)
					st.tail.Degraded = append(st.tail.Degraded, run.degraded...)
					st.tail.Stats.Retries += run.retries
					st.tail.Stats.CacheHits += run.cacheHits
					st.tail.Stats.StaleServes += len(run.degraded)
					for _, f := range frags {
						covered[f.AttributeID] = true
						values += len(f.Values)
					}
					if collectSeed {
						addSeed(seed, keyAttrs, frags)
					}
					mu.Unlock()
					m.sendBatches(ctx, ch, espan, metrics, plan.Source.ID, frags, batchRecords)
				}(plan)
			}
			wg.Wait()
		}
		runWave(wave1, len(wave2) > 0)
		if len(wave2) > 0 {
			narrowed := make([]mapping.SourcePlan, len(wave2))
			for i := range wave2 {
				narrowed[i] = m.narrowPlan(wave2[i], seed, metrics)
			}
			espan.SetAttr("semijoin_wave2", strconv.Itoa(len(narrowed)))
			runWave(narrowed, false)
		}
		close(ch)

		st.tail.Stats.ExtractDuration = time.Since(extractStart)
		st.tail.Stats.SourcesContacted = len(plans)
		st.tail.Stats.ValuesExtracted = values

		// Failover marking needs only attribute coverage, not the
		// fragments themselves; give it a coverage-only view.
		view := &ResultSet{Errors: st.tail.Errors}
		view.Fragments = make([]Fragment, 0, len(covered))
		for a := range covered {
			view.Fragments = append(view.Fragments, Fragment{AttributeID: a})
		}
		m.markFailovers(view, plans, metrics, espan)
		st.tail.Errors = view.Errors

		sort.Slice(st.tail.Errors, func(i, j int) bool {
			if st.tail.Errors[i].SourceID != st.tail.Errors[j].SourceID {
				return st.tail.Errors[i].SourceID < st.tail.Errors[j].SourceID
			}
			return st.tail.Errors[i].AttributeID < st.tail.Errors[j].AttributeID
		})
		sort.Slice(st.tail.Degraded, func(i, j int) bool {
			if st.tail.Degraded[i].AttributeID != st.tail.Degraded[j].AttributeID {
				return st.tail.Degraded[i].AttributeID < st.tail.Degraded[j].AttributeID
			}
			return st.tail.Degraded[i].SourceID < st.tail.Degraded[j].SourceID
		})
	}()
	return st, nil
}

// sendBatches windows one source's fragments into record-scoped batches
// and sends them in Seq order. Within one source the materializing
// path's global (attribute, source) fragment sort reduces to an
// attribute sort, so sorting here keeps windowed assembly and the
// materializing path byte-identical. Values are aliased, never copied.
// Sends abort when ctx is done (the consumer has given up).
func (m *Manager) sendBatches(ctx context.Context, ch chan<- Batch, espan *obs.Span, metrics *obs.Registry, sourceID string, frags []Fragment, batchRecords int) {
	sort.SliceStable(frags, func(i, j int) bool { return frags[i].AttributeID < frags[j].AttributeID })
	records := 0
	for _, f := range frags {
		if len(f.Values) > records {
			records = len(f.Values)
		}
	}
	batches := 1
	if records > batchRecords {
		batches = (records + batchRecords - 1) / batchRecords
	}
	counter := metrics.Counter(obs.MetricStreamBatches, obs.Labels{"source": sourceID})
	for seq := 0; seq < batches; seq++ {
		lo := seq * batchRecords
		hi := lo + batchRecords
		if hi > records {
			hi = records
		}
		b := Batch{SourceID: sourceID, Seq: seq, Records: hi - lo, Last: seq == batches-1}
		if len(frags) > 0 {
			b.Fragments = make([]Fragment, len(frags))
			for i, f := range frags {
				wlo, whi := lo, hi
				if wlo > len(f.Values) {
					wlo = len(f.Values)
				}
				if whi > len(f.Values) {
					whi = len(f.Values)
				}
				f.Values = f.Values[wlo:whi:whi]
				b.Fragments[i] = f
			}
		}
		select {
		case ch <- b:
		case <-ctx.Done():
			return
		}
		counter.Inc()
		espan.AddEvent("stream_batch", map[string]string{
			"source":    sourceID,
			"seq":       strconv.Itoa(seq),
			"records":   strconv.Itoa(b.Records),
			"fragments": strconv.Itoa(len(b.Fragments)),
		})
	}
}
