package extract

import "errors"

// permanentError marks a failure that retrying cannot fix: a rule that
// does not compile, a result set without the configured column, a backend
// that is not wired up. The extractor fails fast on these instead of
// burning its retry budget (autonomous-source outages are retriable;
// mapping mistakes are not).
type permanentError struct {
	err error
}

func (e permanentError) Error() string { return e.err.Error() }

// Unwrap exposes the underlying error so errors.Is/As keep working
// through the marker.
func (e permanentError) Unwrap() error { return e.err }

// Permanent marks err as non-retriable. A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return permanentError{err: err}
}

// IsPermanent reports whether err (anywhere in its wrap chain) was marked
// non-retriable with Permanent.
func IsPermanent(err error) bool {
	var p permanentError
	return errors.As(err, &p)
}
