package extract

// batch.go is the multi-query extraction scatter behind the /query/batch
// endpoint: N planned queries run as one extraction pass that shares the
// per-run document layer (each source document fetched/parsed once for
// the whole batch, not once per query), one parallelism semaphore (the
// Options.Parallelism bound caps concurrent source contacts across the
// batch, not per query), and one deadline budget. Each query otherwise
// runs the full four-step process independently — its own schema,
// planner rewrite, wave split, failover marking, and canonical sort — so
// every per-query ResultSet is byte-identical to what a standalone
// ExtractQuery of the same plan would return; only wall-clock and
// duplicate document work differ.

import (
	"context"
	"errors"
	"sync"

	"repro/internal/s2sql"
)

// sharedRun is the state one extraction batch holds in common across
// its per-query runs; extract() substitutes it for the corresponding
// per-run state when non-nil.
type sharedRun struct {
	docs *runDocs
	sem  chan struct{}
}

// ExtractQueryBatch runs every plan's extraction as one shared pass and
// returns per-plan result sets and errors, both aligned with qplans.
// A failing query (nil plan, schema error) occupies its slot in errs
// without affecting its siblings, mirroring N independent ExtractQuery
// calls. The per-query "extract" spans all attach to ctx's span, so a
// batch trace shows the scatter side by side.
func (m *Manager) ExtractQueryBatch(ctx context.Context, qplans []*s2sql.Plan) ([]*ResultSet, []error) {
	results := make([]*ResultSet, len(qplans))
	errs := make([]error, len(qplans))
	if len(qplans) == 0 {
		return results, errs
	}

	// One deadline budget bounds the whole batch (extract() skips its
	// own when handed a shared run): the batch is one client request,
	// and a per-query budget would let N queries hold sources N times
	// longer than a single request may.
	if m.opts.QueryBudget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, m.opts.QueryBudget)
		defer cancel()
	}

	shared := &sharedRun{
		docs: m.newRunDocs(),
		sem:  make(chan struct{}, m.opts.Parallelism),
	}
	var wg sync.WaitGroup
	for i, qp := range qplans {
		if qp == nil {
			errs[i] = errors.New("extract: nil query plan")
			continue
		}
		wg.Add(1)
		go func(i int, qp *s2sql.Plan) {
			defer wg.Done()
			results[i], errs[i] = m.extract(ctx, qp.AttributeIDs(), qp, nil, shared)
		}(i, qp)
	}
	wg.Wait()
	return results, errs
}
