package extract

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/datasource"
	"repro/internal/mapping"
	"repro/internal/ontology"
	"repro/internal/reldb"
)

// testWorld wires the paper's four source kinds with overlapping watch data.
type testWorld struct {
	repo    *mapping.Repository
	catalog *datasource.Catalog
}

func newWorld(t *testing.T) *testWorld {
	t.Helper()
	ont := ontology.Paper()
	reg := datasource.NewRegistry()
	catalog := datasource.NewCatalog()

	// Database source: n-record watches table.
	db := reldb.New()
	db.MustExec("CREATE TABLE watches (id INTEGER PRIMARY KEY, brand TEXT, model TEXT, watch_case TEXT, price REAL)")
	db.MustExec(`INSERT INTO watches (id, brand, model, watch_case, price) VALUES
		(1, 'Seiko', 'Dive Auto', 'stainless-steel', 129.99),
		(2, 'Casio', 'F91W', 'resin', 15.0)`)
	catalog.AddDB("inventory", db)
	must(t, reg.Register(datasource.Definition{ID: "DB_ID_45", Kind: datasource.KindDatabase, DSN: "inventory"}))

	// XML source.
	catalog.XML.MustAdd("catalog.xml", `<catalog>
		<watch><brand>Citizen</brand><model>EcoDrive</model><case>titanium</case></watch>
	</catalog>`)
	must(t, reg.Register(datasource.Definition{ID: "xml_7", Kind: datasource.KindXML, Path: "catalog.xml"}))

	// Web source: the paper's page.
	catalog.AddPage("http://www.eshop.com/products/watches.html",
		`<html><body><p><b>Seiko Men's Automatic Dive Watch</b></p></body></html>`)
	must(t, reg.Register(datasource.Definition{ID: "wpage_81", Kind: datasource.KindWeb, URL: "http://www.eshop.com/products/watches.html"}))

	// Text source.
	catalog.Text.MustAdd("providers.txt", "provider name=TimeHouse country=JP\n")
	must(t, reg.Register(datasource.Definition{ID: "txt_2", Kind: datasource.KindText, Path: "providers.txt"}))

	repo := mapping.NewRepository(ont, reg)
	return &testWorld{repo: repo, catalog: catalog}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func (w *testWorld) manager(opts Options) *Manager {
	return NewManager(w.repo, FromCatalog(w.catalog), opts)
}

const paperWebLRule = `
var P = GetURL("http://www.eshop.com/products/watches.html")
var pText = Text(P)
var regexpr = "<p><b>" + "[0-9a-zA-Z']+"
var St = Str_Search(pText, regexpr)
var spliter = Str_Split(St[0][0], "<>")
var brand = Select(spliter[2], 0, 6)
`

func TestExtractAllFourKinds(t *testing.T) {
	w := newWorld(t)
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "DB_ID_45",
		Rule: mapping.Rule{Code: "SELECT brand FROM watches ORDER BY id"},
	})
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "xml_7",
		Rule: mapping.Rule{Code: "/catalog/watch/brand"},
	})
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "wpage_81",
		Rule: mapping.Rule{Code: paperWebLRule}, Scenario: mapping.SingleRecord,
	})
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.provider.name", SourceID: "txt_2",
		Rule: mapping.Rule{Code: `name=([A-Za-z]+)`},
	})

	rs, err := w.manager(Options{}).Extract(context.Background(), []string{
		"thing.product.brand", "thing.provider.name",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Errors) != 0 {
		t.Fatalf("errors: %v", rs.Errors)
	}
	if len(rs.Fragments) != 4 {
		t.Fatalf("fragments = %+v", rs.Fragments)
	}
	byKey := map[string][]string{}
	for _, f := range rs.Fragments {
		byKey[f.AttributeID+"|"+f.SourceID] = f.Values
	}
	if got := byKey["thing.product.brand|DB_ID_45"]; len(got) != 2 || got[0] != "Seiko" || got[1] != "Casio" {
		t.Errorf("db brands = %v", got)
	}
	if got := byKey["thing.product.brand|xml_7"]; len(got) != 1 || got[0] != "Citizen" {
		t.Errorf("xml brands = %v", got)
	}
	if got := byKey["thing.product.brand|wpage_81"]; len(got) != 1 || strings.TrimSpace(got[0]) != "Seiko" {
		t.Errorf("web brand = %v", got)
	}
	if got := byKey["thing.provider.name|txt_2"]; len(got) != 1 || got[0] != "TimeHouse" {
		t.Errorf("text provider = %v", got)
	}
	if rs.Stats.SourcesContacted != 4 || rs.Stats.ValuesExtracted != 5 {
		t.Errorf("stats = %+v", rs.Stats)
	}
}

func TestExtractMissingAttributes(t *testing.T) {
	w := newWorld(t)
	rs, err := w.manager(Options{}).Extract(context.Background(), []string{"thing.product.price"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Missing) != 1 || rs.Missing[0] != "thing.product.price" {
		t.Errorf("missing = %v", rs.Missing)
	}
	if len(rs.Fragments) != 0 {
		t.Errorf("fragments = %+v", rs.Fragments)
	}
}

func TestExtractSQLColumnSelection(t *testing.T) {
	w := newWorld(t)
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.model", SourceID: "DB_ID_45",
		Rule: mapping.Rule{Code: "SELECT brand, model FROM watches ORDER BY id", Column: "model"},
	})
	rs, err := w.manager(Options{}).Extract(context.Background(), []string{"thing.product.model"})
	if err != nil || len(rs.Errors) > 0 {
		t.Fatalf("%v %v", err, rs.Errors)
	}
	if got := rs.Fragments[0].Values; got[0] != "Dive Auto" || got[1] != "F91W" {
		t.Errorf("models = %v", got)
	}
}

func TestExtractSQLColumnMissing(t *testing.T) {
	w := newWorld(t)
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.model", SourceID: "DB_ID_45",
		Rule: mapping.Rule{Code: "SELECT brand FROM watches", Column: "nosuch"},
	})
	rs, err := w.manager(Options{}).Extract(context.Background(), []string{"thing.product.model"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Errors) != 1 || !strings.Contains(rs.Errors[0].Error(), "nosuch") {
		t.Fatalf("errors = %v", rs.Errors)
	}
}

func TestExtractSingleRecordViolation(t *testing.T) {
	w := newWorld(t)
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "DB_ID_45",
		Rule:     mapping.Rule{Code: "SELECT brand FROM watches"},
		Scenario: mapping.SingleRecord,
	})
	rs, err := w.manager(Options{}).Extract(context.Background(), []string{"thing.product.brand"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Errors) != 1 || !strings.Contains(rs.Errors[0].Error(), "single-record") {
		t.Fatalf("errors = %v", rs.Errors)
	}
}

func TestExtractSourceFailureIsIsolated(t *testing.T) {
	w := newWorld(t)
	// Working XML mapping plus a web mapping whose page does not exist.
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "xml_7",
		Rule: mapping.Rule{Code: "/catalog/watch/brand"},
	})
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.model", SourceID: "wpage_81",
		Rule: mapping.Rule{Code: `var model = Text(GetURL("http://nope.example/x"))`},
	})
	rs, err := w.manager(Options{}).Extract(context.Background(), []string{
		"thing.product.brand", "thing.product.model",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Fragments) != 1 || rs.Fragments[0].Values[0] != "Citizen" {
		t.Errorf("fragments = %+v", rs.Fragments)
	}
	if len(rs.Errors) != 1 || rs.Errors[0].SourceID != "wpage_81" {
		t.Errorf("errors = %v", rs.Errors)
	}
}

func TestExtractRetries(t *testing.T) {
	w := newWorld(t)
	// A flaky fetcher that fails twice then succeeds.
	fails := 2
	backends := FromCatalog(w.catalog)
	inner := backends.Pages
	backends.Pages = fetcherFunc(func(url string) (string, error) {
		if fails > 0 {
			fails--
			return "", fmt.Errorf("transient network failure")
		}
		return inner.Fetch(url)
	})
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "wpage_81",
		Rule: mapping.Rule{Code: paperWebLRule}, Scenario: mapping.SingleRecord,
	})
	m := NewManager(w.repo, backends, Options{Retries: 3})
	rs, err := m.Extract(context.Background(), []string{"thing.product.brand"})
	if err != nil || len(rs.Errors) > 0 {
		t.Fatalf("%v %v", err, rs.Errors)
	}
	if rs.Stats.Retries != 2 {
		t.Errorf("retries = %d, want 2", rs.Stats.Retries)
	}
}

type fetcherFunc func(url string) (string, error)

func (f fetcherFunc) Fetch(url string) (string, error) { return f(url) }

func TestExtractTimeout(t *testing.T) {
	w := newWorld(t)
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "wpage_81",
		Rule: mapping.Rule{Code: `
var i = 0
while true { i = i + 1 }
var brand = "never"
`},
	})
	m := w.manager(Options{Timeout: 20 * time.Millisecond, WebLMaxSteps: 1 << 40})
	// Guard: even with an effectively unlimited WebL budget, the source
	// timeout fires.
	done := make(chan struct{})
	var rs *ResultSet
	var err error
	go func() {
		rs, err = m.Extract(context.Background(), []string{"thing.product.brand"})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("extraction did not respect timeout")
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Errors) != 1 || !strings.Contains(rs.Errors[0].Error(), "deadline") {
		t.Fatalf("errors = %v", rs.Errors)
	}
}

func TestExtractContextCancellation(t *testing.T) {
	w := newWorld(t)
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "xml_7",
		Rule: mapping.Rule{Code: "/catalog/watch/brand"},
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rs, err := w.manager(Options{}).Extract(ctx, []string{"thing.product.brand"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Errors) == 0 {
		t.Fatal("cancelled context produced no errors")
	}
}

func TestExtractParallelismMatchesSequentialResults(t *testing.T) {
	w := newWorld(t)
	// Many XML sources.
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("gen_xml_%02d", i)
		path := fmt.Sprintf("gen%02d.xml", i)
		w.catalog.XML.MustAdd(path, fmt.Sprintf("<c><w><brand>B%02d</brand></w></c>", i))
		must(t, w.repo.Sources().Register(datasource.Definition{ID: id, Kind: datasource.KindXML, Path: path}))
		w.repo.MustRegister(mapping.Entry{
			AttributeID: "thing.product.brand", SourceID: id,
			Rule: mapping.Rule{Code: "//brand"},
		})
	}
	seq, err := w.manager(Options{Parallelism: 1}).Extract(context.Background(), []string{"thing.product.brand"})
	if err != nil {
		t.Fatal(err)
	}
	par, err := w.manager(Options{Parallelism: 16}).Extract(context.Background(), []string{"thing.product.brand"})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Fragments) != 20 || len(par.Fragments) != len(seq.Fragments) {
		t.Fatalf("fragments: seq=%d par=%d", len(seq.Fragments), len(par.Fragments))
	}
	for i := range seq.Fragments {
		if seq.Fragments[i].SourceID != par.Fragments[i].SourceID ||
			seq.Fragments[i].Values[0] != par.Fragments[i].Values[0] {
			t.Fatalf("fragment %d differs: %+v vs %+v", i, seq.Fragments[i], par.Fragments[i])
		}
	}
}

func TestExtractSelectorRule(t *testing.T) {
	w := newWorld(t)
	w.catalog.AddPage("http://shop.example/list.html", `<html><body>
<div class="item"><b class="brand">Seiko</b></div>
<div class="item"><b class="brand">Casio</b></div>
</body></html>`)
	must(t, w.repo.Sources().Register(datasource.Definition{
		ID: "sel_shop", Kind: datasource.KindWeb, URL: "http://shop.example/list.html",
	}))
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "sel_shop",
		Rule: mapping.Rule{Language: mapping.LangSelector, Code: "div.item > b.brand::text"},
	})
	rs, err := w.manager(Options{}).Extract(context.Background(), []string{"thing.product.brand"})
	if err != nil || len(rs.Errors) > 0 {
		t.Fatalf("%v %v", err, rs.Errors)
	}
	if got := rs.Fragments[0].Values; len(got) != 2 || got[0] != "Seiko" || got[1] != "Casio" {
		t.Fatalf("selector values = %v", got)
	}
}

func TestSelectorRuleRejectedOnNonWebSource(t *testing.T) {
	w := newWorld(t)
	err := w.repo.Register(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "DB_ID_45",
		Rule: mapping.Rule{Language: mapping.LangSelector, Code: "div.item"},
	})
	if err == nil {
		t.Fatal("selector rule accepted on a database source")
	}
}

func TestWebSourceAcceptsBothLanguages(t *testing.T) {
	w := newWorld(t)
	// WebL and selector rules on the same web source, different attributes.
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "wpage_81",
		Rule: mapping.Rule{Code: paperWebLRule}, Scenario: mapping.SingleRecord,
	})
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.model", SourceID: "wpage_81",
		Rule: mapping.Rule{Language: mapping.LangSelector, Code: "p > b::text"},
	})
	rs, err := w.manager(Options{}).Extract(context.Background(), []string{
		"thing.product.brand", "thing.product.model",
	})
	if err != nil || len(rs.Errors) > 0 {
		t.Fatalf("%v %v", err, rs.Errors)
	}
	if len(rs.Fragments) != 2 {
		t.Fatalf("fragments = %+v", rs.Fragments)
	}
}

func TestRuleCache(t *testing.T) {
	w := newWorld(t)
	fetches := 0
	backends := FromCatalog(w.catalog)
	inner := backends.Pages
	backends.Pages = fetcherFunc(func(url string) (string, error) {
		fetches++
		return inner.Fetch(url)
	})
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "wpage_81",
		Rule: mapping.Rule{Code: paperWebLRule}, Scenario: mapping.SingleRecord,
	})
	m := NewManager(w.repo, backends, Options{CacheTTL: time.Hour})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		rs, err := m.Extract(ctx, []string{"thing.product.brand"})
		if err != nil || len(rs.Errors) > 0 {
			t.Fatalf("%v %v", err, rs.Errors)
		}
		if got := strings.TrimSpace(rs.Fragments[0].Values[0]); got != "Seiko" {
			t.Fatalf("cached value = %q", got)
		}
	}
	if fetches != 1 {
		t.Fatalf("fetches = %d, want 1 (cache hit afterwards)", fetches)
	}
	// Invalidation forces a re-fetch.
	m.InvalidateCache()
	if _, err := m.Extract(ctx, []string{"thing.product.brand"}); err != nil {
		t.Fatal(err)
	}
	if fetches != 2 {
		t.Fatalf("fetches after invalidate = %d, want 2", fetches)
	}
}

func TestRuleCacheTTLExpiry(t *testing.T) {
	w := newWorld(t)
	fetches := 0
	backends := FromCatalog(w.catalog)
	inner := backends.Pages
	backends.Pages = fetcherFunc(func(url string) (string, error) {
		fetches++
		return inner.Fetch(url)
	})
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "wpage_81",
		Rule: mapping.Rule{Code: paperWebLRule}, Scenario: mapping.SingleRecord,
	})
	m := NewManager(w.repo, backends, Options{CacheTTL: time.Nanosecond})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := m.Extract(ctx, []string{"thing.product.brand"}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	if fetches != 3 {
		t.Fatalf("fetches = %d, want 3 (TTL expired each time)", fetches)
	}
}

func TestWeblValueToStrings(t *testing.T) {
	if got, err := weblValueToStrings("x"); err != nil || len(got) != 1 {
		t.Errorf("string: %v %v", got, err)
	}
	if got, err := weblValueToStrings(nil); err != nil || len(got) != 0 {
		t.Errorf("nil: %v %v", got, err)
	}
	if got, err := weblValueToStrings(float64(3)); err != nil || got[0] != "3" {
		t.Errorf("number: %v %v", got, err)
	}
	if got, err := weblValueToStrings(true); err != nil || got[0] != "true" {
		t.Errorf("bool: %v %v", got, err)
	}
}

func TestSourceErrorFormatting(t *testing.T) {
	e := SourceError{SourceID: "s", AttributeID: "a", Err: fmt.Errorf("boom")}
	if !strings.Contains(e.Error(), "s") || !strings.Contains(e.Error(), "a") {
		t.Errorf("Error() = %q", e.Error())
	}
	e2 := SourceError{SourceID: "s", Err: fmt.Errorf("boom")}
	if !strings.Contains(e2.Error(), "boom") {
		t.Errorf("Error() = %q", e2.Error())
	}
}
