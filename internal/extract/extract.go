// Package extract implements the S2S Extractor Manager (paper §2.4), "the
// main section of the S2S middleware". Given the attribute list the query
// handler produced, it executes the four-step extraction process of Figure 5:
//
//  1. Know what data to extract — the attribute list (input).
//  2. Obtain extraction schema — the attribute repository returns each
//     attribute's extraction rules.
//  3. Obtain data source information — each rule's source definition is
//     fetched from the data source repository.
//  4. Extract data — a specific extractor is delegated per data source type
//     (web wrapper, database extractor, XPath extractor, text extractor),
//     rules are executed, and the raw data fragments are handed to the
//     instance generator.
//
// The paper is silent about concurrency; this implementation fans out
// across data sources with bounded parallelism, per-source timeouts, and
// bounded retries, and reports per-source failures without aborting the
// whole extraction (autonomous sources fail independently).
package extract

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/datasource"
	"repro/internal/mapping"
	"repro/internal/obs"
	"repro/internal/reldb"
	"repro/internal/selector"
	"repro/internal/textsrc"
	"repro/internal/webl"
	"repro/internal/xmlstore"
)

// Fragment is one chunk of extracted raw data: the values one rule produced
// for one attribute from one source, in record order.
type Fragment struct {
	AttributeID string
	SourceID    string
	Scenario    mapping.Scenario
	Values      []string
}

// SourceError records one extraction failure. Failures are data, not
// aborts: the instance generator reports them alongside the instances it
// could build (paper §2.6).
type SourceError struct {
	SourceID    string
	AttributeID string
	Err         error
}

func (e SourceError) Error() string {
	if e.AttributeID != "" {
		return fmt.Sprintf("source %s, attribute %s: %v", e.SourceID, e.AttributeID, e.Err)
	}
	return fmt.Sprintf("source %s: %v", e.SourceID, e.Err)
}

// Unwrap exposes the underlying error.
func (e SourceError) Unwrap() error { return e.Err }

// Stats describes one extraction run.
type Stats struct {
	// SourcesContacted is the number of data sources extraction ran
	// against.
	SourcesContacted int
	// ValuesExtracted counts raw values across all fragments.
	ValuesExtracted int
	// SchemaDuration covers steps 2-3 (extraction schema + source
	// definitions).
	SchemaDuration time.Duration
	// ExtractDuration covers step 4 (rule execution).
	ExtractDuration time.Duration
	// Retries counts rule re-executions after transient failures.
	Retries int
	// CacheHits counts rules answered from the rule-result cache.
	CacheHits int
}

// ResultSet is the raw output of one extraction run.
type ResultSet struct {
	// Fragments hold the extracted values, ordered by attribute then source.
	Fragments []Fragment
	// Errors lists per-source failures.
	Errors []SourceError
	// Missing lists requested attributes that have no mapping.
	Missing []string
	// Stats summarizes the run.
	Stats Stats
}

// Backends resolves source definitions to live content. In the paper's
// deployment these reach remote autonomous systems; the datasource.Catalog
// provides in-process equivalents and the transport package HTTP-backed
// ones.
type Backends struct {
	// Pages fetches web page content by URL.
	Pages webl.Fetcher
	// XML resolves Definition.Path for XML sources.
	XML *xmlstore.Store
	// Text resolves Definition.Path for plain-text sources.
	Text *textsrc.Store
	// DB resolves Definition.DSN for database sources.
	DB func(dsn string) (*reldb.DB, error)
}

// FromCatalog builds backends over an in-process source catalog.
func FromCatalog(c *datasource.Catalog) Backends {
	return Backends{Pages: c, XML: c.XML, Text: c.Text, DB: c.DB}
}

// Options tune the manager.
type Options struct {
	// Parallelism bounds concurrent source extractions; 0 means
	// DefaultParallelism, 1 forces sequential extraction.
	Parallelism int
	// Timeout bounds each source's total extraction time; 0 means
	// DefaultTimeout.
	Timeout time.Duration
	// Retries is how many times a failed rule execution is retried.
	Retries int
	// WebLMaxSteps caps WebL program execution; 0 uses the webl default.
	WebLMaxSteps int
	// SimulatedLatency, when positive, sleeps once per source before its
	// rules run. The paper's data sources are remote autonomous systems; the
	// in-process catalog answers in microseconds, so benchmarks use this
	// knob to model the network round trip a real deployment pays per
	// source (see DESIGN.md substitutions).
	SimulatedLatency time.Duration
	// CacheTTL, when positive, caches rule results per (source, rule) for
	// that duration. The paper notes sources "do not normally change their
	// structures"; values change more often, so caching trades freshness
	// for latency and is off by default. InvalidateCache drops it.
	CacheTTL time.Duration
	// Breaker configures the per-source circuit breaker; the zero value
	// disables it.
	Breaker BreakerOptions
}

// Defaults for Options.
const (
	DefaultParallelism = 8
	DefaultTimeout     = 10 * time.Second
)

// Manager coordinates extraction across the registered data sources.
type Manager struct {
	repo     *mapping.Repository
	backends Backends
	opts     Options

	cacheMu sync.Mutex
	cache   map[string]cacheEntry

	breaker *breaker
}

type cacheEntry struct {
	values []string
	at     time.Time
}

// NewManager builds an extractor manager over an attribute repository and
// content backends.
func NewManager(repo *mapping.Repository, backends Backends, opts Options) *Manager {
	if opts.Parallelism <= 0 {
		opts.Parallelism = DefaultParallelism
	}
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultTimeout
	}
	m := &Manager{repo: repo, backends: backends, opts: opts, breaker: newBreaker(opts.Breaker)}
	if opts.CacheTTL > 0 {
		m.cache = make(map[string]cacheEntry)
	}
	return m
}

// InvalidateCache drops every cached rule result.
func (m *Manager) InvalidateCache() {
	if m.cache == nil {
		return
	}
	m.cacheMu.Lock()
	m.cache = make(map[string]cacheEntry)
	m.cacheMu.Unlock()
}

func cacheKey(def datasource.Definition, entry mapping.Entry) string {
	return def.ID + "\x00" + entry.Rule.Language.String() + "\x00" + entry.Rule.Code + "\x00" + entry.Rule.Column
}

func (m *Manager) cacheGet(key string) ([]string, bool) {
	m.cacheMu.Lock()
	defer m.cacheMu.Unlock()
	e, ok := m.cache[key]
	if !ok || time.Since(e.at) > m.opts.CacheTTL {
		return nil, false
	}
	return e.values, true
}

func (m *Manager) cachePut(key string, values []string) {
	m.cacheMu.Lock()
	m.cache[key] = cacheEntry{values: values, at: time.Now()}
	m.cacheMu.Unlock()
}

// Extract runs the four-step process for the given attribute list. When
// ctx carries an obs span and metrics registry (the middleware query
// path injects both), the run emits an "extract" span with one
// "source:<id>" child per contacted source and per-source counters and
// latency histograms.
func (m *Manager) Extract(ctx context.Context, attributeIDs []string) (*ResultSet, error) {
	ctx, espan, edone := obs.StartStage(ctx, "extract")
	defer edone()
	metrics := obs.MetricsFromContext(ctx)
	rs := &ResultSet{}

	// Steps 2-3: extraction schema + data source definitions.
	start := time.Now()
	_, sspan, sdone := obs.StartStage(ctx, "extraction_schema")
	plans, missing, err := m.repo.Schema(attributeIDs)
	sdone()
	if err != nil {
		return nil, fmt.Errorf("extract: obtaining extraction schema: %w", err)
	}
	sspan.SetAttr("sources", strconv.Itoa(len(plans)))
	espan.SetAttr("sources", strconv.Itoa(len(plans)))
	rs.Missing = missing
	rs.Stats.SchemaDuration = time.Since(start)

	// Step 4: delegate a specific extractor per source, concurrently.
	extractStart := time.Now()
	var (
		mu  sync.Mutex
		wg  sync.WaitGroup
		sem = make(chan struct{}, m.opts.Parallelism)
	)
	for _, plan := range plans {
		wg.Add(1)
		go func(plan mapping.SourcePlan) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				metrics.Counter(obs.MetricSourceExtractTotal,
					obs.Labels{"source": plan.Source.ID, "outcome": "canceled"}).Inc()
				mu.Lock()
				rs.Errors = append(rs.Errors, SourceError{SourceID: plan.Source.ID, Err: ctx.Err()})
				mu.Unlock()
				return
			}
			sctx := obs.ContextWithSpan(ctx, espan.StartChild("source:"+plan.Source.ID))
			frags, errs, run := m.extractSource(sctx, plan)
			mu.Lock()
			rs.Fragments = append(rs.Fragments, frags...)
			rs.Errors = append(rs.Errors, errs...)
			rs.Stats.Retries += run.retries
			rs.Stats.CacheHits += run.cacheHits
			mu.Unlock()
		}(plan)
	}
	wg.Wait()

	rs.Stats.ExtractDuration = time.Since(extractStart)
	rs.Stats.SourcesContacted = len(plans)
	for _, f := range rs.Fragments {
		rs.Stats.ValuesExtracted += len(f.Values)
	}
	sort.Slice(rs.Fragments, func(i, j int) bool {
		if rs.Fragments[i].AttributeID != rs.Fragments[j].AttributeID {
			return rs.Fragments[i].AttributeID < rs.Fragments[j].AttributeID
		}
		return rs.Fragments[i].SourceID < rs.Fragments[j].SourceID
	})
	sort.Slice(rs.Errors, func(i, j int) bool {
		if rs.Errors[i].SourceID != rs.Errors[j].SourceID {
			return rs.Errors[i].SourceID < rs.Errors[j].SourceID
		}
		return rs.Errors[i].AttributeID < rs.Errors[j].AttributeID
	})
	return rs, nil
}

// sourceRun summarizes one source's extraction pass.
type sourceRun struct {
	retries   int
	cacheHits int
}

// extractSource runs every rule of one source plan under the per-source
// timeout, honoring the circuit breaker. The span and metrics registry
// carried by ctx (if any) receive the per-source annotations: kind,
// outcome, retries, cache hits, and breaker state.
func (m *Manager) extractSource(ctx context.Context, plan mapping.SourcePlan) (frags []Fragment, errs []SourceError, run sourceRun) {
	span := obs.SpanFromContext(ctx)
	metrics := obs.MetricsFromContext(ctx)
	srcLabels := obs.Labels{"source": plan.Source.ID}
	start := time.Now()
	outcome := "ok"
	defer func() {
		span.SetAttr("kind", plan.Source.Kind.String())
		span.SetAttr("outcome", outcome)
		span.SetAttr("retries", strconv.Itoa(run.retries))
		if m.cache != nil {
			span.SetAttr("cache_hits", strconv.Itoa(run.cacheHits))
		}
		span.End()
		metrics.Counter(obs.MetricSourceExtractTotal,
			obs.Labels{"source": plan.Source.ID, "outcome": outcome}).Inc()
		metrics.Histogram(obs.MetricSourceExtractDuration, srcLabels).Observe(time.Since(start).Seconds())
		metrics.Counter(obs.MetricSourceRetries, srcLabels).Add(uint64(run.retries))
	}()

	if !m.breaker.allow(plan.Source.ID) {
		outcome = "breaker_open"
		span.SetAttr("breaker", "open")
		return nil, []SourceError{{
			SourceID: plan.Source.ID,
			Err:      errCircuitOpen{sourceID: plan.Source.ID, retryAt: m.breaker.retryAt(plan.Source.ID)},
		}}, run
	}

	ctx, cancel := context.WithTimeout(ctx, m.opts.Timeout)
	defer cancel()

	if m.opts.SimulatedLatency > 0 {
		select {
		case <-time.After(m.opts.SimulatedLatency):
		case <-ctx.Done():
			outcome = "canceled"
			return nil, []SourceError{{SourceID: plan.Source.ID, Err: ctx.Err()}}, run
		}
	}

	anyFailed := false
	for _, entry := range plan.Entries {
		values, tries, cached, err := m.runRuleWithRetry(ctx, plan.Source, entry)
		run.retries += tries
		if cached {
			run.cacheHits++
		}
		if err != nil {
			anyFailed = true
			errs = append(errs, SourceError{SourceID: plan.Source.ID, AttributeID: entry.AttributeID, Err: err})
			continue
		}
		if entry.Scenario == mapping.SingleRecord && len(values) > 1 {
			errs = append(errs, SourceError{
				SourceID:    plan.Source.ID,
				AttributeID: entry.AttributeID,
				Err: fmt.Errorf("extract: single-record source produced %d values for %s",
					len(values), entry.AttributeID),
			})
			continue
		}
		frags = append(frags, Fragment{
			AttributeID: entry.AttributeID,
			SourceID:    plan.Source.ID,
			Scenario:    entry.Scenario,
			Values:      values,
		})
	}
	if anyFailed {
		outcome = "error"
	}
	if m.breaker.report(plan.Source.ID, anyFailed) {
		span.SetAttr("breaker", "tripped")
		metrics.Counter(obs.MetricBreakerTrips, srcLabels).Inc()
	}
	return frags, errs, run
}

func (m *Manager) runRuleWithRetry(ctx context.Context, def datasource.Definition, entry mapping.Entry) (values []string, retries int, cacheHit bool, err error) {
	var key string
	if m.cache != nil {
		key = cacheKey(def, entry)
		if cached, ok := m.cacheGet(key); ok {
			obs.MetricsFromContext(ctx).Counter(obs.MetricCacheLookups, obs.Labels{"outcome": "hit"}).Inc()
			return cached, 0, true, nil
		}
		obs.MetricsFromContext(ctx).Counter(obs.MetricCacheLookups, obs.Labels{"outcome": "miss"}).Inc()
	}
	for attempt := 0; ; attempt++ {
		values, err = m.runRule(ctx, def, entry)
		if err == nil {
			if m.cache != nil {
				m.cachePut(key, values)
			}
			return values, attempt, false, nil
		}
		if attempt >= m.opts.Retries || ctx.Err() != nil {
			return values, attempt, false, err
		}
	}
}

// runRule delegates to the extractor for the source's kind, then applies
// the rule's value transform, if any.
func (m *Manager) runRule(ctx context.Context, def datasource.Definition, entry mapping.Entry) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	type outcome struct {
		values []string
		err    error
	}
	ch := make(chan outcome, 1)
	go func() {
		var o outcome
		switch def.Kind {
		case datasource.KindDatabase:
			o.values, o.err = m.extractDB(def, entry)
		case datasource.KindXML:
			o.values, o.err = m.extractXML(def, entry)
		case datasource.KindWeb:
			o.values, o.err = m.extractWeb(ctx, def, entry)
		case datasource.KindText:
			o.values, o.err = m.extractText(def, entry)
		default:
			o.err = fmt.Errorf("extract: no extractor for source kind %d", int(def.Kind))
		}
		if o.err == nil {
			o.values, o.err = applyTransform(entry.Rule, o.values)
		}
		ch <- o
	}()
	select {
	case o := <-ch:
		return o.values, o.err
	case <-ctx.Done():
		return nil, fmt.Errorf("extract: source %s: %w", def.ID, ctx.Err())
	}
}

// applyTransform normalizes each extracted value through the rule's WebL
// transform expression (with the raw value bound to v).
func applyTransform(rule mapping.Rule, values []string) ([]string, error) {
	prog, err := rule.TransformProgram()
	if err != nil || prog == nil {
		return values, err
	}
	out := make([]string, len(values))
	for i, raw := range values {
		globals, err := prog.Run(&webl.Env{Globals: map[string]webl.Value{"v": raw}})
		if err != nil {
			return nil, fmt.Errorf("extract: transform of %q: %w", raw, err)
		}
		transformed, err := weblValueToStrings(globals["result"])
		if err != nil {
			return nil, err
		}
		if len(transformed) != 1 {
			return nil, fmt.Errorf("extract: transform of %q produced %d values, want 1", raw, len(transformed))
		}
		out[i] = transformed[0]
	}
	return out, nil
}

// extractDB runs a SQL rule and projects the configured column as strings.
func (m *Manager) extractDB(def datasource.Definition, entry mapping.Entry) ([]string, error) {
	if m.backends.DB == nil {
		return nil, errors.New("extract: no database backend configured")
	}
	db, err := m.backends.DB(def.DSN)
	if err != nil {
		return nil, err
	}
	res, err := db.Query(entry.Rule.Code)
	if err != nil {
		return nil, err
	}
	col := 0
	if entry.Rule.Column != "" {
		col = -1
		for i, name := range res.Columns {
			if strings.EqualFold(name, entry.Rule.Column) {
				col = i
				break
			}
		}
		if col < 0 {
			return nil, fmt.Errorf("extract: result of %q has no column %q", entry.Rule.Code, entry.Rule.Column)
		}
	}
	if len(res.Columns) == 0 {
		return nil, fmt.Errorf("extract: rule %q projected no columns", entry.Rule.Code)
	}
	values := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		if row[col].Null {
			values = append(values, "")
			continue
		}
		values = append(values, row[col].String())
	}
	return values, nil
}

func (m *Manager) extractXML(def datasource.Definition, entry mapping.Entry) ([]string, error) {
	if m.backends.XML == nil {
		return nil, errors.New("extract: no XML backend configured")
	}
	return m.backends.XML.Extract(def.Path, entry.Rule.Code)
}

func (m *Manager) extractText(def datasource.Definition, entry mapping.Entry) ([]string, error) {
	if m.backends.Text == nil {
		return nil, errors.New("extract: no text backend configured")
	}
	return m.backends.Text.Extract(def.Path, entry.Rule.Code)
}

// ContextFetcher is an optional upgrade of webl.Fetcher: a page backend
// that accepts the request context, so trace identifiers propagate to
// remote web sources (transport.HTTPFetcher implements it by forwarding
// the trace/span ID headers).
type ContextFetcher interface {
	FetchContext(ctx context.Context, url string) (string, error)
}

// ctxBoundFetcher adapts a ContextFetcher to the context-free
// webl.Fetcher interface by capturing the per-rule context.
type ctxBoundFetcher struct {
	ctx context.Context
	cf  ContextFetcher
}

func (f ctxBoundFetcher) Fetch(url string) (string, error) { return f.cf.FetchContext(f.ctx, url) }

// extractWeb delegates by rule language: WebL programs run in the
// interpreter; CSS selector rules fetch the page and extract directly.
func (m *Manager) extractWeb(ctx context.Context, def datasource.Definition, entry mapping.Entry) ([]string, error) {
	if m.backends.Pages == nil {
		return nil, errors.New("extract: no web backend configured")
	}
	pages := m.backends.Pages
	if cf, ok := pages.(ContextFetcher); ok {
		pages = ctxBoundFetcher{ctx: ctx, cf: cf}
	}
	if entry.Rule.Language == mapping.LangSelector {
		sel, err := selector.Compile(entry.Rule.Code)
		if err != nil {
			return nil, err
		}
		html, err := pages.Fetch(def.URL)
		if err != nil {
			return nil, err
		}
		return sel.ExtractHTML(html), nil
	}
	prog, err := webl.Compile(entry.Rule.Code)
	if err != nil {
		return nil, err
	}
	globals, err := prog.Run(&webl.Env{Fetcher: pages, MaxSteps: m.opts.WebLMaxSteps})
	if err != nil {
		return nil, err
	}
	var candidates []string
	if entry.Rule.Column != "" {
		candidates = []string{entry.Rule.Column}
	} else {
		simple := entry.AttributeID
		if idx := strings.LastIndexByte(simple, '.'); idx >= 0 {
			simple = simple[idx+1:]
		}
		candidates = []string{simple, "result"}
	}
	for _, name := range candidates {
		v, ok := globals[name]
		if !ok {
			continue
		}
		return weblValueToStrings(v)
	}
	return nil, fmt.Errorf("extract: webl rule defines none of %v", candidates)
}

func weblValueToStrings(v webl.Value) ([]string, error) {
	switch t := v.(type) {
	case nil:
		return nil, nil
	case string:
		return []string{t}, nil
	case []webl.Value:
		out := make([]string, 0, len(t))
		for _, e := range t {
			sub, err := weblValueToStrings(e)
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
		}
		return out, nil
	case float64, bool:
		sub, err := weblValueToStrings(fmt.Sprintf("%v", t))
		if err != nil {
			return nil, err
		}
		return sub, nil
	case *webl.Page:
		return nil, fmt.Errorf("extract: webl rule produced a page, not a value")
	default:
		return nil, fmt.Errorf("extract: webl rule produced unsupported value %T", v)
	}
}
