// Package extract implements the S2S Extractor Manager (paper §2.4), "the
// main section of the S2S middleware". Given the attribute list the query
// handler produced, it executes the four-step extraction process of Figure 5:
//
//  1. Know what data to extract — the attribute list (input).
//  2. Obtain extraction schema — the attribute repository returns each
//     attribute's extraction rules.
//  3. Obtain data source information — each rule's source definition is
//     fetched from the data source repository.
//  4. Extract data — a specific extractor is delegated per data source type
//     (web wrapper, database extractor, XPath extractor, text extractor),
//     rules are executed, and the raw data fragments are handed to the
//     instance generator.
//
// The paper is silent about concurrency; this implementation fans out
// across data sources with bounded parallelism, per-source timeouts, and
// bounded retries, and reports per-source failures without aborting the
// whole extraction (autonomous sources fail independently).
package extract

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"math/rand"

	"repro/internal/datasource"
	"repro/internal/mapping"
	"repro/internal/obs"
	"repro/internal/planner"
	"repro/internal/reldb"
	"repro/internal/s2sql"
	"repro/internal/singleflight"
	"repro/internal/stats"
	"repro/internal/textsrc"
	"repro/internal/webl"
)

// Fragment is one chunk of extracted raw data: the values one rule produced
// for one attribute from one source, in record order.
type Fragment struct {
	AttributeID string
	SourceID    string
	Scenario    mapping.Scenario
	Values      []string
	// Degraded marks a fragment served from an expired cache entry after
	// live extraction failed (graceful degradation: stale beats nothing
	// when a partner source is down).
	Degraded bool
	// Stale is the age of the served cache entry when Degraded is set.
	Stale time.Duration
}

// SourceError records one extraction failure. Failures are data, not
// aborts: the instance generator reports them alongside the instances it
// could build (paper §2.6).
type SourceError struct {
	SourceID    string
	AttributeID string
	Err         error
	// Failover reports that every attribute this failure cost was still
	// served by at least one alternate source mapped to it, so the query
	// lost redundancy, not data.
	Failover bool
}

func (e SourceError) Error() string {
	suffix := ""
	if e.Failover {
		suffix = " (failover: attribute served by an alternate source)"
	}
	if e.AttributeID != "" {
		return fmt.Sprintf("source %s, attribute %s: %v%s", e.SourceID, e.AttributeID, e.Err, suffix)
	}
	return fmt.Sprintf("source %s: %v%s", e.SourceID, e.Err, suffix)
}

// Degradation records one serve-stale event: an attribute answered from
// an expired cache entry because live extraction failed.
type Degradation struct {
	SourceID    string
	AttributeID string
	// Stale is the age of the cache entry served in place of live data.
	Stale time.Duration
	// Err is the live extraction failure that forced the stale serve.
	Err error
}

func (d Degradation) String() string {
	return fmt.Sprintf("source %s, attribute %s: served %s-stale cached values (live extraction failed: %v)",
		d.SourceID, d.AttributeID, d.Stale.Round(time.Millisecond), d.Err)
}

// Unwrap exposes the underlying error.
func (e SourceError) Unwrap() error { return e.Err }

// Stats describes one extraction run.
type Stats struct {
	// SourcesContacted is the number of data sources extraction ran
	// against.
	SourcesContacted int
	// ValuesExtracted counts raw values across all fragments.
	ValuesExtracted int
	// SchemaDuration covers steps 2-3 (extraction schema + source
	// definitions).
	SchemaDuration time.Duration
	// ExtractDuration covers step 4 (rule execution).
	ExtractDuration time.Duration
	// Retries counts rule re-executions after transient failures.
	Retries int
	// CacheHits counts rules answered from the rule-result cache.
	CacheHits int
	// StaleServes counts rules answered from expired cache entries after
	// live extraction failed (see ResultSet.Degraded for details).
	StaleServes int
}

// ResultSet is the raw output of one extraction run.
type ResultSet struct {
	// Fragments hold the extracted values, ordered by attribute then source.
	Fragments []Fragment
	// Errors lists per-source failures.
	Errors []SourceError
	// Degraded lists the serve-stale events behind fragments whose
	// Degraded flag is set, ordered like Fragments.
	Degraded []Degradation
	// Missing lists requested attributes that have no mapping.
	Missing []string
	// Stats summarizes the run.
	Stats Stats
}

// DocExtractor resolves a document path and an extraction expression to
// values; *xmlstore.Store and *textsrc.Store implement it, and wrappers
// (fault injection, remote stores) can interpose.
type DocExtractor interface {
	Extract(path, expr string) ([]string, error)
}

// Backends resolves source definitions to live content. In the paper's
// deployment these reach remote autonomous systems; the datasource.Catalog
// provides in-process equivalents and the transport package HTTP-backed
// ones. Every field is an interface (or func) so chaos and proxy layers
// can wrap any backend uniformly (internal/faultinject does).
type Backends struct {
	// Pages fetches web page content by URL.
	Pages webl.Fetcher
	// XML resolves Definition.Path for XML sources.
	XML DocExtractor
	// Text resolves Definition.Path for plain-text sources.
	Text DocExtractor
	// DB resolves Definition.DSN for database sources.
	DB func(dsn string) (*reldb.DB, error)
}

// FromCatalog builds backends over an in-process source catalog.
func FromCatalog(c *datasource.Catalog) Backends {
	return Backends{Pages: c, XML: c.XML, Text: c.Text, DB: c.DB}
}

// Options tune the manager.
type Options struct {
	// Parallelism bounds concurrent source extractions; 0 means
	// DefaultParallelism, 1 forces sequential extraction.
	Parallelism int
	// RuleParallelism bounds concurrent rule executions within one
	// source's plan; 0 means DefaultRuleParallelism, 1 runs a source's
	// rules sequentially. Results keep the plan's deterministic entry
	// order regardless of the setting, and the per-run shared document
	// layer guarantees concurrent rules still fetch and parse each
	// source document once.
	RuleParallelism int
	// Timeout bounds each source's total extraction time; 0 means
	// DefaultTimeout.
	Timeout time.Duration
	// QueryBudget bounds one whole extraction run: a deadline budget
	// shared by every source, so a single slow partner cannot consume the
	// query's entire time. It layers under the caller's context deadline
	// and over the per-source Timeout. 0 means no budget.
	QueryBudget time.Duration
	// Retries is how many times a failed rule execution is retried.
	// Failures marked Permanent (rule-compile errors, missing columns,
	// unconfigured backends) are never retried.
	Retries int
	// RetryBackoff is the base delay of the full-jitter exponential
	// backoff between retry attempts: each attempt sleeps a uniformly
	// random duration in [0, min(RetryBackoffCap, RetryBackoff<<attempt)).
	// 0 means DefaultRetryBackoff; negative disables backoff (tight-loop
	// retries, useful in tests).
	RetryBackoff time.Duration
	// RetryBackoffCap caps a single backoff sleep; 0 means
	// DefaultRetryBackoffCap.
	RetryBackoffCap time.Duration
	// WebLMaxSteps caps WebL program execution; 0 uses the webl default.
	WebLMaxSteps int
	// SimulatedLatency, when positive, sleeps once per source before its
	// rules run. The paper's data sources are remote autonomous systems; the
	// in-process catalog answers in microseconds, so benchmarks use this
	// knob to model the network round trip a real deployment pays per
	// source (see DESIGN.md substitutions).
	SimulatedLatency time.Duration
	// CacheTTL, when positive, caches rule results per (source, rule) for
	// that duration. The paper notes sources "do not normally change their
	// structures"; values change more often, so caching trades freshness
	// for latency and is off by default. InvalidateCache drops it.
	// Expired entries are kept for serve-stale degradation (see
	// ServeStale) until InvalidateCache.
	CacheTTL time.Duration
	// DisableServeStale turns off graceful degradation from the rule
	// cache. By default (with CacheTTL > 0), when live extraction of a
	// rule fails after retries, an expired cache entry is served instead
	// and the fragment is marked Degraded with its staleness age.
	DisableServeStale bool
	// Breaker configures the per-source circuit breaker; the zero value
	// disables it.
	Breaker BreakerOptions
	// DisablePushdown turns off the query planner's predicate pushdown
	// and projection pruning (internal/planner). By default, ExtractQuery
	// rewrites the extraction schema per query: source groups that cannot
	// satisfy the WHERE conditions are pruned before any rule runs,
	// record-scoped filters drop failing records at the source boundary,
	// and database groups get the constraints appended to their generated
	// SQL. The instance layer re-applies every condition regardless, so
	// this knob trades only latency, never answers (benchmarks compare
	// both paths; see docs/PERFORMANCE.md).
	DisablePushdown bool
	// Streaming switches the middleware query path to the streaming
	// pipeline: extraction yields record-scoped fragment batches
	// (ExtractQueryStream), the instance generator consumes them as they
	// arrive, and serialization flushes incrementally through a bounded
	// chunk buffer. Answers are byte-identical to the materializing path;
	// the knob trades only peak memory. See docs/STREAMING.md.
	Streaming bool
	// StreamBatchRecords is the record-window size of a streaming
	// fragment batch; 0 means DefaultStreamBatchRecords. Smaller batches
	// lower peak memory and raise per-batch overhead.
	StreamBatchRecords int
	// DisableEagerStream turns off barrier-free emission on the
	// streaming path: even when the planner proves a query merge-free,
	// the middleware keeps the ordering barrier. Off by default (eager
	// emission is used whenever proved and the format supports it);
	// bytes are identical either way — the knob exists for A/B
	// measurement (BenchmarkE21FirstInstance) and incident rollback,
	// like DisablePushdown and DisableSemiJoin.
	DisableEagerStream bool
	// DisableSemiJoin turns off cross-source semi-join narrowing
	// (planner v3). By default, source plans the planner marked
	// narrowable are deferred to a second extraction wave and restricted
	// to the class-key values the first wave actually produced, so a
	// selective query reads far fewer rows from large keyed sources. The
	// instance layer re-applies every condition regardless, so the knob
	// trades only latency, never answers. Cost-based source ordering is
	// unaffected.
	DisableSemiJoin bool
	// SemiJoinMaxValues caps the number of distinct key values pushed
	// into a narrowed rule; past it the plan runs unnarrowed (a huge IN
	// list would cost more than it saves). 0 means
	// DefaultSemiJoinMaxValues.
	SemiJoinMaxValues int
}

// Defaults for Options.
const (
	DefaultParallelism       = 8
	DefaultRuleParallelism   = 4
	DefaultTimeout           = 10 * time.Second
	DefaultRetryBackoff      = 20 * time.Millisecond
	DefaultRetryBackoffCap   = 2 * time.Second
	DefaultSemiJoinMaxValues = 64
)

// Manager coordinates extraction across the registered data sources.
type Manager struct {
	repo     *mapping.Repository
	backends Backends
	opts     Options

	// cache is the sharded rule-result cache; nil unless CacheTTL > 0.
	cache *shardedCache
	// compiled memoizes per-rule compiled artifacts (always on:
	// compilation is pure, so there is no freshness to trade).
	compiled compiledCache
	// flight deduplicates concurrent fills of one rule-cache key;
	// docFlight deduplicates concurrent fetches of one source document.
	flight    singleflight.Group
	docFlight singleflight.Group

	breaker *breaker

	// srcMetricsMu guards the memoized per-source metric handles: the
	// labels maps and series lookups for a source's steady-state metrics
	// are resolved once per (registry, source), not once per query.
	srcMetricsMu  sync.Mutex
	srcMetricsFor map[string]srcMetrics
	srcMetricsReg *obs.Registry

	// keyMemoMu guards keyMemo; see cacheKeyFor.
	keyMemoMu sync.RWMutex
	keyMemo   map[*mapping.Entry]string

	// rewriteMu guards rewrites, the bounded per-query-shape cache of
	// planner rewrites (see plannedRewrite in pushdown.go). Caching the
	// rewritten plans also keeps their entry addresses stable, which
	// cacheKeyFor's address memo depends on.
	rewriteMu sync.RWMutex
	rewrites  map[string]rewriteEntry

	// srcStats is the per-source statistics registry feeding cost-based
	// source ordering (planner v3): cardinality, per-query-shape
	// selectivity, and latency, decayed exponentially. It survives
	// InvalidateCache — observed source behavior stays valid when
	// mappings change — and is reset only explicitly.
	srcStats *stats.Registry

	// sleep and randFloat are the backoff hooks; tests inject a recording
	// sleep and a deterministic rand to assert jittered delays exactly.
	// sleep returns false when ctx expired before the delay elapsed.
	sleep     func(ctx context.Context, d time.Duration) bool
	randMu    sync.Mutex
	randFloat func() float64
}

// NewManager builds an extractor manager over an attribute repository and
// content backends.
func NewManager(repo *mapping.Repository, backends Backends, opts Options) *Manager {
	if opts.Parallelism <= 0 {
		opts.Parallelism = DefaultParallelism
	}
	if opts.RuleParallelism <= 0 {
		opts.RuleParallelism = DefaultRuleParallelism
	}
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultTimeout
	}
	if opts.RetryBackoff == 0 {
		opts.RetryBackoff = DefaultRetryBackoff
	}
	if opts.RetryBackoffCap <= 0 {
		opts.RetryBackoffCap = DefaultRetryBackoffCap
	}
	m := &Manager{repo: repo, backends: backends, opts: opts, breaker: newBreaker(opts.Breaker), srcStats: stats.New()}
	if opts.CacheTTL > 0 {
		m.cache = newShardedCache(opts.CacheTTL)
	}
	m.sleep = sleepCtx
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	m.randFloat = rng.Float64
	return m
}

// sleepCtx sleeps for d unless ctx expires first; it reports whether the
// full delay elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// backoffDelay returns the full-jitter exponential backoff before retry
// attempt (0-based): uniform in [0, min(cap, base<<attempt)).
func (m *Manager) backoffDelay(attempt int) time.Duration {
	base := m.opts.RetryBackoff
	if base < 0 {
		return 0
	}
	ceil := m.opts.RetryBackoffCap
	if attempt < 62 { // avoid shift overflow
		if scaled := base << uint(attempt); scaled < ceil {
			ceil = scaled
		}
	}
	m.randMu.Lock()
	f := m.randFloat()
	m.randMu.Unlock()
	return time.Duration(f * float64(ceil))
}

// InvalidateCache drops every cached rule result and every compiled
// rule artifact. The middleware calls it whenever mappings, sources, or
// class keys change, so a remapped rule can never serve results (or
// compiled code) from its previous registration.
func (m *Manager) InvalidateCache() {
	m.compiled.clear()
	if m.cache != nil {
		m.cache.clear()
	}
	m.keyMemoMu.Lock()
	m.keyMemo = nil
	m.keyMemoMu.Unlock()
	m.rewriteMu.Lock()
	m.rewrites = nil
	m.rewriteMu.Unlock()
}

// keyMemoBound caps the result-cache key memo; past it the memo is
// flushed wholesale, like the other bounded caches in this package.
const keyMemoBound = 4096

// cacheKeyFor is cacheKey memoized by entry address. Schema plans are
// cached by the mapping repository and shared across queries, so an
// Entry's address identifies its contents for as long as the memo holds
// it (the map key itself keeps the backing array alive, so the address
// cannot be recycled for a different entry while referenced).
func (m *Manager) cacheKeyFor(def datasource.Definition, entry *mapping.Entry) string {
	m.keyMemoMu.RLock()
	k, ok := m.keyMemo[entry]
	m.keyMemoMu.RUnlock()
	if ok {
		return k
	}
	k = cacheKey(def, *entry)
	m.keyMemoMu.Lock()
	if m.keyMemo == nil || len(m.keyMemo) >= keyMemoBound {
		m.keyMemo = make(map[*mapping.Entry]string, 64)
	}
	m.keyMemo[entry] = k
	m.keyMemoMu.Unlock()
	return k
}

// srcMetrics is one source's steady-state metric handles.
type srcMetrics struct {
	okTotal  *obs.Counter   // extract total, outcome "ok"
	duration *obs.Histogram // extract duration
	retries  *obs.Counter   // retry count
}

// sourceMetrics resolves (and memoizes) a source's steady-state metric
// handles against reg. A registry change — tests wiring a fresh one —
// resets the memo; every handle is nil-safe when reg is nil.
func (m *Manager) sourceMetrics(reg *obs.Registry, sourceID string) srcMetrics {
	m.srcMetricsMu.Lock()
	defer m.srcMetricsMu.Unlock()
	if m.srcMetricsReg != reg || m.srcMetricsFor == nil {
		m.srcMetricsReg = reg
		m.srcMetricsFor = make(map[string]srcMetrics)
	}
	sm, ok := m.srcMetricsFor[sourceID]
	if !ok {
		sm = srcMetrics{
			okTotal:  reg.Counter(obs.MetricSourceExtractTotal, obs.Labels{"source": sourceID, "outcome": "ok"}),
			duration: reg.Histogram(obs.MetricSourceExtractDuration, obs.Labels{"source": sourceID}),
			retries:  reg.Counter(obs.MetricSourceRetries, obs.Labels{"source": sourceID}),
		}
		m.srcMetricsFor[sourceID] = sm
	}
	return sm
}

// CompiledRuleCount reports how many distinct rules currently hold
// compiled artifacts (ops introspection; coherence tests assert it
// drops to zero on invalidation).
func (m *Manager) CompiledRuleCount() int { return m.compiled.len() }

// CachedRuleResults reports how many rule results (fresh or stale) the
// result cache currently holds; 0 when caching is off.
func (m *Manager) CachedRuleResults() int {
	if m.cache == nil {
		return 0
	}
	return m.cache.len()
}

func cacheKey(def datasource.Definition, entry mapping.Entry) string {
	return def.ID + "\x00" + entry.Rule.Language.String() + "\x00" + entry.Rule.Code + "\x00" + entry.Rule.Column
}

// Extract runs the four-step process for the given attribute list. When
// ctx carries an obs span and metrics registry (the middleware query
// path injects both), the run emits an "extract" span with one
// "source:<id>" child per contacted source and per-source counters and
// latency histograms.
func (m *Manager) Extract(ctx context.Context, attributeIDs []string) (*ResultSet, error) {
	return m.extract(ctx, attributeIDs, nil, nil, nil)
}

// ExtractQuery is Extract with the full query plan in hand: before the
// sources are contacted, the query planner (internal/planner) rewrites
// the extraction schema against the plan's WHERE conditions — pruning
// source groups that provably cannot contribute, attaching record-scoped
// filters, and pushing string constraints into generated SQL. Disabled
// by Options.DisablePushdown; the rewrite is cached per query shape and
// flushed by InvalidateCache.
func (m *Manager) ExtractQuery(ctx context.Context, qplan *s2sql.Plan) (*ResultSet, error) {
	if qplan == nil {
		return nil, errors.New("extract: nil query plan")
	}
	return m.extract(ctx, qplan.AttributeIDs(), qplan, nil, nil)
}

// ExtractQuerySources is ExtractQuery restricted to the given source
// IDs: the full schema (planner rewrite included) is computed as usual,
// then only the plans of the listed sources are executed, in the order
// given (so a coordinator's cost-ordering hint survives partitioned
// dispatch). The cluster's scatter-gather path uses it so each node
// extracts exactly the sources it owns; because the restriction is
// applied after the planner rewrite, the union of the per-node fragment
// sets is identical to one unrestricted run. Failover marking is
// skipped — a restricted run cannot see fragments other nodes produced
// — so the coordinator must re-mark the merged result set with
// MarkFailovers.
func (m *Manager) ExtractQuerySources(ctx context.Context, qplan *s2sql.Plan, sourceIDs []string) (*ResultSet, error) {
	if qplan == nil {
		return nil, errors.New("extract: nil query plan")
	}
	if sourceIDs == nil {
		sourceIDs = []string{}
	}
	return m.extract(ctx, qplan.AttributeIDs(), qplan, sourceIDs, nil)
}

// extract runs the four-step process. A non-nil restrict list limits
// execution to the named sources in the given order (after schema
// planning and the planner rewrite) and suppresses failover marking,
// which needs the global fragment view. A non-nil shared run replaces
// the per-run document layer, parallelism semaphore, and deadline
// budget with ones a batch of concurrent runs holds in common (see
// ExtractQueryBatch); everything else — schema, planner rewrite, wave
// split, canonical sort — stays per run, so a shared-run result set is
// identical to a standalone one.
func (m *Manager) extract(ctx context.Context, attributeIDs []string, qplan *s2sql.Plan, restrict []string, shared *sharedRun) (*ResultSet, error) {
	ctx, espan, edone := obs.StartStage(ctx, "extract")
	defer edone()
	metrics := obs.MetricsFromContext(ctx)
	rs := &ResultSet{}

	// The deadline budget bounds the whole run; per-source timeouts nest
	// under it, so one slow source cannot consume the query's time. A
	// shared run's budget is applied once by the batch entry point.
	if m.opts.QueryBudget > 0 && shared == nil {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, m.opts.QueryBudget)
		defer cancel()
	}

	// Steps 2-3: extraction schema + data source definitions.
	start := time.Now()
	plans, missing, err := m.planSchema(ctx, espan, metrics, attributeIDs, qplan)
	if err != nil {
		return nil, err
	}
	rs.Missing = missing
	rs.Stats.SchemaDuration = time.Since(start)

	// Cost-based ordering (planner v3): the sources of an unrestricted
	// run execute cheapest-most-selective first per the stats registry.
	// Restricted runs instead preserve the caller's order — the cluster
	// coordinator already ordered each node's scatter list.
	shape := ""
	if qplan != nil {
		shape = querySig(qplan)
	}
	if restrict == nil {
		plans = m.orderPlans(plans, shape)
	} else {
		byID := make(map[string]int, len(plans))
		for i := range plans {
			byID[plans[i].Source.ID] = i
		}
		kept := plans[:0:0]
		seen := make(map[string]bool, len(restrict))
		for _, id := range restrict {
			if seen[id] {
				continue
			}
			seen[id] = true
			if i, ok := byID[id]; ok {
				kept = append(kept, plans[i])
			}
		}
		plans = kept
		espan.SetAttr("sources_restricted", strconv.Itoa(len(plans)))
	}

	// Pre-size the fragment slice to the plan's rule count: the common
	// all-sources-healthy run appends exactly one fragment per entry.
	totalEntries := 0
	for _, p := range plans {
		totalEntries += len(p.Entries)
	}
	rs.Fragments = make([]Fragment, 0, totalEntries)

	// Per-run shared state: the document layer (each source document is
	// fetched/parsed once per run, shared across rules) and memoized
	// cache-lookup counters (resolved once, not per rule). A batch run
	// widens the document layer's scope to the whole batch.
	docs := m.newRunDocs()
	if shared != nil {
		docs = shared.docs
	}
	rm := newRunMetrics(metrics)

	// Semi-join split (planner v3): narrowable plans defer to a second
	// wave restricted to the key values the first wave produced.
	wave1, wave2, keyAttrs := m.splitWaves(plans, restrict != nil, metrics)

	// Step 4: delegate a specific extractor per source, concurrently.
	extractStart := time.Now()
	var (
		mu  sync.Mutex
		sem = make(chan struct{}, m.opts.Parallelism)
	)
	if shared != nil {
		sem = shared.sem
	}
	runWave := func(wavePlans []mapping.SourcePlan) {
		var wg sync.WaitGroup
		for _, plan := range wavePlans {
			wg.Add(1)
			go func(plan mapping.SourcePlan) {
				defer wg.Done()
				select {
				case sem <- struct{}{}:
					defer func() { <-sem }()
				case <-ctx.Done():
					metrics.Counter(obs.MetricSourceExtractTotal,
						obs.Labels{"source": plan.Source.ID, "outcome": "canceled"}).Inc()
					mu.Lock()
					rs.Errors = append(rs.Errors, SourceError{SourceID: plan.Source.ID, Err: ctx.Err()})
					mu.Unlock()
					return
				}
				sctx := obs.ContextWithSpan(ctx, espan.StartChild("source:"+plan.Source.ID))
				srcStart := time.Now()
				frags, errs, run := m.extractSource(sctx, plan, docs, rm)
				m.observeSource(plan, errs, run, time.Since(srcStart), shape)
				mu.Lock()
				rs.Fragments = append(rs.Fragments, frags...)
				rs.Errors = append(rs.Errors, errs...)
				rs.Degraded = append(rs.Degraded, run.degraded...)
				rs.Stats.Retries += run.retries
				rs.Stats.CacheHits += run.cacheHits
				rs.Stats.StaleServes += len(run.degraded)
				mu.Unlock()
			}(plan)
		}
		wg.Wait()
	}
	runWave(wave1)
	if len(wave2) > 0 {
		// The barrier above makes the seed complete: every key value any
		// non-narrowed source produced is in rs.Fragments by now.
		seed := make(map[string]map[string]bool, len(keyAttrs))
		addSeed(seed, keyAttrs, rs.Fragments)
		narrowed := make([]mapping.SourcePlan, len(wave2))
		for i := range wave2 {
			narrowed[i] = m.narrowPlan(wave2[i], seed, metrics)
		}
		espan.SetAttr("semijoin_wave2", strconv.Itoa(len(narrowed)))
		runWave(narrowed)
	}

	rs.Stats.ExtractDuration = time.Since(extractStart)
	rs.Stats.SourcesContacted = len(plans)
	for _, f := range rs.Fragments {
		rs.Stats.ValuesExtracted += len(f.Values)
	}
	if restrict == nil {
		m.markFailovers(rs, plans, metrics, espan)
	} else if len(rs.Degraded) > 0 {
		espan.SetAttr("degraded", strconv.Itoa(len(rs.Degraded)))
	}
	rs.SortCanonical()
	return rs, nil
}

// SortCanonical puts the result set in the pipeline's deterministic
// order: fragments and degradations by (attribute, source), errors by
// (source, attribute). Extraction applies it before returning; the
// cluster coordinator re-applies it after merging per-node result sets
// so merged answers stay byte-identical to single-node ones.
func (rs *ResultSet) SortCanonical() {
	sort.Slice(rs.Fragments, func(i, j int) bool {
		if rs.Fragments[i].AttributeID != rs.Fragments[j].AttributeID {
			return rs.Fragments[i].AttributeID < rs.Fragments[j].AttributeID
		}
		return rs.Fragments[i].SourceID < rs.Fragments[j].SourceID
	})
	sort.Slice(rs.Errors, func(i, j int) bool {
		if rs.Errors[i].SourceID != rs.Errors[j].SourceID {
			return rs.Errors[i].SourceID < rs.Errors[j].SourceID
		}
		return rs.Errors[i].AttributeID < rs.Errors[j].AttributeID
	})
	sort.Slice(rs.Degraded, func(i, j int) bool {
		if rs.Degraded[i].AttributeID != rs.Degraded[j].AttributeID {
			return rs.Degraded[i].AttributeID < rs.Degraded[j].AttributeID
		}
		return rs.Degraded[i].SourceID < rs.Degraded[j].SourceID
	})
}

// planSchema runs steps 2-3 of the extraction process — extraction
// schema plus data source definitions — and, for constrained queries
// with pushdown enabled, the query planner's schema rewrite. Both the
// materializing and streaming paths go through it.
func (m *Manager) planSchema(ctx context.Context, espan *obs.Span, metrics *obs.Registry, attributeIDs []string, qplan *s2sql.Plan) ([]mapping.SourcePlan, []string, error) {
	_, sspan, sdone := obs.StartStage(ctx, "extraction_schema")
	plans, missing, err := m.repo.Schema(attributeIDs)
	sdone()
	if err != nil {
		return nil, nil, fmt.Errorf("extract: obtaining extraction schema: %w", err)
	}
	sspan.SetAttr("sources", strconv.Itoa(len(plans)))

	// Query planner v2: rewrite the schema against the plan's conditions.
	if qplan != nil && len(qplan.Conditions) > 0 && !m.opts.DisablePushdown {
		var pstats planner.Stats
		plans, pstats = m.plannedRewrite(qplan, attributeIDs, plans)
		espan.SetAttr("sources_pruned", strconv.Itoa(pstats.SourcesPruned))
		espan.SetAttr("entries_pruned", strconv.Itoa(pstats.EntriesPruned))
		espan.SetAttr("pushdown_applied", strconv.Itoa(pstats.PushdownApplied))
		metrics.Counter(obs.MetricPlannerSourcesPruned, nil).Add(uint64(pstats.SourcesPruned))
		metrics.Counter(obs.MetricPlannerEntriesPruned, nil).Add(uint64(pstats.EntriesPruned))
		metrics.Counter(obs.MetricPlannerPushdownApplied, nil).Add(uint64(pstats.PushdownApplied))
	}
	espan.SetAttr("sources", strconv.Itoa(len(plans)))
	return plans, missing, nil
}

// markFailovers runs MarkFailovers and annotates the extract span with
// the degradation and failover counts.
func (m *Manager) markFailovers(rs *ResultSet, plans []mapping.SourcePlan, metrics *obs.Registry, espan *obs.Span) {
	if len(rs.Degraded) > 0 {
		espan.SetAttr("degraded", strconv.Itoa(len(rs.Degraded)))
	}
	if failovers := MarkFailovers(rs, plans, metrics); failovers > 0 {
		espan.SetAttr("failover", strconv.Itoa(failovers))
	}
}

// MarkFailovers flags failures whose attributes were still served by an
// alternate source: the mapping repository holds more than one source per
// attribute, so a partner outage costs redundancy, not answers. Flagged
// failures count under the "failover" outcome. It needs the global
// fragment view, so the cluster coordinator calls it once over the
// merged result set (with the coordinator's full schema plans) rather
// than per node; it reports how many errors it flagged. metrics may be
// nil.
func MarkFailovers(rs *ResultSet, plans []mapping.SourcePlan, metrics *obs.Registry) int {
	if len(rs.Errors) == 0 {
		return 0
	}
	covered := make(map[string]bool, len(rs.Fragments))
	for _, f := range rs.Fragments {
		covered[f.AttributeID] = true
	}
	attrsOf := make(map[string][]string, len(plans))
	for _, p := range plans {
		for _, e := range p.Entries {
			attrsOf[p.Source.ID] = append(attrsOf[p.Source.ID], e.AttributeID)
		}
	}
	failovers := 0
	for i := range rs.Errors {
		e := &rs.Errors[i]
		if e.Failover {
			continue
		}
		// Whole-source failures (breaker skips, timeouts before any rule
		// ran) carry no attribute ID; they fail over when every attribute
		// the source was planned to serve is covered elsewhere.
		attrs := attrsOf[e.SourceID]
		if e.AttributeID != "" {
			attrs = []string{e.AttributeID}
		}
		if len(attrs) == 0 {
			continue
		}
		all := true
		for _, a := range attrs {
			if !covered[a] {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		e.Failover = true
		failovers++
		metrics.Counter(obs.MetricSourceExtractTotal,
			obs.Labels{"source": e.SourceID, "outcome": obs.OutcomeFailover}).Inc()
	}
	return failovers
}

// sourceRun summarizes one source's extraction pass.
type sourceRun struct {
	retries   int
	cacheHits int
	degraded  []Degradation
	exhausted bool // at least one rule failed after its full retry budget
	// rawValues / keptValues count extracted values before and after the
	// planner's record filters; their ratio is the observed selectivity
	// fed to the stats registry.
	rawValues  int
	keptValues int
}

// runMetrics holds the cache-lookup counter handles for one extraction
// run. Resolving a counter costs a label-map allocation and a registry
// lookup; the rule hot loop increments these per rule, so the handles
// are resolved once per run instead. All methods are nil-safe, matching
// the no-registry case.
type runMetrics struct {
	cacheHit, cacheMiss, cacheStale *obs.Counter
}

func newRunMetrics(metrics *obs.Registry) runMetrics {
	return runMetrics{
		cacheHit:   metrics.Counter(obs.MetricCacheLookups, obs.Labels{"outcome": obs.OutcomeCacheHit}),
		cacheMiss:  metrics.Counter(obs.MetricCacheLookups, obs.Labels{"outcome": obs.OutcomeCacheMiss}),
		cacheStale: metrics.Counter(obs.MetricCacheLookups, obs.Labels{"outcome": obs.OutcomeCacheStale}),
	}
}

// extractSource runs every rule of one source plan under the per-source
// timeout, honoring the circuit breaker. The span and metrics registry
// carried by ctx (if any) receive the per-source annotations: kind,
// outcome, retries, cache hits, and breaker state.
func (m *Manager) extractSource(ctx context.Context, plan mapping.SourcePlan, docs *runDocs, rm runMetrics) (frags []Fragment, errs []SourceError, run sourceRun) {
	span := obs.SpanFromContext(ctx)
	metrics := obs.MetricsFromContext(ctx)
	sm := m.sourceMetrics(metrics, plan.Source.ID)
	start := time.Now()
	outcome := "ok"
	defer func() {
		span.SetAttr("kind", plan.Source.Kind.String())
		span.SetAttr("outcome", outcome)
		span.SetAttr("retries", strconv.Itoa(run.retries))
		if m.cache != nil {
			span.SetAttr("cache_hits", strconv.Itoa(run.cacheHits))
		}
		span.End()
		if outcome == "ok" {
			sm.okTotal.Inc()
		} else {
			metrics.Counter(obs.MetricSourceExtractTotal,
				obs.Labels{"source": plan.Source.ID, "outcome": outcome}).Inc()
		}
		sm.duration.Observe(time.Since(start).Seconds())
		sm.retries.Add(uint64(run.retries))
	}()

	if !m.breaker.allow(plan.Source.ID) {
		outcome = "breaker_open"
		span.SetAttr("breaker", "open")
		return nil, []SourceError{{
			SourceID: plan.Source.ID,
			Err:      errCircuitOpen{sourceID: plan.Source.ID, retryAt: m.breaker.retryAt(plan.Source.ID)},
		}}, run
	}

	// Answer fresh cache hits inline first — a fully warm source then
	// skips the timeout context, the simulated latency sleep, and the
	// rule worker pool entirely — and send only the misses to the pool.
	// Results land in entry order, so fragments, errors, and degradation
	// records stay deterministic regardless of the parallelism setting.
	// The scratch buffers are pooled: nothing below retains them past the
	// deferred release (fragment values are slice headers copied out).
	scratch := scratchPool.Get().(*sourceScratch)
	defer scratch.release()
	results := scratch.resultsFor(len(plan.Entries))
	pending := scratch.pending[:0]
	if m.cache != nil && !plan.Ephemeral {
		for i := range plan.Entries {
			if cached, ok := m.cache.get(m.cacheKeyFor(plan.Source, &plan.Entries[i])); ok {
				rm.cacheHit.Inc()
				results[i] = ruleResult{values: cached, cacheHit: true}
				continue
			}
			pending = append(pending, i)
		}
	} else {
		for i := range plan.Entries {
			pending = append(pending, i)
		}
	}
	scratch.pending = pending

	if len(pending) > 0 {
		ctx, cancel := context.WithTimeout(ctx, m.opts.Timeout)
		defer cancel()

		if m.opts.SimulatedLatency > 0 {
			select {
			case <-time.After(m.opts.SimulatedLatency):
			case <-ctx.Done():
				outcome = "canceled"
				return nil, []SourceError{{SourceID: plan.Source.ID, Err: ctx.Err()}}, run
			}
		}

		if rp := m.opts.RuleParallelism; rp > 1 && len(pending) > 1 {
			var rwg sync.WaitGroup
			rsem := make(chan struct{}, rp)
			for _, i := range pending {
				rwg.Add(1)
				go func(i int) {
					defer rwg.Done()
					rsem <- struct{}{}
					defer func() { <-rsem }()
					results[i] = m.runRuleWithRetry(ctx, plan.Source, plan.Entries[i], docs, rm, plan.Ephemeral)
				}(i)
			}
			rwg.Wait()
		} else {
			for _, i := range pending {
				results[i] = m.runRuleWithRetry(ctx, plan.Source, plan.Entries[i], docs, rm, plan.Ephemeral)
			}
		}
	}

	frags = make([]Fragment, 0, len(plan.Entries))
	// fragAt maps entry index to fragment index for the planner's
	// record-scoped filters; entries whose rule failed map to -1.
	var fragAt []int
	if len(plan.Filters) > 0 {
		fragAt = make([]int, len(plan.Entries))
		for i := range fragAt {
			fragAt[i] = -1
		}
	}
	anyFailed := false
	for i, entry := range plan.Entries {
		res := results[i]
		run.retries += res.attempts
		if res.cacheHit {
			run.cacheHits++
		}
		if res.exhausted {
			run.exhausted = true
		}
		if res.err != nil {
			anyFailed = true
			errs = append(errs, SourceError{SourceID: plan.Source.ID, AttributeID: entry.AttributeID, Err: res.err})
			continue
		}
		if entry.Scenario == mapping.SingleRecord && len(res.values) > 1 {
			errs = append(errs, SourceError{
				SourceID:    plan.Source.ID,
				AttributeID: entry.AttributeID,
				Err: Permanent(fmt.Errorf("extract: single-record source produced %d values for %s",
					len(res.values), entry.AttributeID)),
			})
			continue
		}
		if res.stale > 0 {
			run.degraded = append(run.degraded, Degradation{
				SourceID:    plan.Source.ID,
				AttributeID: entry.AttributeID,
				Stale:       res.stale,
				Err:         res.liveErr,
			})
		}
		frags = append(frags, Fragment{
			AttributeID: entry.AttributeID,
			SourceID:    plan.Source.ID,
			Scenario:    entry.Scenario,
			Values:      res.values,
			Degraded:    res.stale > 0,
			Stale:       res.stale,
		})
		if fragAt != nil {
			fragAt[i] = len(frags) - 1
		}
	}
	for _, f := range frags {
		run.rawValues += len(f.Values)
	}
	for _, f := range plan.Filters {
		applyRecordFilter(frags, fragAt, f)
	}
	for _, f := range frags {
		run.keptValues += len(f.Values)
	}
	switch {
	case anyFailed && run.exhausted:
		outcome = obs.OutcomeRetryExhausted
	case anyFailed:
		outcome = obs.OutcomeError
	case len(run.degraded) > 0:
		outcome = obs.OutcomeDegradedStale
	}
	// Stale serves count as failures for breaker purposes: the live source
	// misbehaved even though the query was answered.
	if m.breaker.report(plan.Source.ID, anyFailed || len(run.degraded) > 0) {
		span.SetAttr("breaker", "tripped")
		metrics.Counter(obs.MetricBreakerTrips, obs.Labels{"source": plan.Source.ID}).Inc()
	}
	return frags, errs, run
}

// sourceScratch is extractSource's pooled per-call working memory: the
// in-order rule results and the pending (cache-miss) index list. Pooling
// them keeps the fully-warm path from allocating per source per query.
type sourceScratch struct {
	results []ruleResult
	pending []int
}

var scratchPool = sync.Pool{New: func() any { return new(sourceScratch) }}

// resultsFor returns a zeroed results slice of length n, reusing the
// pooled backing array when it is large enough.
func (s *sourceScratch) resultsFor(n int) []ruleResult {
	if cap(s.results) < n {
		s.results = make([]ruleResult, n)
	}
	s.results = s.results[:n]
	for i := range s.results {
		s.results[i] = ruleResult{}
	}
	return s.results
}

// release drops value references (so cached extraction results are not
// pinned by the pool) and returns the scratch to the pool.
func (s *sourceScratch) release() {
	for i := range s.results {
		s.results[i] = ruleResult{}
	}
	scratchPool.Put(s)
}

// ruleResult is the outcome of one rule execution (with retries).
type ruleResult struct {
	values   []string
	attempts int  // retries performed (not counting the first attempt)
	cacheHit bool // answered from a fresh cache entry
	// stale > 0 means values came from an expired cache entry after live
	// extraction failed; liveErr is that live failure.
	stale   time.Duration
	liveErr error
	// exhausted marks a retriable failure that used the whole retry
	// budget; err is the final error (nil when stale values were served).
	exhausted bool
	err       error
}

// runRuleWithRetry answers one rule: from the result cache when fresh,
// otherwise by live execution behind a per-key singleflight, so N
// concurrent identical extractions (the same rule racing across
// concurrent queries) cost one backend round trip — waiters share the
// leader's result. Ephemeral plans (per-run semi-join narrowings)
// bypass cache and singleflight entirely: their rule codes embed
// run-specific key values, so caching them would only grow the cache
// with entries no later run can hit — and a narrowed result must never
// be served for the unnarrowed rule or vice versa.
func (m *Manager) runRuleWithRetry(ctx context.Context, def datasource.Definition, entry mapping.Entry, docs *runDocs, rm runMetrics, ephemeral bool) ruleResult {
	if m.cache == nil || ephemeral {
		return m.runRuleLive(ctx, def, entry, docs, rm, "")
	}
	key := cacheKey(def, entry)
	if cached, ok := m.cache.get(key); ok {
		rm.cacheHit.Inc()
		return ruleResult{values: cached, cacheHit: true}
	}
	rm.cacheMiss.Inc()
	v, _, shared := m.flight.Do(key, func() (any, error) {
		return m.runRuleLive(ctx, def, entry, docs, rm, key), nil
	})
	res := v.(ruleResult)
	if shared {
		// Waiters did none of the leader's work: they performed no
		// retries of their own, and a successfully shared fill is a
		// cache hit from the waiter's point of view.
		res.attempts = 0
		if res.err == nil && res.stale == 0 {
			res.cacheHit = true
		}
	}
	return res
}

// runRuleLive executes one rule with bounded retries: full-jitter
// exponential backoff between attempts, fail-fast on Permanent errors,
// and — when the rule cache holds an expired entry — serve-stale
// degradation after the retry budget is spent. key is the result-cache
// key, or "" when caching is off.
func (m *Manager) runRuleLive(ctx context.Context, def datasource.Definition, entry mapping.Entry, docs *runDocs, rm runMetrics, key string) ruleResult {
	var res ruleResult
	for attempt := 0; ; attempt++ {
		var values []string
		var err error
		values, err = m.runRule(ctx, def, entry, docs)
		if err == nil {
			if m.cache != nil && key != "" {
				m.cache.put(key, values)
			}
			res.values = values
			res.attempts = attempt
			return res
		}
		if IsPermanent(err) {
			res.attempts = attempt
			res.err = err
			break
		}
		if attempt >= m.opts.Retries || ctx.Err() != nil {
			res.attempts = attempt
			res.err = err
			res.exhausted = m.opts.Retries > 0 && attempt >= m.opts.Retries
			break
		}
		if !m.sleep(ctx, m.backoffDelay(attempt)) {
			res.attempts = attempt
			res.err = err
			break
		}
	}
	// Graceful degradation: an expired cache entry beats a failure.
	if m.cache != nil && key != "" && !m.opts.DisableServeStale {
		if stale, age, ok := m.cache.getStale(key); ok {
			rm.cacheStale.Inc()
			return ruleResult{
				values:    stale,
				attempts:  res.attempts,
				stale:     age,
				liveErr:   res.err,
				exhausted: res.exhausted,
			}
		}
	}
	return res
}

// runRule delegates to the extractor for the source's kind, then applies
// the rule's value transform, if any. Compiled artifacts come from the
// manager's compiled-rule cache; source documents from the run's shared
// document layer.
func (m *Manager) runRule(ctx context.Context, def datasource.Definition, entry mapping.Entry, docs *runDocs) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cr := m.compiled.get(entry.Rule)
	type outcome struct {
		values []string
		err    error
	}
	ch := make(chan outcome, 1)
	go func() {
		var o outcome
		switch def.Kind {
		case datasource.KindDatabase:
			o.values, o.err = m.extractDB(def, entry, cr, docs)
		case datasource.KindXML:
			o.values, o.err = m.extractXML(def, entry, cr, docs)
		case datasource.KindWeb:
			o.values, o.err = m.extractWeb(ctx, def, entry, cr, docs)
		case datasource.KindText:
			o.values, o.err = m.extractText(def, entry, cr, docs)
		default:
			o.err = Permanent(fmt.Errorf("extract: no extractor for source kind %d", int(def.Kind)))
		}
		if o.err == nil {
			o.values, o.err = applyTransform(cr, o.values)
		}
		ch <- o
	}()
	select {
	case o := <-ch:
		return o.values, o.err
	case <-ctx.Done():
		return nil, fmt.Errorf("extract: source %s: %w", def.ID, ctx.Err())
	}
}

// applyTransform normalizes each extracted value through the rule's
// compiled WebL transform expression (with the raw value bound to v).
func applyTransform(cr *compiledRule, values []string) ([]string, error) {
	if cr.transformErr != nil {
		return values, cr.transformErr
	}
	if cr.transform == nil {
		return values, nil
	}
	out := make([]string, len(values))
	for i, raw := range values {
		globals, err := cr.transform.Run(&webl.Env{Globals: map[string]webl.Value{"v": raw}})
		if err != nil {
			return nil, fmt.Errorf("extract: transform of %q: %w", raw, err)
		}
		transformed, err := weblValueToStrings(globals["result"])
		if err != nil {
			return nil, err
		}
		if len(transformed) != 1 {
			return nil, fmt.Errorf("extract: transform of %q produced %d values, want 1", raw, len(transformed))
		}
		out[i] = transformed[0]
	}
	return out, nil
}

// extractDB runs a SQL rule and projects the configured column as strings.
// The database handle is resolved once per run, and pre-parsed SELECTs
// skip the per-call SQL parse; a rule whose statement did not pre-parse
// falls back to the database's own Query for identical error reporting.
func (m *Manager) extractDB(def datasource.Definition, entry mapping.Entry, cr *compiledRule, docs *runDocs) ([]string, error) {
	if m.backends.DB == nil {
		return nil, Permanent(errors.New("extract: no database backend configured"))
	}
	db, err := docs.db(m.backends.DB, def.DSN)
	if err != nil {
		return nil, err
	}
	var res *reldb.Result
	if cr.sql != nil {
		res, err = db.QuerySelect(cr.sql)
	} else {
		res, err = db.Query(entry.Rule.Code)
	}
	if err != nil && entry.Rule.Fallback != "" {
		// The planner's pushed-down WHERE can fail where the original rule
		// would not (e.g. LIKE against a non-text column); re-run the
		// preserved original and let the instance-layer filter take over.
		res, err = db.Query(entry.Rule.Fallback)
	}
	if err != nil {
		return nil, err
	}
	col := 0
	if entry.Rule.Column != "" {
		col = -1
		for i, name := range res.Columns {
			if strings.EqualFold(name, entry.Rule.Column) {
				col = i
				break
			}
		}
		if col < 0 {
			return nil, Permanent(fmt.Errorf("extract: result of %q has no column %q", entry.Rule.Code, entry.Rule.Column))
		}
	}
	if len(res.Columns) == 0 {
		return nil, Permanent(fmt.Errorf("extract: rule %q projected no columns", entry.Rule.Code))
	}
	values := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		if row[col].Null {
			values = append(values, "")
			continue
		}
		values = append(values, row[col].String())
	}
	return values, nil
}

// extractXML prefers the shared-document fast path: when the backend
// exposes its parsed documents (xmlGetter) and the path pre-compiled,
// the document resolves once per run and the compiled path runs
// directly. Wrapped backends (fault injection, remote proxies) and
// rules that failed to pre-compile keep the legacy per-rule Extract
// call, byte-identical errors included.
func (m *Manager) extractXML(def datasource.Definition, entry mapping.Entry, cr *compiledRule, docs *runDocs) ([]string, error) {
	if m.backends.XML == nil {
		return nil, Permanent(errors.New("extract: no XML backend configured"))
	}
	if cr.xpath != nil {
		if g, ok := m.backends.XML.(xmlGetter); ok {
			root, err := docs.xmlRoot(g, def.Path)
			if err != nil {
				return nil, err
			}
			return cr.xpath.SelectStrings(root), nil
		}
	}
	return m.backends.XML.Extract(def.Path, entry.Rule.Code)
}

// extractText mirrors extractXML: shared document content + compiled
// regex when the backend allows it, legacy Extract otherwise.
func (m *Manager) extractText(def datasource.Definition, entry mapping.Entry, cr *compiledRule, docs *runDocs) ([]string, error) {
	if m.backends.Text == nil {
		return nil, Permanent(errors.New("extract: no text backend configured"))
	}
	if cr.regex != nil {
		if g, ok := m.backends.Text.(textGetter); ok {
			content, err := docs.textContent(g, def.Path)
			if err != nil {
				return nil, err
			}
			return textsrc.ExtractCompiled(content, cr.regex), nil
		}
	}
	return m.backends.Text.Extract(def.Path, entry.Rule.Code)
}

// ContextFetcher is an optional upgrade of webl.Fetcher: a page backend
// that accepts the request context, so trace identifiers propagate to
// remote web sources (transport.HTTPFetcher implements it by forwarding
// the trace/span ID headers).
type ContextFetcher interface {
	FetchContext(ctx context.Context, url string) (string, error)
}

// ctxBoundFetcher adapts a ContextFetcher to the context-free
// webl.Fetcher interface by capturing the per-rule context. This is the
// sanctioned exception to the no-ctx-in-structs rule: webl.Fetcher's
// signature cannot carry a context, the adapter lives only for the one
// Fetch call it bridges, and it never outlives the request that made it.
type ctxBoundFetcher struct {
	//lint:ignore ctxfield single-call adapter bridging the context-free webl.Fetcher interface; scoped to one extraction and never stored
	ctx context.Context
	cf  ContextFetcher
}

func (f ctxBoundFetcher) Fetch(url string) (string, error) { return f.cf.FetchContext(f.ctx, url) }

// extractWeb delegates by rule language: WebL programs run in the
// interpreter (their GetURL calls routed through the run's shared page
// memo); CSS selector rules extract from the run's shared parsed DOM.
func (m *Manager) extractWeb(ctx context.Context, def datasource.Definition, entry mapping.Entry, cr *compiledRule, docs *runDocs) ([]string, error) {
	if m.backends.Pages == nil {
		return nil, Permanent(errors.New("extract: no web backend configured"))
	}
	pages := m.backends.Pages
	if cf, ok := pages.(ContextFetcher); ok {
		pages = ctxBoundFetcher{ctx: ctx, cf: cf}
	}
	if entry.Rule.Language == mapping.LangSelector {
		if cr.selectorErr != nil {
			return nil, Permanent(cr.selectorErr)
		}
		root, err := docs.htmlRoot(pages, def.URL)
		if err != nil {
			return nil, err
		}
		return cr.selector.Extract(root), nil
	}
	if cr.weblErr != nil {
		return nil, Permanent(cr.weblErr)
	}
	globals, err := cr.webl.Run(&webl.Env{Fetcher: memoFetcher{docs: docs, next: pages}, MaxSteps: m.opts.WebLMaxSteps})
	if err != nil {
		return nil, err
	}
	var candidates []string
	if entry.Rule.Column != "" {
		candidates = []string{entry.Rule.Column}
	} else {
		simple := entry.AttributeID
		if idx := strings.LastIndexByte(simple, '.'); idx >= 0 {
			simple = simple[idx+1:]
		}
		candidates = []string{simple, "result"}
	}
	for _, name := range candidates {
		v, ok := globals[name]
		if !ok {
			continue
		}
		return weblValueToStrings(v)
	}
	return nil, Permanent(fmt.Errorf("extract: webl rule defines none of %v", candidates))
}

func weblValueToStrings(v webl.Value) ([]string, error) {
	switch t := v.(type) {
	case nil:
		return nil, nil
	case string:
		return []string{t}, nil
	case []webl.Value:
		out := make([]string, 0, len(t))
		for _, e := range t {
			sub, err := weblValueToStrings(e)
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
		}
		return out, nil
	case float64, bool:
		sub, err := weblValueToStrings(fmt.Sprintf("%v", t))
		if err != nil {
			return nil, err
		}
		return sub, nil
	case *webl.Page:
		return nil, fmt.Errorf("extract: webl rule produced a page, not a value")
	default:
		return nil, fmt.Errorf("extract: webl rule produced unsupported value %T", v)
	}
}
