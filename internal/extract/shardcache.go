package extract

import (
	"sync"
	"time"
)

// cacheShards is the fixed shard count of the rule-result cache. The
// single-mutex map it replaced serialized every lookup across sources
// and rules; hashing the key over independent locks keeps concurrent
// identical queries from queueing on one mutex. Sixteen shards cover
// the Parallelism defaults with headroom and cost one cache line each.
const cacheShards = 16

// cacheEntry is one cached rule result. Entries past TTL are not
// deleted: they are the serve-stale reserve graceful degradation draws
// on when a source is down (see Options.DisableServeStale).
type cacheEntry struct {
	values []string
	at     time.Time
}

type cacheShard struct {
	mu sync.Mutex
	m  map[string]cacheEntry
}

// shardedCache is the rule-result cache: (source, rule) key → values
// with a TTL, sharded by key hash to cut lock contention.
type shardedCache struct {
	ttl    time.Duration
	shards [cacheShards]cacheShard
}

func newShardedCache(ttl time.Duration) *shardedCache {
	c := &shardedCache{ttl: ttl}
	for i := range c.shards {
		c.shards[i].m = make(map[string]cacheEntry)
	}
	return c
}

// shard picks the shard for a key with FNV-1a, stdlib-free of
// allocation (hash/fnv would force a []byte conversion).
func (c *shardedCache) shard(key string) *cacheShard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return &c.shards[h%cacheShards]
}

// get returns fresh values for key; expired entries miss (but stay for
// getStale).
func (c *shardedCache) get(key string) ([]string, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[key]
	if !ok || time.Since(e.at) > c.ttl {
		return nil, false
	}
	return e.values, true
}

// getStale returns an entry regardless of TTL, with its age.
func (c *shardedCache) getStale(key string) (values []string, age time.Duration, ok bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[key]
	if !ok {
		return nil, 0, false
	}
	return e.values, time.Since(e.at), true
}

func (c *shardedCache) put(key string, values []string) {
	s := c.shard(key)
	s.mu.Lock()
	s.m[key] = cacheEntry{values: values, at: time.Now()}
	s.mu.Unlock()
}

// clear drops every entry, including the serve-stale reserve.
func (c *shardedCache) clear() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.m = make(map[string]cacheEntry)
		s.mu.Unlock()
	}
}

// len counts entries across shards (tests and ops introspection).
func (c *shardedCache) len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}
