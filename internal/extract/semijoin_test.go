package extract

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/datasource"
	"repro/internal/mapping"
	"repro/internal/obs"
	"repro/internal/s2sql"
	"repro/internal/workload"
)

// semiJoinManager builds a manager over a generated semi-join world
// (small keyed directory + large narrowable detail sources) with the
// watch class keyed on model.
func semiJoinManager(t *testing.T, spec workload.SemiJoinSpec, opts Options) (*Manager, *mapping.Repository, *workload.World) {
	t.Helper()
	world := workload.MustGenerateSemiJoin(spec)
	reg := datasource.NewRegistry()
	for _, def := range world.Definitions {
		must(t, reg.Register(def))
	}
	repo := mapping.NewRepository(world.Ontology, reg)
	for _, e := range world.Entries {
		must(t, repo.Register(e))
	}
	must(t, repo.SetClassKey("watch", "thing.product.model"))
	return NewManager(repo, FromCatalog(world.Catalog), opts), repo, world
}

func semiJoinPlan(t *testing.T, world *workload.World) *s2sql.Plan {
	t.Helper()
	plan, err := s2sql.ParseAndPlan("SELECT product WHERE water_resistance >= 100", world.Ontology)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestSemiJoinShrinksWork asserts the optimization optimizes: with the
// directory seeding a small key set, the narrowed run extracts far
// fewer values from the detail sources than the unnarrowed run.
func TestSemiJoinShrinksWork(t *testing.T) {
	spec := workload.SemiJoinSpec{DirectoryRecords: 5, DetailSources: 2, DetailRecords: 60, Seed: 41}
	count := func(disable bool) int {
		m, _, world := semiJoinManager(t, spec, Options{DisableSemiJoin: disable})
		rs, err := m.ExtractQuery(context.Background(), semiJoinPlan(t, world))
		if err != nil {
			t.Fatal(err)
		}
		if len(rs.Errors) > 0 {
			t.Fatalf("extraction errors: %v", rs.Errors)
		}
		return rs.Stats.ValuesExtracted
	}
	narrowed, plain := count(false), count(true)
	// Plain touches every detail row; narrowing should cut the detail
	// work down to roughly the directory's key set per source.
	if narrowed*2 >= plain {
		t.Errorf("narrowed run extracted %d values, plain %d — expected at least a 2x reduction", narrowed, plain)
	}
}

// TestSemiJoinNarrowedValuesStaySeedBound checks the runtime effect
// end-to-end: after a narrowed run, every model value a detail source
// contributed is one the directory seeded.
func TestSemiJoinNarrowedValuesStaySeedBound(t *testing.T) {
	m, _, world := semiJoinManager(t, workload.SemiJoinSpec{
		DirectoryRecords: 4, DetailSources: 1, DetailRecords: 30, Seed: 42,
	}, Options{})
	metrics := obs.NewRegistry()
	ctx := obs.ContextWithMetrics(context.Background(), metrics)
	rs, err := m.ExtractQuery(ctx, semiJoinPlan(t, world))
	if err != nil {
		t.Fatal(err)
	}
	dirModels := map[string]bool{}
	for _, r := range world.Records {
		if r.SourceID == "dir" {
			dirModels[r.Model] = true
		}
	}
	for _, f := range rs.Fragments {
		if f.SourceID != "detail_000" || !strings.EqualFold(f.AttributeID, "thing.product.model") {
			continue
		}
		if len(f.Values) == 0 {
			t.Fatal("narrowing dropped every detail row, including the directory overlap")
		}
		for _, v := range f.Values {
			if !dirModels[v] {
				t.Errorf("detail model %q survived narrowing but is not in the directory seed", v)
			}
		}
	}
	if got := metrics.Counter(obs.MetricPlannerSemiJoin, obs.Labels{"outcome": obs.OutcomeSemiJoinSQL}).Value(); got == 0 {
		t.Error("no applied_sql outcome recorded for a database semi-join world")
	}
}

// TestSemiJoinCacheCoherence guards the rule-result cache against
// narrowed runs: a narrowed (ephemeral) plan must neither store its
// seed-dependent results under the rule's cache identity nor be served
// from it, in either order.
func TestSemiJoinCacheCoherence(t *testing.T) {
	spec := workload.SemiJoinSpec{DirectoryRecords: 4, DetailSources: 1, DetailRecords: 25, Seed: 43}
	m, _, world := semiJoinManager(t, spec, Options{CacheTTL: time.Hour})
	ctx := context.Background()
	attrs := []string{
		"thing.product.brand", "thing.product.model",
		"thing.product.watch.case", "thing.product.price",
		"thing.product.watch.water_resistance",
	}

	// Baseline from an untouched manager: the full, unnarrowed world.
	fresh, _, _ := semiJoinManager(t, spec, Options{CacheTTL: time.Hour})
	want, err := fresh.Extract(ctx, attrs)
	if err != nil {
		t.Fatal(err)
	}

	// Narrowed first: the ephemeral detail rules must not seed the cache.
	if _, err := m.ExtractQuery(ctx, semiJoinPlan(t, world)); err != nil {
		t.Fatal(err)
	}
	got, err := m.Extract(ctx, attrs)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.Fragments) != fmt.Sprint(want.Fragments) {
		t.Fatal("unnarrowed extraction after a narrowed run diverges — the narrowed rule results leaked into the cache")
	}

	// Unnarrowed first (cache warm): the narrowed run must not be served
	// the cached full results, and a repeat narrowed run must agree.
	first, err := m.ExtractQuery(ctx, semiJoinPlan(t, world))
	if err != nil {
		t.Fatal(err)
	}
	second, err := m.ExtractQuery(ctx, semiJoinPlan(t, world))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(first.Fragments) != fmt.Sprint(second.Fragments) {
		t.Fatal("repeated narrowed extraction diverges — cache interference")
	}
	var full, narrowedVals int
	for _, f := range want.Fragments {
		if f.SourceID == "detail_000" && strings.EqualFold(f.AttributeID, "thing.product.model") {
			full = len(f.Values)
		}
	}
	for _, f := range first.Fragments {
		if f.SourceID == "detail_000" && strings.EqualFold(f.AttributeID, "thing.product.model") {
			narrowedVals = len(f.Values)
		}
	}
	if narrowedVals == 0 || narrowedVals >= full {
		t.Errorf("narrowed detail models = %d of %d — the warm cache served unnarrowed results to the narrowed run", narrowedVals, full)
	}
}

// TestSemiJoinStatsSurviveInvalidation pins the statistics registry's
// lifecycle: observed source behavior stays valid when mappings change,
// so InvalidateCache must not clear it; only an explicit Reset does.
func TestSemiJoinStatsSurviveInvalidation(t *testing.T) {
	m, repo, world := semiJoinManager(t, workload.SemiJoinSpec{
		DirectoryRecords: 3, DetailSources: 1, DetailRecords: 10, Seed: 44,
	}, Options{})
	if _, err := m.ExtractQuery(context.Background(), semiJoinPlan(t, world)); err != nil {
		t.Fatal(err)
	}
	if m.SourceStats().Samples("dir") == 0 {
		t.Fatal("extraction fed no statistics for the directory source")
	}

	m.InvalidateCache()
	if m.SourceStats().Samples("dir") == 0 {
		t.Error("InvalidateCache cleared the source statistics registry")
	}

	// The repository-level invalidation path (remapping, class keys)
	// flushes plans and rule results, never statistics.
	must(t, repo.SetClassKey("watch", "thing.product.model"))
	m.InvalidateCache()
	if m.SourceStats().Samples("dir") == 0 {
		t.Error("re-keying cleared the source statistics registry")
	}

	m.SourceStats().Reset()
	if m.SourceStats().Samples("dir") != 0 {
		t.Error("Reset left samples behind")
	}
}

// TestSemiJoinWaveSplitGates unit-tests splitWaves' conservative
// cases: cluster-restricted runs, the disable knob, and plans whose
// non-narrowed groups map a key attribute (mixed).
func TestSemiJoinWaveSplitGates(t *testing.T) {
	m, _, world := semiJoinManager(t, workload.SemiJoinSpec{
		DirectoryRecords: 3, DetailSources: 2, DetailRecords: 8, Seed: 45,
	}, Options{})
	plans, _, err := m.planSchema(context.Background(), nil, nil, semiJoinPlan(t, world).AttributeIDs(), semiJoinPlan(t, world))
	if err != nil {
		t.Fatal(err)
	}
	narrowable := 0
	for _, p := range plans {
		if p.Narrowable() {
			narrowable++
		}
	}
	if narrowable != 2 {
		t.Fatalf("narrowable plans = %d, want the 2 detail sources", narrowable)
	}

	w1, w2, keys := m.splitWaves(plans, false, nil)
	if len(w2) != 2 || len(w1) != len(plans)-2 {
		t.Errorf("wave split = %d/%d, want %d/2", len(w1), len(w2), len(plans)-2)
	}
	if !keys["thing.product.model"] {
		t.Errorf("seed attributes = %v, want the model key", keys)
	}

	// A cluster sub-request never narrows: the restricted source list
	// breaks seed completeness.
	w1, w2, _ = m.splitWaves(plans, true, nil)
	if len(w2) != 0 || len(w1) != len(plans) {
		t.Error("restricted run still split waves")
	}

	// A non-narrowed group mapping the key attribute forces wave one.
	mixed := make([]mapping.SourcePlan, len(plans))
	copy(mixed, plans)
	for i := range mixed {
		if !mixed[i].Narrowable() {
			continue
		}
		p := mixed[i]
		p.Entries = append(append([]mapping.Entry(nil), p.Entries...), mapping.Entry{
			AttributeID: "thing.product.model", SourceID: p.Source.ID,
			Rule: mapping.Rule{Language: mapping.LangRegex, Code: `m=(\w+)`},
		})
		mixed[i] = p
	}
	metrics := obs.NewRegistry()
	w1, w2, _ = m.splitWaves(mixed, false, metrics)
	if len(w2) != 0 || len(w1) != len(mixed) {
		t.Error("plan with an uncovered key-mapping entry was still narrowed")
	}
	if metrics.Counter(obs.MetricPlannerSemiJoin, obs.Labels{"outcome": obs.OutcomeSemiJoinMixed}).Value() == 0 {
		t.Error("mixed demotion not counted")
	}
}

// TestSemiJoinNarrowPlanFallbacks unit-tests narrowPlan's per-group
// degradations: empty seed, oversized seed, and unsafe SQL values.
func TestSemiJoinNarrowPlanFallbacks(t *testing.T) {
	m, _, world := semiJoinManager(t, workload.SemiJoinSpec{
		DirectoryRecords: 3, DetailSources: 1, DetailRecords: 8, Seed: 46,
	}, Options{})
	plans, _, err := m.planSchema(context.Background(), nil, nil, semiJoinPlan(t, world).AttributeIDs(), semiJoinPlan(t, world))
	if err != nil {
		t.Fatal(err)
	}
	var detail mapping.SourcePlan
	found := false
	for _, p := range plans {
		if p.Narrowable() {
			detail, found = p, true
		}
	}
	if !found {
		t.Fatal("no narrowable plan")
	}
	key := strings.ToLower(detail.SemiJoins[0].KeyAttribute)

	t.Run("empty seed drops every record", func(t *testing.T) {
		metrics := obs.NewRegistry()
		out := m.narrowPlan(detail, map[string]map[string]bool{}, metrics)
		if !out.Ephemeral {
			t.Error("narrowed plan not marked ephemeral")
		}
		if len(out.Filters) != len(detail.Filters)+1 {
			t.Fatalf("filters = %d, want one key filter added", len(out.Filters))
		}
		f := out.Filters[len(out.Filters)-1]
		if f.KeyIn == nil || len(f.KeyIn) != 0 {
			t.Errorf("empty seed filter KeyIn = %v, want an empty set", f.KeyIn)
		}
		if metrics.Counter(obs.MetricPlannerSemiJoin, obs.Labels{"outcome": obs.OutcomeSemiJoinEmpty}).Value() != 1 {
			t.Error("seed_empty not counted")
		}
	})

	t.Run("oversized seed runs unnarrowed", func(t *testing.T) {
		seed := map[string]map[string]bool{key: {}}
		for i := 0; i < DefaultSemiJoinMaxValues+1; i++ {
			seed[key][fmt.Sprintf("M%d", i)] = true
		}
		metrics := obs.NewRegistry()
		out := m.narrowPlan(detail, seed, metrics)
		if len(out.Filters) != len(detail.Filters) {
			t.Error("capped narrowing still added a filter")
		}
		for i := range out.Entries {
			if out.Entries[i].Rule.Code != detail.Entries[i].Rule.Code {
				t.Error("capped narrowing still rewrote SQL")
			}
		}
		if metrics.Counter(obs.MetricPlannerSemiJoin, obs.Labels{"outcome": obs.OutcomeSemiJoinCapped}).Value() != 1 {
			t.Error("capped not counted")
		}
	})

	t.Run("unsafe SQL value falls back to the record filter", func(t *testing.T) {
		seed := map[string]map[string]bool{key: {"Dir 100": true, "1e+06": true}}
		metrics := obs.NewRegistry()
		out := m.narrowPlan(detail, seed, metrics)
		for i := range out.Entries {
			if out.Entries[i].Rule.Code != detail.Entries[i].Rule.Code {
				t.Error("unsafe value still rewrote SQL")
			}
		}
		if len(out.Filters) != len(detail.Filters)+1 {
			t.Fatal("no record-filter fallback")
		}
		f := out.Filters[len(out.Filters)-1]
		if !f.KeyIn["Dir 100"] || !f.KeyIn["1e+06"] {
			t.Errorf("fallback KeyIn = %v, want both seed values", f.KeyIn)
		}
		if metrics.Counter(obs.MetricPlannerSemiJoin, obs.Labels{"outcome": obs.OutcomeSemiJoinFilter}).Value() != 1 {
			t.Error("applied_filter not counted")
		}
	})

	t.Run("clean seed narrows natively", func(t *testing.T) {
		seed := map[string]map[string]bool{key: {"Dir 100": true, "Dir 101": true}}
		metrics := obs.NewRegistry()
		out := m.narrowPlan(detail, seed, metrics)
		rewritten := 0
		for i, ei := range detail.SemiJoins[0].Entries {
			_ = i
			e := out.Entries[ei]
			if !strings.Contains(e.Rule.Code, "IN ('Dir 100', 'Dir 101')") {
				t.Errorf("entry %s not narrowed: %q", e.AttributeID, e.Rule.Code)
				continue
			}
			if e.Rule.Fallback != detail.Entries[ei].Rule.Code {
				t.Errorf("entry %s fallback = %q, want the original rule", e.AttributeID, e.Rule.Fallback)
			}
			rewritten++
		}
		if rewritten == 0 {
			t.Fatal("no entries rewritten")
		}
		// The shared plans slice must stay untouched.
		for i := range detail.Entries {
			if strings.Contains(detail.Entries[i].Rule.Code, "IN (") {
				t.Fatal("narrowPlan mutated the input plan")
			}
		}
		if metrics.Counter(obs.MetricPlannerSemiJoin, obs.Labels{"outcome": obs.OutcomeSemiJoinSQL}).Value() != 1 {
			t.Error("applied_sql not counted")
		}
	})
}

// TestOrderPlansUsesStats pins cost-based ordering to the registry: a
// source observed to be slow and fat sinks behind a cheap one, and the
// restricted path keeps the caller's order.
func TestOrderPlansUsesStats(t *testing.T) {
	m, _, world := semiJoinManager(t, workload.SemiJoinSpec{
		DirectoryRecords: 3, DetailSources: 2, DetailRecords: 10, Seed: 47,
	}, Options{})
	qplan := semiJoinPlan(t, world)

	// Cold registry: input order is preserved.
	ids := []string{"detail_000", "detail_001", "dir"}
	if got := m.OrderSources(qplan, ids); fmt.Sprint(got) != fmt.Sprint(ids) {
		t.Errorf("cold ordering = %v, want input order %v", got, ids)
	}

	// A run teaches the registry that the detail sources are fatter than
	// the directory; the directory should now sort first.
	if _, err := m.ExtractQuery(context.Background(), qplan); err != nil {
		t.Fatal(err)
	}
	got := m.OrderSources(qplan, ids)
	if got[0] != "dir" {
		t.Errorf("ordering after observation = %v, want the small directory first", got)
	}
}
