package extract

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mapping"
	"repro/internal/obs"
)

// countingFetcher counts fetches and delegates to fn.
type countingFetcher struct {
	mu    sync.Mutex
	calls int
	fn    func(url string) (string, error)
}

func (f *countingFetcher) Fetch(url string) (string, error) {
	f.mu.Lock()
	f.calls++
	f.mu.Unlock()
	return f.fn(url)
}

func (f *countingFetcher) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func TestPermanentErrorNotRetried(t *testing.T) {
	w := newWorld(t)
	backends := FromCatalog(w.catalog)
	fetcher := &countingFetcher{fn: func(url string) (string, error) {
		return "", Permanent(fmt.Errorf("credentials rejected"))
	}}
	backends.Pages = fetcher
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "wpage_81",
		Rule: mapping.Rule{Code: paperWebLRule}, Scenario: mapping.SingleRecord,
	})
	m := NewManager(w.repo, backends, Options{Retries: 5, RetryBackoff: -1})
	rs, err := m.Extract(context.Background(), []string{"thing.product.brand"})
	if err != nil {
		t.Fatal(err)
	}
	if got := fetcher.count(); got != 1 {
		t.Errorf("fetch attempts = %d, want 1 (permanent errors must fail fast)", got)
	}
	if rs.Stats.Retries != 0 {
		t.Errorf("retries = %d, want 0", rs.Stats.Retries)
	}
	if len(rs.Errors) != 1 || !IsPermanent(rs.Errors[0]) {
		t.Fatalf("errors = %v, want one permanent error", rs.Errors)
	}
}

func TestRuleMisconfigurationIsPermanent(t *testing.T) {
	w := newWorld(t)
	// The rule compiles but defines no variable for the mapped attribute —
	// a mapping mistake no retry can fix.
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "wpage_81",
		Rule: mapping.Rule{Code: `var unrelated = "x"`},
	})
	m := w.manager(Options{Retries: 5, RetryBackoff: -1})
	rs, err := m.Extract(context.Background(), []string{"thing.product.brand"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Errors) != 1 || !IsPermanent(rs.Errors[0]) {
		t.Fatalf("errors = %v, want one permanent misconfiguration error", rs.Errors)
	}
	if rs.Stats.Retries != 0 {
		t.Errorf("retries = %d, want 0 (misconfigurations must not be retried)", rs.Stats.Retries)
	}
}

func TestTransientErrorIsRetried(t *testing.T) {
	w := newWorld(t)
	backends := FromCatalog(w.catalog)
	fetcher := &countingFetcher{fn: func(url string) (string, error) {
		return "", fmt.Errorf("transient network failure")
	}}
	backends.Pages = fetcher
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "wpage_81",
		Rule: mapping.Rule{Code: paperWebLRule},
	})
	m := NewManager(w.repo, backends, Options{Retries: 3, RetryBackoff: -1})
	rs, err := m.Extract(context.Background(), []string{"thing.product.brand"})
	if err != nil {
		t.Fatal(err)
	}
	if got := fetcher.count(); got != 4 {
		t.Errorf("fetch attempts = %d, want 4 (1 + 3 retries)", got)
	}
	if len(rs.Errors) != 1 {
		t.Fatalf("errors = %v", rs.Errors)
	}
}

func TestRetryExhaustedOutcomeMetric(t *testing.T) {
	w := newWorld(t)
	backends := FromCatalog(w.catalog)
	backends.Pages = fetcherFunc(func(url string) (string, error) {
		return "", fmt.Errorf("still down")
	})
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "wpage_81",
		Rule: mapping.Rule{Code: paperWebLRule},
	})
	reg := obs.NewRegistry()
	ctx := obs.ContextWithMetrics(context.Background(), reg)
	m := NewManager(w.repo, backends, Options{Retries: 2, RetryBackoff: -1})
	if _, err := m.Extract(ctx, []string{"thing.product.brand"}); err != nil {
		t.Fatal(err)
	}
	got := reg.Counter(obs.MetricSourceExtractTotal,
		obs.Labels{"source": "wpage_81", "outcome": obs.OutcomeRetryExhausted}).Value()
	if got != 1 {
		t.Errorf("retry_exhausted counter = %v, want 1", got)
	}
}

// TestBackoffDelaysGrowGeometrically drives the backoff hooks directly:
// with the rng pinned to 1.0 the jittered delay equals its ceiling, so
// the sequence must double from RetryBackoff up to RetryBackoffCap.
func TestBackoffDelaysGrowGeometrically(t *testing.T) {
	w := newWorld(t)
	m := w.manager(Options{
		Retries:         8,
		RetryBackoff:    10 * time.Millisecond,
		RetryBackoffCap: 100 * time.Millisecond,
	})
	m.randFloat = func() float64 { return 1.0 }
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 100 * time.Millisecond, 100 * time.Millisecond,
	}
	for attempt, exp := range want {
		if got := m.backoffDelay(attempt); got != exp {
			t.Errorf("attempt %d: delay = %v, want %v", attempt, got, exp)
		}
	}
}

func TestBackoffDelaysJitterWithinRange(t *testing.T) {
	w := newWorld(t)
	m := w.manager(Options{
		Retries:         4,
		RetryBackoff:    10 * time.Millisecond,
		RetryBackoffCap: 50 * time.Millisecond,
	})
	// Real rng: every draw must stay within [0, min(cap, base<<attempt)).
	for attempt := 0; attempt < 10; attempt++ {
		ceil := 10 * time.Millisecond << uint(attempt)
		if ceil > 50*time.Millisecond || ceil <= 0 {
			ceil = 50 * time.Millisecond
		}
		for i := 0; i < 100; i++ {
			d := m.backoffDelay(attempt)
			if d < 0 || d > ceil {
				t.Fatalf("attempt %d: delay %v outside [0, %v]", attempt, d, ceil)
			}
		}
	}
}

// TestBackoffSleepsBetweenRetries records what the retry loop actually
// sleeps through the injected sleep hook.
func TestBackoffSleepsBetweenRetries(t *testing.T) {
	w := newWorld(t)
	backends := FromCatalog(w.catalog)
	backends.Pages = fetcherFunc(func(url string) (string, error) {
		return "", fmt.Errorf("down")
	})
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "wpage_81",
		Rule: mapping.Rule{Code: paperWebLRule},
	})
	m := NewManager(w.repo, backends, Options{
		Retries:         3,
		RetryBackoff:    10 * time.Millisecond,
		RetryBackoffCap: 1 * time.Second,
	})
	m.randFloat = func() float64 { return 1.0 }
	var mu sync.Mutex
	var slept []time.Duration
	m.sleep = func(ctx context.Context, d time.Duration) bool {
		mu.Lock()
		slept = append(slept, d)
		mu.Unlock()
		return true // don't actually wait
	}
	if _, err := m.Extract(context.Background(), []string{"thing.product.brand"}); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	mu.Lock()
	defer mu.Unlock()
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (full sequence %v)", i, slept[i], want[i], slept)
		}
	}
}

func TestServeStaleOnFailure(t *testing.T) {
	w := newWorld(t)
	backends := FromCatalog(w.catalog)
	inner := backends.Pages
	var failing bool
	var mu sync.Mutex
	backends.Pages = fetcherFunc(func(url string) (string, error) {
		mu.Lock()
		f := failing
		mu.Unlock()
		if f {
			return "", fmt.Errorf("source went away")
		}
		return inner.Fetch(url)
	})
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "wpage_81",
		Rule: mapping.Rule{Code: paperWebLRule}, Scenario: mapping.SingleRecord,
	})
	reg := obs.NewRegistry()
	ctx := obs.ContextWithMetrics(context.Background(), reg)
	m := NewManager(w.repo, backends, Options{CacheTTL: 20 * time.Millisecond, RetryBackoff: -1})

	// Warm the cache with a healthy extraction.
	rs, err := m.Extract(ctx, []string{"thing.product.brand"})
	if err != nil || len(rs.Errors) > 0 {
		t.Fatalf("%v %v", err, rs.Errors)
	}

	// Let the entry expire, then kill the source.
	time.Sleep(40 * time.Millisecond)
	mu.Lock()
	failing = true
	mu.Unlock()

	rs, err = m.Extract(ctx, []string{"thing.product.brand"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Fragments) != 1 {
		t.Fatalf("fragments = %+v, want the stale value served", rs.Fragments)
	}
	frag := rs.Fragments[0]
	if !frag.Degraded {
		t.Error("fragment not marked Degraded")
	}
	if frag.Stale < 40*time.Millisecond {
		t.Errorf("staleness = %v, want >= 40ms", frag.Stale)
	}
	if strings.TrimSpace(frag.Values[0]) != "Seiko" {
		t.Errorf("stale value = %q", frag.Values[0])
	}
	if len(rs.Degraded) != 1 {
		t.Fatalf("degradations = %v", rs.Degraded)
	}
	d := rs.Degraded[0]
	if d.SourceID != "wpage_81" || d.AttributeID != "thing.product.brand" {
		t.Errorf("degradation = %+v", d)
	}
	if d.Stale != frag.Stale {
		t.Errorf("degradation staleness %v != fragment staleness %v", d.Stale, frag.Stale)
	}
	if d.Err == nil || !strings.Contains(d.Err.Error(), "source went away") {
		t.Errorf("degradation must carry the live error, got %v", d.Err)
	}
	if rs.Stats.StaleServes != 1 {
		t.Errorf("StaleServes = %d, want 1", rs.Stats.StaleServes)
	}
	// A degraded answer is not an extraction error: the query got values.
	if len(rs.Errors) != 0 {
		t.Errorf("errors = %v, want none (stale serve absorbed the failure)", rs.Errors)
	}
	got := reg.Counter(obs.MetricSourceExtractTotal,
		obs.Labels{"source": "wpage_81", "outcome": obs.OutcomeDegradedStale}).Value()
	if got != 1 {
		t.Errorf("degraded_stale counter = %v, want 1", got)
	}
}

func TestServeStaleDisabled(t *testing.T) {
	w := newWorld(t)
	backends := FromCatalog(w.catalog)
	inner := backends.Pages
	var failing bool
	var mu sync.Mutex
	backends.Pages = fetcherFunc(func(url string) (string, error) {
		mu.Lock()
		f := failing
		mu.Unlock()
		if f {
			return "", fmt.Errorf("source went away")
		}
		return inner.Fetch(url)
	})
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "wpage_81",
		Rule: mapping.Rule{Code: paperWebLRule}, Scenario: mapping.SingleRecord,
	})
	m := NewManager(w.repo, backends, Options{
		CacheTTL: 20 * time.Millisecond, DisableServeStale: true, RetryBackoff: -1,
	})
	if rs, err := m.Extract(context.Background(), []string{"thing.product.brand"}); err != nil || len(rs.Errors) > 0 {
		t.Fatalf("%v %v", err, rs.Errors)
	}
	time.Sleep(40 * time.Millisecond)
	mu.Lock()
	failing = true
	mu.Unlock()
	rs, err := m.Extract(context.Background(), []string{"thing.product.brand"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Fragments) != 0 || len(rs.Errors) != 1 {
		t.Fatalf("fragments=%v errors=%v, want plain failure with serve-stale off", rs.Fragments, rs.Errors)
	}
	if rs.Stats.StaleServes != 0 || len(rs.Degraded) != 0 {
		t.Errorf("unexpected degradation: %+v", rs.Degraded)
	}
}

func TestFailoverMarking(t *testing.T) {
	w := newWorld(t)
	backends := FromCatalog(w.catalog)
	backends.Pages = fetcherFunc(func(url string) (string, error) {
		return "", fmt.Errorf("web replica down")
	})
	// Two sources map brand; only the web one fails, so its loss is a
	// failover: the attribute is still served.
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "xml_7",
		Rule: mapping.Rule{Code: "/catalog/watch/brand"},
	})
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "wpage_81",
		Rule: mapping.Rule{Code: paperWebLRule},
	})
	reg := obs.NewRegistry()
	ctx := obs.ContextWithMetrics(context.Background(), reg)
	m := NewManager(w.repo, backends, Options{RetryBackoff: -1})
	rs, err := m.Extract(ctx, []string{"thing.product.brand"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Fragments) != 1 || rs.Fragments[0].SourceID != "xml_7" {
		t.Fatalf("fragments = %+v", rs.Fragments)
	}
	if len(rs.Errors) != 1 {
		t.Fatalf("errors = %v", rs.Errors)
	}
	if !rs.Errors[0].Failover {
		t.Error("error not marked as failover although xml_7 still served the attribute")
	}
	if !strings.Contains(rs.Errors[0].Error(), "failover") {
		t.Errorf("error text should mention failover: %s", rs.Errors[0].Error())
	}
	got := reg.Counter(obs.MetricSourceExtractTotal,
		obs.Labels{"source": "wpage_81", "outcome": obs.OutcomeFailover}).Value()
	if got != 1 {
		t.Errorf("failover counter = %v, want 1", got)
	}
}

func TestFailoverNotMarkedWhenAttributeLost(t *testing.T) {
	w := newWorld(t)
	backends := FromCatalog(w.catalog)
	backends.Pages = fetcherFunc(func(url string) (string, error) {
		return "", fmt.Errorf("down")
	})
	// Only one source maps brand: its loss loses the attribute.
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "wpage_81",
		Rule: mapping.Rule{Code: paperWebLRule},
	})
	m := NewManager(w.repo, backends, Options{RetryBackoff: -1})
	rs, err := m.Extract(context.Background(), []string{"thing.product.brand"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Errors) != 1 || rs.Errors[0].Failover {
		t.Fatalf("errors = %+v, want one non-failover error", rs.Errors)
	}
}

func TestQueryBudgetBoundsExtraction(t *testing.T) {
	w := newWorld(t)
	backends := FromCatalog(w.catalog)
	backends.Pages = fetcherFunc(func(url string) (string, error) {
		time.Sleep(2 * time.Second)
		return "", fmt.Errorf("too slow to matter")
	})
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "wpage_81",
		Rule: mapping.Rule{Code: paperWebLRule},
	})
	m := NewManager(w.repo, backends, Options{QueryBudget: 50 * time.Millisecond, RetryBackoff: -1})
	start := time.Now()
	rs, err := m.Extract(context.Background(), []string{"thing.product.brand"})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("extraction took %v, budget was 50ms", elapsed)
	}
	if len(rs.Errors) != 1 {
		t.Fatalf("errors = %v", rs.Errors)
	}
}

func TestIsCircuitOpenWrappedChains(t *testing.T) {
	base := errCircuitOpen{sourceID: "s1", retryAt: time.Now()}
	cases := []error{
		base,
		fmt.Errorf("wrapped: %w", base),
		SourceError{SourceID: "s1", Err: base},
		fmt.Errorf("outer: %w", SourceError{SourceID: "s1", Err: fmt.Errorf("inner: %w", base)}),
	}
	for i, err := range cases {
		if !IsCircuitOpen(err) {
			t.Errorf("case %d: IsCircuitOpen(%v) = false, want true", i, err)
		}
	}
	for i, err := range []error{nil, errors.New("plain"), SourceError{Err: errors.New("x")}} {
		if IsCircuitOpen(err) {
			t.Errorf("negative case %d: IsCircuitOpen(%v) = true, want false", i, err)
		}
	}
}
