package extract

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// BreakerOptions configure the per-source circuit breaker. The paper's
// sources are autonomous: one partner's outage must not slow every query
// (each failed source otherwise costs its full timeout). After Threshold
// consecutive failures a source's circuit opens and extraction skips it
// (reporting a SourceError) until Cooldown passes; the next attempt
// half-opens the circuit, and a success closes it.
type BreakerOptions struct {
	// Threshold is the consecutive-failure count that opens the circuit;
	// 0 disables the breaker.
	Threshold int
	// Cooldown is how long an open circuit rejects attempts.
	Cooldown time.Duration
}

// breakerState is one source's health record.
type breakerState struct {
	failures  int
	openUntil time.Time
	// probing marks an in-flight half-open probe: after the cooldown,
	// exactly one caller is admitted to test the source; concurrent
	// callers keep getting the open-circuit error until the probe
	// reports, so a recovering source is not stampeded.
	probing bool
}

// breaker tracks per-source failure state.
type breaker struct {
	opts BreakerOptions
	now  func() time.Time

	mu     sync.Mutex
	states map[string]*breakerState
}

func newBreaker(opts BreakerOptions) *breaker {
	if opts.Threshold <= 0 {
		return nil
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = 30 * time.Second
	}
	return &breaker{opts: opts, now: time.Now, states: map[string]*breakerState{}}
}

// allow reports whether the source may be contacted now. When an open
// circuit's cooldown has passed, the first caller is admitted as the
// half-open probe and subsequent callers are rejected until that probe
// reports — admitting everyone at once would stampede a source that is
// still warming back up.
func (b *breaker) allow(sourceID string) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st, ok := b.states[sourceID]
	if !ok {
		return true
	}
	if b.now().Before(st.openUntil) {
		return false
	}
	if st.openUntil.IsZero() {
		return true // circuit closed
	}
	// Cooldown passed: half-open. Admit exactly one probe.
	if st.probing {
		return false
	}
	st.probing = true
	return true
}

// retryAt returns when the source's open circuit half-opens (zero when the
// circuit is closed or the breaker disabled).
func (b *breaker) retryAt(sourceID string) time.Time {
	if b == nil {
		return time.Time{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if st, ok := b.states[sourceID]; ok {
		return st.openUntil
	}
	return time.Time{}
}

// report records one extraction outcome for the source. It returns true
// when this outcome tripped the circuit from closed to open (the signal
// behind the s2s_breaker_trips_total metric).
func (b *breaker) report(sourceID string, failed bool) bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st, ok := b.states[sourceID]
	if !ok {
		st = &breakerState{}
		b.states[sourceID] = st
	}
	wasProbe := st.probing
	st.probing = false
	if !failed {
		st.failures = 0
		st.openUntil = time.Time{}
		return false
	}
	st.failures++
	if wasProbe {
		// A failed half-open probe re-opens the circuit immediately,
		// regardless of the consecutive-failure count.
		wasOpen := b.now().Before(st.openUntil)
		st.openUntil = b.now().Add(b.opts.Cooldown)
		return !wasOpen
	}
	if st.failures >= b.opts.Threshold {
		wasOpen := b.now().Before(st.openUntil)
		st.openUntil = b.now().Add(b.opts.Cooldown)
		return !wasOpen
	}
	return false
}

// SourceHealth describes one source's breaker state.
type SourceHealth struct {
	SourceID string
	// ConsecutiveFailures since the last success.
	ConsecutiveFailures int
	// Open reports whether the circuit currently rejects attempts.
	Open bool
	// Probing reports an in-flight half-open probe: the cooldown passed
	// and one request is testing the source.
	Probing bool
	// RetryAt is when an open circuit half-opens (zero when closed).
	RetryAt time.Time
}

// Health returns the breaker state of every source that has failed at
// least once, sorted by source ID. With the breaker disabled it returns
// nil.
func (m *Manager) Health() []SourceHealth {
	b := m.breaker
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	out := make([]SourceHealth, 0, len(b.states))
	for id, st := range b.states {
		if st.failures == 0 {
			continue
		}
		h := SourceHealth{SourceID: id, ConsecutiveFailures: st.failures, Probing: st.probing}
		if now.Before(st.openUntil) {
			h.Open = true
			h.RetryAt = st.openUntil
		}
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SourceID < out[j].SourceID })
	return out
}

// errCircuitOpen marks skips caused by an open circuit.
type errCircuitOpen struct {
	sourceID string
	retryAt  time.Time
}

func (e errCircuitOpen) Error() string {
	return fmt.Sprintf("extract: source %s circuit open until %s (recent consecutive failures)",
		e.sourceID, e.retryAt.Format(time.RFC3339))
}

// IsCircuitOpen reports whether an error records a breaker skip, however
// deeply wrapped: SourceError envelopes and fmt.Errorf("...: %w", ...)
// chains are traversed with errors.As.
func IsCircuitOpen(err error) bool {
	var e errCircuitOpen
	return errors.As(err, &e)
}
