package extract

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/datasource"
	"repro/internal/mapping"
)

// brokenWorld maps one attribute to a web source whose page never resolves.
func brokenWorld(t *testing.T) (*testWorld, *Manager, []string) {
	t.Helper()
	w := newWorld(t)
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "wpage_81",
		Rule: mapping.Rule{Code: `var brand = Text(GetURL("http://dead.example/x"))`},
	})
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.model", SourceID: "xml_7",
		Rule: mapping.Rule{Code: "/catalog/watch/model"},
	})
	m := NewManager(w.repo, FromCatalog(w.catalog), Options{
		Breaker: BreakerOptions{Threshold: 2, Cooldown: time.Hour},
	})
	return w, m, []string{"thing.product.brand", "thing.product.model"}
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	_, m, attrs := brokenWorld(t)
	ctx := context.Background()

	// First two extractions hit the dead source and fail normally.
	for i := 0; i < 2; i++ {
		rs, err := m.Extract(ctx, attrs)
		if err != nil {
			t.Fatal(err)
		}
		if len(rs.Errors) != 1 || IsCircuitOpen(rs.Errors[0].Err) {
			t.Fatalf("run %d errors = %v", i, rs.Errors)
		}
	}
	// Third: the circuit is open; the source is skipped instantly.
	rs, err := m.Extract(ctx, attrs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Errors) != 1 {
		t.Fatalf("errors = %v", rs.Errors)
	}
	if !IsCircuitOpen(rs.Errors[0].Err) {
		t.Fatalf("expected circuit-open error, got %v", rs.Errors[0])
	}
	if !strings.Contains(rs.Errors[0].Error(), "circuit open") {
		t.Errorf("error text = %v", rs.Errors[0])
	}
	// The healthy source keeps answering throughout.
	if len(rs.Fragments) != 1 || rs.Fragments[0].SourceID != "xml_7" {
		t.Fatalf("fragments = %+v", rs.Fragments)
	}

	// Health reflects the state.
	health := m.Health()
	if len(health) != 1 || health[0].SourceID != "wpage_81" || !health[0].Open {
		t.Fatalf("health = %+v", health)
	}
	if health[0].ConsecutiveFailures < 2 || health[0].RetryAt.IsZero() {
		t.Errorf("health detail = %+v", health[0])
	}
}

func TestBreakerHalfOpensAfterCooldown(t *testing.T) {
	w, m, attrs := brokenWorld(t)
	ctx := context.Background()
	// Drive the circuit open with a fake clock.
	now := time.Now()
	m.breaker.now = func() time.Time { return now }
	for i := 0; i < 2; i++ {
		if _, err := m.Extract(ctx, attrs); err != nil {
			t.Fatal(err)
		}
	}
	if m.breaker.allow("wpage_81") {
		t.Fatal("circuit not open")
	}
	// Cooldown passes; the page comes back.
	now = now.Add(2 * time.Hour)
	w.catalog.AddPage("http://dead.example/x", "<html><body>Seiko</body></html>")
	rs, err := m.Extract(ctx, attrs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Errors) != 0 {
		t.Fatalf("errors after recovery: %v", rs.Errors)
	}
	// Success closed the circuit.
	if len(m.Health()) != 0 {
		t.Fatalf("health after recovery = %+v", m.Health())
	}
}

func TestBreakerDisabledByDefault(t *testing.T) {
	w := newWorld(t)
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "wpage_81",
		Rule: mapping.Rule{Code: `var brand = Text(GetURL("http://dead.example/x"))`},
	})
	m := w.manager(Options{})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		rs, err := m.Extract(ctx, []string{"thing.product.brand"})
		if err != nil {
			t.Fatal(err)
		}
		if len(rs.Errors) != 1 || IsCircuitOpen(rs.Errors[0].Err) {
			t.Fatalf("run %d: breaker engaged while disabled: %v", i, rs.Errors)
		}
	}
	if m.Health() != nil {
		t.Error("Health non-nil with breaker disabled")
	}
}

func TestBreakerIsolatesPerSource(t *testing.T) {
	w := newWorld(t)
	// Two dead web sources; breaking one must not break the other.
	for i := 0; i < 2; i++ {
		id := fmt.Sprintf("dead_%d", i)
		must(t, w.repo.Sources().Register(dummyWebDef(id)))
	}
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "dead_0",
		Rule: mapping.Rule{Code: `var brand = Text(GetURL("http://dead0.example/"))`},
	})
	w.repo.MustRegister(mapping.Entry{
		AttributeID: "thing.product.model", SourceID: "dead_1",
		Rule: mapping.Rule{Code: `var model = Text(GetURL("http://dead1.example/"))`},
	})
	m := NewManager(w.repo, FromCatalog(w.catalog), Options{
		Breaker: BreakerOptions{Threshold: 1, Cooldown: time.Hour},
	})
	// One failing round opens both circuits independently.
	if _, err := m.Extract(context.Background(), []string{"thing.product.brand", "thing.product.model"}); err != nil {
		t.Fatal(err)
	}
	health := m.Health()
	if len(health) != 2 {
		t.Fatalf("health = %+v", health)
	}
	// Recover one source only.
	w.catalog.AddPage("http://dead0.example/", "<b>x</b>")
	m.breaker.report("dead_0", false)
	if !m.breaker.allow("dead_0") || m.breaker.allow("dead_1") {
		t.Fatal("per-source isolation broken")
	}
}

// TestBreakerHalfOpenAdmitsSingleProbe drives many concurrent callers at
// a half-open circuit: exactly one may probe; the rest get the
// open-circuit rejection, so a recovering source is not stampeded.
func TestBreakerHalfOpenAdmitsSingleProbe(t *testing.T) {
	b := newBreaker(BreakerOptions{Threshold: 1, Cooldown: time.Minute})
	now := time.Now()
	b.now = func() time.Time { return now }

	b.report("s1", true) // trips: threshold 1
	if b.allow("s1") {
		t.Fatal("circuit should be open")
	}
	now = now.Add(2 * time.Minute) // cooldown passed: half-open

	const callers = 64
	var wg sync.WaitGroup
	admitted := make(chan bool, callers)
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			admitted <- b.allow("s1")
		}()
	}
	close(start)
	wg.Wait()
	close(admitted)
	probes := 0
	for ok := range admitted {
		if ok {
			probes++
		}
	}
	if probes != 1 {
		t.Fatalf("half-open admitted %d probes, want exactly 1", probes)
	}

	// The probe succeeds: circuit closes, everyone is admitted again.
	b.report("s1", false)
	if !b.allow("s1") || !b.allow("s1") {
		t.Fatal("circuit should be closed after successful probe")
	}
}

// TestBreakerFailedProbeReopens verifies a failed half-open probe
// re-opens the circuit for a full cooldown immediately, not after
// another Threshold failures.
func TestBreakerFailedProbeReopens(t *testing.T) {
	b := newBreaker(BreakerOptions{Threshold: 3, Cooldown: time.Minute})
	now := time.Now()
	b.now = func() time.Time { return now }

	for i := 0; i < 3; i++ {
		b.report("s1", true)
	}
	if b.allow("s1") {
		t.Fatal("circuit should be open")
	}
	now = now.Add(2 * time.Minute)
	if !b.allow("s1") {
		t.Fatal("half-open circuit should admit one probe")
	}
	b.report("s1", true) // the probe fails
	if b.allow("s1") {
		t.Fatal("failed probe must re-open the circuit immediately")
	}
	// Health reports the probing flag while a probe is in flight.
	now = now.Add(2 * time.Minute)
	if !b.allow("s1") {
		t.Fatal("second probe not admitted after another cooldown")
	}
	m := &Manager{breaker: b}
	health := m.Health()
	if len(health) != 1 || !health[0].Probing {
		t.Fatalf("health = %+v, want probing=true", health)
	}
}

func dummyWebDef(id string) datasource.Definition {
	return datasource.Definition{ID: id, Kind: datasource.KindWeb, URL: "http://" + id + ".example/"}
}
