package baseline

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/workload"
)

func TestBaselineMatchesGroundTruth(t *testing.T) {
	world := workload.MustGenerate(workload.Spec{
		DBSources: 2, XMLSources: 2, WebSources: 2, TextSources: 2,
		RecordsPerSource: 20, Seed: 13,
	})
	it := New(world.Catalog, world.Definitions)
	products, err := it.Products()
	if err != nil {
		t.Fatal(err)
	}
	if len(products) != len(world.Records) {
		t.Fatalf("products = %d, want %d", len(products), len(world.Records))
	}
	// Web sources don't publish water resistance; compare the remaining
	// fields as multisets (generated model names may repeat).
	counts := map[string]int{}
	for _, r := range world.Records {
		counts[r.SourceID+"|"+r.Brand+"|"+r.Model+"|"+r.Case]++
	}
	for _, p := range products {
		key := p.SourceID + "|" + p.Brand + "|" + p.Model + "|" + p.Case
		if counts[key] == 0 {
			t.Errorf("unexpected product %+v", p)
			continue
		}
		counts[key]--
	}
	for key, n := range counts {
		if n != 0 {
			t.Errorf("record %s extracted %d fewer times than generated", key, n)
		}
	}
}

// TestBaselineAgreesWithS2S is the E8 equivalence check: both integration
// styles answer the paper's query with the same result set.
func TestBaselineAgreesWithS2S(t *testing.T) {
	world := workload.MustGenerate(workload.Spec{
		DBSources: 1, XMLSources: 1, WebSources: 1, TextSources: 1,
		RecordsPerSource: 40, Seed: 17,
	})

	it := New(world.Catalog, world.Definitions)
	baseProducts, err := it.Query(func(p Product) bool {
		return p.Brand == "Seiko" && p.Case == "stainless-steel"
	})
	if err != nil {
		t.Fatal(err)
	}

	m, err := core.NewWithCatalog(world.Ontology, world.Catalog, extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := world.Apply(m); err != nil {
		t.Fatal(err)
	}
	res, err := m.Query(context.Background(), "SELECT product WHERE brand='Seiko' AND case='stainless-steel'")
	if err != nil {
		t.Fatal(err)
	}

	if len(baseProducts) != len(res.Matched) {
		t.Fatalf("baseline %d vs s2s %d matched", len(baseProducts), len(res.Matched))
	}
	want := world.CountMatching(func(r workload.Record) bool {
		return r.Brand == "Seiko" && r.Case == "stainless-steel"
	})
	if len(baseProducts) != want {
		t.Fatalf("both = %d but ground truth = %d", len(baseProducts), want)
	}
}

func TestBaselineUnknownKind(t *testing.T) {
	world := workload.MustGenerate(workload.Spec{XMLSources: 1, RecordsPerSource: 1, Seed: 1})
	defs := world.Definitions
	defs[0].Kind = 99
	it := New(world.Catalog, defs)
	if _, err := it.Products(); err == nil {
		t.Error("unknown kind integrated")
	}
}

func TestBaselineMissingBackend(t *testing.T) {
	world := workload.MustGenerate(workload.Spec{XMLSources: 1, RecordsPerSource: 1, Seed: 1})
	defs := world.Definitions
	defs[0].Path = "nonexistent.xml"
	it := New(world.Catalog, defs)
	if _, err := it.Products(); err == nil {
		t.Error("missing document integrated")
	}
}
