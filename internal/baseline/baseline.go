// Package baseline implements the syntactic integration the paper argues
// against (§1, §5: "most current middleware only covers syntactical
// integration"): a hand-coded ETL pipeline with one bespoke code path per
// data source format. It answers the same questions as the S2S middleware
// over the same workload worlds, and exists as the comparison point for
// experiment E8.
//
// The contrast the benchmark quantifies: the baseline is faster per query
// (no ontology, no rule interpretation) but every new source format is a
// new Go function here, whereas S2S integrates a new source with mapping
// registrations only, and the baseline's output carries no semantics — a
// record is a struct, not an ontology instance another organization can
// interpret.
package baseline

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/datasource"
	"repro/internal/htmldoc"
	"repro/internal/xmlpath"
)

// Product is the baseline's flat record — note the absence of any schema or
// semantics beyond Go field names.
type Product struct {
	Brand    string
	Model    string
	Case     string
	Price    float64
	Water    int
	SourceID string
}

// Integrator is the hand-coded multi-source ETL.
type Integrator struct {
	catalog *datasource.Catalog
	defs    []datasource.Definition
}

// New builds an integrator over a source catalog and the definitions to
// read.
func New(catalog *datasource.Catalog, defs []datasource.Definition) *Integrator {
	return &Integrator{catalog: catalog, defs: defs}
}

// Products extracts every product record from every source, dispatching to
// the per-format code path.
func (it *Integrator) Products() ([]Product, error) {
	var out []Product
	for _, def := range it.defs {
		var (
			records []Product
			err     error
		)
		switch def.Kind {
		case datasource.KindDatabase:
			records, err = it.fromDB(def)
		case datasource.KindXML:
			records, err = it.fromXML(def)
		case datasource.KindWeb:
			records, err = it.fromWeb(def)
		case datasource.KindText:
			records, err = it.fromText(def)
		default:
			err = fmt.Errorf("baseline: no ETL code for source kind %d", int(def.Kind))
		}
		if err != nil {
			return nil, fmt.Errorf("baseline: source %s: %w", def.ID, err)
		}
		out = append(out, records...)
	}
	return out, nil
}

// Query filters extracted products with a hard-coded Go predicate — the
// baseline has no query language.
func (it *Integrator) Query(pred func(Product) bool) ([]Product, error) {
	all, err := it.Products()
	if err != nil {
		return nil, err
	}
	var out []Product
	for _, p := range all {
		if pred(p) {
			out = append(out, p)
		}
	}
	return out, nil
}

// fromDB hard-codes the watches table layout of the workload generator.
func (it *Integrator) fromDB(def datasource.Definition) ([]Product, error) {
	db, err := it.catalog.DB(def.DSN)
	if err != nil {
		return nil, err
	}
	res, err := db.Query("SELECT brand, model, watch_case, price, water_m FROM watches ORDER BY id")
	if err != nil {
		return nil, err
	}
	out := make([]Product, 0, len(res.Rows))
	for _, row := range res.Rows {
		p := Product{SourceID: def.ID}
		p.Brand, _ = row[0].TextValue()
		p.Model, _ = row[1].TextValue()
		p.Case, _ = row[2].TextValue()
		p.Price, _ = row[3].RealValue()
		w, _ := row[4].IntValue()
		p.Water = int(w)
		out = append(out, p)
	}
	return out, nil
}

// fromXML hard-codes the catalog document structure.
func (it *Integrator) fromXML(def datasource.Definition) ([]Product, error) {
	root, err := it.catalog.XML.Get(def.Path)
	if err != nil {
		return nil, err
	}
	watches := xmlpath.MustCompile("/catalog/watch").SelectNodes(root)
	out := make([]Product, 0, len(watches))
	for _, w := range watches {
		p := Product{SourceID: def.ID}
		if n := w.Child("brand"); n != nil {
			p.Brand = n.Text()
		}
		if n := w.Child("model"); n != nil {
			p.Model = n.Text()
		}
		if n := w.Child("case"); n != nil {
			p.Case = n.Text()
		}
		if n := w.Child("price"); n != nil {
			p.Price, _ = strconv.ParseFloat(n.Text(), 64)
		}
		if n := w.Child("water"); n != nil {
			p.Water, _ = strconv.Atoi(n.Text())
		}
		out = append(out, p)
	}
	return out, nil
}

// fromWeb hard-codes the shop page markup.
func (it *Integrator) fromWeb(def datasource.Definition) ([]Product, error) {
	html, err := it.catalog.Fetch(def.URL)
	if err != nil {
		return nil, err
	}
	doc := htmldoc.Parse(html)
	var out []Product
	for _, div := range doc.FindByAttr("class", "product") {
		p := Product{SourceID: def.ID}
		for _, b := range div.FindByAttr("class", "brand") {
			p.Brand = b.VisibleText()
		}
		for _, s := range div.FindByAttr("class", "model") {
			p.Model = s.VisibleText()
		}
		for _, s := range div.FindByAttr("class", "case") {
			p.Case = s.VisibleText()
		}
		for _, s := range div.FindByAttr("class", "price") {
			p.Price, _ = strconv.ParseFloat(s.VisibleText(), 64)
		}
		out = append(out, p)
	}
	return out, nil
}

var textLine = regexp.MustCompile(`SKU W-[0-9]+ brand=([A-Za-z]+) model=\[([^\]]+)\] case=([a-z-]+) price=([0-9.]+) water=([0-9]+)m`)

// fromText hard-codes the price list line format.
func (it *Integrator) fromText(def datasource.Definition) ([]Product, error) {
	content, err := it.catalog.Text.Get(def.Path)
	if err != nil {
		return nil, err
	}
	var out []Product
	for _, line := range strings.Split(content, "\n") {
		m := textLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		price, _ := strconv.ParseFloat(m[4], 64)
		water, _ := strconv.Atoi(m[5])
		out = append(out, Product{
			Brand: m[1], Model: m[2], Case: m[3], Price: price, Water: water,
			SourceID: def.ID,
		})
	}
	return out, nil
}
