package core

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/datasource"
	"repro/internal/extract"
	"repro/internal/instance"
	"repro/internal/mapping"
	"repro/internal/owl"
	"repro/internal/rdf"
	"repro/internal/workload"
)

func testMiddleware(t *testing.T, spec workload.Spec) (*Middleware, *workload.World) {
	t.Helper()
	world := workload.MustGenerate(spec)
	m, err := NewWithCatalog(world.Ontology, world.Catalog, extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := world.Apply(m); err != nil {
		t.Fatal(err)
	}
	return m, world
}

// TestEndToEndPaperQuery runs the full pipeline of Figure 1 over all four
// source kinds with the paper's §2.5 query.
func TestEndToEndPaperQuery(t *testing.T) {
	m, world := testMiddleware(t, workload.Spec{
		DBSources: 2, XMLSources: 2, WebSources: 2, TextSources: 2,
		RecordsPerSource: 25, Seed: 11,
	})
	res, err := m.Query(context.Background(), "SELECT product WHERE brand='Seiko' AND case='stainless-steel'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("errors: %v", res.Errors)
	}
	want := world.CountMatching(func(r workload.Record) bool {
		return r.Brand == "Seiko" && r.Case == "stainless-steel"
	})
	if len(res.Matched) != want {
		t.Fatalf("matched = %d, want %d (ground truth)", len(res.Matched), want)
	}
	for _, in := range res.Matched {
		if in.Value("thing.product.brand") != "Seiko" {
			t.Errorf("instance %s brand = %q", in.ID, in.Value("thing.product.brand"))
		}
		if in.Value("thing.product.watch.case") != "stainless-steel" {
			t.Errorf("instance %s case = %q", in.ID, in.Value("thing.product.watch.case"))
		}
	}
	// Providers ride along as related instances.
	if len(res.Matched) > 0 && len(res.Related) == 0 {
		t.Error("no related provider instances")
	}
	for _, rel := range res.Related {
		if rel.Class.Name != "provider" {
			t.Errorf("related class = %s", rel.Class.Name)
		}
	}
}

func TestEndToEndNumericQuery(t *testing.T) {
	m, world := testMiddleware(t, workload.Spec{
		DBSources: 1, XMLSources: 1, WebSources: 1, TextSources: 1,
		RecordsPerSource: 30, Seed: 5,
	})
	res, err := m.Query(context.Background(), "SELECT product WHERE price < 100")
	if err != nil {
		t.Fatal(err)
	}
	want := world.CountMatching(func(r workload.Record) bool { return r.Price < 100 })
	if len(res.Matched) != want {
		t.Fatalf("matched = %d, want %d", len(res.Matched), want)
	}
	// water_resistance only exists on DB/XML/text sources (web pages do not
	// publish it); querying it excludes web records.
	res2, err := m.Query(context.Background(), "SELECT watch WHERE water_resistance >= 100")
	if err != nil {
		t.Fatal(err)
	}
	want2 := world.CountMatching(func(r workload.Record) bool {
		return r.WaterResistance >= 100 && !strings.HasPrefix(r.SourceID, "web_")
	})
	if len(res2.Matched) != want2 {
		t.Fatalf("matched = %d, want %d", len(res2.Matched), want2)
	}
}

func TestQueryOWLOutputParses(t *testing.T) {
	m, _ := testMiddleware(t, workload.Spec{DBSources: 1, RecordsPerSource: 10, Seed: 2})
	out, err := m.QueryString(context.Background(), "SELECT product", instance.FormatOWL)
	if err != nil {
		t.Fatal(err)
	}
	g, err := owl.ParseRDFXML(strings.NewReader(out))
	if err != nil {
		t.Fatalf("OWL output unparseable: %v", err)
	}
	individuals := g.Subjects(rdf.RDFType, owl.NamedIndividual)
	if len(individuals) == 0 {
		t.Error("no named individuals in OWL output")
	}
}

func TestQueryAllFormats(t *testing.T) {
	m, _ := testMiddleware(t, workload.Spec{XMLSources: 1, RecordsPerSource: 5, Seed: 3})
	for _, f := range []instance.Format{
		instance.FormatOWL, instance.FormatTurtle, instance.FormatNTriples,
		instance.FormatXML, instance.FormatJSON, instance.FormatText,
	} {
		out, err := m.QueryString(context.Background(), "SELECT product", f)
		if err != nil {
			t.Errorf("format %s: %v", f, err)
			continue
		}
		if len(out) == 0 {
			t.Errorf("format %s: empty output", f)
		}
	}
}

func TestQueryParseErrorSurfaces(t *testing.T) {
	m, _ := testMiddleware(t, workload.Spec{XMLSources: 1, RecordsPerSource: 1, Seed: 1})
	if _, err := m.Query(context.Background(), "SELECT product FROM x"); err == nil {
		t.Error("FROM accepted")
	}
	if _, err := m.Query(context.Background(), "SELECT nosuchclass"); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestStatsAccumulate(t *testing.T) {
	m, _ := testMiddleware(t, workload.Spec{XMLSources: 1, RecordsPerSource: 5, Seed: 4})
	for i := 0; i < 3; i++ {
		if _, err := m.Query(context.Background(), "SELECT product"); err != nil {
			t.Fatal(err)
		}
	}
	s := m.Stats()
	if s.Queries != 3 || s.Instances != 15 {
		t.Errorf("stats = %+v", s)
	}
	if s.PlanTime <= 0 || s.ExtractTime <= 0 || s.GenerateTime <= 0 {
		t.Errorf("timings not recorded: %+v", s)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil ontology accepted")
	}
}

func TestAccessorsAndQueryTo(t *testing.T) {
	m, _ := testMiddleware(t, workload.Spec{XMLSources: 1, RecordsPerSource: 3, Seed: 12})
	if m.Ontology() == nil || m.Sources() == nil || m.Mappings() == nil || m.Generator() == nil {
		t.Fatal("nil accessor")
	}
	if err := m.SetClassKey("product", "thing.product.model"); err != nil {
		t.Fatal(err)
	}
	if got := m.Mappings().ClassKey("product"); got != "thing.product.model" {
		t.Errorf("class key = %q", got)
	}
	var buf strings.Builder
	res, err := m.QueryTo(context.Background(), &buf, "SELECT product", instance.FormatJSON)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matched) != 3 || !strings.Contains(buf.String(), "\"matched\"") {
		t.Errorf("QueryTo result = %d matched, output %.80q", len(res.Matched), buf.String())
	}
	// QueryTo propagates parse errors.
	if _, err := m.QueryTo(context.Background(), &buf, "SELECT nosuch", instance.FormatJSON); err == nil {
		t.Error("bad query accepted")
	}
	// Without a breaker, SourceHealth is nil.
	if m.SourceHealth() != nil {
		t.Error("SourceHealth non-nil without breaker")
	}
}

func TestDeadSourceDoesNotBlockOthers(t *testing.T) {
	world := workload.MustGenerate(workload.Spec{XMLSources: 1, RecordsPerSource: 5, Seed: 6})
	m, err := NewWithCatalog(world.Ontology, world.Catalog, extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := world.Apply(m); err != nil {
		t.Fatal(err)
	}
	// A web source whose page was never published.
	if err := m.RegisterSource(datasource.Definition{ID: "dead_web", Kind: datasource.KindWeb, URL: "http://dead.example/x"}); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterMapping(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "dead_web",
		Rule: mapping.Rule{Code: `var brand = Text(GetURL("http://dead.example/x"))`},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := m.Query(context.Background(), "SELECT product")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matched) != 5 {
		t.Errorf("matched = %d, want 5 from the healthy source", len(res.Matched))
	}
	if len(res.Errors) != 1 || res.Errors[0].SourceID != "dead_web" {
		t.Errorf("errors = %v", res.Errors)
	}
}

func TestAddingSourceNeedsOnlyMappings(t *testing.T) {
	// The E8 claim: integrating a new source is registration-only, no new
	// code paths. Start with one source, add another at runtime.
	world := workload.MustGenerate(workload.Spec{XMLSources: 1, RecordsPerSource: 3, Seed: 8})
	m, err := NewWithCatalog(world.Ontology, world.Catalog, extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := world.Apply(m); err != nil {
		t.Fatal(err)
	}
	before, err := m.Query(context.Background(), "SELECT product")
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Matched) != 3 {
		t.Fatalf("before = %d, want 3", len(before.Matched))
	}

	// Publish a new XML catalog in the running middleware's backends and
	// register it purely through the mapping module.
	world.Catalog.XML.MustAdd("late.xml", "<catalog><watch><brand>Orient</brand></watch><watch><brand>Swatch</brand></watch></catalog>")
	if err := m.RegisterSource(datasource.Definition{ID: "late_xml", Kind: datasource.KindXML, Path: "late.xml"}); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterMapping(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "late_xml",
		Rule: mapping.Rule{Code: "/catalog/watch/brand"},
	}); err != nil {
		t.Fatal(err)
	}
	after, err := m.Query(context.Background(), "SELECT product")
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Matched) != 5 {
		t.Errorf("after = %d, want 5 (3 original + 2 late)", len(after.Matched))
	}
}

// TestStatsConcurrentQueries hammers Query from many goroutines while
// other goroutines snapshot Stats; the final totals must be exact. Run
// with -race, this is the regression test for the Stats data race.
func TestStatsConcurrentQueries(t *testing.T) {
	m, _ := testMiddleware(t, workload.Spec{XMLSources: 1, RecordsPerSource: 5, Seed: 13})
	const workers, perWorker = 8, 5
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers race with the writers.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = m.Stats()
				}
			}
		}()
	}
	var qwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := m.Query(context.Background(), "SELECT product"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	qwg.Wait()
	close(stop)
	wg.Wait()
	s := m.Stats()
	if s.Queries != workers*perWorker {
		t.Errorf("queries = %d, want %d", s.Queries, workers*perWorker)
	}
	if s.Instances != workers*perWorker*5 {
		t.Errorf("instances = %d, want %d", s.Instances, workers*perWorker*5)
	}
	if s.PlanTime <= 0 || s.ExtractTime <= 0 || s.GenerateTime <= 0 {
		t.Errorf("timings not recorded: %+v", s)
	}
}
