package core

import (
	"sync"

	"repro/internal/s2sql"
)

// DefaultPlanCacheSize is the plan cache's entry bound when
// Config.PlanCacheSize is 0.
const DefaultPlanCacheSize = 512

// planCache memoizes S2SQL query strings to their compiled plans. Plans
// depend on the query text and the ontology, so the middleware flushes
// the cache on every mutation that could affect planning or downstream
// rule execution (RegisterSource, RegisterMapping, SetClassKey) —
// conservatively: correctness never rides on knowing which mutations
// matter. Cached plans are shared across queries and must be treated as
// read-only; every consumer in the pipeline only reads them.
//
// The cache is bounded: when it reaches capacity it flushes wholesale
// rather than tracking recency, which is free on the hot path and
// pathological only for workloads with more distinct hot query strings
// than the bound — those can raise Config.PlanCacheSize.
//
// Each entry also carries the planner's merge-free verdict for the
// plan. The verdict depends on the same state as the plan itself
// (ontology, class keys, mapping schema), and the cache is flushed on
// every catalog mutation, so a cached verdict can never outlive the
// state it was proved against — which is what keeps every execution
// path of one catalog state agreeing on the canonical instance order.
type planCache struct {
	cap int

	mu sync.RWMutex
	m  map[string]cachedPlan
}

// cachedPlan is one plan-cache entry: the compiled plan and its
// merge-free verdict.
type cachedPlan struct {
	plan      *s2sql.Plan
	mergeFree bool
}

// newPlanCache returns a cache bounded to size entries (0 means
// DefaultPlanCacheSize), or nil — every method is nil-safe and a miss —
// when size is negative (caching disabled).
func newPlanCache(size int) *planCache {
	if size < 0 {
		return nil
	}
	if size == 0 {
		size = DefaultPlanCacheSize
	}
	return &planCache{cap: size, m: make(map[string]cachedPlan)}
}

func (c *planCache) get(query string) (cachedPlan, bool) {
	if c == nil {
		return cachedPlan{}, false
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.m[query]
	return e, ok
}

func (c *planCache) put(query string, e cachedPlan) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if len(c.m) >= c.cap {
		c.m = make(map[string]cachedPlan, c.cap)
	}
	c.m[query] = e
	c.mu.Unlock()
}

func (c *planCache) invalidate() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.m = make(map[string]cachedPlan)
	c.mu.Unlock()
}

func (c *planCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}
