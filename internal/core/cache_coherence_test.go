package core

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/datasource"
	"repro/internal/extract"
	"repro/internal/mapping"
	"repro/internal/workload"
)

// TestPlanCacheWarmsAndInvalidates exercises the plan-cache lifecycle:
// repeated queries share one compiled plan, and every catalog mutation —
// RegisterSource, RegisterMapping, SetClassKey — flushes it, since any
// of them can change what a plan's extraction schema resolves to.
func TestPlanCacheWarmsAndInvalidates(t *testing.T) {
	m, world := testMiddleware(t, workload.Spec{XMLSources: 1, RecordsPerSource: 3, Seed: 21})
	if got := m.PlanCacheLen(); got != 0 {
		t.Fatalf("fresh middleware plan cache len = %d", got)
	}
	for i := 0; i < 3; i++ {
		if _, err := m.Query(context.Background(), "SELECT product"); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.PlanCacheLen(); got != 1 {
		t.Fatalf("after 3 identical queries plan cache len = %d, want 1", got)
	}
	if _, err := m.Query(context.Background(), "SELECT watch"); err != nil {
		t.Fatal(err)
	}
	if got := m.PlanCacheLen(); got != 2 {
		t.Fatalf("after second query text plan cache len = %d, want 2", got)
	}

	refill := func() {
		t.Helper()
		if _, err := m.Query(context.Background(), "SELECT product"); err != nil {
			t.Fatal(err)
		}
		if m.PlanCacheLen() == 0 {
			t.Fatal("plan cache did not refill")
		}
	}

	world.Catalog.XML.MustAdd("extra.xml", "<catalog><watch><brand>Orient</brand></watch></catalog>")
	if err := m.RegisterSource(datasource.Definition{ID: "extra_xml", Kind: datasource.KindXML, Path: "extra.xml"}); err != nil {
		t.Fatal(err)
	}
	if got := m.PlanCacheLen(); got != 0 {
		t.Errorf("RegisterSource left plan cache len = %d, want 0", got)
	}
	refill()

	if err := m.RegisterMapping(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "extra_xml",
		Rule: mapping.Rule{Code: "/catalog/watch/brand"},
	}); err != nil {
		t.Fatal(err)
	}
	if got := m.PlanCacheLen(); got != 0 {
		t.Errorf("RegisterMapping left plan cache len = %d, want 0", got)
	}
	refill()

	if err := m.SetClassKey("product", "thing.product.model"); err != nil {
		t.Fatal(err)
	}
	if got := m.PlanCacheLen(); got != 0 {
		t.Errorf("SetClassKey left plan cache len = %d, want 0", got)
	}

	// Failed mutations must not flush: the catalog did not change.
	refill()
	warm := m.PlanCacheLen()
	if err := m.RegisterSource(datasource.Definition{ID: "extra_xml", Kind: datasource.KindXML, Path: "dup.xml"}); err == nil {
		t.Fatal("duplicate source ID accepted")
	}
	if got := m.PlanCacheLen(); got != warm {
		t.Errorf("failed RegisterSource flushed plan cache: len = %d, want %d", got, warm)
	}
}

// TestPlanCacheDisabled pins the negative-size escape hatch.
func TestPlanCacheDisabled(t *testing.T) {
	world := workload.MustGenerate(workload.Spec{XMLSources: 1, RecordsPerSource: 2, Seed: 22})
	m, err := New(Config{
		Ontology:      world.Ontology,
		Backends:      extract.FromCatalog(world.Catalog),
		PlanCacheSize: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := world.Apply(m); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := m.Query(context.Background(), "SELECT product"); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.PlanCacheLen(); got != 0 {
		t.Errorf("disabled plan cache holds %d entries", got)
	}
}

// TestStaleRuleAfterRemap is the remap regression test: after a query
// has warmed every cache layer (plan, schema, compiled rules, rule
// results), registering a new mapping for an already-queried attribute
// must surface the new rule's values on the very next query. A stale
// schema or plan would keep answering from the old rule set.
func TestStaleRuleAfterRemap(t *testing.T) {
	m, world := testMiddleware(t, workload.Spec{XMLSources: 1, RecordsPerSource: 3, Seed: 23})
	// Warm with CacheTTL-free options is fine: the schema and plan caches
	// are always on, which is what a remap can go stale against.
	before, err := m.Query(context.Background(), "SELECT product")
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Matched) != 3 {
		t.Fatalf("warm query matched = %d, want 3", len(before.Matched))
	}

	world.Catalog.XML.MustAdd("remap.xml", "<catalog><watch><brand>RemapBrand</brand></watch></catalog>")
	if err := m.RegisterSource(datasource.Definition{ID: "remap_xml", Kind: datasource.KindXML, Path: "remap.xml"}); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterMapping(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "remap_xml",
		Rule: mapping.Rule{Code: "/catalog/watch/brand"},
	}); err != nil {
		t.Fatal(err)
	}

	after, err := m.Query(context.Background(), "SELECT product WHERE brand='RemapBrand'")
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Matched) != 1 {
		t.Fatalf("remapped query matched = %d, want 1 (stale rule set?)", len(after.Matched))
	}
	all, err := m.Query(context.Background(), "SELECT product")
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Matched) != 4 {
		t.Errorf("post-remap full query matched = %d, want 4", len(all.Matched))
	}
}

// TestStalePushedPlanAfterRemap guards the query planner's rewrite
// cache: a constrained query caches pushed-down source plans (including
// rewritten SQL) per query shape, and a mapping mutation must flush
// them. If a stale rewrite survived the remap, the same query text
// would keep extracting from the pre-mutation source list.
func TestStalePushedPlanAfterRemap(t *testing.T) {
	m, world := testMiddleware(t, workload.Spec{DBSources: 1, XMLSources: 1, RecordsPerSource: 3, Seed: 25})
	world.Catalog.XML.MustAdd("fix.xml", "<catalog><watch><brand>PinnedBrand</brand></watch></catalog>")
	if err := m.RegisterSource(datasource.Definition{ID: "fix_xml", Kind: datasource.KindXML, Path: "fix.xml"}); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterMapping(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "fix_xml",
		Rule: mapping.Rule{Code: "/catalog/watch/brand"},
	}); err != nil {
		t.Fatal(err)
	}

	const q = "SELECT product WHERE brand = 'PinnedBrand'"
	// Two runs: the first populates the planner's rewrite cache (pushdown
	// rewrites the DB source's SQL and attaches record filters), the
	// second is served from it.
	for i := 0; i < 2; i++ {
		res, err := m.Query(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Matched) != 1 {
			t.Fatalf("run %d matched = %d, want 1", i, len(res.Matched))
		}
	}

	world.Catalog.XML.MustAdd("remap2.xml", "<catalog><watch><brand>PinnedBrand</brand></watch></catalog>")
	if err := m.RegisterSource(datasource.Definition{ID: "remap2_xml", Kind: datasource.KindXML, Path: "remap2.xml"}); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterMapping(mapping.Entry{
		AttributeID: "thing.product.brand", SourceID: "remap2_xml",
		Rule: mapping.Rule{Code: "/catalog/watch/brand"},
	}); err != nil {
		t.Fatal(err)
	}

	// The identical query text must now see the new source: a stale
	// pushed-down plan would still carry the two-source schema.
	res, err := m.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matched) != 2 {
		t.Errorf("post-remap matched = %d, want 2 (stale pushed-down plan served?)", len(res.Matched))
	}
}

// TestConcurrentQueriesWithInvalidation races warm queries against
// catalog mutations; under -race this is the coherence counterpart to
// TestStatsConcurrentQueries. Every query must still succeed and the
// final state must reflect the last mutation.
func TestConcurrentQueriesWithInvalidation(t *testing.T) {
	m, world := testMiddleware(t, workload.Spec{XMLSources: 1, RecordsPerSource: 4, Seed: 24})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := m.Query(context.Background(), "SELECT product"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i := 0; i < 4; i++ {
		id := "late_" + string(rune('a'+i))
		world.Catalog.XML.MustAdd(id+".xml", "<catalog><watch><brand>Late"+strings.ToUpper(id)+"</brand></watch></catalog>")
		if err := m.RegisterSource(datasource.Definition{ID: id, Kind: datasource.KindXML, Path: id + ".xml"}); err != nil {
			t.Fatal(err)
		}
		if err := m.RegisterMapping(mapping.Entry{
			AttributeID: "thing.product.brand", SourceID: id,
			Rule: mapping.Rule{Code: "/catalog/watch/brand"},
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	res, err := m.Query(context.Background(), "SELECT product")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matched) != 8 {
		t.Errorf("final matched = %d, want 8 (4 seeded + 4 late)", len(res.Matched))
	}
}
