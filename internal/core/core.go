// Package core assembles the S2S middleware (paper Figure 1): the ontology
// schema, the mapping module, the extractor manager, the query handler, and
// the instance generator behind one facade. A Middleware answers S2SQL
// queries — the single point of entry — by planning the query against the
// ontology, extracting raw data from every mapped source, compiling the
// fragments into ontology instances, and serializing them (OWL by default).
package core

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/datasource"
	"repro/internal/extract"
	"repro/internal/instance"
	"repro/internal/mapping"
	"repro/internal/ontology"
	"repro/internal/s2sql"
)

// Config configures a Middleware.
type Config struct {
	// Ontology is the shared domain schema. Required.
	Ontology *ontology.Ontology
	// Backends resolve registered sources to content. Required for queries
	// to extract anything.
	Backends extract.Backends
	// Extract tunes the extractor manager.
	Extract extract.Options
}

// Middleware is the S2S middleware instance.
type Middleware struct {
	ont     *ontology.Ontology
	sources *datasource.Registry
	repo    *mapping.Repository
	manager *extract.Manager
	gen     *instance.Generator

	mu    sync.Mutex
	stats Stats
}

// Stats aggregates middleware activity.
type Stats struct {
	// Queries is the number of Query calls served.
	Queries int
	// Instances is the total matched instances returned.
	Instances int
	// SourceErrors is the total per-source errors observed.
	SourceErrors int
	// ExtractTime accumulates extractor time across queries.
	ExtractTime time.Duration
	// PlanTime accumulates query-handling time across queries.
	PlanTime time.Duration
	// GenerateTime accumulates instance-generation time across queries.
	GenerateTime time.Duration
}

// New builds a middleware from a configuration.
func New(cfg Config) (*Middleware, error) {
	if cfg.Ontology == nil {
		return nil, fmt.Errorf("core: Config.Ontology is required")
	}
	if err := cfg.Ontology.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	sources := datasource.NewRegistry()
	repo := mapping.NewRepository(cfg.Ontology, sources)
	return &Middleware{
		ont:     cfg.Ontology,
		sources: sources,
		repo:    repo,
		manager: extract.NewManager(repo, cfg.Backends, cfg.Extract),
		gen:     instance.NewGenerator(cfg.Ontology, repo),
	}, nil
}

// NewWithCatalog builds a middleware whose backends read from an in-process
// source catalog — the common construction for examples and tests.
func NewWithCatalog(ont *ontology.Ontology, catalog *datasource.Catalog, opts extract.Options) (*Middleware, error) {
	return New(Config{Ontology: ont, Backends: extract.FromCatalog(catalog), Extract: opts})
}

// Ontology returns the middleware's ontology.
func (m *Middleware) Ontology() *ontology.Ontology { return m.ont }

// Sources returns the data source registry.
func (m *Middleware) Sources() *datasource.Registry { return m.sources }

// Mappings returns the attribute repository.
func (m *Middleware) Mappings() *mapping.Repository { return m.repo }

// RegisterSource adds a data source definition (paper §2.3.2).
func (m *Middleware) RegisterSource(def datasource.Definition) error {
	return m.sources.Register(def)
}

// RegisterMapping adds an attribute mapping (paper §2.3.1).
func (m *Middleware) RegisterMapping(e mapping.Entry) error {
	return m.repo.Register(e)
}

// SetClassKey declares the cross-source identity attribute of a class.
func (m *Middleware) SetClassKey(class, attributeID string) error {
	return m.repo.SetClassKey(class, attributeID)
}

// Query answers one S2SQL query: parse and plan (query handler), extract
// (extractor manager), generate (instance generator).
func (m *Middleware) Query(ctx context.Context, query string) (*instance.Result, error) {
	planStart := time.Now()
	plan, err := s2sql.ParseAndPlan(query, m.ont)
	if err != nil {
		return nil, err
	}
	planTime := time.Since(planStart)

	rs, err := m.manager.Extract(ctx, plan.AttributeIDs())
	if err != nil {
		return nil, err
	}

	genStart := time.Now()
	res, err := m.gen.Generate(plan, rs)
	if err != nil {
		return nil, err
	}
	genTime := time.Since(genStart)

	m.mu.Lock()
	m.stats.Queries++
	m.stats.Instances += len(res.Matched)
	m.stats.SourceErrors += len(res.Errors)
	m.stats.PlanTime += planTime
	m.stats.ExtractTime += rs.Stats.SchemaDuration + rs.Stats.ExtractDuration
	m.stats.GenerateTime += genTime
	m.mu.Unlock()
	return res, nil
}

// QueryTo answers a query and serializes the result to w in the given
// format.
func (m *Middleware) QueryTo(ctx context.Context, w io.Writer, query string, format instance.Format) (*instance.Result, error) {
	res, err := m.Query(ctx, query)
	if err != nil {
		return nil, err
	}
	if err := m.gen.Serialize(w, res, format); err != nil {
		return nil, err
	}
	return res, nil
}

// QueryString answers a query and returns the serialized result.
func (m *Middleware) QueryString(ctx context.Context, query string, format instance.Format) (string, error) {
	res, err := m.Query(ctx, query)
	if err != nil {
		return "", err
	}
	return m.gen.SerializeString(res, format)
}

// Generator exposes the instance generator (for custom serialization).
func (m *Middleware) Generator() *instance.Generator { return m.gen }

// SourceHealth returns per-source circuit breaker state (nil when the
// breaker is disabled in the extract options).
func (m *Middleware) SourceHealth() []extract.SourceHealth {
	return m.manager.Health()
}

// Stats returns a snapshot of cumulative statistics.
func (m *Middleware) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}
