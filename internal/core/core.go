// Package core assembles the S2S middleware (paper Figure 1): the ontology
// schema, the mapping module, the extractor manager, the query handler, and
// the instance generator behind one facade. A Middleware answers S2SQL
// queries — the single point of entry — by planning the query against the
// ontology, extracting raw data from every mapped source, compiling the
// fragments into ontology instances, and serializing them (OWL by default).
package core

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/datasource"
	"repro/internal/extract"
	"repro/internal/instance"
	"repro/internal/mapping"
	"repro/internal/obs"
	"repro/internal/ontology"
	"repro/internal/planner"
	"repro/internal/s2sql"
	"repro/internal/stats"
)

// Config configures a Middleware.
type Config struct {
	// Ontology is the shared domain schema. Required.
	Ontology *ontology.Ontology
	// Backends resolve registered sources to content. Required for queries
	// to extract anything.
	Backends extract.Backends
	// Extract tunes the extractor manager.
	Extract extract.Options
	// TraceCapacity bounds the in-memory ring of completed query traces;
	// 0 uses obs.DefaultTraceCapacity.
	TraceCapacity int
	// PlanCacheSize bounds the S2SQL plan cache (query string → compiled
	// plan); 0 uses DefaultPlanCacheSize, negative disables the cache.
	PlanCacheSize int
}

// Middleware is the S2S middleware instance.
type Middleware struct {
	ont     *ontology.Ontology
	sources *datasource.Registry
	repo    *mapping.Repository
	manager *extract.Manager
	gen     *instance.Generator
	plans   *planCache

	// streaming mirrors Config.Extract.Streaming: when set, Query and
	// QueryTo run the streaming pipeline (batched extraction, windowed
	// assembly, chunked serialization) instead of materializing. Answers
	// are byte-identical either way; see docs/STREAMING.md.
	streaming bool
	// eagerDisabled mirrors Config.Extract.DisableEagerStream: when set,
	// QueryToStream keeps the ordering barrier even for queries the
	// planner proved merge-free. Bytes are identical either way.
	eagerDisabled bool

	tracer  *obs.Tracer
	metrics *obs.Registry
	stats   statsCounters
}

// Stats aggregates middleware activity.
type Stats struct {
	// Queries is the number of Query calls served (failures included).
	Queries int
	// Instances is the total matched instances returned.
	Instances int
	// SourceErrors is the total per-source errors observed.
	SourceErrors int
	// ExtractTime accumulates extractor time across queries.
	ExtractTime time.Duration
	// PlanTime accumulates query-handling time across queries.
	PlanTime time.Duration
	// GenerateTime accumulates instance-generation time across queries.
	GenerateTime time.Duration
}

// statsCounters is the race-safe accumulator behind Stats: plain atomics
// so concurrent Query calls and Stats snapshots never contend on a lock.
type statsCounters struct {
	queries      atomic.Int64
	instances    atomic.Int64
	sourceErrors atomic.Int64
	planNS       atomic.Int64
	extractNS    atomic.Int64
	generateNS   atomic.Int64
}

// New builds a middleware from a configuration.
func New(cfg Config) (*Middleware, error) {
	if cfg.Ontology == nil {
		return nil, fmt.Errorf("core: Config.Ontology is required")
	}
	if err := cfg.Ontology.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	sources := datasource.NewRegistry()
	repo := mapping.NewRepository(cfg.Ontology, sources)
	return &Middleware{
		ont:           cfg.Ontology,
		sources:       sources,
		repo:          repo,
		manager:       extract.NewManager(repo, cfg.Backends, cfg.Extract),
		gen:           instance.NewGenerator(cfg.Ontology, repo),
		plans:         newPlanCache(cfg.PlanCacheSize),
		streaming:     cfg.Extract.Streaming,
		eagerDisabled: cfg.Extract.DisableEagerStream,
		tracer:        obs.NewTracer(cfg.TraceCapacity),
		metrics:       obs.NewRegistry(),
	}, nil
}

// NewWithCatalog builds a middleware whose backends read from an in-process
// source catalog — the common construction for examples and tests.
func NewWithCatalog(ont *ontology.Ontology, catalog *datasource.Catalog, opts extract.Options) (*Middleware, error) {
	return New(Config{Ontology: ont, Backends: extract.FromCatalog(catalog), Extract: opts})
}

// Ontology returns the middleware's ontology.
func (m *Middleware) Ontology() *ontology.Ontology { return m.ont }

// Sources returns the data source registry.
func (m *Middleware) Sources() *datasource.Registry { return m.sources }

// Mappings returns the attribute repository.
func (m *Middleware) Mappings() *mapping.Repository { return m.repo }

// Tracer returns the middleware's query tracer (the ring of completed
// span trees behind GET /trace/last and s2s-query -trace).
func (m *Middleware) Tracer() *obs.Tracer { return m.tracer }

// Metrics returns the middleware's metrics registry (behind GET /metrics).
func (m *Middleware) Metrics() *obs.Registry { return m.metrics }

// RegisterSource adds a data source definition (paper §2.3.2).
func (m *Middleware) RegisterSource(def datasource.Definition) error {
	if err := m.sources.Register(def); err != nil {
		return err
	}
	m.invalidateCaches()
	return nil
}

// RegisterMapping adds an attribute mapping (paper §2.3.1).
func (m *Middleware) RegisterMapping(e mapping.Entry) error {
	if err := m.repo.Register(e); err != nil {
		return err
	}
	m.invalidateCaches()
	return nil
}

// SetClassKey declares the cross-source identity attribute of a class.
func (m *Middleware) SetClassKey(class, attributeID string) error {
	if err := m.repo.SetClassKey(class, attributeID); err != nil {
		return err
	}
	m.invalidateCaches()
	return nil
}

// invalidateCaches flushes every cache whose contents could be stale
// after a catalog mutation: the plan cache here and the extractor
// manager's compiled-rule and result caches. Called after each
// successful RegisterSource/RegisterMapping/SetClassKey so a remapped
// rule can never serve results compiled or cached under the old
// mapping.
func (m *Middleware) invalidateCaches() {
	m.plans.invalidate()
	m.manager.InvalidateCache()
}

// PlanCacheLen reports the number of cached query plans (introspection
// for tests and the ops surface).
func (m *Middleware) PlanCacheLen() int { return m.plans.len() }

// beginQuery opens the query's trace root (joining any trace already
// active in ctx), injects the metrics registry, and returns the finish
// callback that stamps the outcome, records query metrics, and ends the
// root span.
func (m *Middleware) beginQuery(ctx context.Context, query string) (context.Context, func(*instance.Result, error)) {
	ctx = obs.ContextWithMetrics(ctx, m.metrics)
	ctx, root := m.tracer.StartTrace(ctx, "query")
	root.SetAttr("query", query)
	start := time.Now()
	return ctx, func(res *instance.Result, err error) {
		outcome := "ok"
		if err != nil {
			outcome = "error"
			root.SetAttr("error", err.Error())
		}
		root.SetAttr("outcome", outcome)
		m.metrics.Counter(obs.MetricQueryTotal, obs.Labels{"outcome": outcome}).Inc()
		m.metrics.Histogram(obs.MetricQueryDuration, nil).Observe(time.Since(start).Seconds())
		m.stats.queries.Add(1)
		if res != nil {
			m.metrics.Counter(obs.MetricInstances, nil).Add(uint64(len(res.Matched)))
			m.stats.instances.Add(int64(len(res.Matched)))
			m.stats.sourceErrors.Add(int64(len(res.Errors)))
			root.SetAttr("matched", strconv.Itoa(len(res.Matched)))
			root.SetAttr("source_errors", strconv.Itoa(len(res.Errors)))
		}
		root.End()
	}
}

// planQuery runs the traced parse-and-plan stage through the plan
// cache. Alongside the compiled plan it returns the planner's
// merge-free verdict, computed once per cache miss and cached with the
// plan (the cache flushes on every catalog mutation, so the verdict
// never outlives the state it was proved against).
func (m *Middleware) planQuery(ctx context.Context, query string) (*s2sql.Plan, bool, error) {
	planStart := time.Now()
	_, pspan, pdone := obs.StartStage(ctx, "parse_plan")
	entry, ok := m.plans.get(query)
	if ok {
		pspan.SetAttr("plan_cache", "hit")
	} else {
		pspan.SetAttr("plan_cache", "miss")
		plan, err := s2sql.ParseAndPlan(query, m.ont)
		if err != nil {
			pdone()
			m.stats.planNS.Add(int64(time.Since(planStart)))
			return nil, false, err
		}
		entry = cachedPlan{plan: plan, mergeFree: m.proveMergeFree(plan)}
		m.plans.put(query, entry)
	}
	pdone()
	m.stats.planNS.Add(int64(time.Since(planStart)))
	pspan.SetAttr("attributes", strconv.Itoa(len(entry.plan.AttributeIDs())))
	pspan.SetAttr("merge_free", strconv.FormatBool(entry.mergeFree))
	return entry.plan, entry.mergeFree, nil
}

// proveMergeFree runs the planner's merge-free proof over the plan's
// unrewritten extraction schema and counts the outcome
// (s2s_planner_mergefree_total). A schema error declines conservatively;
// extraction will surface the error itself.
func (m *Middleware) proveMergeFree(plan *s2sql.Plan) bool {
	verdict := planner.MergeFreeVerdict{Outcome: planner.MergeFreeUnmappedAttr, Detail: "schema unavailable"}
	if plans, _, err := m.repo.Schema(plan.AttributeIDs()); err == nil {
		verdict = planner.ProveMergeFree(m.ont, m.repo.ClassKeys(), plans)
	}
	m.metrics.Counter(obs.MetricPlannerMergeFree, obs.Labels{"outcome": verdict.Outcome}).Inc()
	return verdict.OK
}

// answer runs the traced pipeline body: parse and plan (query handler),
// extract (extractor manager), generate (instance generator). With the
// Streaming option set the extract and generate stages run as a
// producer/consumer pair over fragment batches instead.
func (m *Middleware) answer(ctx context.Context, query string) (*instance.Result, error) {
	plan, mergeFree, err := m.planQuery(ctx, query)
	if err != nil {
		return nil, err
	}
	if m.streaming {
		return m.generateStreaming(ctx, plan, mergeFree)
	}

	// ExtractQuery hands the full plan to the extractor so the query
	// planner (internal/planner) can push the WHERE conditions toward the
	// sources; the instance generator re-applies them regardless.
	rs, err := m.manager.ExtractQuery(ctx, plan)
	if err != nil {
		return nil, err
	}
	m.stats.extractNS.Add(int64(rs.Stats.SchemaDuration + rs.Stats.ExtractDuration))

	genStart := time.Now()
	res, err := m.gen.GenerateContextOpts(ctx, plan, rs, instance.GenOptions{MergeFree: mergeFree})
	m.stats.generateNS.Add(int64(time.Since(genStart)))
	if err != nil {
		return nil, err
	}
	return res, nil
}

// generateStreaming runs the streaming extract+generate pair for a
// planned query. Extraction overlaps generation, so the generate time
// recorded here includes waiting on batches; the extract time comes
// from the stream's tail stats.
func (m *Middleware) generateStreaming(ctx context.Context, plan *s2sql.Plan, mergeFree bool) (*instance.Result, error) {
	st, err := m.manager.ExtractQueryStream(ctx, plan)
	if err != nil {
		return nil, err
	}
	genStart := time.Now()
	res, err := m.gen.GenerateStreamContextOpts(ctx, plan, st, instance.GenOptions{MergeFree: mergeFree})
	m.stats.generateNS.Add(int64(time.Since(genStart)))
	if err != nil {
		// Drain so the producer can finish and release its budget.
		go func() {
			for range st.Batches {
			}
		}()
		return nil, err
	}
	tail := st.Tail()
	m.stats.extractNS.Add(int64(tail.Stats.SchemaDuration + tail.Stats.ExtractDuration))
	return res, nil
}

// Plan parses and plans a query through the plan cache without running
// it. The cluster coordinator uses it to learn the query's attribute
// set — and from it the owning nodes — before any extraction happens;
// the later QueryWithExtractor call replans through the same cache, so
// the work is paid once.
func (m *Middleware) Plan(ctx context.Context, query string) (*s2sql.Plan, error) {
	plan, _, err := m.PlanMergeFree(ctx, query)
	return plan, err
}

// PlanMergeFree is Plan exposing the planner's merge-free verdict for
// the query (cached with the plan). The transport's stream endpoint
// uses it to decide, before the response headers go out, whether the
// body will be emitted barrier-free.
func (m *Middleware) PlanMergeFree(ctx context.Context, query string) (*s2sql.Plan, bool, error) {
	ctx = obs.ContextWithMetrics(ctx, m.metrics)
	return m.planQuery(ctx, query)
}

// EagerStream reports whether QueryToStream will emit barrier-free for
// a query with the given merge-free verdict in the given format: the
// proof must hold, the format's serialization must be
// instance-incremental (instance.EagerFormat), and the
// DisableEagerStream rollback knob must be off. The transport calls it
// with PlanMergeFree's verdict to choose the stream-mode header before
// the response commits.
func (m *Middleware) EagerStream(mergeFree bool, format instance.Format) bool {
	return mergeFree && !m.eagerDisabled && instance.EagerFormat(format)
}

// ExtractPlanSources runs the extraction stage for an already-planned
// query restricted to the given source IDs (see
// extract.Manager.ExtractQuerySources). Cluster nodes call it to
// extract exactly the sources they own; the coordinator merges the
// per-node result sets and finishes the pipeline via
// QueryWithExtractor.
func (m *Middleware) ExtractPlanSources(ctx context.Context, plan *s2sql.Plan, sources []string) (*extract.ResultSet, error) {
	ctx = obs.ContextWithMetrics(ctx, m.metrics)
	return m.manager.ExtractQuerySources(ctx, plan, sources)
}

// OrderExtractSources returns sourceIDs in the extractor's current cost
// order for the plan: cheapest-most-selective first, cold sources in
// their given order. Restricted extraction (ExtractPlanSources)
// preserves the caller's order, so a cluster coordinator calls this to
// embed its ordering hint in each node's scatter list.
func (m *Middleware) OrderExtractSources(plan *s2sql.Plan, sourceIDs []string) []string {
	return m.manager.OrderSources(plan, sourceIDs)
}

// QueryWithExtractor answers one S2SQL query like Query, but with the
// extraction stage supplied by the caller: extractFn receives the
// planned query and must return the complete result set (canonically
// sorted, failovers marked). The cluster coordinator injects its
// scatter-gather merge here, so planning, instance generation,
// tracing, and metrics are exactly the single-node pipeline — which is
// what keeps clustered answers byte-identical.
func (m *Middleware) QueryWithExtractor(ctx context.Context, query string, extractFn func(context.Context, *s2sql.Plan) (*extract.ResultSet, error)) (*instance.Result, error) {
	ctx, finish := m.beginQuery(ctx, query)
	res, err := func() (*instance.Result, error) {
		plan, mergeFree, err := m.planQuery(ctx, query)
		if err != nil {
			return nil, err
		}
		rs, err := extractFn(ctx, plan)
		if err != nil {
			return nil, err
		}
		m.stats.extractNS.Add(int64(rs.Stats.SchemaDuration + rs.Stats.ExtractDuration))
		genStart := time.Now()
		res, err := m.gen.GenerateContextOpts(ctx, plan, rs, instance.GenOptions{MergeFree: mergeFree})
		m.stats.generateNS.Add(int64(time.Since(genStart)))
		return res, err
	}()
	finish(res, err)
	return res, err
}

// Query answers one S2SQL query: parse and plan (query handler), extract
// (extractor manager), generate (instance generator). The full pipeline
// is traced; the completed span tree is retained by Tracer.
func (m *Middleware) Query(ctx context.Context, query string) (*instance.Result, error) {
	ctx, finish := m.beginQuery(ctx, query)
	res, err := m.answer(ctx, query)
	finish(res, err)
	return res, err
}

// QueryTo answers a query and serializes the result to w in the given
// format; serialization is part of the query's trace. With the
// Streaming option set, serialization is chunked: w receives bounded
// incremental writes instead of one whole-document write (the bytes
// are identical).
func (m *Middleware) QueryTo(ctx context.Context, w io.Writer, query string, format instance.Format) (*instance.Result, error) {
	ctx, finish := m.beginQuery(ctx, query)
	res, err := m.answer(ctx, query)
	if err == nil {
		if m.streaming {
			_, err = m.gen.SerializeChunkedContext(ctx, w, res, format, 0)
		} else {
			err = m.gen.SerializeContext(ctx, w, res, format)
		}
	}
	finish(res, err)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// QueryToStream answers a query through the streaming pipeline
// regardless of the Streaming option and serializes the result to w in
// bounded chunks — the transport's /query/stream endpoint hands it an
// http.Flusher-backed writer so every chunk reaches the wire as a
// chunked-transfer frame. When the planner proved the query merge-free
// and the format supports it (and DisableEagerStream is off), the body
// is emitted barrier-free: instances stream out as extraction windows
// close, so the first instance reaches w while slower sources are still
// extracting; otherwise the ordering barrier runs. The bytes are
// identical either way. The result and chunk statistics are returned
// alongside any error; a serialization error may surface after part of
// the body was already written, which is why the transport signals
// completion in trailers.
func (m *Middleware) QueryToStream(ctx context.Context, w io.Writer, query string, format instance.Format) (*instance.Result, instance.ChunkStats, error) {
	ctx, finish := m.beginQuery(ctx, query)
	var stats instance.ChunkStats
	res, err := func() (*instance.Result, error) {
		plan, mergeFree, err := m.planQuery(ctx, query)
		if err != nil {
			return nil, err
		}
		if mergeFree && !m.eagerDisabled && instance.EagerFormat(format) {
			st, err := m.manager.ExtractQueryStream(ctx, plan)
			if err != nil {
				return nil, err
			}
			var res *instance.Result
			res, stats, err = m.gen.GenerateStreamEagerContext(ctx, plan, st, w, format, 0)
			if err == nil {
				tail := st.Tail()
				m.stats.extractNS.Add(int64(tail.Stats.SchemaDuration + tail.Stats.ExtractDuration))
			}
			return res, err
		}
		res, err := m.generateStreaming(ctx, plan, mergeFree)
		if err != nil {
			return nil, err
		}
		stats, err = m.gen.SerializeChunkedContext(ctx, w, res, format, 0)
		return res, err
	}()
	finish(res, err)
	if err != nil {
		return res, stats, err
	}
	return res, stats, nil
}

// QueryStreamed answers a query through the streaming extract+generate
// pipeline regardless of the Streaming option, without serializing.
// The transport's /query/stream endpoint uses it so it can emit
// response headers (matched/related counts) between generation and the
// first body byte, then serialize in chunks straight to the wire.
func (m *Middleware) QueryStreamed(ctx context.Context, query string) (*instance.Result, error) {
	ctx, finish := m.beginQuery(ctx, query)
	res, err := func() (*instance.Result, error) {
		plan, mergeFree, err := m.planQuery(ctx, query)
		if err != nil {
			return nil, err
		}
		return m.generateStreaming(ctx, plan, mergeFree)
	}()
	finish(res, err)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// StreamingEnabled reports whether the middleware was configured with
// the streaming pipeline (extract.Options.Streaming).
func (m *Middleware) StreamingEnabled() bool { return m.streaming }

// QueryString answers a query and returns the serialized result.
func (m *Middleware) QueryString(ctx context.Context, query string, format instance.Format) (string, error) {
	var buf bytes.Buffer
	if _, err := m.QueryTo(ctx, &buf, query, format); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// Generator exposes the instance generator (for custom serialization).
func (m *Middleware) Generator() *instance.Generator { return m.gen }

// SourceHealth returns per-source circuit breaker state (nil when the
// breaker is disabled in the extract options).
func (m *Middleware) SourceHealth() []extract.SourceHealth {
	return m.manager.Health()
}

// SourceStats exposes the extractor's per-source statistics registry —
// the cost model behind source ordering. s2s-server persists it across
// restarts via stats.Registry.Save/Load (-stats-file).
func (m *Middleware) SourceStats() *stats.Registry {
	return m.manager.SourceStats()
}

// Stats returns a snapshot of cumulative statistics. Safe to call
// concurrently with Query.
func (m *Middleware) Stats() Stats {
	return Stats{
		Queries:      int(m.stats.queries.Load()),
		Instances:    int(m.stats.instances.Load()),
		SourceErrors: int(m.stats.sourceErrors.Load()),
		PlanTime:     time.Duration(m.stats.planNS.Load()),
		ExtractTime:  time.Duration(m.stats.extractNS.Load()),
		GenerateTime: time.Duration(m.stats.generateNS.Load()),
	}
}
