package core_test

// eager_test.go pins the barrier-free streaming contract: on a world
// whose queries the planner proves merge-free (the flat paper ontology —
// no relations, no class keys), the eager emission path, the barrier
// streaming path, and the materializing path produce byte-identical
// output for every query and format; and the multi-query batch pipeline
// answers exactly like N sequential single queries.

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/instance"
	"repro/internal/obs"
	"repro/internal/workload"
)

func buildFlatWorld(t *testing.T, opts extract.Options) *core.Middleware {
	t.Helper()
	spec := workload.Spec{
		DBSources: 2, XMLSources: 2, WebSources: 2, TextSources: 2,
		RecordsPerSource: 12,
		Seed:             21,
		FlatOntology:     true,
	}
	world := workload.MustGenerate(spec)
	mw, err := core.New(core.Config{
		Ontology: world.Ontology,
		Backends: extract.FromCatalog(world.Catalog),
		Extract:  opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := world.Apply(mw); err != nil {
		t.Fatal(err)
	}
	return mw
}

// TestFlatWorldProvesMergeFree guards the fixture itself: every
// equivalence query must prove merge-free on the flat world, otherwise
// the eager tests below would silently exercise the barrier fallback.
func TestFlatWorldProvesMergeFree(t *testing.T) {
	ctx := context.Background()
	mw := buildFlatWorld(t, extract.Options{})
	for _, q := range equivalenceQueries {
		_, mergeFree, err := mw.PlanMergeFree(ctx, q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		if !mergeFree {
			t.Errorf("%q: not proved merge-free on the flat world", q)
		}
	}
	if n := mw.Metrics().Counter(obs.MetricPlannerMergeFree, obs.Labels{"outcome": obs.OutcomeMergeFreeProved}).Value(); n == 0 {
		t.Error("s2s_planner_mergefree_total{outcome=proved} = 0, want > 0")
	}
}

// TestEagerStreamingEquivalence is the barrier-free byte-equivalence
// suite: for every query and every format, QueryToStream with eager
// emission enabled (merge-free proof holds, 4-record windows force
// multi-window interleaving) matches both the barrier streaming path
// (DisableEagerStream) and the materializing path byte for byte.
func TestEagerStreamingEquivalence(t *testing.T) {
	ctx := context.Background()
	base := buildFlatWorld(t, extract.Options{})
	eager := buildFlatWorld(t, extract.Options{Streaming: true, StreamBatchRecords: 4})
	barrier := buildFlatWorld(t, extract.Options{Streaming: true, StreamBatchRecords: 4, DisableEagerStream: true})
	formats := []instance.Format{
		instance.FormatOWL, instance.FormatTurtle, instance.FormatNTriples,
		instance.FormatXML, instance.FormatJSON, instance.FormatText,
	}
	for _, q := range equivalenceQueries {
		for _, f := range formats {
			want, err := base.QueryString(ctx, q, f)
			if err != nil {
				t.Fatalf("materializing %q %v: %v", q, f, err)
			}
			var eagerOut, barrierOut bytes.Buffer
			if _, _, err := eager.QueryToStream(ctx, &eagerOut, q, f); err != nil {
				t.Fatalf("eager %q %v: %v", q, f, err)
			}
			if _, _, err := barrier.QueryToStream(ctx, &barrierOut, q, f); err != nil {
				t.Fatalf("barrier %q %v: %v", q, f, err)
			}
			if eagerOut.String() != want {
				t.Errorf("eager %q %v: output diverges from materializing path\nwant:\n%s\ngot:\n%s",
					q, f, clip(want), clip(eagerOut.String()))
			}
			if barrierOut.String() != want {
				t.Errorf("barrier %q %v: output diverges from materializing path\nwant:\n%s\ngot:\n%s",
					q, f, clip(want), clip(barrierOut.String()))
			}
		}
	}
}

// TestEagerResultMatchesBarrier compares the structured result — counts
// and error lists — returned alongside the eager bytes.
func TestEagerResultMatchesBarrier(t *testing.T) {
	ctx := context.Background()
	eager := buildFlatWorld(t, extract.Options{Streaming: true, StreamBatchRecords: 4})
	barrier := buildFlatWorld(t, extract.Options{Streaming: true, StreamBatchRecords: 4, DisableEagerStream: true})
	for _, q := range equivalenceQueries {
		var eb, bb bytes.Buffer
		got, gotStats, err := eager.QueryToStream(ctx, &eb, q, instance.FormatJSON)
		if err != nil {
			t.Fatalf("eager %q: %v", q, err)
		}
		want, _, err := barrier.QueryToStream(ctx, &bb, q, instance.FormatJSON)
		if err != nil {
			t.Fatalf("barrier %q: %v", q, err)
		}
		if len(got.Matched) != len(want.Matched) || len(got.Errors) != len(want.Errors) {
			t.Errorf("%q: matched/errors = %d/%d, want %d/%d",
				q, len(got.Matched), len(got.Errors), len(want.Matched), len(want.Errors))
		}
		if gotStats.Bytes != int64(eb.Len()) {
			t.Errorf("%q: eager stats.Bytes = %d, want %d", q, gotStats.Bytes, eb.Len())
		}
	}
}

// TestQueryBatchMatchesSequential runs the equivalence suite as one
// batch and as N sequential queries on identically built worlds; every
// per-query result must serialize byte-identically, and a bad query in
// the batch must fail alone.
func TestQueryBatchMatchesSequential(t *testing.T) {
	ctx := context.Background()
	seq := buildEquivalenceWorld(t, extract.Options{})
	batch := buildEquivalenceWorld(t, extract.Options{})

	results, errs := batch.QueryBatch(ctx, equivalenceQueries)
	for i, q := range equivalenceQueries {
		if errs[i] != nil {
			t.Fatalf("batch %q: %v", q, errs[i])
		}
		want, err := seq.QueryString(ctx, q, instance.FormatJSON)
		if err != nil {
			t.Fatalf("sequential %q: %v", q, err)
		}
		got, err := batch.Generator().SerializeString(results[i], instance.FormatJSON)
		if err != nil {
			t.Fatalf("serializing batch result %q: %v", q, err)
		}
		if got != want {
			t.Errorf("%q: batch result diverges from sequential\nwant:\n%s\ngot:\n%s", q, clip(want), clip(got))
		}
	}

	queries := []string{"SELECT product", "SELECT nonsense FROM", "SELECT provider"}
	results, errs = batch.QueryBatch(ctx, queries)
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("good queries failed: %v / %v", errs[0], errs[2])
	}
	if errs[1] == nil {
		t.Error("malformed query in batch did not fail")
	}
	if results[0] == nil || results[2] == nil || results[1] != nil {
		t.Errorf("result slots = [%v %v %v], want [set nil set]",
			results[0] != nil, results[1] != nil, results[2] != nil)
	}
}

// TestQueryBatchToSinksEveryResult checks the serializing variant: the
// sink sees each successful result exactly once, in query order, and a
// sink error becomes that query's error.
func TestQueryBatchToSinksEveryResult(t *testing.T) {
	ctx := context.Background()
	mw := buildEquivalenceWorld(t, extract.Options{})
	queries := []string{"SELECT product", "SELECT provider", "SELECT watch"}
	var seen []int
	_, errs := mw.QueryBatchTo(ctx, queries, func(i int, res *instance.Result) error {
		seen = append(seen, i)
		if res == nil {
			t.Errorf("sink %d: nil result", i)
		}
		if i == 1 {
			return context.Canceled
		}
		return nil
	})
	if len(seen) != 3 || seen[0] != 0 || seen[1] != 1 || seen[2] != 2 {
		t.Errorf("sink order = %v, want [0 1 2]", seen)
	}
	if errs[0] != nil || errs[2] != nil {
		t.Errorf("unexpected errors: %v / %v", errs[0], errs[2])
	}
	if errs[1] == nil || !strings.Contains(errs[1].Error(), "canceled") {
		t.Errorf("sink error not propagated: %v", errs[1])
	}
}
