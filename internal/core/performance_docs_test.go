package core

import (
	"os"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/extract"
)

const perfDocPath = "../../docs/PERFORMANCE.md"

// TestPerformanceDocKnobsExist keeps docs/PERFORMANCE.md and the code
// in lockstep, the same contract the observability and robustness docs
// have: every `extract.Options.X` / `core.Config.X` knob the document
// names must be a real struct field, and the tuning knobs that exist
// must be documented.
func TestPerformanceDocKnobsExist(t *testing.T) {
	raw, err := os.ReadFile(perfDocPath)
	if err != nil {
		t.Fatalf("read %s: %v", perfDocPath, err)
	}
	doc := string(raw)

	optFields := map[string]bool{}
	ot := reflect.TypeOf(extract.Options{})
	for i := 0; i < ot.NumField(); i++ {
		optFields[ot.Field(i).Name] = true
	}
	cfgFields := map[string]bool{}
	ct := reflect.TypeOf(Config{})
	for i := 0; i < ct.NumField(); i++ {
		cfgFields[ct.Field(i).Name] = true
	}

	for _, m := range regexp.MustCompile("`extract\\.Options\\.(\\w+)`").FindAllStringSubmatch(doc, -1) {
		if !optFields[m[1]] {
			t.Errorf("doc names %s, which is not a field of extract.Options", m[0])
		}
	}
	for _, m := range regexp.MustCompile("`core\\.Config\\.(\\w+)`").FindAllStringSubmatch(doc, -1) {
		if !cfgFields[m[1]] {
			t.Errorf("doc names %s, which is not a field of core.Config", m[0])
		}
	}

	// The knobs the caching layer exposes must all be documented.
	for _, knob := range []string{
		"`core.Config.PlanCacheSize`",
		"`extract.Options.CacheTTL`",
		"`extract.Options.Parallelism`",
		"`extract.Options.RuleParallelism`",
		"`extract.Options.SimulatedLatency`",
		"`extract.Options.DisablePushdown`",
		"`extract.Options.DisableEagerStream`",
	} {
		if !strings.Contains(doc, knob) {
			t.Errorf("tuning knob %s missing from %s", knob, perfDocPath)
		}
	}

	// Documented defaults must track the constants.
	for name, val := range map[string]int{
		"PlanCacheSize":   DefaultPlanCacheSize,
		"Parallelism":     extract.DefaultParallelism,
		"RuleParallelism": extract.DefaultRuleParallelism,
	} {
		if !strings.Contains(doc, strconv.Itoa(val)) {
			t.Errorf("default for %s (%d) not stated in %s", name, val, perfDocPath)
		}
	}
}

// TestPerformanceDocCoversBenchesAndTests pins the doc's pointers: the
// benchmark families it describes and the coherence test files it
// cites must exist.
func TestPerformanceDocCoversBenchesAndTests(t *testing.T) {
	raw, err := os.ReadFile(perfDocPath)
	if err != nil {
		t.Fatalf("read %s: %v", perfDocPath, err)
	}
	doc := string(raw)
	for _, want := range []string{
		"BenchmarkE15RepeatedQuery", "BenchmarkE16ConcurrentQuery",
		"BenchmarkE17SelectiveQuery", "BENCH_query_opt.json",
		"BENCH_pushdown.json", "bench-compare", "InvalidateCache",
		"BenchmarkE21FirstInstance", "BENCH_firstinstance.json",
		"first_instance_ns", "BenchmarkE22Batch", "BENCH_batch.json",
		"-stats-file",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("%s missing from %s", want, perfDocPath)
		}
	}
	bench, err := os.ReadFile("../../bench_test.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range []string{
		"BenchmarkE15RepeatedQuery", "BenchmarkE16ConcurrentQuery",
		"BenchmarkE17SelectiveQuery", "BenchmarkE21FirstInstance", "BenchmarkE22Batch",
	} {
		if !strings.Contains(string(bench), "func "+fn) {
			t.Errorf("doc describes %s, which bench_test.go does not define", fn)
		}
	}
	for _, path := range []string{
		"cache_coherence_test.go",
		"../extract/coherence_test.go",
		"../../docs/PERFORMANCE.md",
	} {
		if _, err := os.Stat(path); err != nil {
			t.Errorf("doc cites %s: %v", path, err)
		}
	}
}
