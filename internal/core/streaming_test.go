package core_test

// streaming_test.go proves the streaming pipeline's central contract:
// for every query and every format, the streaming path (batched
// extraction, windowed assembly, chunked serialization) produces
// byte-identical output to the materializing path. The batch window is
// forced small so every source spans several windows — the regime where
// windowed assembly could diverge if its ordering argument were wrong.

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/datasource"
	"repro/internal/extract"
	"repro/internal/instance"
	"repro/internal/mapping"
	"repro/internal/obs"
	"repro/internal/workload"
)

// equivalenceQueries mirrors the planner's pushdown equivalence suite:
// full scans, equality and LIKE pushdowns, conjunctions, numeric
// ranges, and a query matching nothing.
var equivalenceQueries = []string{
	"SELECT product",
	"SELECT product WHERE brand = 'Seiko'",
	"SELECT product WHERE brand LIKE 'sei%'",
	"SELECT product WHERE brand = 'Seiko' AND case = 'stainless-steel'",
	"SELECT watch WHERE water_resistance >= 100",
	"SELECT product WHERE price > 100 AND brand = 'Seiko'",
	"SELECT product WHERE brand = 'NoSuchBrand'",
	"SELECT provider WHERE name LIKE '%a%'",
	"SELECT product WHERE water_resistance >= 100 AND brand LIKE '%s%'",
}

func buildEquivalenceWorld(t *testing.T, opts extract.Options) *core.Middleware {
	t.Helper()
	spec := workload.Spec{
		DBSources: 2, XMLSources: 2, WebSources: 2, TextSources: 2,
		RecordsPerSource: 12,
		Seed:             21,
	}
	world := workload.MustGenerate(spec)
	mw, err := core.New(core.Config{
		Ontology: world.Ontology,
		Backends: extract.FromCatalog(world.Catalog),
		Extract:  opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := world.Apply(mw); err != nil {
		t.Fatal(err)
	}
	return mw
}

// TestStreamingEquivalence runs the full equivalence suite in every
// serialization format against three middlewares: materializing,
// streaming with the default window, and streaming with a 4-record
// window (each 12-record source then emits 3 batches). All outputs
// must be byte-identical to the materializing answer.
func TestStreamingEquivalence(t *testing.T) {
	ctx := context.Background()
	base := buildEquivalenceWorld(t, extract.Options{})
	variants := map[string]*core.Middleware{
		"stream-default": buildEquivalenceWorld(t, extract.Options{Streaming: true}),
		"stream-window4": buildEquivalenceWorld(t, extract.Options{Streaming: true, StreamBatchRecords: 4}),
	}
	formats := []instance.Format{
		instance.FormatOWL, instance.FormatTurtle, instance.FormatNTriples,
		instance.FormatXML, instance.FormatJSON, instance.FormatText,
	}
	for _, q := range equivalenceQueries {
		for _, f := range formats {
			want, err := base.QueryString(ctx, q, f)
			if err != nil {
				t.Fatalf("materializing %q %v: %v", q, f, err)
			}
			for name, mw := range variants {
				got, err := mw.QueryString(ctx, q, f)
				if err != nil {
					t.Fatalf("%s %q %v: %v", name, q, f, err)
				}
				if got != want {
					t.Errorf("%s %q %v: output diverges from materializing path\nmaterializing:\n%s\nstreaming:\n%s",
						name, q, f, clip(want), clip(got))
				}
			}
		}
	}
}

// TestStreamingErrorListEquivalence compares the structured result —
// matched/related counts and the error list — between the two paths.
func TestStreamingErrorListEquivalence(t *testing.T) {
	ctx := context.Background()
	base := buildEquivalenceWorld(t, extract.Options{})
	stream := buildEquivalenceWorld(t, extract.Options{Streaming: true, StreamBatchRecords: 4})
	for _, q := range equivalenceQueries {
		want, err := base.Query(ctx, q)
		if err != nil {
			t.Fatalf("materializing %q: %v", q, err)
		}
		got, err := stream.Query(ctx, q)
		if err != nil {
			t.Fatalf("streaming %q: %v", q, err)
		}
		if len(got.Matched) != len(want.Matched) || len(got.Related) != len(want.Related) {
			t.Errorf("%q: matched/related = %d/%d, want %d/%d",
				q, len(got.Matched), len(got.Related), len(want.Matched), len(want.Related))
		}
		if gs, ws := fmt.Sprint(got.Errors), fmt.Sprint(want.Errors); gs != ws {
			t.Errorf("%q: errors = %s, want %s", q, gs, ws)
		}
	}
}

// TestQueryToStreamMatchesQueryTo checks the explicit streaming entry
// point (what the transport's /query/stream serves) against QueryTo on
// the same middleware, and that chunk statistics account for every
// byte.
func TestQueryToStreamMatchesQueryTo(t *testing.T) {
	ctx := context.Background()
	mw := buildEquivalenceWorld(t, extract.Options{StreamBatchRecords: 4})
	for _, q := range equivalenceQueries {
		var want, got bytes.Buffer
		if _, err := mw.QueryTo(ctx, &want, q, instance.FormatJSON); err != nil {
			t.Fatalf("QueryTo %q: %v", q, err)
		}
		_, stats, err := mw.QueryToStream(ctx, &got, q, instance.FormatJSON)
		if err != nil {
			t.Fatalf("QueryToStream %q: %v", q, err)
		}
		if got.String() != want.String() {
			t.Errorf("%q: QueryToStream output diverges from QueryTo", q)
		}
		if stats.Bytes != int64(got.Len()) {
			t.Errorf("%q: stats.Bytes = %d, want %d", q, stats.Bytes, got.Len())
		}
		if stats.Chunks < 1 {
			t.Errorf("%q: stats.Chunks = %d, want >= 1", q, stats.Chunks)
		}
	}
}

func clip(s string) string {
	if len(s) > 2000 {
		return s[:2000] + "...(clipped)"
	}
	return s
}

// TestStreamingCrossBatchKeyMerge sets a class key so instances from
// different sources (and different batch windows — the 1-record window
// puts every record in its own batch) merge on equal key values. The
// generated worlds draw brands from one fixed pool, so cross-source
// duplicates exist; the merge must produce identical output and
// genuinely collapse instances.
func TestStreamingCrossBatchKeyMerge(t *testing.T) {
	ctx := context.Background()
	build := func(opts extract.Options) *core.Middleware {
		t.Helper()
		mw := buildEquivalenceWorld(t, opts)
		// The generated instances are watch-classed; key them on brand so
		// same-brand records across sources and windows collapse.
		if err := mw.SetClassKey("watch", "thing.product.brand"); err != nil {
			t.Fatal(err)
		}
		return mw
	}
	base := build(extract.Options{})
	stream := build(extract.Options{Streaming: true, StreamBatchRecords: 1})

	res, err := base.Query(ctx, "SELECT product")
	if err != nil {
		t.Fatal(err)
	}
	// 8 sources × 12 records with a small shared brand pool: if nothing
	// merged, the key did not take and the test proves nothing.
	if len(res.Matched) >= 8*12 {
		t.Fatalf("matched = %d; class key merged nothing", len(res.Matched))
	}
	for _, f := range []instance.Format{instance.FormatJSON, instance.FormatText} {
		want, err := base.QueryString(ctx, "SELECT product", f)
		if err != nil {
			t.Fatal(err)
		}
		got, err := stream.QueryString(ctx, "SELECT product", f)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("format %v: merged streaming output diverges from materializing path", f)
		}
	}
}

// TestStreamingEmptySource registers a source whose document yields
// zero records: the streaming path must still observe the source (one
// empty Last batch, counted in s2s_stream_batches_total) and the output
// must stay byte-identical.
func TestStreamingEmptySource(t *testing.T) {
	ctx := context.Background()
	build := func(opts extract.Options) *core.Middleware {
		t.Helper()
		spec := workload.Spec{XMLSources: 1, RecordsPerSource: 5, Seed: 21}
		world := workload.MustGenerate(spec)
		world.Catalog.XML.MustAdd("empty.xml", "<catalog></catalog>")
		mw, err := core.New(core.Config{
			Ontology: world.Ontology,
			Backends: extract.FromCatalog(world.Catalog),
			Extract:  opts,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := world.Apply(mw); err != nil {
			t.Fatal(err)
		}
		if err := mw.RegisterSource(datasource.Definition{ID: "empty_xml", Kind: datasource.KindXML, Path: "empty.xml"}); err != nil {
			t.Fatal(err)
		}
		if err := mw.RegisterMapping(mapping.Entry{
			AttributeID: "thing.product.brand", SourceID: "empty_xml",
			Rule: mapping.Rule{Code: "/catalog/watch/brand"},
		}); err != nil {
			t.Fatal(err)
		}
		return mw
	}
	base := build(extract.Options{})
	stream := build(extract.Options{Streaming: true, StreamBatchRecords: 2})

	want, err := base.QueryString(ctx, "SELECT product", instance.FormatJSON)
	if err != nil {
		t.Fatal(err)
	}
	got, err := stream.QueryString(ctx, "SELECT product", instance.FormatJSON)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("empty source: streaming output diverges from materializing path\nwant:\n%s\ngot:\n%s", want, got)
	}
	if n := stream.Metrics().Counter(obs.MetricStreamBatches, obs.Labels{"source": "empty_xml"}).Value(); n != 1 {
		t.Errorf("empty source emitted %d batches, want exactly 1 (empty Last batch)", n)
	}
	if n := stream.Metrics().Counter(obs.MetricStreamBatches, obs.Labels{"source": "xml_000"}).Value(); n != 3 {
		t.Errorf("5-record source with window 2 emitted %d batches, want 3", n)
	}
}

// TestStreamingQueriesRaceInvalidation is the streaming counterpart of
// TestConcurrentQueriesWithInvalidation: streaming queries race catalog
// mutations (which flush the plan, rule, and result caches) under
// -race. Every query must succeed and the final answer must reflect the
// last mutation.
func TestStreamingQueriesRaceInvalidation(t *testing.T) {
	spec := workload.Spec{XMLSources: 1, RecordsPerSource: 4, Seed: 24}
	world := workload.MustGenerate(spec)
	mw, err := core.New(core.Config{
		Ontology: world.Ontology,
		Backends: extract.FromCatalog(world.Catalog),
		Extract:  extract.Options{Streaming: true, StreamBatchRecords: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := world.Apply(mw); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := mw.Query(context.Background(), "SELECT product"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i := 0; i < 4; i++ {
		id := "late_" + string(rune('a'+i))
		world.Catalog.XML.MustAdd(id+".xml", "<catalog><watch><brand>Late"+strings.ToUpper(id)+"</brand></watch></catalog>")
		if err := mw.RegisterSource(datasource.Definition{ID: id, Kind: datasource.KindXML, Path: id + ".xml"}); err != nil {
			t.Fatal(err)
		}
		if err := mw.RegisterMapping(mapping.Entry{
			AttributeID: "thing.product.brand", SourceID: id,
			Rule: mapping.Rule{Code: "/catalog/watch/brand"},
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	res, err := mw.Query(context.Background(), "SELECT product")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matched) != 8 {
		t.Errorf("final matched = %d, want 8 (4 seeded + 4 late)", len(res.Matched))
	}
}
