package core

// batch.go is the multi-query batch pipeline behind POST /query/batch:
// N S2SQL queries answered as one pass that shares the per-run document
// layer, the extraction parallelism bound, and one deadline budget
// across the batch (extract.Manager.ExtractQueryBatch), while every
// query keeps its own plan-cache entry, trace root, metrics, and
// canonically sorted result — so each per-query answer is byte-identical
// to what the single-query path would return, and only the duplicated
// document work and sequential wall-clock are saved.

import (
	"context"
	"strconv"
	"time"

	"repro/internal/instance"
	"repro/internal/obs"
	"repro/internal/s2sql"
)

// QueryBatch answers N S2SQL queries as one batch. The returned results
// and errors are both aligned with queries; a failing query occupies
// its error slot without affecting its siblings, exactly as N separate
// Query calls would behave. All queries share one extraction scatter;
// each nonetheless runs its own planning (through the shared plan
// cache), instance generation, and per-query trace and metrics, nested
// under one "batch" trace root.
func (m *Middleware) QueryBatch(ctx context.Context, queries []string) ([]*instance.Result, []error) {
	return m.queryBatch(ctx, queries, nil)
}

// QueryBatchTo is QueryBatch with each successful result serialized
// through sink(i, res) as soon as it is generated — the transport hands
// a sink that frames the bytes onto the batch response. A sink error
// becomes that query's error.
func (m *Middleware) QueryBatchTo(ctx context.Context, queries []string, sink func(int, *instance.Result) error) ([]*instance.Result, []error) {
	return m.queryBatch(ctx, queries, sink)
}

func (m *Middleware) queryBatch(ctx context.Context, queries []string, sink func(int, *instance.Result) error) ([]*instance.Result, []error) {
	n := len(queries)
	results := make([]*instance.Result, n)
	errs := make([]error, n)
	if n == 0 {
		return results, errs
	}

	// One "batch" root: the per-query roots beginQuery opens join it, so
	// the trace shows the whole batch side by side; the shared extraction
	// scatter's per-query extract stages attach to the batch root (the
	// scatter belongs to the batch, not to any one query).
	ctx = obs.ContextWithMetrics(ctx, m.metrics)
	ctx, root := m.tracer.StartTrace(ctx, "batch")
	root.SetAttr("queries", strconv.Itoa(n))
	defer root.End()

	qctxs := make([]context.Context, n)
	finishes := make([]func(*instance.Result, error), n)
	plans := make([]*s2sql.Plan, n)
	mergeFree := make([]bool, n)
	for i, q := range queries {
		qctxs[i], finishes[i] = m.beginQuery(ctx, q)
		plans[i], mergeFree[i], errs[i] = m.planQuery(qctxs[i], q)
	}

	// One extraction scatter for the whole batch. Slots whose planning
	// failed hold nil plans; the scatter reports them as errors we
	// already have, and they are skipped below.
	sets, xerrs := m.manager.ExtractQueryBatch(ctx, plans)

	for i := range queries {
		if errs[i] != nil {
			finishes[i](nil, errs[i])
			continue
		}
		if xerrs[i] != nil {
			errs[i] = xerrs[i]
			finishes[i](nil, errs[i])
			continue
		}
		rs := sets[i]
		m.stats.extractNS.Add(int64(rs.Stats.SchemaDuration + rs.Stats.ExtractDuration))
		genStart := time.Now()
		res, err := m.gen.GenerateContextOpts(qctxs[i], plans[i], rs, instance.GenOptions{MergeFree: mergeFree[i]})
		m.stats.generateNS.Add(int64(time.Since(genStart)))
		if err == nil && sink != nil {
			err = sink(i, res)
		}
		if err != nil {
			errs[i] = err
			finishes[i](res, err)
			continue
		}
		results[i] = res
		finishes[i](res, nil)
	}
	return results, errs
}
