package sqllang

import (
	"fmt"
	"strconv"
)

// Parse parses a single SQL statement.
func Parse(input string) (Statement, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.statement()
	if err != nil {
		return nil, err
	}
	if !p.at(TokEOF, "") {
		return nil, p.errf("unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

// at reports whether the current token has the given kind and, when text is
// non-empty, the given text.
func (p *parser) at(kind TokenKind, text string) bool {
	t := p.peek()
	return t.Kind == kind && (text == "" || t.Text == text)
}

// accept consumes the current token if it matches.
func (p *parser) accept(kind TokenKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

// expect consumes a matching token or fails.
func (p *parser) expect(kind TokenKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = kind.String()
	}
	return Token{}, p.errf("expected %s, got %s", want, p.peek())
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqllang: at offset %d: %s", p.peek().Pos, fmt.Sprintf(format, args...))
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.at(TokKeyword, "SELECT"):
		return p.selectStmt()
	case p.at(TokKeyword, "INSERT"):
		return p.insertStmt()
	case p.at(TokKeyword, "CREATE"):
		return p.createStmt()
	case p.at(TokKeyword, "DELETE"):
		return p.deleteStmt()
	case p.at(TokKeyword, "UPDATE"):
		return p.updateStmt()
	default:
		return nil, p.errf("expected a statement, got %s", p.peek())
	}
}

func (p *parser) createStmt() (Statement, error) {
	p.next() // CREATE
	if p.accept(TokKeyword, "INDEX") {
		if _, err := p.expect(TokKeyword, "ON"); err != nil {
			return nil, err
		}
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return &CreateIndex{Table: table, Column: col}, nil
	}
	if _, err := p.expect(TokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	var cols []ColumnDef
	for {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		var typ ColumnType
		switch {
		case p.accept(TokKeyword, "TEXT"):
			typ = TypeText
		case p.accept(TokKeyword, "INTEGER"):
			typ = TypeInteger
		case p.accept(TokKeyword, "REAL"):
			typ = TypeReal
		case p.accept(TokKeyword, "BOOLEAN"):
			typ = TypeBoolean
		default:
			return nil, p.errf("expected a column type, got %s", p.peek())
		}
		def := ColumnDef{Name: name, Type: typ}
		if p.accept(TokKeyword, "PRIMARY") {
			if _, err := p.expect(TokKeyword, "KEY"); err != nil {
				return nil, err
			}
			def.PrimaryKey = true
		} else if p.accept(TokKeyword, "UNIQUE") {
			def.Unique = true
		}
		cols = append(cols, def)
		if !p.accept(TokPunct, ",") {
			break
		}
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	return &CreateTable{Table: table, Columns: cols}, nil
}

func (p *parser) insertStmt() (Statement, error) {
	p.next() // INSERT
	if _, err := p.expect(TokKeyword, "INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if p.accept(TokPunct, "(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col)
			if !p.accept(TokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			lit, err := p.literal()
			if err != nil {
				return nil, err
			}
			row = append(row, lit)
			if !p.accept(TokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.accept(TokPunct, ",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) selectStmt() (Statement, error) {
	p.next() // SELECT
	sel := &Select{Limit: -1}
	sel.Distinct = p.accept(TokKeyword, "DISTINCT")
	if !p.accept(TokPunct, "*") {
		for {
			item, err := p.selectItem()
			if err != nil {
				return nil, err
			}
			sel.Columns = append(sel.Columns, item)
			if !p.accept(TokPunct, ",") {
				break
			}
		}
	}
	if _, err := p.expect(TokKeyword, "FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	sel.Table = table
	for p.at(TokKeyword, "JOIN") || p.at(TokKeyword, "INNER") {
		p.accept(TokKeyword, "INNER")
		if _, err := p.expect(TokKeyword, "JOIN"); err != nil {
			return nil, err
		}
		jt, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "ON"); err != nil {
			return nil, err
		}
		left, err := p.columnRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, "="); err != nil {
			return nil, err
		}
		right, err := p.columnRef()
		if err != nil {
			return nil, err
		}
		sel.Joins = append(sel.Joins, JoinClause{Table: jt, Left: left, Right: right})
	}
	if p.accept(TokKeyword, "WHERE") {
		where, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = where
	}
	if p.accept(TokKeyword, "GROUP") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			ref, err := p.columnRef()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, ref)
			if !p.accept(TokPunct, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "ORDER") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		ref, err := p.columnRef()
		if err != nil {
			return nil, err
		}
		ob := &OrderBy{Column: ref}
		if p.accept(TokKeyword, "DESC") {
			ob.Desc = true
		} else {
			p.accept(TokKeyword, "ASC")
		}
		sel.Order = ob
	}
	if p.accept(TokKeyword, "LIMIT") {
		tok, err := p.expect(TokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(tok.Text)
		if err != nil {
			return nil, p.errf("invalid LIMIT %q", tok.Text)
		}
		sel.Limit = n
	}
	if p.accept(TokKeyword, "OFFSET") {
		tok, err := p.expect(TokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(tok.Text)
		if err != nil || n < 0 {
			return nil, p.errf("invalid OFFSET %q", tok.Text)
		}
		sel.Offset = n
	}
	return sel, nil
}

func (p *parser) deleteStmt() (Statement, error) {
	p.next() // DELETE
	if _, err := p.expect(TokKeyword, "FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: table}
	if p.accept(TokKeyword, "WHERE") {
		del.Where, err = p.orExpr()
		if err != nil {
			return nil, err
		}
	}
	return del, nil
}

func (p *parser) updateStmt() (Statement, error) {
	p.next() // UPDATE
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "SET"); err != nil {
		return nil, err
	}
	upd := &Update{Table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, "="); err != nil {
			return nil, err
		}
		val, err := p.literal()
		if err != nil {
			return nil, err
		}
		upd.Set = append(upd.Set, Assignment{Column: col, Value: val})
		if !p.accept(TokPunct, ",") {
			break
		}
	}
	if p.accept(TokKeyword, "WHERE") {
		upd.Where, err = p.orExpr()
		if err != nil {
			return nil, err
		}
	}
	return upd, nil
}

// orExpr parses OR-separated conjunctions (lowest precedence).
func (p *parser) orExpr() (Expr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "OR") {
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpOr, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) andExpr() (Expr, error) {
	left, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "AND") {
		right, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpAnd, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.accept(TokKeyword, "NOT") {
		inner, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &NotExpr{Inner: inner}, nil
	}
	return p.comparison()
}

func (p *parser) comparison() (Expr, error) {
	if p.accept(TokPunct, "(") {
		inner, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	left, err := p.operand()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.accept(TokKeyword, "IS") {
		neg := p.accept(TokKeyword, "NOT")
		if _, err := p.expect(TokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{Operand: left, Negate: neg}, nil
	}
	// IN (v, ...)
	if p.accept(TokKeyword, "IN") {
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		in := &InExpr{Operand: left}
		for {
			lit, err := p.literal()
			if err != nil {
				return nil, err
			}
			in.Values = append(in.Values, lit)
			if !p.accept(TokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return in, nil
	}
	var op BinaryOp
	switch {
	case p.accept(TokPunct, "="):
		op = OpEq
	case p.accept(TokPunct, "!="):
		op = OpNe
	case p.accept(TokPunct, "<="):
		op = OpLe
	case p.accept(TokPunct, ">="):
		op = OpGe
	case p.accept(TokPunct, "<"):
		op = OpLt
	case p.accept(TokPunct, ">"):
		op = OpGt
	case p.accept(TokKeyword, "LIKE"):
		op = OpLike
	default:
		return nil, p.errf("expected a comparison operator, got %s", p.peek())
	}
	right, err := p.operand()
	if err != nil {
		return nil, err
	}
	return &BinaryExpr{Op: op, Left: left, Right: right}, nil
}

// operand parses a column reference or literal.
func (p *parser) operand() (Expr, error) {
	switch {
	case p.at(TokIdent, ""):
		return p.columnRef()
	default:
		return p.literal()
	}
}

// selectItem parses a plain column reference or AGG(col) / COUNT(*).
func (p *parser) selectItem() (SelectItem, error) {
	aggs := map[string]AggFunc{
		"COUNT": AggCount, "SUM": AggSum, "AVG": AggAvg, "MIN": AggMin, "MAX": AggMax,
	}
	if tok := p.peek(); tok.Kind == TokKeyword {
		if agg, ok := aggs[tok.Text]; ok {
			p.next()
			if _, err := p.expect(TokPunct, "("); err != nil {
				return SelectItem{}, err
			}
			item := SelectItem{Agg: agg}
			if p.accept(TokPunct, "*") {
				if agg != AggCount {
					return SelectItem{}, p.errf("%s(*) is not valid; only COUNT(*)", agg)
				}
				item.Star = true
			} else {
				ref, err := p.columnRef()
				if err != nil {
					return SelectItem{}, err
				}
				item.Col = ref
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return SelectItem{}, err
			}
			return item, nil
		}
	}
	ref, err := p.columnRef()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Col: ref}, nil
}

func (p *parser) columnRef() (ColumnRef, error) {
	first, err := p.ident()
	if err != nil {
		return ColumnRef{}, err
	}
	if p.accept(TokPunct, ".") {
		second, err := p.ident()
		if err != nil {
			return ColumnRef{}, err
		}
		return ColumnRef{Table: first, Column: second}, nil
	}
	return ColumnRef{Column: first}, nil
}

func (p *parser) literal() (LiteralExpr, error) {
	switch {
	case p.at(TokString, ""):
		return LiteralExpr{Kind: LitString, Text: p.next().Text}, nil
	case p.at(TokNumber, ""):
		return LiteralExpr{Kind: LitNumber, Text: p.next().Text}, nil
	case p.accept(TokKeyword, "TRUE"):
		return LiteralExpr{Kind: LitBool, Text: "TRUE"}, nil
	case p.accept(TokKeyword, "FALSE"):
		return LiteralExpr{Kind: LitBool, Text: "FALSE"}, nil
	case p.accept(TokKeyword, "NULL"):
		return LiteralExpr{Kind: LitNull, Text: "NULL"}, nil
	default:
		return LiteralExpr{}, p.errf("expected a literal, got %s", p.peek())
	}
}

func (p *parser) ident() (string, error) {
	tok, err := p.expect(TokIdent, "")
	if err != nil {
		return "", err
	}
	return tok.Text, nil
}
