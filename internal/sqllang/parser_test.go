package sqllang

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT brand, price FROM watches WHERE brand = 'Seiko''s' -- comment\nAND price >= 10.5")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	wantTexts := []string{"SELECT", "brand", ",", "price", "FROM", "watches", "WHERE",
		"brand", "=", "Seiko's", "AND", "price", ">=", "10.5", ""}
	if len(texts) != len(wantTexts) {
		t.Fatalf("token texts = %q, want %q", texts, wantTexts)
	}
	for i := range wantTexts {
		if texts[i] != wantTexts[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], wantTexts[i])
		}
	}
	if kinds[9] != TokString {
		t.Errorf("literal token kind = %v, want string", kinds[9])
	}
	if kinds[len(kinds)-1] != TokEOF {
		t.Error("missing EOF token")
	}
}

func TestLexErrors(t *testing.T) {
	for _, input := range []string{"'unterminated", "a $ b", "x; y"} {
		if _, err := Lex(input); err == nil {
			t.Errorf("Lex(%q) succeeded", input)
		}
	}
}

func TestLexNormalizesNotEqual(t *testing.T) {
	toks, err := Lex("a <> b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Text != "!=" {
		t.Errorf("<> lexed as %q, want !=", toks[1].Text)
	}
}

func TestParseSelectFull(t *testing.T) {
	stmt, err := Parse("SELECT DISTINCT w.brand, price FROM watches w_ignored JOIN providers ON watches.pid = providers.id WHERE (brand = 'Seiko' OR brand LIKE 'Cas%') AND NOT price < 10 ORDER BY price DESC LIMIT 5")
	if err == nil {
		t.Skip("alias form unsupported by design")
	}
	_ = stmt
}

func TestParseSelect(t *testing.T) {
	stmt, err := Parse("SELECT DISTINCT brand, providers.name FROM watches JOIN providers ON watches.pid = providers.id WHERE (brand = 'Seiko' OR brand LIKE 'Cas%') AND NOT price < 10 ORDER BY price DESC LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	sel, ok := stmt.(*Select)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	if !sel.Distinct || sel.Table != "watches" || len(sel.Columns) != 2 || len(sel.Joins) != 1 {
		t.Errorf("parsed select = %+v", sel)
	}
	if sel.Joins[0].Left.String() != "watches.pid" || sel.Joins[0].Right.String() != "providers.id" {
		t.Errorf("join = %+v", sel.Joins[0])
	}
	if sel.Order == nil || !sel.Order.Desc || sel.Limit != 5 {
		t.Errorf("order/limit = %+v %d", sel.Order, sel.Limit)
	}
	want := "((brand = 'Seiko') OR (brand LIKE 'Cas%')) AND (NOT (price < 10))"
	if got := sel.Where.String(); got != "("+want+")" {
		t.Errorf("where = %s, want (%s)", got, want)
	}
}

func TestParseSelectStar(t *testing.T) {
	stmt, err := Parse("SELECT * FROM watches")
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*Select)
	if len(sel.Columns) != 0 || sel.Where != nil || sel.Limit != -1 {
		t.Errorf("parsed select = %+v", sel)
	}
}

func TestParseCreateTable(t *testing.T) {
	stmt, err := Parse("CREATE TABLE watches (id INTEGER PRIMARY KEY, brand TEXT, price REAL, waterproof BOOLEAN, sku TEXT UNIQUE)")
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTable)
	if ct.Table != "watches" || len(ct.Columns) != 5 {
		t.Fatalf("parsed create = %+v", ct)
	}
	if !ct.Columns[0].PrimaryKey || ct.Columns[0].Type != TypeInteger {
		t.Errorf("id column = %+v", ct.Columns[0])
	}
	if !ct.Columns[4].Unique {
		t.Errorf("sku column = %+v", ct.Columns[4])
	}
}

func TestParseCreateIndex(t *testing.T) {
	stmt, err := Parse("CREATE INDEX ON watches (brand)")
	if err != nil {
		t.Fatal(err)
	}
	ci := stmt.(*CreateIndex)
	if ci.Table != "watches" || ci.Column != "brand" {
		t.Errorf("parsed index = %+v", ci)
	}
}

func TestParseInsert(t *testing.T) {
	stmt, err := Parse("INSERT INTO watches (brand, price, ok) VALUES ('Seiko', 129.99, TRUE), ('Casio', 59, FALSE)")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*Insert)
	if len(ins.Rows) != 2 || len(ins.Columns) != 3 {
		t.Fatalf("parsed insert = %+v", ins)
	}
	if lit := ins.Rows[0][0].(LiteralExpr); lit.Kind != LitString || lit.Text != "Seiko" {
		t.Errorf("first value = %+v", lit)
	}
	if lit := ins.Rows[1][2].(LiteralExpr); lit.Kind != LitBool || lit.Text != "FALSE" {
		t.Errorf("bool value = %+v", lit)
	}
}

func TestParseInsertWithoutColumns(t *testing.T) {
	stmt, err := Parse("INSERT INTO t VALUES (1, NULL)")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*Insert)
	if len(ins.Columns) != 0 || len(ins.Rows) != 1 {
		t.Fatalf("parsed insert = %+v", ins)
	}
	if lit := ins.Rows[0][1].(LiteralExpr); lit.Kind != LitNull {
		t.Errorf("null value = %+v", lit)
	}
}

func TestParseDeleteUpdate(t *testing.T) {
	stmt, err := Parse("DELETE FROM watches WHERE brand = 'Seiko'")
	if err != nil {
		t.Fatal(err)
	}
	if del := stmt.(*Delete); del.Table != "watches" || del.Where == nil {
		t.Errorf("parsed delete = %+v", del)
	}
	stmt, err = Parse("UPDATE watches SET price = 99.5, brand = 'Pulsar' WHERE id = 3")
	if err != nil {
		t.Fatal(err)
	}
	upd := stmt.(*Update)
	if len(upd.Set) != 2 || upd.Set[1].Column != "brand" {
		t.Errorf("parsed update = %+v", upd)
	}
}

func TestParseIsNullAndIn(t *testing.T) {
	stmt, err := Parse("SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL AND c IN ('x', 'y', 3)")
	if err != nil {
		t.Fatal(err)
	}
	where := stmt.(*Select).Where.String()
	for _, want := range []string{"(a IS NULL)", "(b IS NOT NULL)", "(c IN ('x', 'y', 3))"} {
		if !strings.Contains(where, want) {
			t.Errorf("where %s missing %s", where, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t WHERE a =",
		"SELECT * FROM t WHERE a = 'x' extra",
		"SELECT * FROM t LIMIT x",
		"INSERT INTO VALUES (1)",
		"INSERT INTO t VALUES 1",
		"CREATE TABLE t (a)",
		"CREATE TABLE t (a TEXT",
		"CREATE INDEX watches (brand)",
		"UPDATE t SET",
		"DELETE t",
		"SELECT * FROM t WHERE a IN ()",
		"SELECT * FROM t JOIN u ON a.b != c.d",
		"DROP TABLE t",
	}
	for _, input := range bad {
		if _, err := Parse(input); err == nil {
			t.Errorf("Parse(%q) succeeded", input)
		}
	}
}

func TestStatementStringRoundTrip(t *testing.T) {
	inputs := []string{
		"SELECT * FROM watches",
		"SELECT brand FROM watches WHERE (brand = 'Seiko')",
		"SELECT DISTINCT brand, price FROM watches WHERE ((brand != 'x') AND (price <= 4)) ORDER BY price DESC LIMIT 3",
		"INSERT INTO t (a, b) VALUES ('x''y', 4)",
		"CREATE TABLE t (a TEXT PRIMARY KEY, b REAL)",
		"CREATE INDEX ON t (a)",
		"DELETE FROM t WHERE (a IS NOT NULL)",
		"UPDATE t SET a = 'z' WHERE (b IN (1, 2))",
	}
	for _, input := range inputs {
		stmt, err := Parse(input)
		if err != nil {
			t.Errorf("Parse(%q): %v", input, err)
			continue
		}
		// Re-parsing the printed form must yield the same printed form
		// (print is a fixed point).
		printed := stmt.String()
		stmt2, err := Parse(printed)
		if err != nil {
			t.Errorf("reparse of %q (printed %q): %v", input, printed, err)
			continue
		}
		if stmt2.String() != printed {
			t.Errorf("print not stable: %q -> %q", printed, stmt2.String())
		}
	}
}

// Property: the printer/parser pair is a fixed point for generated WHERE
// trees of arbitrary shape.
func TestWherePrintParseFixedPoint(t *testing.T) {
	ops := []BinaryOp{OpEq, OpNe, OpLt, OpGt, OpLe, OpGe, OpLike}
	var build func(seed []uint8, depth int) Expr
	build = func(seed []uint8, depth int) Expr {
		if len(seed) == 0 || depth > 4 {
			return &BinaryExpr{Op: OpEq, Left: ColumnRef{Column: "c"}, Right: LiteralExpr{Kind: LitNumber, Text: "1"}}
		}
		switch seed[0] % 4 {
		case 0:
			return &BinaryExpr{
				Op:   ops[int(seed[0]/4)%len(ops)],
				Left: ColumnRef{Column: "col"}, Right: LiteralExpr{Kind: LitString, Text: "v'"},
			}
		case 1:
			return &BinaryExpr{Op: OpAnd, Left: build(seed[1:], depth+1), Right: build(seed[1:], depth+2)}
		case 2:
			return &BinaryExpr{Op: OpOr, Left: build(seed[1:], depth+1), Right: build(seed[1:], depth+2)}
		default:
			return &NotExpr{Inner: build(seed[1:], depth+1)}
		}
	}
	f := func(seed []uint8) bool {
		sel := &Select{Table: "t", Where: build(seed, 0), Limit: -1}
		printed := sel.String()
		stmt, err := Parse(printed)
		if err != nil {
			return false
		}
		return stmt.String() == printed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
