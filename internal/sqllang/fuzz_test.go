package sqllang

import "testing"

// FuzzParse checks the SQL parser never panics and printing is a fixed
// point for accepted statements.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT * FROM t WHERE a = 'x' AND b < 3 ORDER BY c DESC LIMIT 5",
		"SELECT DISTINCT a, t.b FROM t JOIN u ON t.id = u.tid",
		"SELECT brand, COUNT(*), AVG(price) FROM w GROUP BY brand",
		"INSERT INTO t (a, b) VALUES ('x''y', -4), (NULL, 2.5)",
		"CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT UNIQUE)",
		"UPDATE t SET a = 'z' WHERE b IN (1, 2) OR c IS NOT NULL",
		"DELETE FROM t WHERE NOT (a LIKE 'x%')",
		"CREATE INDEX ON t (a)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input)
		if err != nil {
			return
		}
		printed := stmt.String()
		stmt2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form unparseable: %q -> %q: %v", input, printed, err)
		}
		if stmt2.String() != printed {
			t.Fatalf("print not a fixed point: %q -> %q", printed, stmt2.String())
		}
	})
}
