package sqllang

import (
	"fmt"
	"strings"
)

// Statement is any parsed SQL statement.
type Statement interface {
	stmt()
	// String renders the statement back to SQL text.
	String() string
}

// ColumnType is a reldb column type.
type ColumnType int

// Column types supported by the engine.
const (
	TypeText ColumnType = iota + 1
	TypeInteger
	TypeReal
	TypeBoolean
)

func (t ColumnType) String() string {
	switch t {
	case TypeText:
		return "TEXT"
	case TypeInteger:
		return "INTEGER"
	case TypeReal:
		return "REAL"
	case TypeBoolean:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("ColumnType(%d)", int(t))
	}
}

// ColumnDef is one column of a CREATE TABLE statement.
type ColumnDef struct {
	Name       string
	Type       ColumnType
	PrimaryKey bool
	Unique     bool
}

// CreateTable is CREATE TABLE name (col TYPE [PRIMARY KEY|UNIQUE], ...).
type CreateTable struct {
	Table   string
	Columns []ColumnDef
}

func (*CreateTable) stmt() {}

func (s *CreateTable) String() string {
	cols := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		cols[i] = c.Name + " " + c.Type.String()
		if c.PrimaryKey {
			cols[i] += " PRIMARY KEY"
		} else if c.Unique {
			cols[i] += " UNIQUE"
		}
	}
	return fmt.Sprintf("CREATE TABLE %s (%s)", s.Table, strings.Join(cols, ", "))
}

// CreateIndex is CREATE INDEX ON table (column).
type CreateIndex struct {
	Table  string
	Column string
}

func (*CreateIndex) stmt() {}

func (s *CreateIndex) String() string {
	return fmt.Sprintf("CREATE INDEX ON %s (%s)", s.Table, s.Column)
}

// Insert is INSERT INTO table [(cols)] VALUES (...), (...).
type Insert struct {
	Table   string
	Columns []string // empty means all columns in table order
	Rows    [][]Expr // each row has one literal expression per column
}

func (*Insert) stmt() {}

func (s *Insert) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "INSERT INTO %s", s.Table)
	if len(s.Columns) > 0 {
		fmt.Fprintf(&b, " (%s)", strings.Join(s.Columns, ", "))
	}
	b.WriteString(" VALUES ")
	for i, row := range s.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		vals := make([]string, len(row))
		for j, e := range row {
			vals[j] = e.String()
		}
		fmt.Fprintf(&b, "(%s)", strings.Join(vals, ", "))
	}
	return b.String()
}

// JoinClause is JOIN table ON left = right.
type JoinClause struct {
	Table string
	Left  ColumnRef
	Right ColumnRef
}

// OrderBy is ORDER BY column [DESC].
type OrderBy struct {
	Column ColumnRef
	Desc   bool
}

// AggFunc is an aggregate function in a select list.
type AggFunc int

// Aggregate functions; AggNone marks a plain column item.
const (
	AggNone AggFunc = iota
	AggCount
	AggSum
	AggAvg
	AggMin
	AggMax
)

func (a AggFunc) String() string {
	switch a {
	case AggNone:
		return ""
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(a))
	}
}

// SelectItem is one projected item: a plain column or an aggregate.
type SelectItem struct {
	// Agg is AggNone for a plain column reference.
	Agg AggFunc
	// Star marks COUNT(*).
	Star bool
	// Col is the referenced column (unused when Star).
	Col ColumnRef
}

func (it SelectItem) String() string {
	if it.Agg == AggNone {
		return it.Col.String()
	}
	if it.Star {
		return it.Agg.String() + "(*)"
	}
	return fmt.Sprintf("%s(%s)", it.Agg, it.Col.String())
}

// HasAggregate reports whether the item list contains an aggregate.
func HasAggregate(items []SelectItem) bool {
	for _, it := range items {
		if it.Agg != AggNone {
			return true
		}
	}
	return false
}

// Select is SELECT [DISTINCT] items FROM table [JOIN ...] [WHERE expr]
// [GROUP BY cols] [ORDER BY col] [LIMIT n].
type Select struct {
	Distinct bool
	// Columns is the projection; empty means SELECT *.
	Columns []SelectItem
	Table   string
	Joins   []JoinClause
	Where   Expr // nil when absent
	GroupBy []ColumnRef
	Order   *OrderBy
	Limit   int // -1 when absent
	Offset  int // 0 when absent
}

func (*Select) stmt() {}

func (s *Select) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	if len(s.Columns) == 0 {
		b.WriteString("*")
	} else {
		cols := make([]string, len(s.Columns))
		for i, c := range s.Columns {
			cols[i] = c.String()
		}
		b.WriteString(strings.Join(cols, ", "))
	}
	fmt.Fprintf(&b, " FROM %s", s.Table)
	for _, j := range s.Joins {
		fmt.Fprintf(&b, " JOIN %s ON %s = %s", j.Table, j.Left.String(), j.Right.String())
	}
	if s.Where != nil {
		fmt.Fprintf(&b, " WHERE %s", s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		refs := make([]string, len(s.GroupBy))
		for i, r := range s.GroupBy {
			refs[i] = r.String()
		}
		fmt.Fprintf(&b, " GROUP BY %s", strings.Join(refs, ", "))
	}
	if s.Order != nil {
		fmt.Fprintf(&b, " ORDER BY %s", s.Order.Column.String())
		if s.Order.Desc {
			b.WriteString(" DESC")
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	if s.Offset > 0 {
		fmt.Fprintf(&b, " OFFSET %d", s.Offset)
	}
	return b.String()
}

// Delete is DELETE FROM table [WHERE expr].
type Delete struct {
	Table string
	Where Expr
}

func (*Delete) stmt() {}

func (s *Delete) String() string {
	out := fmt.Sprintf("DELETE FROM %s", s.Table)
	if s.Where != nil {
		out += " WHERE " + s.Where.String()
	}
	return out
}

// Update is UPDATE table SET col = expr, ... [WHERE expr].
type Update struct {
	Table string
	Set   []Assignment
	Where Expr
}

// Assignment is one col = value pair of an UPDATE.
type Assignment struct {
	Column string
	Value  Expr
}

func (*Update) stmt() {}

func (s *Update) String() string {
	sets := make([]string, len(s.Set))
	for i, a := range s.Set {
		sets[i] = a.Column + " = " + a.Value.String()
	}
	out := fmt.Sprintf("UPDATE %s SET %s", s.Table, strings.Join(sets, ", "))
	if s.Where != nil {
		out += " WHERE " + s.Where.String()
	}
	return out
}

// Expr is a SQL expression.
type Expr interface {
	expr()
	String() string
}

// ColumnRef names a column, optionally qualified by table.
type ColumnRef struct {
	Table  string // empty when unqualified
	Column string
}

func (ColumnRef) expr() {}

func (c ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// LiteralKind discriminates literal expression values.
type LiteralKind int

// Literal kinds.
const (
	LitString LiteralKind = iota + 1
	LitNumber
	LitBool
	LitNull
)

// LiteralExpr is a literal constant.
type LiteralExpr struct {
	Kind LiteralKind
	// Text is the literal's source text: the unquoted string, the numeric
	// text, or "TRUE"/"FALSE".
	Text string
}

func (LiteralExpr) expr() {}

func (l LiteralExpr) String() string {
	switch l.Kind {
	case LitString:
		return "'" + strings.ReplaceAll(l.Text, "'", "''") + "'"
	case LitNull:
		return "NULL"
	default:
		return l.Text
	}
}

// BinaryOp is a comparison or logical operator.
type BinaryOp string

// Binary operators.
const (
	OpEq   BinaryOp = "="
	OpNe   BinaryOp = "!="
	OpLt   BinaryOp = "<"
	OpGt   BinaryOp = ">"
	OpLe   BinaryOp = "<="
	OpGe   BinaryOp = ">="
	OpLike BinaryOp = "LIKE"
	OpAnd  BinaryOp = "AND"
	OpOr   BinaryOp = "OR"
)

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op          BinaryOp
	Left, Right Expr
}

func (*BinaryExpr) expr() {}

func (e *BinaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.Left.String(), e.Op, e.Right.String())
}

// NotExpr negates an expression.
type NotExpr struct {
	Inner Expr
}

func (*NotExpr) expr() {}

func (e *NotExpr) String() string { return "(NOT " + e.Inner.String() + ")" }

// IsNullExpr is col IS [NOT] NULL.
type IsNullExpr struct {
	Operand Expr
	Negate  bool
}

func (*IsNullExpr) expr() {}

func (e *IsNullExpr) String() string {
	if e.Negate {
		return "(" + e.Operand.String() + " IS NOT NULL)"
	}
	return "(" + e.Operand.String() + " IS NULL)"
}

// InExpr is col IN (literal, ...).
type InExpr struct {
	Operand Expr
	Values  []LiteralExpr
}

func (*InExpr) expr() {}

func (e *InExpr) String() string {
	vals := make([]string, len(e.Values))
	for i, v := range e.Values {
		vals[i] = v.String()
	}
	return fmt.Sprintf("(%s IN (%s))", e.Operand.String(), strings.Join(vals, ", "))
}
