// Package sqllang provides the lexer, AST, and parser for the SQL subset
// executed by the reldb engine. Database-backed attribute mappings in the
// S2S middleware carry their extraction rules as SQL text (paper §2.3.1:
// "For databases, the clear option is to use SQL"); this package turns that
// text into executable statements. The s2sql package reuses this lexer for
// the middleware's own query language.
package sqllang

import (
	"fmt"
	"strings"
)

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokString
	TokNumber
	TokPunct // ( ) , . * = != <> < > <= >=
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokIdent:
		return "identifier"
	case TokKeyword:
		return "keyword"
	case TokString:
		return "string"
	case TokNumber:
		return "number"
	case TokPunct:
		return "punctuation"
	default:
		return fmt.Sprintf("TokenKind(%d)", int(k))
	}
}

// Token is a lexical token with its position (byte offset) in the input.
type Token struct {
	Kind TokenKind
	// Text is the token text. Keywords are upper-cased; string literals are
	// unquoted and unescaped.
	Text string
	Pos  int
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

// keywords are the reserved words recognized across the SQL and S2SQL
// dialects. Identifiers matching these (case-insensitively) lex as keywords.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "INSERT": true, "INTO": true, "VALUES": true, "CREATE": true,
	"TABLE": true, "INDEX": true, "ON": true, "DELETE": true, "UPDATE": true,
	"SET": true, "ORDER": true, "BY": true, "ASC": true, "DESC": true,
	"LIMIT": true, "LIKE": true, "NULL": true, "TRUE": true, "FALSE": true,
	"JOIN": true, "INNER": true, "AS": true, "DISTINCT": true,
	"TEXT": true, "INTEGER": true, "REAL": true, "BOOLEAN": true,
	"PRIMARY": true, "KEY": true, "UNIQUE": true, "IS": true, "IN": true,
	"GROUP": true, "COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"OFFSET": true,
}

// Lex tokenizes input, returning the token stream ending with a TokEOF
// token. SQL comments (-- to end of line) are skipped.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			i++
		case c == '-' && i+1 < len(input) && input[i+1] == '-':
			for i < len(input) && input[i] != '\n' {
				i++
			}
		case c == '\'':
			start := i
			i++
			var b strings.Builder
			closed := false
			for i < len(input) {
				if input[i] == '\'' {
					// '' is an escaped quote.
					if i+1 < len(input) && input[i+1] == '\'' {
						b.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				b.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sqllang: unterminated string literal at offset %d", start)
			}
			toks = append(toks, Token{Kind: TokString, Text: b.String(), Pos: start})
		case c >= '0' && c <= '9' ||
			(c == '.' && i+1 < len(input) && input[i+1] >= '0' && input[i+1] <= '9') ||
			(c == '-' && i+1 < len(input) && input[i+1] >= '0' && input[i+1] <= '9'):
			start := i
			if c == '-' {
				i++
			}
			sawDot := false
			for i < len(input) {
				d := input[i]
				if d >= '0' && d <= '9' {
					i++
				} else if d == '.' && !sawDot {
					sawDot = true
					i++
				} else {
					break
				}
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start})
		case isIdentStart(c):
			start := i
			for i < len(input) && isIdentPart(input[i]) {
				i++
			}
			text := input[start:i]
			upper := strings.ToUpper(text)
			if keywords[upper] {
				toks = append(toks, Token{Kind: TokKeyword, Text: upper, Pos: start})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: text, Pos: start})
			}
		default:
			start := i
			var text string
			switch {
			case strings.HasPrefix(input[i:], "!="), strings.HasPrefix(input[i:], "<>"),
				strings.HasPrefix(input[i:], "<="), strings.HasPrefix(input[i:], ">="):
				text = input[i : i+2]
				if text == "<>" {
					text = "!="
				}
				i += 2
			case strings.ContainsRune("(),.*=<>", rune(c)):
				text = string(c)
				i++
			default:
				return nil, fmt.Errorf("sqllang: unexpected character %q at offset %d", c, i)
			}
			toks = append(toks, Token{Kind: TokPunct, Text: text, Pos: start})
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: len(input)})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
