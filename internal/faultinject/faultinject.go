// Package faultinject is a seeded, deterministic fault-injection layer
// for chaos-testing the extraction pipeline. The paper's data sources are
// autonomous and distributed — partner outages, slowdowns, and garbage
// responses are the normal case — so the recovery machinery (retries with
// backoff, circuit breakers, serve-stale degradation, failover marking)
// needs tests that reproduce those failures exactly.
//
// An Injector holds per-target fault Plans keyed by the backend address a
// source resolves to (URL for web pages, Path for XML/text documents, DSN
// for databases — see Key). It wraps extract.Backends, webl.Fetcher, or
// an http.RoundTripper; every operation against a planned target first
// consults the plan, which may add latency, fail the call, hang until the
// context expires, or corrupt the payload. Count-based faults (FailFirst,
// flapping) depend only on the per-target call number, and latency jitter
// comes from a per-target rng derived from the Injector seed, so a run is
// reproducible from the single seed.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/datasource"
	"repro/internal/extract"
	"repro/internal/reldb"
	"repro/internal/webl"
)

// maxHang bounds Hang faults when the wrapped call path carries no
// context (the context-free webl.Fetcher and DocExtractor interfaces);
// without it a hung call would leak its goroutine forever.
const maxHang = 30 * time.Second

// Fault is the failure plan for one target. Zero value injects nothing.
// When several fields are set they compose: latency is always applied
// first, then the failure decision (Permanent > FailFirst > flapping >
// FailEvery), and Corrupt only mangles calls that were allowed to
// succeed.
type Fault struct {
	// AddLatency delays every operation by this fixed amount.
	AddLatency time.Duration
	// JitterLatency adds a further uniform [0, JitterLatency) delay drawn
	// from the target's seeded rng.
	JitterLatency time.Duration
	// FailFirst fails the first N operations with a transient error, then
	// recovers — the "fail N then recover" shape retry/breaker tests need.
	FailFirst int
	// FlapFail/FlapOK make the target flap: cycles of FlapFail transient
	// failures followed by FlapOK successes. FlapOK defaults to 1 when
	// FlapFail is set.
	FlapFail int
	FlapOK   int
	// FailEvery fails every Nth operation (1 = always) transiently.
	FailEvery int
	// Permanent fails every operation with an error marked
	// extract.Permanent, so the extractor must fail fast instead of
	// burning retries.
	Permanent bool
	// Hang blocks the operation until its context is canceled (or maxHang
	// for context-free call paths), simulating a source that accepts the
	// connection and never answers.
	Hang bool
	// Corrupt lets the operation through but mangles the payload:
	// extracted values are wrapped in corrupt(...), fetched pages are
	// truncated mid-document, and HTTP bodies are garbled.
	Corrupt bool
}

// active reports whether the fault injects anything at all.
func (f Fault) active() bool {
	return f != Fault{}
}

// Plan maps injection targets (see Key) to their faults.
type Plan map[string]Fault

// Key returns the injection target key for a source definition: the
// backend address its extraction resolves — URL for web sources, Path
// for XML and text documents, DSN for databases. Faults planned under
// this key hit every operation against that backend.
func Key(def datasource.Definition) string {
	switch def.Kind {
	case datasource.KindWeb:
		return def.URL
	case datasource.KindXML, datasource.KindText:
		return def.Path
	case datasource.KindDatabase:
		return def.DSN
	}
	return def.ID
}

// targetState is one target's mutable injection state.
type targetState struct {
	fault Fault
	calls int
	rng   *rand.Rand
}

// Injector applies a fault Plan to wrapped backends. All methods are
// safe for concurrent use; determinism is per target (each target's
// call sequence and rng are independent of interleaving with other
// targets).
type Injector struct {
	seed int64

	// sleep waits out an injected delay under ctx. It is the injector's
	// clock seam: tests swap in a recording fake so latency and hang
	// behaviour can be asserted without real waiting or wall-clock reads
	// (the determinism analyzer forbids time.Now in this package).
	sleep func(ctx context.Context, d time.Duration) error

	mu      sync.Mutex
	targets map[string]*targetState
}

// realSleep blocks for d or until the context is done.
func realSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		t.Stop()
		return ctx.Err()
	}
}

// New returns an Injector whose jittered delays derive from seed. Faults
// are registered with Set or all at once via Plan.
func New(seed int64, plan Plan) *Injector {
	in := &Injector{seed: seed, sleep: realSleep, targets: map[string]*targetState{}}
	for target, f := range plan {
		in.Set(target, f)
	}
	return in
}

// Set installs (or replaces) the fault for one target, resetting its
// call counter.
func (in *Injector) Set(target string, f Fault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.targets[target] = &targetState{fault: f, rng: rand.New(rand.NewSource(in.seed ^ hashTarget(target)))}
}

// Calls returns how many operations have reached the target so far
// (only targets with a registered fault are counted).
func (in *Injector) Calls(target string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	if st, ok := in.targets[target]; ok {
		return st.calls
	}
	return 0
}

func hashTarget(target string) int64 {
	h := fnv.New64a()
	//lint:ignore errcheck hash.Hash documents Write as never failing
	io.WriteString(h, target)
	return int64(h.Sum64())
}

// decision is the injection outcome for one operation.
type decision struct {
	delay   time.Duration
	err     error
	hang    bool
	corrupt bool
}

// decide draws the injection outcome for the target's next operation.
// The failure choice is made under the lock from the call counter and
// the per-target rng; the delay (and any hang) is applied by apply, not
// here, so targets never serialize on each other's sleeps.
func (in *Injector) decide(target string) decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	st, ok := in.targets[target]
	if !ok || !st.fault.active() {
		return decision{}
	}
	st.calls++
	n := st.calls
	f := st.fault

	var d decision
	d.delay = f.AddLatency
	if f.JitterLatency > 0 {
		d.delay += time.Duration(st.rng.Int63n(int64(f.JitterLatency)))
	}
	switch {
	case f.Permanent:
		d.err = extract.Permanent(fmt.Errorf("faultinject: %s: injected permanent failure (call %d)", target, n))
	case f.Hang:
		d.hang = true
	case n <= f.FailFirst:
		d.err = fmt.Errorf("faultinject: %s: injected transient failure %d/%d", target, n, f.FailFirst)
	case f.FlapFail > 0:
		ok := f.FlapOK
		if ok <= 0 {
			ok = 1
		}
		if (n-1)%(f.FlapFail+ok) < f.FlapFail {
			d.err = fmt.Errorf("faultinject: %s: injected flapping failure (call %d)", target, n)
		}
	case f.FailEvery > 0 && n%f.FailEvery == 0:
		d.err = fmt.Errorf("faultinject: %s: injected transient failure (call %d)", target, n)
	}
	d.corrupt = f.Corrupt && d.err == nil && !d.hang
	return d
}

// apply sleeps out the decision's delay (and hang) under ctx and returns
// the injected error, if any. corrupt reports whether the caller must
// mangle a successful payload.
func (in *Injector) apply(ctx context.Context, target string) (corrupt bool, err error) {
	d := in.decide(target)
	if d.delay > 0 {
		if err := in.sleep(ctx, d.delay); err != nil {
			return false, fmt.Errorf("faultinject: %s: canceled during injected latency: %w", target, err)
		}
	}
	if d.hang {
		if err := in.sleep(ctx, maxHang); err != nil {
			return false, fmt.Errorf("faultinject: %s: injected hang: %w", target, err)
		}
		return false, fmt.Errorf("faultinject: %s: injected hang elapsed: %w", target, context.DeadlineExceeded)
	}
	return d.corrupt, d.err
}

// WrapBackends returns b with every non-nil backend routed through the
// injector. The wrapped Pages fetcher always implements
// extract.ContextFetcher so per-rule contexts cancel injected hangs and
// latency even when the inner fetcher is context-free.
func (in *Injector) WrapBackends(b extract.Backends) extract.Backends {
	out := b
	if b.Pages != nil {
		out.Pages = in.WrapFetcher(b.Pages)
	}
	if b.XML != nil {
		out.XML = &docExtractor{in: in, next: b.XML}
	}
	if b.Text != nil {
		out.Text = &docExtractor{in: in, next: b.Text}
	}
	if b.DB != nil {
		next := b.DB
		out.DB = func(dsn string) (*reldb.DB, error) {
			if _, err := in.apply(context.Background(), dsn); err != nil {
				return nil, err
			}
			return next(dsn)
		}
	}
	return out
}

// WrapFetcher routes a page fetcher through the injector, keyed by URL.
func (in *Injector) WrapFetcher(next webl.Fetcher) webl.Fetcher {
	return &fetcher{in: in, next: next}
}

// fetcher wraps a webl.Fetcher. It implements extract.ContextFetcher so
// the extract layer hands it the per-rule context.
type fetcher struct {
	in   *Injector
	next webl.Fetcher
}

func (f *fetcher) Fetch(url string) (string, error) {
	return f.FetchContext(context.Background(), url)
}

func (f *fetcher) FetchContext(ctx context.Context, url string) (string, error) {
	corrupt, err := f.in.apply(ctx, url)
	if err != nil {
		return "", err
	}
	var html string
	if cf, ok := f.next.(extract.ContextFetcher); ok {
		html, err = cf.FetchContext(ctx, url)
	} else {
		html, err = f.next.Fetch(url)
	}
	if err != nil {
		return "", err
	}
	if corrupt {
		return CorruptPage(html), nil
	}
	return html, nil
}

// docExtractor wraps an XML or text DocExtractor, keyed by document path.
type docExtractor struct {
	in   *Injector
	next extract.DocExtractor
}

func (d *docExtractor) Extract(path, expr string) ([]string, error) {
	corrupt, err := d.in.apply(context.Background(), path)
	if err != nil {
		return nil, err
	}
	values, err := d.next.Extract(path, expr)
	if err != nil {
		return nil, err
	}
	if corrupt {
		out := make([]string, len(values))
		for i, v := range values {
			out[i] = CorruptValue(v)
		}
		return out, nil
	}
	return values, nil
}

// CorruptValue mangles one extracted value the way a half-broken source
// would: recognizably garbage, but still a string the pipeline must
// carry without crashing.
func CorruptValue(v string) string {
	return "\x00corrupt(" + v + ")"
}

// CorruptPage truncates a fetched page mid-document and appends garbage,
// simulating a source that cuts the response off.
func CorruptPage(html string) string {
	cut := len(html) / 2
	return html[:cut] + "\x00\x00<corrupted"
}

// RoundTripper routes HTTP requests through the injector, keyed by the
// request URL's host. Transient faults surface as synthesized 503
// responses carrying Retry-After (what a struggling upstream actually
// sends, and what the transport client's retry loop keys on); permanent
// faults as 500s; Corrupt garbles the response body.
func (in *Injector) RoundTripper(next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return &roundTripper{in: in, next: next}
}

type roundTripper struct {
	in   *Injector
	next http.RoundTripper
}

func (rt *roundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	corrupt, err := rt.in.apply(req.Context(), req.URL.Host)
	if err != nil {
		if extract.IsPermanent(err) {
			return syntheticResponse(req, http.StatusInternalServerError, err.Error(), nil), nil
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// Hangs and cancellations never produce a response: the
			// caller sees a transport-level error, like a real timeout.
			return nil, err
		}
		return syntheticResponse(req, http.StatusServiceUnavailable, err.Error(),
			http.Header{"Retry-After": []string{"1"}}), nil
	}
	resp, err := rt.next.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if corrupt {
		body, rerr := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); rerr == nil {
			rerr = cerr
		}
		if rerr != nil {
			return nil, rerr
		}
		mangled := CorruptPage(string(body))
		resp.Body = io.NopCloser(strings.NewReader(mangled))
		resp.ContentLength = int64(len(mangled))
		resp.Header.Set("Content-Length", strconv.Itoa(len(mangled)))
	}
	return resp, nil
}

func syntheticResponse(req *http.Request, status int, body string, hdr http.Header) *http.Response {
	if hdr == nil {
		hdr = http.Header{}
	}
	hdr.Set("Content-Type", "text/plain; charset=utf-8")
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		StatusCode:    status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        hdr,
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}
