package faultinject

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/datasource"
	"repro/internal/extract"
	"repro/internal/webl"
)

func TestKeySelectsBackendAddress(t *testing.T) {
	cases := []struct {
		def  datasource.Definition
		want string
	}{
		{datasource.Definition{ID: "w1", Kind: datasource.KindWeb, URL: "http://a/p"}, "http://a/p"},
		{datasource.Definition{ID: "x1", Kind: datasource.KindXML, Path: "cat.xml"}, "cat.xml"},
		{datasource.Definition{ID: "t1", Kind: datasource.KindText, Path: "notes.txt"}, "notes.txt"},
		{datasource.Definition{ID: "d1", Kind: datasource.KindDatabase, DSN: "mem://db"}, "mem://db"},
		{datasource.Definition{ID: "u1"}, "u1"},
	}
	for _, c := range cases {
		if got := Key(c.def); got != c.want {
			t.Errorf("Key(%s) = %q, want %q", c.def.ID, got, c.want)
		}
	}
}

func TestFailFirstThenRecover(t *testing.T) {
	in := New(1, Plan{"src": {FailFirst: 3}})
	for i := 1; i <= 5; i++ {
		_, err := in.apply(context.Background(), "src")
		if i <= 3 && err == nil {
			t.Fatalf("call %d: want injected failure, got nil", i)
		}
		if i > 3 && err != nil {
			t.Fatalf("call %d: want recovery, got %v", i, err)
		}
		if i <= 3 && extract.IsPermanent(err) {
			t.Fatalf("call %d: FailFirst must be transient, got permanent %v", i, err)
		}
	}
	if got := in.Calls("src"); got != 5 {
		t.Fatalf("Calls = %d, want 5", got)
	}
}

func TestFlappingCycle(t *testing.T) {
	in := New(1, Plan{"src": {FlapFail: 2, FlapOK: 3}})
	var pattern []bool
	for i := 0; i < 10; i++ {
		_, err := in.apply(context.Background(), "src")
		pattern = append(pattern, err != nil)
	}
	want := []bool{true, true, false, false, false, true, true, false, false, false}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("call %d: failed=%v, want %v (pattern %v)", i+1, pattern[i], want[i], pattern)
		}
	}
}

func TestPermanentFaultIsMarkedPermanent(t *testing.T) {
	in := New(1, Plan{"src": {Permanent: true}})
	_, err := in.apply(context.Background(), "src")
	if err == nil || !extract.IsPermanent(err) {
		t.Fatalf("want permanent injected error, got %v", err)
	}
}

func TestHangHonorsContext(t *testing.T) {
	// A canceled context must end the hang immediately: the real sleep
	// returns ctx.Err without waiting, so no wall-clock read is needed to
	// prove the hang respects cancellation.
	in := New(1, Plan{"src": {Hang: true}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := in.apply(ctx, "src")
	if err == nil {
		t.Fatal("want hang error, got nil")
	}
	if !strings.Contains(err.Error(), "injected hang") {
		t.Fatalf("want injected hang error, got %v", err)
	}
}

func TestHangWaitsFullBoundWithoutCancel(t *testing.T) {
	// Through the sleep seam: an uncancelled hang must wait the maxHang
	// bound, then surface as a deadline error — asserted deterministically
	// by recording the requested sleep instead of reading the clock.
	in := New(1, Plan{"src": {Hang: true}})
	var slept []time.Duration
	in.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	_, err := in.apply(context.Background(), "src")
	if err == nil || !strings.Contains(err.Error(), "injected hang elapsed") {
		t.Fatalf("want hang-elapsed error, got %v", err)
	}
	if len(slept) != 1 || slept[0] != maxHang {
		t.Fatalf("hang slept %v, want one sleep of %v", slept, maxHang)
	}
}

func TestLatencyIsDeterministicPerSeed(t *testing.T) {
	draw := func(seed int64) []time.Duration {
		in := New(seed, Plan{"src": {JitterLatency: time.Hour}})
		var out []time.Duration
		for i := 0; i < 8; i++ {
			out = append(out, in.decide("src").delay)
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := draw(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter sequences")
	}
}

func TestAddLatencyDelays(t *testing.T) {
	// The injected sleep records the delay the injector asked for, so the
	// assertion is exact and wall-clock-free.
	in := New(1, Plan{"src": {AddLatency: 30 * time.Millisecond}})
	var slept time.Duration
	in.sleep = func(ctx context.Context, d time.Duration) error {
		slept += d
		return nil
	}
	if _, err := in.apply(context.Background(), "src"); err != nil {
		t.Fatal(err)
	}
	if slept != 30*time.Millisecond {
		t.Fatalf("injector slept %v, want 30ms", slept)
	}
}

func TestWrapFetcherImplementsContextFetcher(t *testing.T) {
	inner := webl.MapFetcher{"http://a/p": "<html>ok</html>"}
	in := New(1, Plan{"http://a/p": {FailFirst: 1}})
	wrapped := in.WrapFetcher(inner)
	if _, ok := wrapped.(extract.ContextFetcher); !ok {
		t.Fatal("wrapped fetcher must implement extract.ContextFetcher")
	}
	if _, err := wrapped.Fetch("http://a/p"); err == nil {
		t.Fatal("first fetch should fail")
	}
	html, err := wrapped.Fetch("http://a/p")
	if err != nil {
		t.Fatalf("second fetch: %v", err)
	}
	if html != "<html>ok</html>" {
		t.Fatalf("unexpected page %q", html)
	}
}

func TestWrapFetcherCorruptsPages(t *testing.T) {
	inner := webl.MapFetcher{"http://a/p": "<html><body>hello</body></html>"}
	in := New(1, Plan{"http://a/p": {Corrupt: true}})
	html, err := in.WrapFetcher(inner).Fetch("http://a/p")
	if err != nil {
		t.Fatal(err)
	}
	if html == "<html><body>hello</body></html>" {
		t.Fatal("page was not corrupted")
	}
	if !strings.Contains(html, "<corrupted") {
		t.Fatalf("corrupted page missing marker: %q", html)
	}
}

type stubDoc struct{ values []string }

func (s stubDoc) Extract(path, expr string) ([]string, error) { return s.values, nil }

func TestWrapBackendsDocCorruption(t *testing.T) {
	in := New(1, Plan{"cat.xml": {Corrupt: true}})
	b := in.WrapBackends(extract.Backends{XML: stubDoc{values: []string{"v1", "v2"}}})
	values, err := b.XML.Extract("cat.xml", "/x")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range values {
		if !strings.HasPrefix(v, "\x00corrupt(") {
			t.Fatalf("value %q not corrupted", v)
		}
	}
	// Unplanned path passes through untouched.
	values, err = b.XML.Extract("other.xml", "/x")
	if err != nil {
		t.Fatal(err)
	}
	if values[0] != "v1" {
		t.Fatalf("unplanned target mangled: %v", values)
	}
}

func TestRoundTripperTransientIs503WithRetryAfter(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "payload")
	}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")

	in := New(1, Plan{host: {FailFirst: 1}})
	client := &http.Client{Transport: in.RoundTripper(http.DefaultTransport)}

	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 missing Retry-After")
	}

	resp, err = client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "payload" {
		t.Fatalf("recovered call: status %d body %q", resp.StatusCode, body)
	}
}

func TestRoundTripperPermanentIs500(t *testing.T) {
	in := New(1, Plan{"example.invalid": {Permanent: true}})
	rt := in.RoundTripper(http.DefaultTransport)
	req, _ := http.NewRequest(http.MethodGet, "http://example.invalid/q", nil)
	resp, err := rt.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
}

func TestRoundTripperCorruptsBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "<html><body>clean payload body</body></html>")
	}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")

	in := New(1, Plan{host: {Corrupt: true}})
	client := &http.Client{Transport: in.RoundTripper(nil)}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "<corrupted") {
		t.Fatalf("body not corrupted: %q", body)
	}
}

func TestSameSeedSamePlanIsReproducible(t *testing.T) {
	run := func() []bool {
		in := New(7, Plan{
			"a": {FailFirst: 2},
			"b": {FlapFail: 1, FlapOK: 1},
		})
		var outcomes []bool
		for i := 0; i < 6; i++ {
			_, errA := in.apply(context.Background(), "a")
			_, errB := in.apply(context.Background(), "b")
			outcomes = append(outcomes, errA != nil, errB != nil)
		}
		return outcomes
	}
	first, second := run(), run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("outcome %d diverged between identical runs", i)
		}
	}
}
