package analysis

import (
	"strconv"
	"strings"
)

// Stdlibonly enforces the project charter's pure-stdlib rule: every
// import in the tree must be a standard-library package or a package of
// this module. The middleware is meant to run unattended between B2B
// partners; a dependency-free build is part of that contract, and this
// analyzer is what keeps "stdlib-only" true by construction rather than
// by review vigilance.
var Stdlibonly = register(&Analyzer{
	Name: "stdlibonly",
	Doc:  "imports must come from the standard library or this module",
	Run:  runStdlibonly,
})

// modulePrefix is the import-path prefix of this module. The analyzer
// derives the unit's own module from its package path so the golden
// corpus (whose packages live under the same module) behaves like the
// real tree.
const modulePrefix = "repro"

func runStdlibonly(p *Pass) {
	for _, file := range p.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if stdlibOrModuleImport(path) {
				continue
			}
			p.Reportf(imp.Pos(), "import %q is neither standard library nor module-internal; the tree is stdlib-only", path)
		}
	}
}

// stdlibOrModuleImport reports whether path is acceptable: module
// packages, or standard-library packages — recognized, as the go tool
// itself does, by the absence of a dot in the first path element.
func stdlibOrModuleImport(path string) bool {
	if path == modulePrefix || strings.HasPrefix(path, modulePrefix+"/") {
		return true
	}
	first := path
	if i := strings.Index(path, "/"); i >= 0 {
		first = path[:i]
	}
	return !strings.Contains(first, ".")
}
