package analysis

import (
	"reflect"
	"strings"
	"testing"
)

// TestLoaderCoversModule loads the real module and checks the unit
// inventory: packages, in-package test augmentation, test-only
// directories (the chaos suite), and command mains must all be present
// and type-checked — otherwise whole invariant surfaces silently escape
// the lint gate.
func TestLoaderCoversModule(t *testing.T) {
	loader := corpusLoader(t)
	units, err := loader.Load()
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]*Unit{}
	for _, u := range units {
		byPath[u.PkgPath] = u
		if u.Pkg == nil {
			t.Errorf("unit %s loaded without type information", u.PkgPath)
		}
	}
	for _, want := range []string{
		"repro",                      // root: bench_test.go only
		"repro/internal/obs",         // package + in-package tests
		"repro/internal/integration", // test-only package (chaos suite)
		"repro/internal/faultinject", // deterministic zone
		"repro/cmd/s2s-lint",         // the linter lints itself
		"repro/internal/analysis",    // and its own framework
	} {
		if byPath[want] == nil {
			t.Errorf("no unit loaded for %s", want)
		}
	}
	for _, mustBeTest := range []string{"repro", "repro/internal/integration", "repro/internal/obs"} {
		if u := byPath[mustBeTest]; u != nil && !u.Test {
			t.Errorf("unit %s should include test files", mustBeTest)
		}
	}
}

func TestFormatVerbs(t *testing.T) {
	cases := []struct {
		format string
		want   []verb
	}{
		{"plain", nil},
		{"%v", []verb{{0, 'v'}}},
		{"%d and %w", []verb{{0, 'd'}, {1, 'w'}}},
		{"100%% %s", []verb{{0, 's'}}},
		{"%*d %v", []verb{{1, 'd'}, {2, 'v'}}},
		{"%.2f %v", []verb{{0, 'f'}, {1, 'v'}}},
		{"%-10s|%+d", []verb{{0, 's'}, {1, 'd'}}},
		{"%[2]s %[1]s", []verb{{1, 's'}, {0, 's'}}},
		{"trailing %", nil},
	}
	for _, c := range cases {
		if got := formatVerbs(c.format); !reflect.DeepEqual(got, c.want) {
			t.Errorf("formatVerbs(%q) = %v, want %v", c.format, got, c.want)
		}
	}
}

func TestStdlibOrModuleImport(t *testing.T) {
	allowed := []string{"fmt", "net/http", "math/rand/v2", "repro", "repro/internal/obs"}
	for _, path := range allowed {
		if !stdlibOrModuleImport(path) {
			t.Errorf("%q should be allowed", path)
		}
	}
	denied := []string{"github.com/acme/widget", "golang.org/x/tools/go/analysis", "gopkg.in/yaml.v3"}
	for _, path := range denied {
		if stdlibOrModuleImport(path) {
			t.Errorf("%q should be denied", path)
		}
	}
}

func TestDeterminismScope(t *testing.T) {
	in := []string{
		"repro/internal/faultinject",
		"repro/internal/integration",
		"repro/internal/integration_test", // external test unit of the chaos suite
	}
	for _, path := range in {
		if !inDeterminismScope(path) {
			t.Errorf("%q should be in the deterministic zone", path)
		}
	}
	out := []string{"repro/internal/obs", "repro/internal/core", "repro"}
	for _, path := range out {
		if inDeterminismScope(path) {
			t.Errorf("%q should be outside the deterministic zone", path)
		}
	}
}

// TestSuppressionRequiresReason pins the ignore-comment grammar: the
// analyzer name alone does not suppress — a reason is mandatory.
func TestSuppressionRequiresReason(t *testing.T) {
	if ignoreRe.MatchString("//lint:ignore errwrap") {
		t.Error("suppression without a reason must not parse")
	}
	m := ignoreRe.FindStringSubmatch("//lint:ignore errwrap keeping the flat message for operators")
	if m == nil || m[1] != "errwrap" {
		t.Fatalf("well-formed suppression failed to parse: %v", m)
	}
	if !strings.Contains(m[2], "operators") {
		t.Errorf("reason not captured: %q", m[2])
	}
}
