package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism guards the property the whole chaos suite rests on: a
// fault-injection run is reproducible from its single seed. Inside the
// fault injector and the chaos/integration suites, wall-clock reads
// (time.Now), the global math/rand generator, and output produced while
// ranging over a map would each smuggle nondeterminism past the seed —
// so all three are forbidden there. Time must come from the injected
// clock, randomness from the injector's seeded *rand.Rand, and anything
// printed from a map must be sorted first.
var Determinism = register(&Analyzer{
	Name:      "determinism",
	Doc:       "fault injection and chaos suites must be reproducible from the seed",
	NeedTypes: true,
	Run:       runDeterminism,
})

// determinismScope lists the path segments that place a package inside
// the deterministic zone. The cluster is in scope because its failure
// detector, hedge timers, and latency measurements must run off the
// Options.Now/After seams — a raw clock call there would make the
// 3-node chaos suite irreproducible. The stats registry is in scope
// because cost-based source ordering must be a pure function of the
// observation sequence: latencies are measured by callers and passed
// in, never read from the wall clock inside the registry.
var determinismScope = []string{"faultinject", "integration", "planner", "cluster", "stats"}

// inDeterminismScope reports whether the unit's import path has a
// segment naming a deterministic-zone package.
func inDeterminismScope(pkgPath string) bool {
	return pathHasSegment(pkgPath, determinismScope)
}

func runDeterminism(p *Pass) {
	if !inDeterminismScope(p.PkgPath) {
		return
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterministicCall(p, n)
			case *ast.RangeStmt:
				checkMapRangeOutput(p, n)
			}
			return true
		})
	}
}

// checkDeterministicCall flags wall-clock reads and the global
// math/rand generator.
func checkDeterministicCall(p *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := p.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	// Methods (e.g. (*rand.Rand).Intn on the seeded generator) are fine;
	// only package-level functions are globals.
	if fn.Type().(*types.Signature).Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		// time.After joins time.Now because the cluster's hedge and
		// heartbeat timers must fire from the injected After seam.
		if fn.Name() == "Now" || fn.Name() == "After" {
			p.Reportf(call.Pos(), "time."+fn.Name()+" in the deterministic zone; use the injected clock")
		}
	case "math/rand", "math/rand/v2":
		// Constructing a seeded generator is the sanctioned pattern.
		if fn.Name() == "New" || fn.Name() == "NewSource" || fn.Name() == "NewZipf" {
			return
		}
		p.Reportf(call.Pos(), "global math/rand.%s in the deterministic zone; draw from the seeded *rand.Rand", fn.Name())
	}
}

// checkMapRangeOutput flags loops that range over a map and write
// output from the loop body: Go randomizes map iteration order, so the
// produced bytes differ run to run even with a fixed seed.
func checkMapRangeOutput(p *Pass, rng *ast.RangeStmt) {
	t := p.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isOutputCall(p, call) {
			return true
		}
		p.Reportf(call.Pos(), "output inside a map-range loop is ordered by map iteration; collect and sort keys first")
		return true
	})
}

// isOutputCall recognizes calls that emit bytes: the fmt print family
// and Write*-style methods (io.Writer, strings.Builder, bufio.Writer…).
func isOutputCall(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if fn, ok := p.ObjectOf(sel.Sel).(*types.Func); ok && fn.Pkg() != nil {
		if fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Print") {
			return true
		}
		if fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") {
			return true
		}
	}
	return strings.HasPrefix(sel.Sel.Name, "Write")
}
