// Corpus for the determinism analyzer: a "cluster" path segment places
// the package in the deterministic zone, so clock reads must flow
// through injected Now/After seams and randomness through a seeded
// generator.
package cluster

import (
	"fmt"
	"sort"
	"time"
)

type options struct {
	Now   func() time.Time
	After func(d time.Duration) <-chan time.Time
}

func (o options) withDefaults() options {
	if o.Now == nil {
		o.Now = time.Now // function value, not a call: the sanctioned default
	}
	if o.After == nil {
		o.After = time.After // likewise
	}
	return o
}

func heartbeatDeadline(o options) time.Time {
	return time.Now().Add(time.Second) // want "injected clock"
}

func hedgeTimer(d time.Duration) <-chan time.Time {
	return time.After(d) // want "injected clock"
}

func seamClock(o options) time.Time {
	return o.Now() // reading through the seam: no finding
}

func membersOutput(m map[string]string) {
	for id, status := range m {
		fmt.Println(id, status) // want "map-range"
	}
}

func sortedMembers(m map[string]string) []string {
	ids := make([]string, 0, len(m))
	for id := range m { // collecting is order-insensitive: no finding
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
