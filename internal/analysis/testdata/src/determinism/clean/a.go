// Corpus negative case: this package is outside the deterministic zone
// (no faultinject/integration path segment), so nothing is reported.
package clean

import (
	"fmt"
	"math/rand"
	"time"
)

func wallClockIsFineHere() time.Time {
	return time.Now()
}

func globalRandIsFineHere() int {
	return rand.Intn(6)
}

func mapOutputIsFineHere(m map[string]int) {
	for k := range m {
		fmt.Println(k)
	}
}
