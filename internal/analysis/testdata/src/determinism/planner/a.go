// Corpus for the determinism analyzer: the query planner's import path
// has a "planner" segment, which places it in the deterministic zone —
// identical queries must rewrite identically, so plan decisions may not
// depend on wall clocks, unseeded randomness, or map iteration order.
package planner

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

func planTimestamp() time.Time {
	return time.Now() // want "injected clock"
}

func randomTieBreak(n int) int {
	return rand.Intn(n) // want "seeded *rand.Rand"
}

func decisionsFromMap(groups map[string][]string, sb *strings.Builder) {
	for src := range groups {
		sb.WriteString(src) // want "map-range"
	}
}

func decisionsSorted(groups map[string][]string, sb *strings.Builder) {
	ids := make([]string, 0, len(groups))
	for src := range groups { // collecting is order-insensitive: no finding
		ids = append(ids, src)
	}
	sort.Strings(ids)
	for _, src := range ids {
		sb.WriteString(src)
	}
}

func debugDump(stats map[string]int) {
	for k, v := range stats {
		fmt.Println(k, v) // want "map-range"
	}
}
