// Corpus for the determinism analyzer: the statistics registry's import
// path has a "stats" segment, which places it in the deterministic zone
// — cost-based source ordering must be a pure function of the observed
// samples, so the registry may not read wall clocks, draw unseeded
// randomness, or emit output in map-iteration order.
package stats

import (
	"math/rand"
	"sort"
	"strings"
	"time"
)

type registry struct {
	latency map[string]float64
}

func (r *registry) observeNow() time.Duration {
	start := time.Now() // want "injected clock"
	return time.Since(start)
}

func jitteredDecay() float64 {
	return rand.Float64() // want "seeded *rand.Rand"
}

func (r *registry) dumpUnsorted(sb *strings.Builder) {
	for id := range r.latency {
		sb.WriteString(id) // want "map-range"
	}
}

func (r *registry) dumpSorted(sb *strings.Builder) {
	ids := make([]string, 0, len(r.latency))
	for id := range r.latency { // collecting is order-insensitive: no finding
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		sb.WriteString(id)
	}
}

// Callers measuring latency with their own clock and passing the value
// in is the sanctioned pattern; arithmetic on durations is fine.
func fold(v float64, d time.Duration) float64 {
	return v + 0.125*(d.Seconds()-v)
}
