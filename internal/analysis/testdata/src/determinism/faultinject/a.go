// Corpus for the determinism analyzer: this package's import path has a
// "faultinject" segment, which places it in the deterministic zone.
package faultinject

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want "injected clock"
}

func globalRand() int {
	return rand.Intn(6) // want "seeded *rand.Rand"
}

func seededRandIsFine() int {
	r := rand.New(rand.NewSource(42)) // constructing the seeded rng is the sanctioned pattern
	return r.Intn(6)
}

func mapOrderedOutput(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "map-range"
	}
}

func mapOrderedWrite(m map[string]int, sb *strings.Builder) {
	for k := range m {
		sb.WriteString(k) // want "map-range"
	}
}

func sortedOutput(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m { // counting/collecting is order-insensitive: no finding
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k]) // slice range: no finding
	}
}
