// A demo binary: the pkgdoc analyzer's happy path for package main.
// Commands and examples may open with any doc header — "Package main"
// is never required, only some package-level comment.
package main

func main() {}
