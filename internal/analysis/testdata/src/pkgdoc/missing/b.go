package missing

// B is documented, but the package is not: a func comment in a later
// file must not satisfy the package-doc rule, and the finding must land
// on the alphabetically first file (a.go), not here.
func B() {}
