// Test files are skipped: this doc comment must not count as the
// package's godoc comment.
package missing

func testHelper() {}
