package missing // want "package missing has no package-level doc comment"

func A() {}
