// This comment documents the package but not in godoc form. // want "doc comment does not start with"
package malformed

func A() {}
