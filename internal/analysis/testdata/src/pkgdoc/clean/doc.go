// Package clean is the pkgdoc analyzer's happy path: one file carries
// the godoc-form package comment, the others need none.
package clean
