package clean

func A() {}
