// Corpus for the errwrap analyzer.
package errwrap

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base")

type myErr struct{}

func (myErr) Error() string { return "my" }

func wraps() error {
	return fmt.Errorf("context: %w", errBase) // correct wrap, no finding
}

func flattens() error {
	return fmt.Errorf("context: %v", errBase) // want "use %w"
}

func flattensString() error {
	return fmt.Errorf("context: %s", errBase) // want "use %w"
}

func flattensLater(n int) error {
	return fmt.Errorf("%d items failed: %v", n, errBase) // want "use %w"
}

func starWidth(w int) error {
	return fmt.Errorf("%*d wide: %v", w, 7, errBase) // want "use %w"
}

func typedValue() error {
	return fmt.Errorf("oops: %v", myErr{}) // want "use %w"
}

func typeVerbIsFine() error {
	return fmt.Errorf("unexpected error type %T", errBase) // no finding: %T prints the type
}

func nonErrorOperand(name string) error {
	return fmt.Errorf("no such source %v", name) // no finding: not an error
}

func explicitIndex() error {
	return fmt.Errorf("twice: %[1]v and %[1]v", errBase) // want "use %w" // want "use %w"
}

func suppressedForGoodReason() error {
	//lint:ignore errwrap corpus exercises the suppression syntax
	return fmt.Errorf("deliberately flattened: %v", errBase)
}
