// Corpus for the stdlibonly analyzer. This package is parse-only (the
// third-party imports deliberately do not resolve).
package stdlibonly

import (
	"fmt"
	"strings"

	"repro/internal/obs"

	"github.com/acme/widget"      // want "neither standard library nor module-internal"
	etcd "go.etcd.io/etcd/client" // want "neither standard library nor module-internal"
	"gopkg.in/yaml.v3"            // want "neither standard library nor module-internal"
)

var _ = fmt.Sprint
var _ = strings.TrimSpace
var _ = obs.StartSpan
var _ = widget.New
var _ = etcd.New
var _ = yaml.Marshal
