// Corpus for the wgbalance analyzer.
package wgbalance

import "sync"

func work() {}

func addBeforeSpawn(items []int) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1) // no finding: Add precedes the spawn, Done deferred
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

func addInsideGoroutine() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want "races with"
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func doneMissedOnErrorPath(ok bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "not reached on every path"
		if !ok {
			return
		}
		wg.Done()
	}()
	wg.Wait()
}

func doneOnAllPathsDirect(ok bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // no finding: both branches decrement
		if !ok {
			wg.Done()
			return
		}
		work()
		wg.Done()
	}()
	wg.Wait()
}

func missingDoneEntirely(ch chan int) {
	var wg sync.WaitGroup
	wg.Add(1) // want "no matching"
	go func() {
		ch <- 1
	}()
	wg.Wait()
}

func worker(wg *sync.WaitGroup, ok bool) {
	if !ok {
		return
	}
	wg.Done()
}

func spawnNamedPartialDone(ok bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go worker(&wg, ok) // want "not reached on every path of spawned worker"
	wg.Wait()
}

func workerClean(wg *sync.WaitGroup) {
	defer wg.Done()
	work()
}

func spawnNamedClean() {
	var wg sync.WaitGroup
	wg.Add(1) // no finding: the spawned function defers Done
	go workerClean(&wg)
	wg.Wait()
}

func helperOwnsIt(wg *sync.WaitGroup) {
	work()
	wg.Done()
}

func escapesToHelper() {
	var wg sync.WaitGroup
	wg.Add(1) // no finding: the WaitGroup's address escapes to a helper
	helperOwnsIt(&wg)
	wg.Wait()
}

type pool struct{ wg sync.WaitGroup }

func (p *pool) fieldReceiversSkipped() {
	p.wg.Add(1) // no finding: field receivers may balance across methods
	p.wg.Wait()
}
