package extract

// Test files are exempt: a test's goroutines die with the process.

func spawnsFreelyInTests() {
	go leakWork() // no finding: _test.go file
}
