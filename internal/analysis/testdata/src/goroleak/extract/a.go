// Corpus for the goroleak analyzer: this package is in scope (its
// import path carries an "extract" segment, placing it on the query
// path).
package extract

import (
	"context"
	"sync"
)

func leakWork() {}

func fireAndForgetNamed() {
	go leakWork() // want "fire-and-forget"
}

func fireAndForgetLit() {
	go func() { // want "fire-and-forget"
		leakWork()
	}()
}

func joinedByWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // no finding: WaitGroup join
		defer wg.Done()
		leakWork()
	}()
	wg.Wait()
}

func joinedByChannel() <-chan int {
	ch := make(chan int, 1)
	go func() { // no finding: result channel
		ch <- 42
	}()
	return ch
}

func observesStop(stop chan struct{}) {
	go func() { // no finding: observes the stop channel
		for {
			select {
			case <-stop:
				return
			default:
				leakWork()
			}
		}
	}()
}

func observesContext(ctx context.Context) {
	go func() { // no finding: observes ctx.Done
		<-ctx.Done()
	}()
	go loop(ctx) // no finding: the callee takes the context
}

func loop(ctx context.Context) { <-ctx.Done() }

func drains(ch chan int) {
	go func() { // no finding: bounded by the channel closing
		for range ch {
		}
	}()
}

func closerJoin(done chan struct{}) {
	go func() { // no finding: closes the done channel
		defer close(done)
		leakWork()
	}()
}
