// Out-of-scope corpus for the goroleak analyzer: no query/cluster-path
// segment in the import path, so even a fire-and-forget goroutine stays
// unreported here.
package other

func background() {}

func fireAndForgetOutOfScope() {
	go background() // no finding: package is outside the goroleak scope
}
