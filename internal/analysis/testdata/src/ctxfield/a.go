// Corpus for the ctxfield analyzer.
package ctxfield

import "context"

type holder struct {
	name string
	ctx  context.Context // want "stored in a struct field"
}

type embedded struct {
	context.Context // want "stored in a struct field"
	n               int
}

type clean struct {
	name string
	n    int
}

func firstParam(ctx context.Context, name string) {} // correct position

func lastParam(name string, ctx context.Context) {} // want "must be the first parameter"

func middleParam(a int, ctx context.Context, b int) {} // want "must be the first parameter"

func noCtx(a, b int) {}

func literalToo() {
	_ = func(n int, ctx context.Context) {} // want "must be the first parameter"
}

func use(ctx context.Context) any {
	_ = holder{}
	_ = embedded{}
	_ = clean{}
	firstParam(ctx, "x")
	lastParam("x", ctx)
	middleParam(1, ctx, 2)
	noCtx(1, 2)
	literalToo()
	return nil
}
