// Corpus for the leakytimer analyzer.
package leakytimer

import "time"

func tick() {}

func selectLoop(stop chan struct{}) {
	for {
		select {
		case <-time.After(time.Second): // want "leaks a timer per iteration"
			tick()
		case <-stop:
			return
		}
	}
}

func rangeLoop(items []int) {
	for range items {
		<-time.After(time.Millisecond) // want "leaks a timer per iteration"
	}
}

func oneShot(ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-time.After(time.Second): // no finding: one timer, outside any loop
		return 0
	}
}

func timerLoop(stop chan struct{}) {
	t := time.NewTimer(time.Second) // no finding: single timer, Reset per iteration
	defer t.Stop()
	for {
		select {
		case <-t.C:
			tick()
			t.Reset(time.Second)
		case <-stop:
			return
		}
	}
}

type clock struct{}

func (clock) After(d time.Duration) <-chan time.Time { return nil }

func injectedSeam(c clock, stop chan struct{}) {
	for {
		select {
		case <-c.After(time.Second): // no finding: the injected seam, not time.After
			tick()
		case <-stop:
			return
		}
	}
}

func litInsideLoop(fns []func()) {
	for range fns {
		f := func() {
			<-time.After(time.Millisecond) // no finding: the literal runs on its own schedule
		}
		f()
	}
}
