// Corpus for the spanend analyzer, exercised against the real obs
// package.
package spanend

import (
	"context"
	"errors"

	"repro/internal/obs"
)

func deferredEnd(ctx context.Context) {
	ctx, span := obs.StartSpan(ctx, "work") // no finding: deferred End
	defer span.End()
	use(ctx)
}

func neverEnded(ctx context.Context) {
	ctx, span := obs.StartSpan(ctx, "work") // want "not finished on all return paths"
	span.SetAttr("k", "v")
	use(ctx)
}

func endOnOnePathOnly(ctx context.Context, fail bool) error {
	ctx, span := obs.StartSpan(ctx, "work") // want "not finished on all return paths"
	if fail {
		return errors.New("early return leaks the span")
	}
	use(ctx)
	span.End()
	return nil
}

func endOnAllPaths(ctx context.Context, fail bool) error {
	ctx, span := obs.StartSpan(ctx, "work") // no finding: both paths end
	if fail {
		span.End()
		return errors.New("failed, but finished")
	}
	use(ctx)
	span.End()
	return nil
}

func stageDeferred(ctx context.Context) {
	ctx, span, done := obs.StartStage(ctx, "stage") // no finding: deferred done
	defer done()
	span.SetAttr("k", "v")
	use(ctx)
}

func stageLeaks(ctx context.Context, fail bool) error {
	ctx, _, done := obs.StartStage(ctx, "stage") // want "not finished on all return paths"
	if fail {
		return errors.New("early return skips done")
	}
	use(ctx)
	done()
	return nil
}

func stageDiscarded(ctx context.Context) {
	_, _, _ = obs.StartStage(ctx, "stage") // want "can never be finished"
}

func childEnded(parent *obs.Span) {
	child := parent.StartChild("step") // no finding
	defer child.End()
}

func childLeaked(parent *obs.Span) {
	child := parent.StartChild("step") // want "not finished on all return paths"
	child.SetAttr("k", "v")
}

func traceEnded(ctx context.Context, tr *obs.Tracer) {
	ctx, root := tr.StartTrace(ctx, "query") // no finding
	defer root.End()
	use(ctx)
}

func traceLeaked(ctx context.Context, tr *obs.Tracer) {
	ctx, root := tr.StartTrace(ctx, "query") // want "not finished on all return paths"
	root.SetAttr("k", "v")
	use(ctx)
}

func ownershipTransferred(ctx context.Context) *obs.Span {
	_, span := obs.StartSpan(ctx, "handoff") // no finding: returned to the caller
	return span
}

func closureTakesOver(ctx context.Context) func() {
	_, span := obs.StartSpan(ctx, "deferred-by-caller") // no finding: the closure owns the finish
	return func() { span.End() }
}

func deferredClosureCounts(ctx context.Context) {
	_, span := obs.StartSpan(ctx, "wrapped") // no finding: deferred closure ends it
	defer func() { span.End() }()
	use(ctx)
}

func use(context.Context) {}
