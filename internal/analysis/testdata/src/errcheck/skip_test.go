package errcheck

// Test files are exempt from errcheck: a dropped error in a test fails
// the assertion that follows it, not production traffic.

func dropsAreFineInTests() {
	doErr() // no finding: _test.go file
	_ = doErr()
}
