// Corpus for the errcheck analyzer.
package errcheck

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
)

func doErr() error { return errors.New("boom") }

func twoResults() (int, error) { return 0, errors.New("boom") }

func pure() int { return 1 }

func bareDrops() {
	doErr()      // want "drops its error result"
	twoResults() // want "drops its error result"
	pure()       // no finding: no error result
}

func explicitDiscards() {
	_ = doErr() // want "explicitly discarded"
	//lint:ignore errcheck corpus exercises the reasoned-discard form
	_ = doErr()         // no active finding: suppressed with a reason
	_, _ = twoResults() // want "explicitly discarded"
	n, _ := twoResults()
	_ = n // no finding: not a call
}

func handled() error {
	if err := doErr(); err != nil {
		return err
	}
	return nil
}

func exemptWriters(w *bufio.Writer) {
	var b strings.Builder
	var buf bytes.Buffer
	b.WriteString("x")             // no finding: strings.Builder never fails
	buf.WriteByte('y')             // no finding: bytes.Buffer never fails
	w.WriteString("z")             // no finding: sticky error, surfaced at Flush
	fmt.Println("hello")           // no finding: fmt print family
	fmt.Fprintf(os.Stderr, "oops") // no finding: fmt print family
	w.Flush()                      // want "drops its error result"
}
