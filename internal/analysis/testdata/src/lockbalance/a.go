// Corpus for the lockbalance analyzer.
package lockbalance

import (
	"errors"
	"sync"
)

type store struct {
	mu   sync.RWMutex
	data map[string]string
}

func (s *store) deferred(k, v string) {
	s.mu.Lock() // no finding: deferred unlock
	defer s.mu.Unlock()
	s.data[k] = v
}

func (s *store) balancedDirect(k, v string) {
	s.mu.Lock() // no finding: dominating direct unlock
	s.data[k] = v
	s.mu.Unlock()
}

func (s *store) leaksOnEarlyReturn(k string) (string, error) {
	s.mu.RLock() // want "not released on every path"
	v, ok := s.data[k]
	if !ok {
		return "", errors.New("missing")
	}
	s.mu.RUnlock()
	return v, nil
}

func (s *store) releasesOnBothPaths(k string) (string, error) {
	s.mu.RLock() // no finding: both branches release
	v, ok := s.data[k]
	if !ok {
		s.mu.RUnlock()
		return "", errors.New("missing")
	}
	s.mu.RUnlock()
	return v, nil
}

func (s *store) mismatchedRelease(k, v string) {
	s.mu.RLock() // want "not released on every path"
	s.data[k] = v
	s.mu.Unlock() // Unlock does not balance RLock
}

func (s *store) neverReleased(k, v string) {
	s.mu.Lock() // want "not released on every path"
	s.data[k] = v
}

type embedder struct {
	sync.Mutex
	n int
}

func (e *embedder) promoted() {
	e.Lock() // no finding: promoted method, deferred unlock
	defer e.Unlock()
	e.n++
}

var global sync.Mutex

func closureBody() func() {
	return func() {
		global.Lock() // want "not released on every path"
		// closure forgets to unlock
	}
}

func twoLocks(a, b *sync.Mutex) {
	a.Lock() // no finding
	defer a.Unlock()
	b.Lock() // want "not released on every path"
	// b never unlocked; a's unlock must not satisfy it
}
