package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Spanend enforces the tracing contract from docs/OBSERVABILITY.md:
// every span started in a function is finished on all return paths,
// either by a deferred End/done call or by a call that dominates every
// return. An unfinished span freezes its subtree with a zero duration
// and — for roots — never records the trace, so a single early return
// quietly blinds the /trace/last endpoint for exactly the failing
// queries it exists to explain.
//
// Span-starting calls recognized: obs.StartSpan, obs.StartStage (whose
// done closure must be called), (*obs.Tracer).StartTrace, and
// (*obs.Span).StartChild. A span whose variable escapes — passed to
// another call, returned, or assigned onward — transfers ownership and
// is not checked here.
var Spanend = register(&Analyzer{
	Name:      "spanend",
	Doc:       "every started obs span must be finished on all return paths",
	NeedTypes: true,
	Run:       runSpanend,
})

// obsPkg is the import path of the observability package; the golden
// corpus imports the real package, so the same constant serves both.
const obsPkg = "repro/internal/obs"

// spanStart describes one recognized start call found in a function.
type spanStart struct {
	stmt ast.Stmt      // the assignment statement
	call *ast.CallExpr // the start call itself
	kind string        // function name, for messages
	// owner is the identifier whose End()/() call finishes the span: the
	// span variable, or the done closure for StartStage.
	owner *ast.Ident
}

func runSpanend(p *Pass) {
	for _, file := range p.Files {
		funcBodies(file, func(body *ast.BlockStmt) {
			checkSpanBody(p, body)
		})
	}
}

func checkSpanBody(p *Pass, body *ast.BlockStmt) {
	var starts []spanStart
	topLevelStmts(body, func(s ast.Stmt) {
		if st, ok := spanStartOf(p, s); ok {
			starts = append(starts, st)
		}
	})
	for _, st := range starts {
		if st.owner == nil {
			p.Reportf(st.call.Pos(), "%s result discarded; the span can never be finished", st.kind)
			continue
		}
		if transfersCustody(body, st.stmt, st.owner) {
			continue
		}
		f := fact{
			acquire:   st.stmt,
			isRelease: func(c *ast.CallExpr) bool { return finishesSpan(c, st.owner) },
		}
		if leak := checkBalanced(body, f); leak != token.NoPos {
			pos := p.Fset.Position(leak)
			p.Reportf(st.call.Pos(),
				"span from %s is not finished on all return paths (path escaping at line %d); defer %s",
				st.kind, pos.Line, finishHint(st))
		}
	}
}

func finishHint(st spanStart) string {
	if st.kind == "StartStage" {
		return st.owner.Name + "()"
	}
	return st.owner.Name + ".End()"
}

// spanStartOf recognizes an assignment whose RHS is a span-starting
// call and returns the identifier that owns finishing it.
func spanStartOf(p *Pass, s ast.Stmt) (spanStart, bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if len(s.Rhs) != 1 {
			return spanStart{}, false
		}
		call, ok := s.Rhs[0].(*ast.CallExpr)
		if !ok {
			return spanStart{}, false
		}
		kind, ownerIdx := spanStartKind(p, call)
		if kind == "" || ownerIdx >= len(s.Lhs) {
			return spanStart{}, false
		}
		owner, _ := s.Lhs[ownerIdx].(*ast.Ident)
		if owner != nil && owner.Name == "_" {
			owner = nil
		}
		return spanStart{stmt: s, call: call, kind: kind, owner: owner}, true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return spanStart{}, false
		}
		kind, _ := spanStartKind(p, call)
		if kind == "" {
			return spanStart{}, false
		}
		return spanStart{stmt: s, call: call, kind: kind}, true
	}
	return spanStart{}, false
}

// spanStartKind resolves a call to one of the recognized span-starting
// functions, returning its name and the index of the result that owns
// the finish obligation.
func spanStartKind(p *Pass, call *ast.CallExpr) (kind string, ownerIdx int) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	fn, ok := p.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != obsPkg {
		return "", 0
	}
	switch fn.Name() {
	case "StartSpan":
		return "StartSpan", 1 // (ctx, span)
	case "StartStage":
		return "StartStage", 2 // (ctx, span, done) — done finishes
	case "StartTrace":
		return "StartTrace", 1 // (ctx, span)
	case "StartChild":
		return "StartChild", 0 // span
	}
	return "", 0
}

// finishesSpan reports whether the call finishes the owned span:
// owner.End() for span variables, owner() for StartStage done closures.
func finishesSpan(call *ast.CallExpr, owner *ast.Ident) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id, ok := fun.X.(*ast.Ident)
		return ok && id.Name == owner.Name && fun.Sel.Name == "End"
	case *ast.Ident:
		return fun.Name == owner.Name
	}
	return false
}

// Ownership transfer (the span escaping into another function's
// custody) is detected by the dataflow core's transfersCustody; spanend
// only contributes what counts as starting and finishing a span.
