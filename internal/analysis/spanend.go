package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Spanend enforces the tracing contract from docs/OBSERVABILITY.md:
// every span started in a function is finished on all return paths,
// either by a deferred End/done call or by a call that dominates every
// return. An unfinished span freezes its subtree with a zero duration
// and — for roots — never records the trace, so a single early return
// quietly blinds the /trace/last endpoint for exactly the failing
// queries it exists to explain.
//
// Span-starting calls recognized: obs.StartSpan, obs.StartStage (whose
// done closure must be called), (*obs.Tracer).StartTrace, and
// (*obs.Span).StartChild. A span whose variable escapes — passed to
// another call, returned, or assigned onward — transfers ownership and
// is not checked here.
var Spanend = register(&Analyzer{
	Name:      "spanend",
	Doc:       "every started obs span must be finished on all return paths",
	NeedTypes: true,
	Run:       runSpanend,
})

// obsPkg is the import path of the observability package; the golden
// corpus imports the real package, so the same constant serves both.
const obsPkg = "repro/internal/obs"

// spanStart describes one recognized start call found in a function.
type spanStart struct {
	stmt ast.Stmt      // the assignment statement
	call *ast.CallExpr // the start call itself
	kind string        // function name, for messages
	// owner is the identifier whose End()/() call finishes the span: the
	// span variable, or the done closure for StartStage.
	owner *ast.Ident
}

func runSpanend(p *Pass) {
	for _, file := range p.Files {
		funcBodies(file, func(body *ast.BlockStmt) {
			checkSpanBody(p, body)
		})
	}
}

func checkSpanBody(p *Pass, body *ast.BlockStmt) {
	var starts []spanStart
	topLevelStmts(body, func(s ast.Stmt) {
		if st, ok := spanStartOf(p, s); ok {
			starts = append(starts, st)
		}
	})
	for _, st := range starts {
		if st.owner == nil {
			p.Reportf(st.call.Pos(), "%s result discarded; the span can never be finished", st.kind)
			continue
		}
		if spanEscapes(body, st) {
			continue
		}
		rc := releaseCheck{
			acquire:   st.stmt,
			isRelease: func(c *ast.CallExpr) bool { return finishesSpan(c, st.owner) },
		}
		if leak := checkReleased(body, rc); leak != token.NoPos {
			pos := p.Fset.Position(leak)
			p.Reportf(st.call.Pos(),
				"span from %s is not finished on all return paths (path escaping at line %d); defer %s",
				st.kind, pos.Line, finishHint(st))
		}
	}
}

func finishHint(st spanStart) string {
	if st.kind == "StartStage" {
		return st.owner.Name + "()"
	}
	return st.owner.Name + ".End()"
}

// spanStartOf recognizes an assignment whose RHS is a span-starting
// call and returns the identifier that owns finishing it.
func spanStartOf(p *Pass, s ast.Stmt) (spanStart, bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if len(s.Rhs) != 1 {
			return spanStart{}, false
		}
		call, ok := s.Rhs[0].(*ast.CallExpr)
		if !ok {
			return spanStart{}, false
		}
		kind, ownerIdx := spanStartKind(p, call)
		if kind == "" || ownerIdx >= len(s.Lhs) {
			return spanStart{}, false
		}
		owner, _ := s.Lhs[ownerIdx].(*ast.Ident)
		if owner != nil && owner.Name == "_" {
			owner = nil
		}
		return spanStart{stmt: s, call: call, kind: kind, owner: owner}, true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return spanStart{}, false
		}
		kind, _ := spanStartKind(p, call)
		if kind == "" {
			return spanStart{}, false
		}
		return spanStart{stmt: s, call: call, kind: kind}, true
	}
	return spanStart{}, false
}

// spanStartKind resolves a call to one of the recognized span-starting
// functions, returning its name and the index of the result that owns
// the finish obligation.
func spanStartKind(p *Pass, call *ast.CallExpr) (kind string, ownerIdx int) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	fn, ok := p.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != obsPkg {
		return "", 0
	}
	switch fn.Name() {
	case "StartSpan":
		return "StartSpan", 1 // (ctx, span)
	case "StartStage":
		return "StartStage", 2 // (ctx, span, done) — done finishes
	case "StartTrace":
		return "StartTrace", 1 // (ctx, span)
	case "StartChild":
		return "StartChild", 0 // span
	}
	return "", 0
}

// finishesSpan reports whether the call finishes the owned span:
// owner.End() for span variables, owner() for StartStage done closures.
func finishesSpan(call *ast.CallExpr, owner *ast.Ident) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id, ok := fun.X.(*ast.Ident)
		return ok && id.Name == owner.Name && fun.Sel.Name == "End"
	case *ast.Ident:
		return fun.Name == owner.Name
	}
	return false
}

// spanEscapes reports whether the owning identifier leaves the
// function's custody: used as a call argument, returned, assigned
// elsewhere, captured by a non-deferred closure, or address-taken.
// Method calls on the span (SetAttr, End, Walk…) are not escapes, but a
// closure that captures the span — even only to call End on it — takes
// over the finish obligation, unless that closure is directly deferred
// (which the path checker credits as a deferred release instead).
func spanEscapes(body *ast.BlockStmt, st spanStart) bool {
	deferred := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
				deferred[lit] = true
			}
		}
		return true
	})
	escaped := false
	var inspect func(n ast.Node) bool
	inspect = func(n ast.Node) bool {
		if escaped {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			if !deferred[n] && mentionsIdent(n.Body, st.owner) {
				escaped = true
			}
			return false
		case *ast.AssignStmt:
			if n == st.stmt {
				// The defining assignment itself; still scan the RHS for
				// uses of a shadowed outer variable — close enough.
				return true
			}
			for _, rhs := range n.Rhs {
				if usesIdent(rhs, st.owner) {
					escaped = true
				}
			}
			return !escaped
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if usesIdent(arg, st.owner) {
					escaped = true
				}
			}
			return !escaped
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if usesIdent(res, st.owner) {
					escaped = true
				}
			}
			return !escaped
		case *ast.UnaryExpr:
			if usesIdent(n.X, st.owner) {
				escaped = true
			}
			return !escaped
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if usesIdent(elt, st.owner) {
					escaped = true
				}
			}
			return !escaped
		case *ast.GoStmt:
			// The span crossing into a goroutine is an ownership handoff.
			if usesIdent(n.Call, st.owner) {
				escaped = true
			}
			return !escaped
		}
		return true
	}
	ast.Inspect(body, inspect)
	return escaped
}

// mentionsIdent reports whether the node mentions the identifier by
// name anywhere at all, receiver positions included.
func mentionsIdent(n ast.Node, id *ast.Ident) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if other, ok := m.(*ast.Ident); ok && other.Name == id.Name {
			found = true
		}
		return !found
	})
	return found
}

// usesIdent reports whether the expression mentions the identifier by
// name anywhere except as the receiver of a method call.
func usesIdent(e ast.Expr, id *ast.Ident) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if recv, ok := sel.X.(*ast.Ident); ok && recv.Name == id.Name {
				// owner.Method(...) — receiver position, not an escape;
				// but still scan the selector's... nothing else to scan.
				return false
			}
		}
		if other, ok := n.(*ast.Ident); ok && other.Name == id.Name {
			found = true
			return false
		}
		return !found
	})
	return found
}
