package analysis

import (
	"go/ast"
)

// Ctxfield enforces the context-plumbing convention the observability
// layer depends on: a context.Context travels down the call graph as the
// first parameter, never inside a struct field. Spans, metrics, remote
// trace identity, and the per-query deadline budget all ride the
// context; a context frozen into a struct outlives its query, silently
// detaching cancellation and attributing spans to the wrong trace.
var Ctxfield = register(&Analyzer{
	Name:      "ctxfield",
	Doc:       "no context.Context struct fields; ctx is the first parameter",
	NeedTypes: true,
	Run:       runCtxfield,
})

func runCtxfield(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				for _, field := range n.Fields.List {
					if isContextType(p, field.Type) {
						p.Reportf(field.Pos(),
							"context.Context stored in a struct field; pass ctx as the first parameter instead")
					}
				}
			case *ast.FuncDecl:
				checkCtxPosition(p, n.Type)
			case *ast.FuncLit:
				checkCtxPosition(p, n.Type)
			}
			return true
		})
	}
}

// checkCtxPosition reports a context.Context parameter that is not the
// first parameter.
func checkCtxPosition(p *Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	idx := 0
	for _, field := range ft.Params.List {
		names := len(field.Names)
		if names == 0 {
			names = 1
		}
		if isContextType(p, field.Type) && idx > 0 {
			p.Reportf(field.Pos(), "context.Context must be the first parameter")
		}
		idx += names
	}
}

// isContextType reports whether the expression's static type is exactly
// context.Context.
func isContextType(p *Pass, e ast.Expr) bool {
	return isContextValueType(p.TypeOf(e))
}
