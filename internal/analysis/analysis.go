// Package analysis is a stdlib-only static-analysis framework enforcing
// this repository's own invariants — the ones `go vet` cannot see. The
// observability PR promised that every started span is finished; the
// robustness PR promised that retry classification survives error
// wrapping and that fault injection stays deterministic; the project
// charter promises a pure-stdlib tree. Each promise is encoded here as an
// Analyzer and enforced mechanically by `make lint` (cmd/s2s-lint).
//
// The framework itself honours the same stdlib rule: packages are loaded
// with go/parser and type-checked with go/types, stdlib imports are
// resolved from compiler export data (go/importer with a lookup into the
// build cache), and no golang.org/x/tools code is involved anywhere.
//
// A finding prints as
//
//	file:line: analyzer: message
//
// and can be suppressed — with a mandatory reason — by a comment on the
// same line or the line directly above:
//
//	//lint:ignore <analyzer> <reason>
//
// docs/STATIC_ANALYSIS.md documents every analyzer; a doc-drift test
// keeps the two in lockstep.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name is the identifier used in findings and //lint:ignore comments.
	Name string
	// Doc is a one-line statement of the invariant the analyzer enforces.
	Doc string
	// NeedTypes reports whether Run requires type information. Analyzers
	// that inspect syntax only (imports, comments) run on parse-only
	// units, which lets their golden corpora contain unresolvable
	// imports.
	NeedTypes bool
	// Run inspects one unit and reports findings through the pass.
	Run func(*Pass)
}

// Finding is one reported invariant violation. A finding covered by a
// //lint:ignore directive is still recorded — with Suppressed set — so
// the driver's -json mode and the -ignores audit can account for it;
// only unsuppressed findings fail the lint gate.
type Finding struct {
	Pos        token.Position
	Analyzer   string
	Message    string
	Suppressed bool
}

// String renders the canonical file:line: analyzer: message form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Pass carries one unit (a package, possibly augmented with its test
// files) through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	// PkgPath is the unit's import path. Test-file units share the path
	// of the package they augment.
	PkgPath string
	// Pkg and Info are nil for parse-only units (NeedTypes == false).
	Pkg  *types.Package
	Info *types.Info

	unit     *Unit
	findings *[]Finding
}

// Reportf records a finding at pos; a //lint:ignore comment for this
// analyzer on the line (or the line above) marks it suppressed instead
// of discarding it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		Pos:        position,
		Analyzer:   p.Analyzer.Name,
		Message:    fmt.Sprintf(format, args...),
		Suppressed: p.unit.suppressed(p.Analyzer.Name, position),
	})
}

// TypeOf returns the static type of an expression, or nil when the unit
// was loaded without (or failed) type information.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// ObjectOf resolves an identifier to its object, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.Info == nil {
		return nil
	}
	return p.Info.ObjectOf(id)
}

// ignoreRe matches a suppression comment: //lint:ignore <analyzer> <reason>.
// The reason is mandatory — an undocumented suppression is itself a smell.
var ignoreRe = regexp.MustCompile(`^//\s*lint:ignore\s+(\w+)\s+(\S.*)$`)

// suppressions maps file name → line → set of suppressed analyzer names.
type suppressions map[string]map[int]map[string]bool

// Directive is one //lint:ignore comment found in a unit, kept for the
// driver's -ignores audit: every deliberate exception in the tree is
// enumerable with its written reason.
type Directive struct {
	Pos      token.Position
	Analyzer string
	Reason   string
}

// String renders the canonical file:line: analyzer: reason form.
func (d Directive) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Reason)
}

// collectSuppressions scans a file's comments for //lint:ignore markers,
// indexing them for suppression lookup and recording each as a
// Directive.
func (u *Unit) collectSuppressions(fset *token.FileSet, file *ast.File) {
	for _, group := range file.Comments {
		for _, c := range group.List {
			m := ignoreRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			byLine := u.suppress[pos.Filename]
			if byLine == nil {
				byLine = map[int]map[string]bool{}
				u.suppress[pos.Filename] = byLine
			}
			name := strings.TrimSpace(m[1])
			if byLine[pos.Line] == nil {
				byLine[pos.Line] = map[string]bool{}
			}
			byLine[pos.Line][name] = true
			u.directives = append(u.directives, Directive{Pos: pos, Analyzer: name, Reason: m[2]})
		}
	}
}

// Directives returns every //lint:ignore directive across the units,
// sorted by file and line.
func Directives(units []*Unit) []Directive {
	var out []Directive
	for _, u := range units {
		out = append(out, u.directives...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return out
}

// suppressed reports whether a finding by analyzer at position is covered
// by an ignore comment on the same line or the line directly above.
func (u *Unit) suppressed(analyzer string, pos token.Position) bool {
	byLine := u.suppress[pos.Filename]
	if byLine == nil {
		return false
	}
	return byLine[pos.Line][analyzer] || byLine[pos.Line-1][analyzer]
}

// registry of all analyzers, in reporting order.
var all []*Analyzer

func register(a *Analyzer) *Analyzer {
	all = append(all, a)
	return a
}

// All returns every registered analyzer, sorted by name.
func All() []*Analyzer {
	out := make([]*Analyzer, len(all))
	copy(out, all)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range all {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Active filters findings down to the unsuppressed ones — the set that
// fails the lint gate.
func Active(findings []Finding) []Finding {
	var out []Finding
	for _, f := range findings {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

// Run applies the analyzers to every unit and returns the findings —
// suppressed ones included, marked — sorted by file, line, and
// analyzer.
func Run(units []*Unit, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, u := range units {
		for _, a := range analyzers {
			if a.NeedTypes && u.Pkg == nil {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     u.Fset,
				Files:    u.Files,
				PkgPath:  u.PkgPath,
				Pkg:      u.Pkg,
				Info:     u.Info,
				unit:     u,
				findings: &findings,
			}
			a.Run(pass)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return findings
}
