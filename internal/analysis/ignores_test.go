package analysis

import (
	"strings"
	"testing"
)

// Every //lint:ignore directive in the real tree must name a registered
// analyzer and carry a written reason. A directive aimed at a renamed or
// removed analyzer suppresses nothing — it just rots — so this test
// keeps the suppression inventory honest. (Corpus packages under
// testdata/ are exempt: the module walk skips them, and some exist
// precisely to exercise the suppression syntax.)
func TestTreeSuppressionsNameRegisteredAnalyzers(t *testing.T) {
	loader := corpusLoader(t)
	units, err := loader.Load()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	ds := Directives(units)
	if len(ds) == 0 {
		t.Fatal("no //lint:ignore directives found in the tree; the collector is broken")
	}
	for _, d := range ds {
		if ByName(d.Analyzer) == nil {
			t.Errorf("%s: directive names unregistered analyzer %q", d, d.Analyzer)
		}
		if strings.TrimSpace(d.Reason) == "" {
			t.Errorf("%s: directive has no reason", d)
		}
	}
}
