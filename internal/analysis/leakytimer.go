package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Leakytimer catches the classic select-loop leak: time.After inside a
// for (or range) loop allocates a fresh timer every iteration, and
// each one stays live in the runtime's timer heap until it fires —
// minutes of garbage per connection on a heartbeat or retry loop. A
// one-shot time.After outside a loop is fine. Loops must use
// time.NewTimer with Reset, or the injected After seam the
// deterministic zone already mandates (cluster.Options.After,
// faultinject's sleep hook).
var Leakytimer = register(&Analyzer{
	Name:      "leakytimer",
	Doc:       "time.After inside a loop leaks one timer per iteration; use NewTimer/Reset or the injected seam",
	NeedTypes: true,
	Run:       runLeakytimer,
})

func runLeakytimer(p *Pass) {
	for _, file := range p.Files {
		funcBodies(file, func(body *ast.BlockStmt) {
			checkTimerBody(p, body)
		})
	}
}

// checkTimerBody flags time.After calls lexically inside a loop of this
// body. Nested function literals are their own bodies (funcBodies
// visits them separately): a literal defined inside a loop runs on its
// own schedule, so the loop context does not carry in.
func checkTimerBody(p *Pass, body *ast.BlockStmt) {
	type span struct{ lo, hi token.Pos }
	var loops []span
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			loops = append(loops, span{n.Body.Pos(), n.Body.End()})
		case *ast.RangeStmt:
			loops = append(loops, span{n.Body.Pos(), n.Body.End()})
		}
		return true
	})
	if len(loops) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !isTimeAfter(p, call) {
			return true
		}
		for _, l := range loops {
			if call.Pos() >= l.lo && call.Pos() <= l.hi {
				p.Reportf(call.Pos(), "time.After inside a loop leaks a timer per iteration until it fires; use time.NewTimer with Reset or the injected After seam")
				break
			}
		}
		return true
	})
}

// isTimeAfter matches the package-level time.After function (methods
// named After — e.g. an injected clock seam — are the sanctioned
// replacement and do not match).
func isTimeAfter(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || fn.Name() != "After" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
