// Shared control-flow helper for the "acquire must be released on every
// return path" analyzers (spanend, lockbalance). The checker is a small
// abstract interpreter over the AST of one function body: it walks the
// statements that execute after an acquire site and verifies that no
// path reaches a return (or the end of the function) while the resource
// is still held, crediting either a registered `defer` of the release or
// a dominating direct release call.
//
// The interpreter is deliberately conservative where Go's control flow
// gets interesting: a release inside a loop body is not credited (the
// loop may run zero times), branches merge to "still held" unless every
// fall-through branch released, and a release inside a `go` statement
// never counts. Ownership transfers — the resource escaping into another
// function's care — are the caller's business to detect before invoking
// the checker.

package analysis

import (
	"go/ast"
	"go/token"
)

// releaseCheck configures one acquire-site check.
type releaseCheck struct {
	// acquire is the statement performing the acquisition; checking
	// starts at the statement after it.
	acquire ast.Stmt
	// isRelease reports whether a call expression releases the resource.
	isRelease func(*ast.CallExpr) bool
	// isTerminal reports whether a call never returns (panic, os.Exit,
	// testing.T.Fatal…); paths ending there are not leaks.
	isTerminal func(*ast.CallExpr) bool
}

// holdState tracks the resource along one path.
type holdState int

const (
	notYet   holdState = iota // acquire site not reached on this path
	held                      // acquired, no defer, not yet released
	released                  // released directly or guaranteed by defer
)

// merge combines the states of two paths that join: a path that may
// still hold the resource dominates.
func merge(a, b holdState) holdState {
	if a == held || b == held {
		return held
	}
	if a == released || b == released {
		return released
	}
	return notYet
}

// leak is a path that exits the function while holding the resource.
type leak struct{ pos token.Pos }

// checkReleased runs the interpreter over a function body and returns
// the position of the first leaking exit, or token.NoPos when every
// path releases. body is the *ast.BlockStmt of the function owning the
// acquire.
func checkReleased(body *ast.BlockStmt, rc releaseCheck) token.Pos {
	w := &releaseWalker{rc: rc}
	end := w.stmts(body.List, notYet)
	if end == held && w.leakPos == token.NoPos {
		// Fell off the end of a void function while holding.
		w.leakPos = body.Rbrace
	}
	return w.leakPos
}

type releaseWalker struct {
	rc      releaseCheck
	leakPos token.Pos
}

func (w *releaseWalker) leakAt(pos token.Pos) {
	if w.leakPos == token.NoPos {
		w.leakPos = pos
	}
}

// stmts interprets a statement list, returning the fall-through state.
// Paths that return inside the list are checked and do not contribute to
// the fall-through state.
func (w *releaseWalker) stmts(list []ast.Stmt, st holdState) holdState {
	for _, s := range list {
		var exited bool
		st, exited = w.stmt(s, st)
		if exited {
			// Everything after an unconditional return/terminal call is
			// dead for this path.
			return notYet
		}
	}
	return st
}

// stmt interprets one statement. It returns the fall-through state and
// whether the statement unconditionally exits the path.
func (w *releaseWalker) stmt(s ast.Stmt, st holdState) (holdState, bool) {
	if s == w.rc.acquire {
		return held, false
	}
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if st == held && w.rc.isRelease(call) {
				return released, false
			}
			if w.isTerminal(call) {
				return st, true
			}
		}
		return st, false

	case *ast.DeferStmt:
		if st == held && w.deferReleases(s.Call) {
			return released, false
		}
		return st, false

	case *ast.ReturnStmt:
		if st == held {
			w.leakAt(s.Pos())
		}
		return st, true

	case *ast.BlockStmt:
		return w.stmts(s.List, st), false

	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		thenSt := w.stmts(s.Body.List, st)
		elseSt := st
		if s.Else != nil {
			elseSt, _ = w.stmt(s.Else, st)
		}
		return merge(thenSt, elseSt), false

	case *ast.ForStmt:
		return w.loop(s.Body, s.Init, st), false

	case *ast.RangeStmt:
		return w.loop(s.Body, nil, st), false

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.cases(s, st), false

	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)

	case *ast.GoStmt:
		// A release performed by a spawned goroutine is not ordered with
		// this function's returns; never credit it.
		return st, false

	case *ast.BranchStmt:
		// break/continue/goto: treat as ending the current list without
		// exiting the function; the conservative merge at the enclosing
		// construct keeps "held" sticky.
		return st, true

	default:
		return st, false
	}
}

// loop interprets a loop: leaks inside the body are reported, but state
// changes are not credited outward — the body may run zero times, and a
// release on iteration N does not cover the acquire before the loop on
// iteration N+1's view.
func (w *releaseWalker) loop(body *ast.BlockStmt, init ast.Stmt, st holdState) holdState {
	if init != nil {
		st, _ = w.stmt(init, st)
	}
	w.stmts(body.List, st)
	return st
}

// cases interprets switch/type-switch/select: every clause is checked
// from the incoming state; the fall-through state is the merge of all
// clause ends, plus the incoming state unless a default clause makes the
// construct exhaustive.
func (w *releaseWalker) cases(s ast.Stmt, st holdState) holdState {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	out := notYet
	seen := false
	for _, clause := range body.List {
		var list []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			list = c.Body
			if c.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			list = c.Body
			if c.Comm == nil {
				hasDefault = true
			}
		}
		end := w.stmts(list, st)
		if seen {
			out = merge(out, end)
		} else {
			out, seen = end, true
		}
	}
	if !seen {
		return st
	}
	if !hasDefault {
		out = merge(out, st)
	}
	return out
}

// deferReleases reports whether a deferred call guarantees the release:
// either the release call itself, or a deferred closure whose body
// contains a release (the `defer func() { mu.Unlock() }()` idiom).
func (w *releaseWalker) deferReleases(call *ast.CallExpr) bool {
	if w.rc.isRelease(call) {
		return true
	}
	lit, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && w.rc.isRelease(c) {
			found = true
		}
		return !found
	})
	return found
}

func (w *releaseWalker) isTerminal(call *ast.CallExpr) bool {
	if w.rc.isTerminal != nil && w.rc.isTerminal(call) {
		return true
	}
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
		return true
	}
	return false
}

// funcBodies yields every function-like body in a file — declarations
// and literals — without descending into nested literals from the outer
// body's perspective. fn receives the body and runs its own analysis.
func funcBodies(file *ast.File, fn func(body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				fn(n.Body)
			}
		case *ast.FuncLit:
			fn(n.Body)
		}
		return true
	})
}

// topLevelStmts walks the statements of a body, invoking fn for every
// statement reachable without entering a nested function literal. This
// is how analyzers find acquire sites that belong to this body rather
// than to a closure.
func topLevelStmts(body *ast.BlockStmt, fn func(ast.Stmt)) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case ast.Stmt:
			fn(n.(ast.Stmt))
		}
		return true
	}
	for _, s := range body.List {
		ast.Inspect(s, walk)
	}
}
