package analysis

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

const docPath = "../../docs/STATIC_ANALYSIS.md"

// TestDocCoversEveryAnalyzer keeps docs/STATIC_ANALYSIS.md and the
// analyzer registry in lockstep (mirroring internal/obs/docs_test.go):
// every registered analyzer must have its own "## <name>" section with
// an example finding, and every analyzer-shaped section heading must
// resolve to a registered analyzer.
func TestDocCoversEveryAnalyzer(t *testing.T) {
	raw, err := os.ReadFile(docPath)
	if err != nil {
		t.Fatalf("read %s: %v", docPath, err)
	}
	doc := string(raw)

	registered := map[string]bool{}
	for _, a := range All() {
		registered[a.Name] = true
		if !strings.Contains(doc, "## "+a.Name+"\n") {
			t.Errorf("analyzer %s is registered but has no section in %s", a.Name, docPath)
		}
		// Each section shows at least one finding in the driver's
		// file:line: analyzer: message format.
		if !strings.Contains(doc, ": "+a.Name+": ") {
			t.Errorf("analyzer %s has no example finding in %s", a.Name, docPath)
		}
	}

	// Analyzer-shaped headings are single lowercase words; prose
	// sections ("## Suppressing a finding") do not match.
	for _, m := range regexp.MustCompile(`(?m)^## ([a-z]+)$`).FindAllStringSubmatch(doc, -1) {
		if !registered[m[1]] {
			t.Errorf("doc section %q does not correspond to a registered analyzer", m[1])
		}
	}

	if !strings.Contains(doc, "//lint:ignore <analyzer> <reason>") {
		t.Errorf("suppression syntax is not documented in %s", docPath)
	}
}
