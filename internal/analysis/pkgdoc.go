package analysis

import (
	"go/ast"
	"sort"
	"strings"
)

// Pkgdoc enforces the documented-architecture rule: every package
// carries a package-level doc comment, and for named packages it is in
// godoc form — starting with "Package <name>" — so godoc, pkg.go.dev,
// and grep all find the one-paragraph statement of what the package is
// for. A main package only needs some doc comment (commands and
// examples open with whatever header reads best). Test files never
// carry the package's doc, so they are skipped; an external test
// package (only _test.go files) is exempt.
//
// Syntax-only: the corpus and the repo are checked without type
// information.
var Pkgdoc = register(&Analyzer{
	Name:      "pkgdoc",
	Doc:       "every package must have a package doc comment, godoc-form (Package <name> ...) for named packages",
	NeedTypes: false,
	Run:       runPkgdoc,
})

func runPkgdoc(p *Pass) {
	// Non-test files in file-name order, so the "missing" finding lands
	// deterministically on the alphabetically first file.
	var files []*ast.File
	for _, f := range p.Files {
		if strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return
	}
	sort.Slice(files, func(i, j int) bool {
		return p.Fset.Position(files[i].Pos()).Filename < p.Fset.Position(files[j].Pos()).Filename
	})

	pkgName := files[0].Name.Name
	var documented []*ast.File
	for _, f := range files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			documented = append(documented, f)
		}
	}
	if len(documented) == 0 {
		p.Reportf(files[0].Name.Pos(),
			"package %s has no package-level doc comment", pkgName)
		return
	}
	if pkgName == "main" {
		return // any doc header reads fine on a command
	}
	wantPrefix := "Package " + pkgName
	for _, f := range documented {
		if strings.HasPrefix(f.Doc.Text(), wantPrefix) {
			return // at least one file carries a well-formed doc
		}
	}
	p.Reportf(documented[0].Doc.Pos(),
		"package %s doc comment does not start with %q (godoc form)",
		pkgName, wantPrefix)
}
