// The dataflow core shared by the balance/ownership analyzers (spanend,
// lockbalance, wgbalance, goroleak). A fact is one obligation — a span
// to finish, a lock to release, a WaitGroup counter to decrement — with
// three behaviours: an acquire site that creates it, a release
// predicate that discharges it, and (for owned resources) a transfer
// test that moves the obligation into another function's custody. The
// engine is a small abstract interpreter over the AST of one function
// body: it verifies that no path reaches a return (or the end of the
// function) while the obligation is still held, crediting either a
// registered `defer` of the release or a dominating direct release
// call.
//
// Two entry points serve two shapes of question. checkBalanced answers
// the intra-function one: "after this acquire statement, is the fact
// discharged on every path out of this body?". dischargesOnAllPaths
// answers the per-function summary: "does this body, held from entry,
// discharge on every path?" — which is how an analyzer reasons about a
// spawned goroutine's body or a named function it resolves through the
// unit's declaration index (Unit.funcDeclOf).
//
// The interpreter is deliberately conservative where Go's control flow
// gets interesting: a release inside a loop body is not credited (the
// loop may run zero times), branches merge to "still held" unless every
// fall-through branch released, and a release inside a `go` statement
// never counts — it is not ordered with the spawning function's
// returns.

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// fact configures one obligation for the engine.
type fact struct {
	// acquire is the statement creating the obligation; checking starts
	// at the statement after it. A nil acquire means the obligation is
	// held from function entry (per-function summary mode).
	acquire ast.Stmt
	// isRelease reports whether a call expression discharges the fact.
	isRelease func(*ast.CallExpr) bool
	// isTerminal reports whether a call never returns (panic, os.Exit,
	// testing.T.Fatal…); paths ending there are not leaks.
	isTerminal func(*ast.CallExpr) bool
}

// holdState tracks the fact along one path.
type holdState int

const (
	notYet   holdState = iota // acquire site not reached on this path
	held                      // acquired, no defer, not yet released
	released                  // released directly or guaranteed by defer
)

// merge combines the states of two paths that join: a path that may
// still hold the fact dominates.
func merge(a, b holdState) holdState {
	if a == held || b == held {
		return held
	}
	if a == released || b == released {
		return released
	}
	return notYet
}

// checkBalanced runs the interpreter over a function body and returns
// the position of the first exit that still holds the fact, or
// token.NoPos when every path discharges. body is the *ast.BlockStmt of
// the function owning the acquire.
func checkBalanced(body *ast.BlockStmt, f fact) token.Pos {
	w := &balanceWalker{f: f}
	start := notYet
	if f.acquire == nil {
		start = held
	}
	end := w.stmts(body.List, start)
	if end == held && w.leakPos == token.NoPos {
		// Fell off the end of a void function while holding.
		w.leakPos = body.Rbrace
	}
	return w.leakPos
}

// dischargesOnAllPaths is the per-function summary query: the fact is
// held from the body's entry, and every path out must discharge it.
func dischargesOnAllPaths(body *ast.BlockStmt, isRelease, isTerminal func(*ast.CallExpr) bool) bool {
	return checkBalanced(body, fact{isRelease: isRelease, isTerminal: isTerminal}) == token.NoPos
}

type balanceWalker struct {
	f       fact
	leakPos token.Pos
}

func (w *balanceWalker) leakAt(pos token.Pos) {
	if w.leakPos == token.NoPos {
		w.leakPos = pos
	}
}

// stmts interprets a statement list, returning the fall-through state.
// Paths that return inside the list are checked and do not contribute to
// the fall-through state.
func (w *balanceWalker) stmts(list []ast.Stmt, st holdState) holdState {
	for _, s := range list {
		var exited bool
		st, exited = w.stmt(s, st)
		if exited {
			// Everything after an unconditional return/terminal call is
			// dead for this path.
			return notYet
		}
	}
	return st
}

// stmt interprets one statement. It returns the fall-through state and
// whether the statement unconditionally exits the path.
func (w *balanceWalker) stmt(s ast.Stmt, st holdState) (holdState, bool) {
	if s == w.f.acquire {
		return held, false
	}
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if st == held && w.f.isRelease(call) {
				return released, false
			}
			if w.isTerminal(call) {
				return st, true
			}
		}
		return st, false

	case *ast.DeferStmt:
		if st == held && w.deferReleases(s.Call) {
			return released, false
		}
		return st, false

	case *ast.ReturnStmt:
		if st == held {
			w.leakAt(s.Pos())
		}
		return st, true

	case *ast.BlockStmt:
		return w.stmts(s.List, st), false

	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		thenSt := w.stmts(s.Body.List, st)
		elseSt := st
		if s.Else != nil {
			elseSt, _ = w.stmt(s.Else, st)
		}
		return merge(thenSt, elseSt), false

	case *ast.ForStmt:
		return w.loop(s.Body, s.Init, st), false

	case *ast.RangeStmt:
		return w.loop(s.Body, nil, st), false

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.cases(s, st), false

	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)

	case *ast.GoStmt:
		// A release performed by a spawned goroutine is not ordered with
		// this function's returns; never credit it.
		return st, false

	case *ast.BranchStmt:
		// break/continue/goto: treat as ending the current list without
		// exiting the function; the conservative merge at the enclosing
		// construct keeps "held" sticky.
		return st, true

	default:
		return st, false
	}
}

// loop interprets a loop: leaks inside the body are reported, but state
// changes are not credited outward — the body may run zero times, and a
// release on iteration N does not cover the acquire before the loop on
// iteration N+1's view.
func (w *balanceWalker) loop(body *ast.BlockStmt, init ast.Stmt, st holdState) holdState {
	if init != nil {
		st, _ = w.stmt(init, st)
	}
	w.stmts(body.List, st)
	return st
}

// cases interprets switch/type-switch/select: every clause is checked
// from the incoming state; the fall-through state is the merge of all
// clause ends, plus the incoming state unless a default clause makes the
// construct exhaustive.
func (w *balanceWalker) cases(s ast.Stmt, st holdState) holdState {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	out := notYet
	seen := false
	for _, clause := range body.List {
		var list []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			list = c.Body
			if c.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			list = c.Body
			if c.Comm == nil {
				hasDefault = true
			}
		}
		end := w.stmts(list, st)
		if seen {
			out = merge(out, end)
		} else {
			out, seen = end, true
		}
	}
	if !seen {
		return st
	}
	if !hasDefault {
		out = merge(out, st)
	}
	return out
}

// deferReleases reports whether a deferred call guarantees the release:
// either the release call itself, or a deferred closure whose body
// contains a release (the `defer func() { mu.Unlock() }()` idiom).
func (w *balanceWalker) deferReleases(call *ast.CallExpr) bool {
	if w.f.isRelease(call) {
		return true
	}
	lit, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && w.f.isRelease(c) {
			found = true
		}
		return !found
	})
	return found
}

func (w *balanceWalker) isTerminal(call *ast.CallExpr) bool {
	if w.f.isTerminal != nil && w.f.isTerminal(call) {
		return true
	}
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
		return true
	}
	return false
}

// transfersCustody is the engine's ownership-transfer test: it reports
// whether the identifier owning a fact leaves the function's custody —
// used as a call argument, returned, assigned onward, captured by a
// non-deferred closure, address-taken, or handed to a goroutine. def is
// the fact's defining statement (scanned only on its right-hand side).
// Method calls on the owner (span.SetAttr, span.End, wg.Done…) are not
// transfers, but a closure that captures the owner — even only to
// release it — takes over the obligation, unless that closure is
// directly deferred (which checkBalanced credits as a deferred release
// instead).
func transfersCustody(body *ast.BlockStmt, def ast.Stmt, owner *ast.Ident) bool {
	deferred := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
				deferred[lit] = true
			}
		}
		return true
	})
	escaped := false
	var inspect func(n ast.Node) bool
	inspect = func(n ast.Node) bool {
		if escaped {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			if !deferred[n] && mentionsIdent(n.Body, owner) {
				escaped = true
			}
			return false
		case *ast.AssignStmt:
			if n == def {
				// The defining assignment itself; still scan the RHS for
				// uses of a shadowed outer variable — close enough.
				return true
			}
			for _, rhs := range n.Rhs {
				if usesIdent(rhs, owner) {
					escaped = true
				}
			}
			return !escaped
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if usesIdent(arg, owner) {
					escaped = true
				}
			}
			return !escaped
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if usesIdent(res, owner) {
					escaped = true
				}
			}
			return !escaped
		case *ast.UnaryExpr:
			if usesIdent(n.X, owner) {
				escaped = true
			}
			return !escaped
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if usesIdent(elt, owner) {
					escaped = true
				}
			}
			return !escaped
		case *ast.GoStmt:
			// The owner crossing into a goroutine is an ownership handoff.
			if usesIdent(n.Call, owner) {
				escaped = true
			}
			return !escaped
		}
		return true
	}
	ast.Inspect(body, inspect)
	return escaped
}

// mentionsIdent reports whether the node mentions the identifier by
// name anywhere at all, receiver positions included.
func mentionsIdent(n ast.Node, id *ast.Ident) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if other, ok := m.(*ast.Ident); ok && other.Name == id.Name {
			found = true
		}
		return !found
	})
	return found
}

// usesIdent reports whether the expression mentions the identifier by
// name anywhere except as the receiver of a method call.
func usesIdent(e ast.Expr, id *ast.Ident) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if recv, ok := sel.X.(*ast.Ident); ok && recv.Name == id.Name {
				// owner.Method(...) — receiver position, not a transfer;
				// but still scan the selector's... nothing else to scan.
				return false
			}
		}
		if other, ok := n.(*ast.Ident); ok && other.Name == id.Name {
			found = true
			return false
		}
		return !found
	})
	return found
}

// funcBodies yields every function-like body in a file — declarations
// and literals — without descending into nested literals from the outer
// body's perspective. fn receives the body and runs its own analysis.
func funcBodies(file *ast.File, fn func(body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				fn(n.Body)
			}
		case *ast.FuncLit:
			fn(n.Body)
		}
		return true
	})
}

// topLevelStmts walks the statements of a body, invoking fn for every
// statement reachable without entering a nested function literal. This
// is how analyzers find acquire sites that belong to this body rather
// than to a closure.
func topLevelStmts(body *ast.BlockStmt, fn func(ast.Stmt)) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case ast.Stmt:
			fn(n.(ast.Stmt))
		}
		return true
	}
	for _, s := range body.List {
		ast.Inspect(s, walk)
	}
}

// FuncDeclOf resolves a function object to its declaration within this
// unit, or nil. The index is built lazily once per unit and shared by
// every analyzer that summarizes callees (wgbalance, goroleak): the
// engine's per-function summaries only reach as far as the unit — a
// callee in another package is an ownership transfer, not a summary.
func (p *Pass) FuncDeclOf(obj *types.Func) *ast.FuncDecl {
	if obj == nil || p.Info == nil {
		return nil
	}
	if p.unit.declIndex == nil {
		p.unit.declIndex = map[types.Object]*ast.FuncDecl{}
		for _, file := range p.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if def := p.Info.Defs[fd.Name]; def != nil {
					p.unit.declIndex[def] = fd
				}
			}
		}
	}
	return p.unit.declIndex[obj]
}
