package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Goroleak guards the fan-out boundaries of the query and cluster
// paths: every `go` statement there must either be joined — a
// WaitGroup the spawner waits on, a result channel the spawner reads
// (the hedged-dispatch loser, the stream-window workers) — or observe a
// cancellation seam (ctx.Done(), a stop channel, or a callee that
// takes a context). A goroutine with neither outlives the query that
// spawned it: under the million-user traffic the ROADMAP targets,
// "leaks one goroutine per query on the error path" is an outage with
// a delay timer. Test files are exempt — a test's goroutines die with
// the process.
var Goroleak = register(&Analyzer{
	Name:      "goroleak",
	Doc:       "goroutines on query/cluster paths must be joined or observe cancellation",
	NeedTypes: true,
	Run:       runGoroleak,
})

// goroleakScope lists the path segments of the packages on the hot
// query/cluster path, where an unjoined goroutine accumulates per
// request.
var goroleakScope = []string{"extract", "cluster", "core", "transport", "obs"}

func runGoroleak(p *Pass) {
	if !pathHasSegment(p.PkgPath, goroleakScope) {
		return
	}
	for _, file := range p.Files {
		if isTestFile(p, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				checkGoroutine(p, g)
			}
			return true
		})
	}
}

func checkGoroutine(p *Pass, g *ast.GoStmt) {
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		if !hasJoinSeam(p, lit.Body) {
			reportLeak(p, g)
		}
		return
	}
	// Named function or method: a context argument is a cancellation
	// seam by contract; otherwise summarize the callee's body if it is
	// declared in this unit. An unresolvable callee stays silent — the
	// engine only reports what it can see.
	for _, arg := range g.Call.Args {
		if isContextValueType(p.TypeOf(arg)) {
			return
		}
	}
	var obj types.Object
	switch fun := g.Call.Fun.(type) {
	case *ast.Ident:
		obj = p.ObjectOf(fun)
	case *ast.SelectorExpr:
		obj = p.ObjectOf(fun.Sel)
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return
	}
	decl := p.FuncDeclOf(fn)
	if decl == nil {
		return
	}
	if !hasJoinSeam(p, decl.Body) {
		reportLeak(p, g)
	}
}

func reportLeak(p *Pass, g *ast.GoStmt) {
	p.Reportf(g.Pos(), "goroutine is fire-and-forget: join it (WaitGroup or result channel) or give it a cancellation seam (ctx.Done/stop channel)")
}

// hasJoinSeam reports whether a spawned body communicates its
// completion or observes cancellation: a channel send or close (the
// spawner, or someone, can gather it), a channel receive or
// channel-range (bounded by a close or a Done/stop signal), a
// WaitGroup.Done, or a call that is handed a context.
func hasJoinSeam(p *Pass, body ast.Node) bool {
	seam := false
	ast.Inspect(body, func(n ast.Node) bool {
		if seam {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			seam = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				seam = true
			}
		case *ast.RangeStmt:
			if t := p.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					seam = true
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" {
				seam = true
			}
			if _, method, ok := wgCall(p, n); ok && method == "Done" {
				seam = true
			}
			for _, arg := range n.Args {
				if isContextValueType(p.TypeOf(arg)) {
					seam = true
				}
			}
		}
		return !seam
	})
	return seam
}

// isContextValueType reports whether t is exactly context.Context.
func isContextValueType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// pathHasSegment reports whether the import path has a segment naming
// one of the scope packages (test-unit suffixes stripped).
func pathHasSegment(pkgPath string, scope []string) bool {
	for _, seg := range strings.Split(pkgPath, "/") {
		seg = strings.TrimSuffix(seg, "_test")
		for _, want := range scope {
			if seg == want {
				return true
			}
		}
	}
	return false
}

// isTestFile reports whether the file is a _test.go file; some
// analyzers (goroleak, errcheck) hold production code to a stricter
// standard than tests.
func isTestFile(p *Pass, file *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(file.Pos()).Filename, "_test.go")
}
