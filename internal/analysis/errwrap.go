package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// Errwrap enforces the robustness layer's error-chain contract: when
// fmt.Errorf formats an error operand, it must use %w. The extractor
// classifies failures as permanent or transient with errors.Is/As over
// the wrapped chain (extract.IsPermanent); a %v anywhere on the path
// from a backend to the retry loop silently flattens the chain and turns
// every permanent failure into a retried one. This analyzer makes that
// class of bug unwritable.
var Errwrap = register(&Analyzer{
	Name:      "errwrap",
	Doc:       "fmt.Errorf with an error operand must wrap it with %w",
	NeedTypes: true,
	Run:       runErrwrap,
})

func runErrwrap(p *Pass) {
	errorType := types.Universe.Lookup("error").Type()
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isFmtErrorf(p, call) || len(call.Args) < 2 {
				return true
			}
			format, ok := constantString(p, call.Args[0])
			if !ok {
				return true
			}
			for _, v := range formatVerbs(format) {
				argIdx := v.arg + 1 // args[0] is the format string
				if v.verb == 'w' || v.verb == 'T' || argIdx >= len(call.Args) {
					continue
				}
				arg := call.Args[argIdx]
				t := p.TypeOf(arg)
				if t == nil || !types.AssignableTo(t, errorType) {
					continue
				}
				p.Reportf(arg.Pos(),
					"error operand formatted with %%%c; use %%w so errors.Is/As can see through the wrap", v.verb)
			}
			return true
		})
	}
}

// isFmtErrorf resolves the callee to the fmt.Errorf function object.
func isFmtErrorf(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := p.ObjectOf(sel.Sel)
	fn, ok := obj.(*types.Func)
	return ok && fn.FullName() == "fmt.Errorf"
}

// constantString extracts a compile-time constant format string.
func constantString(p *Pass, e ast.Expr) (string, bool) {
	if p.Info == nil {
		return "", false
	}
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// verb is one formatting directive and the operand index it consumes.
type verb struct {
	arg  int
	verb byte
}

// formatVerbs parses a printf format string into its operand-consuming
// verbs, handling flags, * width/precision (which consume operands), and
// explicit [n] argument indexes.
func formatVerbs(format string) []verb {
	var verbs []verb
	arg := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue
		}
		// Flags.
		for i < len(format) && (format[i] == '+' || format[i] == '-' || format[i] == '#' ||
			format[i] == ' ' || format[i] == '0') {
			i++
		}
		// Width.
		if i < len(format) && format[i] == '*' {
			arg++
			i++
		} else {
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
		}
		// Precision.
		if i < len(format) && format[i] == '.' {
			i++
			if i < len(format) && format[i] == '*' {
				arg++
				i++
			} else {
				for i < len(format) && format[i] >= '0' && format[i] <= '9' {
					i++
				}
			}
		}
		// Explicit argument index: %[n]v.
		if i < len(format) && format[i] == '[' {
			j := i + 1
			n := 0
			for j < len(format) && format[j] >= '0' && format[j] <= '9' {
				n = n*10 + int(format[j]-'0')
				j++
			}
			if j < len(format) && format[j] == ']' && n > 0 {
				arg = n - 1
				i = j + 1
			}
		}
		if i >= len(format) {
			break
		}
		verbs = append(verbs, verb{arg: arg, verb: format[i]})
		arg++
	}
	return verbs
}
