package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Lockbalance verifies that every sync.Mutex/RWMutex acquisition in a
// function is paired with a release on all return paths — deferred or
// dominating. The middleware's hot path takes short critical sections
// (metrics registry, rule cache, breaker state) without defer to keep
// them cheap; that style is safe exactly as long as no early return
// slips between Lock and Unlock, which is the regression this analyzer
// exists to catch before it deadlocks a production query.
var Lockbalance = register(&Analyzer{
	Name:      "lockbalance",
	Doc:       "every Lock/RLock must have a matching Unlock/RUnlock on all return paths",
	NeedTypes: true,
	Run:       runLockbalance,
})

func runLockbalance(p *Pass) {
	for _, file := range p.Files {
		funcBodies(file, func(body *ast.BlockStmt) {
			checkLockBody(p, body)
		})
	}
}

// lockSite is one acquisition found at statement level.
type lockSite struct {
	stmt   ast.Stmt
	call   *ast.CallExpr
	recv   string // rendered receiver expression, e.g. "s.mu"
	method string // Lock or RLock
}

func checkLockBody(p *Pass, body *ast.BlockStmt) {
	var sites []lockSite
	topLevelStmts(body, func(s ast.Stmt) {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			return
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return
		}
		recv, method, ok := syncLockCall(p, call)
		if !ok || (method != "Lock" && method != "RLock") {
			return
		}
		sites = append(sites, lockSite{stmt: s, call: call, recv: recv, method: method})
	})
	for _, site := range sites {
		unlock := "Unlock"
		if site.method == "RLock" {
			unlock = "RUnlock"
		}
		f := fact{
			acquire: site.stmt,
			isRelease: func(c *ast.CallExpr) bool {
				recv, method, ok := syncLockCall(p, c)
				return ok && method == unlock && recv == site.recv
			},
			isTerminal: isNoReturnCall,
		}
		if leak := checkBalanced(body, f); leak != token.NoPos {
			pos := p.Fset.Position(leak)
			p.Reportf(site.call.Pos(),
				"%s.%s() is not released on every path (path escaping at line %d without %s.%s())",
				site.recv, site.method, pos.Line, site.recv, unlock)
		}
	}
}

// syncLockCall matches a method call on a sync.Mutex/RWMutex (including
// one promoted from an embedded field) and returns the rendered receiver
// expression and method name.
func syncLockCall(p *Pass, call *ast.CallExpr) (recv, method string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	fn, okFn := p.ObjectOf(sel.Sel).(*types.Func)
	if !okFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return types.ExprString(sel.X), fn.Name(), true
	}
	return "", "", false
}

// isNoReturnCall recognizes calls that end the path without returning:
// os.Exit, log.Fatal*, runtime.Goexit, and the testing Fatal/Skip
// family (which call Goexit).
func isNoReturnCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	if id, ok := sel.X.(*ast.Ident); ok {
		switch {
		case id.Name == "os" && name == "Exit",
			id.Name == "runtime" && name == "Goexit",
			id.Name == "log" && strings.HasPrefix(name, "Fatal"):
			return true
		}
	}
	switch name {
	case "Fatal", "Fatalf", "Skip", "Skipf", "SkipNow", "FailNow":
		return true
	}
	return false
}
