package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Errcheck closes the quietest failure mode in a distributed pipeline:
// an error produced and never looked at. A call whose (last) result is
// an error, used as a bare statement, drops it on the floor — the retry
// classifier never sees it, the breaker never counts it, the trace
// never records it. Discarding explicitly with `_ =` is allowed only
// with a written justification (`//lint:ignore errcheck <reason>`) in
// non-test code; test files are exempt entirely. Writers whose error
// contract is "never fails" (strings.Builder, bytes.Buffer) or "sticky,
// surfaced at Flush" (bufio.Writer), and the fmt print family, are
// exempt — flagging those would train everyone to suppress wholesale.
var Errcheck = register(&Analyzer{
	Name:      "errcheck",
	Doc:       "an error-returning call must not be used as a bare statement; explicit discards need a reason",
	NeedTypes: true,
	Run:       runErrcheck,
})

func runErrcheck(p *Pass) {
	for _, file := range p.Files {
		if isTestFile(p, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, ok := n.X.(*ast.CallExpr)
				if !ok || !callReturnsError(p, call) || errcheckExempt(p, call) {
					return true
				}
				p.Reportf(call.Pos(), "%s drops its error result; handle it or discard it explicitly with a reasoned //lint:ignore", calleeName(call))
			case *ast.AssignStmt:
				if n.Tok != token.ASSIGN || !allBlank(n.Lhs) || len(n.Rhs) != 1 {
					return true
				}
				call, ok := n.Rhs[0].(*ast.CallExpr)
				if !ok || !callReturnsError(p, call) || errcheckExempt(p, call) {
					return true
				}
				p.Reportf(n.Pos(), "error from %s explicitly discarded; keep only with //lint:ignore errcheck <reason>", calleeName(call))
			}
			return true
		})
	}
}

// allBlank reports whether every assignment target is the blank
// identifier — the discard-everything form.
func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// callReturnsError reports whether the call's only or last result is
// the error type.
func callReturnsError(p *Pass, call *ast.CallExpr) bool {
	t := p.TypeOf(call)
	if t == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	if tuple, ok := t.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return false
		}
		return types.Identical(tuple.At(tuple.Len()-1).Type(), errType)
	}
	return types.Identical(t, errType)
}

// errcheckExempt recognizes the documented best-effort writers: the
// fmt print family, and Write* methods on strings.Builder, bytes.Buffer
// (never fail) and the sticky-error writers bufio.Writer and the
// module's instance.ChunkedWriter (first error latched, reported by
// Flush — which is not exempt).
func errcheckExempt(p *Pass, call *ast.CallExpr) bool {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = p.ObjectOf(fun)
	case *ast.SelectorExpr:
		obj = p.ObjectOf(fun.Sel)
	default:
		return false
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
		(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !strings.HasPrefix(fn.Name(), "Write") {
		return false
	}
	named, ok := deref(sig.Recv().Type()).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer", "bufio.Writer",
		"repro/internal/instance.ChunkedWriter":
		return true
	}
	return false
}

// calleeName renders the called expression for the finding message.
func calleeName(call *ast.CallExpr) string {
	return types.ExprString(call.Fun)
}
