package analysis

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The golden corpus: each analyzer has one or more packages under
// testdata/src with `// want "substring"` comments marking every line
// it must report. The test fails both ways — a want with no finding is
// a missed detection (regression), a finding with no want is a false
// positive.

var (
	loaderOnce sync.Once
	testLoader *Loader
	loaderErr  error
)

func corpusLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := filepath.Abs("../..")
		if err != nil {
			loaderErr = err
			return
		}
		testLoader, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return testLoader
}

var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// wantsIn collects the expected findings of one corpus directory,
// keyed by file base name and line.
func wantsIn(t *testing.T, dir string) map[string][]string {
	t.Helper()
	wants := map[string][]string{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				key := fmt.Sprintf("%s:%d", e.Name(), line)
				wants[key] = append(wants[key], m[1])
			}
		}
		f.Close()
	}
	return wants
}

func TestGoldenCorpus(t *testing.T) {
	cases := []struct {
		analyzer string
		dirs     []string
		typed    bool
	}{
		{"stdlibonly", []string{"stdlibonly"}, false},
		{"errwrap", []string{"errwrap"}, true},
		{"ctxfield", []string{"ctxfield"}, true},
		{"determinism", []string{"determinism/faultinject", "determinism/clean", "determinism/planner", "determinism/cluster", "determinism/stats"}, true},
		{"spanend", []string{"spanend"}, true},
		{"lockbalance", []string{"lockbalance"}, true},
		{"pkgdoc", []string{"pkgdoc/missing", "pkgdoc/malformed", "pkgdoc/clean", "pkgdoc/command"}, false},
		{"wgbalance", []string{"wgbalance"}, true},
		{"goroleak", []string{"goroleak/extract", "goroleak/other"}, true},
		{"errcheck", []string{"errcheck"}, true},
		{"leakytimer", []string{"leakytimer"}, true},
	}
	covered := map[string]bool{}
	for _, c := range cases {
		covered[c.analyzer] = true
		t.Run(c.analyzer, func(t *testing.T) {
			a := ByName(c.analyzer)
			if a == nil {
				t.Fatalf("analyzer %q not registered", c.analyzer)
			}
			for _, dir := range c.dirs {
				runCorpusDir(t, a, filepath.Join("testdata", "src", dir), c.typed)
			}
		})
	}
	// Every registered analyzer must have a golden corpus; a new analyzer
	// without regression coverage fails here.
	for _, a := range All() {
		if !covered[a.Name] {
			t.Errorf("analyzer %q has no golden corpus case", a.Name)
		}
	}
}

func runCorpusDir(t *testing.T, a *Analyzer, dir string, typed bool) {
	t.Helper()
	loader := corpusLoader(t)
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	unit, err := loader.LoadDir(abs, typed)
	if err != nil {
		t.Fatalf("%s: %v", dir, err)
	}
	// Suppressed findings are recorded for -json/-ignores but do not
	// count against the corpus: a `//lint:ignore` line is a "no finding"
	// line as far as the gate is concerned.
	findings := Active(Run([]*Unit{unit}, []*Analyzer{a}))

	wants := wantsIn(t, dir)
	matched := map[string]int{} // want key -> how many of its entries are consumed
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", filepath.Base(f.Pos.Filename), f.Pos.Line)
		ws := wants[key]
		idx := matched[key]
		if idx >= len(ws) {
			t.Errorf("%s: unexpected finding: %s", dir, f)
			continue
		}
		if !strings.Contains(f.Message, ws[idx]) {
			t.Errorf("%s: finding at %s = %q, want substring %q", dir, key, f.Message, ws[idx])
		}
		matched[key]++
	}
	for key, ws := range wants {
		if matched[key] < len(ws) {
			t.Errorf("%s: no finding at %s (want %q)", dir, key, ws[matched[key]])
		}
	}
}
