// Package loading: parse every package in the module with go/parser and
// type-check it with go/types. Module-internal imports are type-checked
// from source, recursively and memoized; imports that leave the module
// (in practice only the standard library) are satisfied from compiler
// export data located via `go list -export`, fed to go/importer through
// its lookup hook. This keeps the loader pure stdlib — no
// golang.org/x/tools — while still giving analyzers full type
// information, including for _test.go files.

package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Unit is one analyzable set of files sharing a types.Package: a plain
// package, a package augmented with its in-package test files, or an
// external (_test) test package.
type Unit struct {
	// PkgPath is the unit's import path (test units share the augmented
	// package's path; external test packages get a "_test" suffix).
	PkgPath string
	// Dir is the directory the files live in.
	Dir string
	// Test marks units that include test files.
	Test bool

	Fset  *token.FileSet
	Files []*ast.File
	// Pkg/Info are nil when the unit was loaded parse-only or failed to
	// type-check; analyzers with NeedTypes skip such units.
	Pkg  *types.Package
	Info *types.Info

	suppress   suppressions
	directives []Directive
	// declIndex lazily maps function objects to their declarations for
	// the dataflow core's per-function summaries (Pass.FuncDeclOf).
	declIndex map[types.Object]*ast.FuncDecl
}

// Loader loads and type-checks the packages of one module.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string

	// TypeErrors collects non-fatal type-checking diagnostics. The tree
	// is expected to compile (make check builds first), so these are
	// surfaced only in the driver's -debug mode; keeping them soft lets
	// analyzers like stdlibonly still report cleanly on trees whose
	// imports cannot be resolved.
	TypeErrors []error

	exports map[string]string // import path -> export data file
	gc      types.Importer
	pkgs    map[string]*pkgEntry // importable module packages, by path
	ctx     build.Context
}

type pkgEntry struct {
	pkg      *types.Package
	checking bool
}

// NewLoader prepares a loader for the module rooted at root (the
// directory holding go.mod). It shells out once to `go list -export` to
// locate export data for the standard-library dependency closure; the go
// tool is part of the toolchain this repo already requires, and the
// linter reads only the resulting file paths.
func NewLoader(root string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := &Loader{
		Fset:       token.NewFileSet(),
		ModuleRoot: root,
		ModulePath: modPath,
		exports:    map[string]string{},
		pkgs:       map[string]*pkgEntry{},
		ctx:        build.Default,
	}
	l.ctx.Dir = root
	if err := l.loadExports(); err != nil {
		return nil, err
	}
	l.gc = importer.ForCompiler(l.Fset, "gc", l.lookup)
	return l, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	raw, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// loadExports asks the go tool for the export-data files of every package
// in the module's dependency closure, test imports included. Compiling
// (if needed) and locating the files is the go tool's job; only stdlib
// entries are kept — module packages are type-checked from source.
func (l *Loader) loadExports() error {
	cmd := exec.Command("go", "list", "-export", "-deps", "-test", "-e",
		"-f", "{{if .Export}}{{.ImportPath}}={{.Export}}{{end}}", "./...")
	cmd.Dir = l.ModuleRoot
	out, err := cmd.Output()
	if err != nil {
		detail := ""
		var exitErr *exec.ExitError
		if errors.As(err, &exitErr) {
			detail = ": " + strings.TrimSpace(string(exitErr.Stderr))
		}
		return fmt.Errorf("analysis: go list -export failed: %w%s", err, detail)
	}
	for _, line := range strings.Split(string(out), "\n") {
		path, file, ok := strings.Cut(strings.TrimSpace(line), "=")
		// Test-variant entries print as "pkg [pkg.test]"; skip them — the
		// plain package's export data is what imports resolve against.
		if !ok || strings.Contains(path, " ") {
			continue
		}
		if _, exists := l.exports[path]; !exists {
			l.exports[path] = file
		}
	}
	return nil
}

// lookup feeds export data to the gc importer.
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	file, ok := l.exports[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(file)
}

// Import implements types.Importer for the type-checker: module-internal
// paths are satisfied from source, everything else from export data. An
// unresolvable import yields an empty placeholder package (recorded in
// TypeErrors) so syntax-level analyzers still run over the unit.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.internal(path) {
		return l.importSource(path)
	}
	pkg, err := l.gc.Import(path)
	if err != nil {
		l.TypeErrors = append(l.TypeErrors, fmt.Errorf("import %q: %w", path, err))
		name := path[strings.LastIndex(path, "/")+1:]
		placeholder := types.NewPackage(path, name)
		placeholder.MarkComplete()
		return placeholder, nil
	}
	return pkg, nil
}

// internal reports whether path names a package inside this module.
func (l *Loader) internal(path string) bool {
	return path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")
}

// importSource type-checks a module package (non-test files only) from
// source, memoized. Import cycles are a compile error the build gate
// reports first; here they just degrade to a placeholder.
func (l *Loader) importSource(path string) (*types.Package, error) {
	if e, ok := l.pkgs[path]; ok {
		if e.checking || e.pkg == nil {
			l.TypeErrors = append(l.TypeErrors, fmt.Errorf("import cycle or failed package %q", path))
			placeholder := types.NewPackage(path, path[strings.LastIndex(path, "/")+1:])
			placeholder.MarkComplete()
			return placeholder, nil
		}
		return e.pkg, nil
	}
	entry := &pkgEntry{checking: true}
	l.pkgs[path] = entry

	dir := filepath.Join(l.ModuleRoot, strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/"))
	names, _, _, err := l.dirFiles(dir)
	if err != nil {
		entry.checking = false
		return nil, err
	}
	files, err := l.parse(dir, names)
	if err != nil {
		entry.checking = false
		return nil, err
	}
	pkg, _, err := l.check(path, files)
	entry.pkg = pkg
	entry.checking = false
	return pkg, err
}

// dirFiles lists the buildable Go files of a directory, split into
// package files, in-package test files, and external test files.
func (l *Loader) dirFiles(dir string) (goFiles, testFiles, xtestFiles []string, err error) {
	p, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		var noGo *build.NoGoError
		if errors.As(err, &noGo) {
			return nil, nil, nil, nil
		}
		return nil, nil, nil, fmt.Errorf("analysis: scanning %s: %w", dir, err)
	}
	return p.GoFiles, p.TestGoFiles, p.XTestGoFiles, nil
}

// parse parses the named files in dir with comments preserved.
func (l *Loader) parse(dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// check type-checks one set of files as a package. Type errors are
// collected, not fatal: the build gate owns compilability.
func (l *Loader) check(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			l.TypeErrors = append(l.TypeErrors, err)
		},
	}
	pkg, err := conf.Check(path, l.Fset, files, info)
	// err repeats the first collected type error; the package is still
	// usable for analysis, so only a nil package is treated as fatal.
	if pkg == nil {
		return nil, nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return pkg, info, nil
}

// skipDir names directories the walker never descends into.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" || name == "bin" ||
		(strings.HasPrefix(name, ".") && name != ".")
}

// Load walks the module tree and returns one analyzable unit per
// package: the package itself (augmented with in-package test files when
// it has any) plus an external test unit when _test-package files exist.
func (l *Loader) Load() ([]*Unit, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if path != l.ModuleRoot && skipDir(d.Name()) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: walking %s: %w", l.ModuleRoot, err)
	}
	sort.Strings(dirs)

	var units []*Unit
	for _, dir := range dirs {
		dirUnits, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		units = append(units, dirUnits...)
	}
	return units, nil
}

// importPathFor maps a directory to its import path within the module.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// loadDir builds the analyzable units for one directory.
func (l *Loader) loadDir(dir string) ([]*Unit, error) {
	goFiles, testFiles, xtestFiles, err := l.dirFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(goFiles)+len(testFiles)+len(xtestFiles) == 0 {
		return nil, nil
	}
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}

	var units []*Unit
	if len(goFiles) > 0 || len(testFiles) > 0 {
		// One unit covers the package and its in-package test files; the
		// plain package is additionally memoized (unaugmented) for other
		// packages to import.
		files, err := l.parse(dir, append(append([]string{}, goFiles...), testFiles...))
		if err != nil {
			return nil, err
		}
		pkg, info, err := l.check(path, files)
		if err != nil {
			return nil, err
		}
		units = append(units, l.newUnit(path, dir, files, pkg, info, len(testFiles) > 0))
	}
	if len(xtestFiles) > 0 {
		files, err := l.parse(dir, xtestFiles)
		if err != nil {
			return nil, err
		}
		pkg, info, err := l.check(path+"_test", files)
		if err != nil {
			return nil, err
		}
		units = append(units, l.newUnit(path+"_test", dir, files, pkg, info, true))
	}
	return units, nil
}

// newUnit assembles a Unit and indexes its suppression comments.
func (l *Loader) newUnit(path, dir string, files []*ast.File, pkg *types.Package, info *types.Info, test bool) *Unit {
	u := &Unit{
		PkgPath:  path,
		Dir:      dir,
		Test:     test,
		Fset:     l.Fset,
		Files:    files,
		Pkg:      pkg,
		Info:     info,
		suppress: suppressions{},
	}
	for _, f := range files {
		u.collectSuppressions(l.Fset, f)
	}
	return u
}

// LoadDir loads a single directory outside the normal walk (used by the
// golden-corpus tests, whose packages live under testdata/). When
// typed is false the unit is parse-only, which permits deliberately
// unresolvable imports in the corpus.
func (l *Loader) LoadDir(dir string, typed bool) (*Unit, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	files, err := l.parse(dir, names)
	if err != nil {
		return nil, err
	}
	path, err := l.importPathFor(dir)
	if err != nil {
		path = filepath.Base(dir)
	}
	if !typed {
		return l.newUnit(path, dir, files, nil, nil, false), nil
	}
	pkg, info, err := l.check(path, files)
	if err != nil {
		return nil, err
	}
	return l.newUnit(path, dir, files, pkg, info, false), nil
}
