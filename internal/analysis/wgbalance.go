package analysis

import (
	"go/ast"
	"go/types"
)

// Wgbalance checks the three legs of the sync.WaitGroup contract the
// fan-out paths (scatter-gather dispatch, streaming source workers,
// the rule worker pool) depend on: Add must happen before the goroutine
// starts (an Add inside the spawned body races with Wait), Done must be
// reached on every path of the spawned function (one missed path hangs
// Wait forever under exactly the error conditions the path handles),
// and an Add/Wait pair in one function must have a Done somewhere in a
// goroutine it spawns. The all-paths and per-function-summary questions
// are answered by the dataflow core.
var Wgbalance = register(&Analyzer{
	Name:      "wgbalance",
	Doc:       "WaitGroup Add before spawn, Done on all paths of the spawned function, Wait matched",
	NeedTypes: true,
	Run:       runWgbalance,
})

func runWgbalance(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				checkSpawn(p, g)
			}
			return true
		})
		funcBodies(file, func(body *ast.BlockStmt) {
			checkWgPairing(p, body)
		})
	}
}

// wgCall matches a method call on a sync.WaitGroup and returns the
// rendered receiver expression and the method name (Add, Done, Wait).
func wgCall(p *Pass, call *ast.CallExpr) (recv, method string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	fn, okFn := p.ObjectOf(sel.Sel).(*types.Func)
	if !okFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	sig, okSig := fn.Type().(*types.Signature)
	if !okSig || sig.Recv() == nil {
		return "", "", false
	}
	if named, okN := deref(sig.Recv().Type()).(*types.Named); !okN || named.Obj().Name() != "WaitGroup" {
		return "", "", false
	}
	switch fn.Name() {
	case "Add", "Done", "Wait":
		return types.ExprString(sel.X), fn.Name(), true
	}
	return "", "", false
}

// deref strips one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// rootIdent returns the leftmost identifier of an expression chain
// (wg → wg, s.wg → s), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// capturedFromOutside reports whether the receiver's root identifier is
// declared outside the given node — i.e. the WaitGroup is captured, not
// the literal's own.
func capturedFromOutside(p *Pass, recvExpr ast.Expr, scope ast.Node) bool {
	root := rootIdent(recvExpr)
	if root == nil {
		return false
	}
	obj := p.ObjectOf(root)
	if obj == nil {
		return false
	}
	return obj.Pos() < scope.Pos() || obj.Pos() > scope.End()
}

// checkSpawn inspects one go statement: an Add on a captured WaitGroup
// inside the spawned body, and Done reachability on all of the spawned
// function's paths.
func checkSpawn(p *Pass, g *ast.GoStmt) {
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		checkSpawnedLit(p, g, lit)
		return
	}
	checkSpawnedDecl(p, g)
}

func checkSpawnedLit(p *Pass, g *ast.GoStmt, lit *ast.FuncLit) {
	// Done receivers mentioned at the literal's own level (not inside a
	// further nested literal, whose custody is its own).
	doneRecvs := map[string]bool{}
	var scan func(n ast.Node) bool
	scan = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n != lit {
				return false
			}
		case *ast.CallExpr:
			recv, method, ok := wgCall(p, n)
			if !ok || !capturedFromOutside(p, n.Fun.(*ast.SelectorExpr).X, lit) {
				return true
			}
			switch method {
			case "Add":
				p.Reportf(n.Pos(), "%s.Add inside the spawned goroutine races with %s.Wait; call Add before the go statement", recv, recv)
			case "Done":
				doneRecvs[recv] = true
			}
		}
		return true
	}
	ast.Inspect(lit, scan)

	for recv := range doneRecvs {
		ok := dischargesOnAllPaths(lit.Body, func(c *ast.CallExpr) bool {
			r, m, okC := wgCall(p, c)
			return okC && m == "Done" && r == recv
		}, isNoReturnCall)
		if !ok {
			p.Reportf(g.Pos(), "%s.Done is not reached on every path of the spawned goroutine; defer %s.Done()", recv, recv)
		}
	}
}

// checkSpawnedDecl summarizes a named function spawned with a
// *sync.WaitGroup argument: if its body decrements the parameter at
// all, it must do so on every path.
func checkSpawnedDecl(p *Pass, g *ast.GoStmt) {
	var obj types.Object
	switch fun := g.Call.Fun.(type) {
	case *ast.Ident:
		obj = p.ObjectOf(fun)
	case *ast.SelectorExpr:
		obj = p.ObjectOf(fun.Sel)
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return
	}
	decl := p.FuncDeclOf(fn)
	if decl == nil {
		return
	}
	params := flattenParams(decl)
	for i := range g.Call.Args {
		if i >= len(params) || params[i] == nil {
			continue
		}
		t := p.TypeOf(g.Call.Args[i])
		if t == nil {
			continue
		}
		if named, okN := deref(t).(*types.Named); !okN ||
			named.Obj().Name() != "WaitGroup" || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
			continue
		}
		name := params[i].Name
		mentionsDone := false
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if c, okC := n.(*ast.CallExpr); okC {
				if r, m, okW := wgCall(p, c); okW && m == "Done" && r == name {
					mentionsDone = true
				}
			}
			return !mentionsDone
		})
		if !mentionsDone {
			continue
		}
		ok := dischargesOnAllPaths(decl.Body, func(c *ast.CallExpr) bool {
			r, m, okC := wgCall(p, c)
			return okC && m == "Done" && r == name
		}, isNoReturnCall)
		if !ok {
			p.Reportf(g.Pos(), "%s.Done is not reached on every path of spawned %s; defer it", name, fn.Name())
		}
	}
}

// flattenParams expands a declaration's parameter fields into one ident
// per parameter, positionally aligned with call arguments.
func flattenParams(decl *ast.FuncDecl) []*ast.Ident {
	var out []*ast.Ident
	if decl.Type.Params == nil {
		return nil
	}
	for _, field := range decl.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			out = append(out, name)
		}
	}
	return out
}

// checkWgPairing verifies, within one function body, that a local
// WaitGroup with both Add and Wait has a Done somewhere: directly in
// the body, or in a goroutine the body spawns. Receivers that are
// fields or that escape (address passed onward) are another owner's
// business and are skipped.
func checkWgPairing(p *Pass, body *ast.BlockStmt) {
	adds := map[string]ast.Node{}
	waits := map[string]bool{}
	credit := map[string]bool{} // a Done reachable from this body's spawns or statements
	escaped := map[string]bool{}

	noteArgEscapes := func(call *ast.CallExpr) {
		for _, arg := range call.Args {
			if u, okU := arg.(*ast.UnaryExpr); okU {
				if id, okI := u.X.(*ast.Ident); okI {
					escaped[id.Name] = true
				}
			}
			if id, okI := arg.(*ast.Ident); okI {
				escaped[id.Name] = true
			}
		}
	}

	var scan func(n ast.Node) bool
	scan = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			if lit, okL := n.Call.Fun.(*ast.FuncLit); okL {
				ast.Inspect(lit, func(m ast.Node) bool {
					if c, okC := m.(*ast.CallExpr); okC {
						if r, method, okW := wgCall(p, c); okW && method == "Done" {
							credit[r] = true
						}
					}
					return true
				})
			} else {
				noteArgEscapes(n.Call)
			}
			return false
		case *ast.CallExpr:
			if recv, method, okW := wgCall(p, n); okW {
				// Only plain local identifiers participate; a field
				// receiver's Add/Done may balance across methods.
				if _, okI := n.Fun.(*ast.SelectorExpr).X.(*ast.Ident); !okI {
					return true
				}
				switch method {
				case "Add":
					if adds[recv] == nil {
						adds[recv] = n
					}
				case "Done":
					credit[recv] = true
				case "Wait":
					waits[recv] = true
				}
				return true
			}
			noteArgEscapes(n)
		}
		return true
	}
	ast.Inspect(body, scan)

	for recv, site := range adds {
		if !waits[recv] || credit[recv] || escaped[recv] {
			continue
		}
		p.Reportf(site.Pos(), "%s.Add has no matching %s.Done — neither in this function nor in a goroutine it spawns — before %s.Wait hangs", recv, recv, recv)
	}
}
