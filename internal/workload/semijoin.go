package workload

// semijoin.go generates the cross-source semi-join scenario (planner
// v3): a small "directory" database source that knows which watches
// exist and how water-resistant they are, plus a few large "detail"
// database sources holding pricing rows for a much wider model range.
// The detail sources do not map water_resistance, so a query
// constraining it can reach their rows only through a class-key merge
// with the directory — which is exactly the shape semi-join narrowing
// accelerates: only detail rows whose model the directory produced can
// matter, and those are a small fraction of each detail table.

import (
	"fmt"
	"math/rand"

	"repro/internal/datasource"
	"repro/internal/mapping"
	"repro/internal/ontology"
	"repro/internal/reldb"
)

// SemiJoinSpec describes a semi-join world.
type SemiJoinSpec struct {
	// DirectoryRecords is the row count of the directory source.
	DirectoryRecords int
	// DetailSources counts the large detail sources.
	DetailSources int
	// DetailRecords is the row count of each detail source. Every
	// directory model appears in every detail source; the rest of the
	// rows carry models the directory has never heard of.
	DetailRecords int
	// Seed drives deterministic generation.
	Seed int64
}

// GenerateSemiJoin builds a semi-join world. Callers must declare the
// class key that makes the scenario mergeable — typically
// SetClassKey("watch", "thing.product.model") — before querying;
// without it the detail sources are simply pruned for constrained
// queries (they map no constrained attribute), which would hide the
// effect being measured.
func GenerateSemiJoin(spec SemiJoinSpec) (*World, error) {
	if spec.DirectoryRecords <= 0 {
		spec.DirectoryRecords = 1
	}
	if spec.DetailRecords < spec.DirectoryRecords {
		spec.DetailRecords = spec.DirectoryRecords
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	w := &World{
		Ontology:      ontology.Paper(),
		Catalog:       datasource.NewCatalog(),
		ProviderNames: map[string]string{},
		RawDocuments:  map[string]string{},
	}

	// The directory: the full watch schema, water_resistance included.
	// Models are drawn from a namespace the generator controls, so detail
	// sources can deterministically re-use or avoid them.
	dirModels := make([]string, spec.DirectoryRecords)
	{
		id, dsn := "dir", "directory"
		db := reldb.New()
		db.MustExec("CREATE TABLE watches (id INTEGER PRIMARY KEY, brand TEXT, model TEXT, watch_case TEXT, price REAL, water_m INTEGER)")
		for i := 0; i < spec.DirectoryRecords; i++ {
			r := Record{
				Brand:           brands[rng.Intn(len(brands))],
				Model:           fmt.Sprintf("Dir %d", 100+i),
				Case:            cases[rng.Intn(len(cases))],
				Price:           float64(rng.Intn(49000)+1000) / 100,
				WaterResistance: (rng.Intn(20) + 1) * 10,
				SourceID:        id,
			}
			dirModels[i] = r.Model
			w.Records = append(w.Records, r)
			if _, err := db.Exec(fmt.Sprintf(
				"INSERT INTO watches (id, brand, model, watch_case, price, water_m) VALUES (%d, '%s', '%s', '%s', %.2f, %d)",
				i, r.Brand, r.Model, r.Case, r.Price, r.WaterResistance)); err != nil {
				return nil, err
			}
		}
		w.Catalog.AddDB(dsn, db)
		w.Definitions = append(w.Definitions, datasource.Definition{ID: id, Kind: datasource.KindDatabase, DSN: dsn})
		add := func(attr, query string) {
			w.Entries = append(w.Entries, mapping.Entry{
				AttributeID: attr, SourceID: id,
				Rule: mapping.Rule{Language: mapping.LangSQL, Code: query},
			})
		}
		add("thing.product.brand", "SELECT brand FROM watches ORDER BY id")
		add("thing.product.model", "SELECT model FROM watches ORDER BY id")
		add("thing.product.watch.case", "SELECT watch_case FROM watches ORDER BY id")
		add("thing.product.price", "SELECT price FROM watches ORDER BY id")
		add("thing.product.watch.water_resistance", "SELECT water_m FROM watches ORDER BY id")
	}

	// The detail sources: model/brand/case/price only. Directory models
	// all reappear (those rows can merge and must survive narrowing); the
	// bulk of each table is filler models only this detail source knows.
	for n := 0; n < spec.DetailSources; n++ {
		id, dsn := fmt.Sprintf("detail_%03d", n), fmt.Sprintf("detail-%03d", n)
		db := reldb.New()
		db.MustExec("CREATE TABLE stock (id INTEGER PRIMARY KEY, brand TEXT, model TEXT, watch_case TEXT, price REAL)")
		for i := 0; i < spec.DetailRecords; i++ {
			model := fmt.Sprintf("Det %d-%d", n, 1000+i)
			if i < spec.DirectoryRecords {
				model = dirModels[i]
			}
			r := Record{
				Brand:    brands[rng.Intn(len(brands))],
				Model:    model,
				Case:     cases[rng.Intn(len(cases))],
				Price:    float64(rng.Intn(49000)+1000) / 100,
				SourceID: id,
			}
			w.Records = append(w.Records, r)
			if _, err := db.Exec(fmt.Sprintf(
				"INSERT INTO stock (id, brand, model, watch_case, price) VALUES (%d, '%s', '%s', '%s', %.2f)",
				i, r.Brand, r.Model, r.Case, r.Price)); err != nil {
				return nil, err
			}
		}
		w.Catalog.AddDB(dsn, db)
		w.Definitions = append(w.Definitions, datasource.Definition{ID: id, Kind: datasource.KindDatabase, DSN: dsn})
		add := func(attr, query string) {
			w.Entries = append(w.Entries, mapping.Entry{
				AttributeID: attr, SourceID: id,
				Rule: mapping.Rule{Language: mapping.LangSQL, Code: query},
			})
		}
		add("thing.product.brand", "SELECT brand FROM stock ORDER BY id")
		add("thing.product.model", "SELECT model FROM stock ORDER BY id")
		add("thing.product.watch.case", "SELECT watch_case FROM stock ORDER BY id")
		add("thing.product.price", "SELECT price FROM stock ORDER BY id")
	}
	return w, nil
}

// MustGenerateSemiJoin is GenerateSemiJoin but panics on error.
func MustGenerateSemiJoin(spec SemiJoinSpec) *World {
	w, err := GenerateSemiJoin(spec)
	if err != nil {
		panic(err)
	}
	return w
}
