// Package workload generates synthetic B2B integration worlds for tests,
// examples, and the benchmark harness. The domain is the paper's watch
// marketplace: N data sources of each kind (database, XML, web page, plain
// text), each holding M product records, plus the mappings that integrate
// them under the paper ontology.
//
// The paper evaluates on no public dataset (workshop paper); this generator
// is the synthetic substitute documented in DESIGN.md. Generation is
// deterministic per seed so benchmark comparisons are stable.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/datasource"
	"repro/internal/mapping"
	"repro/internal/ontology"
	"repro/internal/reldb"
)

// Spec describes a synthetic world.
type Spec struct {
	// DBSources, XMLSources, WebSources, TextSources count data sources of
	// each kind.
	DBSources   int
	XMLSources  int
	WebSources  int
	TextSources int
	// RecordsPerSource is the number of product records per source.
	RecordsPerSource int
	// Seed drives deterministic generation.
	Seed int64
	// FlatOntology builds the world on ontology.PaperFlat() — the paper
	// ontology without its relations — so product-chain queries satisfy
	// the planner's merge-free proof (no relations to link, nothing to
	// merge). The streaming fixtures and the first-instance benchmark
	// use it; everything else about generation is identical.
	FlatOntology bool
}

// Record is one generated product record — the ground truth a test can
// verify extraction against.
type Record struct {
	Brand           string
	Model           string
	Case            string
	Price           float64
	WaterResistance int
	SourceID        string
}

// World is a generated integration scenario.
type World struct {
	// Ontology is the paper's watch ontology.
	Ontology *ontology.Ontology
	// Catalog backs the generated sources.
	Catalog *datasource.Catalog
	// Definitions are the data source registrations.
	Definitions []datasource.Definition
	// Entries are the attribute mappings.
	Entries []mapping.Entry
	// Records is the ground truth across all sources, in generation order.
	Records []Record
	// ProviderNames maps source IDs to the provider published by that
	// source.
	ProviderNames map[string]string
	// RawDocuments holds the generated source content by source ID (XML
	// documents, HTML pages, price lists) so tools can dump the world to
	// disk; database sources are not included.
	RawDocuments map[string]string
}

var (
	brands    = []string{"Seiko", "Casio", "Citizen", "Orient", "Pulsar", "Timex", "Swatch", "Fossil"}
	cases     = []string{"stainless-steel", "gold", "resin", "titanium", "ceramic"}
	modelFmts = []string{"Dive %d", "Dress %d", "Field %d", "Chrono %d", "Digital %d"}
)

// Generate builds a world from a spec.
func Generate(spec Spec) (*World, error) {
	if spec.RecordsPerSource <= 0 {
		spec.RecordsPerSource = 1
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	ont := ontology.Paper()
	if spec.FlatOntology {
		ont = ontology.PaperFlat()
	}
	w := &World{
		Ontology:      ont,
		Catalog:       datasource.NewCatalog(),
		ProviderNames: map[string]string{},
		RawDocuments:  map[string]string{},
	}
	for i := 0; i < spec.DBSources; i++ {
		if err := w.addDBSource(rng, i, spec.RecordsPerSource); err != nil {
			return nil, err
		}
	}
	for i := 0; i < spec.XMLSources; i++ {
		w.addXMLSource(rng, i, spec.RecordsPerSource)
	}
	for i := 0; i < spec.WebSources; i++ {
		w.addWebSource(rng, i, spec.RecordsPerSource)
	}
	for i := 0; i < spec.TextSources; i++ {
		w.addTextSource(rng, i, spec.RecordsPerSource)
	}
	return w, nil
}

// MustGenerate is Generate but panics on error.
func MustGenerate(spec Spec) *World {
	w, err := Generate(spec)
	if err != nil {
		panic(err)
	}
	return w
}

// record draws one random product record.
func (w *World) record(rng *rand.Rand, sourceID string) Record {
	r := Record{
		Brand:           brands[rng.Intn(len(brands))],
		Model:           fmt.Sprintf(modelFmts[rng.Intn(len(modelFmts))], rng.Intn(900)+100),
		Case:            cases[rng.Intn(len(cases))],
		Price:           float64(rng.Intn(49000)+1000) / 100,
		WaterResistance: (rng.Intn(20) + 1) * 10,
		SourceID:        sourceID,
	}
	w.Records = append(w.Records, r)
	return r
}

func (w *World) provider(rng *rand.Rand, sourceID string) string {
	name := fmt.Sprintf("Provider%02d", rng.Intn(40))
	w.ProviderNames[sourceID] = name
	return name
}

func (w *World) addDBSource(rng *rand.Rand, n, records int) error {
	id := fmt.Sprintf("db_%03d", n)
	dsn := fmt.Sprintf("inventory-%03d", n)
	db := reldb.New()
	db.MustExec("CREATE TABLE watches (id INTEGER PRIMARY KEY, brand TEXT, model TEXT, watch_case TEXT, price REAL, water_m INTEGER)")
	db.MustExec("CREATE TABLE provider (name TEXT)")
	for i := 0; i < records; i++ {
		r := w.record(rng, id)
		if _, err := db.Exec(fmt.Sprintf(
			"INSERT INTO watches (id, brand, model, watch_case, price, water_m) VALUES (%d, '%s', '%s', '%s', %.2f, %d)",
			i, r.Brand, r.Model, r.Case, r.Price, r.WaterResistance)); err != nil {
			return err
		}
	}
	prov := w.provider(rng, id)
	db.MustExec(fmt.Sprintf("INSERT INTO provider (name) VALUES ('%s')", prov))
	w.Catalog.AddDB(dsn, db)
	w.Definitions = append(w.Definitions, datasource.Definition{ID: id, Kind: datasource.KindDatabase, DSN: dsn})

	add := func(attr, query string) {
		w.Entries = append(w.Entries, mapping.Entry{
			AttributeID: attr, SourceID: id,
			Rule: mapping.Rule{Language: mapping.LangSQL, Code: query},
		})
	}
	add("thing.product.brand", "SELECT brand FROM watches ORDER BY id")
	add("thing.product.model", "SELECT model FROM watches ORDER BY id")
	add("thing.product.watch.case", "SELECT watch_case FROM watches ORDER BY id")
	add("thing.product.price", "SELECT price FROM watches ORDER BY id")
	add("thing.product.watch.water_resistance", "SELECT water_m FROM watches ORDER BY id")
	w.Entries = append(w.Entries, mapping.Entry{
		AttributeID: "thing.provider.name", SourceID: id,
		Rule:     mapping.Rule{Language: mapping.LangSQL, Code: "SELECT name FROM provider"},
		Scenario: mapping.SingleRecord,
	})
	return nil
}

func (w *World) addXMLSource(rng *rand.Rand, n, records int) {
	id := fmt.Sprintf("xml_%03d", n)
	path := fmt.Sprintf("catalog-%03d.xml", n)
	var b strings.Builder
	b.WriteString("<catalog>\n")
	for i := 0; i < records; i++ {
		r := w.record(rng, id)
		fmt.Fprintf(&b, "  <watch id=\"%d\"><brand>%s</brand><model>%s</model><case>%s</case><price>%.2f</price><water>%d</water></watch>\n",
			i, r.Brand, r.Model, r.Case, r.Price, r.WaterResistance)
	}
	prov := w.provider(rng, id)
	fmt.Fprintf(&b, "  <provider><name>%s</name></provider>\n", prov)
	b.WriteString("</catalog>")
	w.RawDocuments[id] = b.String()
	w.Catalog.XML.MustAdd(path, b.String())
	w.Definitions = append(w.Definitions, datasource.Definition{ID: id, Kind: datasource.KindXML, Path: path})

	add := func(attr, expr string) {
		w.Entries = append(w.Entries, mapping.Entry{
			AttributeID: attr, SourceID: id,
			Rule: mapping.Rule{Language: mapping.LangXPath, Code: expr},
		})
	}
	add("thing.product.brand", "/catalog/watch/brand")
	add("thing.product.model", "/catalog/watch/model")
	add("thing.product.watch.case", "/catalog/watch/case")
	add("thing.product.price", "/catalog/watch/price")
	add("thing.product.watch.water_resistance", "/catalog/watch/water")
	w.Entries = append(w.Entries, mapping.Entry{
		AttributeID: "thing.provider.name", SourceID: id,
		Rule:     mapping.Rule{Language: mapping.LangXPath, Code: "/catalog/provider/name"},
		Scenario: mapping.SingleRecord,
	})
}

func (w *World) addWebSource(rng *rand.Rand, n, records int) {
	id := fmt.Sprintf("web_%03d", n)
	url := fmt.Sprintf("http://shop%03d.example/watches.html", n)
	var b strings.Builder
	prov := w.provider(rng, id)
	fmt.Fprintf(&b, "<html><head><title>%s</title></head><body>\n", prov)
	fmt.Fprintf(&b, "<h1>%s catalogue</h1>\n", prov)
	for i := 0; i < records; i++ {
		r := w.record(rng, id)
		fmt.Fprintf(&b, `<div class="product"><p> <b class="brand">%s</b> </p>`+
			`<span class="model">%s</span><span class="case">%s</span>`+
			`<span class="price">%.2f</span></div>`+"\n",
			r.Brand, r.Model, r.Case, r.Price)
	}
	b.WriteString("</body></html>")
	w.RawDocuments[id] = b.String()
	w.Catalog.AddPage(url, b.String())
	w.Definitions = append(w.Definitions, datasource.Definition{ID: id, Kind: datasource.KindWeb, URL: url})

	// WebL rules collect one list per attribute via regex capture groups;
	// Column projects the group in linear time.
	listRule := func(varName, pattern string) string {
		return fmt.Sprintf(`
var P = GetURL(%q)
var ms = Str_Search(Text(P), %q)
var %s = Column(ms, 1)
`, url, pattern, varName)
	}
	add := func(attr, varName, pattern string) {
		w.Entries = append(w.Entries, mapping.Entry{
			AttributeID: attr, SourceID: id,
			Rule: mapping.Rule{Language: mapping.LangWebL, Code: listRule(varName, pattern), Column: varName},
		})
	}
	add("thing.product.brand", "brand", `<b class="brand">([^<]+)</b>`)
	add("thing.product.model", "model", `<span class="model">([^<]+)</span>`)
	add("thing.product.watch.case", "wcase", `<span class="case">([^<]+)</span>`)
	add("thing.product.price", "price", `<span class="price">([^<]+)</span>`)
	w.Entries = append(w.Entries, mapping.Entry{
		AttributeID: "thing.provider.name", SourceID: id,
		Rule: mapping.Rule{Language: mapping.LangWebL, Code: fmt.Sprintf(`
var P = GetURL(%q)
var ms = Str_Search(Text(P), "<title>([^<]+)</title>")
var name = ms[0][1]
`, url), Column: "name"},
		Scenario: mapping.SingleRecord,
	})
}

func (w *World) addTextSource(rng *rand.Rand, n, records int) {
	id := fmt.Sprintf("txt_%03d", n)
	path := fmt.Sprintf("pricelist-%03d.txt", n)
	var b strings.Builder
	prov := w.provider(rng, id)
	fmt.Fprintf(&b, "# %s wholesale price list\nprovider: %s\n", prov, prov)
	for i := 0; i < records; i++ {
		r := w.record(rng, id)
		fmt.Fprintf(&b, "SKU W-%04d brand=%s model=[%s] case=%s price=%.2f water=%dm\n",
			i, r.Brand, r.Model, r.Case, r.Price, r.WaterResistance)
	}
	w.RawDocuments[id] = b.String()
	w.Catalog.Text.MustAdd(path, b.String())
	w.Definitions = append(w.Definitions, datasource.Definition{ID: id, Kind: datasource.KindText, Path: path})

	add := func(attr, pattern string) {
		w.Entries = append(w.Entries, mapping.Entry{
			AttributeID: attr, SourceID: id,
			Rule: mapping.Rule{Language: mapping.LangRegex, Code: pattern},
		})
	}
	add("thing.product.brand", `brand=([A-Za-z]+)`)
	add("thing.product.model", `model=\[([^\]]+)\]`)
	add("thing.product.watch.case", `case=([a-z-]+)`)
	add("thing.product.price", `price=([0-9.]+)`)
	add("thing.product.watch.water_resistance", `water=([0-9]+)m`)
	w.Entries = append(w.Entries, mapping.Entry{
		AttributeID: "thing.provider.name", SourceID: id,
		Rule:     mapping.Rule{Language: mapping.LangRegex, Code: `provider: ([A-Za-z0-9]+)`},
		Scenario: mapping.SingleRecord,
	})
}

// Registrar is the subset of the middleware the world registers itself
// into; core.Middleware satisfies it.
type Registrar interface {
	RegisterSource(datasource.Definition) error
	RegisterMapping(mapping.Entry) error
}

// Apply registers every source and mapping into a middleware.
func (w *World) Apply(m Registrar) error {
	for _, def := range w.Definitions {
		if err := m.RegisterSource(def); err != nil {
			return err
		}
	}
	for _, e := range w.Entries {
		if err := m.RegisterMapping(e); err != nil {
			return err
		}
	}
	return nil
}

// CountMatching returns how many ground-truth records satisfy a predicate.
func (w *World) CountMatching(pred func(Record) bool) int {
	n := 0
	for _, r := range w.Records {
		if pred(r) {
			n++
		}
	}
	return n
}

// GrowOntology returns a synthetic ontology with the requested number of
// classes (in a random tree under the root) and attributes per class; used
// by the ontology-scaling experiment (E2).
func GrowOntology(classes, attrsPerClass int, seed int64) *ontology.Ontology {
	rng := rand.New(rand.NewSource(seed))
	ont := ontology.MustNew("http://s2s.uma.pt/gen#", "generated", "thing")
	names := []string{"thing"}
	for i := 0; i < classes; i++ {
		parent := names[rng.Intn(len(names))]
		name := fmt.Sprintf("class%04d", i)
		if _, err := ont.AddClass(name, parent); err != nil {
			panic(err)
		}
		names = append(names, name)
		for a := 0; a < attrsPerClass; a++ {
			if _, err := ont.AddAttribute(name, fmt.Sprintf("attr%d", a), ""); err != nil {
				panic(err)
			}
		}
	}
	return ont
}
