package workload

import (
	"testing"

	"repro/internal/datasource"
	"repro/internal/mapping"
)

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{DBSources: 1, XMLSources: 1, WebSources: 1, TextSources: 1, RecordsPerSource: 5, Seed: 42}
	a := MustGenerate(spec)
	b := MustGenerate(spec)
	if len(a.Records) != len(b.Records) || len(a.Records) != 20 {
		t.Fatalf("records = %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a.Records[i], b.Records[i])
		}
	}
}

func TestGenerateShapes(t *testing.T) {
	w := MustGenerate(Spec{DBSources: 2, XMLSources: 3, WebSources: 1, TextSources: 1, RecordsPerSource: 4, Seed: 7})
	if len(w.Definitions) != 7 {
		t.Errorf("definitions = %d", len(w.Definitions))
	}
	kinds := map[datasource.Kind]int{}
	for _, d := range w.Definitions {
		kinds[d.Kind]++
		if err := d.Validate(); err != nil {
			t.Errorf("definition %s invalid: %v", d.ID, err)
		}
	}
	if kinds[datasource.KindDatabase] != 2 || kinds[datasource.KindXML] != 3 {
		t.Errorf("kinds = %v", kinds)
	}
	// 6 mappings per DB/XML/text source, 5 per web source.
	want := 2*6 + 3*6 + 1*5 + 1*6
	if len(w.Entries) != want {
		t.Errorf("entries = %d, want %d", len(w.Entries), want)
	}
	if len(w.ProviderNames) != 7 {
		t.Errorf("providers = %v", w.ProviderNames)
	}
}

func TestGeneratedMappingsRegister(t *testing.T) {
	w := MustGenerate(Spec{DBSources: 1, XMLSources: 1, WebSources: 1, TextSources: 1, RecordsPerSource: 3, Seed: 1})
	reg := datasource.NewRegistry()
	repo := mapping.NewRepository(w.Ontology, reg)
	for _, d := range w.Definitions {
		if err := reg.Register(d); err != nil {
			t.Fatalf("source %s: %v", d.ID, err)
		}
	}
	for _, e := range w.Entries {
		if err := repo.Register(e); err != nil {
			t.Fatalf("mapping %s/%s: %v", e.AttributeID, e.SourceID, err)
		}
	}
}

func TestCountMatching(t *testing.T) {
	w := MustGenerate(Spec{DBSources: 1, RecordsPerSource: 50, Seed: 3})
	total := w.CountMatching(func(Record) bool { return true })
	if total != 50 {
		t.Fatalf("total = %d", total)
	}
	cheap := w.CountMatching(func(r Record) bool { return r.Price < 100 })
	if cheap <= 0 || cheap >= 50 {
		t.Errorf("cheap = %d; generation should spread prices", cheap)
	}
}

func TestGrowOntology(t *testing.T) {
	ont := GrowOntology(50, 3, 9)
	if err := ont.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(ont.Classes()); got != 51 {
		t.Errorf("classes = %d", got)
	}
	if got := len(ont.Attributes()); got != 150 {
		t.Errorf("attributes = %d", got)
	}
}
