package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Exported metric family names. Every family the middleware emits is
// declared here and documented in docs/OBSERVABILITY.md; a test keeps
// the code, this list, and the document in sync.
const (
	// MetricQueryTotal counts queries served, labeled by outcome.
	MetricQueryTotal = "s2s_query_total"
	// MetricQueryDuration is the end-to-end query latency histogram.
	MetricQueryDuration = "s2s_query_duration_seconds"
	// MetricStageDuration is the per-pipeline-stage latency histogram.
	MetricStageDuration = "s2s_stage_duration_seconds"
	// MetricSourceExtractTotal counts per-source extraction attempts.
	MetricSourceExtractTotal = "s2s_source_extract_total"
	// MetricSourceExtractDuration is the per-source extraction latency
	// histogram.
	MetricSourceExtractDuration = "s2s_source_extract_duration_seconds"
	// MetricSourceRetries counts rule re-executions per source.
	MetricSourceRetries = "s2s_source_retries_total"
	// MetricCacheLookups counts rule-cache lookups by outcome.
	MetricCacheLookups = "s2s_cache_lookups_total"
	// MetricBreakerTrips counts circuit-breaker open transitions.
	MetricBreakerTrips = "s2s_breaker_trips_total"
	// MetricInstances counts generated (matched) ontology instances.
	MetricInstances = "s2s_instances_generated_total"
	// MetricPlannerSourcesPruned counts source plans the query planner
	// dropped entirely before extraction.
	MetricPlannerSourcesPruned = "s2s_planner_sources_pruned_total"
	// MetricPlannerEntriesPruned counts mapping entries the query planner
	// removed without running their rules.
	MetricPlannerEntriesPruned = "s2s_planner_entries_pruned_total"
	// MetricPlannerPushdownApplied counts record-scope groups that
	// received a predicate pushdown (record filter and/or native SQL).
	MetricPlannerPushdownApplied = "s2s_planner_pushdown_applied_total"
	// MetricPlannerMergeFree counts merge-free proof decisions at plan
	// time, labeled by outcome (the planner's MergeFree* constants).
	MetricPlannerMergeFree = "s2s_planner_mergefree_total"
	// MetricPlannerSemiJoin counts semi-join narrowing decisions at
	// runtime, labeled by outcome.
	MetricPlannerSemiJoin = "s2s_planner_semijoin_total"
	// MetricStreamBatches counts fragment batches emitted by the
	// streaming extraction pipeline, per source.
	MetricStreamBatches = "s2s_stream_batches_total"
	// MetricClusterSubqueries counts scatter-gather sub-requests
	// dispatched to cluster nodes, labeled by node and outcome.
	MetricClusterSubqueries = "s2s_cluster_subqueries_total"
	// MetricClusterSubqueryDuration is the per-node sub-request latency
	// histogram the hedging deadline derives from.
	MetricClusterSubqueryDuration = "s2s_cluster_subquery_duration_seconds"
	// MetricClusterHedges counts hedged duplicate dispatches, labeled by
	// outcome (won|lost).
	MetricClusterHedges = "s2s_cluster_hedges_total"
	// MetricClusterCatalogSyncs counts catalog snapshots a node pulled
	// from the coordinator and applied.
	MetricClusterCatalogSyncs = "s2s_cluster_catalog_syncs_total"
	// MetricClusterHeartbeats counts heartbeats the membership
	// coordinator accepted, per node.
	MetricClusterHeartbeats = "s2s_cluster_heartbeats_total"
)

// Outcome label values. Every label value the middleware emits under an
// "outcome" key is declared here; docs/OBSERVABILITY.md documents each
// one and a test keeps the two in sync.
const (
	// OutcomeOK marks a fully successful operation.
	OutcomeOK = "ok"
	// OutcomeError marks a failed operation.
	OutcomeError = "error"
	// OutcomeBreakerOpen marks a source skipped by its open circuit.
	OutcomeBreakerOpen = "breaker_open"
	// OutcomeCanceled marks work abandoned because the query's context
	// expired before it could start.
	OutcomeCanceled = "canceled"
	// OutcomeRetryExhausted marks a source whose rules still failed after
	// the full retry/backoff budget.
	OutcomeRetryExhausted = "retry_exhausted"
	// OutcomeDegradedStale marks a source answered from expired cache
	// entries because live extraction failed.
	OutcomeDegradedStale = "degraded_stale"
	// OutcomeFailover marks a source failure whose attributes were still
	// served by an alternate source mapped to the same attribute.
	OutcomeFailover = "failover"
	// OutcomeShed marks a query rejected by server-side load shedding
	// (503 + Retry-After above the concurrent-query cap).
	OutcomeShed = "shed"
	// OutcomeCacheHit / OutcomeCacheMiss / OutcomeCacheStale label rule
	// cache lookups: fresh hit, miss, and expired entry served anyway
	// under degradation.
	OutcomeCacheHit   = "hit"
	OutcomeCacheMiss  = "miss"
	OutcomeCacheStale = "stale"
	// OutcomeHedgeWon / OutcomeHedgeLost label hedged dispatches: the
	// duplicate sent to the replica either delivered the answer first
	// (won) or the primary beat it after all (lost).
	OutcomeHedgeWon  = "won"
	OutcomeHedgeLost = "lost"
	// Semi-join narrowing outcomes (MetricPlannerSemiJoin): a group was
	// narrowed natively in SQL or via a key record filter; skipped all
	// its records because the first wave produced no key values; ran
	// unnarrowed because the seed exceeded the value cap; ran in the
	// first wave because its plan carried non-narrowable groups too; or
	// because the narrowed groups share no common unsatisfied condition.
	OutcomeSemiJoinSQL      = "applied_sql"
	OutcomeSemiJoinFilter   = "applied_filter"
	OutcomeSemiJoinEmpty    = "seed_empty"
	OutcomeSemiJoinCapped   = "capped"
	OutcomeSemiJoinMixed    = "mixed"
	OutcomeSemiJoinNoCommon = "no_common_condition"
	// Merge-free proof outcomes (MetricPlannerMergeFree): the barrier
	// can be skipped, or the first failed proof condition. The values
	// mirror the planner's MergeFree* constants (internal/planner
	// declares them; importing it here would invert the layering — a
	// planner test keeps the two lists in lockstep).
	OutcomeMergeFreeProved       = "proved"
	OutcomeMergeFreeUnmappedAttr = "unmapped_attribute"
	OutcomeMergeFreeRelations    = "relations"
	OutcomeMergeFreeClassKey     = "class_key"
	OutcomeMergeFreeMultiGroup   = "multi_group"
)

// SourceOutcomes lists every outcome value MetricSourceExtractTotal is
// emitted with.
var SourceOutcomes = []string{
	OutcomeOK, OutcomeError, OutcomeBreakerOpen, OutcomeCanceled,
	OutcomeRetryExhausted, OutcomeDegradedStale, OutcomeFailover,
}

// QueryOutcomes lists every outcome value MetricQueryTotal is emitted
// with.
var QueryOutcomes = []string{OutcomeOK, OutcomeError, OutcomeShed}

// CacheOutcomes lists every outcome value MetricCacheLookups is emitted
// with.
var CacheOutcomes = []string{OutcomeCacheHit, OutcomeCacheMiss, OutcomeCacheStale}

// ClusterSubqueryOutcomes lists every outcome value
// MetricClusterSubqueries is emitted with: a sub-request answered (ok),
// failed (error), was abandoned because its context was canceled after
// the other owner won (canceled), or was re-dispatched to the replica
// owner after the first owner failed (failover, emitted in addition to
// the failure outcome).
var ClusterSubqueryOutcomes = []string{OutcomeOK, OutcomeError, OutcomeCanceled, OutcomeFailover}

// ClusterHedgeOutcomes lists every outcome value MetricClusterHedges is
// emitted with.
var ClusterHedgeOutcomes = []string{OutcomeHedgeWon, OutcomeHedgeLost}

// SemiJoinOutcomes lists every outcome value MetricPlannerSemiJoin is
// emitted with.
var SemiJoinOutcomes = []string{
	OutcomeSemiJoinSQL, OutcomeSemiJoinFilter, OutcomeSemiJoinEmpty,
	OutcomeSemiJoinCapped, OutcomeSemiJoinMixed, OutcomeSemiJoinNoCommon,
}

// MergeFreeOutcomes lists every outcome value MetricPlannerMergeFree is
// emitted with.
var MergeFreeOutcomes = []string{
	OutcomeMergeFreeProved, OutcomeMergeFreeUnmappedAttr,
	OutcomeMergeFreeRelations, OutcomeMergeFreeClassKey,
	OutcomeMergeFreeMultiGroup,
}

// Desc describes one exported metric family.
type Desc struct {
	// Name is the Prometheus family name.
	Name string
	// Type is "counter" or "histogram".
	Type string
	// Help is the one-line exposition HELP text.
	Help string
	// Labels lists the label keys the family is emitted with.
	Labels []string
}

// descriptors is the canonical family list, in exposition order.
var descriptors = []Desc{
	{MetricQueryTotal, "counter", "Queries served, labeled by outcome (ok|error|shed).", []string{"outcome"}},
	{MetricQueryDuration, "histogram", "End-to-end query latency in seconds.", nil},
	{MetricStageDuration, "histogram", "Pipeline stage latency in seconds (parse_plan, extraction_schema, extract, generate, serialize).", []string{"stage"}},
	{MetricSourceExtractTotal, "counter", "Per-source extraction attempts, labeled by source and outcome (ok|error|breaker_open|canceled|retry_exhausted|degraded_stale|failover).", []string{"source", "outcome"}},
	{MetricSourceExtractDuration, "histogram", "Per-source extraction latency in seconds.", []string{"source"}},
	{MetricSourceRetries, "counter", "Rule re-executions after transient failures, per source.", []string{"source"}},
	{MetricCacheLookups, "counter", "Rule-cache lookups, labeled by outcome (hit|miss|stale).", []string{"outcome"}},
	{MetricBreakerTrips, "counter", "Circuit-breaker transitions to open, per source.", []string{"source"}},
	{MetricInstances, "counter", "Matched ontology instances generated across queries.", nil},
	{MetricPlannerSourcesPruned, "counter", "Source plans the query planner pruned before extraction.", nil},
	{MetricPlannerEntriesPruned, "counter", "Mapping entries the query planner pruned before extraction.", nil},
	{MetricPlannerPushdownApplied, "counter", "Record-scope groups with predicate pushdown applied.", nil},
	{MetricPlannerMergeFree, "counter", "Merge-free proof decisions at plan time, labeled by outcome (proved|unmapped_attribute|relations|class_key|multi_group).", []string{"outcome"}},
	{MetricPlannerSemiJoin, "counter", "Semi-join narrowing decisions at runtime, labeled by outcome (applied_sql|applied_filter|seed_empty|capped|mixed|no_common_condition).", []string{"outcome"}},
	{MetricStreamBatches, "counter", "Fragment batches emitted by the streaming extraction pipeline, per source.", []string{"source"}},
	{MetricClusterSubqueries, "counter", "Scatter-gather sub-requests dispatched to cluster nodes, labeled by node and outcome (ok|error|canceled|failover).", []string{"node", "outcome"}},
	{MetricClusterSubqueryDuration, "histogram", "Per-node scatter-gather sub-request latency in seconds (the hedging deadline derives from its quantiles).", []string{"node"}},
	{MetricClusterHedges, "counter", "Hedged duplicate dispatches to replica owners, labeled by outcome (won|lost).", []string{"outcome"}},
	{MetricClusterCatalogSyncs, "counter", "Catalog snapshots pulled from the coordinator and applied.", nil},
	{MetricClusterHeartbeats, "counter", "Heartbeats the membership coordinator accepted, per node.", []string{"node"}},
}

// Descriptors returns the canonical exported-metric descriptions.
func Descriptors() []Desc {
	out := make([]Desc, len(descriptors))
	copy(out, descriptors)
	return out
}

// MetricNames returns every declared family name, in exposition order.
func MetricNames() []string {
	out := make([]string, len(descriptors))
	for i, d := range descriptors {
		out[i] = d.Name
	}
	return out
}

// Labels is one metric series' label set, e.g.
// Labels{"source": "db_1", "outcome": "ok"}.
type Labels map[string]string

// labelKey is a deterministic series key: sorted k=v pairs.
func labelKey(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte('\xff')
		}
		b.WriteString(k)
		b.WriteByte('\xfe')
		b.WriteString(l[k])
	}
	return b.String()
}

// Counter is a monotonically increasing series. All methods are nil-safe
// and lock-free.
type Counter struct {
	v      atomic.Uint64
	labels Labels
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// DefaultBuckets returns the log-linear latency bucket upper bounds, in
// seconds: 1..9 µs, 10..90 µs, ... up to 9 s (63 finite buckets plus the
// implicit +Inf overflow). Log-linear keeps relative error under ~11%
// across six decades with a fixed, cheap bucket count.
func DefaultBuckets() []float64 {
	out := make([]float64, 0, 63)
	for exp := -6; exp <= 0; exp++ {
		mag := math.Pow(10, float64(exp))
		for m := 1; m <= 9; m++ {
			out = append(out, float64(m)*mag)
		}
	}
	return out
}

// Histogram is a fixed-bucket latency distribution. Observations are
// atomic adds (no locks); all methods are nil-safe.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the observation sum
	labels  Labels
}

func newHistogram(bounds []float64, labels Labels) *Histogram {
	return &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1), labels: labels}
}

// Observe records one value (seconds; negatives clamp to zero).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	// First bucket whose upper bound is >= v (le semantics).
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations in seconds.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (0 < q <= 1) of the observed
// distribution from the histogram buckets, interpolating linearly
// within the bucket that crosses the target rank. Observations in the
// +Inf overflow bucket clamp to the largest finite bound. Returns 0
// when the histogram is empty. The estimate's error is bounded by the
// bucket width (~11% with DefaultBuckets); that is plenty for uses like
// the cluster's hedging deadline, which needs "roughly p90", not an
// exact order statistic.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if cum+n < target {
			cum += n
			continue
		}
		if i >= len(h.bounds) {
			// Overflow bucket: no finite upper bound to interpolate to.
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		frac := float64(target-cum) / float64(n)
		return lo + frac*(h.bounds[i]-lo)
	}
	return h.bounds[len(h.bounds)-1]
}

// Buckets returns the bucket upper bounds and the per-bucket
// (non-cumulative) counts; the final count is the +Inf overflow bucket.
func (h *Histogram) Buckets() (bounds []float64, counts []uint64) {
	if h == nil {
		return nil, nil
	}
	counts = make([]uint64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	return h.bounds, counts
}

// Registry holds the metric series of one middleware instance, keyed by
// family name and label set. Lookups take a read-lock; updates on the
// returned series are lock-free atomics. All methods are nil-safe so
// uninstrumented call paths cost nothing.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]map[string]*Counter
	histograms map[string]map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]map[string]*Counter),
		histograms: make(map[string]map[string]*Histogram),
	}
}

func copyLabels(l Labels) Labels {
	if len(l) == 0 {
		return nil
	}
	out := make(Labels, len(l))
	for k, v := range l {
		out[k] = v
	}
	return out
}

// Counter returns (creating if needed) the counter series for the family
// name and label set.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	key := labelKey(labels)
	r.mu.RLock()
	c := r.counters[name][key]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	series, ok := r.counters[name]
	if !ok {
		series = make(map[string]*Counter)
		r.counters[name] = series
	}
	if c = series[key]; c == nil {
		c = &Counter{labels: copyLabels(labels)}
		series[key] = c
	}
	return c
}

// Histogram returns (creating if needed) the histogram series for the
// family name and label set, with DefaultBuckets bounds.
func (r *Registry) Histogram(name string, labels Labels) *Histogram {
	if r == nil {
		return nil
	}
	key := labelKey(labels)
	r.mu.RLock()
	h := r.histograms[name][key]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	series, ok := r.histograms[name]
	if !ok {
		series = make(map[string]*Histogram)
		r.histograms[name] = series
	}
	if h = series[key]; h == nil {
		h = newHistogram(DefaultBuckets(), copyLabels(labels))
		series[key] = h
	}
	return h
}

// Names returns the family names with at least one series, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.counters)+len(r.histograms))
	for name := range r.counters {
		out = append(out, name)
	}
	for name := range r.histograms {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// escapeLabelValue escapes a value per the Prometheus text format.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// formatLabels renders {k="v",...} with sorted keys, plus an optional
// extra pair appended last (used for le on histogram buckets).
func formatLabels(l Labels, extraKey, extraVal string) string {
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%s\"", k, escapeLabelValue(l[k]))
	}
	if extraKey != "" {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%s\"", extraKey, extraVal)
	}
	if b.Len() == 0 {
		return ""
	}
	return "{" + b.String() + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every populated family in the Prometheus text
// exposition format (version 0.0.4), families in canonical declaration
// order, series sorted by label set; undeclared families, if any, follow
// alphabetically.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()

	written := make(map[string]bool)
	for _, d := range descriptors {
		if err := r.writeFamily(w, d); err != nil {
			return err
		}
		written[d.Name] = true
	}
	var rest []string
	for name := range r.counters {
		if !written[name] {
			rest = append(rest, name)
		}
	}
	for name := range r.histograms {
		if !written[name] {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	for _, name := range rest {
		typ := "counter"
		if _, ok := r.histograms[name]; ok {
			typ = "histogram"
		}
		if err := r.writeFamily(w, Desc{Name: name, Type: typ, Help: "(undeclared)"}); err != nil {
			return err
		}
	}
	return nil
}

// writeFamily renders one family; the caller holds at least a read lock.
func (r *Registry) writeFamily(w io.Writer, d Desc) error {
	switch d.Type {
	case "counter":
		series := r.counters[d.Name]
		if len(series) == 0 {
			return nil
		}
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", d.Name, d.Help, d.Name)
		for _, key := range sortedKeys(series) {
			c := series[key]
			fmt.Fprintf(w, "%s%s %d\n", d.Name, formatLabels(c.labels, "", ""), c.Value())
		}
	case "histogram":
		series := r.histograms[d.Name]
		if len(series) == 0 {
			return nil
		}
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", d.Name, d.Help, d.Name)
		for _, key := range sortedKeys(series) {
			h := series[key]
			bounds, counts := h.Buckets()
			var cum uint64
			for i, bound := range bounds {
				cum += counts[i]
				if counts[i] == 0 && i < len(bounds)-1 {
					continue // elide empty interior buckets; cumulative stays exact
				}
				fmt.Fprintf(w, "%s_bucket%s %d\n", d.Name, formatLabels(h.labels, "le", formatFloat(bound)), cum)
			}
			cum += counts[len(counts)-1]
			fmt.Fprintf(w, "%s_bucket%s %d\n", d.Name, formatLabels(h.labels, "le", "+Inf"), cum)
			fmt.Fprintf(w, "%s_sum%s %s\n", d.Name, formatLabels(h.labels, "", ""), formatFloat(h.Sum()))
			fmt.Fprintf(w, "%s_count%s %d\n", d.Name, formatLabels(h.labels, "", ""), cum)
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
