package obs

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Span is one timed operation in a trace tree. Fields are exported for
// JSON serialization (GET /trace/last); mutate spans only through the
// methods, which are safe for concurrent use and nil-safe.
type Span struct {
	// TraceID groups every span of one query, across processes.
	TraceID string `json:"traceId"`
	// ID is the span's unique identifier within the trace.
	ID string `json:"spanId"`
	// ParentID is the parent span's ID ("" for a root).
	ParentID string `json:"parentId,omitempty"`
	// Name is the operation, e.g. "query", "extract", "source:db_1".
	Name string `json:"name"`
	// Start is the span's start time.
	Start time.Time `json:"start"`
	// Duration is the span's wall time, set by End (nanoseconds in JSON).
	Duration time.Duration `json:"durationNs"`
	// Attrs annotates the span (outcome, retries, cache, breaker, ...).
	Attrs map[string]string `json:"attrs,omitempty"`
	// Events are point-in-time marks within the span's duration — the
	// streaming pipeline records one per fragment batch, so a trace shows
	// when each batch crossed the extract/generate boundary without
	// costing a child span per batch.
	Events []SpanEvent `json:"events,omitempty"`
	// Children are the nested spans, in start order.
	Children []*Span `json:"children,omitempty"`

	mu     sync.Mutex
	ended  bool
	tracer *Tracer
}

// SpanEvent is one timestamped mark inside a span (see Span.AddEvent).
type SpanEvent struct {
	// Time is when the event happened.
	Time time.Time `json:"time"`
	// Name identifies the event, e.g. "stream_batch".
	Name string `json:"name"`
	// Attrs annotates the event (source, batch sequence, fragment count).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// StartChild starts a nested span. Safe to call from concurrent
// goroutines (the per-source fan-out does).
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	child := &Span{TraceID: s.TraceID, ID: newID(), ParentID: s.ID, Name: name, Start: time.Now()}
	s.mu.Lock()
	s.Children = append(s.Children, child)
	s.mu.Unlock()
	return child
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.Attrs == nil {
		s.Attrs = make(map[string]string)
	}
	s.Attrs[key] = value
	s.mu.Unlock()
}

// AddEvent records a timestamped event on the span. Events are cheaper
// than child spans (no ID minting, no subtree) and suit high-frequency
// marks like per-batch progress in the streaming pipeline. attrs may be
// nil; the map is copied, so the caller may reuse it.
func (s *Span) AddEvent(name string, attrs map[string]string) {
	if s == nil {
		return
	}
	ev := SpanEvent{Time: time.Now(), Name: name}
	if len(attrs) > 0 {
		ev.Attrs = make(map[string]string, len(attrs))
		for k, v := range attrs {
			ev.Attrs[k] = v
		}
	}
	s.mu.Lock()
	s.Events = append(s.Events, ev)
	s.mu.Unlock()
}

// Adopt grafts a span tree produced elsewhere (typically a remote
// middleware's subtree returned over HTTP) under this span.
func (s *Span) Adopt(child *Span) {
	if s == nil || child == nil {
		return
	}
	child.ParentID = s.ID
	s.mu.Lock()
	s.Children = append(s.Children, child)
	s.mu.Unlock()
}

// End stamps the span's duration. Ending a root span records the
// finished trace in its tracer's ring buffer. End is idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.Duration = time.Since(s.Start)
	t := s.tracer
	s.mu.Unlock()
	if t != nil {
		t.record(s)
	}
}

// Walk visits the span and every descendant, depth-first in child order.
func (s *Span) Walk(fn func(*Span)) {
	if s == nil {
		return
	}
	fn(s)
	for _, c := range s.Children {
		c.Walk(fn)
	}
}

// WriteTree pretty-prints a span tree, one span per line, indented by
// depth, with duration and sorted attributes:
//
//	query 12.4ms matched=30 outcome=ok
//	  parse_plan 180µs
//	  extract 10.1ms sources=4
//	    source:db_1 9.8ms kind=database outcome=ok retries=0
func WriteTree(w io.Writer, s *Span) {
	writeTree(w, s, 0)
}

func writeTree(w io.Writer, s *Span, depth int) {
	if s == nil {
		return
	}
	for i := 0; i < depth; i++ {
		fmt.Fprint(w, "  ")
	}
	fmt.Fprintf(w, "%s %s", s.Name, s.Duration.Round(time.Microsecond))
	keys := make([]string, 0, len(s.Attrs))
	for k := range s.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, " %s=%s", k, s.Attrs[k])
	}
	fmt.Fprintln(w)
	for _, c := range s.Children {
		writeTree(w, c, depth+1)
	}
}

// DefaultTraceCapacity is the ring-buffer size of a zero-configured
// Tracer.
const DefaultTraceCapacity = 64

// Tracer mints trace roots and retains the most recent completed traces
// in a bounded in-memory ring buffer. The zero value is not usable; call
// NewTracer.
type Tracer struct {
	mu   sync.Mutex
	ring []*Span
	pos  int
	full bool
}

// NewTracer returns a tracer retaining up to capacity completed traces
// (DefaultTraceCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{ring: make([]*Span, capacity)}
}

// StartTrace starts a query trace. If the context already carries an
// active span, the new span joins that trace as a child (so nested
// instrumentation layers produce one tree, recorded once by the
// outermost layer). If the context carries a [Remote], the root adopts
// the remote trace ID and parent span ID. Otherwise a fresh trace ID is
// minted. Ending the returned root span records the trace.
func (t *Tracer) StartTrace(ctx context.Context, name string) (context.Context, *Span) {
	if parent := SpanFromContext(ctx); parent != nil {
		child := parent.StartChild(name)
		return ContextWithSpan(ctx, child), child
	}
	s := &Span{TraceID: newID(), ID: newID(), Name: name, Start: time.Now(), tracer: t}
	if r, ok := RemoteFromContext(ctx); ok {
		s.TraceID = r.TraceID
		s.ParentID = r.ParentID
	}
	return ContextWithSpan(ctx, s), s
}

// record stores a completed root trace, evicting the oldest.
func (t *Tracer) record(s *Span) {
	t.mu.Lock()
	t.ring[t.pos] = s
	t.pos++
	if t.pos == len(t.ring) {
		t.pos, t.full = 0, true
	}
	t.mu.Unlock()
}

// Last returns up to n completed traces, most recent first.
func (t *Tracer) Last(n int) []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	size := t.pos
	if t.full {
		size = len(t.ring)
	}
	if n > size {
		n = size
	}
	out := make([]*Span, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, t.ring[(t.pos-i+len(t.ring))%len(t.ring)])
	}
	return out
}

// Len returns the number of retained traces.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.ring)
	}
	return t.pos
}
