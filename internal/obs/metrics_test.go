package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := DefaultBuckets()
	if len(bounds) != 63 {
		t.Fatalf("bounds = %d, want 63", len(bounds))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds not ascending at %d: %v <= %v", i, bounds[i], bounds[i-1])
		}
	}

	h := newHistogram(bounds, nil)
	// A value exactly on a boundary lands in that boundary's bucket (le
	// semantics), a value just above in the next.
	h.Observe(bounds[10])
	h.Observe(bounds[10] * 1.0001)
	// Below the lowest boundary → first bucket; above the highest → +Inf.
	h.Observe(bounds[0] / 2)
	h.Observe(bounds[len(bounds)-1] * 2)
	// Zero and negative clamp into the first bucket.
	h.Observe(0)
	h.Observe(-1)

	_, counts := h.Buckets()
	if counts[10] != 1 {
		t.Errorf("boundary bucket count = %d, want 1", counts[10])
	}
	if counts[11] != 1 {
		t.Errorf("next bucket count = %d, want 1", counts[11])
	}
	if counts[0] != 3 {
		t.Errorf("first bucket count = %d, want 3 (underflow + zero + negative)", counts[0])
	}
	if counts[len(counts)-1] != 1 {
		t.Errorf("+Inf bucket count = %d, want 1", counts[len(counts)-1])
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
}

func TestHistogramSum(t *testing.T) {
	h := newHistogram(DefaultBuckets(), nil)
	h.Observe(0.25)
	h.Observe(0.5)
	h.ObserveDuration(250 * time.Millisecond)
	if got := h.Sum(); got < 0.999 || got > 1.001 {
		t.Errorf("sum = %v, want 1.0", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.9); got != 0 {
		t.Errorf("nil histogram quantile = %v, want 0", got)
	}
	h := newHistogram(DefaultBuckets(), nil)
	if got := h.Quantile(0.9); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}

	// 90 fast observations and 10 slow ones: the p50 estimate must stay
	// near the fast mode and the p99 must land at the slow mode. Bucket
	// interpolation bounds the estimate by the enclosing bucket, so
	// assert bucket-level, not exact, positions.
	for i := 0; i < 90; i++ {
		h.Observe(0.001)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	if got := h.Quantile(0.5); got <= 0 || got > 0.002 {
		t.Errorf("p50 = %v, want within the 1ms bucket", got)
	}
	if got := h.Quantile(0.99); got < 0.4 || got > 0.6 {
		t.Errorf("p99 = %v, want within the 500ms bucket", got)
	}
	// q clamps: q>1 behaves as the max, q<=0 as zero.
	if got := h.Quantile(2); got < 0.4 {
		t.Errorf("q>1 quantile = %v, want max-bucket estimate", got)
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("q=0 quantile = %v, want 0", got)
	}

	// Overflow-only observations clamp to the largest finite bound.
	over := newHistogram(DefaultBuckets(), nil)
	over.Observe(100)
	bounds := DefaultBuckets()
	if got := over.Quantile(0.9); got != bounds[len(bounds)-1] {
		t.Errorf("overflow quantile = %v, want %v", got, bounds[len(bounds)-1])
	}
}

func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				r.Counter(MetricQueryTotal, Labels{"outcome": "ok"}).Inc()
				r.Histogram(MetricQueryDuration, nil).Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter(MetricQueryTotal, Labels{"outcome": "ok"}).Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	h := r.Histogram(MetricQueryDuration, nil)
	if h.Count() != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
	wantSum := float64(workers*perWorker) * 0.001
	if got := h.Sum(); got < wantSum*0.999 || got > wantSum*1.001 {
		t.Errorf("histogram sum = %v, want ~%v", got, wantSum)
	}
}

func TestRegistrySeriesIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter(MetricSourceRetries, Labels{"source": "db_1"})
	b := r.Counter(MetricSourceRetries, Labels{"source": "db_1"})
	c := r.Counter(MetricSourceRetries, Labels{"source": "db_2"})
	if a != b {
		t.Error("same labels returned distinct series")
	}
	if a == c {
		t.Error("different labels shared a series")
	}
	// Mutating the caller's label map must not corrupt the stored series.
	l := Labels{"source": "x"}
	d := r.Counter(MetricSourceRetries, l)
	l["source"] = "y"
	if e := r.Counter(MetricSourceRetries, Labels{"source": "x"}); d != e {
		t.Error("stored labels aliased the caller's map")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter(MetricQueryTotal, nil).Inc()
	r.Counter(MetricQueryTotal, nil).Add(3)
	if r.Counter(MetricQueryTotal, nil).Value() != 0 {
		t.Error("nil counter has a value")
	}
	r.Histogram(MetricQueryDuration, nil).Observe(1)
	if r.Histogram(MetricQueryDuration, nil).Count() != 0 {
		t.Error("nil histogram has a count")
	}
	if r.Names() != nil {
		t.Error("nil registry has names")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Error(err)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter(MetricQueryTotal, Labels{"outcome": "ok"}).Add(7)
	r.Counter(MetricSourceExtractTotal, Labels{"source": `we"ird\src`, "outcome": "error"}).Inc()
	r.Histogram(MetricQueryDuration, nil).Observe(0.0015)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP s2s_query_total ",
		"# TYPE s2s_query_total counter",
		`s2s_query_total{outcome="ok"} 7`,
		"# TYPE s2s_query_duration_seconds histogram",
		`s2s_query_duration_seconds_bucket{le="0.002"} 1`,
		`s2s_query_duration_seconds_bucket{le="+Inf"} 1`,
		"s2s_query_duration_seconds_sum 0.0015",
		"s2s_query_duration_seconds_count 1",
		`s2s_source_extract_total{outcome="error",source="we\"ird\\src"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Cumulative counts must be monotone: the +Inf bucket equals _count.
	if strings.Count(out, "s2s_query_duration_seconds_bucket") == 0 {
		t.Error("no histogram buckets emitted")
	}
}

func TestRegistryNames(t *testing.T) {
	r := NewRegistry()
	r.Counter(MetricQueryTotal, Labels{"outcome": "ok"}).Inc()
	r.Histogram(MetricStageDuration, Labels{"stage": "extract"}).Observe(0.1)
	names := r.Names()
	if len(names) != 2 || names[0] != MetricQueryTotal || names[1] != MetricStageDuration {
		t.Errorf("names = %v", names)
	}
}

func TestDescriptorsCoverConstants(t *testing.T) {
	want := []string{
		MetricQueryTotal, MetricQueryDuration, MetricStageDuration,
		MetricSourceExtractTotal, MetricSourceExtractDuration, MetricSourceRetries,
		MetricCacheLookups, MetricBreakerTrips, MetricInstances,
		MetricPlannerSourcesPruned, MetricPlannerEntriesPruned,
		MetricPlannerPushdownApplied, MetricPlannerMergeFree,
		MetricPlannerSemiJoin, MetricStreamBatches,
		MetricClusterSubqueries, MetricClusterSubqueryDuration,
		MetricClusterHedges, MetricClusterCatalogSyncs, MetricClusterHeartbeats,
	}
	got := MetricNames()
	if len(got) != len(want) {
		t.Fatalf("descriptors = %d, want %d", len(got), len(want))
	}
	index := map[string]bool{}
	for _, n := range got {
		index[n] = true
	}
	for _, n := range want {
		if !index[n] {
			t.Errorf("constant %s missing from Descriptors", n)
		}
	}
	for _, d := range Descriptors() {
		if d.Type != "counter" && d.Type != "histogram" {
			t.Errorf("%s has unknown type %q", d.Name, d.Type)
		}
		if d.Help == "" {
			t.Errorf("%s has no help text", d.Name)
		}
	}
}
