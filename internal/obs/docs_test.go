package obs

import (
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"
)

const docPath = "../../docs/OBSERVABILITY.md"

// TestDocCoversEveryMetric keeps docs/OBSERVABILITY.md and the declared
// metric families in lockstep: every family must be documented, and
// every s2s_* name the document mentions must be a declared family.
func TestDocCoversEveryMetric(t *testing.T) {
	raw, err := os.ReadFile(docPath)
	if err != nil {
		t.Fatalf("read %s: %v", docPath, err)
	}
	doc := string(raw)

	declared := map[string]bool{}
	for _, name := range MetricNames() {
		declared[name] = true
		if !strings.Contains(doc, name) {
			t.Errorf("metric %s is emitted but not documented in %s", name, docPath)
		}
	}

	// Every s2s_* token in the doc must resolve to a declared family
	// (histogram series suffixes _bucket/_sum/_count included).
	mentioned := map[string]bool{}
	for _, tok := range regexp.MustCompile(`s2s_\w+`).FindAllString(doc, -1) {
		name := tok
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); base != name && declared[base] {
				name = base
				break
			}
		}
		if !declared[name] {
			t.Errorf("doc mentions %q, which is not a declared metric family", tok)
		}
		mentioned[name] = true
	}
	if len(mentioned) != len(declared) {
		var missing []string
		for name := range declared {
			if !mentioned[name] {
				missing = append(missing, name)
			}
		}
		sort.Strings(missing)
		t.Errorf("doc never mentions: %v", missing)
	}
}

// TestDocCoversEveryOutcomeValue keeps the documented label values in
// lockstep with the outcome constants the pipeline emits: every outcome
// of every labeled family must appear in docs/OBSERVABILITY.md.
func TestDocCoversEveryOutcomeValue(t *testing.T) {
	raw, err := os.ReadFile(docPath)
	if err != nil {
		t.Fatalf("read %s: %v", docPath, err)
	}
	doc := string(raw)
	families := []struct {
		family   string
		outcomes []string
	}{
		{MetricQueryTotal, QueryOutcomes},
		{MetricSourceExtractTotal, SourceOutcomes},
		{MetricCacheLookups, CacheOutcomes},
		{MetricClusterSubqueries, ClusterSubqueryOutcomes},
		{MetricClusterHedges, ClusterHedgeOutcomes},
		{MetricPlannerMergeFree, MergeFreeOutcomes},
		{MetricPlannerSemiJoin, SemiJoinOutcomes},
	}
	for _, f := range families {
		for _, outcome := range f.outcomes {
			if !strings.Contains(doc, "`"+outcome+"`") {
				t.Errorf("outcome %q of %s is emitted but not documented in %s",
					outcome, f.family, docPath)
			}
		}
	}
}

// TestDocCoversSpanTaxonomy pins the span names the pipeline emits to
// the documented taxonomy.
func TestDocCoversSpanTaxonomy(t *testing.T) {
	raw, err := os.ReadFile(docPath)
	if err != nil {
		t.Fatalf("read %s: %v", docPath, err)
	}
	doc := string(raw)
	for _, name := range []string{
		"`query`", "`http_query`", "`parse_plan`", "`extract`",
		"`extraction_schema`", "`source:<id>`", "`generate`", "`serialize`",
	} {
		if !strings.Contains(doc, name) {
			t.Errorf("span %s missing from %s", name, docPath)
		}
	}
}
