// Package obs is the middleware's observability layer: per-query span
// trees (tracing) and a Prometheus-style metrics registry, both built on
// the standard library only.
//
// # Tracing
//
// A [Tracer] owns a bounded ring buffer of completed traces. A trace is a
// tree of [Span] values describing one query's journey through the
// pipeline: parse_plan → extract → extraction_schema → one source:<id>
// child per contacted data source → generate → serialize. Spans travel
// through the call graph inside a [context.Context], so packages deep in
// the pipeline (extract, instance) emit spans without any API change:
//
//	ctx, root := tracer.StartTrace(ctx, "query") // new root (or child if ctx already traces)
//	...
//	ctx, span := obs.StartSpan(ctx, "extract")   // child of the context span
//	span.SetAttr("sources", "4")
//	span.End()
//	...
//	root.End()                                   // records the finished tree
//
// Every span API is nil-safe: when the context carries no span,
// [StartSpan] returns nil and all methods on a nil *Span are no-ops, so
// instrumented code needs no conditionals.
//
// Federated deployments join traces across processes. An HTTP server
// extracts the caller's trace/span IDs into the context with
// [ContextWithRemote]; the next [Tracer.StartTrace] then adopts the
// remote trace ID and parent span ID instead of minting a new trace, and
// [Span.Adopt] grafts a subtree returned by a remote peer under a local
// span — so a query that fans out across middleware instances reads as
// one connected tree.
//
// # Metrics
//
// A [Registry] holds counters and log-linear latency histograms keyed by
// metric family name plus a small label set (stage, source, outcome).
// Hot-path updates are single atomic adds; family lookup takes a
// read-lock only. The registry travels in the context too
// ([ContextWithMetrics] / [MetricsFromContext]) and, like spans, every
// method is nil-safe. [Registry.WritePrometheus] renders the classic
// text exposition format for a GET /metrics endpoint.
//
// The canonical list of exported metric families lives in
// [Descriptors]; docs/OBSERVABILITY.md documents each one and a test
// keeps the two in sync.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"time"
)

// newID returns a 16-hex-digit random identifier for traces and spans.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unheard of; fall back to a time-derived
		// id rather than panicking in an instrumentation path.
		return hex.EncodeToString([]byte(time.Now().Format("150405.000")))[:16]
	}
	return hex.EncodeToString(b[:])
}

type spanKey struct{}
type metricsKey struct{}
type remoteKey struct{}

// ContextWithSpan returns a context carrying the span. A nil span leaves
// the context unchanged.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the context's active span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan starts a child of the context's active span and returns a
// context carrying it. Without an active span it returns (ctx, nil); all
// methods on the nil span are no-ops.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.StartChild(name)
	return ContextWithSpan(ctx, child), child
}

// StartStage starts a pipeline-stage span and returns a done func that
// ends the span and records the stage's latency in the context metrics
// registry under [MetricStageDuration]. It works — as a pure timer — even
// when the context carries neither span nor registry.
func StartStage(ctx context.Context, stage string) (context.Context, *Span, func()) {
	start := time.Now()
	sctx, span := StartSpan(ctx, stage)
	reg := MetricsFromContext(ctx)
	return sctx, span, func() {
		span.End()
		reg.Histogram(MetricStageDuration, Labels{"stage": stage}).Observe(time.Since(start).Seconds())
	}
}

// ContextWithMetrics returns a context carrying the metrics registry.
func ContextWithMetrics(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, metricsKey{}, r)
}

// MetricsFromContext returns the context's metrics registry, or nil (on
// which every Registry method is a no-op).
func MetricsFromContext(ctx context.Context) *Registry {
	r, _ := ctx.Value(metricsKey{}).(*Registry)
	return r
}

// Remote identifies an in-flight trace started by a remote caller: the
// trace to join and the caller's span to parent under.
type Remote struct {
	TraceID  string
	ParentID string
}

// ContextWithRemote marks the context as part of a remote trace; the
// next [Tracer.StartTrace] joins it instead of minting a new trace ID.
func ContextWithRemote(ctx context.Context, r Remote) context.Context {
	if r.TraceID == "" {
		return ctx
	}
	return context.WithValue(ctx, remoteKey{}, r)
}

// RemoteFromContext returns the remote trace identity, if any.
func RemoteFromContext(ctx context.Context) (Remote, bool) {
	r, ok := ctx.Value(remoteKey{}).(Remote)
	return r, ok
}
