package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestTraceTreeStructure(t *testing.T) {
	tr := NewTracer(4)
	ctx, root := tr.StartTrace(context.Background(), "query")
	if root == nil || root.TraceID == "" || root.ID == "" {
		t.Fatalf("bad root: %+v", root)
	}
	cctx, child := StartSpan(ctx, "extract")
	if child.ParentID != root.ID || child.TraceID != root.TraceID {
		t.Errorf("child not linked: %+v", child)
	}
	_, grand := StartSpan(cctx, "source:db_1")
	if grand.ParentID != child.ID {
		t.Errorf("grandchild parent = %q, want %q", grand.ParentID, child.ID)
	}
	grand.SetAttr("outcome", "ok")
	grand.End()
	child.End()
	if tr.Len() != 0 {
		t.Errorf("trace recorded before root ended")
	}
	root.End()
	got := tr.Last(1)
	if len(got) != 1 || got[0] != root {
		t.Fatalf("Last(1) = %v", got)
	}
	var names []string
	root.Walk(func(s *Span) { names = append(names, s.Name) })
	want := []string{"query", "extract", "source:db_1"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Errorf("walk = %v, want %v", names, want)
	}
}

func TestStartSpanWithoutTraceIsNilSafe(t *testing.T) {
	ctx, span := StartSpan(context.Background(), "orphan")
	if span != nil {
		t.Fatalf("expected nil span, got %+v", span)
	}
	// All methods must be no-ops on nil.
	span.SetAttr("k", "v")
	span.End()
	span.Adopt(nil)
	if c := span.StartChild("x"); c != nil {
		t.Errorf("nil StartChild = %+v", c)
	}
	span.Walk(func(*Span) { t.Error("walk visited nil span") })
	WriteTree(&strings.Builder{}, span)
	if got := SpanFromContext(ctx); got != nil {
		t.Errorf("context gained a span: %+v", got)
	}
	// StartStage must still work as a pure timer.
	_, _, done := StartStage(ctx, "stage")
	done()
}

func TestTracerRingEvictsOldest(t *testing.T) {
	tr := NewTracer(3)
	var roots []*Span
	for i := 0; i < 5; i++ {
		_, root := tr.StartTrace(context.Background(), fmt.Sprintf("q%d", i))
		root.End()
		roots = append(roots, root)
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	got := tr.Last(10)
	if len(got) != 3 || got[0] != roots[4] || got[1] != roots[3] || got[2] != roots[2] {
		t.Errorf("Last order wrong: %v", got)
	}
}

func TestStartTraceJoinsRemote(t *testing.T) {
	tr := NewTracer(2)
	ctx := ContextWithRemote(context.Background(), Remote{TraceID: "tid123", ParentID: "pid456"})
	_, root := tr.StartTrace(ctx, "http_query")
	if root.TraceID != "tid123" || root.ParentID != "pid456" {
		t.Errorf("remote not joined: %+v", root)
	}
}

func TestStartTraceNestsUnderActiveSpan(t *testing.T) {
	outer := NewTracer(2)
	inner := NewTracer(2)
	ctx, root := outer.StartTrace(context.Background(), "http_query")
	_, nested := inner.StartTrace(ctx, "query")
	if nested.TraceID != root.TraceID || nested.ParentID != root.ID {
		t.Errorf("nested trace not joined: %+v", nested)
	}
	nested.End()
	if inner.Len() != 0 {
		t.Errorf("nested span recorded as its own trace")
	}
	root.End()
	if outer.Len() != 1 {
		t.Errorf("outer root not recorded")
	}
}

func TestAdoptGrafts(t *testing.T) {
	tr := NewTracer(2)
	_, local := tr.StartTrace(context.Background(), "client")
	defer local.End()
	remote := &Span{TraceID: local.TraceID, ID: "remote1", Name: "http_query"}
	local.Adopt(remote)
	if remote.ParentID != local.ID {
		t.Errorf("adopted parent = %q, want %q", remote.ParentID, local.ID)
	}
	if len(local.Children) != 1 || local.Children[0] != remote {
		t.Errorf("child not attached")
	}
}

func TestConcurrentChildrenAndAttrs(t *testing.T) {
	tr := NewTracer(2)
	_, root := tr.StartTrace(context.Background(), "query")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := root.StartChild(fmt.Sprintf("source:%d", i))
			c.SetAttr("outcome", "ok")
			c.End()
		}(i)
	}
	wg.Wait()
	root.End()
	if len(root.Children) != 32 {
		t.Errorf("children = %d, want 32", len(root.Children))
	}
}

func TestEndIsIdempotent(t *testing.T) {
	tr := NewTracer(2)
	_, root := tr.StartTrace(context.Background(), "query")
	root.End()
	d := root.Duration
	root.End()
	if root.Duration != d {
		t.Errorf("second End changed duration")
	}
	if tr.Len() != 1 {
		t.Errorf("recorded %d times, want 1", tr.Len())
	}
}

func TestSpanJSONRoundTrip(t *testing.T) {
	tr := NewTracer(2)
	ctx, root := tr.StartTrace(context.Background(), "query")
	_, child := StartSpan(ctx, "extract")
	child.SetAttr("sources", "2")
	child.End()
	root.End()
	data, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	var back Span
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "query" || len(back.Children) != 1 || back.Children[0].Attrs["sources"] != "2" {
		t.Errorf("round trip lost data: %+v", &back)
	}
	if back.TraceID != root.TraceID || back.Children[0].ParentID != root.ID {
		t.Errorf("ids lost: %+v", &back)
	}
}

func TestWriteTreeOutput(t *testing.T) {
	tr := NewTracer(2)
	ctx, root := tr.StartTrace(context.Background(), "query")
	_, child := StartSpan(ctx, "extract")
	child.SetAttr("sources", "4")
	child.End()
	root.End()
	var b strings.Builder
	WriteTree(&b, root)
	out := b.String()
	if !strings.Contains(out, "query ") || !strings.Contains(out, "\n  extract ") {
		t.Errorf("tree output missing spans:\n%s", out)
	}
	if !strings.Contains(out, "sources=4") {
		t.Errorf("tree output missing attrs:\n%s", out)
	}
}
