package instance

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/extract"
)

// TestMalformedNumericValueErrors pins the numeric-comparison error
// path: every malformed extracted value under a numeric condition must
// surface as a SourceError naming both the attribute and the offending
// value, and the instance must be excluded from the match set.
func TestMalformedNumericValueErrors(t *testing.T) {
	malformed := []string{
		"not-a-price", "12.5.3", "12,50", "", "  ", "1e", "$45", "NaN(tag)",
	}
	for _, bad := range malformed {
		t.Run(fmt.Sprintf("value=%q", bad), func(t *testing.T) {
			w := newWorld(t)
			p := plan(t, w.ont, "SELECT product WHERE price < 100")
			rs := &extract.ResultSet{Fragments: []extract.Fragment{
				frag("thing.product.brand", "s", "Seiko"),
				frag("thing.product.price", "s", bad),
			}}
			res, err := w.gen.Generate(p, rs)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Matched) != 0 {
				t.Errorf("matched = %+v, want none", res.Matched)
			}
			if len(res.Errors) != 1 {
				t.Fatalf("errors = %+v, want exactly one", res.Errors)
			}
			msg := res.Errors[0].Err.Error()
			if !strings.Contains(msg, fmt.Sprintf("%q", bad)) {
				t.Errorf("error %q does not name the offending value %q", msg, bad)
			}
			if !strings.Contains(msg, "thing.product.price") {
				t.Errorf("error %q does not name the attribute", msg)
			}
			if !strings.Contains(msg, "is not numeric") {
				t.Errorf("error %q is not the numeric-conversion error", msg)
			}
		})
	}
}

// TestMalformedNumericConstraintErrors pins the other half of the
// numeric error path: a constraint literal that cannot parse as a
// number (a boolean literal against an integer attribute slips through
// plan-time type checking) must report the attribute and the literal.
func TestMalformedNumericConstraintErrors(t *testing.T) {
	w := newWorld(t)
	p := plan(t, w.ont, "SELECT watch WHERE water_resistance = TRUE")
	rs := &extract.ResultSet{Fragments: []extract.Fragment{
		frag("thing.product.brand", "s", "Seiko"),
		frag("thing.product.watch.water_resistance", "s", "100"),
	}}
	res, err := w.gen.Generate(p, rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matched) != 0 {
		t.Errorf("matched = %+v, want none", res.Matched)
	}
	if len(res.Errors) != 1 {
		t.Fatalf("errors = %+v, want exactly one", res.Errors)
	}
	msg := res.Errors[0].Err.Error()
	if !strings.Contains(msg, `constraint "TRUE"`) {
		t.Errorf("error %q does not name the offending constraint literal", msg)
	}
	if !strings.Contains(msg, "thing.product.watch.water_resistance") {
		t.Errorf("error %q does not name the attribute", msg)
	}
}

// TestWellFormedNumericEdgeValues documents which unusual-but-valid
// numeric spellings compare without error (ParseFloat semantics):
// whitespace-padded, signed, exponent, and hex-float forms all parse.
func TestWellFormedNumericEdgeValues(t *testing.T) {
	cases := []struct {
		value string
		want  int // matched instances under price < 100
	}{
		{" 50 ", 1},   // surrounding whitespace is trimmed
		{"+50", 1},    // explicit sign
		{"5e1", 1},    // exponent notation
		{"0x32p0", 1}, // hex float, value 50
		{"150", 0},    // valid but fails the comparison
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("value=%q", c.value), func(t *testing.T) {
			w := newWorld(t)
			p := plan(t, w.ont, "SELECT product WHERE price < 100")
			rs := &extract.ResultSet{Fragments: []extract.Fragment{
				frag("thing.product.brand", "s", "Seiko"),
				frag("thing.product.price", "s", c.value),
			}}
			res, err := w.gen.Generate(p, rs)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Errors) != 0 {
				t.Fatalf("unexpected errors: %+v", res.Errors)
			}
			if len(res.Matched) != c.want {
				t.Errorf("matched = %d, want %d", len(res.Matched), c.want)
			}
		})
	}
}
