package instance

// mux.go is the wire format of the multi-query batch endpoint
// (POST /query/batch): N logical result documents multiplexed over one
// chunked HTTP response body. The format is line-framed so a client can
// demultiplex incrementally:
//
//	=n <count>\n            batch header: how many queries follow
//	=b <i>\n                query i's body begins
//	=c <i> <size>\n<bytes>  one chunk of query i's body, size raw bytes
//	=t <i> k=v k=v ...\n    query i's trailer (values query-escaped)
//
// Frames are tagged with the query index, so the demultiplexer accepts
// any interleaving; the server writes each query's frames contiguously
// in query order. Body bytes inside =c frames are the exact bytes the
// single-query endpoint would produce for the same query and format —
// the batch equivalence suite in internal/core pins that.

import (
	"bufio"
	"fmt"
	"io"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// MuxWriter multiplexes the batch response. Frame writes are serialized
// by a mutex so per-query streams could be fed concurrently; the
// middleware writes them sequentially, which keeps the wire layout
// deterministic.
type MuxWriter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewMuxWriter returns a MuxWriter framing onto w.
func NewMuxWriter(w io.Writer) *MuxWriter {
	return &MuxWriter{w: w}
}

// Header writes the batch header frame announcing n queries.
func (m *MuxWriter) Header(n int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, err := fmt.Fprintf(m.w, "=n %d\n", n)
	return err
}

// Begin writes query i's begin frame.
func (m *MuxWriter) Begin(i int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, err := fmt.Fprintf(m.w, "=b %d\n", i)
	return err
}

// Stream returns the io.Writer for query i's body; every Write becomes
// one chunk frame. Hand it to the chunked serializer so each serialized
// chunk maps to one frame on the wire.
func (m *MuxWriter) Stream(i int) io.Writer {
	return muxStream{m: m, i: i}
}

// Trailer writes query i's trailer frame. Keys are emitted in sorted
// order and values are query-escaped, so any string (error messages
// included) survives the line framing.
func (m *MuxWriter) Trailer(i int, kv map[string]string) error {
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	fmt.Fprintf(&sb, "=t %d", i)
	for _, k := range keys {
		sb.WriteByte(' ')
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(url.QueryEscape(kv[k]))
	}
	sb.WriteByte('\n')
	m.mu.Lock()
	defer m.mu.Unlock()
	_, err := io.WriteString(m.w, sb.String())
	return err
}

type muxStream struct {
	m *MuxWriter
	i int
}

func (s muxStream) Write(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	s.m.mu.Lock()
	defer s.m.mu.Unlock()
	if _, err := fmt.Fprintf(s.m.w, "=c %d %d\n", s.i, len(p)); err != nil {
		return 0, err
	}
	return s.m.w.Write(p)
}

// DemuxedResult is one query's reassembled slice of the batch response.
type DemuxedResult struct {
	// Body is the query's complete serialized result document — the
	// concatenation of its chunk frames.
	Body []byte
	// Trailer carries the query's trailer fields, values unescaped.
	Trailer map[string]string
	// Began reports whether a begin frame arrived for the query; a
	// query that failed before serialization has a trailer but no body.
	Began bool
}

// DemuxBatch reads a complete batch response from r and reassembles the
// per-query results, indexed as the queries were submitted.
func DemuxBatch(r io.Reader) ([]DemuxedResult, error) {
	br := bufio.NewReader(r)
	var results []DemuxedResult
	at := func(i int) (*DemuxedResult, error) {
		if i < 0 {
			return nil, fmt.Errorf("instance: batch frame index %d out of range", i)
		}
		for i >= len(results) {
			results = append(results, DemuxedResult{})
		}
		return &results[i], nil
	}
	for {
		line, err := br.ReadString('\n')
		if err == io.EOF && line == "" {
			return results, nil
		}
		if err != nil {
			return results, fmt.Errorf("instance: reading batch frame: %w", err)
		}
		line = strings.TrimSuffix(line, "\n")
		fields := strings.Split(line, " ")
		if len(fields) < 2 {
			return results, fmt.Errorf("instance: malformed batch frame %q", line)
		}
		idx, err := strconv.Atoi(fields[1])
		if err != nil {
			return results, fmt.Errorf("instance: malformed batch frame index %q", line)
		}
		switch fields[0] {
		case "=n":
			if _, err := at(idx - 1); idx > 0 && err != nil {
				return results, err
			}
		case "=b":
			res, err := at(idx)
			if err != nil {
				return results, err
			}
			res.Began = true
		case "=c":
			if len(fields) != 3 {
				return results, fmt.Errorf("instance: malformed chunk frame %q", line)
			}
			size, err := strconv.Atoi(fields[2])
			if err != nil || size < 0 {
				return results, fmt.Errorf("instance: malformed chunk size %q", line)
			}
			res, err := at(idx)
			if err != nil {
				return results, err
			}
			buf := make([]byte, size)
			if _, err := io.ReadFull(br, buf); err != nil {
				return results, fmt.Errorf("instance: reading %d-byte chunk: %w", size, err)
			}
			res.Body = append(res.Body, buf...)
		case "=t":
			res, err := at(idx)
			if err != nil {
				return results, err
			}
			if res.Trailer == nil {
				res.Trailer = make(map[string]string, len(fields)-2)
			}
			for _, kv := range fields[2:] {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return results, fmt.Errorf("instance: malformed trailer field %q", kv)
				}
				uv, err := url.QueryUnescape(v)
				if err != nil {
					return results, fmt.Errorf("instance: malformed trailer value %q: %w", kv, err)
				}
				res.Trailer[k] = uv
			}
		default:
			return results, fmt.Errorf("instance: unknown batch frame %q", line)
		}
	}
}
