package instance

// streamgen.go is the instance generator's streaming front end: instead
// of one materialized extract.ResultSet, it consumes record-scoped
// fragment batches from an extract.Stream and assembles instances per
// window as batches arrive, releasing each batch before the next one.
// Cross-source key merging, relation linking, the global deterministic
// order, and ID numbering all need every instance, so an ordering
// barrier sits between windowed assembly and the finish pipeline — the
// answer stays byte-identical to the materializing path (docs/STREAMING.md
// walks through why).

import (
	"context"
	"fmt"
	"sort"
	"strconv"

	"repro/internal/extract"
	"repro/internal/obs"
	"repro/internal/s2sql"
)

// streamSourceAcc accumulates one source's windowed assembly output.
// Partition groups are identical in every window (each window carries
// the source's full attribute sequence), so group index gi identifies
// the same lineage group across windows, and appending window instances
// under gi reproduces the materializing group-major instance order.
type streamSourceAcc struct {
	groups [][]*Instance
	errs   []extract.SourceError
}

// GenerateStreamContext is GenerateStream under a "generate" span and
// the context's stage-latency metrics. Note the streaming generate
// stage overlaps extraction: its span starts when consumption starts
// and covers the wait for batches.
func (g *Generator) GenerateStreamContext(ctx context.Context, plan *s2sql.Plan, st *extract.Stream) (*Result, error) {
	return g.GenerateStreamContextOpts(ctx, plan, st, GenOptions{})
}

// GenerateStreamContextOpts is GenerateStreamContext with generation
// options.
func (g *Generator) GenerateStreamContextOpts(ctx context.Context, plan *s2sql.Plan, st *extract.Stream, opts GenOptions) (*Result, error) {
	_, span, done := obs.StartStage(ctx, "generate")
	res, err := g.GenerateStreamOpts(plan, st, opts)
	if err == nil {
		span.SetAttr("matched", strconv.Itoa(len(res.Matched)))
		span.SetAttr("related", strconv.Itoa(len(res.Related)))
	}
	done()
	return res, err
}

// GenerateStream drains the stream, assembling each fragment batch as
// it arrives, then finishes the result exactly like Generate: the
// output is byte-identical to the materializing path for the same
// query. It must be the stream's only consumer.
func (g *Generator) GenerateStream(plan *s2sql.Plan, st *extract.Stream) (*Result, error) {
	return g.GenerateStreamOpts(plan, st, GenOptions{})
}

// GenerateStreamOpts is GenerateStream with generation options. This is
// still the barrier path: even under a merge-free proof it materializes
// the full instance list before returning — GenerateStreamEager is the
// barrier-free alternative — but the proof flag must match the one the
// other paths use so the skipped fingerprint sort agrees everywhere.
func (g *Generator) GenerateStreamOpts(plan *s2sql.Plan, st *extract.Stream, opts GenOptions) (*Result, error) {
	if plan == nil {
		return nil, fmt.Errorf("instance: nil plan")
	}
	if st == nil {
		return nil, fmt.Errorf("instance: nil stream")
	}

	// Windowed assembly: per-batch partition + per-record instances,
	// accumulated per (source, lineage group). Unmapped-attribute errors
	// would repeat identically per window, so only window 0's are kept.
	accs := map[string]*streamSourceAcc{}
	var order []string
	for b := range st.Batches {
		a := accs[b.SourceID]
		if a == nil {
			a = &streamSourceAcc{}
			accs[b.SourceID] = a
			order = append(order, b.SourceID)
		}
		groups, errs := g.partition(b.SourceID, b.Fragments)
		if b.Seq == 0 {
			a.errs = errs
		}
		for gi, grp := range groups {
			if gi >= len(a.groups) {
				a.groups = append(a.groups, nil)
			}
			a.groups[gi] = append(a.groups[gi], grp.instances(b.SourceID)...)
		}
	}

	// The batches channel closed, so the producer's tail is complete.
	tail := st.Tail()
	res := &Result{Plan: plan}
	res.Errors = append(res.Errors, tail.Errors...)
	res.Degraded = append(res.Degraded, tail.Degraded...)
	res.Missing = append(res.Missing, tail.Missing...)

	// Ordering barrier: concatenate per-source instance lists in sorted
	// source order, group-major within a source — the exact order the
	// materializing assemble() produces — then merge, link, and finish.
	sort.Strings(order)
	var all []*Instance
	for _, sourceID := range order {
		a := accs[sourceID]
		res.Errors = append(res.Errors, a.errs...)
		for _, grp := range a.groups {
			all = append(all, grp...)
		}
	}
	all = g.mergeByKey(all)
	g.finish(res, all, opts)
	return res, nil
}
