package instance

import (
	"bytes"
	"context"
	"encoding/json"
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/ontology"
	"repro/internal/owl"
	"repro/internal/rdf"
)

// bufPool recycles the serializers' staging buffers across queries, so
// repeated serialization stops allocating (and growing) a fresh buffer
// per call. Each writer stages its whole document and hands w a single
// Write, same as the strings.Builder code it replaces.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledBuf caps the capacity returned to the pool; one huge result
// must not pin its buffer forever.
const maxPooledBuf = 1 << 20

func getBuf() *bytes.Buffer {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

func putBuf(b *bytes.Buffer) {
	if b.Cap() <= maxPooledBuf {
		bufPool.Put(b)
	}
}

// Format is an output serialization format. OWL (RDF/XML) is the paper's
// primary output; the rest are the adaptable alternatives of §2.6.
type Format int

// Output formats.
const (
	FormatOWL Format = iota + 1
	FormatTurtle
	FormatNTriples
	FormatXML
	FormatJSON
	FormatText
)

func (f Format) String() string {
	switch f {
	case FormatOWL:
		return "owl"
	case FormatTurtle:
		return "turtle"
	case FormatNTriples:
		return "ntriples"
	case FormatXML:
		return "xml"
	case FormatJSON:
		return "json"
	case FormatText:
		return "text"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// ParseFormat resolves a format name.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "owl", "rdfxml", "rdf/xml", "rdf-xml":
		return FormatOWL, nil
	case "turtle", "ttl":
		return FormatTurtle, nil
	case "ntriples", "nt", "n-triples":
		return FormatNTriples, nil
	case "xml":
		return FormatXML, nil
	case "json":
		return FormatJSON, nil
	case "text", "txt", "plain":
		return FormatText, nil
	default:
		return 0, fmt.Errorf("instance: unknown output format %q", s)
	}
}

// ToGraph converts a result into RDF: each instance becomes a named
// individual typed by its class, attribute values become datatype property
// assertions with XSD-typed literals, and links become object property
// assertions. The whole process is driven by the ontology schema, which is
// how the paper's §2.6 keeps the generator ontology-independent.
func (g *Generator) ToGraph(res *Result) (*rdf.Graph, error) {
	graph := rdf.NewGraph()
	iriOf := func(in *Instance) rdf.IRI {
		return g.ont.Base + rdf.IRI(in.ID)
	}
	emit := func(in *Instance) error {
		iri := iriOf(in)
		graph.MustAdd(rdf.T(iri, rdf.RDFType, g.ont.ClassIRI(in.Class)))
		graph.MustAdd(rdf.T(iri, rdf.RDFType, owl.NamedIndividual))
		if g.Provenance {
			for _, src := range in.Sources {
				graph.MustAdd(rdf.T(iri, SourcedFrom, rdf.String(src)))
			}
		}
		ids := make([]string, 0, len(in.Values))
		for id := range in.Values {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			attr, ok := g.ont.Attribute(id)
			if !ok {
				return fmt.Errorf("instance: %s has value for unknown attribute %q", in.ID, id)
			}
			for _, v := range in.Values[id] {
				lit := rdf.Literal{Value: strings.TrimSpace(v)}
				if attr.Datatype != "" && attr.Datatype != rdf.XSDString {
					lit.Datatype = attr.Datatype
				}
				graph.MustAdd(rdf.T(iri, g.ont.AttributeIRI(attr), lit))
			}
		}
		relNames := make([]string, 0, len(in.Links))
		for name := range in.Links {
			relNames = append(relNames, name)
		}
		sort.Strings(relNames)
		for _, name := range relNames {
			rel := findRelation(in.Class, name)
			if rel == nil {
				return fmt.Errorf("instance: %s links through unknown relation %q", in.ID, name)
			}
			for _, target := range in.Links[name] {
				graph.MustAdd(rdf.T(iri, g.ont.RelationIRI(rel), iriOf(target)))
			}
		}
		return nil
	}
	for _, in := range res.Instances() {
		if err := emit(in); err != nil {
			return nil, err
		}
	}
	return graph, nil
}

func findRelation(c *ontology.Class, name string) *ontology.Relation {
	for cur := c; cur != nil; cur = cur.Parent {
		for _, r := range cur.Relations {
			if strings.EqualFold(r.Name, name) {
				return r
			}
		}
	}
	return nil
}

// SerializeContext is Serialize with tracing: it runs under a
// "serialize" span when ctx carries one and records the stage latency in
// the context's metrics registry (see internal/obs).
func (g *Generator) SerializeContext(ctx context.Context, w io.Writer, res *Result, format Format) error {
	_, span, done := obs.StartStage(ctx, "serialize")
	span.SetAttr("format", format.String())
	err := g.Serialize(w, res, format)
	done()
	return err
}

// Serialize writes the result in the requested format. The whole
// document is staged in a pooled buffer and handed to w as one write;
// SerializeChunked is the incremental alternative.
func (g *Generator) Serialize(w io.Writer, res *Result, format Format) error {
	switch format {
	case FormatOWL:
		graph, err := g.ToGraph(res)
		if err != nil {
			return err
		}
		b := getBuf()
		defer putBuf(b)
		if err := owl.WriteRDFXML(b, graph, g.prefixes()); err != nil {
			return err
		}
		if err := writeErrorEpilog(b, res); err != nil {
			return err
		}
		_, err = w.Write(b.Bytes())
		return err
	case FormatTurtle:
		graph, err := g.ToGraph(res)
		if err != nil {
			return err
		}
		return rdf.WriteTurtle(w, graph, g.prefixes())
	case FormatNTriples:
		graph, err := g.ToGraph(res)
		if err != nil {
			return err
		}
		return rdf.WriteNTriples(w, graph)
	case FormatXML:
		return g.writeXML(w, res)
	case FormatJSON:
		return g.writeJSON(w, res)
	case FormatText:
		return g.writeText(w, res)
	default:
		return fmt.Errorf("instance: unknown format %d", int(format))
	}
}

// writeErrorEpilog appends the OWL output's error report: an XML comment
// block after the RDF/XML document naming every source error and stale
// degradation. Comments after the document element are valid XML, so the
// output still parses, but a B2B consumer (or an operator reading the
// file) sees exactly which parts of the answer are missing or stale —
// the paper's §2.6 requirement that the generator "handles the errors
// ... from the extraction phases" surfaced in the primary format. It is
// omitted entirely for clean results.
func writeErrorEpilog(w io.Writer, res *Result) error {
	if len(res.Errors) == 0 && len(res.Degraded) == 0 && len(res.Missing) == 0 {
		return nil
	}
	b := getBuf()
	defer putBuf(b)
	b.WriteString("<!-- s2s:error-report\n")
	for _, e := range res.Errors {
		fmt.Fprintf(b, "  error: %s\n", commentSafe(e.Error()))
	}
	for _, d := range res.Degraded {
		fmt.Fprintf(b, "  degraded: %s\n", commentSafe(d.String()))
	}
	for _, m := range res.Missing {
		fmt.Fprintf(b, "  unmapped: %s\n", commentSafe(m))
	}
	b.WriteString("-->\n")
	_, err := w.Write(b.Bytes())
	return err
}

// commentSafe makes a string legal inside an XML comment ("--" is
// forbidden there).
func commentSafe(s string) string {
	return strings.ReplaceAll(s, "--", "- -")
}

// SerializeString is Serialize into a string.
func (g *Generator) SerializeString(res *Result, format Format) (string, error) {
	var b strings.Builder
	if err := g.Serialize(&b, res, format); err != nil {
		return "", err
	}
	return b.String(), nil
}

// SourcedFrom is the provenance annotation property: it links an instance
// to the IDs of the data sources that contributed its values.
const SourcedFrom rdf.IRI = ontology.S2SNS + "sourcedFrom"

func (g *Generator) prefixes() rdf.PrefixMap {
	p := rdf.DefaultPrefixes()
	p["ont"] = string(g.ont.Base)
	if g.Provenance {
		p["s2s"] = ontology.S2SNS
	}
	return p
}

// stringWriter is the incremental serialization target: bytes.Buffer
// (the pooled staging path) and ChunkedWriter (the streaming path) both
// satisfy it.
type stringWriter interface {
	io.Writer
	io.StringWriter
}

// writeXML emits the plain XML view of §2.6: attribute IDs transform
// directly into an element hierarchy ("transforming the unique identifiers
// of the ontology attributes in a XML format is done naturally").
func (g *Generator) writeXML(w io.Writer, res *Result) error {
	b := getBuf()
	defer putBuf(b)
	if err := g.writeXMLTo(b, res); err != nil {
		return err
	}
	_, err := w.Write(b.Bytes())
	return err
}

// writeXMLTo is writeXML's incremental core: one write per document
// part, one per instance.
func (g *Generator) writeXMLTo(b stringWriter, res *Result) error {
	if _, err := b.WriteString(xml.Header); err != nil {
		return err
	}
	if _, err := b.WriteString("<s2s-result>\n"); err != nil {
		return err
	}
	for _, in := range res.Instances() {
		if err := g.writeInstanceXML(b, in); err != nil {
			return err
		}
	}
	_, err := b.WriteString("</s2s-result>\n")
	return err
}

// writeInstanceXML emits one <instance> element.
func (g *Generator) writeInstanceXML(b stringWriter, in *Instance) error {
	fmt.Fprintf(b, "  <instance id=%q class=%q>\n", in.ID, in.Class.Path())
	ids := make([]string, 0, len(in.Values))
	for id := range in.Values {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		attr, ok := g.ont.Attribute(id)
		if !ok {
			return fmt.Errorf("instance: unknown attribute %q", id)
		}
		for _, v := range in.Values[id] {
			fmt.Fprintf(b, "    <attribute id=%q name=%q>", attr.ID(), attr.Name)
			if err := xml.EscapeText(b, []byte(strings.TrimSpace(v))); err != nil {
				return err
			}
			if _, err := b.WriteString("</attribute>\n"); err != nil {
				return err
			}
		}
	}
	relNames := make([]string, 0, len(in.Links))
	for name := range in.Links {
		relNames = append(relNames, name)
	}
	sort.Strings(relNames)
	for _, name := range relNames {
		for _, t := range in.Links[name] {
			fmt.Fprintf(b, "    <relation name=%q target=%q/>\n", name, t.ID)
		}
	}
	_, err := b.WriteString("  </instance>\n")
	return err
}

// jsonInstance is the JSON projection of an instance.
type jsonInstance struct {
	ID      string              `json:"id"`
	Class   string              `json:"class"`
	Values  map[string][]string `json:"values"`
	Links   map[string][]string `json:"links,omitempty"`
	Sources []string            `json:"sources,omitempty"`
}

// jsonInstanceOf projects one instance; both the materializing and the
// chunked JSON writers use it, so their per-instance bytes agree.
func jsonInstanceOf(in *Instance) jsonInstance {
	ji := jsonInstance{
		ID:      in.ID,
		Class:   in.Class.Path(),
		Values:  in.Values,
		Sources: in.Sources,
	}
	if len(in.Links) > 0 {
		ji.Links = map[string][]string{}
		for name, targets := range in.Links {
			for _, t := range targets {
				ji.Links[name] = append(ji.Links[name], t.ID)
			}
		}
	}
	return ji
}

func (g *Generator) writeJSON(w io.Writer, res *Result) error {
	type payload struct {
		Query    string         `json:"query"`
		Matched  []jsonInstance `json:"matched"`
		Related  []jsonInstance `json:"related,omitempty"`
		Errors   []string       `json:"errors,omitempty"`
		Degraded []string       `json:"degraded,omitempty"`
		Missing  []string       `json:"missing,omitempty"`
	}
	conv := func(ins []*Instance) []jsonInstance {
		out := make([]jsonInstance, 0, len(ins))
		for _, in := range ins {
			out = append(out, jsonInstanceOf(in))
		}
		return out
	}
	p := payload{
		Query:   res.Plan.Query.String(),
		Matched: conv(res.Matched),
		Related: conv(res.Related),
		Missing: res.Missing,
	}
	for _, e := range res.Errors {
		p.Errors = append(p.Errors, e.Error())
	}
	for _, d := range res.Degraded {
		p.Degraded = append(p.Degraded, d.String())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

func (g *Generator) writeText(w io.Writer, res *Result) error {
	b := getBuf()
	defer putBuf(b)
	if err := g.writeTextTo(b, res); err != nil {
		return err
	}
	_, err := w.Write(b.Bytes())
	return err
}

// writeTextTo is writeText's incremental core: header, one instance at a
// time, then the error/degradation/missing epilog lines.
func (g *Generator) writeTextTo(b stringWriter, res *Result) error {
	fmt.Fprintf(b, "query: %s\n", res.Plan.Query.String())
	fmt.Fprintf(b, "matched: %d, related: %d, errors: %d\n", len(res.Matched), len(res.Related), len(res.Errors))
	dump := func(in *Instance) {
		fmt.Fprintf(b, "- %s (%s) from %s\n", in.ID, in.Class.Path(), strings.Join(in.Sources, ", "))
		ids := make([]string, 0, len(in.Values))
		for id := range in.Values {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Fprintf(b, "    %s = %s\n", id, strings.Join(in.Values[id], " | "))
		}
		relNames := make([]string, 0, len(in.Links))
		for name := range in.Links {
			relNames = append(relNames, name)
		}
		sort.Strings(relNames)
		for _, name := range relNames {
			var ids []string
			for _, t := range in.Links[name] {
				ids = append(ids, t.ID)
			}
			fmt.Fprintf(b, "    %s -> %s\n", name, strings.Join(ids, ", "))
		}
	}
	for _, in := range res.Instances() {
		dump(in)
	}
	for _, e := range res.Errors {
		fmt.Fprintf(b, "! %s\n", e.Error())
	}
	for _, d := range res.Degraded {
		fmt.Fprintf(b, "~ %s\n", d.String())
	}
	for _, m := range res.Missing {
		fmt.Fprintf(b, "? unmapped attribute %s\n", m)
	}
	return nil
}
