package instance

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rdf"
	"repro/internal/s2sql"
	"repro/internal/sqllang"
)

// conditionKeys precomputes each condition's lower-cased attribute ID —
// the Values map key — once per query, not once per instance.
func conditionKeys(conds []s2sql.PlannedCondition) []string {
	keys := make([]string, len(conds))
	for i := range conds {
		keys[i] = strings.ToLower(conds[i].Attribute.ID())
	}
	return keys
}

// satisfiesAll reports whether an instance meets every planned condition.
// An instance with no value for a constrained attribute does not match
// (paper §2.5: the result is the products that have brand Seiko AND case
// stainless-steel). keys is conditionKeys(conds).
func satisfiesAll(in *Instance, conds []s2sql.PlannedCondition, keys []string) (bool, error) {
	for i, c := range conds {
		ok, err := satisfies(in, c, keys[i])
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

func satisfies(in *Instance, c s2sql.PlannedCondition, key string) (bool, error) {
	values := in.Values[key]
	if len(values) == 0 {
		return false, nil
	}
	// Multi-valued attributes match existentially.
	for _, v := range values {
		ok, err := compareValue(v, c)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

func compareValue(raw string, c s2sql.PlannedCondition) (bool, error) {
	dt := c.Attribute.Datatype
	numeric := dt == rdf.XSDInteger || dt == rdf.XSDDecimal || dt == rdf.XSDDouble

	if c.Op == s2sql.OpLike {
		return likePatternMatch(raw, c.Value.Text), nil
	}

	if numeric {
		have, err := strconv.ParseFloat(strings.TrimSpace(raw), 64)
		if err != nil {
			return false, fmt.Errorf("instance: extracted value %q for %s is not numeric", raw, c.Attribute.ID())
		}
		want, err := strconv.ParseFloat(c.Value.Text, 64)
		if err != nil {
			return false, fmt.Errorf("instance: constraint %q is not numeric", c.Value.Text)
		}
		switch c.Op {
		case s2sql.OpEq:
			return have == want, nil
		case s2sql.OpNe:
			return have != want, nil
		case s2sql.OpLt:
			return have < want, nil
		case s2sql.OpGt:
			return have > want, nil
		case s2sql.OpLe:
			return have <= want, nil
		case s2sql.OpGe:
			return have >= want, nil
		}
	}

	if dt == rdf.XSDBoolean {
		have := parseBoolish(raw)
		want := parseBoolish(c.Value.Text)
		if c.Value.Kind == sqllang.LitBool {
			want = strings.EqualFold(c.Value.Text, "TRUE")
		}
		switch c.Op {
		case s2sql.OpEq:
			return have == want, nil
		case s2sql.OpNe:
			return have != want, nil
		default:
			return false, fmt.Errorf("instance: operator %s is not defined for boolean attribute %s", c.Op, c.Attribute.ID())
		}
	}

	// String comparison; equality trims surrounding whitespace, which web
	// extraction frequently leaves behind.
	have := strings.TrimSpace(raw)
	want := c.Value.Text
	switch c.Op {
	case s2sql.OpEq:
		return have == want, nil
	case s2sql.OpNe:
		return have != want, nil
	default:
		return false, fmt.Errorf("instance: operator %s is not defined for string attribute %s", c.Op, c.Attribute.ID())
	}
}

func parseBoolish(s string) bool {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "true", "1", "yes", "y":
		return true
	default:
		return false
	}
}

// likePatternMatch implements SQL LIKE (% and _) case-insensitively.
func likePatternMatch(s, pattern string) bool {
	rs, rp := []rune(strings.ToLower(strings.TrimSpace(s))), []rune(strings.ToLower(pattern))
	memo := map[[2]int]bool{}
	var match func(i, j int) bool
	match = func(i, j int) bool {
		if j == len(rp) {
			return i == len(rs)
		}
		key := [2]int{i, j}
		if v, ok := memo[key]; ok {
			return v
		}
		var out bool
		switch rp[j] {
		case '%':
			out = match(i, j+1) || (i < len(rs) && match(i+1, j))
		case '_':
			out = i < len(rs) && match(i+1, j+1)
		default:
			out = i < len(rs) && rs[i] == rp[j] && match(i+1, j+1)
		}
		memo[key] = out
		return out
	}
	return match(0, 0)
}
