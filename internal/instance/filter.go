package instance

import (
	"strings"

	"repro/internal/s2sql"
)

// conditionKeys precomputes each condition's lower-cased attribute ID —
// the Values map key — once per query, not once per instance.
func conditionKeys(conds []s2sql.PlannedCondition) []string {
	keys := make([]string, len(conds))
	for i := range conds {
		keys[i] = strings.ToLower(conds[i].Attribute.ID())
	}
	return keys
}

// satisfiesAll reports whether an instance meets every planned condition.
// An instance with no value for a constrained attribute does not match
// (paper §2.5: the result is the products that have brand Seiko AND case
// stainless-steel). keys is conditionKeys(conds).
//
// This is the residual safety net below the query planner's pushdown
// (internal/planner): even when constraints were already pushed toward
// the sources, every assembled instance is re-checked here, so pushdown
// is an optimization, never a correctness dependency.
func satisfiesAll(in *Instance, conds []s2sql.PlannedCondition, keys []string) (bool, error) {
	for i, c := range conds {
		ok, err := satisfies(in, c, keys[i])
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

func satisfies(in *Instance, c s2sql.PlannedCondition, key string) (bool, error) {
	values := in.Values[key]
	if len(values) == 0 {
		return false, nil
	}
	// Multi-valued attributes match existentially. Value comparison is
	// s2sql.EvalCondition, shared with the planner's pushdown filters.
	for _, v := range values {
		ok, err := s2sql.EvalCondition(v, c)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}
