package instance

// eager.go is the barrier-free streaming path (docs/STREAMING.md,
// "Barrier-free emission"): when the planner proved a query merge-free
// (planner.ProveMergeFree), no instance can merge across fragments, no
// relation can link, and assembly order is the canonical order — so
// there is nothing the ordering barrier waits for. GenerateStreamEager
// fuses generation and serialization: it consumes extraction windows as
// they arrive, filters and numbers each window's instances in canonical
// order, and hands their serialized bytes to the ChunkedWriter as each
// window closes, flushing per window so the first instance reaches the
// wire while slower sources are still extracting.
//
// Canonical order is sources in sorted ID order, records in extraction
// order. Batches of different sources interleave in completion order,
// so the consumer emits the lowest unemitted source directly and
// buffers windows of later sources until every earlier source finished;
// one slow source therefore only delays instances that canonically
// follow its own. Output bytes are identical to the barrier and
// materializing paths (under the same merge-free flag) because all
// three produce the same instances in the same order — the equivalence
// suite in internal/core pins this.
//
// Only the formats whose serialization is instance-incremental stream
// eagerly: JSON (instances precede every tail field of the envelope)
// and XML (no tail fields at all). Text leads with result counts and
// the RDF formats serialize a whole graph, so they keep the barrier —
// the middleware falls back for them, byte-identically.

import (
	"context"
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/extract"
	"repro/internal/obs"
	"repro/internal/s2sql"
)

// EagerFormat reports whether format supports barrier-free emission:
// its serialization writes instances incrementally with nothing ahead
// of them that depends on the complete result.
func EagerFormat(format Format) bool {
	return format == FormatJSON || format == FormatXML
}

// GenerateStreamEagerContext is GenerateStreamEager under a "generate"
// span (annotated eager=true) and the context's stage-latency metrics.
// Generation and serialization are fused on this path, so no separate
// serialize stage is recorded.
func (g *Generator) GenerateStreamEagerContext(ctx context.Context, plan *s2sql.Plan, st *extract.Stream, w io.Writer, format Format, chunkSize int) (*Result, ChunkStats, error) {
	_, span, done := obs.StartStage(ctx, "generate")
	span.SetAttr("eager", "true")
	res, stats, err := g.GenerateStreamEager(plan, st, w, format, chunkSize)
	if err == nil {
		span.SetAttr("matched", strconv.Itoa(len(res.Matched)))
		span.SetAttr("chunks", strconv.Itoa(stats.Chunks))
	}
	done()
	return res, stats, err
}

// GenerateStreamEager consumes st and serializes the result to w in
// bounded chunks as extraction windows close, without the ordering
// barrier. It must only be called for plans the planner proved
// merge-free and for formats EagerFormat accepts; it must be the
// stream's only consumer. The returned Result carries the matched
// instances, errors, and tail diagnostics exactly as the barrier path
// would (the bytes already written to w serialize that same result).
// On error, part of the body may already be on the wire — the caller
// signals completion out of band, as the transport's trailers do.
func (g *Generator) GenerateStreamEager(plan *s2sql.Plan, st *extract.Stream, w io.Writer, format Format, chunkSize int) (*Result, ChunkStats, error) {
	if plan == nil {
		return nil, ChunkStats{}, fmt.Errorf("instance: nil plan")
	}
	if st == nil {
		return nil, ChunkStats{}, fmt.Errorf("instance: nil stream")
	}
	if !EagerFormat(format) {
		// Unblock the producer before failing; nothing was consumed.
		go func() {
			for range st.Batches {
			}
		}()
		return nil, ChunkStats{}, fmt.Errorf("instance: format %s cannot stream barrier-free", format)
	}

	cw := NewChunkedWriter(w, chunkSize)
	res, err := g.consumeEager(plan, st, cw, format)
	if err != nil {
		// Unblock the producer (the batches channel is unbuffered) so it
		// can finish and release its budget, exactly like the barrier
		// path's error drain in core.
		go func() {
			for range st.Batches {
			}
		}()
		return res, cw.Stats(), err
	}
	if err := cw.Flush(); err != nil {
		return res, cw.Stats(), err
	}
	return res, cw.Stats(), nil
}

// consumeEager is the eager consumer loop; on return with err == nil the
// batches channel is fully drained and the document (including its
// tail) is written, possibly with bytes still buffered in cw.
func (g *Generator) consumeEager(plan *s2sql.Plan, st *extract.Stream, cw *ChunkedWriter, format Format) (*Result, error) {
	res := &Result{Plan: plan}
	condKeys := conditionKeys(plan.Conditions)
	counters := map[string]int{}
	var condErrs []extract.SourceError

	// emit filters, numbers, and serializes one window's instances in
	// canonical order, then flushes the window to the wire. Condition
	// evaluation happens here — at emission, never at buffering — so
	// evaluation errors accrue in canonical order too, matching the
	// barrier path's error list byte for byte.
	emit := func(ins []*Instance) error {
		for _, in := range ins {
			if !in.Class.IsA(plan.Class) {
				continue
			}
			ok, err := satisfiesAll(in, plan.Conditions, condKeys)
			if err != nil {
				condErrs = append(condErrs, extract.SourceError{
					SourceID:    strings.Join(in.Sources, ","),
					AttributeID: in.ID,
					Err:         err,
				})
				continue
			}
			if !ok {
				continue
			}
			counters[in.Class.Name]++
			in.ID = in.Class.Name + "_" + strconv.Itoa(counters[in.Class.Name])
			var werr error
			switch format {
			case FormatJSON:
				werr = writeJSONInstance(cw, in, len(res.Matched) == 0)
			case FormatXML:
				werr = g.writeInstanceXML(cw, in)
			}
			if werr != nil {
				return werr
			}
			res.Matched = append(res.Matched, in)
		}
		return cw.Flush()
	}

	switch format {
	case FormatJSON:
		if err := writeJSONHead(cw, res); err != nil {
			return res, err
		}
	case FormatXML:
		if _, err := cw.WriteString(xml.Header); err != nil {
			return res, err
		}
		if _, err := cw.WriteString("<s2s-result>\n"); err != nil {
			return res, err
		}
	}

	// The lowest unemitted source (sources[next]) emits directly; later
	// sources buffer their assembled windows until every earlier source
	// finished. A source's Last batch advances next past it and drains
	// whatever the following sources buffered meanwhile. The merge-free
	// proof guarantees a single lineage group per source, so windows
	// concatenated in sequence order reproduce the barrier path's
	// group-major assembly order exactly.
	sources := st.Sources
	next := 0
	pending := map[string][][]*Instance{}
	finished := map[string]bool{}
	perSrcErrs := map[string][]extract.SourceError{}

	for b := range st.Batches {
		groups, errs := g.partition(b.SourceID, b.Fragments)
		if b.Seq == 0 {
			perSrcErrs[b.SourceID] = errs
		}
		var ins []*Instance
		for _, grp := range groups {
			ins = append(ins, grp.instances(b.SourceID)...)
		}
		if b.Last {
			finished[b.SourceID] = true
		}
		if next < len(sources) && b.SourceID == sources[next] {
			if err := emit(ins); err != nil {
				return res, err
			}
			for next < len(sources) && finished[sources[next]] {
				next++
				if next == len(sources) {
					break
				}
				for _, win := range pending[sources[next]] {
					if err := emit(win); err != nil {
						return res, err
					}
				}
				delete(pending, sources[next])
			}
		} else {
			pending[b.SourceID] = append(pending[b.SourceID], ins)
		}
	}

	// Channel closed: every source is done (a source that never got to
	// run sends nothing and surfaces its error in the tail). Drain any
	// windows still buffered, in canonical order.
	for ; next < len(sources); next++ {
		for _, win := range pending[sources[next]] {
			if err := emit(win); err != nil {
				return res, err
			}
		}
		delete(pending, sources[next])
	}

	// Assemble the error list in the barrier path's order: the tail's
	// sorted per-source errors, then window-0 partition diagnostics in
	// sorted source order, then condition-evaluation errors in canonical
	// instance order.
	tail := st.Tail()
	res.Errors = append(res.Errors, tail.Errors...)
	srcIDs := make([]string, 0, len(perSrcErrs))
	for id := range perSrcErrs {
		srcIDs = append(srcIDs, id)
	}
	sort.Strings(srcIDs)
	for _, id := range srcIDs {
		res.Errors = append(res.Errors, perSrcErrs[id]...)
	}
	res.Errors = append(res.Errors, condErrs...)
	res.Degraded = append(res.Degraded, tail.Degraded...)
	res.Missing = append(res.Missing, tail.Missing...)

	switch format {
	case FormatJSON:
		return res, writeJSONTail(cw, res, len(res.Matched))
	case FormatXML:
		// Merge-free plans cannot link, so Related is empty; the loop
		// keeps the tail structurally identical to writeXMLTo anyway.
		for _, in := range res.Related {
			if err := g.writeInstanceXML(cw, in); err != nil {
				return res, err
			}
		}
		_, err := cw.WriteString("</s2s-result>\n")
		return res, err
	}
	return res, nil
}
