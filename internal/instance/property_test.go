package instance

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/extract"
	"repro/internal/rdf"
)

// fingerprint summarizes a result's matched instances independent of ID
// assignment: sorted class+values signatures.
func fingerprint(res *Result) string {
	var sigs []string
	for _, in := range res.Matched {
		var parts []string
		for id, vs := range in.Values {
			parts = append(parts, id+"="+strings.Join(vs, "|"))
		}
		sort.Strings(parts)
		sigs = append(sigs, in.Class.Path()+"{"+strings.Join(parts, ";")+"}")
	}
	sort.Strings(sigs)
	return strings.Join(sigs, "\n")
}

// genFragments builds a deterministic fragment set from fuzz bytes: up to
// three sources, two attributes each, positional records.
func genFragments(seed []uint8) []extract.Fragment {
	var frags []extract.Fragment
	for s := 0; s < 3; s++ {
		n := 0
		if s < len(seed) {
			n = int(seed[s]) % 6
		}
		if n == 0 {
			continue
		}
		brands := make([]string, n)
		models := make([]string, n)
		for i := 0; i < n; i++ {
			idx := 0
			if s+i+1 < len(seed) {
				idx = int(seed[s+i+1])
			}
			brands[i] = fmt.Sprintf("brand%d", idx%4)
			models[i] = fmt.Sprintf("model%d", idx%3)
		}
		src := fmt.Sprintf("src%d", s)
		frags = append(frags,
			extract.Fragment{AttributeID: "thing.product.brand", SourceID: src, Values: brands},
			extract.Fragment{AttributeID: "thing.product.model", SourceID: src, Values: models},
		)
	}
	return frags
}

// Property: fragment order never affects the generated result.
func TestGenerationPermutationInvariance(t *testing.T) {
	w := newWorld(t)
	p := plan(t, w.ont, "SELECT product")
	f := func(seed []uint8, swaps []uint8) bool {
		frags := genFragments(seed)
		if len(frags) == 0 {
			return true
		}
		base, err := w.gen.Generate(p, &extract.ResultSet{Fragments: frags})
		if err != nil {
			return false
		}
		// Permute.
		shuffled := append([]extract.Fragment{}, frags...)
		for i, s := range swaps {
			a := i % len(shuffled)
			b := int(s) % len(shuffled)
			shuffled[a], shuffled[b] = shuffled[b], shuffled[a]
		}
		again, err := w.gen.Generate(p, &extract.ResultSet{Fragments: shuffled})
		if err != nil {
			return false
		}
		return fingerprint(base) == fingerprint(again)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: adding a condition can only shrink the matched set, and every
// surviving instance satisfies it.
func TestConditionMonotonicity(t *testing.T) {
	w := newWorld(t)
	all := plan(t, w.ont, "SELECT product")
	filtered := plan(t, w.ont, "SELECT product WHERE brand = 'brand1'")
	f := func(seed []uint8) bool {
		frags := genFragments(seed)
		rsAll, err := w.gen.Generate(all, &extract.ResultSet{Fragments: frags})
		if err != nil {
			return false
		}
		rsF, err := w.gen.Generate(filtered, &extract.ResultSet{Fragments: frags})
		if err != nil {
			return false
		}
		if len(rsF.Matched) > len(rsAll.Matched) {
			return false
		}
		for _, in := range rsF.Matched {
			if in.Value("thing.product.brand") != "brand1" {
				return false
			}
		}
		// Count agreement with a direct tally over the raw fragments.
		want := 0
		for _, fr := range frags {
			if fr.AttributeID != "thing.product.brand" {
				continue
			}
			for _, v := range fr.Values {
				if v == "brand1" {
					want++
				}
			}
		}
		return len(rsF.Matched) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: generation is idempotent — running twice over the same inputs
// yields identical IDs, values, and links.
func TestGenerationIdempotence(t *testing.T) {
	w := newWorld(t)
	p := plan(t, w.ont, "SELECT product")
	f := func(seed []uint8) bool {
		frags := genFragments(seed)
		a, err := w.gen.Generate(p, &extract.ResultSet{Fragments: frags})
		if err != nil {
			return false
		}
		b, err := w.gen.Generate(p, &extract.ResultSet{Fragments: frags})
		if err != nil {
			return false
		}
		if len(a.Matched) != len(b.Matched) {
			return false
		}
		for i := range a.Matched {
			if a.Matched[i].ID != b.Matched[i].ID {
				return false
			}
		}
		return fingerprint(a) == fingerprint(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the RDF projection contains exactly one concrete class typing
// per instance plus owl typing, and every value appears as a literal.
func TestGraphProjectionCompleteness(t *testing.T) {
	w := newWorld(t)
	p := plan(t, w.ont, "SELECT product")
	f := func(seed []uint8) bool {
		frags := genFragments(seed)
		res, err := w.gen.Generate(p, &extract.ResultSet{Fragments: frags})
		if err != nil {
			return false
		}
		graph, err := w.gen.ToGraph(res)
		if err != nil {
			return false
		}
		valueCount := 0
		for _, in := range res.Instances() {
			for _, vs := range in.Values {
				valueCount += len(vs)
			}
		}
		literalTriples := 0
		for _, tr := range graph.All() {
			if tr.Object.Kind() == rdf.KindLiteral {
				literalTriples++
			}
		}
		return literalTriples == valueCount
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
