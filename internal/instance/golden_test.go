package instance

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestOWLGolden pins the exact OWL serialization of the paper's worked
// example. Any change to instance numbering, literal typing, prefix
// handling, or RDF/XML layout shows up as a golden diff — the output format
// is a wire contract for B2B consumers, not an implementation detail.
// Regenerate deliberately with: go test ./internal/instance -run Golden -update
func TestOWLGolden(t *testing.T) {
	w := newWorld(t)
	res := paperResult(t, w)
	got, err := w.gen.SerializeString(res, FormatOWL)
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "paper_result.owl", got)

	ttl, err := w.gen.SerializeString(res, FormatTurtle)
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "paper_result.ttl", ttl)

	txt, err := w.gen.SerializeString(res, FormatText)
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "paper_result.txt", txt)
}

func compareGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run with -update to create): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("%s: output drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}
