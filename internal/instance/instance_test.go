package instance

import (
	"strings"
	"testing"

	"repro/internal/datasource"
	"repro/internal/extract"
	"repro/internal/mapping"
	"repro/internal/ontology"
	"repro/internal/owl"
	"repro/internal/rdf"
	"repro/internal/s2sql"
)

// world builds generator fixtures around the paper ontology.
type world struct {
	ont  *ontology.Ontology
	repo *mapping.Repository
	gen  *Generator
}

func newWorld(t *testing.T) *world {
	t.Helper()
	ont := ontology.Paper()
	repo := mapping.NewRepository(ont, datasource.NewRegistry())
	return &world{ont: ont, repo: repo, gen: NewGenerator(ont, repo)}
}

func plan(t *testing.T, ont *ontology.Ontology, q string) *s2sql.Plan {
	t.Helper()
	p, err := s2sql.ParseAndPlan(q, ont)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func frag(attr, source string, values ...string) extract.Fragment {
	return extract.Fragment{AttributeID: attr, SourceID: source, Scenario: mapping.MultiRecord, Values: values}
}

// TestPaperScenario reproduces §2.5 end to end at the generator level: two
// records, one matching brand=Seiko AND case=stainless-steel, provider
// attached, output classes product/watch/provider.
func TestPaperScenario(t *testing.T) {
	w := newWorld(t)
	p := plan(t, w.ont, "SELECT product WHERE brand='Seiko' AND case='stainless-steel'")
	rs := &extract.ResultSet{Fragments: []extract.Fragment{
		frag("thing.product.brand", "DB_ID_45", "Seiko", "Casio"),
		frag("thing.product.watch.case", "DB_ID_45", "stainless-steel", "resin"),
		frag("thing.provider.name", "DB_ID_45", "TimeHouse"),
	}}
	res, err := w.gen.Generate(p, rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matched) != 1 {
		t.Fatalf("matched = %+v", res.Matched)
	}
	m := res.Matched[0]
	if m.Class.Name != "watch" {
		t.Errorf("matched class = %s, want watch (most specific)", m.Class.Name)
	}
	if m.Value("thing.product.brand") != "Seiko" || m.Value("thing.product.watch.case") != "stainless-steel" {
		t.Errorf("matched values = %+v", m.Values)
	}
	// Provider is attached through the relation and listed as related.
	if len(m.Links["hasProvider"]) != 1 {
		t.Fatalf("links = %+v", m.Links)
	}
	if len(res.Related) != 1 || res.Related[0].Class.Name != "provider" {
		t.Fatalf("related = %+v", res.Related)
	}
	if res.Related[0].Value("thing.provider.name") != "TimeHouse" {
		t.Errorf("provider name = %q", res.Related[0].Value("thing.provider.name"))
	}
}

func TestPositionalCorrelation(t *testing.T) {
	w := newWorld(t)
	p := plan(t, w.ont, "SELECT product")
	rs := &extract.ResultSet{Fragments: []extract.Fragment{
		frag("thing.product.brand", "src", "A", "B", "C"),
		frag("thing.product.model", "src", "m1", "m2", "m3"),
	}}
	res, err := w.gen.Generate(p, rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matched) != 3 {
		t.Fatalf("matched = %d", len(res.Matched))
	}
	for _, in := range res.Matched {
		b, m := in.Value("thing.product.brand"), in.Value("thing.product.model")
		want := map[string]string{"A": "m1", "B": "m2", "C": "m3"}
		if want[b] != m {
			t.Errorf("record pairing broken: brand=%s model=%s", b, m)
		}
	}
}

func TestRaggedRecords(t *testing.T) {
	w := newWorld(t)
	p := plan(t, w.ont, "SELECT product")
	rs := &extract.ResultSet{Fragments: []extract.Fragment{
		frag("thing.product.brand", "src", "A", "B"),
		frag("thing.product.model", "src", "m1"), // second record lacks model
	}}
	res, err := w.gen.Generate(p, rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matched) != 2 {
		t.Fatalf("matched = %d", len(res.Matched))
	}
	var withModel, withoutModel int
	for _, in := range res.Matched {
		if in.Value("thing.product.model") == "" {
			withoutModel++
		} else {
			withModel++
		}
	}
	if withModel != 1 || withoutModel != 1 {
		t.Errorf("model distribution = %d/%d", withModel, withoutModel)
	}
}

func TestSeparateLineagesSeparateInstances(t *testing.T) {
	w := newWorld(t)
	p := plan(t, w.ont, "SELECT product")
	rs := &extract.ResultSet{Fragments: []extract.Fragment{
		frag("thing.product.brand", "src", "A"),
		frag("thing.provider.name", "src", "P1"),
	}}
	res, err := w.gen.Generate(p, rs)
	if err != nil {
		t.Fatal(err)
	}
	// One product instance; the provider must NOT merge into it.
	if len(res.Matched) != 1 || res.Matched[0].Class.Name != "product" {
		t.Fatalf("matched = %+v", res.Matched)
	}
	if _, has := res.Matched[0].Values["thing.provider.name"]; has {
		t.Error("provider value leaked into product instance")
	}
	if len(res.Related) != 1 || res.Related[0].Class.Name != "provider" {
		t.Fatalf("related = %+v", res.Related)
	}
}

func TestCrossSourceDistinctWithoutKey(t *testing.T) {
	w := newWorld(t)
	p := plan(t, w.ont, "SELECT product")
	rs := &extract.ResultSet{Fragments: []extract.Fragment{
		frag("thing.product.brand", "s1", "Seiko"),
		frag("thing.product.brand", "s2", "Seiko"),
	}}
	res, err := w.gen.Generate(p, rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matched) != 2 {
		t.Fatalf("matched = %d, want 2 distinct instances", len(res.Matched))
	}
}

func TestCrossSourceMergeWithKey(t *testing.T) {
	w := newWorld(t)
	if err := w.repo.SetClassKey("product", "thing.product.model"); err != nil {
		t.Fatal(err)
	}
	p := plan(t, w.ont, "SELECT product")
	rs := &extract.ResultSet{Fragments: []extract.Fragment{
		frag("thing.product.model", "s1", "F91W"),
		frag("thing.product.brand", "s1", "Casio"),
		frag("thing.product.model", "s2", "F91W"),
		frag("thing.product.price", "s2", "15.0"),
	}}
	res, err := w.gen.Generate(p, rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matched) != 1 {
		t.Fatalf("matched = %+v", res.Matched)
	}
	in := res.Matched[0]
	if in.Value("thing.product.brand") != "Casio" || in.Value("thing.product.price") != "15.0" {
		t.Errorf("merged values = %+v", in.Values)
	}
	if len(in.Sources) != 2 {
		t.Errorf("sources = %v", in.Sources)
	}
}

func TestConditionOperators(t *testing.T) {
	w := newWorld(t)
	rs := &extract.ResultSet{Fragments: []extract.Fragment{
		frag("thing.product.brand", "s", "Seiko", "Casio", "Citizen"),
		frag("thing.product.price", "s", "129.99", "15", "210.5"),
	}}
	cases := []struct {
		query string
		want  int
	}{
		{"SELECT product WHERE price < 100", 1},
		{"SELECT product WHERE price >= 129.99", 2},
		{"SELECT product WHERE price <= 15", 1},
		{"SELECT product WHERE price > 1000", 0},
		{"SELECT product WHERE brand != 'Seiko'", 2},
		{"SELECT product WHERE brand LIKE 'C%'", 2},
		{"SELECT product WHERE brand LIKE '_asio'", 1},
		{"SELECT product WHERE brand = 'Seiko' AND price < 200", 1},
		{"SELECT product WHERE brand = 'Seiko' AND price > 200", 0},
		{"SELECT product", 3},
	}
	for _, c := range cases {
		p := plan(t, w.ont, c.query)
		res, err := w.gen.Generate(p, rs)
		if err != nil {
			t.Errorf("%s: %v", c.query, err)
			continue
		}
		if len(res.Matched) != c.want {
			t.Errorf("%s: matched %d, want %d", c.query, len(res.Matched), c.want)
		}
	}
}

func TestConditionOnMissingValueFails(t *testing.T) {
	w := newWorld(t)
	p := plan(t, w.ont, "SELECT product WHERE case = 'resin'")
	rs := &extract.ResultSet{Fragments: []extract.Fragment{
		frag("thing.product.brand", "s", "Seiko"), // no case value extracted
	}}
	res, err := w.gen.Generate(p, rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matched) != 0 {
		t.Fatalf("matched = %+v", res.Matched)
	}
}

func TestNonNumericValueUnderNumericConditionReportsError(t *testing.T) {
	w := newWorld(t)
	p := plan(t, w.ont, "SELECT product WHERE price < 100")
	rs := &extract.ResultSet{Fragments: []extract.Fragment{
		frag("thing.product.brand", "s", "Seiko"),
		frag("thing.product.price", "s", "not-a-price"),
	}}
	res, err := w.gen.Generate(p, rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matched) != 0 {
		t.Errorf("matched = %+v", res.Matched)
	}
	if len(res.Errors) == 0 {
		t.Error("conversion failure not reported")
	}
}

func TestBooleanConditions(t *testing.T) {
	ont := ontology.MustNew("http://e/#", "bools", "thing")
	if _, err := ont.AddClass("item", "thing"); err != nil {
		t.Fatal(err)
	}
	if _, err := ont.AddAttribute("item", "active", rdf.XSDBoolean); err != nil {
		t.Fatal(err)
	}
	gen := NewGenerator(ont, nil)
	p, err := s2sql.ParseAndPlan("SELECT item WHERE active = TRUE", ont)
	if err != nil {
		t.Fatal(err)
	}
	rs := &extract.ResultSet{Fragments: []extract.Fragment{
		frag("thing.item.active", "s", "true", "false", "1", "no"),
	}}
	res, err := gen.Generate(p, rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matched) != 2 {
		t.Fatalf("matched = %d, want 2", len(res.Matched))
	}
}

func TestErrorsAndMissingPropagate(t *testing.T) {
	w := newWorld(t)
	p := plan(t, w.ont, "SELECT product")
	rs := &extract.ResultSet{
		Fragments: []extract.Fragment{frag("thing.product.brand", "s", "A")},
		Errors:    []extract.SourceError{{SourceID: "dead", Err: strings.NewReader("").UnreadByte()}},
		Missing:   []string{"thing.product.price"},
	}
	// UnreadByte returns a real error; any error value works here.
	res, err := w.gen.Generate(p, rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 1 || len(res.Missing) != 1 {
		t.Errorf("errors/missing = %v / %v", res.Errors, res.Missing)
	}
}

func TestUnknownAttributeFragment(t *testing.T) {
	w := newWorld(t)
	p := plan(t, w.ont, "SELECT product")
	rs := &extract.ResultSet{Fragments: []extract.Fragment{
		frag("thing.product.nosuch", "s", "x"),
	}}
	res, err := w.gen.Generate(p, rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 1 {
		t.Fatalf("errors = %v", res.Errors)
	}
}

func TestDeterministicIDs(t *testing.T) {
	w := newWorld(t)
	p := plan(t, w.ont, "SELECT product")
	rs := &extract.ResultSet{Fragments: []extract.Fragment{
		frag("thing.product.brand", "s", "B", "A"),
	}}
	res1, err := w.gen.Generate(p, rs)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := w.gen.Generate(p, rs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res1.Matched {
		if res1.Matched[i].ID != res2.Matched[i].ID ||
			res1.Matched[i].Value("thing.product.brand") != res2.Matched[i].Value("thing.product.brand") {
			t.Fatalf("nondeterministic generation: %+v vs %+v", res1.Matched[i], res2.Matched[i])
		}
	}
}

func paperResult(t *testing.T, w *world) *Result {
	t.Helper()
	p := plan(t, w.ont, "SELECT product WHERE brand='Seiko' AND case='stainless-steel'")
	rs := &extract.ResultSet{Fragments: []extract.Fragment{
		frag("thing.product.brand", "DB_ID_45", "Seiko", "Casio"),
		frag("thing.product.watch.case", "DB_ID_45", "stainless-steel", "resin"),
		frag("thing.product.price", "DB_ID_45", "129.99", "15"),
		frag("thing.provider.name", "DB_ID_45", "TimeHouse"),
	}}
	res, err := w.gen.Generate(p, rs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestOWLOutput(t *testing.T) {
	w := newWorld(t)
	res := paperResult(t, w)
	out, err := w.gen.SerializeString(res, FormatOWL)
	if err != nil {
		t.Fatal(err)
	}
	// The OWL parses back into RDF with the expected assertions.
	graph, err := owl.ParseRDFXML(strings.NewReader(out))
	if err != nil {
		t.Fatalf("output is not valid RDF/XML: %v\n%s", err, out)
	}
	watchIRI := rdf.IRI(string(ontology.PaperBase) + "watch_1")
	if got := graph.FirstObject(watchIRI, rdf.IRI(string(ontology.PaperBase)+"thing_product_brand")); got == nil {
		t.Errorf("brand assertion missing:\n%s", out)
	}
	types := graph.Objects(watchIRI, rdf.RDFType)
	if len(types) != 2 {
		t.Errorf("types = %v", types)
	}
	// Relation assertion present.
	if got := graph.Objects(watchIRI, rdf.IRI(string(ontology.PaperBase)+"product_hasProvider")); len(got) != 1 {
		t.Errorf("hasProvider = %v", got)
	}
	// Typed literal for price.
	priceObj := graph.FirstObject(watchIRI, rdf.IRI(string(ontology.PaperBase)+"thing_product_price"))
	if lit, ok := priceObj.(rdf.Literal); !ok || lit.Datatype != rdf.XSDDecimal {
		t.Errorf("price literal = %v", priceObj)
	}
}

func TestTurtleAndNTriplesOutputs(t *testing.T) {
	w := newWorld(t)
	res := paperResult(t, w)
	ttl, err := w.gen.SerializeString(res, FormatTurtle)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rdf.ParseTurtle(strings.NewReader(ttl)); err != nil {
		t.Errorf("turtle output unparseable: %v\n%s", err, ttl)
	}
	nt, err := w.gen.SerializeString(res, FormatNTriples)
	if err != nil {
		t.Fatal(err)
	}
	ntGraph, err := rdf.ParseNTriples(strings.NewReader(nt))
	if err != nil {
		t.Fatalf("ntriples output unparseable: %v", err)
	}
	ttlGraph, _ := rdf.ParseTurtle(strings.NewReader(ttl))
	if !ntGraph.Equal(ttlGraph) {
		t.Error("turtle and ntriples outputs disagree")
	}
}

func TestXMLJSONTextOutputs(t *testing.T) {
	w := newWorld(t)
	res := paperResult(t, w)
	xmlOut, err := w.gen.SerializeString(res, FormatXML)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`class="thing.product.watch"`, `id="thing.product.brand"`, "Seiko", `<relation name="hasProvider" target="provider_1"/>`} {
		if !strings.Contains(xmlOut, want) {
			t.Errorf("xml output missing %q:\n%s", want, xmlOut)
		}
	}
	jsonOut, err := w.gen.SerializeString(res, FormatJSON)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"query"`, `"watch_1"`, `"TimeHouse"`} {
		if !strings.Contains(jsonOut, want) {
			t.Errorf("json output missing %q:\n%s", want, jsonOut)
		}
	}
	textOut, err := w.gen.SerializeString(res, FormatText)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(textOut, "matched: 1") || !strings.Contains(textOut, "hasProvider -> provider_1") {
		t.Errorf("text output:\n%s", textOut)
	}
}

func TestProvenanceAnnotations(t *testing.T) {
	w := newWorld(t)
	w.gen.Provenance = true
	res := paperResult(t, w)
	graph, err := w.gen.ToGraph(res)
	if err != nil {
		t.Fatal(err)
	}
	watchIRI := rdf.IRI(string(ontology.PaperBase) + "watch_1")
	provs := graph.Objects(watchIRI, SourcedFrom)
	if len(provs) != 1 {
		t.Fatalf("provenance triples = %v", provs)
	}
	if lit, ok := provs[0].(rdf.Literal); !ok || lit.Value != "DB_ID_45" {
		t.Errorf("provenance = %v", provs[0])
	}
	// Provenance rides through OWL serialization.
	out, err := w.gen.SerializeString(res, FormatOWL)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sourcedFrom") || !strings.Contains(out, "DB_ID_45") {
		t.Errorf("OWL output lacks provenance:\n%.400s", out)
	}
	// Disabled by default.
	w.gen.Provenance = false
	graph2, err := w.gen.ToGraph(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(graph2.Match(nil, SourcedFrom, nil)) != 0 {
		t.Error("provenance emitted when disabled")
	}
}

func TestParseFormat(t *testing.T) {
	for s, want := range map[string]Format{
		"owl": FormatOWL, "TTL": FormatTurtle, "nt": FormatNTriples,
		"xml": FormatXML, "json": FormatJSON, "plain": FormatText,
	} {
		got, err := ParseFormat(s)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseFormat("yaml"); err == nil {
		t.Error("unknown format parsed")
	}
	for _, f := range []Format{FormatOWL, FormatTurtle, FormatNTriples, FormatXML, FormatJSON, FormatText} {
		if strings.Contains(f.String(), "Format(") {
			t.Errorf("missing name for format %d", int(f))
		}
	}
}

// TestOntologyIndependence is the §2.6 property: the generator works for
// any ontology + consistent fragments, and its output re-validates against
// the ontology (every asserted class and property is declared).
func TestOntologyIndependence(t *testing.T) {
	ont := ontology.MustNew("http://other.example/ns#", "books", "entity")
	for _, c := range []struct{ name, parent string }{
		{"publication", "entity"}, {"book", "publication"}, {"author", "entity"},
	} {
		if _, err := ont.AddClass(c.name, c.parent); err != nil {
			t.Fatal(err)
		}
	}
	for _, a := range []struct{ class, name string }{
		{"publication", "title"}, {"book", "isbn"}, {"author", "name"},
	} {
		if _, err := ont.AddAttribute(a.class, a.name, rdf.XSDString); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ont.AddRelation("publication", "writtenBy", "author"); err != nil {
		t.Fatal(err)
	}
	gen := NewGenerator(ont, nil)
	p, err := s2sql.ParseAndPlan("SELECT publication WHERE title = 'Dune'", ont)
	if err != nil {
		t.Fatal(err)
	}
	rs := &extract.ResultSet{Fragments: []extract.Fragment{
		frag("entity.publication.title", "lib", "Dune", "Other"),
		frag("entity.publication.book.isbn", "lib", "9780441013593", "x"),
		frag("entity.author.name", "lib", "Frank Herbert"),
	}}
	res, err := gen.Generate(p, rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matched) != 1 || res.Matched[0].Class.Name != "book" {
		t.Fatalf("matched = %+v", res.Matched)
	}
	graph, err := gen.ToGraph(res)
	if err != nil {
		t.Fatal(err)
	}
	schema := ont.ToGraph()
	for _, tr := range graph.All() {
		pred, ok := tr.Predicate.(rdf.IRI)
		if !ok || pred == rdf.RDFType {
			continue
		}
		if len(schema.Match(pred, rdf.RDFType, nil)) == 0 {
			t.Errorf("output uses undeclared property %s", pred)
		}
	}
}
