// Package instance implements the S2S Instance Generator (paper §2.6): it
// compiles the raw data fragments the extractor produced into ontology
// instances, applies the query's constraints, reports extraction errors,
// and serializes the result — OWL (RDF/XML) first, with Turtle, N-Triples,
// plain XML, JSON, and text as the "other outputs [that] can easily be
// adapted" the paper mentions.
//
// Assembly semantics (the paper leaves them informal; these are the rules
// this implementation commits to):
//
//   - Values of different attributes extracted from the same source
//     correlate by position: the i-th value of each attribute belongs to
//     the i-th record (the n-record scenario of §2.3).
//   - Within one source, attributes are partitioned by class lineage: a
//     brand (product) column and a case (watch) column describe the same
//     watch records, while provider attributes from that source form their
//     own records. Each record's class is the most specific class in its
//     partition.
//   - Across sources, instances of a class merge only when the mapping
//     repository declares a class key and the key values are equal;
//     otherwise sources contribute distinct instances (autonomous sources
//     may describe different individuals).
//   - Relation links attach same-source target instances first; failing
//     that, a unique target instance overall is linked (the paper's
//     single-provider example).
package instance

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/extract"
	"repro/internal/mapping"
	"repro/internal/obs"
	"repro/internal/ontology"
	"repro/internal/s2sql"
)

// Instance is one generated ontology individual.
type Instance struct {
	// ID is a deterministic local identifier, e.g. "watch_1".
	ID string
	// Class is the instance's (most specific) ontology class.
	Class *ontology.Class
	// Values maps attribute IDs to extracted values in record order.
	Values map[string][]string
	// Links maps relation names to linked instances.
	Links map[string][]*Instance
	// Sources lists the data source IDs that contributed values.
	Sources []string

	// orderMemo caches the deterministic ordering key. Valid because
	// Values and Sources are immutable once cross-source merging is done,
	// and every sort happens after that; an instance may be sorted
	// several times per query (relation linking plus final ordering).
	orderMemo string
}

// Value returns the first value of an attribute, or "".
func (in *Instance) Value(attributeID string) string {
	vs := in.Values[strings.ToLower(attributeID)]
	if len(vs) == 0 {
		return ""
	}
	return vs[0]
}

// addSource records a contributing source once.
func (in *Instance) addSource(id string) {
	for _, s := range in.Sources {
		if s == id {
			return
		}
	}
	in.Sources = append(in.Sources, id)
	sort.Strings(in.Sources)
}

// Result is the instance generator's output for one query.
type Result struct {
	// Plan is the query plan the result answers.
	Plan *s2sql.Plan
	// Matched are the instances of the queried class (or subclasses) that
	// satisfy every condition, in deterministic order.
	Matched []*Instance
	// Related are instances of other output classes reachable from Matched
	// through relation links (paper §2.5: the output carries the associated
	// classes).
	Related []*Instance
	// Errors carries extraction and conversion failures (the instance
	// generator "handles the errors from the queries and from the
	// extraction phases", §2.6).
	Errors []extract.SourceError
	// Degraded records values served stale from the rule cache after the
	// live source failed; consumers see which fragments are degraded and
	// how old they are.
	Degraded []extract.Degradation
	// Missing lists attributes in the plan that had no mapping.
	Missing []string
}

// Instances returns matched and related instances, matched first.
func (r *Result) Instances() []*Instance {
	out := make([]*Instance, 0, len(r.Matched)+len(r.Related))
	out = append(out, r.Matched...)
	return append(out, r.Related...)
}

// GenOptions tunes one generation run.
type GenOptions struct {
	// MergeFree declares that the planner proved the query merge-free
	// (planner.ProveMergeFree): no class-key merging, no relation
	// linking, and a single lineage group per source. The generator then
	// keeps its deterministic assembly order — sources in sorted ID
	// order, records in extraction order — as the canonical order
	// instead of running the fingerprint sort, which is what lets the
	// streaming path emit instances before extraction finishes
	// (GenerateStreamEager). Every path answering the same catalog state
	// must agree on this flag, or their outputs diverge; the middleware
	// caches the verdict next to the query plan for exactly that reason.
	MergeFree bool
}

// Generator assembles extraction results into ontology instances.
type Generator struct {
	ont  *ontology.Ontology
	repo *mapping.Repository

	// Provenance, when set, annotates every RDF-serialized instance with
	// s2s:sourcedFrom statements naming its contributing data sources —
	// lineage a B2B consumer can audit.
	Provenance bool
}

// NewGenerator builds a generator over an ontology and its mapping
// repository (used for class keys).
func NewGenerator(ont *ontology.Ontology, repo *mapping.Repository) *Generator {
	return &Generator{ont: ont, repo: repo}
}

// GenerateContext is Generate with tracing: it runs under a "generate"
// span when ctx carries one and records the stage latency in the
// context's metrics registry (see internal/obs). It is the entry point
// the middleware's query path uses.
func (g *Generator) GenerateContext(ctx context.Context, plan *s2sql.Plan, rs *extract.ResultSet) (*Result, error) {
	return g.GenerateContextOpts(ctx, plan, rs, GenOptions{})
}

// GenerateContextOpts is GenerateContext with generation options.
func (g *Generator) GenerateContextOpts(ctx context.Context, plan *s2sql.Plan, rs *extract.ResultSet, opts GenOptions) (*Result, error) {
	_, span, done := obs.StartStage(ctx, "generate")
	res, err := g.GenerateOpts(plan, rs, opts)
	if err == nil {
		span.SetAttr("matched", strconv.Itoa(len(res.Matched)))
		span.SetAttr("related", strconv.Itoa(len(res.Related)))
	}
	done()
	return res, err
}

// Generate compiles raw fragments into instances and applies the plan's
// conditions.
func (g *Generator) Generate(plan *s2sql.Plan, rs *extract.ResultSet) (*Result, error) {
	return g.GenerateOpts(plan, rs, GenOptions{})
}

// GenerateOpts is Generate with generation options.
func (g *Generator) GenerateOpts(plan *s2sql.Plan, rs *extract.ResultSet, opts GenOptions) (*Result, error) {
	if plan == nil {
		return nil, fmt.Errorf("instance: nil plan")
	}
	res := &Result{Plan: plan}
	if rs != nil {
		res.Errors = append(res.Errors, rs.Errors...)
		res.Degraded = append(res.Degraded, rs.Degraded...)
		res.Missing = append(res.Missing, rs.Missing...)
	}

	all, errs := g.assemble(rs)
	res.Errors = append(res.Errors, errs...)
	g.finish(res, all, opts)
	return res, nil
}

// finish runs everything after assembly — relation linking, the
// matched/related partition under the plan's conditions, deterministic
// ordering, and ID numbering. Both the materializing path (Generate)
// and the streaming path (GenerateStream) funnel through it, which is
// what keeps their outputs byte-identical. Under a merge-free proof
// (GenOptions.MergeFree) the fingerprint sort is skipped: assembly
// order — which every path reproduces — is already canonical, and the
// eager streaming path (GenerateStreamEager) numbers and emits in that
// same order.
func (g *Generator) finish(res *Result, all []*Instance, opts GenOptions) {
	plan := res.Plan
	g.link(all)

	// Partition into matched (queried class, conditions hold) and the rest.
	condKeys := conditionKeys(plan.Conditions)
	var others []*Instance
	for _, in := range all {
		if in.Class.IsA(plan.Class) {
			ok, err := satisfiesAll(in, plan.Conditions, condKeys)
			if err != nil {
				res.Errors = append(res.Errors, extract.SourceError{
					SourceID:    strings.Join(in.Sources, ","),
					AttributeID: in.ID,
					Err:         err,
				})
				continue
			}
			if ok {
				res.Matched = append(res.Matched, in)
				continue
			}
		}
		others = append(others, in)
	}

	// Related instances: reachable from matched via links.
	reachable := map[*Instance]bool{}
	var walk func(in *Instance)
	walk = func(in *Instance) {
		for _, targets := range in.Links {
			for _, t := range targets {
				if !reachable[t] {
					reachable[t] = true
					walk(t)
				}
			}
		}
	}
	matchedSet := map[*Instance]bool{}
	for _, in := range res.Matched {
		matchedSet[in] = true
		walk(in)
	}
	for _, in := range others {
		if reachable[in] && !matchedSet[in] {
			res.Related = append(res.Related, in)
		}
	}

	if !opts.MergeFree {
		sortInstances(res.Matched)
		sortInstances(res.Related)
	}
	g.number(res)
}

// assemble builds instances from fragments source by source.
func (g *Generator) assemble(rs *extract.ResultSet) ([]*Instance, []extract.SourceError) {
	if rs == nil {
		return nil, nil
	}
	var errs []extract.SourceError

	// Group fragments by source. Extraction emits each source's fragments
	// as one contiguous run, so the common case aliases a capacity-capped
	// subslice of rs.Fragments instead of copying; a source split across
	// runs falls back to append (which copies, thanks to the capped cap).
	bySource := map[string][]extract.Fragment{}
	var sourceOrder []string
	fs := rs.Fragments
	for start := 0; start < len(fs); {
		end := start + 1
		for end < len(fs) && fs[end].SourceID == fs[start].SourceID {
			end++
		}
		id := fs[start].SourceID
		if existing, ok := bySource[id]; ok {
			bySource[id] = append(existing, fs[start:end]...)
		} else {
			sourceOrder = append(sourceOrder, id)
			bySource[id] = fs[start:end:end]
		}
		start = end
	}
	sort.Strings(sourceOrder)

	var all []*Instance
	for _, sourceID := range sourceOrder {
		frags := bySource[sourceID]
		groups, groupErrs := g.partition(sourceID, frags)
		errs = append(errs, groupErrs...)
		for _, grp := range groups {
			all = append(all, grp.instances(sourceID)...)
		}
	}

	// Merge across sources by class key.
	return g.mergeByKey(all), errs
}

// lineageGroup is a set of fragments whose attribute classes lie on one
// root-to-leaf chain; they describe the same records.
type lineageGroup struct {
	class *ontology.Class // most specific class
	frags []extract.Fragment
}

// partition splits one source's fragments into lineage groups.
func (g *Generator) partition(sourceID string, frags []extract.Fragment) ([]*lineageGroup, []extract.SourceError) {
	var groups []*lineageGroup
	var errs []extract.SourceError
	for _, f := range frags {
		attr, ok := g.ont.Attribute(f.AttributeID)
		if !ok {
			errs = append(errs, extract.SourceError{
				SourceID:    sourceID,
				AttributeID: f.AttributeID,
				Err:         fmt.Errorf("instance: extracted attribute is not in the ontology"),
			})
			continue
		}
		cls := attr.Class
		placed := false
		for _, grp := range groups {
			switch {
			case cls.IsA(grp.class):
				// Same class or a descendant: the group's class deepens to
				// the most specific one.
				grp.frags = append(grp.frags, f)
				grp.class = cls
				placed = true
			case grp.class.IsA(cls):
				// An ancestor attribute (e.g. product.brand joining a watch
				// group): the group's class stays the deeper one.
				grp.frags = append(grp.frags, f)
				placed = true
			}
			if placed {
				break
			}
		}
		if !placed {
			groups = append(groups, &lineageGroup{class: cls, frags: []extract.Fragment{f}})
		}
	}
	return groups, errs
}

// instances expands a lineage group into per-record instances using
// positional correlation.
func (grp *lineageGroup) instances(sourceID string) []*Instance {
	records := 0
	for _, f := range grp.frags {
		if len(f.Values) > records {
			records = len(f.Values)
		}
	}
	// Attribute keys lower-case once per group, not once per value; Links
	// maps allocate lazily in link() since most instances have none.
	// Groups almost always carry distinct attributes, in which case the
	// per-value existence lookup below is skipped entirely.
	keys := make([]string, len(grp.frags))
	unique := true
	for j, f := range grp.frags {
		keys[j] = strings.ToLower(f.AttributeID)
		for k := 0; k < j; k++ {
			if keys[k] == keys[j] {
				unique = false
			}
		}
	}
	// One arena allocation for the whole record batch, and one shared
	// Sources slice: it is immutable here (cap == len, so addSource's
	// append during cross-source merging copies before writing).
	sources := []string{sourceID}
	arena := make([]Instance, records)
	out := make([]*Instance, 0, records)
	for i := 0; i < records; i++ {
		in := &arena[i]
		in.Class = grp.class
		in.Values = make(map[string][]string, len(grp.frags))
		in.Sources = sources
		for j, f := range grp.frags {
			if i >= len(f.Values) {
				continue
			}
			// Alias a capacity-capped subslice of the fragment instead of
			// allocating a one-element slice per value; the cap keeps any
			// later append from writing into the fragment (or the rule
			// cache behind it).
			if unique {
				in.Values[keys[j]] = f.Values[i : i+1 : i+1]
				continue
			}
			if vs, ok := in.Values[keys[j]]; ok {
				in.Values[keys[j]] = append(vs, f.Values[i])
			} else {
				in.Values[keys[j]] = f.Values[i : i+1 : i+1]
			}
		}
		out = append(out, in)
	}
	return out
}

// mergeByKey merges instances of a class when the mapping repository
// declares a key attribute and key values match.
func (g *Generator) mergeByKey(all []*Instance) []*Instance {
	if g.repo == nil {
		return all
	}
	// One snapshot instead of a repository lock round-trip per instance;
	// no declared keys means nothing can merge.
	keys := g.repo.ClassKeys()
	if len(keys) == 0 {
		return all
	}
	keyAttrOf := make(map[*ontology.Class]string, 4)
	byKey := map[string]*Instance{}
	var out []*Instance
	for _, in := range all {
		keyAttr, ok := keyAttrOf[in.Class]
		if !ok {
			keyAttr = keys[strings.ToLower(in.Class.Name)]
			keyAttrOf[in.Class] = keyAttr
		}
		if keyAttr == "" {
			out = append(out, in)
			continue
		}
		keyVal := in.Value(keyAttr)
		if keyVal == "" {
			out = append(out, in)
			continue
		}
		mapKey := strings.ToLower(in.Class.Name) + "\x00" + keyVal
		if existing, ok := byKey[mapKey]; ok {
			for attr, vs := range in.Values {
				if len(existing.Values[attr]) == 0 {
					existing.Values[attr] = vs
				}
			}
			for _, s := range in.Sources {
				existing.addSource(s)
			}
			continue
		}
		byKey[mapKey] = in
		out = append(out, in)
	}
	return out
}

// link attaches relation targets: same-source instances first, then a
// globally unique target.
func (g *Generator) link(all []*Instance) {
	byClass := map[*ontology.Class][]*Instance{}
	for _, in := range all {
		byClass[in.Class] = append(byClass[in.Class], in)
	}
	// Instances of a class also count as instances of its ancestors; the
	// per-target-class result is cached, since link runs once per instance.
	cache := map[*ontology.Class][]*Instance{}
	instancesOf := func(c *ontology.Class) []*Instance {
		if got, ok := cache[c]; ok {
			return got
		}
		var out []*Instance
		for cls, ins := range byClass {
			if cls.IsA(c) {
				out = append(out, ins...)
			}
		}
		sortInstances(out)
		cache[c] = out
		return out
	}

	// Relations visible on a class (own + inherited) are the same for
	// every instance of that class; resolve once per class.
	relsCache := map[*ontology.Class][]*ontology.Relation{}
	relsOf := func(c *ontology.Class) []*ontology.Relation {
		if got, ok := relsCache[c]; ok {
			return got
		}
		var rels []*ontology.Relation
		for p := c; p != nil; p = p.Parent {
			rels = append(rels, p.Relations...)
		}
		relsCache[c] = rels
		return rels
	}

	// Targets of a relation grouped by contributing source, in target
	// order. Single-source instances that are not themselves targets
	// share the grouped slice directly instead of building their own.
	bySourceCache := map[*ontology.Class]map[string][]*Instance{}
	targetsBySource := func(c *ontology.Class) map[string][]*Instance {
		if got, ok := bySourceCache[c]; ok {
			return got
		}
		m := map[string][]*Instance{}
		for _, t := range instancesOf(c) {
			for _, s := range t.Sources {
				m[s] = append(m[s], t)
			}
		}
		bySourceCache[c] = m
		return m
	}

	// Single-source instances of one class compute identical link sets
	// unless the instance is itself among the candidate targets; those
	// identical sets share one Links map — safe because Links are
	// read-only once link returns. The per-instance map allocation was
	// the single largest line in the generation allocation profile.
	type classSource struct {
		class  *ontology.Class
		source string
	}
	linksShared := map[classSource]map[string][]*Instance{}
	var chosenScratch [][]*Instance

	for _, in := range all {
		rels := relsOf(in.Class)
		if len(rels) == 0 {
			continue
		}
		chosenByRel := chosenScratch[:0]
		shareable := len(in.Sources) == 1
		nonEmpty := 0
		for _, r := range rels {
			targets := instancesOf(r.To)
			var chosen []*Instance
			if len(targets) > 0 {
				if len(in.Sources) == 1 {
					// Fast path: same-source targets are precomputed in
					// target order; when the instance is not among them the
					// slice is shared as-is, allocation-free.
					cand := targetsBySource(r.To)[in.Sources[0]]
					self := -1
					for i, t := range cand {
						if t == in {
							self = i
							break
						}
					}
					switch {
					case self < 0:
						chosen = cand
					case len(cand) > 1:
						shareable = false
						chosen = make([]*Instance, 0, len(cand)-1)
						chosen = append(append(chosen, cand[:self]...), cand[self+1:]...)
					default:
						shareable = false
					}
				} else {
					// Count first, then allocate exactly once: incremental
					// append growth was a measurable share of generation
					// allocations.
					n := 0
					for _, t := range targets {
						if t != in && shareSource(in, t) {
							n++
						}
					}
					if n > 0 {
						chosen = make([]*Instance, 0, n)
						for _, t := range targets {
							if t != in && shareSource(in, t) {
								chosen = append(chosen, t)
							}
						}
					}
				}
				if len(chosen) == 0 && len(targets) == 1 {
					if targets[0] != in {
						chosen = targets
					} else {
						shareable = false
					}
				}
			}
			chosenByRel = append(chosenByRel, chosen)
			if len(chosen) > 0 {
				nonEmpty++
			}
		}
		chosenScratch = chosenByRel
		if nonEmpty == 0 {
			continue
		}
		if shareable {
			if m, ok := linksShared[classSource{in.Class, in.Sources[0]}]; ok {
				in.Links = m
				continue
			}
		}
		m := make(map[string][]*Instance, nonEmpty)
		for i, r := range rels {
			if len(chosenByRel[i]) > 0 {
				m[r.Name] = chosenByRel[i]
			}
		}
		in.Links = m
		if shareable {
			linksShared[classSource{in.Class, in.Sources[0]}] = m
		}
	}
}

func shareSource(a, b *Instance) bool {
	for _, sa := range a.Sources {
		for _, sb := range b.Sources {
			if sa == sb {
				return true
			}
		}
	}
	return false
}

// sortInstances orders deterministically: by class path, then value
// fingerprint, then source list. Keys are precomputed; rebuilding them per
// comparison made large-result sorting the pipeline's hot spot.
func sortInstances(ins []*Instance) {
	s := &instanceSort{ins: ins, keys: make([]string, len(ins))}
	for i, in := range ins {
		s.keys[i] = in.orderKey()
	}
	sort.Stable(s)
}

// orderKey returns the instance's full ordering key, computed once (see
// orderMemo).
func (in *Instance) orderKey() string {
	if in.orderMemo == "" {
		in.orderMemo = in.Class.Path() + "\x00" + in.sortKey() + "\x00" + strings.Join(in.Sources, ",")
	}
	return in.orderMemo
}

type instanceSort struct {
	ins  []*Instance
	keys []string
}

func (s *instanceSort) Len() int           { return len(s.ins) }
func (s *instanceSort) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *instanceSort) Swap(i, j int) {
	s.ins[i], s.ins[j] = s.ins[j], s.ins[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

func (in *Instance) sortKey() string {
	ids := make([]string, 0, len(in.Values))
	for id := range in.Values {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var b strings.Builder
	for _, id := range ids {
		b.WriteString(id)
		b.WriteByte('=')
		b.WriteString(strings.Join(in.Values[id], "|"))
		b.WriteByte(';')
	}
	return b.String()
}

// number assigns deterministic instance IDs after ordering.
func (g *Generator) number(res *Result) {
	counters := map[string]int{}
	assign := func(ins []*Instance) {
		for _, in := range ins {
			counters[in.Class.Name]++
			in.ID = in.Class.Name + "_" + strconv.Itoa(counters[in.Class.Name])
		}
	}
	assign(res.Matched)
	assign(res.Related)
}
