package instance

// chunked_test.go covers the ChunkedWriter's flush edges: documents
// that never reach the threshold (empty result envelope, one small
// instance) must arrive as exactly one final-flush chunk with the high
// water equal to the document, and a single window larger than the
// threshold must flush mid-document with the high water bounded near
// the threshold, not the document size.

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/extract"
)

func TestChunkedWriterEmptyResult(t *testing.T) {
	w := newWorld(t)
	p := plan(t, w.ont, "SELECT product")
	res, err := w.gen.Generate(p, &extract.ResultSet{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matched) != 0 {
		t.Fatalf("matched = %d, want 0", len(res.Matched))
	}
	var want, got bytes.Buffer
	if err := w.gen.Serialize(&want, res, FormatJSON); err != nil {
		t.Fatal(err)
	}
	stats, err := w.gen.SerializeChunked(&got, res, FormatJSON, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("chunked output diverges:\n%s", got.String())
	}
	if stats.Chunks != 1 {
		t.Errorf("Chunks = %d, want 1 (single final flush)", stats.Chunks)
	}
	if stats.Bytes != int64(got.Len()) {
		t.Errorf("Bytes = %d, want %d", stats.Bytes, got.Len())
	}
	if stats.HighWater != got.Len() {
		t.Errorf("HighWater = %d, want %d (whole envelope buffered until the final flush)", stats.HighWater, got.Len())
	}
}

func TestChunkedWriterSingleSmallInstance(t *testing.T) {
	w := newWorld(t)
	p := plan(t, w.ont, "SELECT product")
	rs := &extract.ResultSet{Fragments: []extract.Fragment{
		frag("thing.product.brand", "src", "Seiko"),
	}}
	res, err := w.gen.Generate(p, rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matched) != 1 {
		t.Fatalf("matched = %d, want 1", len(res.Matched))
	}
	var got bytes.Buffer
	stats, err := w.gen.SerializeChunked(&got, res, FormatJSON, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() >= DefaultChunkSize {
		t.Fatalf("fixture document is %d bytes, want < default threshold %d", got.Len(), DefaultChunkSize)
	}
	if stats.Chunks != 1 {
		t.Errorf("Chunks = %d, want 1 (document below threshold)", stats.Chunks)
	}
	if stats.HighWater != got.Len() || stats.Bytes != int64(got.Len()) {
		t.Errorf("HighWater/Bytes = %d/%d, want %d/%d", stats.HighWater, stats.Bytes, got.Len(), got.Len())
	}
}

func TestChunkedWriterWindowExceedsThreshold(t *testing.T) {
	w := newWorld(t)
	p := plan(t, w.ont, "SELECT product")
	rs := &extract.ResultSet{Fragments: []extract.Fragment{
		frag("thing.product.brand", "src", strings.Repeat("x", 512)),
	}}
	res, err := w.gen.Generate(p, rs)
	if err != nil {
		t.Fatal(err)
	}
	const threshold = 64
	var want, got bytes.Buffer
	if err := w.gen.Serialize(&want, res, FormatJSON); err != nil {
		t.Fatal(err)
	}
	stats, err := w.gen.SerializeChunked(&got, res, FormatJSON, threshold)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Error("chunked output diverges from whole-document serialization")
	}
	if stats.Chunks < 2 {
		t.Errorf("Chunks = %d, want >= 2 (single window larger than the threshold must flush mid-document)", stats.Chunks)
	}
	if stats.HighWater < threshold {
		t.Errorf("HighWater = %d, want >= threshold %d (the oversized write is buffered before the flush)", stats.HighWater, threshold)
	}
	if stats.HighWater >= got.Len() {
		t.Errorf("HighWater = %d, want < document size %d (memory stays bounded)", stats.HighWater, got.Len())
	}
	if stats.Bytes != int64(got.Len()) {
		t.Errorf("Bytes = %d, want %d", stats.Bytes, got.Len())
	}
}
