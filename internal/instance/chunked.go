package instance

// chunked.go is the streaming pipeline's serialization tail: a bounded
// chunk buffer between the serializers and the transport, plus the
// incremental serialization entry points. The materializing
// Serialize path stages whole documents; SerializeChunked flushes the
// document in threshold-sized chunks as it forms, so peak serialization
// memory stays flat no matter how large the result is (E18 in
// bench_test.go asserts exactly that). Output bytes are identical
// between the two paths for every format.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/obs"
	"repro/internal/owl"
	"repro/internal/rdf"
)

// DefaultChunkSize is the flush threshold of a ChunkedWriter built with
// size <= 0.
const DefaultChunkSize = 32 * 1024

// ChunkStats describes one chunked serialization.
type ChunkStats struct {
	// Chunks is how many flushes reached the underlying writer.
	Chunks int
	// HighWater is the largest number of bytes the chunk buffer held —
	// the serialization path's peak buffered memory.
	HighWater int
	// Bytes is the total written.
	Bytes int64
}

// ChunkedWriter buffers writes and flushes the buffer to the underlying
// writer whenever it passes the threshold — bounded memory regardless
// of document size, and each flush is one Write the transport can hand
// to the wire (an http.Flusher-backed writer turns every chunk into a
// chunked-transfer frame). After a write error every later write is a
// no-op and Flush returns the first error.
type ChunkedWriter struct {
	w         io.Writer
	buf       bytes.Buffer
	threshold int
	stats     ChunkStats
	err       error
}

// NewChunkedWriter wraps w with a chunk buffer flushing at the given
// threshold (DefaultChunkSize when size <= 0).
func NewChunkedWriter(w io.Writer, size int) *ChunkedWriter {
	if size <= 0 {
		size = DefaultChunkSize
	}
	return &ChunkedWriter{w: w, threshold: size}
}

// Write buffers p, flushing when the buffer passes the threshold.
func (c *ChunkedWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	c.buf.Write(p)
	c.mark()
	if c.err = c.maybeFlush(); c.err != nil {
		return 0, c.err
	}
	return len(p), nil
}

// WriteString buffers s, flushing when the buffer passes the threshold.
func (c *ChunkedWriter) WriteString(s string) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	c.buf.WriteString(s)
	c.mark()
	if c.err = c.maybeFlush(); c.err != nil {
		return 0, c.err
	}
	return len(s), nil
}

func (c *ChunkedWriter) mark() {
	if l := c.buf.Len(); l > c.stats.HighWater {
		c.stats.HighWater = l
	}
}

func (c *ChunkedWriter) maybeFlush() error {
	if c.buf.Len() < c.threshold {
		return nil
	}
	return c.flush()
}

func (c *ChunkedWriter) flush() error {
	if c.buf.Len() == 0 {
		return nil
	}
	n, err := c.w.Write(c.buf.Bytes())
	c.stats.Chunks++
	c.stats.Bytes += int64(n)
	c.buf.Reset()
	return err
}

// Flush writes any buffered bytes through. Call it once after the last
// write; it also surfaces the first error any earlier write hit.
func (c *ChunkedWriter) Flush() error {
	if c.err != nil {
		return c.err
	}
	c.err = c.flush()
	return c.err
}

// Stats reports the writer's chunk statistics so far.
func (c *ChunkedWriter) Stats() ChunkStats { return c.stats }

// SerializeChunkedContext is SerializeChunked under a "serialize" span
// (annotated with the chunk count) and the context's stage-latency
// metrics — the streaming counterpart of SerializeContext.
func (g *Generator) SerializeChunkedContext(ctx context.Context, w io.Writer, res *Result, format Format, chunkSize int) (ChunkStats, error) {
	_, span, done := obs.StartStage(ctx, "serialize")
	span.SetAttr("format", format.String())
	stats, err := g.SerializeChunked(w, res, format, chunkSize)
	span.SetAttr("chunks", strconv.Itoa(stats.Chunks))
	done()
	return stats, err
}

// SerializeChunked writes the result in the requested format through a
// bounded chunk buffer: w receives threshold-sized writes as the
// document forms instead of one whole-document write. Output bytes are
// identical to Serialize. chunkSize <= 0 means DefaultChunkSize.
func (g *Generator) SerializeChunked(w io.Writer, res *Result, format Format, chunkSize int) (ChunkStats, error) {
	cw := NewChunkedWriter(w, chunkSize)
	var err error
	switch format {
	case FormatOWL:
		var graph *rdf.Graph
		if graph, err = g.ToGraph(res); err == nil {
			if err = owl.WriteRDFXML(cw, graph, g.prefixes()); err == nil {
				err = writeErrorEpilog(cw, res)
			}
		}
	case FormatTurtle:
		var graph *rdf.Graph
		if graph, err = g.ToGraph(res); err == nil {
			err = rdf.WriteTurtle(cw, graph, g.prefixes())
		}
	case FormatNTriples:
		var graph *rdf.Graph
		if graph, err = g.ToGraph(res); err == nil {
			err = rdf.WriteNTriples(cw, graph)
		}
	case FormatXML:
		err = g.writeXMLTo(cw, res)
	case FormatJSON:
		err = g.writeJSONChunked(cw, res)
	case FormatText:
		err = g.writeTextTo(cw, res)
	default:
		err = fmt.Errorf("instance: unknown format %d", int(format))
	}
	if err != nil {
		return cw.Stats(), err
	}
	err = cw.Flush()
	return cw.Stats(), err
}

// writeJSONChunked emits the JSON payload incrementally, one instance
// per marshal, splicing the pieces into the envelope so the bytes match
// writeJSON's json.Encoder(SetIndent("", "  ")) output exactly —
// including HTML escaping, sorted map keys, field order, and the
// trailing newline. The head/instance/tail pieces are shared with the
// barrier-free eager path (eager.go), which interleaves them with
// extraction instead of writing them in one pass.
func (g *Generator) writeJSONChunked(w *ChunkedWriter, res *Result) error {
	if err := writeJSONHead(w, res); err != nil {
		return err
	}
	for i, in := range res.Matched {
		if err := writeJSONInstance(w, in, i == 0); err != nil {
			return err
		}
	}
	return writeJSONTail(w, res, len(res.Matched))
}

// writeJSONField writes the envelope's ",\n  \"name\": " separator.
func writeJSONField(w *ChunkedWriter, name string) {
	w.WriteString(",\n  \"")
	w.WriteString(name)
	w.WriteString("\": ")
}

// writeJSONInstances writes one full instance array ("[]" when empty).
func writeJSONInstances(w *ChunkedWriter, ins []*Instance) error {
	for i, in := range ins {
		if err := writeJSONInstance(w, in, i == 0); err != nil {
			return err
		}
	}
	return closeJSONInstances(w, len(ins))
}

// writeJSONInstance writes one element of an instance array. The
// array's opening bracket rides on the first element (closeJSONInstances
// writes "[]" if no element was ever written), so an eager emitter needs
// no lookahead.
func writeJSONInstance(w *ChunkedWriter, in *Instance, first bool) error {
	if first {
		w.WriteString("[\n")
	} else {
		w.WriteString(",\n")
	}
	w.WriteString("    ")
	data, err := json.MarshalIndent(jsonInstanceOf(in), "    ", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// closeJSONInstances terminates an instance array of n written elements.
func closeJSONInstances(w *ChunkedWriter, n int) error {
	if n == 0 {
		_, err := w.WriteString("[]")
		return err
	}
	_, err := w.WriteString("\n  ]")
	return err
}

// writeJSONStrings writes a string array in encoder-identical form.
func writeJSONStrings(w *ChunkedWriter, ss []string) error {
	w.WriteString("[\n")
	for i, s := range ss {
		if i > 0 {
			w.WriteString(",\n")
		}
		w.WriteString("    ")
		data, err := json.Marshal(s)
		if err != nil {
			return err
		}
		if _, err := w.Write(data); err != nil {
			return err
		}
	}
	_, err := w.WriteString("\n  ]")
	return err
}

// writeJSONHead opens the envelope through the "matched" field
// separator; only the query string is needed, so an eager emitter can
// write it before extraction delivers anything.
func writeJSONHead(w *ChunkedWriter, res *Result) error {
	w.WriteString("{\n  \"query\": ")
	q, err := json.Marshal(res.Plan.Query.String())
	if err != nil {
		return err
	}
	w.Write(q)
	writeJSONField(w, "matched")
	return nil
}

// writeJSONTail closes the matched array (matched elements already
// written) and emits every remaining envelope field; it needs the
// complete result, so the eager path writes it after the stream's tail
// arrives.
func writeJSONTail(w *ChunkedWriter, res *Result, matched int) error {
	if err := closeJSONInstances(w, matched); err != nil {
		return err
	}
	if len(res.Related) > 0 {
		writeJSONField(w, "related")
		if err := writeJSONInstances(w, res.Related); err != nil {
			return err
		}
	}
	if len(res.Errors) > 0 {
		ss := make([]string, len(res.Errors))
		for i, e := range res.Errors {
			ss[i] = e.Error()
		}
		writeJSONField(w, "errors")
		if err := writeJSONStrings(w, ss); err != nil {
			return err
		}
	}
	if len(res.Degraded) > 0 {
		ss := make([]string, len(res.Degraded))
		for i, d := range res.Degraded {
			ss[i] = d.String()
		}
		writeJSONField(w, "degraded")
		if err := writeJSONStrings(w, ss); err != nil {
			return err
		}
	}
	if len(res.Missing) > 0 {
		writeJSONField(w, "missing")
		if err := writeJSONStrings(w, res.Missing); err != nil {
			return err
		}
	}
	_, err := w.WriteString("\n}\n")
	return err
}
