package instance

import (
	"bytes"
	"strings"
	"testing"
)

// TestMuxRoundTrip frames three queries the way the batch endpoint does
// — bodies in chunk-sized writes, per-query trailers, one failed query
// with a trailer but no body — and demultiplexes them back.
func TestMuxRoundTrip(t *testing.T) {
	var wire bytes.Buffer
	mux := NewMuxWriter(&wire)
	if err := mux.Header(3); err != nil {
		t.Fatal(err)
	}

	if err := mux.Begin(0); err != nil {
		t.Fatal(err)
	}
	w0 := mux.Stream(0)
	for _, chunk := range []string{`{"query": "SELECT product",`, "\n", `"matched": []}`} {
		if _, err := w0.Write([]byte(chunk)); err != nil {
			t.Fatal(err)
		}
	}
	if err := mux.Trailer(0, map[string]string{"matched": "0", "errors": "0"}); err != nil {
		t.Fatal(err)
	}

	// Query 1 failed before serialization: trailer only, message with
	// every character class the line framing must survive.
	if err := mux.Trailer(1, map[string]string{"error": "parse error: near \"=c 9 9\"\nline 2"}); err != nil {
		t.Fatal(err)
	}

	if err := mux.Begin(2); err != nil {
		t.Fatal(err)
	}
	if _, err := mux.Stream(2).Write([]byte("<s2s-result>\n</s2s-result>\n")); err != nil {
		t.Fatal(err)
	}
	if err := mux.Trailer(2, map[string]string{"matched": "4"}); err != nil {
		t.Fatal(err)
	}

	results, err := DemuxBatch(&wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3", len(results))
	}
	if got := string(results[0].Body); got != `{"query": "SELECT product",`+"\n"+`"matched": []}` {
		t.Errorf("query 0 body = %q", got)
	}
	if !results[0].Began || results[0].Trailer["matched"] != "0" || results[0].Trailer["errors"] != "0" {
		t.Errorf("query 0 = %+v", results[0])
	}
	if results[1].Began || len(results[1].Body) != 0 {
		t.Errorf("failed query has a body: %+v", results[1])
	}
	if got := results[1].Trailer["error"]; got != "parse error: near \"=c 9 9\"\nline 2" {
		t.Errorf("query 1 error round-trip = %q", got)
	}
	if string(results[2].Body) != "<s2s-result>\n</s2s-result>\n" || results[2].Trailer["matched"] != "4" {
		t.Errorf("query 2 = %+v", results[2])
	}
}

func TestMuxZeroLengthWriteEmitsNoFrame(t *testing.T) {
	var wire bytes.Buffer
	mux := NewMuxWriter(&wire)
	if _, err := mux.Stream(0).Write(nil); err != nil {
		t.Fatal(err)
	}
	if wire.Len() != 0 {
		t.Errorf("zero-length write framed %q", wire.String())
	}
}

func TestDemuxMalformed(t *testing.T) {
	cases := map[string]string{
		"unknown frame":   "=x 0\n",
		"bad index":       "=b zero\n",
		"bad chunk size":  "=c 0 nope\n",
		"short chunk":     "=c 0 10\nabc",
		"negative index":  "=b -1\n",
		"bare line":       "hello\n",
		"trailer no k=v":  "=t 0 junk\n",
		"trailer bad esc": "=t 0 error=%zz\n",
	}
	for name, wire := range cases {
		if _, err := DemuxBatch(strings.NewReader(wire)); err == nil {
			t.Errorf("%s: demux accepted %q", name, wire)
		}
	}
}
