package owl

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
)

func ex(local string) rdf.IRI { return rdf.IRI("http://example.org/" + local) }

func sampleGraph() *rdf.Graph {
	g := rdf.NewGraph()
	g.MustAdd(rdf.T(ex("watch1"), rdf.RDFType, ex("Watch")))
	g.MustAdd(rdf.T(ex("watch1"), ex("brand"), rdf.String("Seiko")))
	g.MustAdd(rdf.T(ex("watch1"), ex("price"), rdf.Literal{Value: "129.99", Datatype: rdf.XSDDecimal}))
	g.MustAdd(rdf.T(ex("watch1"), ex("label"), rdf.LangString("diver", "en")))
	g.MustAdd(rdf.T(ex("watch1"), ex("provider"), rdf.BlankNode("prov1")))
	g.MustAdd(rdf.T(rdf.BlankNode("prov1"), ex("name"), rdf.String("WatchCo & Sons <premium>")))
	return g
}

func prefixes() rdf.PrefixMap {
	return rdf.PrefixMap{"ex": "http://example.org/", "rdf": rdf.RDFNS, "xsd": rdf.XSDNS}
}

func TestRDFXMLRoundTrip(t *testing.T) {
	g := sampleGraph()
	text := RDFXMLString(g, prefixes())
	parsed, err := ParseRDFXML(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseRDFXML: %v\ninput:\n%s", err, text)
	}
	if !g.Equal(parsed) {
		t.Fatalf("round trip mismatch.\nserialized:\n%s\ngot:\n%s\nwant:\n%s",
			text, rdf.NTriplesString(parsed), rdf.NTriplesString(g))
	}
}

func TestRDFXMLTypedNodeForm(t *testing.T) {
	g := sampleGraph()
	text := RDFXMLString(g, prefixes())
	if !strings.Contains(text, "<ex:Watch rdf:about=\"http://example.org/watch1\">") {
		t.Errorf("typed node form not used:\n%s", text)
	}
	if !strings.Contains(text, "xml:lang=\"en\"") {
		t.Errorf("language tag missing:\n%s", text)
	}
	if !strings.Contains(text, "rdf:datatype=\"http://www.w3.org/2001/XMLSchema#decimal\"") {
		t.Errorf("datatype missing:\n%s", text)
	}
	if !strings.Contains(text, "WatchCo &amp; Sons &lt;premium&gt;") {
		t.Errorf("literal text not XML-escaped:\n%s", text)
	}
}

func TestRDFXMLMultipleTypesFallBackToDescription(t *testing.T) {
	g := rdf.NewGraph()
	g.MustAdd(rdf.T(ex("x"), rdf.RDFType, ex("A")))
	g.MustAdd(rdf.T(ex("x"), rdf.RDFType, ex("B")))
	text := RDFXMLString(g, prefixes())
	if !strings.Contains(text, "<rdf:Description") {
		t.Errorf("expected rdf:Description for multi-typed node:\n%s", text)
	}
	parsed, err := ParseRDFXML(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(parsed) {
		t.Fatalf("multi-type round trip mismatch:\n%s", text)
	}
}

func TestParseRDFXMLHandWritten(t *testing.T) {
	doc := `<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:ex="http://example.org/">
  <ex:Watch rdf:about="http://example.org/w1" ex:origin="Japan">
    <ex:brand>Seiko</ex:brand>
    <ex:provider>
      <ex:Provider rdf:about="http://example.org/p1">
        <ex:name>WatchCo</ex:name>
      </ex:Provider>
    </ex:provider>
  </ex:Watch>
</rdf:RDF>`
	g, err := ParseRDFXML(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	want := []rdf.Triple{
		rdf.T(ex("w1"), rdf.RDFType, ex("Watch")),
		rdf.T(ex("w1"), ex("origin"), rdf.String("Japan")),
		rdf.T(ex("w1"), ex("brand"), rdf.String("Seiko")),
		rdf.T(ex("w1"), ex("provider"), ex("p1")),
		rdf.T(ex("p1"), rdf.RDFType, ex("Provider")),
		rdf.T(ex("p1"), ex("name"), rdf.String("WatchCo")),
	}
	for _, tr := range want {
		if !g.Has(tr) {
			t.Errorf("missing %s\ngot:\n%s", tr, rdf.NTriplesString(g))
		}
	}
	if g.Len() != len(want) {
		t.Errorf("Len = %d, want %d:\n%s", g.Len(), len(want), rdf.NTriplesString(g))
	}
}

func TestParseRDFXMLAnonymousNode(t *testing.T) {
	doc := `<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:ex="http://example.org/">
  <ex:Watch>
    <ex:brand>Seiko</ex:brand>
  </ex:Watch>
</rdf:RDF>`
	g, err := ParseRDFXML(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	subjects := g.Subjects(ex("brand"), rdf.String("Seiko"))
	if len(subjects) != 1 || subjects[0].Kind() != rdf.KindBlank {
		t.Fatalf("anonymous node not assigned a blank subject: %v", subjects)
	}
}

func TestParseRDFXMLErrors(t *testing.T) {
	bad := map[string]string{
		"no root":   `<?xml version="1.0"?><notrdf/>`,
		"empty":     ``,
		"malformed": `<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"><unclosed>`,
	}
	for name, doc := range bad {
		if _, err := ParseRDFXML(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: ParseRDFXML accepted %q", name, doc)
		}
	}
}

func TestWriteRDFXMLUnprefixedPredicateFails(t *testing.T) {
	g := rdf.NewGraph()
	g.MustAdd(rdf.T(ex("s"), rdf.IRI("http://unregistered.example/p"), rdf.String("v")))
	err := WriteRDFXML(&strings.Builder{}, g, rdf.PrefixMap{"ex": "http://example.org/"})
	if err == nil {
		t.Fatal("expected error for predicate without a registered prefix")
	}
}

// Property: graphs built from middleware-shaped statements survive an
// RDF/XML round trip.
func TestRDFXMLRoundTripProperty(t *testing.T) {
	f := func(rows []struct {
		S, P uint8
		V    string
	}) bool {
		g := rdf.NewGraph()
		for _, r := range rows {
			if !isXMLText(r.V) {
				// XML 1.0 cannot carry most control characters and \r is
				// normalized; the middleware never emits them.
				continue
			}
			g.MustAdd(rdf.T(
				ex(fmt.Sprintf("s%d", r.S%16)),
				ex(fmt.Sprintf("p%d", r.P%4)),
				rdf.String(r.V)))
		}
		parsed, err := ParseRDFXML(strings.NewReader(RDFXMLString(g, prefixes())))
		return err == nil && g.Equal(parsed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// isXMLText reports whether every rune of s is a legal XML 1.0 character
// other than carriage return.
func isXMLText(s string) bool {
	for _, r := range s {
		valid := r == '\t' || r == '\n' ||
			(r >= 0x20 && r <= 0xD7FF) ||
			(r >= 0xE000 && r <= 0xFFFD) ||
			(r >= 0x10000 && r <= 0x10FFFF)
		if !valid {
			return false
		}
	}
	return true
}
